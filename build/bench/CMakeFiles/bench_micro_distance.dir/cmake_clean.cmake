file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_distance.dir/bench_micro_distance.cpp.o"
  "CMakeFiles/bench_micro_distance.dir/bench_micro_distance.cpp.o.d"
  "bench_micro_distance"
  "bench_micro_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
