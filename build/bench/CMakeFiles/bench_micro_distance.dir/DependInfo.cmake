
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_micro_distance.cpp" "bench/CMakeFiles/bench_micro_distance.dir/bench_micro_distance.cpp.o" "gcc" "bench/CMakeFiles/bench_micro_distance.dir/bench_micro_distance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/dita_index.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/dita_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dita_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/dita_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dita_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
