file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_centralized_indexing.dir/bench_table7_centralized_indexing.cpp.o"
  "CMakeFiles/bench_table7_centralized_indexing.dir/bench_table7_centralized_indexing.cpp.o.d"
  "bench_table7_centralized_indexing"
  "bench_table7_centralized_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_centralized_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
