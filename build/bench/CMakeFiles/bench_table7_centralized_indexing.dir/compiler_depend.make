# Empty compiler generated dependencies file for bench_table7_centralized_indexing.
# This may be replaced when dependencies are built.
