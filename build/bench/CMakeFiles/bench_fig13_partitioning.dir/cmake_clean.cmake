file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_partitioning.dir/bench_fig13_partitioning.cpp.o"
  "CMakeFiles/bench_fig13_partitioning.dir/bench_fig13_partitioning.cpp.o.d"
  "bench_fig13_partitioning"
  "bench_fig13_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
