# Empty dependencies file for bench_fig13_partitioning.
# This may be replaced when dependencies are built.
