file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_distances.dir/bench_fig15_distances.cpp.o"
  "CMakeFiles/bench_fig15_distances.dir/bench_fig15_distances.cpp.o.d"
  "bench_fig15_distances"
  "bench_fig15_distances.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_distances.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
