# Empty dependencies file for bench_fig15_distances.
# This may be replaced when dependencies are built.
