file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_osm.dir/bench_fig11_osm.cpp.o"
  "CMakeFiles/bench_fig11_osm.dir/bench_fig11_osm.cpp.o.d"
  "bench_fig11_osm"
  "bench_fig11_osm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_osm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
