# Empty dependencies file for bench_fig11_osm.
# This may be replaced when dependencies are built.
