# Empty dependencies file for bench_fig10_join_chengdu.
# This may be replaced when dependencies are built.
