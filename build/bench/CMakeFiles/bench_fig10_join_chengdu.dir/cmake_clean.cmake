file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_join_chengdu.dir/bench_fig10_join_chengdu.cpp.o"
  "CMakeFiles/bench_fig10_join_chengdu.dir/bench_fig10_join_chengdu.cpp.o.d"
  "bench_fig10_join_chengdu"
  "bench_fig10_join_chengdu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_join_chengdu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
