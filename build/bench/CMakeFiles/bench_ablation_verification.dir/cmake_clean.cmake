file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_verification.dir/bench_ablation_verification.cpp.o"
  "CMakeFiles/bench_ablation_verification.dir/bench_ablation_verification.cpp.o.d"
  "bench_ablation_verification"
  "bench_ablation_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
