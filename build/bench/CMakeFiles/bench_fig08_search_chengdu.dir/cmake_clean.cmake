file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_search_chengdu.dir/bench_fig08_search_chengdu.cpp.o"
  "CMakeFiles/bench_fig08_search_chengdu.dir/bench_fig08_search_chengdu.cpp.o.d"
  "bench_fig08_search_chengdu"
  "bench_fig08_search_chengdu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_search_chengdu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
