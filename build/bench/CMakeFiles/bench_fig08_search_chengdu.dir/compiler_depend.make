# Empty compiler generated dependencies file for bench_fig08_search_chengdu.
# This may be replaced when dependencies are built.
