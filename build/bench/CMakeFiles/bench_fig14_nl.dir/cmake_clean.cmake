file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_nl.dir/bench_fig14_nl.cpp.o"
  "CMakeFiles/bench_fig14_nl.dir/bench_fig14_nl.cpp.o.d"
  "bench_fig14_nl"
  "bench_fig14_nl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_nl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
