# Empty dependencies file for bench_fig14_nl.
# This may be replaced when dependencies are built.
