# Empty compiler generated dependencies file for bench_fig17_centralized.
# This may be replaced when dependencies are built.
