file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_centralized.dir/bench_fig17_centralized.cpp.o"
  "CMakeFiles/bench_fig17_centralized.dir/bench_fig17_centralized.cpp.o.d"
  "bench_fig17_centralized"
  "bench_fig17_centralized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_centralized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
