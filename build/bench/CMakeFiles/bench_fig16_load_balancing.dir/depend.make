# Empty dependencies file for bench_fig16_load_balancing.
# This may be replaced when dependencies are built.
