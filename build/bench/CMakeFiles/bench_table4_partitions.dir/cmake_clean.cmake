file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_partitions.dir/bench_table4_partitions.cpp.o"
  "CMakeFiles/bench_table4_partitions.dir/bench_table4_partitions.cpp.o.d"
  "bench_table4_partitions"
  "bench_table4_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
