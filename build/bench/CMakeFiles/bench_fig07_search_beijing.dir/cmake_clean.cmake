file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_search_beijing.dir/bench_fig07_search_beijing.cpp.o"
  "CMakeFiles/bench_fig07_search_beijing.dir/bench_fig07_search_beijing.cpp.o.d"
  "bench_fig07_search_beijing"
  "bench_fig07_search_beijing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_search_beijing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
