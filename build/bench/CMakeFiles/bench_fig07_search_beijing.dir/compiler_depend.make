# Empty compiler generated dependencies file for bench_fig07_search_beijing.
# This may be replaced when dependencies are built.
