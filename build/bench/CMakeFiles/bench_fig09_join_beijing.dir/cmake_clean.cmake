file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_join_beijing.dir/bench_fig09_join_beijing.cpp.o"
  "CMakeFiles/bench_fig09_join_beijing.dir/bench_fig09_join_beijing.cpp.o.d"
  "bench_fig09_join_beijing"
  "bench_fig09_join_beijing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_join_beijing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
