# Empty compiler generated dependencies file for bench_fig09_join_beijing.
# This may be replaced when dependencies are built.
