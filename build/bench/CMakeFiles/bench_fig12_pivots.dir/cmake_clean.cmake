file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_pivots.dir/bench_fig12_pivots.cpp.o"
  "CMakeFiles/bench_fig12_pivots.dir/bench_fig12_pivots.cpp.o.d"
  "bench_fig12_pivots"
  "bench_fig12_pivots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_pivots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
