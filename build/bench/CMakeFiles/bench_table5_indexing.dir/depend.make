# Empty dependencies file for bench_table5_indexing.
# This may be replaced when dependencies are built.
