file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_indexing.dir/bench_table5_indexing.cpp.o"
  "CMakeFiles/bench_table5_indexing.dir/bench_table5_indexing.cpp.o.d"
  "bench_table5_indexing"
  "bench_table5_indexing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
