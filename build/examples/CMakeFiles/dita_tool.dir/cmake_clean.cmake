file(REMOVE_RECURSE
  "CMakeFiles/dita_tool.dir/dita_tool.cpp.o"
  "CMakeFiles/dita_tool.dir/dita_tool.cpp.o.d"
  "dita_tool"
  "dita_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dita_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
