# Empty dependencies file for dita_tool.
# This may be replaced when dependencies are built.
