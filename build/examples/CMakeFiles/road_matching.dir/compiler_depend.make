# Empty compiler generated dependencies file for road_matching.
# This may be replaced when dependencies are built.
