file(REMOVE_RECURSE
  "CMakeFiles/road_matching.dir/road_matching.cpp.o"
  "CMakeFiles/road_matching.dir/road_matching.cpp.o.d"
  "road_matching"
  "road_matching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_matching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
