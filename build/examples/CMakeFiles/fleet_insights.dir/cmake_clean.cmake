file(REMOVE_RECURSE
  "CMakeFiles/fleet_insights.dir/fleet_insights.cpp.o"
  "CMakeFiles/fleet_insights.dir/fleet_insights.cpp.o.d"
  "fleet_insights"
  "fleet_insights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_insights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
