# Empty compiler generated dependencies file for fleet_insights.
# This may be replaced when dependencies are built.
