file(REMOVE_RECURSE
  "CMakeFiles/sql_analytics.dir/sql_analytics.cpp.o"
  "CMakeFiles/sql_analytics.dir/sql_analytics.cpp.o.d"
  "sql_analytics"
  "sql_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
