# Empty compiler generated dependencies file for sql_analytics.
# This may be replaced when dependencies are built.
