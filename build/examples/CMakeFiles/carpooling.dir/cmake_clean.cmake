file(REMOVE_RECURSE
  "CMakeFiles/carpooling.dir/carpooling.cpp.o"
  "CMakeFiles/carpooling.dir/carpooling.cpp.o.d"
  "carpooling"
  "carpooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carpooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
