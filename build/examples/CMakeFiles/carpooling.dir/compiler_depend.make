# Empty compiler generated dependencies file for carpooling.
# This may be replaced when dependencies are built.
