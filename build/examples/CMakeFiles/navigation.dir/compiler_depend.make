# Empty compiler generated dependencies file for navigation.
# This may be replaced when dependencies are built.
