# Empty dependencies file for navigation.
# This may be replaced when dependencies are built.
