file(REMOVE_RECURSE
  "CMakeFiles/navigation.dir/navigation.cpp.o"
  "CMakeFiles/navigation.dir/navigation.cpp.o.d"
  "navigation"
  "navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
