# Empty compiler generated dependencies file for dita_shell.
# This may be replaced when dependencies are built.
