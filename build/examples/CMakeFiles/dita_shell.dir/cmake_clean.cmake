file(REMOVE_RECURSE
  "CMakeFiles/dita_shell.dir/dita_shell.cpp.o"
  "CMakeFiles/dita_shell.dir/dita_shell.cpp.o.d"
  "dita_shell"
  "dita_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dita_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
