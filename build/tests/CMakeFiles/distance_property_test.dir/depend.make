# Empty dependencies file for distance_property_test.
# This may be replaced when dependencies are built.
