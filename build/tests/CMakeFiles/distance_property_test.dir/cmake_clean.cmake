file(REMOVE_RECURSE
  "CMakeFiles/distance_property_test.dir/distance_property_test.cc.o"
  "CMakeFiles/distance_property_test.dir/distance_property_test.cc.o.d"
  "distance_property_test"
  "distance_property_test.pdb"
  "distance_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/distance_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
