# Empty compiler generated dependencies file for edit_distance_test.
# This may be replaced when dependencies are built.
