file(REMOVE_RECURSE
  "CMakeFiles/edit_distance_test.dir/edit_distance_test.cc.o"
  "CMakeFiles/edit_distance_test.dir/edit_distance_test.cc.o.d"
  "edit_distance_test"
  "edit_distance_test.pdb"
  "edit_distance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edit_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
