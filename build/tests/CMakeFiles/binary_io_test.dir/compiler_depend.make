# Empty compiler generated dependencies file for binary_io_test.
# This may be replaced when dependencies are built.
