file(REMOVE_RECURSE
  "CMakeFiles/binary_io_test.dir/binary_io_test.cc.o"
  "CMakeFiles/binary_io_test.dir/binary_io_test.cc.o.d"
  "binary_io_test"
  "binary_io_test.pdb"
  "binary_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binary_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
