# Empty compiler generated dependencies file for frechet_test.
# This may be replaced when dependencies are built.
