# Empty compiler generated dependencies file for str_tile_test.
# This may be replaced when dependencies are built.
