file(REMOVE_RECURSE
  "CMakeFiles/str_tile_test.dir/str_tile_test.cc.o"
  "CMakeFiles/str_tile_test.dir/str_tile_test.cc.o.d"
  "str_tile_test"
  "str_tile_test.pdb"
  "str_tile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/str_tile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
