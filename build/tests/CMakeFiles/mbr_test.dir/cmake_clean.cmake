file(REMOVE_RECURSE
  "CMakeFiles/mbr_test.dir/mbr_test.cc.o"
  "CMakeFiles/mbr_test.dir/mbr_test.cc.o.d"
  "mbr_test"
  "mbr_test.pdb"
  "mbr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
