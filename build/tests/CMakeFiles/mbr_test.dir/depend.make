# Empty dependencies file for mbr_test.
# This may be replaced when dependencies are built.
