# Empty compiler generated dependencies file for global_index_test.
# This may be replaced when dependencies are built.
