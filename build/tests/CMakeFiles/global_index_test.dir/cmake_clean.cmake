file(REMOVE_RECURSE
  "CMakeFiles/global_index_test.dir/global_index_test.cc.o"
  "CMakeFiles/global_index_test.dir/global_index_test.cc.o.d"
  "global_index_test"
  "global_index_test.pdb"
  "global_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
