# Empty dependencies file for trie_index_test.
# This may be replaced when dependencies are built.
