file(REMOVE_RECURSE
  "CMakeFiles/trie_index_test.dir/trie_index_test.cc.o"
  "CMakeFiles/trie_index_test.dir/trie_index_test.cc.o.d"
  "trie_index_test"
  "trie_index_test.pdb"
  "trie_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trie_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
