# Empty dependencies file for dita_baselines.
# This may be replaced when dependencies are built.
