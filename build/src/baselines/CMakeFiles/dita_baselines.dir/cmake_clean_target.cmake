file(REMOVE_RECURSE
  "libdita_baselines.a"
)
