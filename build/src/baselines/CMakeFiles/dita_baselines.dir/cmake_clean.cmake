file(REMOVE_RECURSE
  "CMakeFiles/dita_baselines.dir/centralized_dita.cc.o"
  "CMakeFiles/dita_baselines.dir/centralized_dita.cc.o.d"
  "CMakeFiles/dita_baselines.dir/dft.cc.o"
  "CMakeFiles/dita_baselines.dir/dft.cc.o.d"
  "CMakeFiles/dita_baselines.dir/mbe.cc.o"
  "CMakeFiles/dita_baselines.dir/mbe.cc.o.d"
  "CMakeFiles/dita_baselines.dir/naive.cc.o"
  "CMakeFiles/dita_baselines.dir/naive.cc.o.d"
  "CMakeFiles/dita_baselines.dir/simba.cc.o"
  "CMakeFiles/dita_baselines.dir/simba.cc.o.d"
  "CMakeFiles/dita_baselines.dir/vptree.cc.o"
  "CMakeFiles/dita_baselines.dir/vptree.cc.o.d"
  "libdita_baselines.a"
  "libdita_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dita_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
