file(REMOVE_RECURSE
  "libdita_workload.a"
)
