file(REMOVE_RECURSE
  "CMakeFiles/dita_workload.dir/binary_io.cc.o"
  "CMakeFiles/dita_workload.dir/binary_io.cc.o.d"
  "CMakeFiles/dita_workload.dir/dataset.cc.o"
  "CMakeFiles/dita_workload.dir/dataset.cc.o.d"
  "CMakeFiles/dita_workload.dir/generator.cc.o"
  "CMakeFiles/dita_workload.dir/generator.cc.o.d"
  "CMakeFiles/dita_workload.dir/loaders.cc.o"
  "CMakeFiles/dita_workload.dir/loaders.cc.o.d"
  "libdita_workload.a"
  "libdita_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dita_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
