# Empty compiler generated dependencies file for dita_workload.
# This may be replaced when dependencies are built.
