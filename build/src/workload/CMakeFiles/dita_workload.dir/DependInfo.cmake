
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/binary_io.cc" "src/workload/CMakeFiles/dita_workload.dir/binary_io.cc.o" "gcc" "src/workload/CMakeFiles/dita_workload.dir/binary_io.cc.o.d"
  "/root/repo/src/workload/dataset.cc" "src/workload/CMakeFiles/dita_workload.dir/dataset.cc.o" "gcc" "src/workload/CMakeFiles/dita_workload.dir/dataset.cc.o.d"
  "/root/repo/src/workload/generator.cc" "src/workload/CMakeFiles/dita_workload.dir/generator.cc.o" "gcc" "src/workload/CMakeFiles/dita_workload.dir/generator.cc.o.d"
  "/root/repo/src/workload/loaders.cc" "src/workload/CMakeFiles/dita_workload.dir/loaders.cc.o" "gcc" "src/workload/CMakeFiles/dita_workload.dir/loaders.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/dita_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dita_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
