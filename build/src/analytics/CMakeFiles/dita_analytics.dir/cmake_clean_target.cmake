file(REMOVE_RECURSE
  "libdita_analytics.a"
)
