# Empty dependencies file for dita_analytics.
# This may be replaced when dependencies are built.
