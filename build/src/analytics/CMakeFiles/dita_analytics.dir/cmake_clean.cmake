file(REMOVE_RECURSE
  "CMakeFiles/dita_analytics.dir/clustering.cc.o"
  "CMakeFiles/dita_analytics.dir/clustering.cc.o.d"
  "CMakeFiles/dita_analytics.dir/frequent_routes.cc.o"
  "CMakeFiles/dita_analytics.dir/frequent_routes.cc.o.d"
  "CMakeFiles/dita_analytics.dir/outliers.cc.o"
  "CMakeFiles/dita_analytics.dir/outliers.cc.o.d"
  "CMakeFiles/dita_analytics.dir/similarity_graph.cc.o"
  "CMakeFiles/dita_analytics.dir/similarity_graph.cc.o.d"
  "libdita_analytics.a"
  "libdita_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dita_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
