
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/cell.cc" "src/index/CMakeFiles/dita_index.dir/cell.cc.o" "gcc" "src/index/CMakeFiles/dita_index.dir/cell.cc.o.d"
  "/root/repo/src/index/pivot.cc" "src/index/CMakeFiles/dita_index.dir/pivot.cc.o" "gcc" "src/index/CMakeFiles/dita_index.dir/pivot.cc.o.d"
  "/root/repo/src/index/rtree.cc" "src/index/CMakeFiles/dita_index.dir/rtree.cc.o" "gcc" "src/index/CMakeFiles/dita_index.dir/rtree.cc.o.d"
  "/root/repo/src/index/str_tile.cc" "src/index/CMakeFiles/dita_index.dir/str_tile.cc.o" "gcc" "src/index/CMakeFiles/dita_index.dir/str_tile.cc.o.d"
  "/root/repo/src/index/trie_index.cc" "src/index/CMakeFiles/dita_index.dir/trie_index.cc.o" "gcc" "src/index/CMakeFiles/dita_index.dir/trie_index.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/dita_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/dita_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dita_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
