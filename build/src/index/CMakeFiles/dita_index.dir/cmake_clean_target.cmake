file(REMOVE_RECURSE
  "libdita_index.a"
)
