file(REMOVE_RECURSE
  "CMakeFiles/dita_index.dir/cell.cc.o"
  "CMakeFiles/dita_index.dir/cell.cc.o.d"
  "CMakeFiles/dita_index.dir/pivot.cc.o"
  "CMakeFiles/dita_index.dir/pivot.cc.o.d"
  "CMakeFiles/dita_index.dir/rtree.cc.o"
  "CMakeFiles/dita_index.dir/rtree.cc.o.d"
  "CMakeFiles/dita_index.dir/str_tile.cc.o"
  "CMakeFiles/dita_index.dir/str_tile.cc.o.d"
  "CMakeFiles/dita_index.dir/trie_index.cc.o"
  "CMakeFiles/dita_index.dir/trie_index.cc.o.d"
  "libdita_index.a"
  "libdita_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dita_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
