# Empty compiler generated dependencies file for dita_index.
# This may be replaced when dependencies are built.
