# Empty dependencies file for dita_util.
# This may be replaced when dependencies are built.
