file(REMOVE_RECURSE
  "CMakeFiles/dita_util.dir/logging.cc.o"
  "CMakeFiles/dita_util.dir/logging.cc.o.d"
  "CMakeFiles/dita_util.dir/status.cc.o"
  "CMakeFiles/dita_util.dir/status.cc.o.d"
  "CMakeFiles/dita_util.dir/string_util.cc.o"
  "CMakeFiles/dita_util.dir/string_util.cc.o.d"
  "CMakeFiles/dita_util.dir/thread_pool.cc.o"
  "CMakeFiles/dita_util.dir/thread_pool.cc.o.d"
  "libdita_util.a"
  "libdita_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dita_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
