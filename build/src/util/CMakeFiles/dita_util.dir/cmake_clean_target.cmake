file(REMOVE_RECURSE
  "libdita_util.a"
)
