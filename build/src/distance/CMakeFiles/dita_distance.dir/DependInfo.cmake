
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/distance/distance.cc" "src/distance/CMakeFiles/dita_distance.dir/distance.cc.o" "gcc" "src/distance/CMakeFiles/dita_distance.dir/distance.cc.o.d"
  "/root/repo/src/distance/dtw.cc" "src/distance/CMakeFiles/dita_distance.dir/dtw.cc.o" "gcc" "src/distance/CMakeFiles/dita_distance.dir/dtw.cc.o.d"
  "/root/repo/src/distance/edr.cc" "src/distance/CMakeFiles/dita_distance.dir/edr.cc.o" "gcc" "src/distance/CMakeFiles/dita_distance.dir/edr.cc.o.d"
  "/root/repo/src/distance/erp.cc" "src/distance/CMakeFiles/dita_distance.dir/erp.cc.o" "gcc" "src/distance/CMakeFiles/dita_distance.dir/erp.cc.o.d"
  "/root/repo/src/distance/frechet.cc" "src/distance/CMakeFiles/dita_distance.dir/frechet.cc.o" "gcc" "src/distance/CMakeFiles/dita_distance.dir/frechet.cc.o.d"
  "/root/repo/src/distance/lcss.cc" "src/distance/CMakeFiles/dita_distance.dir/lcss.cc.o" "gcc" "src/distance/CMakeFiles/dita_distance.dir/lcss.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/dita_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dita_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
