file(REMOVE_RECURSE
  "CMakeFiles/dita_distance.dir/distance.cc.o"
  "CMakeFiles/dita_distance.dir/distance.cc.o.d"
  "CMakeFiles/dita_distance.dir/dtw.cc.o"
  "CMakeFiles/dita_distance.dir/dtw.cc.o.d"
  "CMakeFiles/dita_distance.dir/edr.cc.o"
  "CMakeFiles/dita_distance.dir/edr.cc.o.d"
  "CMakeFiles/dita_distance.dir/erp.cc.o"
  "CMakeFiles/dita_distance.dir/erp.cc.o.d"
  "CMakeFiles/dita_distance.dir/frechet.cc.o"
  "CMakeFiles/dita_distance.dir/frechet.cc.o.d"
  "CMakeFiles/dita_distance.dir/lcss.cc.o"
  "CMakeFiles/dita_distance.dir/lcss.cc.o.d"
  "libdita_distance.a"
  "libdita_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dita_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
