file(REMOVE_RECURSE
  "libdita_distance.a"
)
