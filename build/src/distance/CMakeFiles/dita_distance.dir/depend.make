# Empty dependencies file for dita_distance.
# This may be replaced when dependencies are built.
