# Empty dependencies file for dita_core.
# This may be replaced when dependencies are built.
