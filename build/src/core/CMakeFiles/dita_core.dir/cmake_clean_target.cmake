file(REMOVE_RECURSE
  "libdita_core.a"
)
