file(REMOVE_RECURSE
  "CMakeFiles/dita_core.dir/engine.cc.o"
  "CMakeFiles/dita_core.dir/engine.cc.o.d"
  "CMakeFiles/dita_core.dir/global_index.cc.o"
  "CMakeFiles/dita_core.dir/global_index.cc.o.d"
  "CMakeFiles/dita_core.dir/join_planner.cc.o"
  "CMakeFiles/dita_core.dir/join_planner.cc.o.d"
  "CMakeFiles/dita_core.dir/partitioner.cc.o"
  "CMakeFiles/dita_core.dir/partitioner.cc.o.d"
  "CMakeFiles/dita_core.dir/verifier.cc.o"
  "CMakeFiles/dita_core.dir/verifier.cc.o.d"
  "libdita_core.a"
  "libdita_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dita_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
