# Empty dependencies file for dita_geom.
# This may be replaced when dependencies are built.
