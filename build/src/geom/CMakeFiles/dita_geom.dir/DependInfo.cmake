
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/mbr.cc" "src/geom/CMakeFiles/dita_geom.dir/mbr.cc.o" "gcc" "src/geom/CMakeFiles/dita_geom.dir/mbr.cc.o.d"
  "/root/repo/src/geom/simplify.cc" "src/geom/CMakeFiles/dita_geom.dir/simplify.cc.o" "gcc" "src/geom/CMakeFiles/dita_geom.dir/simplify.cc.o.d"
  "/root/repo/src/geom/trajectory.cc" "src/geom/CMakeFiles/dita_geom.dir/trajectory.cc.o" "gcc" "src/geom/CMakeFiles/dita_geom.dir/trajectory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/dita_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
