file(REMOVE_RECURSE
  "libdita_geom.a"
)
