file(REMOVE_RECURSE
  "CMakeFiles/dita_geom.dir/mbr.cc.o"
  "CMakeFiles/dita_geom.dir/mbr.cc.o.d"
  "CMakeFiles/dita_geom.dir/simplify.cc.o"
  "CMakeFiles/dita_geom.dir/simplify.cc.o.d"
  "CMakeFiles/dita_geom.dir/trajectory.cc.o"
  "CMakeFiles/dita_geom.dir/trajectory.cc.o.d"
  "libdita_geom.a"
  "libdita_geom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dita_geom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
