# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("geom")
subdirs("distance")
subdirs("workload")
subdirs("index")
subdirs("cluster")
subdirs("core")
subdirs("baselines")
subdirs("sql")
subdirs("analytics")
subdirs("roadnet")
