file(REMOVE_RECURSE
  "CMakeFiles/dita_cluster.dir/cluster.cc.o"
  "CMakeFiles/dita_cluster.dir/cluster.cc.o.d"
  "libdita_cluster.a"
  "libdita_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dita_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
