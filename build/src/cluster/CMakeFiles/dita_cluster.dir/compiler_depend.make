# Empty compiler generated dependencies file for dita_cluster.
# This may be replaced when dependencies are built.
