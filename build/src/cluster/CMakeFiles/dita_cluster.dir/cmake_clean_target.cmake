file(REMOVE_RECURSE
  "libdita_cluster.a"
)
