file(REMOVE_RECURSE
  "libdita_sql.a"
)
