file(REMOVE_RECURSE
  "CMakeFiles/dita_sql.dir/dataframe.cc.o"
  "CMakeFiles/dita_sql.dir/dataframe.cc.o.d"
  "CMakeFiles/dita_sql.dir/engine.cc.o"
  "CMakeFiles/dita_sql.dir/engine.cc.o.d"
  "CMakeFiles/dita_sql.dir/lexer.cc.o"
  "CMakeFiles/dita_sql.dir/lexer.cc.o.d"
  "CMakeFiles/dita_sql.dir/parser.cc.o"
  "CMakeFiles/dita_sql.dir/parser.cc.o.d"
  "libdita_sql.a"
  "libdita_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dita_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
