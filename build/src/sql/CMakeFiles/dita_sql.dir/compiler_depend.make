# Empty compiler generated dependencies file for dita_sql.
# This may be replaced when dependencies are built.
