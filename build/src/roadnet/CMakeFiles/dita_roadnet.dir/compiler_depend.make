# Empty compiler generated dependencies file for dita_roadnet.
# This may be replaced when dependencies are built.
