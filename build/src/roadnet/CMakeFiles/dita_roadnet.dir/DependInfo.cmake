
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/roadnet/map_matching.cc" "src/roadnet/CMakeFiles/dita_roadnet.dir/map_matching.cc.o" "gcc" "src/roadnet/CMakeFiles/dita_roadnet.dir/map_matching.cc.o.d"
  "/root/repo/src/roadnet/network_trips.cc" "src/roadnet/CMakeFiles/dita_roadnet.dir/network_trips.cc.o" "gcc" "src/roadnet/CMakeFiles/dita_roadnet.dir/network_trips.cc.o.d"
  "/root/repo/src/roadnet/road_network.cc" "src/roadnet/CMakeFiles/dita_roadnet.dir/road_network.cc.o" "gcc" "src/roadnet/CMakeFiles/dita_roadnet.dir/road_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geom/CMakeFiles/dita_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/dita_index.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dita_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dita_util.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/dita_distance.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
