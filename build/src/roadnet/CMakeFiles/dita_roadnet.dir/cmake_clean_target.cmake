file(REMOVE_RECURSE
  "libdita_roadnet.a"
)
