file(REMOVE_RECURSE
  "CMakeFiles/dita_roadnet.dir/map_matching.cc.o"
  "CMakeFiles/dita_roadnet.dir/map_matching.cc.o.d"
  "CMakeFiles/dita_roadnet.dir/network_trips.cc.o"
  "CMakeFiles/dita_roadnet.dir/network_trips.cc.o.d"
  "CMakeFiles/dita_roadnet.dir/road_network.cc.o"
  "CMakeFiles/dita_roadnet.dir/road_network.cc.o.d"
  "libdita_roadnet.a"
  "libdita_roadnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dita_roadnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
