#!/usr/bin/env python3
"""Render a DitaService flight-recorder dump into a terminal SLO report.

Input: the JSON written by DitaService::DumpFlightRecorder() (also exported
by `bench_serving` as BENCH_serving_flight.json and by `serving_demo
--obs-export=DIR`). Stdlib-only, like the rest of tools/.

Sections:
  * per-kind latency: p50/p95/p99/p999 upper bounds from the service's
    mergeable log-bucketed histograms (every completion counted, sheds
    included), plus queue/admission wait;
  * outcome rates: shed / degraded / error / cache-hit as fractions of all
    completed requests;
  * request timeline: the recorder's last-N requests rendered oldest-first
    with phase breakdowns, flags, and merge overlap — the "what were the
    moments before the incident" view;
  * merge/cache activity inferred from the same records: which requests
    overlapped an epoch merge and the hit pattern over time.

Usage:
  obs_report.py <flight.json> [--requests N] [--slo-p99-ms F]

Exit status is 0 unless --slo-p99-ms is given and a kind's p99 exceeds it.
"""

import argparse
import sys

from bench_json_common import load_json, lookup, phase_sum


def fmt_ms(seconds):
    return f"{seconds * 1e3:9.3f}"


def pct(n, d):
    return 0.0 if d == 0 else 100.0 * n / d


def latency_table(service):
    rows = []
    for kind in ("search", "join", "knn", "queue_wait", "admission_wait"):
        q = lookup(service, f"latency.{kind}")
        if not q:
            continue
        rows.append(
            f"  {kind:<15} n={q.get('count', 0):<8} "
            f"p50={fmt_ms(q.get('p50', 0.0))}ms "
            f"p95={fmt_ms(q.get('p95', 0.0))}ms "
            f"p99={fmt_ms(q.get('p99', 0.0))}ms "
            f"p999={fmt_ms(q.get('p999', 0.0))}ms"
        )
    return rows


def outcome_rates(service):
    total = service.get("queries", 0)
    lines = [f"  completed requests: {total}"]
    for key in ("shed", "degraded", "errors"):
        n = service.get(key, 0)
        lines.append(f"  {key:<10} {n:>8}  ({pct(n, total):5.2f}%)")
    hits = service.get("cache_hits", 0)
    lookups = hits + service.get("cache_misses", 0)
    lines.append(
        f"  cache      {hits:>8}  hits of {lookups} lookups "
        f"({pct(hits, lookups):5.2f}%)"
    )
    lines.append(
        f"  ingest     {service.get('inserts', 0)} inserts, "
        f"{service.get('deletes', 0)} deletes, "
        f"{service.get('merges', 0)} merges "
        f"({service.get('merge_busy_seconds', 0.0):.3f}s merge-busy)"
    )
    return lines


def flags_of(rec):
    out = []
    for key, tag in (("cache_hit", "hit"), ("coalesced", "batch"),
                     ("degraded", "degraded"), ("shed", "SHED"),
                     ("async", "async")):
        if rec.get(key):
            out.append(tag)
    if rec.get("stop_cause", "none") != "none":
        out.append(f"stop:{rec['stop_cause']}")
    return ",".join(out) or "-"

def timeline(requests, limit):
    lines = [
        "  " + " ".join([
            f"{'id':>6}", f"{'t_arrive':>10}", f"{'kind':<6}",
            f"{'total_ms':>9}", f"{'queue':>7}", f"{'admit':>7}",
            f"{'cache':>7}", f"{'base':>8}", f"{'delta':>7}",
            f"{'mergeovl':>8}", f"{'res':>5}", f"{'ep':>3}", "flags",
        ])
    ]
    for rec in requests[-limit:]:
        lines.append("  " + " ".join([
            f"{rec.get('id', 0):>6}",
            f"{rec.get('arrival_seconds', 0.0):>10.4f}",
            f"{rec.get('kind', '?'):<6}",
            f"{rec.get('total_seconds', 0.0) * 1e3:>9.3f}",
            f"{rec.get('queue_seconds', 0.0) * 1e3:>7.3f}",
            f"{rec.get('admission_seconds', 0.0) * 1e3:>7.3f}",
            f"{rec.get('cache_seconds', 0.0) * 1e3:>7.3f}",
            f"{rec.get('base_seconds', 0.0) * 1e3:>8.3f}",
            f"{rec.get('delta_seconds', 0.0) * 1e3:>7.3f}",
            f"{rec.get('merge_overlap_seconds', 0.0) * 1e3:>8.3f}",
            f"{rec.get('results', 0):>5}",
            f"{rec.get('epoch', 0):>3}",
            flags_of(rec),
        ]))
    return lines


def activity(requests):
    """Merge/cache activity over the recorded window."""
    overlapped = [r for r in requests if r.get("merge_overlap_seconds", 0) > 0]
    hits = [r for r in requests if r.get("cache_hit")]
    epochs = sorted({r.get("epoch", 0) for r in requests})
    lines = [
        f"  recorded window: {len(requests)} requests, epochs {epochs}",
        f"  merge-overlapped: {len(overlapped)} requests "
        f"({pct(len(overlapped), len(requests)):5.2f}%)",
        f"  cache hits in window: {len(hits)} "
        f"({pct(len(hits), len(requests)):5.2f}%)",
    ]
    if overlapped:
        worst = max(overlapped,
                    key=lambda r: r.get("merge_overlap_seconds", 0.0))
        lines.append(
            f"  worst merge overlap: request {worst.get('id')} "
            f"({worst.get('merge_overlap_seconds', 0.0) * 1e3:.3f}ms of "
            f"{worst.get('total_seconds', 0.0) * 1e3:.3f}ms total)"
        )
    bad = [r for r in requests
           if abs(phase_sum(r) - r.get("total_seconds", 0.0))
           > 1e-9 + 1e-6 * abs(r.get("total_seconds", 0.0))]
    lines.append(
        "  phase telescoping: OK" if not bad else
        f"  phase telescoping: {len(bad)} records do NOT sum to total"
    )
    return lines


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("flight_json")
    ap.add_argument("--requests", type=int, default=20,
                    help="timeline rows to print (default 20)")
    ap.add_argument("--slo-p99-ms", type=float, default=None,
                    help="fail (exit 1) if any query kind's p99 exceeds this")
    args = ap.parse_args()

    doc = load_json(args.flight_json)
    service = doc.get("service", {})
    requests = doc.get("requests", [])

    print(f"== serving SLO report: {args.flight_json} ==")
    print(f"uptime: {service.get('uptime_seconds', 0.0):.3f}s, "
          f"flight recorder {len(requests)}/{service.get('capacity', 0)} "
          f"slots ({service.get('recorded', 0)} ever recorded)")
    print("\n-- latency (histogram quantile upper bounds) --")
    for line in latency_table(service):
        print(line)
    print("\n-- outcomes --")
    for line in outcome_rates(service):
        print(line)
    print("\n-- merge / cache activity --")
    for line in activity(requests):
        print(line)
    print(f"\n-- last {min(args.requests, len(requests))} requests --")
    for line in timeline(requests, args.requests):
        print(line)

    if args.slo_p99_ms is not None:
        failed = []
        for kind in ("search", "join", "knn"):
            q = lookup(service, f"latency.{kind}") or {}
            if q.get("count", 0) and q.get("p99", 0.0) * 1e3 > args.slo_p99_ms:
                failed.append((kind, q["p99"] * 1e3))
        if failed:
            for kind, ms in failed:
                print(f"SLO VIOLATION: {kind} p99 {ms:.3f}ms > "
                      f"{args.slo_p99_ms:.3f}ms", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
