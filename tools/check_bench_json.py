#!/usr/bin/env python3
"""Validate BENCH_*.json and serving-observability JSON exports.

Two layers, both stdlib-only so CI needs nothing installed (shared
helpers live in bench_json_common.py, which obs_report.py reuses):

1. Schema: the JSON must contain every required key path for its kind with
   the right primitive type. A bench binary that bit-rots its emitter (or a
   hand-edited baseline) fails fast here. The ``flight`` kind additionally
   checks every request record's phase breakdown telescopes to its total
   latency, and ``metrics`` checks the serving metric families are present.

2. Tolerance-gated diff vs a committed baseline (optional): throughput-like
   metrics may not regress below ``1 - tolerance`` of the baseline value,
   and correctness counters (wrong_answers) must be exactly zero. The
   default tolerance is deliberately loose — the smoke pass runs the
   benches in --quick mode on whatever loaded machine CI gives us, so only
   collapse-sized regressions (half the baseline throughput) should gate.

Usage:
  check_bench_json.py micro_filter <json> [--baseline <json>] [--tolerance F]
  check_bench_json.py serving     <json> [--baseline <json>] [--tolerance F]
  check_bench_json.py flight      <json>     # DumpFlightRecorder() export
  check_bench_json.py metrics     <json>     # MetricsToJson() export
"""

import argparse
import sys

from bench_json_common import (
    NUM,
    check_phase_telescoping,
    check_record_list,
    check_schema,
    load_json,
    lookup,
)

# Quantile bounds every latency rollup carries.
_QUANTS = ["count", "p50", "p95", "p99", "p999"]


# Required key paths per kind: (path, type). Paths are dotted.
SCHEMAS = {
    "micro_filter": [
        ("meta.build_type", str),
        ("meta.hardware_threads", NUM),
        ("trie_collect_ns_per_query.accumulate.tau_tight", NUM),
        ("trie_collect_ns_per_query.accumulate.tau_mid", NUM),
        ("trie_collect_ns_per_query.accumulate.tau_wide", NUM),
        ("trie_collect_ns_per_query.max.tau_mid", NUM),
        ("trie_collect_ns_per_query.edit.budget4", NUM),
        ("trie_collect_queries_per_sec", NUM),
        ("trie_collect_batch_queries_per_sec.batch_1", NUM),
        ("trie_collect_batch_queries_per_sec.batch_2", NUM),
        ("trie_collect_batch_queries_per_sec.batch_8", NUM),
        ("trie_collect_batch_queries_per_sec.batch_32", NUM),
        ("trie_collect_batch_queries_per_sec.batch_64", NUM),
        ("speedup_batch_32", NUM),
        ("rtree_probe_ns_per_query.within", NUM),
        ("rtree_probe_ns_per_query.intersect", NUM),
        ("index_build.trie_build_ms_4096", NUM),
        ("index_build.trie_build_traj_per_sec", NUM),
        ("index_build.partition_ms_16384", NUM),
        ("cell_bound.dtw_ns_per_pair.no_abandon", NUM),
        ("cell_bound.dtw_ns_per_pair.abandon_tau", NUM),
        ("cell_bound.frechet_ns_per_pair.no_abandon", NUM),
        ("cell_bound.frechet_ns_per_pair.abandon_tau", NUM),
        ("cell_bound.dtw_abandon_speedup", NUM),
        ("cell_bound.frechet_abandon_speedup", NUM),
        ("sketch.search_qps.off", NUM),
        ("sketch.search_qps.on", NUM),
        ("sketch.speedup", NUM),
        ("sketch.prune_fraction_partitions.tau_mid", NUM),
        ("sketch.prune_fraction_candidates.tau_mid", NUM),
        ("sketch.wrong_answers", NUM),
    ],
    "serving": [
        ("meta.build_type", str),
        ("meta.sanitize", str),
        ("meta.native", str),
        ("meta.timestamp_utc", str),
        ("workload.scale", NUM),
        ("workload.workers", NUM),
        ("workload.run_seconds", NUM),
        ("open_loop.queries", NUM),
        ("open_loop.qps", NUM),
        ("open_loop.p50_ms", NUM),
        ("open_loop.p99_ms", NUM),
        ("ingest.inserts", NUM),
        ("ingest.deletes", NUM),
        ("ingest.epoch_merges", NUM),
        ("bulk_join.pairs", NUM),
        ("bulk_join.matches_batch_oracle", bool),
        ("batching.off_qps", NUM),
        ("batching.on_qps", NUM),
        ("batching.gain", NUM),
        ("batching.batches", NUM),
        ("batching.avg_batch", NUM),
        ("batching.wrong_answers", NUM),
        ("cache.off_qps", NUM),
        ("cache.on_qps", NUM),
        ("cache.gain", NUM),
        ("cache.hits", NUM),
        ("cache.misses", NUM),
        ("cache.invalidations", NUM),
        ("cache.wrong_answers", NUM),
        ("service.shed", NUM),
        ("service.degraded", NUM),
        ("service.recorded", NUM),
        ("obs_overhead.off_qps", NUM),
        ("obs_overhead.on_qps", NUM),
        ("obs_overhead.overhead_pct", NUM),
        ("obs_overhead.wrong_answers", NUM),
        ("wrong_answers", NUM),
    ]
    + [
        (f"latency_hist.{kind}.{q}" + ("" if q == "count" else "_ms"), NUM)
        for kind in ("search", "knn", "join", "queue_wait")
        for q in _QUANTS
    ],
    # DitaService::DumpFlightRecorder(): service rollup + request ring.
    "flight": [
        ("service.uptime_seconds", NUM),
        ("service.queries", NUM),
        ("service.queries_search", NUM),
        ("service.queries_join", NUM),
        ("service.queries_knn", NUM),
        ("service.shed", NUM),
        ("service.degraded", NUM),
        ("service.errors", NUM),
        ("service.cache_hits", NUM),
        ("service.cache_misses", NUM),
        ("service.inserts", NUM),
        ("service.deletes", NUM),
        ("service.merges", NUM),
        ("service.merge_busy_seconds", NUM),
        ("service.coalesced_batches", NUM),
        ("service.coalesced_queries", NUM),
        ("service.recorded", NUM),
        ("service.capacity", NUM),
    ]
    + [
        (f"service.latency.{kind}.{q}", NUM)
        for kind in ("search", "join", "knn", "queue_wait", "admission_wait")
        for q in _QUANTS
    ],
}

# Fields every flight-recorder request record must carry.
FLIGHT_RECORD_FIELDS = [
    ("id", NUM),
    ("kind", str),
    ("status_code", NUM),
    ("stop_cause", str),
    ("cache_hit", bool),
    ("coalesced", bool),
    ("degraded", bool),
    ("shed", bool),
    ("async", bool),
    ("results", NUM),
    ("epoch", NUM),
    ("version", NUM),
    ("arrival_seconds", NUM),
    ("queue_seconds", NUM),
    ("admission_seconds", NUM),
    ("cache_seconds", NUM),
    ("pin_seconds", NUM),
    ("base_seconds", NUM),
    ("delta_seconds", NUM),
    ("finalize_seconds", NUM),
    ("total_seconds", NUM),
    ("merge_overlap_seconds", NUM),
]

# Metric families a serving workload with metrics enabled must register
# (names contain dots, so they are checked by direct membership, not by
# dotted-path lookup).
METRICS_REQUIRED_HISTOGRAMS = [
    "serving.latency.search_seconds",
    "serving.queue_wait_seconds",
]
METRICS_REQUIRED_GAUGES = [
    "serving.queue.depth",
    "serving.pinned_snapshots",
    "serving.delta.bytes",
    "serving.merge.backlog",
]
METRICS_REQUIRED_COUNTERS = ["serving.queries"]

# Higher-is-better metrics gated against the baseline. Latency-style
# numbers are skipped: quick mode shrinks windows, which legitimately
# shifts tail latencies.
THROUGHPUT_KEYS = {
    "micro_filter": [
        "trie_collect_queries_per_sec",
        "trie_collect_batch_queries_per_sec.batch_32",
        "speedup_batch_32",
        "cell_bound.dtw_abandon_speedup",
        "cell_bound.frechet_abandon_speedup",
        "sketch.speedup",
    ],
    # Open-loop qps is arrival-rate-capped, not a capacity; the cache gain
    # is a ratio of two closed-loop runs on the same machine, so it gates.
    "serving": ["cache.gain"],
    "flight": [],
    "metrics": [],
}

# Counters that must be exactly zero in the candidate.
ZERO_KEYS = {
    "micro_filter": ["sketch.wrong_answers"],
    "serving": ["wrong_answers", "batching.wrong_answers",
                "cache.wrong_answers", "obs_overhead.wrong_answers"],
    "flight": [],
    "metrics": [],
}


def check_metrics_export(doc):
    errors = []
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            errors.append(f"missing or non-object section: {section}")
    if errors:
        return errors
    for name in METRICS_REQUIRED_COUNTERS:
        if name not in doc["counters"]:
            errors.append(f"missing counter: {name}")
    for name in METRICS_REQUIRED_GAUGES:
        if name not in doc["gauges"]:
            errors.append(f"missing gauge: {name}")
    for name in METRICS_REQUIRED_HISTOGRAMS:
        hist = doc["histograms"].get(name)
        if not isinstance(hist, dict):
            errors.append(f"missing histogram: {name}")
            continue
        for key in ("count", "sum", "sub_bucket_bits", "buckets",
                    "p50", "p95", "p99", "p999"):
            if key not in hist:
                errors.append(f"histogram {name}: missing {key}")
    return errors


def check_baseline(kind, doc, base, tolerance):
    errors = []
    for path in THROUGHPUT_KEYS[kind]:
        cur, ref = lookup(doc, path), lookup(base, path)
        if cur is None or ref is None or not isinstance(ref, NUM) or ref <= 0:
            continue  # baseline predates the metric; schema already gates doc
        floor = ref * (1.0 - tolerance)
        if cur < floor:
            errors.append(
                f"{path} regressed: {cur:.1f} < {floor:.1f} "
                f"(baseline {ref:.1f}, tolerance {tolerance:.0%})"
            )
    return errors


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("kind",
                    choices=sorted(set(SCHEMAS) | {"metrics"}))
    ap.add_argument("json_path")
    ap.add_argument("--baseline")
    ap.add_argument("--tolerance", type=float, default=0.5)
    args = ap.parse_args()

    doc = load_json(args.json_path)

    if args.kind == "metrics":
        errors = check_metrics_export(doc)
    else:
        errors = check_schema(SCHEMAS[args.kind], doc)
    if args.kind == "flight":
        errors.extend(
            check_record_list(doc, "requests", FLIGHT_RECORD_FIELDS))
        errors.extend(check_phase_telescoping(doc, "requests"))
    for path in ZERO_KEYS[args.kind]:
        val = lookup(doc, path)
        if val not in (0, None):
            errors.append(f"{path} must be 0, got {val}")
    if args.baseline:
        base = load_json(args.baseline)
        errors.extend(check_baseline(args.kind, doc, base, args.tolerance))

    if errors:
        for e in errors:
            print(f"check_bench_json[{args.kind}]: {e}", file=sys.stderr)
        return 1
    print(f"check_bench_json[{args.kind}]: {args.json_path} ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
