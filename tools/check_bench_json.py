#!/usr/bin/env python3
"""Validate BENCH_*.json emitted by the bench binaries.

Two layers, both stdlib-only so CI needs nothing installed:

1. Schema: the JSON must contain every required key path for its kind with
   the right primitive type. A bench binary that bit-rots its emitter (or a
   hand-edited baseline) fails fast here.

2. Tolerance-gated diff vs a committed baseline (optional): throughput-like
   metrics may not regress below ``1 - tolerance`` of the baseline value,
   and correctness counters (wrong_answers) must be exactly zero. The
   default tolerance is deliberately loose — the smoke pass runs the
   benches in --quick mode on whatever loaded machine CI gives us, so only
   collapse-sized regressions (half the baseline throughput) should gate.

Usage:
  check_bench_json.py micro_filter <json> [--baseline <json>] [--tolerance F]
  check_bench_json.py serving     <json> [--baseline <json>] [--tolerance F]
"""

import argparse
import json
import sys

NUM = (int, float)

# Required key paths per kind: (path, type). Paths are dotted.
SCHEMAS = {
    "micro_filter": [
        ("meta.build_type", str),
        ("meta.hardware_threads", NUM),
        ("trie_collect_ns_per_query.accumulate.tau_tight", NUM),
        ("trie_collect_ns_per_query.accumulate.tau_mid", NUM),
        ("trie_collect_ns_per_query.accumulate.tau_wide", NUM),
        ("trie_collect_ns_per_query.max.tau_mid", NUM),
        ("trie_collect_ns_per_query.edit.budget4", NUM),
        ("trie_collect_queries_per_sec", NUM),
        ("trie_collect_batch_queries_per_sec.batch_1", NUM),
        ("trie_collect_batch_queries_per_sec.batch_2", NUM),
        ("trie_collect_batch_queries_per_sec.batch_8", NUM),
        ("trie_collect_batch_queries_per_sec.batch_32", NUM),
        ("trie_collect_batch_queries_per_sec.batch_64", NUM),
        ("speedup_batch_32", NUM),
        ("rtree_probe_ns_per_query.within", NUM),
        ("rtree_probe_ns_per_query.intersect", NUM),
        ("index_build.trie_build_ms_4096", NUM),
        ("index_build.trie_build_traj_per_sec", NUM),
        ("index_build.partition_ms_16384", NUM),
        ("cell_bound.dtw_ns_per_pair.no_abandon", NUM),
        ("cell_bound.dtw_ns_per_pair.abandon_tau", NUM),
        ("cell_bound.frechet_ns_per_pair.no_abandon", NUM),
        ("cell_bound.frechet_ns_per_pair.abandon_tau", NUM),
        ("cell_bound.dtw_abandon_speedup", NUM),
        ("cell_bound.frechet_abandon_speedup", NUM),
        ("sketch.search_qps.off", NUM),
        ("sketch.search_qps.on", NUM),
        ("sketch.speedup", NUM),
        ("sketch.prune_fraction_partitions.tau_mid", NUM),
        ("sketch.prune_fraction_candidates.tau_mid", NUM),
        ("sketch.wrong_answers", NUM),
    ],
    "serving": [
        ("meta.build_type", str),
        ("workload.scale", NUM),
        ("workload.workers", NUM),
        ("workload.run_seconds", NUM),
        ("open_loop.queries", NUM),
        ("open_loop.qps", NUM),
        ("open_loop.p50_ms", NUM),
        ("open_loop.p99_ms", NUM),
        ("ingest.inserts", NUM),
        ("ingest.deletes", NUM),
        ("ingest.epoch_merges", NUM),
        ("bulk_join.pairs", NUM),
        ("bulk_join.matches_batch_oracle", bool),
        ("batching.off_qps", NUM),
        ("batching.on_qps", NUM),
        ("batching.gain", NUM),
        ("batching.batches", NUM),
        ("batching.avg_batch", NUM),
        ("batching.wrong_answers", NUM),
        ("cache.off_qps", NUM),
        ("cache.on_qps", NUM),
        ("cache.gain", NUM),
        ("cache.hits", NUM),
        ("cache.misses", NUM),
        ("cache.invalidations", NUM),
        ("cache.wrong_answers", NUM),
        ("wrong_answers", NUM),
    ],
}

# Higher-is-better metrics gated against the baseline. Latency-style
# numbers are skipped: quick mode shrinks windows, which legitimately
# shifts tail latencies.
THROUGHPUT_KEYS = {
    "micro_filter": [
        "trie_collect_queries_per_sec",
        "trie_collect_batch_queries_per_sec.batch_32",
        "speedup_batch_32",
        "cell_bound.dtw_abandon_speedup",
        "cell_bound.frechet_abandon_speedup",
        "sketch.speedup",
    ],
    # Open-loop qps is arrival-rate-capped, not a capacity; the cache gain
    # is a ratio of two closed-loop runs on the same machine, so it gates.
    "serving": ["cache.gain"],
}

# Counters that must be exactly zero in the candidate.
ZERO_KEYS = {
    "micro_filter": ["sketch.wrong_answers"],
    "serving": ["wrong_answers", "batching.wrong_answers",
                "cache.wrong_answers"],
}


def lookup(doc, path):
    cur = doc
    for part in path.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    return cur


def check_schema(kind, doc):
    errors = []
    for path, typ in SCHEMAS[kind]:
        val = lookup(doc, path)
        if val is None:
            errors.append(f"missing key: {path}")
        elif not isinstance(val, typ) or (typ is NUM and isinstance(val, bool)):
            errors.append(f"wrong type for {path}: {type(val).__name__}")
    return errors


def check_baseline(kind, doc, base, tolerance):
    errors = []
    for path in THROUGHPUT_KEYS[kind]:
        cur, ref = lookup(doc, path), lookup(base, path)
        if cur is None or ref is None or not isinstance(ref, NUM) or ref <= 0:
            continue  # baseline predates the metric; schema already gates doc
        floor = ref * (1.0 - tolerance)
        if cur < floor:
            errors.append(
                f"{path} regressed: {cur:.1f} < {floor:.1f} "
                f"(baseline {ref:.1f}, tolerance {tolerance:.0%})"
            )
    return errors


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("kind", choices=sorted(SCHEMAS))
    ap.add_argument("json_path")
    ap.add_argument("--baseline")
    ap.add_argument("--tolerance", type=float, default=0.5)
    args = ap.parse_args()

    with open(args.json_path) as f:
        doc = json.load(f)

    errors = check_schema(args.kind, doc)
    for path in ZERO_KEYS[args.kind]:
        val = lookup(doc, path)
        if val not in (0, None):
            errors.append(f"{path} must be 0, got {val}")
    if args.baseline:
        with open(args.baseline) as f:
            base = json.load(f)
        errors.extend(check_baseline(args.kind, doc, base, args.tolerance))

    if errors:
        for e in errors:
            print(f"check_bench_json[{args.kind}]: {e}", file=sys.stderr)
        return 1
    print(f"check_bench_json[{args.kind}]: {args.json_path} ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
