"""Shared helpers for the stdlib-only bench/obs JSON tooling.

Used by check_bench_json.py (CI schema gate) and obs_report.py (SLO
report renderer). Kept dependency-free on purpose: CI and operators run
these with whatever python3 the box has.
"""

import json

# Numeric JSON values. bool is an int subclass in Python, so type checks
# that use NUM must reject bools explicitly (is_num below does).
NUM = (int, float)


def load_json(path):
    with open(path) as f:
        return json.load(f)


def lookup(doc, path):
    """Resolve a dotted key path; None when any hop is missing."""
    cur = doc
    for part in path.split("."):
        if not isinstance(cur, dict) or part not in cur:
            return None
        cur = cur[part]
    return cur


def is_num(val):
    return isinstance(val, NUM) and not isinstance(val, bool)


def type_ok(val, typ):
    if typ is NUM:
        return is_num(val)
    return isinstance(val, typ)


def check_schema(schema, doc, prefix=""):
    """Check (dotted_path, type) pairs against doc; returns error strings."""
    errors = []
    for path, typ in schema:
        val = lookup(doc, path)
        shown = f"{prefix}{path}"
        if val is None:
            errors.append(f"missing key: {shown}")
        elif not type_ok(val, typ):
            errors.append(f"wrong type for {shown}: {type(val).__name__}")
    return errors


def check_record_list(doc, path, fields, max_errors=10):
    """`path` must hold a list of objects each carrying `fields`.

    fields is a list of (key, type) pairs checked on every record;
    reporting stops after max_errors so a systematically-broken emitter
    doesn't flood CI logs.
    """
    records = lookup(doc, path)
    if not isinstance(records, list):
        return [f"missing or non-list: {path}"]
    errors = []
    for i, rec in enumerate(records):
        if len(errors) >= max_errors:
            errors.append(f"{path}: further errors suppressed")
            break
        if not isinstance(rec, dict):
            errors.append(f"{path}[{i}]: not an object")
            continue
        for key, typ in fields:
            if key not in rec:
                errors.append(f"{path}[{i}]: missing {key}")
            elif not type_ok(rec[key], typ):
                errors.append(
                    f"{path}[{i}].{key}: wrong type "
                    f"{type(rec[key]).__name__}"
                )
    return errors


# The telescoping phases of a flight-recorder request record, in lifecycle
# order. Their sum equals total_seconds up to floating-point rounding
# (finalize is defined as the remainder in DitaService::FinishRequest).
PHASE_KEYS = [
    "queue_seconds",
    "admission_seconds",
    "cache_seconds",
    "pin_seconds",
    "base_seconds",
    "delta_seconds",
    "finalize_seconds",
]


def phase_sum(record):
    return sum(record.get(k, 0.0) for k in PHASE_KEYS)


def check_phase_telescoping(doc, path="requests", rel_tol=1e-6,
                            abs_tol=1e-9, max_errors=10):
    """Every request's phase breakdown must telescope to its total."""
    records = lookup(doc, path)
    if not isinstance(records, list):
        return [f"missing or non-list: {path}"]
    errors = []
    for i, rec in enumerate(records):
        if len(errors) >= max_errors:
            errors.append(f"{path}: further errors suppressed")
            break
        if not isinstance(rec, dict):
            continue
        total = rec.get("total_seconds")
        if not is_num(total):
            continue
        s = phase_sum(rec)
        if abs(s - total) > abs_tol + rel_tol * abs(total):
            errors.append(
                f"{path}[{i}]: phases sum to {s:.9f} != "
                f"total {total:.9f}"
            )
    return errors
