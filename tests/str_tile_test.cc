#include "index/str_tile.h"

#include <numeric>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dita {
namespace {

std::vector<uint32_t> Iota(size_t n) {
  std::vector<uint32_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(StrTileTest, EmptyAndDegenerateInputs) {
  auto key = [](uint32_t) { return Point{0, 0}; };
  EXPECT_TRUE(StrTile({}, key, 4).empty());
  EXPECT_TRUE(StrTile(Iota(5), key, 0).empty());
  auto one = StrTile(Iota(5), key, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0].size(), 5u);
}

TEST(StrTileTest, EveryItemAssignedExactlyOnce) {
  Rng rng(5);
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back(Point{rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  auto key = [&](uint32_t i) { return pts[i]; };
  for (size_t groups : {2u, 3u, 7u, 16u, 100u}) {
    auto tiles = StrTile(Iota(pts.size()), key, groups);
    std::set<uint32_t> seen;
    for (const auto& tile : tiles) {
      for (uint32_t i : tile) EXPECT_TRUE(seen.insert(i).second);
    }
    EXPECT_EQ(seen.size(), pts.size()) << "groups=" << groups;
  }
}

TEST(StrTileTest, GroupsAreBalanced) {
  Rng rng(6);
  std::vector<Point> pts;
  for (int i = 0; i < 1000; ++i) {
    pts.push_back(Point{rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  auto key = [&](uint32_t i) { return pts[i]; };
  auto tiles = StrTile(Iota(pts.size()), key, 16);
  size_t max_size = 0, min_size = pts.size();
  for (const auto& tile : tiles) {
    max_size = std::max(max_size, tile.size());
    min_size = std::min(min_size, tile.size());
  }
  EXPECT_LE(max_size, 3 * (pts.size() / tiles.size()));
  EXPECT_GE(min_size, 1u);
}

TEST(StrTileTest, BalancedUnderDuplicatePoints) {
  // Identical keys (fully degenerate): STR must still split by count.
  auto key = [](uint32_t) { return Point{0.5, 0.5}; };
  auto tiles = StrTile(Iota(256), key, 16);
  EXPECT_GE(tiles.size(), 8u);
  for (const auto& tile : tiles) EXPECT_LE(tile.size(), 64u);
}

TEST(StrTileTest, SpatialCoherence) {
  // Points on a line: consecutive x-ranges must land in distinct groups and
  // each group must cover a contiguous range.
  std::vector<Point> pts;
  for (int i = 0; i < 100; ++i) pts.push_back(Point{double(i), 0});
  auto key = [&](uint32_t i) { return pts[i]; };
  auto tiles = StrTile(Iota(pts.size()), key, 4);
  for (const auto& tile : tiles) {
    uint32_t lo = *std::min_element(tile.begin(), tile.end());
    uint32_t hi = *std::max_element(tile.begin(), tile.end());
    EXPECT_EQ(hi - lo + 1, tile.size()) << "group not contiguous in x";
  }
}

TEST(StrTileTest, AtMostRequestedGroupsPlusSlack) {
  Rng rng(7);
  std::vector<Point> pts;
  for (int i = 0; i < 333; ++i) {
    pts.push_back(Point{rng.Uniform(0, 1), rng.Uniform(0, 1)});
  }
  auto key = [&](uint32_t i) { return pts[i]; };
  for (size_t groups : {2u, 5u, 9u, 32u}) {
    auto tiles = StrTile(Iota(pts.size()), key, groups);
    // STR's slab rounding can add about one extra group per slab.
    EXPECT_LE(tiles.size(), groups + static_cast<size_t>(std::sqrt(groups)) + 2);
  }
}

}  // namespace
}  // namespace dita
