#include "index/trie_index.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "distance/distance.h"
#include "workload/generator.h"

namespace dita {
namespace {

std::vector<Trajectory> PaperTrajectories() {
  return {
      Trajectory(1, {{1, 1}, {1, 2}, {3, 2}, {4, 4}, {4, 5}, {5, 5}}),
      Trajectory(2, {{0, 1}, {0, 2}, {4, 2}, {4, 4}, {4, 5}, {5, 5}}),
      Trajectory(3, {{1, 1}, {4, 1}, {4, 3}, {4, 5}, {4, 6}, {5, 6}}),
      Trajectory(4, {{0, 4}, {0, 5}, {3, 3}, {3, 7}, {7, 5}}),
      Trajectory(5, {{0, 4}, {0, 5}, {3, 7}, {3, 3}, {7, 5}}),
  };
}

TrieIndex::Options PaperOptions() {
  TrieIndex::Options opts;
  opts.num_pivots = 2;
  opts.align_fanout = 2;
  opts.pivot_fanout = 2;
  opts.leaf_capacity = 1;
  opts.strategy = PivotStrategy::kNeighborDistance;
  return opts;
}

std::set<TrajectoryId> CandidateIds(const TrieIndex& index,
                                    const TrieIndex::SearchSpec& spec) {
  std::vector<uint32_t> positions;
  index.CollectCandidates(spec, &positions);
  std::set<TrajectoryId> ids;
  for (uint32_t pos : positions) ids.insert(index.trajectory(pos).id());
  return ids;
}

TEST(TrieIndexTest, BuildValidatesInput) {
  TrieIndex index;
  TrieIndex::Options opts;
  opts.align_fanout = 1;
  EXPECT_FALSE(index.Build(PaperTrajectories(), opts).ok());
  opts = TrieIndex::Options();
  opts.leaf_capacity = 0;
  EXPECT_FALSE(index.Build(PaperTrajectories(), opts).ok());
  opts = TrieIndex::Options();
  EXPECT_FALSE(index.Build({Trajectory()}, opts).ok());
  EXPECT_TRUE(index.Build(PaperTrajectories(), opts).ok());
}

TEST(TrieIndexTest, PaperExample52QueryT4) {
  // Example 5.2: querying the Figure 5 trie with Q = T4, tau = 3. The paper's
  // hand-drawn grouping yields the single candidate T4; our STR grouping may
  // tile buckets differently (grouping is unspecified in §4.2.3), so we
  // assert the filter contract instead: T4 survives, T1/T3 (first point
  // (1,1), 3.16 > tau from Q's first point) are pruned, and verification
  // yields exactly {T4}.
  TrieIndex index;
  ASSERT_TRUE(index.Build(PaperTrajectories(), PaperOptions()).ok());
  Trajectory q(4, {{0, 4}, {0, 5}, {3, 3}, {3, 7}, {7, 5}});
  TrieIndex::SearchSpec spec;
  spec.query = &q;
  spec.tau = 3.0;
  spec.mode = PruneMode::kAccumulate;
  auto ids = CandidateIds(index, spec);
  EXPECT_TRUE(ids.count(4));
  EXPECT_FALSE(ids.count(1));
  EXPECT_FALSE(ids.count(3));

  auto dtw = *MakeDistance(DistanceType::kDTW);
  std::set<TrajectoryId> verified;
  std::vector<uint32_t> positions;
  index.CollectCandidates(spec, &positions);
  for (uint32_t pos : positions) {
    if (dtw->WithinThreshold(index.trajectory(pos), q, spec.tau)) {
      verified.insert(index.trajectory(pos).id());
    }
  }
  EXPECT_EQ(verified, (std::set<TrajectoryId>{4}));
}

TEST(TrieIndexTest, QueryT1Tau3KeepsSimilarSet) {
  // Example 2.6: {T1, T2} are the true answers; the filter must keep both
  // (it may keep more).
  TrieIndex index;
  ASSERT_TRUE(index.Build(PaperTrajectories(), PaperOptions()).ok());
  Trajectory q(1, {{1, 1}, {1, 2}, {3, 2}, {4, 4}, {4, 5}, {5, 5}});
  TrieIndex::SearchSpec spec;
  spec.query = &q;
  spec.tau = 3.0;
  spec.mode = PruneMode::kAccumulate;
  auto ids = CandidateIds(index, spec);
  EXPECT_TRUE(ids.count(1));
  EXPECT_TRUE(ids.count(2));
}

TEST(TrieIndexTest, ZeroThresholdStillFindsExactMatch) {
  TrieIndex index;
  ASSERT_TRUE(index.Build(PaperTrajectories(), PaperOptions()).ok());
  Trajectory q(1, {{1, 1}, {1, 2}, {3, 2}, {4, 4}, {4, 5}, {5, 5}});
  TrieIndex::SearchSpec spec;
  spec.query = &q;
  spec.tau = 0.0;
  spec.mode = PruneMode::kAccumulate;
  EXPECT_TRUE(CandidateIds(index, spec).count(1));
}

TEST(TrieIndexTest, NodeCountAndByteSize) {
  TrieIndex index;
  ASSERT_TRUE(index.Build(PaperTrajectories(), PaperOptions()).ok());
  EXPECT_GT(index.NodeCount(), 1u);
  EXPECT_GT(index.ByteSize(), 0u);
  EXPECT_EQ(index.size(), 5u);
}

struct FilterCase {
  DistanceType type;
  double tau;
};

/// The load-bearing property: the trie filter never prunes a true answer,
/// across distance functions, thresholds, fanouts, pivot counts, strategies.
class TrieFilterProperty
    : public ::testing::TestWithParam<std::tuple<DistanceType, double, size_t>> {
};

TEST_P(TrieFilterProperty, FilterIsSupersetOfAnswers) {
  const DistanceType type = std::get<0>(GetParam());
  const double tau = std::get<1>(GetParam());
  const size_t num_pivots = std::get<2>(GetParam());

  GeneratorConfig cfg;
  cfg.cardinality = 250;
  cfg.avg_len = 14;
  cfg.min_len = 4;
  cfg.max_len = 40;
  cfg.region = MBR(Point{0, 0}, Point{1, 1});
  cfg.step = 0.01;
  cfg.seed = 77 + num_pivots;
  Dataset ds = GenerateTaxiDataset(cfg);

  DistanceParams params;
  params.epsilon = 0.02;
  params.delta = 4;
  auto dist = *MakeDistance(type, params);

  TrieIndex::Options opts;
  opts.num_pivots = num_pivots;
  opts.align_fanout = 8;
  opts.pivot_fanout = 4;
  opts.leaf_capacity = 4;
  TrieIndex index;
  ASSERT_TRUE(index.Build(ds.trajectories(), opts).ok());

  auto queries = ds.SampleQueries(15, 5);
  for (const auto& q : queries) {
    TrieIndex::SearchSpec spec;
    spec.query = &q;
    spec.tau = tau;
    spec.mode = dist->prune_mode();
    spec.epsilon = dist->matching_epsilon();
    if (type == DistanceType::kLCSS) spec.lcss_delta = params.delta;

    std::vector<uint32_t> candidates;
    index.CollectCandidates(spec, &candidates);
    std::set<uint32_t> candidate_set(candidates.begin(), candidates.end());

    size_t true_answers = 0;
    for (uint32_t pos = 0; pos < index.size(); ++pos) {
      if (dist->Compute(index.trajectory(pos), q) <= tau) {
        ++true_answers;
        EXPECT_TRUE(candidate_set.count(pos))
            << dist->name() << " tau=" << tau << " K=" << num_pivots
            << " pruned true answer id=" << index.trajectory(pos).id();
      }
    }
    EXPECT_GE(true_answers, 1u);  // the query itself is in the dataset
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TrieFilterProperty,
    ::testing::Combine(::testing::Values(DistanceType::kDTW,
                                         DistanceType::kFrechet,
                                         DistanceType::kEDR,
                                         DistanceType::kLCSS,
                                         DistanceType::kERP),
                       ::testing::Values(0.01, 0.05, 2.0),
                       ::testing::Values(2, 4)),
    [](const auto& info) {
      const char* d = DistanceTypeName(std::get<0>(info.param));
      const double tau = std::get<1>(info.param);
      const size_t k = std::get<2>(info.param);
      return std::string(d) + "_tau" +
             std::to_string(static_cast<int>(tau * 100)) + "_K" +
             std::to_string(k);
    });

/// Pruning effectiveness: on clustered data with a small threshold the trie
/// should discard a large share of the partition.
TEST(TrieIndexTest, FilterActuallyPrunes) {
  GeneratorConfig cfg;
  cfg.cardinality = 400;
  cfg.region = MBR(Point{0, 0}, Point{1, 1});
  cfg.step = 0.01;
  cfg.seed = 123;
  Dataset ds = GenerateTaxiDataset(cfg);
  TrieIndex::Options opts;
  opts.num_pivots = 4;
  TrieIndex index;
  ASSERT_TRUE(index.Build(ds.trajectories(), opts).ok());

  Trajectory q = ds[0];
  TrieIndex::SearchSpec spec;
  spec.query = &q;
  spec.tau = 0.02;
  spec.mode = PruneMode::kAccumulate;
  std::vector<uint32_t> candidates;
  index.CollectCandidates(spec, &candidates);
  EXPECT_LT(candidates.size(), ds.size() / 2)
      << "trie pruned less than half the partition";
}

}  // namespace
}  // namespace dita
