#include "geom/trajectory.h"

#include <gtest/gtest.h>

namespace dita {
namespace {

TEST(TrajectoryTest, BasicAccessors) {
  Trajectory t(7, {{1, 1}, {2, 2}, {3, 1}});
  EXPECT_EQ(t.id(), 7);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.front(), (Point{1, 1}));
  EXPECT_EQ(t.back(), (Point{3, 1}));
  EXPECT_EQ(t[1], (Point{2, 2}));
}

TEST(TrajectoryTest, ComputeMBR) {
  Trajectory t(0, {{1, 5}, {-2, 3}, {4, -1}});
  MBR m = t.ComputeMBR();
  EXPECT_EQ(m.lo(), (Point{-2, -1}));
  EXPECT_EQ(m.hi(), (Point{4, 5}));
}

TEST(TrajectoryTest, EmptyTrajectoryMBR) {
  Trajectory t;
  EXPECT_TRUE(t.ComputeMBR().empty());
  EXPECT_TRUE(t.empty());
}

TEST(TrajectoryTest, ByteSizeScalesWithPoints) {
  Trajectory a(0, {{0, 0}});
  Trajectory b(0, {{0, 0}, {1, 1}});
  EXPECT_EQ(b.ByteSize() - a.ByteSize(), sizeof(Point));
}

TEST(TrajectoryTest, DebugStringMentionsIdAndPoints) {
  Trajectory t(3, {{1, 2}});
  EXPECT_EQ(t.DebugString(), "T3[(1,2)]");
}

}  // namespace
}  // namespace dita
