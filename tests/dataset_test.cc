#include "workload/dataset.h"

#include <cstdio>

#include <gtest/gtest.h>

namespace dita {
namespace {

Dataset MakeDataset(size_t n) {
  Dataset ds;
  for (size_t i = 0; i < n; ++i) {
    ds.Add(Trajectory(static_cast<TrajectoryId>(i),
                      {{double(i), 0.0}, {double(i), 1.0}, {double(i), 2.0}}));
  }
  return ds;
}

TEST(DatasetTest, BasicAccessors) {
  Dataset ds = MakeDataset(5);
  EXPECT_EQ(ds.size(), 5u);
  EXPECT_EQ(ds.TotalPoints(), 15u);
  EXPECT_EQ(ds[2].id(), 2);
  EXPECT_FALSE(ds.empty());
}

TEST(DatasetTest, SampleRates) {
  Dataset ds = MakeDataset(100);
  auto half = ds.Sample(0.5);
  ASSERT_TRUE(half.ok());
  EXPECT_EQ(half->size(), 50u);
  auto full = ds.Sample(1.0);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->size(), 100u);
  EXPECT_FALSE(ds.Sample(0.0).ok());
  EXPECT_FALSE(ds.Sample(1.5).ok());
}

TEST(DatasetTest, SampleIsDeterministicAndWithoutReplacement) {
  Dataset ds = MakeDataset(100);
  auto a = ds.Sample(0.3, 5);
  auto b = ds.Sample(0.3, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  std::set<TrajectoryId> ids;
  for (size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i].id(), (*b)[i].id());
    ids.insert((*a)[i].id());
  }
  EXPECT_EQ(ids.size(), a->size());  // no duplicates
}

TEST(DatasetTest, SampleQueriesDeterministic) {
  Dataset ds = MakeDataset(20);
  auto q1 = ds.SampleQueries(10, 3);
  auto q2 = ds.SampleQueries(10, 3);
  ASSERT_EQ(q1.size(), 10u);
  for (size_t i = 0; i < 10; ++i) EXPECT_EQ(q1[i].id(), q2[i].id());
}

TEST(DatasetTest, CsvRoundTrip) {
  Dataset ds = MakeDataset(7);
  const std::string path = ::testing::TempDir() + "/dita_dataset_test.csv";
  ASSERT_TRUE(ds.WriteCsv(path).ok());
  auto loaded = Dataset::ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ((*loaded)[i].id(), ds[i].id());
    ASSERT_EQ((*loaded)[i].size(), ds[i].size());
    for (size_t j = 0; j < ds[i].size(); ++j) {
      EXPECT_DOUBLE_EQ((*loaded)[i][j].x, ds[i][j].x);
      EXPECT_DOUBLE_EQ((*loaded)[i][j].y, ds[i][j].y);
    }
  }
  std::remove(path.c_str());
}

TEST(DatasetTest, ReadCsvErrors) {
  EXPECT_FALSE(Dataset::ReadCsv("/nonexistent/really/no.csv").ok());
}

TEST(DatasetTest, ComputeStats) {
  Dataset ds;
  ds.Add(Trajectory(0, {{0, 0}, {1, 1}}));
  ds.Add(Trajectory(1, {{0, 0}, {1, 1}, {2, 2}, {3, 3}}));
  auto s = ds.ComputeStats();
  EXPECT_EQ(s.cardinality, 2u);
  EXPECT_DOUBLE_EQ(s.avg_len, 3.0);
  EXPECT_EQ(s.min_len, 2u);
  EXPECT_EQ(s.max_len, 4u);
  EXPECT_GT(s.bytes, 0u);
}

}  // namespace
}  // namespace dita
