#include "core/global_index.h"

#include <set>

#include <gtest/gtest.h>

#include "core/partitioner.h"
#include "distance/distance.h"
#include "workload/generator.h"

namespace dita {
namespace {

struct Built {
  GlobalIndex index;
  std::vector<std::vector<Trajectory>> partitions;
};

Built BuildFromDataset(const Dataset& ds, size_t ng) {
  Built b;
  auto parts = PartitionByFirstLast(ds.trajectories(), ng);
  EXPECT_TRUE(parts.ok());
  b.partitions = std::move(*parts);
  std::vector<GlobalIndex::PartitionSummary> summaries(b.partitions.size());
  for (size_t p = 0; p < b.partitions.size(); ++p) {
    for (const auto& t : b.partitions[p]) {
      summaries[p].mbr_first.Expand(t.front());
      summaries[p].mbr_last.Expand(t.back());
    }
  }
  b.index.Build(std::move(summaries));
  return b;
}

Dataset SmallDataset() {
  GeneratorConfig cfg;
  cfg.cardinality = 600;
  cfg.region = MBR(Point{0, 0}, Point{1, 1});
  cfg.step = 0.01;
  cfg.seed = 41;
  return GenerateTaxiDataset(cfg);
}

/// The global filter must keep every partition that contains a true answer
/// (for every distance mode), since local search only runs on relevant
/// partitions.
class GlobalIndexProperty : public ::testing::TestWithParam<DistanceType> {};

TEST_P(GlobalIndexProperty, NeverPrunesAnswerPartitions) {
  Dataset ds = SmallDataset();
  Built b = BuildFromDataset(ds, 4);
  DistanceParams params;
  params.epsilon = 0.01;
  params.delta = 4;
  auto dist = *MakeDistance(GetParam(), params);
  const Point* erp_gap =
      GetParam() == DistanceType::kERP ? &params.erp_gap : nullptr;

  auto queries = ds.SampleQueries(10, 9);
  const double tau = GetParam() == DistanceType::kEDR ||
                             GetParam() == DistanceType::kLCSS
                         ? 3.0
                         : 0.05;
  for (const auto& q : queries) {
    auto relevant = b.index.RelevantPartitions(
        q, tau, dist->prune_mode(), dist->matching_epsilon(), erp_gap);
    std::set<uint32_t> relevant_set(relevant.begin(), relevant.end());
    for (uint32_t p = 0; p < b.partitions.size(); ++p) {
      bool has_answer = false;
      for (const auto& t : b.partitions[p]) {
        if (dist->Compute(t, q) <= tau) {
          has_answer = true;
          break;
        }
      }
      if (has_answer) {
        EXPECT_TRUE(relevant_set.count(p))
            << dist->name() << ": partition " << p << " pruned but has answers";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistances, GlobalIndexProperty,
                         ::testing::Values(DistanceType::kDTW,
                                           DistanceType::kFrechet,
                                           DistanceType::kEDR,
                                           DistanceType::kLCSS,
                                           DistanceType::kERP),
                         [](const auto& info) {
                           return DistanceTypeName(info.param);
                         });

TEST(GlobalIndexTest, PrunesFarPartitionsForDtw) {
  Dataset ds = SmallDataset();
  Built b = BuildFromDataset(ds, 4);
  // A query in one corner with a small threshold cannot touch partitions in
  // the opposite corner.
  Trajectory q(0, {{0.01, 0.01}, {0.02, 0.02}});
  auto relevant =
      b.index.RelevantPartitions(q, 0.01, PruneMode::kAccumulate, 0.0);
  EXPECT_LT(relevant.size(), b.partitions.size());
}

TEST(GlobalIndexTest, PartitionsMayJoinSymmetricLogic) {
  Dataset ds = SmallDataset();
  Built b = BuildFromDataset(ds, 4);
  // A partition always may-join itself (zero rectangle distance).
  for (uint32_t p = 0; p < b.index.num_partitions(); ++p) {
    const auto& s = b.index.summary(p);
    EXPECT_TRUE(b.index.PartitionsMayJoin(p, s.mbr_first, s.mbr_last, 0.0,
                                          PruneMode::kAccumulate));
  }
  // ERP disables rectangle pruning.
  Point gap{0, 0};
  MBR far_away(Point{100, 100}, Point{101, 101});
  EXPECT_TRUE(b.index.PartitionsMayJoin(0, far_away, far_away, 0.0,
                                        PruneMode::kAccumulate, 0.0, &gap));
}

TEST(GlobalIndexTest, ByteSizeIndependentOfDataSize) {
  // Appendix B: global index size depends on the number of partitions only.
  Dataset big = SmallDataset();
  auto half = big.Sample(0.5, 3);
  ASSERT_TRUE(half.ok());
  Built b1 = BuildFromDataset(big, 4);
  Built b2 = BuildFromDataset(*half, 4);
  // Equal partition counts imply equal summary storage (R-tree node counts
  // may differ by a node or two; allow slack).
  EXPECT_NEAR(static_cast<double>(b1.index.ByteSize()),
              static_cast<double>(b2.index.ByteSize()),
              0.25 * static_cast<double>(b1.index.ByteSize()));
}

}  // namespace
}  // namespace dita
