// Seeded chaos/soak harness: injected cluster faults + randomized mid-flight
// cancellations + tight resource budgets + concurrent queries through the
// admission gate. Run by ci.sh's `chaos` pass under both ASan/UBSan and TSan
// across a fixed seed matrix, so "no leaks, no deadlocks, budgets released on
// every exit path" is machine-checked, not asserted in prose.
//
// Determinism contract: with serial execution (execution_threads = 0) and
// only virtual-clock stop causes (self-cancel ops triggers, resource
// budgets, extreme virtual deadlines — never the wall clock), a soak run is
// a pure function of its seed: repeating it must reproduce every partial
// result bit-for-bit.

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workload/generator.h"

namespace dita {
namespace {

constexpr uint64_t kSeedMatrix[] = {11, 22, 33, 44, 55};

Dataset CityDataset(size_t n, uint64_t seed) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.region = MBR(Point{0, 0}, Point{1, 1});
  cfg.step = 0.01;
  cfg.avg_len = 16;
  cfg.min_len = 4;
  cfg.max_len = 50;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

DitaConfig SmallConfig() {
  DitaConfig config;
  config.build.ng = 3;
  config.build.trie.num_pivots = 3;
  config.build.trie.align_fanout = 8;
  config.build.trie.pivot_fanout = 4;
  config.build.trie.leaf_capacity = 4;
  config.distance_params.epsilon = 0.01;
  config.verify.cell_size = 0.02;
  return config;
}

FaultPlan ChaosPlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.transient_failure_prob = 0.2;
  plan.straggler_prob = 0.1;
  plan.straggler_multiplier = 4.0;
  plan.crash_worker = 2;
  plan.crash_at_stage = 3;  // stage 0 is the index build
  return plan;
}

template <typename T>
bool IsSubsetOf(const std::vector<T>& sub, const std::vector<T>& super) {
  const std::set<T> all(super.begin(), super.end());
  for (const T& x : sub) {
    if (all.find(x) == all.end()) return false;
  }
  return true;
}

/// Applies one seeded constraint mix to a fresh context. Only virtual-clock
/// causes, so serial soak runs stay deterministic.
void ConstrainContext(QueryContext* ctx, std::mt19937_64* rng) {
  switch ((*rng)() % 6) {
    case 0:  // unconstrained
      break;
    case 1:
      ctx->CancelAfterOps(1 + (*rng)() % 8192);
      break;
    case 2: {
      ResourceBudget b;
      b.max_candidates = 1 + (*rng)() % 64;
      ctx->set_budget(b);
      break;
    }
    case 3: {
      ResourceBudget b;
      b.max_dp_cells = 1 + (*rng)() % 4096;
      ctx->set_budget(b);
      break;
    }
    case 4: {
      ResourceBudget b;
      b.max_scratch_bytes = 1 + (*rng)() % 2048;
      ctx->set_budget(b);
      break;
    }
    case 5:
      // Extreme virtual deadline: trips deterministically at the first
      // stage boundary (any positive makespan exceeds it).
      ctx->set_virtual_deadline_seconds(1e-12);
      break;
  }
}

/// The oracles a chaotic run's answers must be subsets of. Computed once on
/// a fault-free cluster; fault invariance (fault_tolerance_test) guarantees
/// the chaotic cluster's *complete* answers match these exactly.
struct Oracles {
  std::vector<std::vector<TrajectoryId>> search;  // per probe trajectory
  std::vector<std::pair<TrajectoryId, TrajectoryId>> join;
  std::vector<std::vector<std::pair<TrajectoryId, double>>> knn;
};

constexpr size_t kProbes = 6;
constexpr double kTau = 0.05;
constexpr size_t kKnnK = 5;

size_t ProbeIndex(size_t probe) { return probe * 29 + 3; }

Oracles ComputeOracles(const Dataset& ds) {
  ClusterConfig ccfg;
  ccfg.num_workers = 4;
  auto cluster = std::make_shared<Cluster>(ccfg);
  DitaEngine engine(cluster, SmallConfig());
  EXPECT_TRUE(engine.BuildIndex(ds).ok());
  Oracles o;
  for (size_t p = 0; p < kProbes; ++p) {
    auto r = engine.Search(ds[ProbeIndex(p)], kTau);
    EXPECT_TRUE(r.ok());
    o.search.push_back(*r);
    auto kr = engine.KnnSearch(ds[ProbeIndex(p)], kKnnK);
    EXPECT_TRUE(kr.ok());
    o.knn.push_back(*kr);
  }
  auto j = engine.Join(engine, kTau);
  EXPECT_TRUE(j.ok());
  o.join = *j;
  return o;
}

/// One serial soak run: a seeded sequence of constrained queries against a
/// faulty cluster. Returns a transcript string capturing every decision and
/// every (partial) answer, for bit-exact repeat-run comparison.
std::string RunSerialSoak(const Dataset& ds, const Oracles& oracles,
                          uint64_t seed) {
  ClusterConfig ccfg;
  ccfg.num_workers = 4;
  ccfg.execution_threads = 0;  // serial: required for determinism
  auto cluster = std::make_shared<Cluster>(ccfg);
  cluster->InjectFaults(ChaosPlan(seed));
  DitaConfig config = SmallConfig();
  config.serving.max_inflight_queries = 1;  // gate on, but serial never queues
  config.serving.max_queued_queries = 1;
  DitaEngine engine(cluster, config);
  EXPECT_TRUE(engine.BuildIndex(ds).ok());

  std::mt19937_64 rng(seed);
  std::ostringstream transcript;
  for (int i = 0; i < 18; ++i) {
    const size_t probe = rng() % kProbes;
    QueryContext ctx;
    ConstrainContext(&ctx, &rng);
    transcript << "q" << i << " probe=" << probe;
    switch (rng() % 3) {
      case 0: {
        DitaEngine::QueryStats stats;
        auto r = engine.Search(ds[ProbeIndex(probe)], kTau, &stats, &ctx);
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        if (!r.ok()) return transcript.str();
        EXPECT_TRUE(IsSubsetOf(*r, oracles.search[probe])) << "seed=" << seed;
        if (!ctx.stopped()) EXPECT_EQ(*r, oracles.search[probe]);
        EXPECT_TRUE(stats.funnel.MonotonicallyNonIncreasing());
        EXPECT_EQ(stats.funnel.FinalSurvivors(), r->size());
        transcript << " search cause=" << static_cast<int>(ctx.stop_cause())
                   << " n=" << r->size() << " ids=";
        for (TrajectoryId id : *r) transcript << id << ",";
        break;
      }
      case 1: {
        DitaEngine::QueryStats stats;
        auto r =
            engine.KnnSearch(ds[ProbeIndex(probe)], kKnnK, 0.0, &stats, &ctx);
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        if (!r.ok()) return transcript.str();
        if (ctx.stopped()) {
          // Prefix of the full kNN answer.
          EXPECT_LE(r->size(), oracles.knn[probe].size());
          const size_t upto = std::min(r->size(), oracles.knn[probe].size());
          for (size_t x = 0; x < upto; ++x) {
            EXPECT_EQ((*r)[x].first, oracles.knn[probe][x].first);
          }
        } else {
          EXPECT_EQ(*r, oracles.knn[probe]);
        }
        transcript << " knn cause=" << static_cast<int>(ctx.stop_cause())
                   << " n=" << r->size() << " ids=";
        for (const auto& [id, d] : *r) transcript << id << ",";
        break;
      }
      case 2: {
        DitaEngine::JoinStats stats;
        auto r = engine.Join(engine, kTau, &stats, &ctx);
        EXPECT_TRUE(r.ok()) << r.status().ToString();
        if (!r.ok()) return transcript.str();
        EXPECT_TRUE(IsSubsetOf(*r, oracles.join)) << "seed=" << seed;
        if (!ctx.stopped()) EXPECT_EQ(*r, oracles.join);
        EXPECT_TRUE(stats.funnel.MonotonicallyNonIncreasing());
        EXPECT_EQ(stats.funnel.FinalSurvivors(), r->size());
        transcript << " join cause=" << static_cast<int>(ctx.stop_cause())
                   << " n=" << r->size() << " pairs=";
        for (const auto& [a, b] : *r) transcript << a << ":" << b << ",";
        break;
      }
    }
    // Budgets only ever stop a query for the cause they configure: a
    // candidate-budget stop implies the charge crossed the cap.
    if (ctx.stop_cause() == QueryContext::StopCause::kCandidateBudget) {
      EXPECT_GE(ctx.candidates_charged(), ctx.budget().max_candidates);
    }
    if (ctx.stop_cause() == QueryContext::StopCause::kDpCellBudget) {
      EXPECT_GE(ctx.dp_cells_charged(), ctx.budget().max_dp_cells);
    }
    transcript << "\n";
  }
  // Every admission slot was released on exit (RAII tickets): the gate is
  // empty after the soak.
  EXPECT_EQ(engine.admission_gate()->inflight(), 0u) << "seed=" << seed;
  EXPECT_EQ(engine.admission_gate()->queued(), 0u) << "seed=" << seed;
  return transcript.str();
}

/// Serial chaos soak across the fixed seed matrix: subset invariants, funnel
/// balance, budget causality — and repeating each seed reproduces the exact
/// transcript (deterministic decisions under the virtual clock).
TEST(ChaosSoakTest, SerialSoakIsSubsetCorrectAndDeterministic) {
  const Dataset ds = CityDataset(200, 7);
  const Oracles oracles = ComputeOracles(ds);
  for (uint64_t seed : kSeedMatrix) {
    const std::string first = RunSerialSoak(ds, oracles, seed);
    const std::string second = RunSerialSoak(ds, oracles, seed);
    EXPECT_EQ(first, second) << "seed=" << seed
                             << ": chaos soak is not deterministic";
  }
}

/// Concurrent soak: several threads hammer one gated engine while a chaos
/// thread cancels in-flight contexts at random times. Checks the gate's
/// high-water invariant, that every query exits with a sane status, and
/// that all slots are released. ASan/TSan (ci.sh chaos) add the leak,
/// lifetime, and race checking on top.
TEST(ChaosSoakTest, ConcurrentSoakUnderGateAndRandomCancellation) {
  const Dataset ds = CityDataset(200, 7);
  const Oracles oracles = ComputeOracles(ds);
  for (uint64_t seed : kSeedMatrix) {
    ClusterConfig ccfg;
    ccfg.num_workers = 4;
    ccfg.execution_threads = 2;
    auto cluster = std::make_shared<Cluster>(ccfg);
    cluster->InjectFaults(ChaosPlan(seed));
    DitaConfig config = SmallConfig();
    config.serving.max_inflight_queries = 2;
    config.serving.max_queued_queries = 2;
    DitaEngine engine(cluster, config);
    ASSERT_TRUE(engine.BuildIndex(ds).ok());

    constexpr size_t kThreads = 4;
    constexpr int kQueriesPerThread = 6;
    // Slots the chaos thread cancels. Publication, cancellation, and
    // unpublication all happen under one mutex so the canceller can never
    // touch a context after its owning iteration destroyed it.
    std::mutex live_mu;
    std::vector<QueryContext*> live(kThreads, nullptr);
    std::atomic<bool> done{false};

    std::thread chaos([&] {
      std::mt19937_64 rng(seed ^ 0xC4A05u);
      while (!done.load(std::memory_order_acquire)) {
        {
          std::lock_guard<std::mutex> lock(live_mu);
          QueryContext* ctx = live[rng() % kThreads];
          if (ctx != nullptr && (rng() % 4) == 0) ctx->Cancel();
        }
        std::this_thread::yield();
      }
    });

    std::vector<std::thread> workers;
    std::atomic<size_t> completed{0}, shed{0};
    for (size_t tid = 0; tid < kThreads; ++tid) {
      workers.emplace_back([&, tid] {
        std::mt19937_64 rng(seed * 1000 + tid);
        for (int i = 0; i < kQueriesPerThread; ++i) {
          QueryContext ctx;
          ConstrainContext(&ctx, &rng);
          if ((rng() % 3) == 0) ctx.SetWallDeadlineSeconds(0.005);
          const size_t probe = rng() % kProbes;
          {
            std::lock_guard<std::mutex> lock(live_mu);
            live[tid] = &ctx;
          }
          const auto r = engine.Search(ds[ProbeIndex(probe)], kTau, nullptr,
                                       &ctx);
          {
            std::lock_guard<std::mutex> lock(live_mu);
            live[tid] = nullptr;
          }
          if (r.ok()) {
            ++completed;
            EXPECT_TRUE(IsSubsetOf(*r, oracles.search[probe]))
                << "seed=" << seed << " tid=" << tid;
          } else {
            // Shed at the gate or abandoned while queued; never an
            // internal error.
            const Status::Code c = r.status().code();
            EXPECT_TRUE(c == Status::Code::kUnavailable ||
                        c == Status::Code::kCancelled ||
                        c == Status::Code::kDeadlineExceeded ||
                        c == Status::Code::kResourceExhausted)
                << r.status().ToString();
            ++shed;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    done.store(true, std::memory_order_release);
    chaos.join();

    ASSERT_NE(engine.admission_gate(), nullptr);
    EXPECT_LE(engine.admission_gate()->inflight_high_water(),
              config.serving.max_inflight_queries)
        << "seed=" << seed;
    EXPECT_EQ(engine.admission_gate()->inflight(), 0u) << "seed=" << seed;
    EXPECT_EQ(engine.admission_gate()->queued(), 0u) << "seed=" << seed;
    EXPECT_EQ(completed.load() + shed.load(), kThreads * kQueriesPerThread);
    EXPECT_GE(completed.load(), 1u) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace dita
