// Cross-module integration flows a downstream user would actually run:
// storage -> index -> query, simplification -> index, road network -> index.

#include <cstdio>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "geom/simplify.h"
#include "roadnet/network_trips.h"
#include "workload/binary_io.h"
#include "workload/generator.h"

namespace dita {
namespace {

std::shared_ptr<Cluster> MakeCluster() {
  ClusterConfig cfg;
  cfg.num_workers = 4;
  return std::make_shared<Cluster>(cfg);
}

DitaConfig SmallConfig() {
  DitaConfig config;
  config.build.ng = 3;
  config.build.trie.num_pivots = 3;
  config.build.trie.leaf_capacity = 4;
  return config;
}

TEST(IntegrationTest, BinaryRoundTripPreservesQueryResults) {
  GeneratorConfig gcfg;
  gcfg.cardinality = 200;
  gcfg.region = MBR(Point{0, 0}, Point{1, 1});
  gcfg.step = 0.01;
  gcfg.seed = 121;
  Dataset original = GenerateTaxiDataset(gcfg);

  const std::string path = ::testing::TempDir() + "/integration.dita";
  BinaryIoOptions opts;
  opts.precision = 1e-9;  // far below any query threshold
  ASSERT_TRUE(WriteBinary(original, path, opts).ok());
  auto loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  DitaEngine a(MakeCluster(), SmallConfig());
  DitaEngine b(MakeCluster(), SmallConfig());
  ASSERT_TRUE(a.BuildIndex(original).ok());
  ASSERT_TRUE(b.BuildIndex(*loaded).ok());
  for (const auto& q : original.SampleQueries(5, 3)) {
    auto ra = a.Search(q, 0.01);
    auto rb = b.Search(q, 0.01);
    ASSERT_TRUE(ra.ok() && rb.ok());
    EXPECT_EQ(*ra, *rb);
  }
}

TEST(IntegrationTest, SimplifiedDatasetAnswersApproximateQueries) {
  GeneratorConfig gcfg;
  gcfg.cardinality = 150;
  gcfg.region = MBR(Point{0, 0}, Point{1, 1});
  gcfg.step = 0.01;
  gcfg.point_drop_prob = 0.0;
  gcfg.seed = 122;
  Dataset raw = GenerateTaxiDataset(gcfg);
  Dataset slim;
  for (const auto& t : raw.trajectories()) {
    slim.Add(DownsampleUniform(t, 12));
  }
  ASSERT_LE(slim.TotalPoints(), raw.TotalPoints());

  DitaEngine engine(MakeCluster(), SmallConfig());
  ASSERT_TRUE(engine.BuildIndex(slim).ok());
  // Searching with a downsampled query still finds its own trip exactly.
  for (size_t i = 0; i < 10; ++i) {
    auto hits = engine.Search(slim[i], 1e-9);
    ASSERT_TRUE(hits.ok());
    EXPECT_TRUE(std::find(hits->begin(), hits->end(), slim[i].id()) !=
                hits->end());
  }
}

TEST(IntegrationTest, NetworkTripsIndexAndSelfJoin) {
  RoadNetwork net = MakeGridNetwork(8, 8, 0.01, {0, 0});
  NetworkTripOptions opts;
  opts.num_trips = 120;
  opts.sample_spacing = 0.004;
  opts.gps_noise = 0.00003;
  opts.seed = 22;
  auto trips = GenerateNetworkTrips(net, opts);
  ASSERT_TRUE(trips.ok());

  DitaEngine engine(MakeCluster(), SmallConfig());
  ASSERT_TRUE(engine.BuildIndex(trips->trips).ok());

  // Self-search: every trip finds itself at tau ~ its own noise level.
  DitaEngine::QueryStats stats;
  auto hits = engine.Search(trips->trips[0], 0.01, &stats);
  ASSERT_TRUE(hits.ok());
  EXPECT_TRUE(std::find(hits->begin(), hits->end(), trips->trips[0].id()) !=
              hits->end());

  // Self-join at a tight threshold at least yields the diagonal.
  auto pairs = engine.Join(engine, 1e-6);
  ASSERT_TRUE(pairs.ok());
  EXPECT_GE(pairs->size(), trips->trips.size());
}

TEST(IntegrationTest, CsvAndBinaryAgree) {
  GeneratorConfig gcfg;
  gcfg.cardinality = 50;
  gcfg.seed = 123;
  Dataset ds = GenerateTaxiDataset(gcfg);
  const std::string csv = ::testing::TempDir() + "/agree.csv";
  const std::string bin = ::testing::TempDir() + "/agree.dita";
  ASSERT_TRUE(ds.WriteCsv(csv).ok());
  BinaryIoOptions opts;
  opts.precision = 1e-9;
  ASSERT_TRUE(WriteBinary(ds, bin, opts).ok());
  auto from_csv = Dataset::ReadCsv(csv);
  auto from_bin = ReadBinary(bin);
  ASSERT_TRUE(from_csv.ok() && from_bin.ok());
  ASSERT_EQ(from_csv->size(), from_bin->size());
  for (size_t i = 0; i < from_csv->size(); ++i) {
    ASSERT_EQ((*from_csv)[i].size(), (*from_bin)[i].size());
    for (size_t j = 0; j < (*from_csv)[i].size(); ++j) {
      EXPECT_NEAR((*from_csv)[i][j].x, (*from_bin)[i][j].x, 1e-6);
      EXPECT_NEAR((*from_csv)[i][j].y, (*from_bin)[i][j].y, 1e-6);
    }
  }
  std::remove(csv.c_str());
  std::remove(bin.c_str());
}

}  // namespace
}  // namespace dita
