#include "sql/dataframe.h"

#include <gtest/gtest.h>

#include "distance/distance.h"
#include "workload/generator.h"

namespace dita {
namespace {

class DataFrameTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig ccfg;
    ccfg.num_workers = 4;
    cluster_ = std::make_shared<Cluster>(ccfg);
    DitaConfig config;
    config.build.ng = 3;
    config.build.trie.num_pivots = 3;
    config.build.trie.leaf_capacity = 4;
    context_ = std::make_unique<DataFrameContext>(cluster_, config);

    GeneratorConfig gcfg;
    gcfg.cardinality = 120;
    gcfg.region = MBR(Point{0, 0}, Point{1, 1});
    gcfg.step = 0.01;
    gcfg.seed = 95;
    data_ = GenerateTaxiDataset(gcfg);
  }

  std::shared_ptr<Cluster> cluster_;
  std::unique_ptr<DataFrameContext> context_;
  Dataset data_;
};

TEST_F(DataFrameTest, SearchMatchesBruteForce) {
  DataFrame df = context_->CreateDataFrame(data_).CreateTrieIndex();
  auto dist = *MakeDistance(DistanceType::kDTW);
  const Trajectory& q = data_[7];
  const double tau = 0.02;
  auto got = df.SimilaritySearch(q, "dtw", tau);
  ASSERT_TRUE(got.ok());
  std::vector<TrajectoryId> expected;
  for (const auto& t : data_.trajectories()) {
    if (dist->Compute(t, q) <= tau) expected.push_back(t.id());
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(*got, expected);
}

TEST_F(DataFrameTest, ExplainRendersFunnelForLastQueryAndJoin) {
  DataFrame df = context_->CreateDataFrame(data_).CreateTrieIndex();
  // Nothing ran yet: both explains are empty.
  EXPECT_EQ(df.ExplainLastQuery(), "");
  EXPECT_EQ(df.ExplainLastJoin(), "");

  ASSERT_TRUE(df.SimilaritySearch(data_[7], "dtw", 0.02).ok());
  const std::string query_plan = df.ExplainLastQuery();
  EXPECT_NE(query_plan.find("Similarity search"), std::string::npos);
  EXPECT_NE(query_plan.find("filter level"), std::string::npos);
  EXPECT_NE(query_plan.find("threshold dp"), std::string::npos);
  EXPECT_NE(query_plan.find("results:"), std::string::npos);

  ASSERT_TRUE(df.TraJoin(df, "dtw", 0.001).ok());
  const std::string join_plan = df.ExplainLastJoin();
  EXPECT_NE(join_plan.find("Trajectory join"), std::string::npos);
  EXPECT_NE(join_plan.find("all pairs"), std::string::npos);
  EXPECT_NE(join_plan.find("result pairs:"), std::string::npos);

  // Copies share state: the copy sees the originals' last stats.
  DataFrame copy = df;
  EXPECT_EQ(copy.ExplainLastQuery(), query_plan);
}

TEST_F(DataFrameTest, SelfJoinIncludesDiagonal) {
  DataFrame df = context_->CreateDataFrame(data_);
  auto pairs = df.TraJoin(df, "dtw", 0.001);
  ASSERT_TRUE(pairs.ok());
  EXPECT_GE(pairs->size(), data_.size());
}

TEST_F(DataFrameTest, MultipleDistanceFunctionsOnOneFrame) {
  DataFrame df = context_->CreateDataFrame(data_);
  const Trajectory& q = data_[2];
  EXPECT_TRUE(df.SimilaritySearch(q, "dtw", 0.01).ok());
  EXPECT_TRUE(df.SimilaritySearch(q, "frechet", 0.01).ok());
  EXPECT_TRUE(df.SimilaritySearch(q, "edr", 2.0).ok());
}

TEST_F(DataFrameTest, UnknownFunctionFails) {
  DataFrame df = context_->CreateDataFrame(data_);
  EXPECT_FALSE(df.SimilaritySearch(data_[0], "hausdorff", 1.0).ok());
}

TEST_F(DataFrameTest, CopiesShareIndexState) {
  DataFrame df = context_->CreateDataFrame(data_);
  DataFrame copy = df;
  ASSERT_TRUE(copy.SimilaritySearch(data_[0], "dtw", 0.01).ok());
  // The copy's lazily-built engine is visible through the original handle.
  DitaEngine::QueryStats stats;
  ASSERT_TRUE(df.SimilaritySearch(data_[0], "dtw", 0.01, &stats).ok());
  EXPECT_GT(stats.partitions_probed, 0u);
}

TEST_F(DataFrameTest, KnnSearchReturnsOrderedNeighbours) {
  DataFrame df = context_->CreateDataFrame(data_);
  auto knn = df.KnnSearch(data_[4], "dtw", 5);
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn->size(), 5u);
  EXPECT_DOUBLE_EQ((*knn)[0].second, 0.0);  // the query itself is in the table
  for (size_t i = 1; i < knn->size(); ++i) {
    EXPECT_LE((*knn)[i - 1].second, (*knn)[i].second);
  }
}

TEST_F(DataFrameTest, TwoFrameJoin) {
  GeneratorConfig gcfg;
  gcfg.cardinality = 60;
  gcfg.region = MBR(Point{0, 0}, Point{1, 1});
  gcfg.step = 0.01;
  gcfg.seed = 96;
  DataFrame left = context_->CreateDataFrame(data_);
  DataFrame right = context_->CreateDataFrame(GenerateTaxiDataset(gcfg));
  DitaEngine::JoinStats stats;
  auto pairs = left.TraJoin(right, "dtw", 0.05, &stats);
  ASSERT_TRUE(pairs.ok());
  EXPECT_GT(stats.graph_edges, 0u);
}

TEST_F(DataFrameTest, InsertAndDeleteStreamIntoQueries) {
  DataFrame df = context_->CreateDataFrame(data_).CreateTrieIndex();
  const Trajectory& q = data_[7];
  auto before = df.SimilaritySearch(q, "dtw", 0.02);
  ASSERT_TRUE(before.ok());

  // A twin of the query trajectory under a fresh id must show up in the
  // very next search; deleting it hides it again.
  const Trajectory twin(5001, q.points());
  ASSERT_TRUE(df.Insert(twin).ok());
  EXPECT_EQ(df.size(), data_.size() + 1);
  auto with_twin = df.SimilaritySearch(q, "dtw", 0.02);
  ASSERT_TRUE(with_twin.ok());
  EXPECT_TRUE(std::binary_search(with_twin->begin(), with_twin->end(),
                                 TrajectoryId(5001)));
  // Once the frame has mutated, EXPLAIN reports the serving epoch line.
  EXPECT_NE(df.ExplainLastQuery().find("delta scanned"), std::string::npos);

  ASSERT_TRUE(df.Delete(5001).ok());
  auto after = df.SimilaritySearch(q, "dtw", 0.02);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*after, *before);

  // Validation mirrors the service: duplicate live ids and dead deletes
  // are rejected without touching the frame.
  EXPECT_FALSE(df.Insert(data_[0]).ok());
  EXPECT_FALSE(df.Delete(987654).ok());
  EXPECT_EQ(df.size(), data_.size());
}

TEST_F(DataFrameTest, IngestReachesEveryDistanceFunctionService) {
  DataFrame df = context_->CreateDataFrame(data_);
  ASSERT_TRUE(df.SimilaritySearch(data_[3], "dtw", 0.02).ok());
  ASSERT_TRUE(df.SimilaritySearch(data_[3], "frechet", 0.02).ok());

  const Trajectory twin(6001, data_[3].points());
  ASSERT_TRUE(df.Insert(twin).ok());
  for (const char* fn : {"dtw", "frechet"}) {
    auto got = df.SimilaritySearch(data_[3], fn, 0.02);
    ASSERT_TRUE(got.ok());
    EXPECT_TRUE(std::binary_search(got->begin(), got->end(),
                                   TrajectoryId(6001)))
        << fn;
  }
  // A service created after the insert seeds from the mutated dataset.
  auto edr = df.KnnSearch(data_[3], "edr", 2);
  ASSERT_TRUE(edr.ok());
}

}  // namespace
}  // namespace dita
