#include "sql/dataframe.h"

#include <gtest/gtest.h>

#include "distance/distance.h"
#include "workload/generator.h"

namespace dita {
namespace {

class DataFrameTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig ccfg;
    ccfg.num_workers = 4;
    cluster_ = std::make_shared<Cluster>(ccfg);
    DitaConfig config;
    config.ng = 3;
    config.trie.num_pivots = 3;
    config.trie.leaf_capacity = 4;
    context_ = std::make_unique<DataFrameContext>(cluster_, config);

    GeneratorConfig gcfg;
    gcfg.cardinality = 120;
    gcfg.region = MBR(Point{0, 0}, Point{1, 1});
    gcfg.step = 0.01;
    gcfg.seed = 95;
    data_ = GenerateTaxiDataset(gcfg);
  }

  std::shared_ptr<Cluster> cluster_;
  std::unique_ptr<DataFrameContext> context_;
  Dataset data_;
};

TEST_F(DataFrameTest, SearchMatchesBruteForce) {
  DataFrame df = context_->CreateDataFrame(data_).CreateTrieIndex();
  auto dist = *MakeDistance(DistanceType::kDTW);
  const Trajectory& q = data_[7];
  const double tau = 0.02;
  auto got = df.SimilaritySearch(q, "dtw", tau);
  ASSERT_TRUE(got.ok());
  std::vector<TrajectoryId> expected;
  for (const auto& t : data_.trajectories()) {
    if (dist->Compute(t, q) <= tau) expected.push_back(t.id());
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(*got, expected);
}

TEST_F(DataFrameTest, ExplainRendersFunnelForLastQueryAndJoin) {
  DataFrame df = context_->CreateDataFrame(data_).CreateTrieIndex();
  // Nothing ran yet: both explains are empty.
  EXPECT_EQ(df.ExplainLastQuery(), "");
  EXPECT_EQ(df.ExplainLastJoin(), "");

  ASSERT_TRUE(df.SimilaritySearch(data_[7], "dtw", 0.02).ok());
  const std::string query_plan = df.ExplainLastQuery();
  EXPECT_NE(query_plan.find("Similarity search"), std::string::npos);
  EXPECT_NE(query_plan.find("filter level"), std::string::npos);
  EXPECT_NE(query_plan.find("threshold dp"), std::string::npos);
  EXPECT_NE(query_plan.find("results:"), std::string::npos);

  ASSERT_TRUE(df.TraJoin(df, "dtw", 0.001).ok());
  const std::string join_plan = df.ExplainLastJoin();
  EXPECT_NE(join_plan.find("Trajectory join"), std::string::npos);
  EXPECT_NE(join_plan.find("all pairs"), std::string::npos);
  EXPECT_NE(join_plan.find("result pairs:"), std::string::npos);

  // Copies share state: the copy sees the originals' last stats.
  DataFrame copy = df;
  EXPECT_EQ(copy.ExplainLastQuery(), query_plan);
}

TEST_F(DataFrameTest, SelfJoinIncludesDiagonal) {
  DataFrame df = context_->CreateDataFrame(data_);
  auto pairs = df.TraJoin(df, "dtw", 0.001);
  ASSERT_TRUE(pairs.ok());
  EXPECT_GE(pairs->size(), data_.size());
}

TEST_F(DataFrameTest, MultipleDistanceFunctionsOnOneFrame) {
  DataFrame df = context_->CreateDataFrame(data_);
  const Trajectory& q = data_[2];
  EXPECT_TRUE(df.SimilaritySearch(q, "dtw", 0.01).ok());
  EXPECT_TRUE(df.SimilaritySearch(q, "frechet", 0.01).ok());
  EXPECT_TRUE(df.SimilaritySearch(q, "edr", 2.0).ok());
}

TEST_F(DataFrameTest, UnknownFunctionFails) {
  DataFrame df = context_->CreateDataFrame(data_);
  EXPECT_FALSE(df.SimilaritySearch(data_[0], "hausdorff", 1.0).ok());
}

TEST_F(DataFrameTest, CopiesShareIndexState) {
  DataFrame df = context_->CreateDataFrame(data_);
  DataFrame copy = df;
  ASSERT_TRUE(copy.SimilaritySearch(data_[0], "dtw", 0.01).ok());
  // The copy's lazily-built engine is visible through the original handle.
  DitaEngine::QueryStats stats;
  ASSERT_TRUE(df.SimilaritySearch(data_[0], "dtw", 0.01, &stats).ok());
  EXPECT_GT(stats.partitions_probed, 0u);
}

TEST_F(DataFrameTest, KnnSearchReturnsOrderedNeighbours) {
  DataFrame df = context_->CreateDataFrame(data_);
  auto knn = df.KnnSearch(data_[4], "dtw", 5);
  ASSERT_TRUE(knn.ok());
  ASSERT_EQ(knn->size(), 5u);
  EXPECT_DOUBLE_EQ((*knn)[0].second, 0.0);  // the query itself is in the table
  for (size_t i = 1; i < knn->size(); ++i) {
    EXPECT_LE((*knn)[i - 1].second, (*knn)[i].second);
  }
}

TEST_F(DataFrameTest, TwoFrameJoin) {
  GeneratorConfig gcfg;
  gcfg.cardinality = 60;
  gcfg.region = MBR(Point{0, 0}, Point{1, 1});
  gcfg.step = 0.01;
  gcfg.seed = 96;
  DataFrame left = context_->CreateDataFrame(data_);
  DataFrame right = context_->CreateDataFrame(GenerateTaxiDataset(gcfg));
  DitaEngine::JoinStats stats;
  auto pairs = left.TraJoin(right, "dtw", 0.05, &stats);
  ASSERT_TRUE(pairs.ok());
  EXPECT_GT(stats.graph_edges, 0u);
}

}  // namespace
}  // namespace dita
