#include <gtest/gtest.h>

#include "roadnet/map_matching.h"
#include "roadnet/network_trips.h"
#include "roadnet/road_network.h"

namespace dita {
namespace {

TEST(RoadNetworkTest, BuildValidation) {
  RoadNetwork net;
  const NodeId a = net.AddNode({0, 0});
  const NodeId b = net.AddNode({1, 0});
  EXPECT_FALSE(net.AddEdge(a, a).ok());
  EXPECT_FALSE(net.AddEdge(a, 99).ok());
  auto e = net.AddEdge(a, b);
  ASSERT_TRUE(e.ok());
  EXPECT_DOUBLE_EQ(net.edge(*e).length, 1.0);
  EXPECT_EQ(net.EdgesAt(a).size(), 1u);
}

TEST(RoadNetworkTest, GridHasExpectedShape) {
  RoadNetwork net = MakeGridNetwork(4, 5, 1.0, {0, 0});
  EXPECT_EQ(net.NumNodes(), 20u);
  // Full grid: 4*(5-1) horizontal + 5*(4-1) vertical = 16 + 15.
  EXPECT_EQ(net.NumEdges(), 31u);
}

TEST(RoadNetworkTest, NearestEdgeSnapsToSegment) {
  RoadNetwork net = MakeGridNetwork(3, 3, 1.0, {0, 0});
  auto snap = net.NearestEdge({0.5, 0.1});
  ASSERT_TRUE(snap.ok());
  // Nearest street is the bottom horizontal segment y = 0.
  EXPECT_NEAR(snap->position.y, 0.0, 1e-12);
  EXPECT_NEAR(snap->position.x, 0.5, 1e-12);
  EXPECT_NEAR(snap->distance, 0.1, 1e-12);
}

TEST(RoadNetworkTest, NearestEdgesOrderedAndBounded) {
  RoadNetwork net = MakeGridNetwork(4, 4, 1.0, {0, 0});
  auto snaps = net.NearestEdges({1.5, 1.5}, 4);
  ASSERT_EQ(snaps.size(), 4u);
  for (size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_GE(snaps[i].distance, snaps[i - 1].distance);
  }
}

TEST(RoadNetworkTest, ShortestPathOnGridIsManhattan) {
  RoadNetwork net = MakeGridNetwork(5, 5, 1.0, {0, 0});
  // Corner to corner: network distance = 8 (4 right + 4 up).
  EXPECT_DOUBLE_EQ(net.NetworkDistance(0, 24), 8.0);
  auto path = net.ShortestPath(0, 24);
  ASSERT_TRUE(path.ok());
  EXPECT_EQ(path->front(), 0u);
  EXPECT_EQ(path->back(), 24u);
  EXPECT_EQ(path->size(), 9u);
}

TEST(RoadNetworkTest, DisconnectedReportsNotFound) {
  RoadNetwork net;
  net.AddNode({0, 0});
  net.AddNode({1, 0});
  net.AddNode({5, 5});
  net.AddNode({6, 5});
  ASSERT_TRUE(net.AddEdge(0, 1).ok());
  ASSERT_TRUE(net.AddEdge(2, 3).ok());
  net.Finalize();
  EXPECT_FALSE(net.ShortestPath(0, 2).ok());
  EXPECT_TRUE(std::isinf(net.NetworkDistance(0, 2)));
}

TEST(RoadNetworkTest, RemovalKeepsBoundaryConnected) {
  RoadNetwork net = MakeGridNetwork(6, 6, 1.0, {0, 0}, 0.3, 9);
  // The boundary ring is never removed, so the grid stays connected.
  for (NodeId n = 1; n < net.NumNodes(); ++n) {
    EXPECT_TRUE(net.ShortestPath(0, n).ok()) << "node " << n;
  }
}

TEST(MapMatchingTest, ValidatesInput) {
  RoadNetwork net = MakeGridNetwork(3, 3, 1.0, {0, 0});
  EXPECT_FALSE(MatchTrajectory(net, Trajectory()).ok());
  RoadNetwork empty;
  empty.Finalize();
  EXPECT_FALSE(MatchTrajectory(empty, Trajectory(0, {{0, 0}, {1, 1}})).ok());
}

TEST(MapMatchingTest, CleanTraceMatchesItsStreet) {
  RoadNetwork net = MakeGridNetwork(3, 3, 1.0, {0, 0});
  // Drive along y = 1 from (0,1) to (2,1) with slight noise.
  Trajectory t(0, {{0.02, 1.01}, {0.5, 0.99}, {1.1, 1.02}, {1.6, 1.0}, {1.95, 0.98}});
  auto match = MatchTrajectory(net, t);
  ASSERT_TRUE(match.ok());
  EXPECT_LT(match->mean_snap_distance, 0.03);
  // Every snapped point lies on the y = 1 row of streets.
  for (const Point& p : match->snapped.points()) {
    EXPECT_NEAR(p.y, 1.0, 0.001);
  }
  // The deduplicated route covers the two segments of that street.
  EXPECT_EQ(match->route.size(), 2u);
}

TEST(MapMatchingTest, ViterbiPrefersContinuityOverGreedySnap) {
  // A point midway between two parallel streets should follow its
  // neighbours' street rather than jumping across.
  RoadNetwork net = MakeGridNetwork(2, 4, 1.0, {0, 0});
  Trajectory t(0, {{0.1, 0.02}, {1.0, 0.35}, {1.9, 0.02}, {2.9, 0.01}});
  auto match = MatchTrajectory(net, t);
  ASSERT_TRUE(match.ok());
  // The ambiguous middle point may snap to the y=0 street or a vertical
  // cross street, but never commit to the far y=1 street.
  for (const Point& p : match->snapped.points()) {
    EXPECT_LT(p.y, 0.6) << "jumped to the y=1 street";
  }
  EXPECT_NEAR(match->snapped.points().front().y, 0.0, 1e-9);
  EXPECT_NEAR(match->snapped.points().back().y, 0.0, 1e-9);
}

TEST(RouteOverlapTest, KnownValues) {
  EXPECT_DOUBLE_EQ(RouteOverlap({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(RouteOverlap({1, 2, 3, 4}, {2, 3}), 1.0);  // containment
  EXPECT_DOUBLE_EQ(RouteOverlap({1, 2, 3, 4}, {5, 6, 7}), 0.0);
  EXPECT_DOUBLE_EQ(RouteOverlap({1, 2, 3, 4}, {1, 9, 3, 8}), 0.5);
  EXPECT_DOUBLE_EQ(RouteOverlap({}, {1}), 0.0);
  // Order matters: reversed routes share only single-element subsequences.
  EXPECT_NEAR(RouteOverlap({1, 2, 3, 4}, {4, 3, 2, 1}), 0.25, 1e-12);
}

TEST(NetworkTripsTest, GeneratesSampledPathsWithTruth) {
  RoadNetwork net = MakeGridNetwork(8, 8, 0.01, {116.3, 39.9});
  NetworkTripOptions opts;
  opts.num_trips = 30;
  opts.sample_spacing = 0.004;
  opts.gps_noise = 0.0002;
  auto trips = GenerateNetworkTrips(net, opts);
  ASSERT_TRUE(trips.ok());
  EXPECT_EQ(trips->trips.size(), 30u);
  ASSERT_EQ(trips->truth_paths.size(), 30u);
  for (size_t i = 0; i < trips->trips.size(); ++i) {
    EXPECT_GE(trips->trips[i].size(), 2u);
    EXPECT_GE(trips->truth_paths[i].size(), opts.min_hops + 1);
  }
}

TEST(NetworkTripsTest, MapMatchingRecoversTruthSegments) {
  RoadNetwork net = MakeGridNetwork(8, 8, 0.01, {0, 0});
  NetworkTripOptions opts;
  opts.num_trips = 20;
  opts.sample_spacing = 0.003;
  opts.gps_noise = 0.0005;  // well under half the 0.01 street spacing
  opts.seed = 12;
  auto trips = GenerateNetworkTrips(net, opts);
  ASSERT_TRUE(trips.ok());

  size_t matched_points = 0;
  size_t correct_points = 0;
  for (size_t i = 0; i < trips->trips.size(); ++i) {
    auto match = MatchTrajectory(net, trips->trips[i]);
    ASSERT_TRUE(match.ok());
    // Build the truth edge set from the truth node path.
    std::set<std::pair<NodeId, NodeId>> truth_segments;
    const auto& path = trips->truth_paths[i];
    for (size_t s = 0; s + 1 < path.size(); ++s) {
      truth_segments.insert(std::minmax(path[s], path[s + 1]));
    }
    for (EdgeId e : match->edges) {
      const auto& edge = net.edge(e);
      ++matched_points;
      if (truth_segments.count(std::minmax(edge.a, edge.b))) ++correct_points;
    }
  }
  // The matcher should put the large majority of points on the true road
  // sequence at this noise level (points at intersections legitimately
  // match crossing streets).
  EXPECT_GT(double(correct_points) / double(matched_points), 0.85);
}

TEST(NetworkTripsTest, SameRouteTripsHaveHighOverlap) {
  RoadNetwork net = MakeGridNetwork(8, 8, 0.01, {0, 0});
  NetworkTripOptions opts;
  opts.num_trips = 5;
  opts.seed = 13;
  auto a = GenerateNetworkTrips(net, opts);
  auto b = GenerateNetworkTrips(net, opts);  // same seed -> same routes
  ASSERT_TRUE(a.ok() && b.ok());
  for (size_t i = 0; i < a->trips.size(); ++i) {
    auto ma = MatchTrajectory(net, a->trips[i]);
    auto mb = MatchTrajectory(net, b->trips[i]);
    ASSERT_TRUE(ma.ok() && mb.ok());
    EXPECT_GT(RouteOverlap(ma->route, mb->route), 0.8) << "trip " << i;
  }
}

}  // namespace
}  // namespace dita
