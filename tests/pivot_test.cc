#include "index/pivot.h"

#include <gtest/gtest.h>

#include "distance/dtw.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace dita {
namespace {

Trajectory PaperT1() {
  return Trajectory(1, {{1, 1}, {1, 2}, {3, 2}, {4, 4}, {4, 5}, {5, 5}});
}
Trajectory PaperT3() {
  return Trajectory(3, {{1, 1}, {4, 1}, {4, 3}, {4, 5}, {4, 6}, {5, 6}});
}

std::vector<Point> PivotPoints(const Trajectory& t, size_t k, PivotStrategy s) {
  std::vector<Point> out;
  for (size_t idx : SelectPivotIndices(t, k, s)) out.push_back(t[idx]);
  return out;
}

TEST(PivotTest, PaperSection412Examples) {
  // §4.1.2: for T1 with K = 2 —
  //   Inflection Point  -> [(1,2), (4,5)]
  //   Neighbor Distance -> [(3,2), (4,4)]
  //   First/Last        -> [(1,2), (4,5)]
  const Trajectory t1 = PaperT1();
  EXPECT_EQ(PivotPoints(t1, 2, PivotStrategy::kInflectionPoint),
            (std::vector<Point>{{1, 2}, {4, 5}}));
  EXPECT_EQ(PivotPoints(t1, 2, PivotStrategy::kNeighborDistance),
            (std::vector<Point>{{3, 2}, {4, 4}}));
  EXPECT_EQ(PivotPoints(t1, 2, PivotStrategy::kFirstLastDistance),
            (std::vector<Point>{{1, 2}, {4, 5}}));
}

TEST(PivotTest, PaperFigure1PivotTable) {
  // Figure 1 lists every trajectory's pivots under Neighbor Distance, K = 2.
  struct Case {
    Trajectory t;
    std::vector<Point> pivots;
  };
  const std::vector<Case> cases = {
      {Trajectory(2, {{0, 1}, {0, 2}, {4, 2}, {4, 4}, {4, 5}, {5, 5}}),
       {{4, 2}, {4, 4}}},
      {PaperT3(), {{4, 1}, {4, 3}}},
      {Trajectory(4, {{0, 4}, {0, 5}, {3, 3}, {3, 7}, {7, 5}}), {{3, 3}, {3, 7}}},
      {Trajectory(5, {{0, 4}, {0, 5}, {3, 7}, {3, 3}, {7, 5}}), {{3, 7}, {3, 3}}},
  };
  for (const auto& c : cases) {
    EXPECT_EQ(PivotPoints(c.t, 2, PivotStrategy::kNeighborDistance), c.pivots)
        << c.t.DebugString();
  }
}

TEST(PivotTest, IndicesAreInteriorAndSorted) {
  Rng rng(3);
  for (int iter = 0; iter < 100; ++iter) {
    Trajectory t;
    const size_t len = static_cast<size_t>(rng.UniformInt(2, 30));
    for (size_t i = 0; i < len; ++i) {
      t.mutable_points().push_back(Point{rng.Uniform(0, 5), rng.Uniform(0, 5)});
    }
    for (auto s : {PivotStrategy::kInflectionPoint,
                   PivotStrategy::kNeighborDistance,
                   PivotStrategy::kFirstLastDistance}) {
      auto idx = SelectPivotIndices(t, 4, s);
      EXPECT_LE(idx.size(), std::min<size_t>(4, len >= 2 ? len - 2 : 0));
      for (size_t i = 0; i < idx.size(); ++i) {
        EXPECT_GT(idx[i], 0u);
        EXPECT_LT(idx[i], len - 1);
        if (i > 0) {
          EXPECT_LT(idx[i - 1], idx[i]);
        }
      }
    }
  }
}

TEST(PivotTest, IndexingSequenceAlwaysHasKPlus2Points) {
  for (size_t len : {1u, 2u, 3u, 5u, 20u}) {
    Trajectory t;
    for (size_t i = 0; i < len; ++i) {
      t.mutable_points().push_back(Point{double(i), 0.0});
    }
    auto seq = BuildIndexingSequence(t, 4, PivotStrategy::kNeighborDistance);
    EXPECT_EQ(seq.points.size(), 6u) << "len=" << len;
    EXPECT_EQ(seq.source_indices.size(), 6u);
    EXPECT_EQ(seq.points[0], t.front());
    EXPECT_EQ(seq.points[1], t.back());
  }
}

TEST(PivotTest, PamdPaperExample44) {
  // Example 4.4: PAMD(T1, T3) = 0 + 1 + 1.41 + 1 = 3.41 > tau = 3.
  auto seq = BuildIndexingSequence(PaperT1(), 2, PivotStrategy::kNeighborDistance);
  const double pamd = Pamd(seq, PaperT3());
  EXPECT_NEAR(pamd, 0 + 1 + std::sqrt(2.0) + 1, 1e-9);
  EXPECT_GT(pamd, 3.0);
}

TEST(PivotTest, PaddedSequenceStillLowerBoundsDtw) {
  // A 3-point trajectory with K = 4 pads three pivot slots with repeats of
  // the single interior point; PAMD must not count the repeat (it would
  // break the lower-bound property for short trajectories).
  Dtw dtw;
  Trajectory shorty(0, {{0, 0}, {5, 5}, {10, 0}});
  Trajectory q(1, {{0, 1}, {10, 1}});
  auto seq = BuildIndexingSequence(shorty, 4, PivotStrategy::kNeighborDistance);
  EXPECT_EQ(seq.points.size(), 6u);
  EXPECT_TRUE(seq.chargeable[0]);
  EXPECT_TRUE(seq.chargeable[1]);
  EXPECT_TRUE(seq.chargeable[2]);   // the real pivot
  EXPECT_FALSE(seq.chargeable[3]);  // padding
  EXPECT_FALSE(seq.chargeable[4]);
  EXPECT_FALSE(seq.chargeable[5]);
  EXPECT_LE(Pamd(seq, q), dtw.Compute(shorty, q) + 1e-9);
}

TEST(PivotTest, SinglePointTrajectorySequence) {
  Trajectory dot(0, {{2, 3}});
  auto seq = BuildIndexingSequence(dot, 2, PivotStrategy::kNeighborDistance);
  EXPECT_EQ(seq.points.size(), 4u);
  EXPECT_TRUE(seq.chargeable[0]);
  EXPECT_FALSE(seq.chargeable[1]);  // last == first point
  Dtw dtw;
  Trajectory q(1, {{0, 0}, {1, 1}});
  EXPECT_LE(Pamd(seq, q), dtw.Compute(dot, q) + 1e-9);
}

TEST(PivotTest, ParseAndNames) {
  EXPECT_EQ(*ParsePivotStrategy("neighbor"), PivotStrategy::kNeighborDistance);
  EXPECT_EQ(*ParsePivotStrategy("Inflection"), PivotStrategy::kInflectionPoint);
  EXPECT_EQ(*ParsePivotStrategy("first/last"), PivotStrategy::kFirstLastDistance);
  EXPECT_FALSE(ParsePivotStrategy("bogus").ok());
  EXPECT_STREQ(PivotStrategyName(PivotStrategy::kNeighborDistance), "Neighbor");
}

/// Lemma 4.3 / Lemma 5.1 as properties: PAMD and OPAMD lower-bound DTW, and
/// OPAMD dominates PAMD whenever it is used as a filter against tau.
class PivotBoundProperty : public ::testing::TestWithParam<PivotStrategy> {};

TEST_P(PivotBoundProperty, PamdAndOpamdLowerBoundDtw) {
  Dtw dtw;
  GeneratorConfig cfg;
  cfg.cardinality = 50;
  cfg.seed = 21;
  Dataset ds = GenerateTaxiDataset(cfg);
  for (size_t i = 0; i < 20; ++i) {
    auto seq = BuildIndexingSequence(ds[i], 4, GetParam());
    for (size_t j = 0; j < 20; ++j) {
      const double d = dtw.Compute(ds[i], ds[j]);
      const double pamd = Pamd(seq, ds[j]);
      EXPECT_LE(pamd, d + 1e-9);
      for (double tau : {d * 0.5, d, d * 2}) {
        const double opamd = Opamd(seq, ds[j], tau);
        // Soundness of the filter: opamd > tau must imply d > tau.
        if (opamd > tau) {
          EXPECT_GT(d, tau - 1e-9);
        } else {
          // OPAMD is at least as tight as PAMD when it does not early-break.
          EXPECT_GE(opamd, pamd - 1e-9);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Strategies, PivotBoundProperty,
                         ::testing::Values(PivotStrategy::kInflectionPoint,
                                           PivotStrategy::kNeighborDistance,
                                           PivotStrategy::kFirstLastDistance),
                         [](const auto& info) {
                           return info.param == PivotStrategy::kInflectionPoint
                                      ? "Inflection"
                                      : info.param ==
                                                PivotStrategy::kNeighborDistance
                                            ? "Neighbor"
                                            : "FirstLast";
                         });

}  // namespace
}  // namespace dita
