#include <gtest/gtest.h>

#include "distance/distance.h"
#include "distance/edr.h"
#include "distance/erp.h"
#include "distance/lcss.h"
#include "util/rng.h"

namespace dita {
namespace {

Trajectory PaperT1() {
  return Trajectory(1, {{1, 1}, {1, 2}, {3, 2}, {4, 4}, {4, 5}, {5, 5}});
}
Trajectory PaperT3() {
  return Trajectory(3, {{1, 1}, {4, 1}, {4, 3}, {4, 5}, {4, 6}, {5, 6}});
}

TEST(EdrTest, PaperAppendixExample) {
  // Appendix A: with epsilon = 1, EDR(T1, T3) = 2.
  Edr edr(1.0);
  EXPECT_DOUBLE_EQ(edr.Compute(PaperT1(), PaperT3()), 2.0);
}

TEST(EdrTest, IdenticalIsZeroAndEmptyCases) {
  Edr edr(0.5);
  EXPECT_DOUBLE_EQ(edr.Compute(PaperT1(), PaperT1()), 0.0);
  Trajectory empty;
  EXPECT_DOUBLE_EQ(edr.Compute(empty, PaperT1()), 6.0);
  EXPECT_DOUBLE_EQ(edr.Compute(PaperT1(), empty), 6.0);
  EXPECT_DOUBLE_EQ(edr.Compute(empty, empty), 0.0);
}

TEST(EdrTest, LengthFilterPrunes) {
  // |m - n| > tau can never be similar (Appendix A length filtering).
  Edr edr(10.0);  // epsilon so large all points match
  Trajectory a(0, {{0, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 0}});
  Trajectory b(1, {{0, 0}});
  EXPECT_FALSE(edr.WithinThreshold(a, b, 3.0));
  EXPECT_TRUE(edr.WithinThreshold(a, b, 4.0));
}

TEST(LcssTest, PaperAppendixExample) {
  // Appendix A: with delta = 1, epsilon = 1, LCSS distance of (T1, T3) = 2.
  Lcss lcss(1.0, 1);
  EXPECT_DOUBLE_EQ(lcss.Compute(PaperT1(), PaperT3()), 2.0);
}

TEST(LcssTest, IdenticalIsZero) {
  Lcss lcss(0.1, 3);
  EXPECT_DOUBLE_EQ(lcss.Compute(PaperT1(), PaperT1()), 0.0);
  EXPECT_EQ(lcss.Similarity(PaperT1(), PaperT1()), PaperT1().size());
}

TEST(LcssTest, DeltaConstraintLimitsMatching) {
  // Identical sequences shifted in index: with delta = 0 only the diagonal
  // can match.
  std::vector<Point> pts = {{0, 0}, {1, 0}, {2, 0}, {3, 0}};
  std::vector<Point> shifted = {{9, 9}, {0, 0}, {1, 0}, {2, 0}};
  Lcss strict(0.01, 0);
  Lcss loose(0.01, 1);
  EXPECT_EQ(strict.Similarity(Trajectory(0, pts), Trajectory(1, shifted)), 0u);
  EXPECT_EQ(loose.Similarity(Trajectory(0, pts), Trajectory(1, shifted)), 3u);
}

/// Reference full-matrix LCSS similarity, used to validate the banded DP.
size_t ReferenceLcssSimilarity(const Trajectory& t, const Trajectory& q,
                               double epsilon, int delta) {
  const auto& a = t.points();
  const auto& b = q.points();
  std::vector<std::vector<size_t>> dp(a.size() + 1,
                                      std::vector<size_t>(b.size() + 1, 0));
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      const bool index_ok =
          std::llabs(static_cast<long long>(i) - static_cast<long long>(j)) <=
          delta;
      if (index_ok && PointDistance(a[i - 1], b[j - 1]) <= epsilon) {
        dp[i][j] = dp[i - 1][j - 1] + 1;
      } else {
        dp[i][j] = std::max(dp[i - 1][j], dp[i][j - 1]);
      }
    }
  }
  return dp[a.size()][b.size()];
}

TEST(LcssPropertyTest, BandedSimilarityMatchesFullMatrix) {
  Rng rng(771);
  auto random_traj = [&rng]() {
    const size_t len = static_cast<size_t>(rng.UniformInt(1, 18));
    Trajectory t;
    for (size_t i = 0; i < len; ++i) {
      t.mutable_points().push_back(Point{rng.Uniform(0, 3), rng.Uniform(0, 3)});
    }
    return t;
  };
  for (int delta : {0, 1, 2, 5}) {
    Lcss lcss(0.6, delta);
    for (int iter = 0; iter < 150; ++iter) {
      Trajectory a = random_traj();
      Trajectory b = random_traj();
      EXPECT_EQ(lcss.Similarity(a, b),
                ReferenceLcssSimilarity(a, b, 0.6, delta))
          << "delta=" << delta;
    }
  }
}

TEST(ErpTest, IdenticalIsZeroAndGapCost) {
  Erp erp(Point{0, 0});
  EXPECT_DOUBLE_EQ(erp.Compute(PaperT1(), PaperT1()), 0.0);
  // Against the empty trajectory, ERP charges each point's distance to the
  // gap point.
  Trajectory empty;
  Trajectory t(0, {{3, 4}, {0, 5}});
  EXPECT_DOUBLE_EQ(erp.Compute(t, empty), 5.0 + 5.0);
}

Trajectory RandomTrajectory(Rng& rng, size_t max_len = 16) {
  const size_t len = static_cast<size_t>(rng.UniformInt(1, static_cast<int64_t>(max_len)));
  Trajectory t;
  for (size_t i = 0; i < len; ++i) {
    t.mutable_points().push_back(Point{rng.Uniform(0, 4), rng.Uniform(0, 4)});
  }
  return t;
}

class EdrThresholdProperty : public ::testing::TestWithParam<double> {};

TEST_P(EdrThresholdProperty, BandedThresholdAgreesWithFullDp) {
  Edr edr(0.7);
  Rng rng(static_cast<uint64_t>(GetParam() * 31) + 1);
  for (int iter = 0; iter < 200; ++iter) {
    Trajectory a = RandomTrajectory(rng);
    Trajectory b = RandomTrajectory(rng);
    const double d = edr.Compute(a, b);
    const double tau = GetParam();
    EXPECT_EQ(edr.WithinThreshold(a, b, tau), d <= tau)
        << "d=" << d << " tau=" << tau;
  }
}

INSTANTIATE_TEST_SUITE_P(TauSweep, EdrThresholdProperty,
                         ::testing::Values(0.0, 1.0, 2.0, 3.0, 5.0, 8.0));

TEST(LcssPropertyTest, WithinThresholdAgreesWithCompute) {
  Lcss lcss(0.7, 2);
  Rng rng(73);
  for (int iter = 0; iter < 300; ++iter) {
    Trajectory a = RandomTrajectory(rng);
    Trajectory b = RandomTrajectory(rng);
    const double d = lcss.Compute(a, b);
    for (double tau : {0.0, 1.0, 2.0, 4.0}) {
      EXPECT_EQ(lcss.WithinThreshold(a, b, tau), d <= tau);
    }
  }
}

TEST(ErpPropertyTest, MetricAxiomsOnSamples) {
  Erp erp(Point{2, 2});
  Rng rng(74);
  for (int iter = 0; iter < 100; ++iter) {
    Trajectory a = RandomTrajectory(rng, 10);
    Trajectory b = RandomTrajectory(rng, 10);
    Trajectory c = RandomTrajectory(rng, 10);
    const double ab = erp.Compute(a, b);
    EXPECT_GE(ab, 0.0);
    EXPECT_DOUBLE_EQ(ab, erp.Compute(b, a));
    EXPECT_LE(ab, erp.Compute(a, c) + erp.Compute(c, b) + 1e-9);
  }
}

TEST(ErpPropertyTest, WithinThresholdAgreesWithCompute) {
  Erp erp(Point{0, 0});
  Rng rng(75);
  for (int iter = 0; iter < 200; ++iter) {
    Trajectory a = RandomTrajectory(rng);
    Trajectory b = RandomTrajectory(rng);
    const double d = erp.Compute(a, b);
    for (double factor : {0.5, 1.0, 1.5}) {
      const double tau = d * factor;
      EXPECT_EQ(erp.WithinThreshold(a, b, tau), d <= tau);
    }
  }
}

TEST(DistanceFactoryTest, CreatesEveryType) {
  for (DistanceType type :
       {DistanceType::kDTW, DistanceType::kFrechet, DistanceType::kEDR,
        DistanceType::kLCSS, DistanceType::kERP}) {
    auto r = MakeDistance(type);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ((*r)->type(), type);
  }
}

TEST(DistanceFactoryTest, RejectsBadParams) {
  DistanceParams params;
  params.epsilon = -1;
  EXPECT_FALSE(MakeDistance(DistanceType::kEDR, params).ok());
  EXPECT_FALSE(MakeDistance(DistanceType::kLCSS, params).ok());
}

TEST(DistanceFactoryTest, ParsesNames) {
  EXPECT_EQ(*ParseDistanceType("dtw"), DistanceType::kDTW);
  EXPECT_EQ(*ParseDistanceType("Frechet"), DistanceType::kFrechet);
  EXPECT_EQ(*ParseDistanceType("EDR"), DistanceType::kEDR);
  EXPECT_EQ(*ParseDistanceType("lcss"), DistanceType::kLCSS);
  EXPECT_EQ(*ParseDistanceType("erp"), DistanceType::kERP);
  EXPECT_FALSE(ParseDistanceType("hausdorff").ok());
}

TEST(DistanceMetaTest, PruneModesMatchAppendixA) {
  EXPECT_EQ((*MakeDistance(DistanceType::kDTW))->prune_mode(),
            PruneMode::kAccumulate);
  EXPECT_EQ((*MakeDistance(DistanceType::kFrechet))->prune_mode(),
            PruneMode::kMax);
  EXPECT_EQ((*MakeDistance(DistanceType::kEDR))->prune_mode(),
            PruneMode::kEditCount);
  EXPECT_EQ((*MakeDistance(DistanceType::kLCSS))->prune_mode(),
            PruneMode::kEditCount);
  EXPECT_EQ((*MakeDistance(DistanceType::kERP))->prune_mode(),
            PruneMode::kAccumulate);
}

TEST(DistanceMetaTest, MetricFlags) {
  EXPECT_FALSE((*MakeDistance(DistanceType::kDTW))->is_metric());
  EXPECT_TRUE((*MakeDistance(DistanceType::kFrechet))->is_metric());
  EXPECT_FALSE((*MakeDistance(DistanceType::kEDR))->is_metric());
  EXPECT_FALSE((*MakeDistance(DistanceType::kLCSS))->is_metric());
  EXPECT_TRUE((*MakeDistance(DistanceType::kERP))->is_metric());
}

}  // namespace
}  // namespace dita
