#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "distance/distance.h"
#include "distance/dp_scratch.h"
#include "distance/dtw.h"
#include "distance/frechet.h"
#include "distance/lcss.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace dita {
namespace {

/// Cross-distance invariants exercised on realistic generated trajectories
/// rather than the synthetic random walks used in the per-distance tests.
class GeneratedDataProperty
    : public ::testing::TestWithParam<DistanceType> {
 protected:
  static Dataset SmallDataset() {
    GeneratorConfig cfg;
    cfg.cardinality = 60;
    cfg.avg_len = 14;
    cfg.min_len = 4;
    cfg.max_len = 40;
    cfg.seed = 7;
    return GenerateTaxiDataset(cfg);
  }
};

TEST_P(GeneratedDataProperty, WithinThresholdAgreesWithCompute) {
  DistanceParams params;
  params.epsilon = 0.004;
  params.delta = 3;
  auto dist = *MakeDistance(GetParam(), params);
  Dataset ds = SmallDataset();
  for (size_t i = 0; i < 25; ++i) {
    for (size_t j = i; j < 25; ++j) {
      const double d = dist->Compute(ds[i], ds[j]);
      for (double factor : {0.5, 0.95, 1.0, 1.05, 2.0}) {
        const double tau = d * factor + (GetParam() == DistanceType::kEDR ||
                                                 GetParam() == DistanceType::kLCSS
                                             ? (factor - 1.0)
                                             : 0.0);
        if (tau < 0) continue;
        // Exact ties are sensitive to float summation order; skip them.
        if (std::abs(d - tau) <= 1e-9 * (1.0 + d)) continue;
        EXPECT_EQ(dist->WithinThreshold(ds[i], ds[j], tau), d <= tau)
            << dist->name() << " i=" << i << " j=" << j << " d=" << d
            << " tau=" << tau;
      }
    }
  }
}

TEST_P(GeneratedDataProperty, SelfDistanceIsZero) {
  DistanceParams params;
  params.epsilon = 0.004;
  auto dist = *MakeDistance(GetParam(), params);
  Dataset ds = SmallDataset();
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(dist->Compute(ds[i], ds[i]), 0.0) << dist->name();
    EXPECT_TRUE(dist->WithinThreshold(ds[i], ds[i], 0.0));
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistances, GeneratedDataProperty,
                         ::testing::Values(DistanceType::kDTW,
                                           DistanceType::kFrechet,
                                           DistanceType::kEDR,
                                           DistanceType::kLCSS,
                                           DistanceType::kERP),
                         [](const auto& info) {
                           return DistanceTypeName(info.param);
                         });

TEST(AmdOnGeneratedData, LowerBoundsHoldEverywhere) {
  Dtw dtw;
  GeneratorConfig cfg;
  cfg.cardinality = 40;
  cfg.seed = 9;
  Dataset ds = GenerateTaxiDataset(cfg);
  for (size_t i = 0; i < ds.size(); ++i) {
    for (size_t j = i + 1; j < std::min(ds.size(), i + 6); ++j) {
      EXPECT_LE(Dtw::AccumulatedMinDistance(ds[i], ds[j]),
                dtw.Compute(ds[i], ds[j]) + 1e-9);
    }
  }
}

// ---------------------------------------------------------------------------
// Naive O(m*n) oracles. These are the textbook full-matrix recurrences with
// no rolling arrays, no banding, no pruning, and no squared-distance
// shortcuts — deliberately the dumbest possible implementations, so the
// optimized kernels have an independent ground truth. Every comparison below
// is exact (EXPECT_EQ on doubles): the kernels are required to be
// bit-compatible with these recurrences.
// ---------------------------------------------------------------------------

constexpr double kInf = std::numeric_limits<double>::infinity();

double PointDist(const Point& p, const Point& q) {
  const double dx = p.x - q.x;
  const double dy = p.y - q.y;
  return std::sqrt(dx * dx + dy * dy);
}

using Matrix = std::vector<std::vector<double>>;

double NaiveDtw(const Trajectory& a, const Trajectory& b) {
  const size_t m = a.size(), n = b.size();
  if (m == 0 || n == 0) return m == n ? 0.0 : kInf;
  Matrix d(m + 1, std::vector<double>(n + 1, kInf));
  d[0][0] = 0.0;
  for (size_t i = 1; i <= m; ++i) {
    for (size_t j = 1; j <= n; ++j) {
      d[i][j] = PointDist(a[i - 1], b[j - 1]) +
                std::min({d[i - 1][j - 1], d[i - 1][j], d[i][j - 1]});
    }
  }
  return d[m][n];
}

double NaiveFrechet(const Trajectory& a, const Trajectory& b) {
  const size_t m = a.size(), n = b.size();
  if (m == 0 || n == 0) return m == n ? 0.0 : kInf;
  Matrix d(m + 1, std::vector<double>(n + 1, kInf));
  d[0][0] = 0.0;
  for (size_t i = 1; i <= m; ++i) {
    for (size_t j = 1; j <= n; ++j) {
      d[i][j] = std::max(PointDist(a[i - 1], b[j - 1]),
                         std::min({d[i - 1][j - 1], d[i - 1][j], d[i][j - 1]}));
    }
  }
  return d[m][n];
}

double NaiveEdr(const Trajectory& a, const Trajectory& b, double eps) {
  const size_t m = a.size(), n = b.size();
  Matrix d(m + 1, std::vector<double>(n + 1, 0.0));
  for (size_t i = 0; i <= m; ++i) d[i][0] = double(i);
  for (size_t j = 0; j <= n; ++j) d[0][j] = double(j);
  for (size_t i = 1; i <= m; ++i) {
    for (size_t j = 1; j <= n; ++j) {
      const double sub = PointDist(a[i - 1], b[j - 1]) <= eps ? 0.0 : 1.0;
      d[i][j] = std::min(
          {d[i - 1][j - 1] + sub, d[i - 1][j] + 1.0, d[i][j - 1] + 1.0});
    }
  }
  return d[m][n];
}

size_t NaiveLcssSimilarity(const Trajectory& a, const Trajectory& b,
                           double eps, long delta) {
  const size_t m = a.size(), n = b.size();
  std::vector<std::vector<size_t>> d(m + 1, std::vector<size_t>(n + 1, 0));
  for (size_t i = 1; i <= m; ++i) {
    for (size_t j = 1; j <= n; ++j) {
      const bool in_band = std::labs(long(i) - long(j)) <= delta;
      if (in_band && PointDist(a[i - 1], b[j - 1]) <= eps) {
        d[i][j] = d[i - 1][j - 1] + 1;
      } else {
        d[i][j] = std::max(d[i - 1][j], d[i][j - 1]);
      }
    }
  }
  return d[m][n];
}

double NaiveLcss(const Trajectory& a, const Trajectory& b, double eps,
                 long delta) {
  const size_t shorter = std::min(a.size(), b.size());
  return double(shorter - std::min(shorter, NaiveLcssSimilarity(a, b, eps, delta)));
}

double NaiveErp(const Trajectory& a, const Trajectory& b, const Point& g) {
  const size_t m = a.size(), n = b.size();
  Matrix d(m + 1, std::vector<double>(n + 1, 0.0));
  for (size_t i = 1; i <= m; ++i) d[i][0] = d[i - 1][0] + PointDist(a[i - 1], g);
  for (size_t j = 1; j <= n; ++j) d[0][j] = d[0][j - 1] + PointDist(b[j - 1], g);
  for (size_t i = 1; i <= m; ++i) {
    for (size_t j = 1; j <= n; ++j) {
      d[i][j] = std::min({d[i - 1][j - 1] + PointDist(a[i - 1], b[j - 1]),
                          d[i - 1][j] + PointDist(a[i - 1], g),
                          d[i][j - 1] + PointDist(b[j - 1], g)});
    }
  }
  return d[m][n];
}

Trajectory RandomWalk(Rng& rng, size_t len, TrajectoryId id) {
  Trajectory t;
  t.set_id(id);
  Point pos{rng.Uniform(0, 2), rng.Uniform(0, 2)};
  for (size_t i = 0; i < len; ++i) {
    pos.x += rng.Gaussian(0, 0.15);
    pos.y += rng.Gaussian(0, 0.15);
    t.mutable_points().push_back(pos);
  }
  return t;
}

/// Random pairs covering degenerate lengths (1, 2) up to mid-size DP grids.
std::vector<std::pair<Trajectory, Trajectory>> OraclePairs() {
  Rng rng(1234);
  std::vector<std::pair<Trajectory, Trajectory>> pairs;
  const size_t lens[] = {1, 2, 3, 5, 9, 17, 33};
  TrajectoryId id = 0;
  for (size_t la : lens) {
    for (size_t lb : lens) {
      Trajectory a = RandomWalk(rng, la, id++);
      Trajectory b = RandomWalk(rng, lb, id++);
      pairs.emplace_back(std::move(a), std::move(b));
    }
  }
  for (int k = 0; k < 20; ++k) {
    const size_t la = size_t(rng.UniformInt(1, 48));
    const size_t lb = size_t(rng.UniformInt(1, 48));
    Trajectory a = RandomWalk(rng, la, id++);
    Trajectory b = RandomWalk(rng, lb, id++);
    pairs.emplace_back(std::move(a), std::move(b));
  }
  return pairs;
}

class OracleEquivalence : public ::testing::Test {
 protected:
  static DistanceParams Params() {
    DistanceParams p;
    p.epsilon = 0.15;  // ~ one step of the random walk, so matches do occur
    p.delta = 3;
    p.erp_gap = Point{0.5, 0.5};
    return p;
  }
};

TEST_F(OracleEquivalence, DtwIsBitIdenticalToNaive) {
  auto dist = *MakeDistance(DistanceType::kDTW, Params());
  for (const auto& [a, b] : OraclePairs()) {
    EXPECT_EQ(dist->Compute(a, b), NaiveDtw(a, b))
        << "len " << a.size() << " x " << b.size();
  }
}

TEST_F(OracleEquivalence, FrechetIsBitIdenticalToNaive) {
  auto dist = *MakeDistance(DistanceType::kFrechet, Params());
  for (const auto& [a, b] : OraclePairs()) {
    EXPECT_EQ(dist->Compute(a, b), NaiveFrechet(a, b))
        << "len " << a.size() << " x " << b.size();
  }
}

TEST_F(OracleEquivalence, EdrIsBitIdenticalToNaive) {
  auto dist = *MakeDistance(DistanceType::kEDR, Params());
  for (const auto& [a, b] : OraclePairs()) {
    EXPECT_EQ(dist->Compute(a, b), NaiveEdr(a, b, Params().epsilon))
        << "len " << a.size() << " x " << b.size();
  }
}

TEST_F(OracleEquivalence, LcssIsBitIdenticalToNaive) {
  auto dist = *MakeDistance(DistanceType::kLCSS, Params());
  Lcss lcss(Params().epsilon, Params().delta);
  for (const auto& [a, b] : OraclePairs()) {
    EXPECT_EQ(dist->Compute(a, b),
              NaiveLcss(a, b, Params().epsilon, Params().delta))
        << "len " << a.size() << " x " << b.size();
    EXPECT_EQ(lcss.Similarity(a, b),
              NaiveLcssSimilarity(a, b, Params().epsilon, Params().delta));
  }
}

TEST_F(OracleEquivalence, ErpIsBitIdenticalToNaive) {
  auto dist = *MakeDistance(DistanceType::kERP, Params());
  for (const auto& [a, b] : OraclePairs()) {
    EXPECT_EQ(dist->Compute(a, b), NaiveErp(a, b, Params().erp_gap))
        << "len " << a.size() << " x " << b.size();
  }
}

TEST_F(OracleEquivalence, WithinThresholdMatchesNaiveOracle) {
  // The threshold kernels prune aggressively (anchor bounds, column windows,
  // row-min abandons); their boolean answer must still match the naive
  // distance for thresholds on both sides of it. Exact ties are skipped as
  // elsewhere: they are sensitive to summation order by construction.
  const DistanceParams params = Params();
  for (DistanceType type :
       {DistanceType::kDTW, DistanceType::kFrechet, DistanceType::kEDR,
        DistanceType::kLCSS, DistanceType::kERP}) {
    auto dist = *MakeDistance(type, params);
    for (const auto& [a, b] : OraclePairs()) {
      double d;
      switch (type) {
        case DistanceType::kDTW: d = NaiveDtw(a, b); break;
        case DistanceType::kFrechet: d = NaiveFrechet(a, b); break;
        case DistanceType::kEDR: d = NaiveEdr(a, b, params.epsilon); break;
        case DistanceType::kLCSS:
          d = NaiveLcss(a, b, params.epsilon, params.delta);
          break;
        default: d = NaiveErp(a, b, params.erp_gap); break;
      }
      for (double tau : {0.0, d * 0.5, d - 0.5, d * 0.95, d, d + 0.5,
                         d * 1.05, d * 2.0 + 0.25}) {
        if (tau < 0 || std::isinf(d)) continue;
        if (std::abs(d - tau) <= 1e-9 * (1.0 + d)) continue;  // float tie
        EXPECT_EQ(dist->WithinThreshold(a, b, tau), d <= tau)
            << dist->name() << " len " << a.size() << " x " << b.size()
            << " d=" << d << " tau=" << tau;
      }
    }
  }
}

TEST(ThresholdEdge, IntegerGridExactBoundaries) {
  // 3-4-5 grids make every distance, sum, and threshold exactly
  // representable, so accept/reject at tau == d is deterministic — no
  // float-tie skip needed here.
  const Trajectory a(0, {{0, 0}, {3, 4}});
  const Trajectory b(1, {{0, 0}, {0, 0}});
  Dtw dtw;
  EXPECT_EQ(dtw.Compute(a, b), 5.0);
  EXPECT_TRUE(dtw.WithinThreshold(a, b, 5.0));
  EXPECT_FALSE(dtw.WithinThreshold(a, b, 4.5));
  Frechet frechet;
  EXPECT_EQ(frechet.Compute(a, b), 5.0);
  EXPECT_TRUE(frechet.WithinThreshold(a, b, 5.0));
  EXPECT_FALSE(frechet.WithinThreshold(a, b, 4.5));

  // Deeper grid: the optimal warping path must pay 5 then 10.
  const Trajectory c(2, {{0, 0}, {3, 4}, {6, 8}});
  const Trajectory z(3, {{0, 0}, {0, 0}, {0, 0}});
  EXPECT_EQ(dtw.Compute(c, z), 15.0);
  EXPECT_TRUE(dtw.WithinThreshold(c, z, 15.0));
  EXPECT_FALSE(dtw.WithinThreshold(c, z, 14.5));
  EXPECT_EQ(frechet.Compute(c, z), 10.0);
  EXPECT_TRUE(frechet.WithinThreshold(c, z, 10.0));
  EXPECT_FALSE(frechet.WithinThreshold(c, z, 9.5));

  // Edit distances at an exact epsilon boundary: dist((0,0),(3,4)) == 5.
  DistanceParams on;
  on.epsilon = 5.0;
  DistanceParams off;
  off.epsilon = 4.9;
  const Trajectory p(4, {{0, 0}});
  const Trajectory q(5, {{3, 4}});
  auto edr_on = *MakeDistance(DistanceType::kEDR, on);
  auto edr_off = *MakeDistance(DistanceType::kEDR, off);
  EXPECT_EQ(edr_on->Compute(p, q), 0.0);
  EXPECT_EQ(edr_off->Compute(p, q), 1.0);
  EXPECT_TRUE(edr_on->WithinThreshold(p, q, 0.0));
  EXPECT_FALSE(edr_off->WithinThreshold(p, q, 0.0));
  EXPECT_TRUE(edr_off->WithinThreshold(p, q, 1.0));
  auto lcss_on = *MakeDistance(DistanceType::kLCSS, on);
  auto lcss_off = *MakeDistance(DistanceType::kLCSS, off);
  EXPECT_EQ(lcss_on->Compute(p, q), 0.0);
  EXPECT_EQ(lcss_off->Compute(p, q), 1.0);
  EXPECT_TRUE(lcss_on->WithinThreshold(p, q, 0.0));
  EXPECT_FALSE(lcss_off->WithinThreshold(p, q, 0.0));
}

TEST(DpScratchTest, SteadyStateComputationsAreAllocationFree) {
  // First pass sizes the thread-local scratch lanes; afterwards the kernels
  // must run with zero heap growth. reallocations() counts every lane
  // resize, so a flat count across repeated passes proves the hot verify
  // path is allocation-free in steady state.
  DistanceParams params;
  params.epsilon = 0.15;
  params.delta = 3;
  params.erp_gap = Point{0.5, 0.5};
  std::vector<std::shared_ptr<TrajectoryDistance>> dists;
  for (DistanceType type :
       {DistanceType::kDTW, DistanceType::kFrechet, DistanceType::kEDR,
        DistanceType::kLCSS, DistanceType::kERP}) {
    dists.push_back(*MakeDistance(type, params));
  }
  Rng rng(99);
  std::vector<std::pair<Trajectory, Trajectory>> pairs;
  for (int k = 0; k < 8; ++k) {
    pairs.emplace_back(RandomWalk(rng, 64, 2 * k), RandomWalk(rng, 64, 2 * k + 1));
  }
  auto pass = [&] {
    for (const auto& dist : dists) {
      for (const auto& [a, b] : pairs) {
        const double d = dist->Compute(a, b);
        (void)dist->WithinThreshold(a, b, d * 0.9);
        (void)dist->WithinThreshold(a, b, d * 1.1);
      }
    }
    for (const auto& [a, b] : pairs) {
      (void)Dtw::AccumulatedMinDistance(a, b);
    }
  };
  pass();  // warm-up: lanes grow to their high-water marks
  const size_t before = DpScratch::ThreadLocal().reallocations();
  pass();
  pass();
  EXPECT_EQ(DpScratch::ThreadLocal().reallocations(), before)
      << "DP kernels allocated on a warm scratch";
}

}  // namespace
}  // namespace dita
