#include <gtest/gtest.h>

#include "distance/distance.h"
#include "distance/dtw.h"
#include "workload/generator.h"

namespace dita {
namespace {

/// Cross-distance invariants exercised on realistic generated trajectories
/// rather than the synthetic random walks used in the per-distance tests.
class GeneratedDataProperty
    : public ::testing::TestWithParam<DistanceType> {
 protected:
  static Dataset SmallDataset() {
    GeneratorConfig cfg;
    cfg.cardinality = 60;
    cfg.avg_len = 14;
    cfg.min_len = 4;
    cfg.max_len = 40;
    cfg.seed = 7;
    return GenerateTaxiDataset(cfg);
  }
};

TEST_P(GeneratedDataProperty, WithinThresholdAgreesWithCompute) {
  DistanceParams params;
  params.epsilon = 0.004;
  params.delta = 3;
  auto dist = *MakeDistance(GetParam(), params);
  Dataset ds = SmallDataset();
  for (size_t i = 0; i < 25; ++i) {
    for (size_t j = i; j < 25; ++j) {
      const double d = dist->Compute(ds[i], ds[j]);
      for (double factor : {0.5, 0.95, 1.0, 1.05, 2.0}) {
        const double tau = d * factor + (GetParam() == DistanceType::kEDR ||
                                                 GetParam() == DistanceType::kLCSS
                                             ? (factor - 1.0)
                                             : 0.0);
        if (tau < 0) continue;
        // Exact ties are sensitive to float summation order; skip them.
        if (std::abs(d - tau) <= 1e-9 * (1.0 + d)) continue;
        EXPECT_EQ(dist->WithinThreshold(ds[i], ds[j], tau), d <= tau)
            << dist->name() << " i=" << i << " j=" << j << " d=" << d
            << " tau=" << tau;
      }
    }
  }
}

TEST_P(GeneratedDataProperty, SelfDistanceIsZero) {
  DistanceParams params;
  params.epsilon = 0.004;
  auto dist = *MakeDistance(GetParam(), params);
  Dataset ds = SmallDataset();
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(dist->Compute(ds[i], ds[i]), 0.0) << dist->name();
    EXPECT_TRUE(dist->WithinThreshold(ds[i], ds[i], 0.0));
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistances, GeneratedDataProperty,
                         ::testing::Values(DistanceType::kDTW,
                                           DistanceType::kFrechet,
                                           DistanceType::kEDR,
                                           DistanceType::kLCSS,
                                           DistanceType::kERP),
                         [](const auto& info) {
                           return DistanceTypeName(info.param);
                         });

TEST(AmdOnGeneratedData, LowerBoundsHoldEverywhere) {
  Dtw dtw;
  GeneratorConfig cfg;
  cfg.cardinality = 40;
  cfg.seed = 9;
  Dataset ds = GenerateTaxiDataset(cfg);
  for (size_t i = 0; i < ds.size(); ++i) {
    for (size_t j = i + 1; j < std::min(ds.size(), i + 6); ++j) {
      EXPECT_LE(Dtw::AccumulatedMinDistance(ds[i], ds[j]),
                dtw.Compute(ds[i], ds[j]) + 1e-9);
    }
  }
}

}  // namespace
}  // namespace dita
