#include "util/thread_pool.h"

#include <atomic>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace dita {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, MultipleWaitRounds) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, TasksCanSubmitResultsConcurrently) {
  ThreadPool pool(4);
  std::vector<int> results(64, 0);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&results, i] { results[static_cast<size_t>(i)] = i * i; });
  }
  pool.Wait();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
}

TEST(ThreadPoolTest, ThrowingTaskIsCapturedAndRethrownFromWait) {
  // Regression: a throwing task used to escape WorkerLoop (std::terminate)
  // and leak its in_flight_ slot, hanging every later Wait().
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // The non-throwing tasks all ran despite the failure.
  EXPECT_EQ(counter.load(), 10);
  // The exception was cleared and the pool remains fully usable.
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 11);
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsRethrown) {
  ThreadPool pool(2);
  for (int i = 0; i < 4; ++i) {
    pool.Submit([] { throw std::runtime_error("boom"); });
  }
  EXPECT_THROW(pool.Wait(), std::runtime_error);
  // Later exceptions were dropped; a second Wait() is clean.
  pool.Wait();
  SUCCEED();
}

}  // namespace
}  // namespace dita
