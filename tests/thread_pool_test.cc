#include "util/thread_pool.h"

#include <atomic>
#include <vector>

#include <gtest/gtest.h>

namespace dita {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  SUCCEED();
}

TEST(ThreadPoolTest, MultipleWaitRounds) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) pool.Submit([&counter] { counter.fetch_add(1); });
    pool.Wait();
    EXPECT_EQ(counter.load(), (round + 1) * 20);
  }
}

TEST(ThreadPoolTest, TasksCanSubmitResultsConcurrently) {
  ThreadPool pool(4);
  std::vector<int> results(64, 0);
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&results, i] { results[static_cast<size_t>(i)] = i * i; });
  }
  pool.Wait();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(results[static_cast<size_t>(i)], i * i);
}

}  // namespace
}  // namespace dita
