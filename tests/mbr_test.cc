#include "geom/mbr.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dita {
namespace {

TEST(MbrTest, EmptyBehaviour) {
  MBR m;
  EXPECT_TRUE(m.empty());
  EXPECT_FALSE(m.Contains(Point{0, 0}));
  EXPECT_TRUE(std::isinf(m.MinDist(Point{0, 0})));
  EXPECT_EQ(m.Area(), 0.0);
}

TEST(MbrTest, ExpandPoint) {
  MBR m;
  m.Expand(Point{1, 2});
  EXPECT_FALSE(m.empty());
  EXPECT_EQ(m.lo(), (Point{1, 2}));
  EXPECT_EQ(m.hi(), (Point{1, 2}));
  m.Expand(Point{-1, 5});
  EXPECT_EQ(m.lo(), (Point{-1, 2}));
  EXPECT_EQ(m.hi(), (Point{1, 5}));
  EXPECT_DOUBLE_EQ(m.Area(), 2.0 * 3.0);
}

TEST(MbrTest, ExpandMbr) {
  MBR a(Point{0, 0}, Point{1, 1});
  MBR b(Point{2, -1}, Point{3, 0.5});
  a.Expand(b);
  EXPECT_EQ(a.lo(), (Point{0, -1}));
  EXPECT_EQ(a.hi(), (Point{3, 1}));
  MBR empty;
  a.Expand(empty);  // no-op
  EXPECT_EQ(a.hi(), (Point{3, 1}));
}

TEST(MbrTest, ContainsAndCovers) {
  MBR m(Point{0, 0}, Point{4, 4});
  EXPECT_TRUE(m.Contains(Point{0, 0}));
  EXPECT_TRUE(m.Contains(Point{4, 4}));
  EXPECT_TRUE(m.Contains(Point{2, 3}));
  EXPECT_FALSE(m.Contains(Point{4.0001, 2}));
  EXPECT_TRUE(m.Covers(MBR(Point{1, 1}, Point{3, 3})));
  EXPECT_TRUE(m.Covers(m));
  EXPECT_FALSE(m.Covers(MBR(Point{1, 1}, Point{5, 3})));
}

TEST(MbrTest, MinDistPoint) {
  MBR m(Point{0, 0}, Point{2, 2});
  EXPECT_DOUBLE_EQ(m.MinDist(Point{1, 1}), 0.0);    // inside
  EXPECT_DOUBLE_EQ(m.MinDist(Point{3, 1}), 1.0);    // right side
  EXPECT_DOUBLE_EQ(m.MinDist(Point{1, -2}), 2.0);   // below
  EXPECT_DOUBLE_EQ(m.MinDist(Point{3, 3}), std::sqrt(2.0));  // corner
}

TEST(MbrTest, MinDistMbr) {
  MBR a(Point{0, 0}, Point{1, 1});
  EXPECT_DOUBLE_EQ(a.MinDist(MBR(Point{0.5, 0.5}, Point{2, 2})), 0.0);
  EXPECT_DOUBLE_EQ(a.MinDist(MBR(Point{3, 0}, Point{4, 1})), 2.0);
  EXPECT_DOUBLE_EQ(a.MinDist(MBR(Point{2, 2}, Point{3, 3})), std::sqrt(2.0));
}

TEST(MbrTest, Extended) {
  MBR m(Point{0, 0}, Point{1, 1});
  MBR e = m.Extended(0.5);
  EXPECT_EQ(e.lo(), (Point{-0.5, -0.5}));
  EXPECT_EQ(e.hi(), (Point{1.5, 1.5}));
  EXPECT_TRUE(e.Covers(m));
}

TEST(MbrTest, IntersectsSymmetry) {
  MBR a(Point{0, 0}, Point{2, 2});
  MBR b(Point{1, 1}, Point{3, 3});
  MBR c(Point{5, 5}, Point{6, 6});
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_TRUE(b.Intersects(a));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(c.Intersects(a));
}

/// Property: MinDist(q, MBR) lower-bounds the distance from q to any point
/// inside the MBR (the inequality DITA's filtering relies on).
TEST(MbrPropertyTest, MinDistIsLowerBoundForContainedPoints) {
  Rng rng(123);
  for (int iter = 0; iter < 200; ++iter) {
    Point a{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    Point b{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
    MBR m;
    m.Expand(a);
    m.Expand(b);
    Point q{rng.Uniform(-15, 15), rng.Uniform(-15, 15)};
    // Sample points inside the MBR.
    for (int k = 0; k < 10; ++k) {
      Point p{rng.Uniform(m.lo().x, m.hi().x), rng.Uniform(m.lo().y, m.hi().y)};
      EXPECT_LE(m.MinDist(q) - 1e-12, PointDistance(q, p));
      EXPECT_GE(m.MaxDist(q) + 1e-12, PointDistance(q, p));
    }
  }
}

/// Property: rect-rect MinDist lower-bounds point pair distances.
TEST(MbrPropertyTest, RectRectMinDistLowerBound) {
  Rng rng(321);
  for (int iter = 0; iter < 200; ++iter) {
    MBR a, b;
    a.Expand(Point{rng.Uniform(-5, 5), rng.Uniform(-5, 5)});
    a.Expand(Point{rng.Uniform(-5, 5), rng.Uniform(-5, 5)});
    b.Expand(Point{rng.Uniform(-5, 5), rng.Uniform(-5, 5)});
    b.Expand(Point{rng.Uniform(-5, 5), rng.Uniform(-5, 5)});
    for (int k = 0; k < 10; ++k) {
      Point p{rng.Uniform(a.lo().x, a.hi().x), rng.Uniform(a.lo().y, a.hi().y)};
      Point q{rng.Uniform(b.lo().x, b.hi().x), rng.Uniform(b.lo().y, b.hi().y)};
      EXPECT_LE(a.MinDist(b) - 1e-12, PointDistance(p, q));
    }
  }
}

}  // namespace
}  // namespace dita
