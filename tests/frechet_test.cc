#include "distance/frechet.h"

#include <gtest/gtest.h>

#include "distance/dtw.h"

#include "util/rng.h"

namespace dita {
namespace {

Trajectory PaperT1() {
  return Trajectory(1, {{1, 1}, {1, 2}, {3, 2}, {4, 4}, {4, 5}, {5, 5}});
}
Trajectory PaperT3() {
  return Trajectory(3, {{1, 1}, {4, 1}, {4, 3}, {4, 5}, {4, 6}, {5, 6}});
}

TEST(FrechetTest, PaperAppendixExample) {
  // Appendix A: Frechet(T1, T3) = 1.41.
  Frechet f;
  EXPECT_NEAR(f.Compute(PaperT1(), PaperT3()), std::sqrt(2.0), 1e-9);
}

TEST(FrechetTest, IdenticalIsZero) {
  Frechet f;
  EXPECT_DOUBLE_EQ(f.Compute(PaperT1(), PaperT1()), 0.0);
}

TEST(FrechetTest, SinglePointCases) {
  Frechet f;
  Trajectory single(0, {{0, 0}});
  Trajectory line(1, {{0, 0}, {3, 4}});
  EXPECT_DOUBLE_EQ(f.Compute(line, single), 5.0);   // max over points
  EXPECT_DOUBLE_EQ(f.Compute(single, line), 5.0);
}

Trajectory RandomTrajectory(Rng& rng, size_t max_len = 20) {
  const size_t len = static_cast<size_t>(rng.UniformInt(2, static_cast<int64_t>(max_len)));
  Trajectory t;
  Point pos{rng.Uniform(0, 10), rng.Uniform(0, 10)};
  for (size_t i = 0; i < len; ++i) {
    pos.x += rng.Gaussian(0, 0.5);
    pos.y += rng.Gaussian(0, 0.5);
    t.mutable_points().push_back(pos);
  }
  return t;
}

TEST(FrechetPropertyTest, SymmetricAndNonNegative) {
  Frechet f;
  Rng rng(17);
  for (int i = 0; i < 200; ++i) {
    Trajectory a = RandomTrajectory(rng);
    Trajectory b = RandomTrajectory(rng);
    const double ab = f.Compute(a, b);
    EXPECT_GE(ab, 0.0);
    EXPECT_DOUBLE_EQ(ab, f.Compute(b, a));
  }
}

/// Frechet is a metric (on curves); the discrete variant satisfies the
/// triangle inequality in practice for our use (VP-tree soundness check).
TEST(FrechetPropertyTest, TriangleInequalityOnSamples) {
  Frechet f;
  Rng rng(18);
  for (int i = 0; i < 150; ++i) {
    Trajectory a = RandomTrajectory(rng, 12);
    Trajectory b = RandomTrajectory(rng, 12);
    Trajectory c = RandomTrajectory(rng, 12);
    EXPECT_LE(f.Compute(a, b), f.Compute(a, c) + f.Compute(c, b) + 1e-9);
  }
}

TEST(FrechetPropertyTest, FrechetLowerBoundsDtw) {
  // The DTW-optimal warping path has cost sum >= max over its cells, and the
  // min-max over all paths (Frechet) can only be smaller, so Frechet <= DTW.
  // This is the fact behind the paper's observation that "DTW was tighter
  // than Frechet with the same threshold" (§7.3, observation 4).
  Frechet f;
  Dtw dtw;
  Rng rng(19);
  for (int i = 0; i < 150; ++i) {
    Trajectory a = RandomTrajectory(rng);
    Trajectory b = RandomTrajectory(rng);
    EXPECT_LE(f.Compute(a, b), dtw.Compute(a, b) + 1e-9);
  }
}

class FrechetThresholdProperty : public ::testing::TestWithParam<double> {};

TEST_P(FrechetThresholdProperty, WithinThresholdAgreesWithCompute) {
  Frechet f;
  Rng rng(static_cast<uint64_t>(GetParam() * 977) + 3);
  for (int iter = 0; iter < 150; ++iter) {
    Trajectory a = RandomTrajectory(rng);
    Trajectory b = RandomTrajectory(rng);
    const double d = f.Compute(a, b);
    const double tau = d * GetParam();
    EXPECT_EQ(f.WithinThreshold(a, b, tau), d <= tau) << "d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(TauSweep, FrechetThresholdProperty,
                         ::testing::Values(0.3, 0.8, 1.0, 1.2, 3.0));

}  // namespace
}  // namespace dita
