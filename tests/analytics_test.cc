#include <gtest/gtest.h>

#include "analytics/clustering.h"
#include "analytics/frequent_routes.h"
#include "analytics/outliers.h"
#include "analytics/similarity_graph.h"
#include "workload/generator.h"

namespace dita {
namespace {

using Pairs = std::vector<std::pair<TrajectoryId, TrajectoryId>>;

TEST(SimilarityGraphTest, BuildsSymmetricDedupedGraph) {
  // Pairs contain self-loops, duplicates and both orientations.
  Pairs pairs = {{1, 1}, {1, 2}, {2, 1}, {2, 3}, {2, 3}, {4, 4}};
  SimilarityGraph g({1, 2, 3, 4}, pairs);
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.NeighborsOf(2), (std::vector<TrajectoryId>{1, 3}));
  EXPECT_EQ(g.DegreeOf(4), 0u);
  EXPECT_EQ(g.DegreeOf(99), 0u);  // unknown id
}

TEST(SimilarityGraphTest, ConnectedComponentsLargestFirst) {
  Pairs pairs = {{1, 2}, {2, 3}, {5, 6}};
  SimilarityGraph g({1, 2, 3, 4, 5, 6}, pairs);
  auto components = g.ConnectedComponents();
  ASSERT_EQ(components.size(), 3u);
  EXPECT_EQ(components[0], (std::vector<TrajectoryId>{1, 2, 3}));
  EXPECT_EQ(components[1], (std::vector<TrajectoryId>{5, 6}));
  EXPECT_EQ(components[2], (std::vector<TrajectoryId>{4}));
}

TEST(ClusteringTest, DbscanOnSyntheticGraph) {
  // Two dense triangles joined by a chain through a sparse node.
  Pairs pairs = {{1, 2}, {2, 3}, {1, 3},          // triangle A
                 {10, 11}, {11, 12}, {10, 12},    // triangle B
                 {3, 7}, {7, 10}};                // chain via 7
  SimilarityGraph g({1, 2, 3, 7, 10, 11, 12, 20}, pairs);
  // min_pts = 3: triangle members have degree 2 (+self = 3) -> cores.
  // Node 7 has degree 2... also core. With the chain everything merges.
  ClusteringResult merged = ClusterGraph(g, 3);
  EXPECT_EQ(merged.num_clusters, 1);
  EXPECT_EQ(merged.noise, (std::vector<TrajectoryId>{20}));

  // min_pts = 4: only node 3 and node 10 have degree 3 (+self = 4).
  ClusteringResult split = ClusterGraph(g, 4);
  EXPECT_EQ(split.num_clusters, 2);
  EXPECT_NE(split.LabelOf(1), split.LabelOf(11));
  // Border points take their core's cluster.
  EXPECT_EQ(split.LabelOf(1), split.LabelOf(3));
  EXPECT_EQ(split.LabelOf(11), split.LabelOf(10));
  EXPECT_EQ(split.LabelOf(20), ClusteringResult::kNoise);
}

TEST(OutlierTest, LowDegreeNodesFlagged) {
  Pairs pairs = {{1, 2}, {1, 3}, {2, 3}};
  SimilarityGraph g({1, 2, 3, 9}, pairs);
  EXPECT_EQ(FindOutliersInGraph(g, 1), (std::vector<TrajectoryId>{9}));
  EXPECT_EQ(FindOutliersInGraph(g, 3), (std::vector<TrajectoryId>{1, 2, 3, 9}));
}

TEST(FrequentRoutesTest, RepresentativeHasMaxDegree) {
  Pairs pairs = {{1, 2}, {1, 3}, {1, 4}, {2, 3}, {8, 9}};
  SimilarityGraph g({1, 2, 3, 4, 8, 9}, pairs);
  auto routes = MineFrequentRoutesInGraph(g, 2);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_EQ(routes[0].support, 4u);
  EXPECT_EQ(routes[0].representative, 1);  // degree 3
  EXPECT_EQ(routes[1].support, 2u);
  // min_support filters small components.
  EXPECT_EQ(MineFrequentRoutesInGraph(g, 3).size(), 1u);
}

class AnalyticsEndToEnd : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig ccfg;
    ccfg.num_workers = 4;
    cluster_ = std::make_shared<Cluster>(ccfg);
    DitaConfig config;
    config.build.ng = 3;
    config.build.trie.leaf_capacity = 4;
    engine_ = std::make_unique<DitaEngine>(cluster_, config);

    GeneratorConfig gcfg;
    gcfg.cardinality = 200;
    gcfg.region = MBR(Point{0, 0}, Point{1, 1});
    gcfg.step = 0.01;
    gcfg.trips_per_route = 10;   // dense route groups
    gcfg.point_drop_prob = 0.0;  // keep sibling DTW ~ len * noise << tau
    gcfg.seed = 101;
    data_ = GenerateTaxiDataset(gcfg);
    ASSERT_TRUE(engine_->BuildIndex(data_).ok());
  }

  std::shared_ptr<Cluster> cluster_;
  std::unique_ptr<DitaEngine> engine_;
  Dataset data_;
};

TEST_F(AnalyticsEndToEnd, GraphFromSelfJoinCoversAllTrajectories) {
  auto graph = SimilarityGraph::FromSelfJoin(*engine_, 0.01);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->NumNodes(), data_.size());
}

TEST_F(AnalyticsEndToEnd, ClusteringFindsRouteGroups) {
  ClusteringParams params;
  params.tau = 0.005;
  params.min_pts = 4;
  auto result = ClusterTrajectories(*engine_, params);
  ASSERT_TRUE(result.ok());
  // ~20 canonical routes with ~10 trips each: many clusters, few noise.
  EXPECT_GT(result->num_clusters, 5);
  EXPECT_LT(result->noise.size(), data_.size() / 2);
}

TEST_F(AnalyticsEndToEnd, FrequentRoutesAndOutliersAreConsistent) {
  auto routes = MineFrequentRoutes(*engine_, 0.005, 5);
  ASSERT_TRUE(routes.ok());
  EXPECT_FALSE(routes->empty());
  for (size_t i = 1; i < routes->size(); ++i) {
    EXPECT_GE((*routes)[i - 1].support, (*routes)[i].support);
  }
  OutlierParams oparams;
  oparams.tau = 0.005;
  oparams.min_neighbors = 1;
  auto outliers = FindOutliers(*engine_, oparams);
  ASSERT_TRUE(outliers.ok());
  // An outlier (no neighbours) can never sit on a frequent route (>= 5).
  for (TrajectoryId out : *outliers) {
    for (const auto& route : *routes) {
      EXPECT_FALSE(std::binary_search(route.members.begin(),
                                      route.members.end(), out));
    }
  }
}

TEST(AnalyticsValidationTest, RejectsBadParams) {
  ClusterConfig ccfg;
  ccfg.num_workers = 2;
  auto cluster = std::make_shared<Cluster>(ccfg);
  DitaConfig config;
  DitaEngine engine(cluster, config);
  GeneratorConfig gcfg;
  gcfg.cardinality = 20;
  ASSERT_TRUE(engine.BuildIndex(GenerateTaxiDataset(gcfg)).ok());
  ClusteringParams params;
  params.min_pts = 0;
  EXPECT_FALSE(ClusterTrajectories(engine, params).ok());
  EXPECT_FALSE(MineFrequentRoutes(engine, 0.01, 0).ok());
}

}  // namespace
}  // namespace dita
