#include "core/engine.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace dita {
namespace {

/// True when built with ASan/TSan (ci.sh's sanitized pass). Instrumentation
/// slows measured CPU by an order of magnitude, which shifts the
/// compute-vs-transfer cost ratios that timing-based planner heuristics
/// (like division balancing) trigger on.
constexpr bool BuiltWithSanitizer() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

std::shared_ptr<Cluster> MakeCluster(size_t workers = 4) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  return std::make_shared<Cluster>(cfg);
}

Dataset CityDataset(size_t n = 400, uint64_t seed = 51) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.region = MBR(Point{0, 0}, Point{1, 1});
  cfg.step = 0.01;
  cfg.avg_len = 16;
  cfg.min_len = 4;
  cfg.max_len = 50;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

DitaConfig SmallConfig(DistanceType type = DistanceType::kDTW) {
  DitaConfig config;
  config.build.ng = 3;
  config.build.trie.num_pivots = 3;
  config.build.trie.align_fanout = 8;
  config.build.trie.pivot_fanout = 4;
  config.build.trie.leaf_capacity = 4;
  config.distance = type;
  config.distance_params.epsilon = 0.01;
  config.distance_params.delta = 4;
  config.verify.cell_size = 0.02;
  return config;
}

TEST(DitaEngineTest, BuildValidatesInput) {
  auto cluster = MakeCluster();
  DitaConfig config = SmallConfig();
  config.build.ng = 0;
  DitaEngine bad(cluster, config);
  EXPECT_FALSE(bad.BuildIndex(CityDataset(20)).ok());

  DitaEngine engine(cluster, SmallConfig());
  Dataset with_short;
  with_short.Add(Trajectory(0, {{0, 0}}));
  EXPECT_FALSE(engine.BuildIndex(with_short).ok());
}

TEST(DitaEngineTest, SearchBeforeBuildFails) {
  DitaEngine engine(MakeCluster(), SmallConfig());
  Trajectory q(0, {{0, 0}, {1, 1}});
  EXPECT_FALSE(engine.Search(q, 1.0).ok());
}

TEST(DitaEngineTest, SearchRejectsBadArgs) {
  auto cluster = MakeCluster();
  DitaEngine engine(cluster, SmallConfig());
  ASSERT_TRUE(engine.BuildIndex(CityDataset(50)).ok());
  Trajectory q(0, {{0, 0}, {1, 1}});
  EXPECT_FALSE(engine.Search(q, -1.0).ok());
  EXPECT_FALSE(engine.Search(Trajectory(0, {{0, 0}}), 1.0).ok());
}

TEST(DitaEngineTest, IndexStatsPopulated) {
  auto cluster = MakeCluster();
  DitaEngine engine(cluster, SmallConfig());
  Dataset ds = CityDataset(300);
  ASSERT_TRUE(engine.BuildIndex(ds).ok());
  const auto& stats = engine.index_stats();
  EXPECT_EQ(stats.num_trajectories, ds.size());
  EXPECT_GT(stats.num_partitions, 1u);
  EXPECT_GT(stats.global_index_bytes, 0u);
  EXPECT_GT(stats.local_index_bytes, 0u);
  EXPECT_GT(stats.build_seconds, 0.0);
}

TEST(DitaEngineTest, ParallelBuildMatchesSerialBuild) {
  // build_threads only changes how construction work is chunked; the index,
  // the simulated cost ledger, and every query answer must be unchanged.
  Dataset ds = CityDataset(500);
  DitaConfig serial_cfg = SmallConfig();
  DitaEngine serial(MakeCluster(), serial_cfg);
  ASSERT_TRUE(serial.BuildIndex(ds).ok());

  DitaConfig parallel_cfg = SmallConfig();
  parallel_cfg.build.threads = 3;
  DitaEngine parallel(MakeCluster(), parallel_cfg);
  ASSERT_TRUE(parallel.BuildIndex(ds).ok());

  EXPECT_EQ(parallel.index_stats().num_partitions,
            serial.index_stats().num_partitions);
  EXPECT_EQ(parallel.index_stats().local_index_bytes,
            serial.index_stats().local_index_bytes);
  for (size_t i = 0; i < 8; ++i) {
    const Trajectory& q = ds[(i * 37) % ds.size()];
    auto a = serial.Search(q, 0.05);
    auto b = parallel.Search(q, 0.05);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(*a, *b);
  }
}

/// End-to-end correctness: engine search equals brute force for every
/// distance function.
class EngineSearchProperty : public ::testing::TestWithParam<DistanceType> {};

TEST_P(EngineSearchProperty, MatchesBruteForce) {
  auto cluster = MakeCluster();
  DitaConfig config = SmallConfig(GetParam());
  DitaEngine engine(cluster, config);
  Dataset ds = CityDataset(300);
  ASSERT_TRUE(engine.BuildIndex(ds).ok());

  auto dist = *MakeDistance(GetParam(), config.distance_params);
  const bool edit = GetParam() == DistanceType::kEDR ||
                    GetParam() == DistanceType::kLCSS;
  const std::vector<double> taus = edit
                                       ? std::vector<double>{1.0, 3.0, 6.0}
                                       : std::vector<double>{0.005, 0.03, 0.1};
  auto queries = ds.SampleQueries(8, 17);
  for (const auto& q : queries) {
    for (double tau : taus) {
      DitaEngine::QueryStats qstats;
      auto got = engine.Search(q, tau, &qstats);
      ASSERT_TRUE(got.ok());
      std::vector<TrajectoryId> expected;
      for (const auto& t : ds.trajectories()) {
        if (dist->Compute(t, q) <= tau) expected.push_back(t.id());
      }
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(*got, expected) << dist->name() << " tau=" << tau;
      EXPECT_EQ(qstats.results, expected.size());
      EXPECT_GE(qstats.candidates, expected.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistances, EngineSearchProperty,
                         ::testing::Values(DistanceType::kDTW,
                                           DistanceType::kFrechet,
                                           DistanceType::kEDR,
                                           DistanceType::kLCSS,
                                           DistanceType::kERP),
                         [](const auto& info) {
                           return DistanceTypeName(info.param);
                         });

/// Join correctness: DITA join equals the brute-force cross product filter.
class EngineJoinProperty : public ::testing::TestWithParam<DistanceType> {};

TEST_P(EngineJoinProperty, SelfJoinMatchesBruteForce) {
  auto cluster = MakeCluster();
  DitaConfig config = SmallConfig(GetParam());
  DitaEngine engine(cluster, config);
  Dataset ds = CityDataset(120, 61);
  ASSERT_TRUE(engine.BuildIndex(ds).ok());

  auto dist = *MakeDistance(GetParam(), config.distance_params);
  const bool edit = GetParam() == DistanceType::kEDR ||
                    GetParam() == DistanceType::kLCSS;
  const double tau = edit ? 2.0 : 0.02;

  DitaEngine::JoinStats jstats;
  auto got = engine.Join(engine, tau, &jstats);
  ASSERT_TRUE(got.ok());

  std::vector<std::pair<TrajectoryId, TrajectoryId>> expected;
  for (const auto& a : ds.trajectories()) {
    for (const auto& b : ds.trajectories()) {
      if (dist->Compute(b, a) <= tau) expected.emplace_back(a.id(), b.id());
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(*got, expected) << dist->name() << " tau=" << tau;
  EXPECT_EQ(jstats.result_pairs, expected.size());
  EXPECT_GT(jstats.graph_edges, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllDistances, EngineJoinProperty,
                         ::testing::Values(DistanceType::kDTW,
                                           DistanceType::kFrechet,
                                           DistanceType::kEDR,
                                           DistanceType::kLCSS,
                                           DistanceType::kERP),
                         [](const auto& info) {
                           return DistanceTypeName(info.param);
                         });

/// kNN extension: exact against brute force for every distance function.
class EngineKnnProperty : public ::testing::TestWithParam<DistanceType> {};

TEST_P(EngineKnnProperty, MatchesBruteForce) {
  auto cluster = MakeCluster();
  DitaConfig config = SmallConfig(GetParam());
  DitaEngine engine(cluster, config);
  Dataset ds = CityDataset(250, 65);
  ASSERT_TRUE(engine.BuildIndex(ds).ok());
  auto dist = *MakeDistance(GetParam(), config.distance_params);

  for (const auto& q : ds.SampleQueries(5, 19)) {
    for (size_t k : {1u, 5u, 20u}) {
      auto got = engine.KnnSearch(q, k);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ASSERT_EQ(got->size(), k);

      std::vector<double> all;
      for (const auto& t : ds.trajectories()) all.push_back(dist->Compute(t, q));
      std::sort(all.begin(), all.end());
      // Distances must match the true k smallest (ids may tie arbitrarily).
      for (size_t i = 0; i < k; ++i) {
        EXPECT_NEAR((*got)[i].second, all[i], 1e-9)
            << dist->name() << " k=" << k << " i=" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistances, EngineKnnProperty,
                         ::testing::Values(DistanceType::kDTW,
                                           DistanceType::kFrechet,
                                           DistanceType::kEDR,
                                           DistanceType::kLCSS,
                                           DistanceType::kERP),
                         [](const auto& info) {
                           return DistanceTypeName(info.param);
                         });

TEST(DitaEngineTest, ParallelVerificationMatchesSerial) {
  // verify_threads fans the surviving DP work of each partition across an
  // engine-local pool; answers must be bit-identical to the serial engine,
  // and the offloaded CPU must land in the owning worker's virtual time.
  Dataset ds = CityDataset(300);
  auto serial_cluster = MakeCluster();
  DitaEngine serial(serial_cluster, SmallConfig());
  ASSERT_TRUE(serial.BuildIndex(ds).ok());

  auto parallel_cluster = MakeCluster();
  DitaConfig parallel_config = SmallConfig();
  parallel_config.verify.threads = 2;
  parallel_config.verify.parallel_min = 1;  // force the pool path
  DitaEngine parallel(parallel_cluster, parallel_config);
  ASSERT_TRUE(parallel.BuildIndex(ds).ok());

  auto queries = ds.SampleQueries(6, 23);
  for (const auto& q : queries) {
    for (double tau : {0.01, 0.05, 0.2}) {
      auto want = serial.Search(q, tau);
      auto got = parallel.Search(q, tau);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(got.value(), want.value()) << "tau=" << tau;
    }
  }

  auto want_join = serial.Join(serial, 0.02);
  auto got_join = parallel.Join(parallel, 0.02);
  ASSERT_TRUE(want_join.ok());
  ASSERT_TRUE(got_join.ok());
  EXPECT_EQ(got_join.value(), want_join.value());
}

TEST(DitaEngineTest, KnnJoinMatchesBruteForce) {
  auto cluster = MakeCluster();
  DitaConfig config = SmallConfig();
  DitaEngine left(cluster, config);
  DitaEngine right(cluster, config);
  Dataset ds_l = CityDataset(40, 67);
  Dataset ds_r = CityDataset(80, 68);
  ASSERT_TRUE(left.BuildIndex(ds_l).ok());
  ASSERT_TRUE(right.BuildIndex(ds_r).ok());

  const size_t k = 3;
  auto got = left.KnnJoin(right, k);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_EQ(got->size(), ds_l.size() * k);

  auto dist = *MakeDistance(DistanceType::kDTW);
  size_t row = 0;
  std::map<TrajectoryId, const Trajectory*> left_by_id;
  for (const auto& t : ds_l.trajectories()) left_by_id[t.id()] = &t;
  TrajectoryId prev_left = -1;
  for (const auto& r : *got) {
    EXPECT_GE(r.left, prev_left);
    prev_left = r.left;
    ++row;
  }
  // Verify distances for a few left trajectories against brute force.
  for (size_t i = 0; i < 5; ++i) {
    const Trajectory& q = ds_l[i];
    std::vector<double> all;
    for (const auto& t : ds_r.trajectories()) all.push_back(dist->Compute(t, q));
    std::sort(all.begin(), all.end());
    size_t idx = 0;
    for (const auto& r : *got) {
      if (r.left != q.id()) continue;
      ASSERT_LT(idx, k);
      EXPECT_NEAR(r.distance, all[idx], 1e-9) << "left=" << r.left;
      ++idx;
    }
    EXPECT_EQ(idx, k);
  }
}

TEST(DitaEngineTest, KnnJoinEdgeCases) {
  auto cluster = MakeCluster();
  DitaEngine engine(cluster, SmallConfig());
  ASSERT_TRUE(engine.BuildIndex(CityDataset(30, 69)).ok());
  auto zero = engine.KnnJoin(engine, 0);
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->empty());
  EXPECT_FALSE(engine.KnnJoin(engine, 31).ok());
  // Self kNN-join with k = 1 pairs everything with itself at distance 0.
  auto self = engine.KnnJoin(engine, 1);
  ASSERT_TRUE(self.ok());
  for (const auto& r : *self) {
    EXPECT_EQ(r.left, r.right);
    EXPECT_DOUBLE_EQ(r.distance, 0.0);
  }
}

TEST(DitaEngineTest, KnnEdgeCases) {
  auto cluster = MakeCluster();
  DitaEngine engine(cluster, SmallConfig());
  Dataset ds = CityDataset(50, 66);
  ASSERT_TRUE(engine.BuildIndex(ds).ok());
  auto zero = engine.KnnSearch(ds[0], 0);
  ASSERT_TRUE(zero.ok());
  EXPECT_TRUE(zero->empty());
  EXPECT_FALSE(engine.KnnSearch(ds[0], ds.size() + 1).ok());
  // k = 1 on a dataset member returns the member itself at distance 0.
  auto self = engine.KnnSearch(ds[7], 1);
  ASSERT_TRUE(self.ok());
  EXPECT_DOUBLE_EQ((*self)[0].second, 0.0);
}

TEST(DitaEngineTest, TwoTableJoinMatchesBruteForce) {
  auto cluster = MakeCluster();
  DitaConfig config = SmallConfig();
  DitaEngine left(cluster, config);
  DitaEngine right(cluster, config);
  Dataset ds_l = CityDataset(100, 71);
  Dataset ds_r = CityDataset(100, 72);
  ASSERT_TRUE(left.BuildIndex(ds_l).ok());
  ASSERT_TRUE(right.BuildIndex(ds_r).ok());

  const double tau = 0.05;
  auto got = left.Join(right, tau);
  ASSERT_TRUE(got.ok());

  auto dist = *MakeDistance(DistanceType::kDTW);
  std::vector<std::pair<TrajectoryId, TrajectoryId>> expected;
  for (const auto& a : ds_l.trajectories()) {
    for (const auto& b : ds_r.trajectories()) {
      if (dist->Compute(b, a) <= tau) expected.emplace_back(a.id(), b.id());
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(*got, expected);
}

TEST(DitaEngineTest, JoinRequiresSharedCluster) {
  DitaEngine a(MakeCluster(), SmallConfig());
  DitaEngine b(MakeCluster(), SmallConfig());
  ASSERT_TRUE(a.BuildIndex(CityDataset(30, 1)).ok());
  ASSERT_TRUE(b.BuildIndex(CityDataset(30, 2)).ok());
  EXPECT_FALSE(a.Join(b, 0.1).ok());
}

TEST(DitaEngineTest, SearchChargesClusterCosts) {
  auto cluster = MakeCluster();
  DitaEngine engine(cluster, SmallConfig());
  ASSERT_TRUE(engine.BuildIndex(CityDataset(200)).ok());
  Trajectory q = CityDataset(200)[0];
  DitaEngine::QueryStats stats;
  ASSERT_TRUE(engine.Search(q, 0.05, &stats).ok());
  EXPECT_GT(stats.makespan_seconds, 0.0);
  EXPECT_GT(stats.partitions_probed, 0u);
}

TEST(DitaEngineTest, JoinShipsBytesAndReportsStats) {
  auto cluster = MakeCluster();
  DitaEngine engine(cluster, SmallConfig());
  ASSERT_TRUE(engine.BuildIndex(CityDataset(150)).ok());
  DitaEngine::JoinStats stats;
  ASSERT_TRUE(engine.Join(engine, 0.03, &stats).ok());
  EXPECT_GT(stats.makespan_seconds, 0.0);
  EXPECT_GT(stats.bytes_shipped, 0u);  // cross-worker partition pairs exist
  EXPECT_GE(stats.load_ratio, 1.0);
  EXPECT_GE(stats.candidate_pairs, stats.result_pairs);
  // The verification-pipeline counters mirror the candidate/result totals
  // and account for every candidate pair exactly once.
  EXPECT_EQ(stats.verify.pairs, stats.candidate_pairs);
  EXPECT_EQ(stats.verify.accepted, stats.result_pairs);
  EXPECT_GT(stats.verify.dp_computed, 0u);
  EXPECT_GT(stats.verify.dp_cells, 0u);
  EXPECT_EQ(stats.verify.pruned_by_sketch + stats.verify.pruned_by_mbr +
                stats.verify.pruned_by_cell + stats.verify.dp_computed,
            stats.verify.pairs);
  // The join funnel is monotone and lands exactly on the result pairs.
  ASSERT_FALSE(stats.funnel.empty());
  EXPECT_TRUE(stats.funnel.MonotonicallyNonIncreasing())
      << stats.funnel.ToTable();
  EXPECT_EQ(stats.funnel.FinalSurvivors(), stats.result_pairs);
}

TEST(DitaEngineTest, AblationTogglesPreserveCorrectness) {
  Dataset ds = CityDataset(150, 81);
  const double tau = 0.04;

  std::vector<std::pair<TrajectoryId, TrajectoryId>> reference;
  for (int mask = 0; mask < 4; ++mask) {
    auto cluster = MakeCluster();
    DitaConfig config = SmallConfig();
    config.verify.enable_mbr = mask & 1;
    config.verify.enable_cell = mask & 2;
    config.enable_graph_orientation = mask & 1;
    config.enable_division_balancing = mask & 2;
    DitaEngine engine(cluster, config);
    ASSERT_TRUE(engine.BuildIndex(ds).ok());
    auto got = engine.Join(engine, tau);
    ASSERT_TRUE(got.ok());
    if (mask == 0) {
      reference = *got;
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(*got, reference) << "mask=" << mask;
    }
  }
}

TEST(DitaEngineTest, DivisionBalancingFiresOnSkewAndPreservesResults) {
  // Zipf route popularity concentrates work in few partitions; the division
  // mechanism (§6.3) must replicate at least one of them and must never
  // change the answer set.
  GeneratorConfig gcfg;
  gcfg.cardinality = 600;
  gcfg.region = MBR(Point{0, 0}, Point{1, 1});
  gcfg.step = 0.01;
  gcfg.route_skew = 1.3;
  gcfg.seed = 131;
  Dataset ds = GenerateTaxiDataset(gcfg);

  auto run = [&](bool division) {
    auto cluster = MakeCluster(8);
    DitaConfig config = SmallConfig();
    config.build.ng = 5;
    config.enable_division_balancing = division;
    DitaEngine engine(cluster, config);
    EXPECT_TRUE(engine.BuildIndex(ds).ok());
    DitaEngine::JoinStats stats;
    auto pairs = engine.Join(engine, 0.01, &stats);
    EXPECT_TRUE(pairs.ok());
    return std::make_pair(*pairs, stats);
  };
  auto [with_pairs, with_stats] = run(true);
  auto [without_pairs, without_stats] = run(false);
  EXPECT_EQ(with_pairs, without_pairs);
  // Whether the trigger fires depends on measured cost ratios, which
  // sanitizer instrumentation distorts; answers are checked unconditionally.
  if (!BuiltWithSanitizer()) {
    EXPECT_GE(with_stats.divided_partitions, 1u);
  }
  EXPECT_EQ(without_stats.divided_partitions, 0u);
}

TEST(DitaEngineTest, RandomPartitioningStillCorrect) {
  // The Fig. 13 ablation changes only cost, never answers.
  Dataset ds = CityDataset(150, 83);
  const double tau = 0.03;
  auto run = [&](bool random) {
    auto cluster = MakeCluster();
    DitaConfig config = SmallConfig();
    config.build.random_partitioning = random;
    DitaEngine engine(cluster, config);
    EXPECT_TRUE(engine.BuildIndex(ds).ok());
    DitaEngine::JoinStats stats;
    auto got = engine.Join(engine, tau, &stats);
    EXPECT_TRUE(got.ok());
    return std::make_pair(*got, stats.bytes_shipped);
  };
  auto [spatial_pairs, spatial_bytes] = run(false);
  auto [random_pairs, random_bytes] = run(true);
  EXPECT_EQ(spatial_pairs, random_pairs);
  // Random partitions have huge first/last MBRs, so far more data ships.
  EXPECT_GT(random_bytes, spatial_bytes);
}

TEST(DitaEngineTest, RandomPartitioningComparison) {
  // Sanity for the Fig. 13 ablation harness: first/last partitioning ships
  // fewer bytes than the number of partition pairs would suggest, because
  // fewer trajectories are relevant to each partition.
  auto cluster = MakeCluster();
  DitaEngine engine(cluster, SmallConfig());
  ASSERT_TRUE(engine.BuildIndex(CityDataset(200, 91)).ok());
  DitaEngine::JoinStats stats;
  ASSERT_TRUE(engine.Join(engine, 0.02, &stats).ok());
  const auto& istats = engine.index_stats();
  EXPECT_LT(stats.bytes_shipped,
            istats.num_partitions * CityDataset(200, 91).ByteSize());
}

}  // namespace
}  // namespace dita
