#include "index/cell.h"

#include <gtest/gtest.h>

#include "distance/dtw.h"
#include "distance/frechet.h"
#include "util/rng.h"

namespace dita {
namespace {

TEST(CellTest, PaperExample57Compression) {
  // Example 5.7: T1 with cell size D = 2 compresses to [t1,2; t3,1; t4,3].
  Trajectory t1(1, {{1, 1}, {1, 2}, {3, 2}, {4, 4}, {4, 5}, {5, 5}});
  CellSummary s = CompressToCells(t1, 2.0);
  ASSERT_EQ(s.cells.size(), 3u);
  EXPECT_EQ(s.cells[0].center, (Point{1, 1}));
  EXPECT_EQ(s.cells[0].count, 2);
  EXPECT_EQ(s.cells[1].center, (Point{3, 2}));
  EXPECT_EQ(s.cells[1].count, 1);
  EXPECT_EQ(s.cells[2].center, (Point{4, 4}));
  EXPECT_EQ(s.cells[2].count, 3);
  EXPECT_EQ(s.TotalPoints(), t1.size());
}

TEST(CellTest, PaperExample57LowerBound) {
  // Example 5.7: Cell(Q, T1) = 4 > tau = 3, so (T1, Q) is pruned.
  Trajectory t1(1, {{1, 1}, {1, 2}, {3, 2}, {4, 4}, {4, 5}, {5, 5}});
  Trajectory q(9, {{1, 1}, {1, 5}, {1, 4}, {2, 4}, {2, 5}, {4, 4}, {5, 6}, {5, 5}});
  CellSummary ct = CompressToCells(t1, 2.0);
  CellSummary cq = CompressToCells(q, 2.0);
  EXPECT_DOUBLE_EQ(CellLowerBoundDtw(cq, ct), 4.0);
  Dtw dtw;
  EXPECT_LE(CellLowerBoundDtw(cq, ct), dtw.Compute(t1, q) + 1e-9);
}

TEST(CellTest, CellDistanceOverlapIsZero) {
  CellSummary::Cell a{{0, 0}, 1};
  CellSummary::Cell b{{1, 0}, 1};
  EXPECT_DOUBLE_EQ(CellDistance(a, 2.0, b, 2.0), 0.0);   // touching/overlap
  EXPECT_DOUBLE_EQ(CellDistance(a, 1.0, b, 1.0), 0.0);   // adjacent edges touch
  CellSummary::Cell c{{5, 0}, 1};
  EXPECT_DOUBLE_EQ(CellDistance(a, 2.0, c, 2.0), 3.0);
}

TEST(CellTest, EveryPointLandsInSomeCell) {
  Rng rng(5);
  for (int iter = 0; iter < 50; ++iter) {
    Trajectory t;
    const size_t len = static_cast<size_t>(rng.UniformInt(1, 60));
    for (size_t i = 0; i < len; ++i) {
      t.mutable_points().push_back(Point{rng.Uniform(0, 3), rng.Uniform(0, 3)});
    }
    CellSummary s = CompressToCells(t, 0.5);
    EXPECT_EQ(s.TotalPoints(), len);
    // Every point is within half a side of its covering cell's center.
    for (const Point& p : t.points()) {
      bool covered = false;
      for (const auto& c : s.cells) {
        if (std::abs(p.x - c.center.x) <= 0.25 + 1e-12 &&
            std::abs(p.y - c.center.y) <= 0.25 + 1e-12) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered);
    }
  }
}

/// Lemma 5.6 as a property: the cell bound never exceeds the true DTW, in
/// both argument orders, for random data and cell sizes.
class CellBoundProperty : public ::testing::TestWithParam<double> {};

TEST_P(CellBoundProperty, LowerBoundsDtwBothWays) {
  const double side = GetParam();
  Dtw dtw;
  Rng rng(static_cast<uint64_t>(side * 100) + 7);
  for (int iter = 0; iter < 80; ++iter) {
    Trajectory a, b;
    const size_t la = static_cast<size_t>(rng.UniformInt(2, 25));
    const size_t lb = static_cast<size_t>(rng.UniformInt(2, 25));
    for (size_t i = 0; i < la; ++i) {
      a.mutable_points().push_back(Point{rng.Uniform(0, 4), rng.Uniform(0, 4)});
    }
    for (size_t i = 0; i < lb; ++i) {
      b.mutable_points().push_back(Point{rng.Uniform(0, 4), rng.Uniform(0, 4)});
    }
    const double d = dtw.Compute(a, b);
    CellSummary ca = CompressToCells(a, side);
    CellSummary cb = CompressToCells(b, side);
    EXPECT_LE(CellLowerBoundDtw(ca, cb), d + 1e-9);
    EXPECT_LE(CellLowerBoundDtw(cb, ca), d + 1e-9);

    Frechet fr;
    const double f = fr.Compute(a, b);
    EXPECT_LE(CellLowerBoundFrechet(ca, cb), f + 1e-9);
    EXPECT_LE(CellLowerBoundFrechet(cb, ca), f + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sides, CellBoundProperty,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0));

}  // namespace
}  // namespace dita
