#include "index/signature.h"

#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "distance/distance.h"
#include "index/trie_index.h"
#include "workload/generator.h"

namespace dita {
namespace {

std::shared_ptr<Cluster> MakeCluster(size_t workers = 4) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  return std::make_shared<Cluster>(cfg);
}

Dataset CityDataset(size_t n = 300, uint64_t seed = 91) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.region = MBR(Point{0, 0}, Point{1, 1});
  cfg.step = 0.01;
  cfg.avg_len = 16;
  cfg.min_len = 4;
  cfg.max_len = 40;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

DitaConfig SmallConfig(DistanceType type = DistanceType::kDTW) {
  DitaConfig config;
  config.build.ng = 3;
  config.build.trie.num_pivots = 3;
  config.build.trie.align_fanout = 8;
  config.build.trie.pivot_fanout = 4;
  config.build.trie.leaf_capacity = 4;
  config.distance = type;
  config.distance_params.epsilon = 0.01;
  config.distance_params.delta = 4;
  config.verify.cell_size = 0.02;
  return config;
}

Trajectory RandomTrajectory(std::mt19937_64* rng, TrajectoryId id,
                            const MBR& region, size_t min_len = 3,
                            size_t max_len = 20) {
  std::uniform_int_distribution<size_t> len(min_len, max_len);
  std::uniform_real_distribution<double> ux(region.lo().x, region.hi().x);
  std::uniform_real_distribution<double> uy(region.lo().y, region.hi().y);
  std::vector<Point> pts(len(*rng));
  for (Point& p : pts) p = Point{ux(*rng), uy(*rng)};
  return Trajectory(id, std::move(pts));
}

// ------------------------------------------------------------ grid units --

TEST(SigGridTest, QuantizationClampsOutOfRegionPoints) {
  const SigGrid g = SigGrid::For(MBR(Point{0, 0}, Point{1, 1}));
  ASSERT_TRUE(g.valid());
  EXPECT_EQ(g.CellX(-5.0), 0);
  EXPECT_EQ(g.CellY(-5.0), 0);
  EXPECT_EQ(g.CellX(7.0), kSigDim - 1);
  EXPECT_EQ(g.CellY(7.0), kSigDim - 1);
  // Interior points land in the cell whose rectangle contains them.
  for (int i = 0; i < kSigDim; ++i) {
    const double x = (i + 0.5) / kSigDim;
    EXPECT_EQ(g.CellX(x), i);
    EXPECT_EQ(g.CellY(x), i);
    const MBR rect = g.CellRect(i, i);
    EXPECT_LE(rect.lo().x, x);
    EXPECT_GE(rect.hi().x, x);
  }
}

TEST(SigGridTest, DegenerateRegionStaysValid) {
  const SigGrid g = SigGrid::For(MBR(Point{3, 3}, Point{3, 3}));
  EXPECT_TRUE(g.valid());
  EXPECT_EQ(g.CellX(3.0), std::clamp(g.CellX(3.0), 0, kSigDim - 1));
}

TEST(SigBitsTest, SubsetAndIntersectSemantics) {
  SigBits a, b;
  a.Set(1, 2);
  a.Set(5, 9);
  b = a;
  b.Set(12, 14);
  EXPECT_TRUE(a.SubsetOf(b));
  EXPECT_FALSE(b.SubsetOf(a));
  EXPECT_TRUE(a.Intersects(b));
  SigBits c;
  c.Set(0, 0);
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_FALSE(c.SubsetOf(a));
  EXPECT_EQ(a.PopCount(), 2);
  EXPECT_TRUE(SigBits{}.Empty());
}

// --------------------------------------------------------- dilate oracle --

// Dilate must contain every cell whose rectangle is within rect-min-distance
// tau of some set cell's rectangle (the guard band may add more; it must
// never remove any).
TEST(DilateTest, CoversBruteForceRectDistanceOracle) {
  std::mt19937_64 rng(7);
  const SigGrid g = SigGrid::For(MBR(Point{0, 0}, Point{2, 1}));
  std::uniform_int_distribution<int> cell(0, kSigDim - 1);
  std::uniform_real_distribution<double> utau(0.0, 0.6);
  for (int trial = 0; trial < 50; ++trial) {
    SigBits q;
    const int nset = 1 + (trial % 5);
    for (int i = 0; i < nset; ++i) q.Set(cell(rng), cell(rng));
    const double tau = utau(rng);
    const SigBits dilated = Dilate(q, g, tau);

    for (int jy = 0; jy < kSigDim; ++jy) {
      for (int jx = 0; jx < kSigDim; ++jx) {
        bool within = false;
        for (int iy = 0; iy < kSigDim && !within; ++iy) {
          for (int ix = 0; ix < kSigDim && !within; ++ix) {
            SigBits probe;
            probe.Set(ix, iy);
            if (!probe.Intersects(q)) continue;
            within = g.CellRect(ix, iy).MinDist(g.CellRect(jx, jy)) <= tau;
          }
        }
        if (within) {
          SigBits want;
          want.Set(jx, jy);
          EXPECT_TRUE(want.SubsetOf(dilated))
              << "cell (" << jx << "," << jy << ") within tau=" << tau
              << " but not dilated";
        }
      }
    }
  }
}

TEST(DilateTest, SmallTauStaysSparse) {
  const SigGrid g = SigGrid::For(MBR(Point{0, 0}, Point{1, 1}));
  SigBits q;
  q.Set(8, 8);
  const SigBits dilated = Dilate(q, g, 0.01);
  // One cell dilated by a sub-cell radius reaches at most its 3x3
  // neighborhood — the tier retains pruning power at serving taus.
  EXPECT_LE(dilated.PopCount(), 9);
  EXPECT_GE(dilated.PopCount(), 1);
}

TEST(DilateAcrossTest, CoversCrossFrameRectDistanceOracle) {
  std::mt19937_64 rng(11);
  const SigGrid src = SigGrid::For(MBR(Point{0, 0}, Point{1, 1}));
  const SigGrid dst = SigGrid::For(MBR(Point{0.3, -0.2}, Point{1.9, 0.9}));
  std::uniform_int_distribution<int> cell(0, kSigDim - 1);
  std::uniform_real_distribution<double> utau(0.0, 0.5);
  for (int trial = 0; trial < 30; ++trial) {
    SigBits s;
    for (int i = 0; i < 3; ++i) s.Set(cell(rng), cell(rng));
    const double tau = utau(rng);
    const SigBits proj = DilateAcross(s, src, dst, tau);
    for (int jy = 0; jy < kSigDim; ++jy) {
      for (int jx = 0; jx < kSigDim; ++jx) {
        bool within = false;
        for (int iy = 0; iy < kSigDim && !within; ++iy) {
          for (int ix = 0; ix < kSigDim && !within; ++ix) {
            SigBits probe;
            probe.Set(ix, iy);
            if (!probe.Intersects(s)) continue;
            within =
                src.CellRect(ix, iy).MinDist(dst.CellRect(jx, jy)) <= tau;
          }
        }
        if (within) {
          SigBits want;
          want.Set(jx, jy);
          EXPECT_TRUE(want.SubsetOf(proj));
        }
      }
    }
  }
}

// -------------------------------------------- necessary-condition oracle --

// The exactness property the whole tier rests on: whenever the true
// DTW/Frechet distance is within tau, the candidate's signature is a subset
// of the query's tau-dilated signature — including trajectories that leave
// the grid region (clamping is 1-Lipschitz, distances only shrink).
TEST(SketchOracleTest, SubsetIsNecessaryForGeometricMatch) {
  for (const DistanceType type : {DistanceType::kDTW, DistanceType::kFrechet}) {
    auto dist = MakeDistance(type, DistanceParams{});
    ASSERT_TRUE(dist.ok());
    std::mt19937_64 rng(23 + static_cast<int>(type));
    const SigGrid g = SigGrid::For(MBR(Point{0, 0}, Point{1, 1}));
    // Sample region deliberately larger than the grid region to exercise
    // clamping on both sides.
    const MBR sample(Point{-0.3, -0.3}, Point{1.3, 1.3});
    size_t matches = 0;
    for (int trial = 0; trial < 400; ++trial) {
      const Trajectory t = RandomTrajectory(&rng, 1, sample);
      const Trajectory q = RandomTrajectory(&rng, 2, sample);
      const double d = (*dist)->Compute(t, q);
      const double tau = d * 1.05 + 1e-12;  // every pair is a tau-match
      const SigBits dilated = Dilate(BuildSignature(q, g).bits, g, tau);
      EXPECT_TRUE(BuildSignature(t, g).bits.SubsetOf(dilated))
          << "type=" << static_cast<int>(type) << " trial=" << trial
          << " d=" << d;
      ++matches;
    }
    EXPECT_EQ(matches, 400u);
  }
}

TEST(SketchOracleTest, MinhashResemblanceBounds) {
  std::mt19937_64 rng(5);
  const SigGrid g = SigGrid::For(MBR(Point{0, 0}, Point{1, 1}));
  const Trajectory a = RandomTrajectory(&rng, 1, g.region);
  const TrajSignature sa = BuildSignature(a, g);
  EXPECT_DOUBLE_EQ(MinhashResemblance(sa.minhash, sa.minhash), 1.0);
  const double r = MinhashResemblance(sa.minhash, kEmptyMinhash);
  EXPECT_GE(r, 0.0);
  EXPECT_LE(r, 1.0);
}

TEST(SketchOracleTest, AggregateSignatureIsUpperEnvelope) {
  std::mt19937_64 rng(6);
  const SigGrid g = SigGrid::For(MBR(Point{0, 0}, Point{1, 1}));
  TrajSignature agg;
  std::vector<TrajSignature> members;
  for (int i = 0; i < 8; ++i) {
    members.push_back(BuildSignature(RandomTrajectory(&rng, i, g.region), g));
    AggregateSignature(members.back(), &agg);
  }
  for (const TrajSignature& m : members) {
    EXPECT_TRUE(m.bits.SubsetOf(agg.bits));
    for (int c = 0; c < kSigMinhash; ++c) {
      EXPECT_LE(agg.minhash[c], m.minhash[c]);
    }
  }
}

// ------------------------------------------------ engine-level exactness --

// Seeded randomized oracle across all five metrics: results with the sketch
// tier enabled are identical to results with it disabled (for the edit
// metrics the tier self-disables; equality exercises the bypass).
TEST(SketchEngineTest, SearchEqualsSketchOffAcrossMetrics) {
  const Dataset ds = CityDataset(250, 17);
  std::mt19937_64 rng(29);
  for (const DistanceType type :
       {DistanceType::kDTW, DistanceType::kFrechet, DistanceType::kEDR,
        DistanceType::kLCSS, DistanceType::kERP}) {
    DitaConfig on_cfg = SmallConfig(type);
    DitaConfig off_cfg = SmallConfig(type);
    off_cfg.verify.enable_sketch = false;
    DitaEngine on(MakeCluster(), on_cfg);
    DitaEngine off(MakeCluster(), off_cfg);
    ASSERT_TRUE(on.BuildIndex(ds).ok());
    ASSERT_TRUE(off.BuildIndex(ds).ok());
    for (int i = 0; i < 12; ++i) {
      const Trajectory q =
          RandomTrajectory(&rng, 1000 + i, MBR(Point{0, 0}, Point{1, 1}), 4, 20);
      const double tau = (type == DistanceType::kEDR ||
                          type == DistanceType::kLCSS)
                             ? 1.0 + (i % 5)
                             : 0.05 * (1 + (i % 6));
      auto want = off.Search(q, tau);
      auto got = on.Search(q, tau);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, *want) << "metric=" << static_cast<int>(type)
                             << " tau=" << tau;
    }
  }
}

TEST(SketchEngineTest, KnnEqualsSketchOff) {
  const Dataset ds = CityDataset(200, 33);
  DitaConfig off_cfg = SmallConfig();
  off_cfg.verify.enable_sketch = false;
  DitaEngine on(MakeCluster(), SmallConfig());
  DitaEngine off(MakeCluster(), off_cfg);
  ASSERT_TRUE(on.BuildIndex(ds).ok());
  ASSERT_TRUE(off.BuildIndex(ds).ok());
  std::mt19937_64 rng(41);
  for (int i = 0; i < 8; ++i) {
    const Trajectory q =
        RandomTrajectory(&rng, 2000 + i, MBR(Point{0, 0}, Point{1, 1}), 4, 20);
    auto want = off.KnnSearch(q, 5);
    auto got = on.KnnSearch(q, 5);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *want);
  }
}

TEST(SketchEngineTest, JoinEqualsSketchOff) {
  const Dataset left_ds = CityDataset(150, 57);
  const Dataset right_ds = CityDataset(150, 58);
  DitaConfig off_cfg = SmallConfig();
  off_cfg.verify.enable_sketch = false;
  auto on_cluster = MakeCluster();
  auto off_cluster = MakeCluster();
  DitaEngine lon(on_cluster, SmallConfig());
  DitaEngine ron(on_cluster, SmallConfig());
  DitaEngine loff(off_cluster, off_cfg);
  DitaEngine roff(off_cluster, off_cfg);
  ASSERT_TRUE(lon.BuildIndex(left_ds).ok());
  ASSERT_TRUE(ron.BuildIndex(right_ds).ok());
  ASSERT_TRUE(loff.BuildIndex(left_ds).ok());
  ASSERT_TRUE(roff.BuildIndex(right_ds).ok());
  for (const double tau : {0.05, 0.15, 0.4}) {
    auto want = loff.Join(roff, tau);
    auto got = lon.Join(ron, tau);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, *want) << "tau=" << tau;
  }
}

TEST(SketchEngineTest, BatchEqualsSingleWithSketchOn) {
  const Dataset ds = CityDataset(200, 61);
  DitaEngine engine(MakeCluster(), SmallConfig());
  ASSERT_TRUE(engine.BuildIndex(ds).ok());
  std::mt19937_64 rng(67);
  std::vector<QueryRequest> reqs;
  for (int i = 0; i < 6; ++i) {
    QueryRequest req;
    req.kind = QueryKind::kSearch;
    req.query =
        RandomTrajectory(&rng, 3000 + i, MBR(Point{0, 0}, Point{1, 1}), 4, 16);
    req.tau = 0.05 * (1 + i);
    reqs.push_back(std::move(req));
  }
  const auto batched = engine.ExecuteBatch(reqs);
  ASSERT_EQ(batched.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    auto single = engine.Execute(reqs[i]);
    ASSERT_TRUE(single.ok());
    ASSERT_TRUE(batched[i].ok());
    EXPECT_EQ(batched[i]->ids, single->ids);
    EXPECT_EQ(batched[i]->search_stats.funnel.ToTable(),
              single->search_stats.funnel.ToTable());
  }
}

// -------------------------------------------------- accounting & funnels --

TEST(SketchEngineTest, StatsAndFunnelCarrySketchTier) {
  const Dataset ds = CityDataset(250, 71);
  DitaEngine engine(MakeCluster(), SmallConfig());
  ASSERT_TRUE(engine.BuildIndex(ds).ok());
  EXPECT_GT(engine.index_stats().sketch_bytes, 0u);

  std::mt19937_64 rng(73);
  const Trajectory q =
      RandomTrajectory(&rng, 9000, MBR(Point{0, 0}, Point{1, 1}), 4, 16);
  QueryStats stats;
  auto res = engine.Search(q, 0.08, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(stats.funnel.MonotonicallyNonIncreasing());
  EXPECT_EQ(stats.funnel.FinalSurvivors(), res->size());
  std::vector<std::string> labels;
  for (const auto& level : stats.funnel.levels) labels.push_back(level.label);
  EXPECT_NE(std::find(labels.begin(), labels.end(), "sketch partitions"),
            labels.end());
  EXPECT_NE(std::find(labels.begin(), labels.end(), "sketch signature"),
            labels.end());
}

TEST(SketchEngineTest, ScratchDilatedSigsAccountedAndReleased) {
  TrieIndex::Scratch& scratch = TrieIndex::Scratch::ThreadLocal();
  scratch.Release();
  const size_t before = scratch.ByteSize();
  scratch.DilatedSigs().resize(32);
  EXPECT_GE(scratch.ByteSize(), before + 32 * sizeof(SigBits));
  scratch.Release();
  EXPECT_TRUE(scratch.DilatedSigs().empty());
}

}  // namespace
}  // namespace dita
