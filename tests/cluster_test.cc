#include "cluster/cluster.h"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <utility>

#include <gtest/gtest.h>

#include "util/timer.h"

namespace dita {
namespace {

double SpinFor(double target_cpu_seconds) {
  // Burn CPU deterministically; returns a value to defeat optimization.
  volatile double acc = 0.0;
  CpuTimer timer;
  while (timer.Seconds() < target_cpu_seconds) {
    for (int i = 0; i < 1000; ++i) acc = acc + std::sin(i);
  }
  return acc;
}

TEST(ClusterTest, RejectsBadConfigs) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  Cluster cluster(cfg);
  Cluster::Task bad_worker{5, [] { return Status::OK(); }};
  EXPECT_FALSE(cluster.RunStage({bad_worker}).ok());
  Cluster::Task no_fn;
  no_fn.worker = 0;
  EXPECT_FALSE(cluster.RunStage({no_fn}).ok());
}

TEST(ClusterTest, RunsTasksAndChargesWorkers) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  Cluster cluster(cfg);
  std::atomic<int> ran{0};
  std::vector<Cluster::Task> tasks;
  tasks.push_back({0, [&] { ran++; SpinFor(0.01); return Status::OK(); }});
  tasks.push_back({1, [&] { ran++; SpinFor(0.02); return Status::OK(); }});
  ASSERT_TRUE(cluster.RunStage(std::move(tasks)).ok());
  EXPECT_EQ(ran.load(), 2);
  EXPECT_GT(cluster.worker_stats()[0].compute_seconds, 0.005);
  EXPECT_GT(cluster.worker_stats()[1].compute_seconds,
            cluster.worker_stats()[0].compute_seconds);
}

TEST(ClusterTest, ChargeCurrentTaskInflatesTaskSeconds) {
  // Task bodies that offload DP work to helper threads report the helpers'
  // CPU via ChargeCurrentTask; it must be folded into the task's virtual
  // time on both execution paths (inline and pooled).
  for (size_t exec_threads : {size_t(0), size_t(2)}) {
    ClusterConfig cfg;
    cfg.num_workers = 2;
    cfg.execution_threads = exec_threads;
    Cluster cluster(cfg);
    std::vector<Cluster::Task> tasks;
    tasks.push_back({0, [] {
      Cluster::ChargeCurrentTask(0.5);
      return Status::OK();
    }});
    tasks.push_back({1, [] { return Status::OK(); }});
    ASSERT_TRUE(cluster.RunStage(std::move(tasks)).ok());
    EXPECT_GE(cluster.worker_stats()[0].compute_seconds, 0.5);
    EXPECT_LT(cluster.worker_stats()[1].compute_seconds, 0.5);
  }
  // Outside any task the charge has no ledger to land in: must be a no-op.
  Cluster::ChargeCurrentTask(1.0);
}

TEST(ClusterTest, MakespanIsDriverPlusSlowestWorker) {
  ClusterConfig cfg;
  cfg.num_workers = 3;
  Cluster cluster(cfg);
  std::vector<Cluster::Task> tasks;
  tasks.push_back({0, [] { SpinFor(0.01); return Status::OK(); }});
  tasks.push_back({2, [] { SpinFor(0.03); return Status::OK(); }});
  ASSERT_TRUE(cluster.RunStage(std::move(tasks)).ok());
  cluster.RecordDriverCompute(0.5);
  const double slowest = cluster.worker_stats()[2].TotalSeconds();
  EXPECT_NEAR(cluster.MakespanSeconds(), 0.5 + slowest, 1e-9);
}

TEST(ClusterTest, TransfersChargeSenderOnly) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.bandwidth_bytes_per_sec = 1000.0;
  Cluster cluster(cfg);
  cluster.RecordTransfer(0, 1, 500);
  EXPECT_EQ(cluster.worker_stats()[0].bytes_sent, 500u);
  EXPECT_NEAR(cluster.worker_stats()[0].network_seconds, 0.5, 1e-12);
  EXPECT_EQ(cluster.worker_stats()[1].bytes_sent, 0u);
  EXPECT_EQ(cluster.total_bytes_sent(), 500u);
}

TEST(ClusterTest, SameWorkerTransferIsFree) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  Cluster cluster(cfg);
  cluster.RecordTransfer(1, 1, 1 << 20);
  EXPECT_EQ(cluster.total_bytes_sent(), 0u);
  EXPECT_DOUBLE_EQ(cluster.MakespanSeconds(), 0.0);
}

TEST(ClusterTest, LoadRatioReflectsImbalance) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.bandwidth_bytes_per_sec = 1.0;  // 1 byte/sec for easy math
  Cluster cluster(cfg);
  EXPECT_DOUBLE_EQ(cluster.LoadRatio(), 1.0);  // all idle
  cluster.RecordTransfer(0, 1, 9);
  cluster.RecordTransfer(1, 0, 3);
  EXPECT_NEAR(cluster.LoadRatio(), 3.0, 1e-9);
}

TEST(ClusterTest, ResetStatsClearsEverything) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  Cluster cluster(cfg);
  cluster.RecordTransfer(0, 1, 100);
  cluster.RecordDriverCompute(1.0);
  cluster.ResetStats();
  EXPECT_DOUBLE_EQ(cluster.MakespanSeconds(), 0.0);
  EXPECT_EQ(cluster.total_bytes_sent(), 0u);
}

TEST(ClusterTest, DriverTransferChargesWorkerAndDriver) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.bandwidth_bytes_per_sec = 100.0;
  Cluster cluster(cfg);
  cluster.RecordDriverTransfer(1, 50);  // 0.5s each way
  EXPECT_NEAR(cluster.worker_stats()[1].network_seconds, 0.5, 1e-12);
  EXPECT_NEAR(cluster.driver_seconds(), 0.5, 1e-12);
  EXPECT_NEAR(cluster.MakespanSeconds(), 1.0, 1e-12);
}

TEST(ClusterTest, SnapshotDeltasIsolateOperations) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.bandwidth_bytes_per_sec = 1.0;
  Cluster cluster(cfg);
  cluster.RecordTransfer(0, 1, 10);  // pre-existing load: 10s on worker 0
  auto snap = cluster.Snapshot();
  cluster.RecordTransfer(1, 0, 4);
  cluster.RecordDriverCompute(1.0);
  EXPECT_NEAR(cluster.MakespanSince(snap), 1.0 + 4.0, 1e-12);
  EXPECT_NEAR(cluster.LoadRatioSince(snap), 1.0, 1e-12);  // one active worker
  cluster.RecordTransfer(0, 1, 8);
  EXPECT_NEAR(cluster.LoadRatioSince(snap), 2.0, 1e-12);  // 8s vs 4s
}

TEST(ClusterTest, WorkerOfRoundRobin) {
  ClusterConfig cfg;
  cfg.num_workers = 4;
  Cluster cluster(cfg);
  EXPECT_EQ(cluster.WorkerOf(0), 0u);
  EXPECT_EQ(cluster.WorkerOf(5), 1u);
  EXPECT_EQ(cluster.WorkerOf(11), 3u);
}

/// Makespan shrinks (weakly) as the same fixed task set spreads over more
/// workers — the shape behind the paper's scale-up plots.
TEST(ClusterPropertyTest, MakespanMonotoneInWorkers) {
  double prev = std::numeric_limits<double>::infinity();
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    ClusterConfig cfg;
    cfg.num_workers = workers;
    Cluster cluster(cfg);
    std::vector<Cluster::Task> tasks;
    for (size_t p = 0; p < 8; ++p) {
      tasks.push_back(
          {cluster.WorkerOf(p), [] { SpinFor(0.004); return Status::OK(); }});
    }
    ASSERT_TRUE(cluster.RunStage(std::move(tasks)).ok());
    const double makespan = cluster.MakespanSeconds();
    // Allow 30% measurement noise; the trend (8x spread) dominates it.
    EXPECT_LT(makespan, prev * 1.3) << "workers=" << workers;
    prev = makespan;
  }
}

TEST(ClusterTest, SnapshotEdgeCasesAllIdle) {
  // A snapshot of an all-idle cluster, with no work afterwards: every delta
  // is zero and the load ratio degenerates to 1.
  ClusterConfig cfg;
  cfg.num_workers = 3;
  Cluster cluster(cfg);
  auto snap = cluster.Snapshot();
  EXPECT_DOUBLE_EQ(cluster.MakespanSince(snap), 0.0);
  EXPECT_DOUBLE_EQ(cluster.LoadRatioSince(snap), 1.0);
  EXPECT_DOUBLE_EQ(cluster.MakespanSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(cluster.LoadRatio(), 1.0);
}

TEST(ClusterTest, SnapshotZeroDeltaAfterLoad) {
  // A snapshot taken after work, with nothing since: zero-delta makespan
  // even though absolute totals are nonzero.
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.bandwidth_bytes_per_sec = 1.0;
  Cluster cluster(cfg);
  cluster.RecordTransfer(0, 1, 7);
  cluster.RecordDriverCompute(2.0);
  auto snap = cluster.Snapshot();
  EXPECT_DOUBLE_EQ(cluster.MakespanSince(snap), 0.0);
  EXPECT_DOUBLE_EQ(cluster.LoadRatioSince(snap), 1.0);
  EXPECT_GT(cluster.MakespanSeconds(), 0.0);
}

TEST(ClusterTest, SnapshotSingleWorkerCluster) {
  // One worker: transfers are all local (free), so only driver and compute
  // time can move the delta; the load ratio is always 1.
  ClusterConfig cfg;
  cfg.num_workers = 1;
  Cluster cluster(cfg);
  auto snap = cluster.Snapshot();
  cluster.RecordTransfer(0, 0, 1 << 20);  // local => free
  EXPECT_DOUBLE_EQ(cluster.MakespanSince(snap), 0.0);
  std::vector<Cluster::Task> tasks;
  tasks.push_back({0, [] { SpinFor(0.005); return Status::OK(); }});
  ASSERT_TRUE(cluster.RunStage(std::move(tasks)).ok());
  EXPECT_GT(cluster.MakespanSince(snap), 0.0);
  EXPECT_DOUBLE_EQ(cluster.LoadRatioSince(snap), 1.0);
  EXPECT_DOUBLE_EQ(cluster.LoadRatio(), 1.0);
}

TEST(ClusterFaultTest, TaskErrorFailsStage) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  Cluster cluster(cfg);
  std::vector<Cluster::Task> tasks;
  tasks.push_back({0, [] { return Status::OK(); }});
  tasks.push_back({1, [] { return Status::Internal("partition corrupt"); }});
  Status s = cluster.RunStage(std::move(tasks));
  EXPECT_EQ(s.code(), Status::Code::kInternal);
}

TEST(ClusterFaultTest, ThrowingTaskSurfacesAsInternal) {
  for (size_t threads : {size_t{0}, size_t{4}}) {
    ClusterConfig cfg;
    cfg.num_workers = 2;
    cfg.execution_threads = threads;
    Cluster cluster(cfg);
    std::vector<Cluster::Task> tasks;
    tasks.push_back({0, []() -> Status { throw std::runtime_error("boom"); }});
    Status s = cluster.RunStage(std::move(tasks));
    EXPECT_EQ(s.code(), Status::Code::kInternal) << "threads=" << threads;
    // The cluster object stays usable after a throwing stage.
    std::vector<Cluster::Task> ok_tasks;
    ok_tasks.push_back({0, [] { return Status::OK(); }});
    EXPECT_TRUE(cluster.RunStage(std::move(ok_tasks)).ok());
  }
}

TEST(ClusterFaultTest, TransientFailuresRetryAndChargeBackoff) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.retry_backoff_seconds = 0.5;
  cfg.retry_backoff_cap_seconds = 1.0;
  Cluster cluster(cfg);
  FaultPlan plan;
  plan.seed = 7;
  plan.transient_failure_prob = 1.0;  // every retryable attempt fails
  cluster.InjectFaults(plan);
  std::vector<Cluster::Task> tasks;
  tasks.push_back({0, [] { SpinFor(0.002); return Status::OK(); }});
  ASSERT_TRUE(cluster.RunStage(std::move(tasks)).ok());
  const FaultStats fs = cluster.fault_stats();
  // max_task_attempts=4: attempts 1..3 fail, attempt 4 completes.
  EXPECT_EQ(fs.retries, 3u);
  EXPECT_EQ(fs.task_attempts, 4u);
  // Backoffs 0.5, 1.0 (capped), 1.0 (capped) = 2.5 virtual seconds.
  EXPECT_NEAR(fs.backoff_seconds, 2.5, 1e-12);
  EXPECT_NEAR(cluster.worker_stats()[0].backoff_seconds, 2.5, 1e-12);
  EXPECT_EQ(cluster.worker_stats()[0].task_retries, 3u);
}

TEST(ClusterFaultTest, FaultScheduleIsDeterministic) {
  auto run = [](uint64_t seed) {
    ClusterConfig cfg;
    cfg.num_workers = 4;
    Cluster cluster(cfg);
    FaultPlan plan;
    plan.seed = seed;
    plan.transient_failure_prob = 0.4;
    cluster.InjectFaults(plan);
    for (int stage = 0; stage < 5; ++stage) {
      std::vector<Cluster::Task> tasks;
      for (size_t t = 0; t < 8; ++t) {
        tasks.push_back({t % 4, [] { return Status::OK(); }});
      }
      EXPECT_TRUE(cluster.RunStage(std::move(tasks)).ok());
    }
    return cluster.fault_stats().retries;
  };
  EXPECT_EQ(run(11), run(11));  // same seed => same schedule
  EXPECT_NE(run(11), run(12));  // different seed => different schedule
}

TEST(ClusterFaultTest, WorkerCrashReassignsAndChargesRecovery) {
  ClusterConfig cfg;
  cfg.num_workers = 3;
  cfg.bandwidth_bytes_per_sec = 100.0;
  Cluster cluster(cfg);
  FaultPlan plan;
  plan.crash_worker = 1;
  plan.crash_at_stage = 0;
  cluster.InjectFaults(plan);

  std::atomic<int> ran{0};
  std::vector<Cluster::Task> tasks;
  for (size_t w = 0; w < 3; ++w) {
    tasks.push_back({w, [&] { ran++; return Status::OK(); }, 500});
  }
  ASSERT_TRUE(cluster.RunStage(std::move(tasks)).ok());
  EXPECT_EQ(ran.load(), 3);  // results unaffected by the crash
  EXPECT_EQ(cluster.num_live_workers(), 2u);
  EXPECT_FALSE(cluster.worker_stats()[1].alive);
  const FaultStats fs = cluster.fault_stats();
  EXPECT_EQ(fs.worker_crashes, 1u);
  EXPECT_EQ(fs.tasks_reassigned, 1u);
  EXPECT_EQ(fs.recovery_bytes, 500u);

  // Later stages never schedule onto the blacklisted worker.
  std::vector<Cluster::Task> more;
  more.push_back({1, [] { return Status::OK(); }, 250});
  ASSERT_TRUE(cluster.RunStage(std::move(more)).ok());
  EXPECT_EQ(cluster.fault_stats().tasks_reassigned, 2u);
  EXPECT_EQ(cluster.fault_stats().recovery_bytes, 750u);
}

TEST(ClusterFaultTest, LastWorkerIsNeverCrashed) {
  ClusterConfig cfg;
  cfg.num_workers = 1;
  Cluster cluster(cfg);
  FaultPlan plan;
  plan.crash_worker = 0;
  plan.crash_at_stage = 0;
  cluster.InjectFaults(plan);
  std::vector<Cluster::Task> tasks;
  tasks.push_back({0, [] { return Status::OK(); }});
  EXPECT_TRUE(cluster.RunStage(std::move(tasks)).ok());
  EXPECT_EQ(cluster.num_live_workers(), 1u);
}

TEST(ClusterFaultTest, StragglersSlowVirtualTimeAndSpeculationRecovers) {
  auto makespan = [](double speculation) {
    ClusterConfig cfg;
    cfg.num_workers = 4;
    cfg.speculation_multiplier = speculation;
    Cluster cluster(cfg);
    FaultPlan plan;
    plan.seed = 3;
    plan.straggler_prob = 0.25;
    plan.straggler_multiplier = 50.0;
    cluster.InjectFaults(plan);
    std::vector<Cluster::Task> tasks;
    for (size_t t = 0; t < 8; ++t) {
      tasks.push_back(
          {t % 4, [] { SpinFor(0.002); return Status::OK(); }, 100});
    }
    EXPECT_TRUE(cluster.RunStage(std::move(tasks)).ok());
    return std::make_pair(cluster.MakespanSeconds(), cluster.fault_stats());
  };
  auto [slow, slow_fs] = makespan(0.0);
  auto [spec, spec_fs] = makespan(2.0);
  EXPECT_EQ(slow_fs.speculative_launches, 0u);
  EXPECT_GT(spec_fs.speculative_launches, 0u);
  EXPECT_GT(spec_fs.speculative_wins, 0u);
  // The 50x straggler dominates the un-speculated makespan; the backup cuts
  // it down to roughly the healthy runtime.
  EXPECT_LT(spec, slow);
}

TEST(ClusterFaultTest, StageDeadlineSurfacesDeadlineExceeded) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  Cluster cluster(cfg);
  FaultPlan plan;
  plan.straggler_prob = 1.0;
  plan.straggler_multiplier = 1e7;  // any real task blows the budget
  cluster.InjectFaults(plan);
  std::vector<Cluster::Task> tasks;
  tasks.push_back({0, [] { SpinFor(0.002); return Status::OK(); }});
  StageOptions opts;
  opts.name = "probe";
  opts.deadline_seconds = 1.0;
  Status s = cluster.RunStage(std::move(tasks), opts);
  EXPECT_EQ(s.code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(cluster.fault_stats().deadline_misses, 1u);

  // Without the deadline the same stage merely runs long.
  std::vector<Cluster::Task> tasks2;
  tasks2.push_back({0, [] { SpinFor(0.002); return Status::OK(); }});
  EXPECT_TRUE(cluster.RunStage(std::move(tasks2)).ok());
}

TEST(ClusterDeadlineTest, KeptVectorIsDeterministicPrefixUnderDeadline) {
  // Pin the deadline output state: tasks whose virtual charge fits inside
  // StageOptions::deadline_seconds keep their outputs, later ones on the
  // same worker are dropped — deterministically, via fixed ChargeCurrentTask
  // charges rather than measured CPU.
  ClusterConfig cfg;
  cfg.num_workers = 1;  // one worker => charges accumulate in task order
  Cluster cluster(cfg);
  std::vector<Cluster::Task> tasks;
  for (const double charge : {0.4, 0.4, 10.0, 0.4}) {
    tasks.push_back({0, [charge] {
      Cluster::ChargeCurrentTask(charge);
      return Status::OK();
    }});
  }
  StageOptions opts;
  opts.name = "probe";
  opts.deadline_seconds = 1.0;
  std::vector<uint8_t> kept;
  Status s = cluster.RunStage(std::move(tasks), opts, &kept);
  EXPECT_EQ(s.code(), Status::Code::kDeadlineExceeded);
  ASSERT_EQ(kept.size(), 4u);
  // 0.4 and 0.8 fit; the 10-second task blows the budget; everything after
  // it on the worker is already past the deadline too.
  EXPECT_EQ(kept[0], 1);
  EXPECT_EQ(kept[1], 1);
  EXPECT_EQ(kept[2], 0);
  EXPECT_EQ(kept[3], 0);
  EXPECT_EQ(cluster.fault_stats().deadline_misses, 1u);

  // Without a deadline every executed task is kept.
  std::vector<Cluster::Task> tasks2;
  tasks2.push_back({0, [] { return Status::OK(); }});
  std::vector<uint8_t> kept2;
  ASSERT_TRUE(cluster.RunStage(std::move(tasks2), StageOptions{}, &kept2).ok());
  ASSERT_EQ(kept2.size(), 1u);
  EXPECT_EQ(kept2[0], 1);
}

TEST(ClusterCancelTest, StoppedContextSkipsRemainingTasks) {
  // A context that stops mid-stage: the task that cancels runs, later task
  // bodies are skipped, kept marks exactly the completed prefix, and the
  // stage surfaces the context's status.
  ClusterConfig cfg;
  cfg.num_workers = 1;
  Cluster cluster(cfg);
  QueryContext ctx;
  int ran = 0;
  std::vector<Cluster::Task> tasks;
  tasks.push_back({0, [&] {
    ++ran;
    return Status::OK();
  }});
  tasks.push_back({0, [&] {
    ++ran;
    ctx.Cancel();
    return Status::OK();
  }});
  tasks.push_back({0, [&] {
    ++ran;
    return Status::OK();
  }});
  StageOptions opts;
  opts.name = "search";
  opts.ctx = &ctx;
  std::vector<uint8_t> kept;
  Status s = cluster.RunStage(std::move(tasks), opts, &kept);
  EXPECT_EQ(s.code(), Status::Code::kCancelled);
  EXPECT_EQ(ran, 2);  // third body never executed
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0], 1);
  EXPECT_EQ(kept[1], 1);  // ran to completion before the skip took effect
  EXPECT_EQ(kept[2], 0);
}

TEST(ClusterCancelTest, StoppedContextHaltsTransientRetries) {
  // Retry accounting stops once the query's context has stopped: no further
  // backoff or wasted-attempt charges accumulate for a dead query.
  ClusterConfig cfg;
  cfg.num_workers = 2;
  FaultPlan plan;
  plan.transient_failure_prob = 1.0;  // every permitted attempt fails
  std::vector<Cluster::Task> mk;

  Cluster with_cancel(cfg);
  with_cancel.InjectFaults(plan);
  QueryContext ctx;
  ctx.Cancel();
  std::vector<Cluster::Task> tasks;
  tasks.push_back({0, [] { return Status::OK(); }});
  StageOptions opts;
  opts.ctx = &ctx;
  (void)with_cancel.RunStage(std::move(tasks), opts);
  // The task was skipped outright (ctx stopped before the stage), so no
  // attempts and no backoff were charged at all.
  EXPECT_EQ(with_cancel.fault_stats().retries, 0u);
  EXPECT_EQ(with_cancel.fault_stats().backoff_seconds, 0.0);

  Cluster no_cancel(cfg);
  no_cancel.InjectFaults(plan);
  std::vector<Cluster::Task> tasks2;
  tasks2.push_back({0, [] { return Status::OK(); }});
  ASSERT_TRUE(no_cancel.RunStage(std::move(tasks2)).ok());
  EXPECT_GT(no_cancel.fault_stats().retries, 0u);
  EXPECT_GT(no_cancel.fault_stats().backoff_seconds, 0.0);
}

TEST(ClusterTest, MultiThreadedExecutionAccountsSameTotals) {
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.execution_threads = 4;
  Cluster cluster(cfg);
  std::vector<Cluster::Task> tasks;
  std::atomic<int> ran{0};
  for (size_t p = 0; p < 16; ++p) {
    tasks.push_back({p % 4, [&] { ran++; return Status::OK(); }});
  }
  ASSERT_TRUE(cluster.RunStage(std::move(tasks)).ok());
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace dita
