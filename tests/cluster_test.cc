#include "cluster/cluster.h"

#include <atomic>
#include <cmath>

#include <gtest/gtest.h>

#include "util/timer.h"

namespace dita {
namespace {

double SpinFor(double target_cpu_seconds) {
  // Burn CPU deterministically; returns a value to defeat optimization.
  volatile double acc = 0.0;
  CpuTimer timer;
  while (timer.Seconds() < target_cpu_seconds) {
    for (int i = 0; i < 1000; ++i) acc = acc + std::sin(i);
  }
  return acc;
}

TEST(ClusterTest, RejectsBadConfigs) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  Cluster cluster(cfg);
  Cluster::Task bad_worker{5, [] {}};
  EXPECT_FALSE(cluster.RunStage({bad_worker}).ok());
  Cluster::Task no_fn;
  no_fn.worker = 0;
  EXPECT_FALSE(cluster.RunStage({no_fn}).ok());
}

TEST(ClusterTest, RunsTasksAndChargesWorkers) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  Cluster cluster(cfg);
  std::atomic<int> ran{0};
  std::vector<Cluster::Task> tasks;
  tasks.push_back({0, [&] { ran++; SpinFor(0.01); }});
  tasks.push_back({1, [&] { ran++; SpinFor(0.02); }});
  ASSERT_TRUE(cluster.RunStage(std::move(tasks)).ok());
  EXPECT_EQ(ran.load(), 2);
  EXPECT_GT(cluster.worker_stats()[0].compute_seconds, 0.005);
  EXPECT_GT(cluster.worker_stats()[1].compute_seconds,
            cluster.worker_stats()[0].compute_seconds);
}

TEST(ClusterTest, MakespanIsDriverPlusSlowestWorker) {
  ClusterConfig cfg;
  cfg.num_workers = 3;
  Cluster cluster(cfg);
  std::vector<Cluster::Task> tasks;
  tasks.push_back({0, [] { SpinFor(0.01); }});
  tasks.push_back({2, [] { SpinFor(0.03); }});
  ASSERT_TRUE(cluster.RunStage(std::move(tasks)).ok());
  cluster.RecordDriverCompute(0.5);
  const double slowest = cluster.worker_stats()[2].TotalSeconds();
  EXPECT_NEAR(cluster.MakespanSeconds(), 0.5 + slowest, 1e-9);
}

TEST(ClusterTest, TransfersChargeSenderOnly) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.bandwidth_bytes_per_sec = 1000.0;
  Cluster cluster(cfg);
  cluster.RecordTransfer(0, 1, 500);
  EXPECT_EQ(cluster.worker_stats()[0].bytes_sent, 500u);
  EXPECT_NEAR(cluster.worker_stats()[0].network_seconds, 0.5, 1e-12);
  EXPECT_EQ(cluster.worker_stats()[1].bytes_sent, 0u);
  EXPECT_EQ(cluster.total_bytes_sent(), 500u);
}

TEST(ClusterTest, SameWorkerTransferIsFree) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  Cluster cluster(cfg);
  cluster.RecordTransfer(1, 1, 1 << 20);
  EXPECT_EQ(cluster.total_bytes_sent(), 0u);
  EXPECT_DOUBLE_EQ(cluster.MakespanSeconds(), 0.0);
}

TEST(ClusterTest, LoadRatioReflectsImbalance) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.bandwidth_bytes_per_sec = 1.0;  // 1 byte/sec for easy math
  Cluster cluster(cfg);
  EXPECT_DOUBLE_EQ(cluster.LoadRatio(), 1.0);  // all idle
  cluster.RecordTransfer(0, 1, 9);
  cluster.RecordTransfer(1, 0, 3);
  EXPECT_NEAR(cluster.LoadRatio(), 3.0, 1e-9);
}

TEST(ClusterTest, ResetStatsClearsEverything) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  Cluster cluster(cfg);
  cluster.RecordTransfer(0, 1, 100);
  cluster.RecordDriverCompute(1.0);
  cluster.ResetStats();
  EXPECT_DOUBLE_EQ(cluster.MakespanSeconds(), 0.0);
  EXPECT_EQ(cluster.total_bytes_sent(), 0u);
}

TEST(ClusterTest, DriverTransferChargesWorkerAndDriver) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.bandwidth_bytes_per_sec = 100.0;
  Cluster cluster(cfg);
  cluster.RecordDriverTransfer(1, 50);  // 0.5s each way
  EXPECT_NEAR(cluster.worker_stats()[1].network_seconds, 0.5, 1e-12);
  EXPECT_NEAR(cluster.driver_seconds(), 0.5, 1e-12);
  EXPECT_NEAR(cluster.MakespanSeconds(), 1.0, 1e-12);
}

TEST(ClusterTest, SnapshotDeltasIsolateOperations) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.bandwidth_bytes_per_sec = 1.0;
  Cluster cluster(cfg);
  cluster.RecordTransfer(0, 1, 10);  // pre-existing load: 10s on worker 0
  auto snap = cluster.Snapshot();
  cluster.RecordTransfer(1, 0, 4);
  cluster.RecordDriverCompute(1.0);
  EXPECT_NEAR(cluster.MakespanSince(snap), 1.0 + 4.0, 1e-12);
  EXPECT_NEAR(cluster.LoadRatioSince(snap), 1.0, 1e-12);  // one active worker
  cluster.RecordTransfer(0, 1, 8);
  EXPECT_NEAR(cluster.LoadRatioSince(snap), 2.0, 1e-12);  // 8s vs 4s
}

TEST(ClusterTest, WorkerOfRoundRobin) {
  ClusterConfig cfg;
  cfg.num_workers = 4;
  Cluster cluster(cfg);
  EXPECT_EQ(cluster.WorkerOf(0), 0u);
  EXPECT_EQ(cluster.WorkerOf(5), 1u);
  EXPECT_EQ(cluster.WorkerOf(11), 3u);
}

/// Makespan shrinks (weakly) as the same fixed task set spreads over more
/// workers — the shape behind the paper's scale-up plots.
TEST(ClusterPropertyTest, MakespanMonotoneInWorkers) {
  double prev = std::numeric_limits<double>::infinity();
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    ClusterConfig cfg;
    cfg.num_workers = workers;
    Cluster cluster(cfg);
    std::vector<Cluster::Task> tasks;
    for (size_t p = 0; p < 8; ++p) {
      tasks.push_back({cluster.WorkerOf(p), [] { SpinFor(0.004); }});
    }
    ASSERT_TRUE(cluster.RunStage(std::move(tasks)).ok());
    const double makespan = cluster.MakespanSeconds();
    // Allow 30% measurement noise; the trend (8x spread) dominates it.
    EXPECT_LT(makespan, prev * 1.3) << "workers=" << workers;
    prev = makespan;
  }
}

TEST(ClusterTest, MultiThreadedExecutionAccountsSameTotals) {
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.execution_threads = 4;
  Cluster cluster(cfg);
  std::vector<Cluster::Task> tasks;
  std::atomic<int> ran{0};
  for (size_t p = 0; p < 16; ++p) {
    tasks.push_back({p % 4, [&] { ran++; }});
  }
  ASSERT_TRUE(cluster.RunStage(std::move(tasks)).ok());
  EXPECT_EQ(ran.load(), 16);
}

}  // namespace
}  // namespace dita
