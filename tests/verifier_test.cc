#include "core/verifier.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/generator.h"

namespace dita {
namespace {

std::unique_ptr<Verifier> MakeVerifier(DistanceType type, bool mbr = true,
                                       bool cell = true) {
  DitaConfig config;
  config.verify.enable_mbr = mbr;
  config.verify.enable_cell = cell;
  auto dist = *MakeDistance(type, config.distance_params);
  return std::make_unique<Verifier>(dist, config);
}

Trajectory RandomTrajectory(Rng& rng, size_t max_len = 20) {
  const size_t len = static_cast<size_t>(rng.UniformInt(2, int64_t(max_len)));
  Trajectory t;
  Point pos{rng.Uniform(0, 5), rng.Uniform(0, 5)};
  for (size_t i = 0; i < len; ++i) {
    pos.x += rng.Gaussian(0, 0.3);
    pos.y += rng.Gaussian(0, 0.3);
    t.mutable_points().push_back(pos);
  }
  return t;
}

TEST(VerifierTest, AcceptsIdenticalAtZeroThreshold) {
  auto verifier = MakeVerifier(DistanceType::kDTW);
  Trajectory t(0, {{1, 1}, {2, 2}, {3, 3}});
  auto pre = VerifyPrecomp::For(t, 0.5);
  VerifyStats stats;
  EXPECT_TRUE(verifier->Verify(t, pre, t, pre, 0.0, &stats));
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.dp_computed, 1u);
}

TEST(VerifierTest, MbrFilterPrunesDistantPairs) {
  auto verifier = MakeVerifier(DistanceType::kDTW);
  Trajectory a(0, {{0, 0}, {1, 1}});
  Trajectory b(1, {{100, 100}, {101, 101}});
  auto pa = VerifyPrecomp::For(a, 0.5);
  auto pb = VerifyPrecomp::For(b, 0.5);
  VerifyStats stats;
  EXPECT_FALSE(verifier->Verify(a, pa, b, pb, 1.0, &stats));
  EXPECT_EQ(stats.pruned_by_mbr, 1u);
  EXPECT_EQ(stats.dp_computed, 0u);  // never reached the DP
}

TEST(VerifierTest, CellFilterFiresOnOverlappingButDissimilar) {
  // Same endpoints and same MBR footprint, but the mass travels along the
  // bottom edge vs the left edge: MBR coverage passes, the cell bound
  // prunes (Example 5.7's mechanism).
  auto verifier = MakeVerifier(DistanceType::kDTW);
  Trajectory a(0, {{0, 0}, {2, 0}, {4, 0}, {6, 0}, {8, 0}, {10, 0}, {10, 10}});
  Trajectory b(1, {{0, 0}, {0, 2}, {0, 4}, {0, 6}, {0, 8}, {0, 10}, {10, 10}});
  auto pa = VerifyPrecomp::For(a, 0.2);
  auto pb = VerifyPrecomp::For(b, 0.2);
  VerifyStats stats;
  EXPECT_FALSE(verifier->Verify(a, pa, b, pb, 3.0, &stats));
  EXPECT_EQ(stats.pruned_by_mbr, 0u);
  EXPECT_GE(stats.pruned_by_cell, 1u);
}

/// Soundness sweep: with and without the optional filters, Verify agrees
/// with the exact distance for every function on random pairs.
class VerifierProperty
    : public ::testing::TestWithParam<std::tuple<DistanceType, bool, bool>> {};

TEST_P(VerifierProperty, NeverWrong) {
  const auto [type, mbr, cell] = GetParam();
  auto verifier = MakeVerifier(type, mbr, cell);
  DistanceParams params;
  auto dist = *MakeDistance(type, params);
  Rng rng(31 + static_cast<uint64_t>(type));
  for (int iter = 0; iter < 120; ++iter) {
    Trajectory a = RandomTrajectory(rng);
    Trajectory b = RandomTrajectory(rng);
    auto pa = VerifyPrecomp::For(a, 0.4);
    auto pb = VerifyPrecomp::For(b, 0.4);
    const double d = dist->Compute(a, b);
    for (double factor : {0.5, 2.0}) {
      const double tau = d * factor;
      EXPECT_EQ(verifier->Verify(a, pa, b, pb, tau, nullptr), d <= tau)
          << dist->name() << " mbr=" << mbr << " cell=" << cell;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VerifierProperty,
    ::testing::Combine(::testing::Values(DistanceType::kDTW,
                                         DistanceType::kFrechet,
                                         DistanceType::kEDR,
                                         DistanceType::kLCSS,
                                         DistanceType::kERP),
                       ::testing::Bool(), ::testing::Bool()),
    [](const auto& info) {
      return std::string(DistanceTypeName(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_mbr" : "_nombr") +
             (std::get<2>(info.param) ? "_cell" : "_nocell");
    });

/// Shared fixture data for the batched-verification tests: one query versus
/// a population of random candidates, with a tau that accepts some and
/// rejects others.
struct BatchFixture {
  std::vector<Trajectory> trajectories;
  std::vector<VerifyPrecomp> precomp;
  std::vector<uint32_t> candidates;
  Trajectory query;
  VerifyPrecomp query_precomp;
  double tau = 0.0;

  static BatchFixture Make(size_t count, uint64_t seed) {
    Rng rng(seed);
    BatchFixture f;
    for (size_t i = 0; i < count; ++i) {
      f.trajectories.push_back(RandomTrajectory(rng));
      f.trajectories.back().set_id(TrajectoryId(i));
      f.precomp.push_back(VerifyPrecomp::For(f.trajectories.back(), 0.4));
      f.candidates.push_back(uint32_t(i));
    }
    f.query = RandomTrajectory(rng);
    f.query_precomp = VerifyPrecomp::For(f.query, 0.4);
    f.tau = 2.5;  // accepts a nontrivial fraction of the random walks
    return f;
  }
};

TEST(VerifyBatchTest, MatchesPairwiseVerify) {
  for (DistanceType type :
       {DistanceType::kDTW, DistanceType::kFrechet, DistanceType::kEDR,
        DistanceType::kLCSS, DistanceType::kERP}) {
    auto verifier = MakeVerifier(type);
    BatchFixture f = BatchFixture::Make(60, 7 + uint64_t(type));

    VerifyStats pair_stats;
    std::vector<uint32_t> expected;
    for (uint32_t pos : f.candidates) {
      if (verifier->Verify(f.trajectories[pos], f.precomp[pos], f.query,
                           f.query_precomp, f.tau, &pair_stats)) {
        expected.push_back(pos);
      }
    }

    VerifyStats batch_stats;
    std::vector<uint32_t> accepted;
    const Verifier::Batch batch{&f.precomp, &f.candidates, &f.query_precomp,
                                f.tau};
    const Verifier::BatchResult r = verifier->VerifyBatch(
        batch, /*pool=*/nullptr, /*min_parallel=*/0, &accepted, &batch_stats);

    EXPECT_EQ(accepted, expected) << DistanceTypeName(type);
    EXPECT_EQ(r.accepted, expected.size());
    EXPECT_EQ(r.pool_chunks, 0u);  // serial without a pool
    EXPECT_EQ(batch_stats.pairs, pair_stats.pairs);
    EXPECT_EQ(batch_stats.pruned_by_mbr, pair_stats.pruned_by_mbr);
    EXPECT_EQ(batch_stats.pruned_by_cell, pair_stats.pruned_by_cell);
    EXPECT_EQ(batch_stats.dp_computed, pair_stats.dp_computed);
    EXPECT_EQ(batch_stats.accepted, pair_stats.accepted);
  }
}

TEST(VerifyBatchTest, ParallelAgreesWithSerialAndChargesCpu) {
  auto verifier = MakeVerifier(DistanceType::kDTW);
  BatchFixture f = BatchFixture::Make(120, 41);
  f.tau = 50.0;  // generous: every candidate survives the filters, so the
                 // batch is guaranteed to take the pool path

  std::vector<uint32_t> serial;
  const Verifier::Batch batch{&f.precomp, &f.candidates, &f.query_precomp,
                              f.tau};
  verifier->VerifyBatch(batch, nullptr, 0, &serial, nullptr);
  ASSERT_FALSE(serial.empty());

  ThreadPool pool(3);
  std::vector<uint32_t> parallel;
  const Verifier::BatchResult r =
      verifier->VerifyBatch(batch, &pool, /*min_parallel=*/1, &parallel,
                            nullptr);
  EXPECT_EQ(parallel, serial);  // deterministic order despite the fan-out
  EXPECT_GT(r.pool_chunks, 0u);
  EXPECT_GE(r.offloaded_seconds, 0.0);
}

TEST(VerifyBatchTest, SmallBatchesStaySerial) {
  auto verifier = MakeVerifier(DistanceType::kDTW);
  BatchFixture f = BatchFixture::Make(8, 5);
  ThreadPool pool(3);
  std::vector<uint32_t> accepted;
  const Verifier::Batch batch{&f.precomp, &f.candidates, &f.query_precomp,
                              f.tau};
  // min_parallel above the candidate count: the pool must not be used.
  const Verifier::BatchResult r =
      verifier->VerifyBatch(batch, &pool, /*min_parallel=*/64, &accepted,
                            nullptr);
  EXPECT_EQ(r.pool_chunks, 0u);
  EXPECT_EQ(r.offloaded_seconds, 0.0);
}

TEST(VerifyBatchTest, AppendsToExistingAcceptedList) {
  auto verifier = MakeVerifier(DistanceType::kDTW);
  BatchFixture f = BatchFixture::Make(30, 13);
  std::vector<uint32_t> accepted = {9999};  // pre-existing entry survives
  const Verifier::Batch batch{&f.precomp, &f.candidates, &f.query_precomp,
                              f.tau};
  const Verifier::BatchResult r =
      verifier->VerifyBatch(batch, nullptr, 0, &accepted, nullptr);
  ASSERT_GE(accepted.size(), 1u);
  EXPECT_EQ(accepted[0], 9999u);
  EXPECT_EQ(r.accepted, accepted.size() - 1);
}

TEST(VerifierTest, StatsMergeAccumulates) {
  VerifyStats a{.pairs = 10,
                .pruned_by_sketch = 1,
                .pruned_by_mbr = 2,
                .pruned_by_cell = 3,
                .dp_computed = 5,
                .accepted = 4};
  VerifyStats b{.pairs = 1, .pruned_by_sketch = 1, .pruned_by_mbr = 1};
  a.Merge(b);
  EXPECT_EQ(a.pairs, 11u);
  EXPECT_EQ(a.pruned_by_sketch, 2u);
  EXPECT_EQ(a.pruned_by_mbr, 3u);
  EXPECT_EQ(a.pruned_by_cell, 3u);
  EXPECT_EQ(a.dp_computed, 5u);
  EXPECT_EQ(a.accepted, 4u);
}

}  // namespace
}  // namespace dita
