#include "core/verifier.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "workload/generator.h"

namespace dita {
namespace {

std::unique_ptr<Verifier> MakeVerifier(DistanceType type, bool mbr = true,
                                       bool cell = true) {
  DitaConfig config;
  config.enable_mbr_verification = mbr;
  config.enable_cell_verification = cell;
  auto dist = *MakeDistance(type, config.distance_params);
  return std::make_unique<Verifier>(dist, config);
}

Trajectory RandomTrajectory(Rng& rng, size_t max_len = 20) {
  const size_t len = static_cast<size_t>(rng.UniformInt(2, int64_t(max_len)));
  Trajectory t;
  Point pos{rng.Uniform(0, 5), rng.Uniform(0, 5)};
  for (size_t i = 0; i < len; ++i) {
    pos.x += rng.Gaussian(0, 0.3);
    pos.y += rng.Gaussian(0, 0.3);
    t.mutable_points().push_back(pos);
  }
  return t;
}

TEST(VerifierTest, AcceptsIdenticalAtZeroThreshold) {
  auto verifier = MakeVerifier(DistanceType::kDTW);
  Trajectory t(0, {{1, 1}, {2, 2}, {3, 3}});
  auto pre = VerifyPrecomp::For(t, 0.5);
  VerifyStats stats;
  EXPECT_TRUE(verifier->Verify(t, pre, t, pre, 0.0, &stats));
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.dp_computed, 1u);
}

TEST(VerifierTest, MbrFilterPrunesDistantPairs) {
  auto verifier = MakeVerifier(DistanceType::kDTW);
  Trajectory a(0, {{0, 0}, {1, 1}});
  Trajectory b(1, {{100, 100}, {101, 101}});
  auto pa = VerifyPrecomp::For(a, 0.5);
  auto pb = VerifyPrecomp::For(b, 0.5);
  VerifyStats stats;
  EXPECT_FALSE(verifier->Verify(a, pa, b, pb, 1.0, &stats));
  EXPECT_EQ(stats.pruned_by_mbr, 1u);
  EXPECT_EQ(stats.dp_computed, 0u);  // never reached the DP
}

TEST(VerifierTest, CellFilterFiresOnOverlappingButDissimilar) {
  // Same endpoints and same MBR footprint, but the mass travels along the
  // bottom edge vs the left edge: MBR coverage passes, the cell bound
  // prunes (Example 5.7's mechanism).
  auto verifier = MakeVerifier(DistanceType::kDTW);
  Trajectory a(0, {{0, 0}, {2, 0}, {4, 0}, {6, 0}, {8, 0}, {10, 0}, {10, 10}});
  Trajectory b(1, {{0, 0}, {0, 2}, {0, 4}, {0, 6}, {0, 8}, {0, 10}, {10, 10}});
  auto pa = VerifyPrecomp::For(a, 0.2);
  auto pb = VerifyPrecomp::For(b, 0.2);
  VerifyStats stats;
  EXPECT_FALSE(verifier->Verify(a, pa, b, pb, 3.0, &stats));
  EXPECT_EQ(stats.pruned_by_mbr, 0u);
  EXPECT_GE(stats.pruned_by_cell, 1u);
}

/// Soundness sweep: with and without the optional filters, Verify agrees
/// with the exact distance for every function on random pairs.
class VerifierProperty
    : public ::testing::TestWithParam<std::tuple<DistanceType, bool, bool>> {};

TEST_P(VerifierProperty, NeverWrong) {
  const auto [type, mbr, cell] = GetParam();
  auto verifier = MakeVerifier(type, mbr, cell);
  DistanceParams params;
  auto dist = *MakeDistance(type, params);
  Rng rng(31 + static_cast<uint64_t>(type));
  for (int iter = 0; iter < 120; ++iter) {
    Trajectory a = RandomTrajectory(rng);
    Trajectory b = RandomTrajectory(rng);
    auto pa = VerifyPrecomp::For(a, 0.4);
    auto pb = VerifyPrecomp::For(b, 0.4);
    const double d = dist->Compute(a, b);
    for (double factor : {0.5, 2.0}) {
      const double tau = d * factor;
      EXPECT_EQ(verifier->Verify(a, pa, b, pb, tau, nullptr), d <= tau)
          << dist->name() << " mbr=" << mbr << " cell=" << cell;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, VerifierProperty,
    ::testing::Combine(::testing::Values(DistanceType::kDTW,
                                         DistanceType::kFrechet,
                                         DistanceType::kEDR,
                                         DistanceType::kLCSS,
                                         DistanceType::kERP),
                       ::testing::Bool(), ::testing::Bool()),
    [](const auto& info) {
      return std::string(DistanceTypeName(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_mbr" : "_nombr") +
             (std::get<2>(info.param) ? "_cell" : "_nocell");
    });

TEST(VerifierTest, StatsMergeAccumulates) {
  VerifyStats a{10, 2, 3, 5, 4};
  VerifyStats b{1, 1, 0, 0, 0};
  a.Merge(b);
  EXPECT_EQ(a.pairs, 11u);
  EXPECT_EQ(a.pruned_by_mbr, 3u);
  EXPECT_EQ(a.pruned_by_cell, 3u);
  EXPECT_EQ(a.dp_computed, 5u);
  EXPECT_EQ(a.accepted, 4u);
}

}  // namespace
}  // namespace dita
