#include "util/status.h"

#include <gtest/gtest.h>

namespace dita {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad tau");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad tau");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad tau");
}

TEST(StatusTest, AllErrorConstructors) {
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), Status::Code::kIOError);
  EXPECT_EQ(Status::NotSupported("x").code(), Status::Code::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            Status::Code::kDeadlineExceeded);
  EXPECT_EQ(Status::Unavailable("x").code(), Status::Code::kUnavailable);
  EXPECT_EQ(Status::Cancelled("x").code(), Status::Code::kCancelled);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            Status::Code::kResourceExhausted);
}

TEST(StatusTest, EveryCodeRenders) {
  EXPECT_EQ(Status::OK().ToString(), "OK");
  EXPECT_EQ(Status::InvalidArgument("m").ToString(), "InvalidArgument: m");
  EXPECT_EQ(Status::NotFound("m").ToString(), "NotFound: m");
  EXPECT_EQ(Status::IOError("m").ToString(), "IOError: m");
  EXPECT_EQ(Status::NotSupported("m").ToString(), "NotSupported: m");
  EXPECT_EQ(Status::Internal("m").ToString(), "Internal: m");
  EXPECT_EQ(Status::DeadlineExceeded("m").ToString(), "DeadlineExceeded: m");
  EXPECT_EQ(Status::Unavailable("m").ToString(), "Unavailable: m");
  EXPECT_EQ(Status::Cancelled("m").ToString(), "Cancelled: m");
  EXPECT_EQ(Status::ResourceExhausted("m").ToString(), "ResourceExhausted: m");
  // Empty messages render the bare code name.
  EXPECT_EQ(Status::DeadlineExceeded("").ToString(), "DeadlineExceeded");
  EXPECT_EQ(Status::Unavailable("").ToString(), "Unavailable");
  EXPECT_EQ(Status::Cancelled("").ToString(), "Cancelled");
  EXPECT_EQ(Status::ResourceExhausted("").ToString(), "ResourceExhausted");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 5;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Status Fails() { return Status::Internal("boom"); }
Status Propagates() {
  DITA_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  Status s = Propagates();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInternal);
}

TEST(StatusTest, ReturnIfErrorPropagatesNewCodes) {
  auto propagate = [](Status in) {
    return [in]() -> Status {
      DITA_RETURN_IF_ERROR(in);
      return Status::InvalidArgument("not reached");
    }();
  };
  Status deadline = propagate(Status::DeadlineExceeded("stage too slow"));
  EXPECT_EQ(deadline.code(), Status::Code::kDeadlineExceeded);
  EXPECT_EQ(deadline.message(), "stage too slow");
  Status unavailable = propagate(Status::Unavailable("worker 3 lost"));
  EXPECT_EQ(unavailable.code(), Status::Code::kUnavailable);
  EXPECT_EQ(unavailable.message(), "worker 3 lost");
  Status cancelled = propagate(Status::Cancelled("caller gave up"));
  EXPECT_EQ(cancelled.code(), Status::Code::kCancelled);
  EXPECT_EQ(cancelled.message(), "caller gave up");
  Status exhausted = propagate(Status::ResourceExhausted("dp cell budget"));
  EXPECT_EQ(exhausted.code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(exhausted.message(), "dp cell budget");
}

TEST(ResultTest, RoundTripsNewCodes) {
  Result<int> cancelled = Status::Cancelled("stopped");
  ASSERT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.status().code(), Status::Code::kCancelled);
  EXPECT_EQ(cancelled.status().message(), "stopped");
  Result<std::string> exhausted = Status::ResourceExhausted("budget");
  ASSERT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.status().code(), Status::Code::kResourceExhausted);
  EXPECT_EQ(exhausted.status().message(), "budget");
}

}  // namespace
}  // namespace dita
