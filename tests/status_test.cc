#include "util/status.h"

#include <gtest/gtest.h>

namespace dita {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad tau");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad tau");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad tau");
}

TEST(StatusTest, AllErrorConstructors) {
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), Status::Code::kIOError);
  EXPECT_EQ(Status::NotSupported("x").code(), Status::Code::kNotSupported);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 5;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 5);
  EXPECT_EQ(*r, 5);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

Status Fails() { return Status::Internal("boom"); }
Status Propagates() {
  DITA_RETURN_IF_ERROR(Fails());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  Status s = Propagates();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInternal);
}

}  // namespace
}  // namespace dita
