#include "workload/binary_io.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace dita {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(BinaryIoTest, RoundTripWithinPrecision) {
  GeneratorConfig cfg;
  cfg.cardinality = 200;
  cfg.seed = 77;
  Dataset ds = GenerateTaxiDataset(cfg);
  const std::string path = TempPath("roundtrip.dita");
  BinaryIoOptions opts;
  opts.precision = 1e-6;
  ASSERT_TRUE(WriteBinary(ds, path, opts).ok());
  auto loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->size(), ds.size());
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ((*loaded)[i].id(), ds[i].id());
    ASSERT_EQ((*loaded)[i].size(), ds[i].size());
    for (size_t j = 0; j < ds[i].size(); ++j) {
      EXPECT_NEAR((*loaded)[i][j].x, ds[i][j].x, opts.precision);
      EXPECT_NEAR((*loaded)[i][j].y, ds[i][j].y, opts.precision);
    }
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, CompressesRelativeToRaw) {
  GeneratorConfig cfg;
  cfg.cardinality = 500;
  cfg.seed = 78;
  Dataset ds = GenerateTaxiDataset(cfg);
  const std::string path = TempPath("compression.dita");
  ASSERT_TRUE(WriteBinary(ds, path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long file_bytes = std::ftell(f);
  std::fclose(f);
  // Delta varints of ~200m steps at 1e-6 precision fit in 3 bytes/coord:
  // well under half of the 16-byte raw point.
  EXPECT_LT(static_cast<size_t>(file_bytes), ds.ByteSize() / 2);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, NegativeCoordinatesAndIds) {
  Dataset ds;
  ds.Add(Trajectory(-5, {{-100.5, -3.25}, {-100.4999, -3.2501}}));
  ds.Add(Trajectory(7, {{179.999, -89.999}, {-179.999, 89.999}}));
  const std::string path = TempPath("negative.dita");
  ASSERT_TRUE(WriteBinary(ds, path).ok());
  auto loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)[0].id(), -5);
  EXPECT_NEAR((*loaded)[1][1].x, -179.999, 1e-6);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, EmptyDatasetRoundTrips) {
  const std::string path = TempPath("empty.dita");
  ASSERT_TRUE(WriteBinary(Dataset(), path).ok());
  auto loaded = ReadBinary(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsBadInput) {
  Dataset ds;
  BinaryIoOptions opts;
  opts.precision = 0;
  EXPECT_FALSE(WriteBinary(ds, TempPath("x.dita"), opts).ok());
  EXPECT_FALSE(ReadBinary("/nonexistent/nope.dita").ok());

  // Corrupt magic.
  const std::string path = TempPath("corrupt.dita");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("NOPE garbage", f);
  std::fclose(f);
  EXPECT_FALSE(ReadBinary(path).ok());

  // Truncated payload: write a good file and chop it.
  GeneratorConfig cfg;
  cfg.cardinality = 10;
  ASSERT_TRUE(WriteBinary(GenerateTaxiDataset(cfg), path).ok());
  f = std::fopen(path.c_str(), "rb");
  char buf[64];
  const size_t n = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  f = std::fopen(path.c_str(), "wb");
  std::fwrite(buf, 1, n / 2, f);
  std::fclose(f);
  EXPECT_FALSE(ReadBinary(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dita
