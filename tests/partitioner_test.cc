#include "core/partitioner.h"

#include <set>

#include <gtest/gtest.h>

#include "workload/generator.h"

namespace dita {
namespace {

Dataset SmallDataset(size_t n = 500) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.seed = 31;
  return GenerateTaxiDataset(cfg);
}

TEST(PartitionerTest, RejectsBadInput) {
  Dataset ds = SmallDataset(10);
  EXPECT_FALSE(PartitionByFirstLast(ds.trajectories(), 0).ok());
  EXPECT_FALSE(PartitionRandomly(ds.trajectories(), 0).ok());
  std::vector<Trajectory> with_empty = ds.trajectories();
  with_empty.push_back(Trajectory());
  EXPECT_FALSE(PartitionByFirstLast(with_empty, 4).ok());
}

TEST(PartitionerTest, EveryTrajectoryAssignedExactlyOnce) {
  Dataset ds = SmallDataset();
  auto parts = PartitionByFirstLast(ds.trajectories(), 4);
  ASSERT_TRUE(parts.ok());
  std::multiset<TrajectoryId> seen;
  for (const auto& p : *parts) {
    for (const auto& t : p) seen.insert(t.id());
  }
  EXPECT_EQ(seen.size(), ds.size());
  std::set<TrajectoryId> unique(seen.begin(), seen.end());
  EXPECT_EQ(unique.size(), ds.size());
}

TEST(PartitionerTest, ProducesAtMostNgSquaredBalancedPartitions) {
  Dataset ds = SmallDataset(1000);
  for (size_t ng : {2u, 4u, 8u}) {
    auto parts = PartitionByFirstLast(ds.trajectories(), ng);
    ASSERT_TRUE(parts.ok());
    EXPECT_LE(parts->size(), (ng + 1) * (ng + 1));  // STR may round up a slab
    size_t max_size = 0, min_size = ds.size();
    for (const auto& p : *parts) {
      max_size = std::max(max_size, p.size());
      min_size = std::min(min_size, p.size());
    }
    // Roughly equal-size partitions even for skewed (hub-heavy) data.
    EXPECT_LE(max_size, 4 * std::max<size_t>(1, ds.size() / (ng * ng)))
        << "ng=" << ng;
    EXPECT_GE(min_size, 1u);
  }
}

TEST(PartitionerTest, BalancedUnderExtremeSkew) {
  // All trajectories share the same first point: the first-level STR must
  // still split them (by count), and the second level separates last points.
  std::vector<Trajectory> trajs;
  for (int i = 0; i < 256; ++i) {
    trajs.push_back(Trajectory(
        i, {{0, 0}, {double(i % 16), double(i / 16)}}));
  }
  auto parts = PartitionByFirstLast(trajs, 4);
  ASSERT_TRUE(parts.ok());
  size_t max_size = 0;
  for (const auto& p : *parts) max_size = std::max(max_size, p.size());
  EXPECT_LE(max_size, 256u / parts->size() * 4);
}

TEST(PartitionerTest, SimilarTrajectoriesColocate) {
  // Clones of one trajectory (plus noise elsewhere) should land together.
  std::vector<Trajectory> trajs;
  for (int i = 0; i < 8; ++i) {
    trajs.push_back(Trajectory(i, {{0.5, 0.5}, {0.6, 0.6}}));
  }
  for (int i = 8; i < 64; ++i) {
    const double x = double(i) / 64;
    trajs.push_back(Trajectory(i, {{x, 0.0}, {x, 1.0}}));
  }
  auto spread = [](const std::vector<std::vector<Trajectory>>& parts) {
    size_t partitions_with_clones = 0;
    for (const auto& p : parts) {
      for (const auto& t : p) {
        if (t.id() < 8) {
          ++partitions_with_clones;
          break;
        }
      }
    }
    return partitions_with_clones;
  };
  auto spatial = PartitionByFirstLast(trajs, 4);
  ASSERT_TRUE(spatial.ok());
  auto random = PartitionRandomly(trajs, spatial->size(), 3);
  ASSERT_TRUE(random.ok());
  // §4.2.1: "similar trajectories are more likely to be in the same
  // partition" — equal-count STR may split ties across adjacent buckets,
  // but the clones must stay far more concentrated than under random
  // placement, and never fully scatter.
  EXPECT_LT(spread(*spatial), spread(*random));
  EXPECT_LE(spread(*spatial), 4u);
}

TEST(PartitionerTest, RandomPartitioningIsBalancedAndComplete) {
  Dataset ds = SmallDataset(333);
  auto parts = PartitionRandomly(ds.trajectories(), 10, 3);
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 10u);
  size_t total = 0;
  for (const auto& p : *parts) {
    total += p.size();
    EXPECT_GE(p.size(), 33u - 1);
    EXPECT_LE(p.size(), 34u);
  }
  EXPECT_EQ(total, ds.size());
}

}  // namespace
}  // namespace dita
