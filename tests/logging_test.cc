#include "util/logging.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/timer.h"

namespace dita {
namespace {

/// Installs a capturing sink for the test's lifetime and restores the
/// previous sink (and log level) on destruction.
class SinkCapture {
 public:
  SinkCapture() : previous_level_(log_internal::MinLevel()) {
    previous_ = SetLogSink([this](LogLevel level, const char* file, int line,
                                  const std::string& msg) {
      records_.push_back(Record{level, file, line, msg});
    });
  }
  ~SinkCapture() {
    SetLogSink(previous_);
    SetLogLevel(previous_level_);
  }

  struct Record {
    LogLevel level;
    std::string file;
    int line;
    std::string msg;
  };

  const std::vector<Record>& records() const { return records_; }

 private:
  std::vector<Record> records_;
  LogSink previous_;
  LogLevel previous_level_;
};

TEST(LoggingTest, SinkReceivesMessageWithLocation) {
  SinkCapture capture;
  SetLogLevel(LogLevel::kDebug);
  DITA_LOG(kInfo) << "hello " << 42;
  ASSERT_EQ(capture.records().size(), 1u);
  const auto& r = capture.records()[0];
  EXPECT_EQ(r.level, LogLevel::kInfo);
  EXPECT_NE(r.file.find("logging_test.cc"), std::string::npos);
  EXPECT_GT(r.line, 0);
  EXPECT_EQ(r.msg, "hello 42");
}

TEST(LoggingTest, MessagesBelowMinLevelAreDropped) {
  SinkCapture capture;
  SetLogLevel(LogLevel::kWarn);
  DITA_LOG(kDebug) << "dropped";
  DITA_LOG(kInfo) << "dropped too";
  DITA_LOG(kWarn) << "kept";
  DITA_LOG(kError) << "kept too";
  ASSERT_EQ(capture.records().size(), 2u);
  EXPECT_EQ(capture.records()[0].msg, "kept");
  EXPECT_EQ(capture.records()[1].msg, "kept too");
}

TEST(LoggingTest, DroppedMessagesDoNotEvaluateStreamArguments) {
  SinkCapture capture;
  SetLogLevel(LogLevel::kError);
  int evaluations = 0;
  auto expensive = [&evaluations]() {
    ++evaluations;
    return "costly";
  };
  DITA_LOG(kDebug) << expensive();
  EXPECT_EQ(evaluations, 0);
  DITA_LOG(kError) << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST(LoggingTest, SetLogSinkReturnsPreviousAndNullRestoresDefault) {
  int first_count = 0;
  LogSink original = SetLogSink(
      [&first_count](LogLevel, const char*, int, const std::string&) {
        ++first_count;
      });
  SetLogLevel(LogLevel::kDebug);
  DITA_LOG(kInfo) << "one";
  EXPECT_EQ(first_count, 1);

  // Swap in a second sink; the returned previous sink is the first one.
  int second_count = 0;
  LogSink prev = SetLogSink(
      [&second_count](LogLevel, const char*, int, const std::string&) {
        ++second_count;
      });
  ASSERT_TRUE(prev);
  DITA_LOG(kInfo) << "two";
  EXPECT_EQ(first_count, 1);
  EXPECT_EQ(second_count, 1);

  SetLogSink(original);
  SetLogLevel(LogLevel::kInfo);
}

TEST(LoggingTest, ParseLogLevelAcceptsNamesDigitsAndMixedCase) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("INFO", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("Warn", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
  EXPECT_TRUE(ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
  EXPECT_TRUE(ParseLogLevel("0", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
}

TEST(LoggingTest, ParseLogLevelRejectsGarbageWithoutTouchingOutput) {
  LogLevel level = LogLevel::kWarn;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("4", &level));
  EXPECT_FALSE(ParseLogLevel("-1", &level));
  EXPECT_EQ(level, LogLevel::kWarn);
}

TEST(LoggingTest, ConcurrentLoggingThroughCustomSinkIsSerialisable) {
  std::atomic<int> count{0};
  LogSink prev = SetLogSink(
      [&count](LogLevel, const char*, int, const std::string&) {
        count.fetch_add(1, std::memory_order_relaxed);
      });
  SetLogLevel(LogLevel::kDebug);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) DITA_LOG(kInfo) << "msg " << i;
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(count.load(), kThreads * kPerThread);
  SetLogSink(prev);
  SetLogLevel(LogLevel::kInfo);
}

TEST(TimerTest, WallTimerAdvancesAndResets) {
  WallTimer timer;
  // Busy-wait until the clock visibly advances; steady_clock resolution is
  // far below 1ms, so this terminates immediately in practice.
  while (timer.Seconds() <= 0.0) {
  }
  const double before = timer.Seconds();
  EXPECT_GT(before, 0.0);
  timer.Reset();
  EXPECT_GE(timer.Seconds(), 0.0);
}

TEST(TimerTest, WallTimerMillisMatchesSeconds) {
  WallTimer timer;
  const double s = timer.Seconds();
  const double ms = timer.Millis();
  // Millis is a separate clock read, so only the ordering is guaranteed.
  EXPECT_GE(ms, s * 1e3);
}

TEST(TimerTest, CpuTimerMeasuresThreadCpuWork) {
  CpuTimer timer;
  // Burn a little CPU; volatile keeps the loop from being optimised away.
  volatile double sink = 0.0;
  for (int i = 0; i < 2000000; ++i) sink = sink + 1e-9 * i;
  const double used = timer.Seconds();
  EXPECT_GT(used, 0.0);
  timer.Reset();
  EXPECT_LT(timer.Seconds(), used + 1.0);
}

TEST(TimerTest, CpuTimerIgnoresOtherThreads) {
  CpuTimer timer;
  std::thread other([] {
    volatile double sink = 0.0;
    for (int i = 0; i < 2000000; ++i) sink = sink + 1e-9 * i;
  });
  other.join();
  // The helper thread's CPU time must not be charged to this thread. Sleep
  // padding is unnecessary: join() costs near-zero CPU here.
  EXPECT_LT(timer.Seconds(), 0.5);
}

}  // namespace
}  // namespace dita
