#include <algorithm>
#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "serving/service.h"
#include "util/query_context.h"
#include "workload/generator.h"

namespace dita {
namespace {

std::shared_ptr<Cluster> MakeCluster(size_t workers = 4) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  return std::make_shared<Cluster>(cfg);
}

Dataset CityDataset(size_t n = 400, uint64_t seed = 51) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.region = MBR(Point{0, 0}, Point{1, 1});
  cfg.step = 0.01;
  cfg.avg_len = 16;
  cfg.min_len = 4;
  cfg.max_len = 50;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

DitaConfig SmallConfig(DistanceType type = DistanceType::kDTW) {
  DitaConfig config;
  config.build.ng = 3;
  config.build.trie.num_pivots = 3;
  config.build.trie.align_fanout = 8;
  config.build.trie.pivot_fanout = 4;
  config.build.trie.leaf_capacity = 4;
  config.distance = type;
  config.distance_params.epsilon = 0.01;
  config.distance_params.delta = 4;
  config.verify.cell_size = 0.02;
  return config;
}

double TauFor(DistanceType type, size_t i) {
  if (type == DistanceType::kEDR || type == DistanceType::kLCSS) {
    return static_cast<double>(1 + i % 3);
  }
  return 0.03 * (1.0 + static_cast<double>(i % 4));
}

QueryRequest SearchReq(const Trajectory& q, double tau) {
  QueryRequest req;
  req.kind = QueryKind::kSearch;
  req.query = q;
  req.tau = tau;
  req.collect_stats = true;
  return req;
}

/// Per-query equality between a batched slot and its standalone oracle:
/// answer ids, candidate/verify accounting, and the whole filter funnel.
void ExpectSameResult(const Result<QueryResult>& got,
                      const Result<QueryResult>& want, size_t i) {
  ASSERT_EQ(got.ok(), want.ok()) << "query " << i;
  if (!want.ok()) {
    EXPECT_EQ(got.status().code(), want.status().code()) << "query " << i;
    return;
  }
  EXPECT_EQ(got->ids, want->ids) << "query " << i;
  EXPECT_EQ(got->neighbors, want->neighbors) << "query " << i;
  const QueryStats& gs = got->search_stats;
  const QueryStats& ws = want->search_stats;
  EXPECT_EQ(gs.partitions_probed, ws.partitions_probed) << "query " << i;
  EXPECT_EQ(gs.candidates, ws.candidates) << "query " << i;
  EXPECT_EQ(gs.results, ws.results) << "query " << i;
  EXPECT_EQ(gs.completeness, ws.completeness) << "query " << i;
  EXPECT_EQ(gs.verify.pairs, ws.verify.pairs) << "query " << i;
  EXPECT_EQ(gs.verify.pruned_by_mbr, ws.verify.pruned_by_mbr) << "query " << i;
  EXPECT_EQ(gs.verify.pruned_by_cell, ws.verify.pruned_by_cell)
      << "query " << i;
  EXPECT_EQ(gs.verify.dp_computed, ws.verify.dp_computed) << "query " << i;
  EXPECT_EQ(gs.verify.dp_cells, ws.verify.dp_cells) << "query " << i;
  EXPECT_EQ(gs.verify.accepted, ws.verify.accepted) << "query " << i;
  EXPECT_EQ(gs.funnel.ToTable(), ws.funnel.ToTable()) << "query " << i;
  EXPECT_EQ(got->serving.delta_scanned, want->serving.delta_scanned)
      << "query " << i;
  EXPECT_EQ(got->serving.delta_matches, want->serving.delta_matches)
      << "query " << i;
  EXPECT_EQ(got->serving.deleted_filtered, want->serving.deleted_filtered)
      << "query " << i;
  EXPECT_EQ(got->serving.delta_funnel.ToTable(),
            want->serving.delta_funnel.ToTable())
      << "query " << i;
}

class BatchExecuteProperty : public ::testing::TestWithParam<DistanceType> {};

/// Engine-level oracle: ExecuteBatch answers every member exactly as
/// Execute would, for every distance function, stats and funnel included.
TEST_P(BatchExecuteProperty, EngineBatchMatchesExecute) {
  auto cluster = MakeCluster();
  DitaEngine engine(cluster, SmallConfig(GetParam()));
  Dataset ds = CityDataset(300);
  ASSERT_TRUE(engine.BuildIndex(ds).ok());

  std::vector<QueryRequest> reqs;
  for (size_t i = 0; i < 16; ++i) {
    reqs.push_back(
        SearchReq(ds[(i * 37) % ds.size()], TauFor(GetParam(), i)));
  }
  std::vector<Result<QueryResult>> batched = engine.ExecuteBatch(reqs);
  ASSERT_EQ(batched.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    ExpectSameResult(batched[i], engine.Execute(reqs[i]), i);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistances, BatchExecuteProperty,
                         ::testing::Values(DistanceType::kDTW,
                                           DistanceType::kFrechet,
                                           DistanceType::kLCSS,
                                           DistanceType::kEDR,
                                           DistanceType::kERP));

/// Mixed batches: non-search and invalid members fall back to the
/// standalone path (same answers, same errors) without disturbing the
/// batched searches around them.
TEST(BatchExecuteTest, MixedBatchFallsBackPerMember) {
  auto cluster = MakeCluster();
  DitaEngine engine(cluster, SmallConfig());
  Dataset ds = CityDataset(300);
  ASSERT_TRUE(engine.BuildIndex(ds).ok());

  std::vector<QueryRequest> reqs;
  reqs.push_back(SearchReq(ds[11], 0.05));
  QueryRequest knn;
  knn.kind = QueryKind::kKnnSearch;
  knn.query = ds[23];
  knn.k = 5;
  reqs.push_back(knn);
  reqs.push_back(SearchReq(ds[37], -1.0));  // invalid: negative threshold
  reqs.push_back(SearchReq(ds[53], 0.04));

  std::vector<Result<QueryResult>> batched = engine.ExecuteBatch(reqs);
  ASSERT_EQ(batched.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    ExpectSameResult(batched[i], engine.Execute(reqs[i]), i);
  }
}

/// A member whose context stops mid-batch degrades alone: it reports its
/// own termination status while every other member's answer stays
/// bit-identical to a standalone run.
TEST(BatchExecuteTest, StoppedMemberDegradesAlone) {
  auto cluster = MakeCluster();
  DitaEngine engine(cluster, SmallConfig());
  Dataset ds = CityDataset(300);
  ASSERT_TRUE(engine.BuildIndex(ds).ok());

  std::vector<QueryRequest> reqs;
  for (size_t i = 0; i < 6; ++i) {
    reqs.push_back(SearchReq(ds[(i * 37) % ds.size()], 0.05));
  }
  QueryContext victim;
  victim.CancelAfterOps(8);
  reqs[2].ctx = &victim;

  std::vector<Result<QueryResult>> batched = engine.ExecuteBatch(reqs);
  ASSERT_EQ(batched.size(), reqs.size());
  EXPECT_TRUE(victim.stopped());
  ASSERT_TRUE(batched[2].ok());
  EXPECT_FALSE(batched[2]->search_stats.termination.ok());
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (i == 2) continue;
    QueryRequest solo = reqs[i];
    ExpectSameResult(batched[i], engine.Execute(solo), i);
  }
}

DitaConfig ServingConfig() {
  DitaConfig config = SmallConfig();
  config.serving.merge_threshold = 0;  // keep the delta; exercise the scan
  config.serving.synchronous_merge = true;
  return config;
}

/// Service-level oracle: ExecuteBatch over a snapshot with live delta
/// inserts and deletes answers every member exactly as sequential Execute
/// calls, including serving accounting.
TEST(BatchExecuteTest, ServiceBatchMatchesExecuteWithDelta) {
  auto cluster = MakeCluster();
  DitaService service(cluster, ServingConfig());
  Dataset ds = CityDataset(240);
  ASSERT_TRUE(service.Start(ds).ok());
  // Mutate: a few inserts land in the delta buffer, a few base deletes.
  Dataset extra = CityDataset(20, 99);
  for (size_t i = 0; i < extra.size(); ++i) {
    Trajectory t(50000 + static_cast<TrajectoryId>(i), extra[i].points());
    ASSERT_TRUE(service.Insert(t).ok());
  }
  for (size_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(service.Delete(ds[i * 7].id()).ok());
  }

  std::vector<QueryRequest> reqs;
  for (size_t i = 0; i < 12; ++i) {
    reqs.push_back(SearchReq(ds[(i * 37) % ds.size()], 0.03 * (1 + i % 3)));
  }
  QueryRequest knn;
  knn.kind = QueryKind::kKnnSearch;
  knn.query = ds[5];
  knn.k = 4;
  reqs.push_back(knn);

  std::vector<Result<QueryResult>> batched = service.ExecuteBatch(reqs);
  ASSERT_EQ(batched.size(), reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    ExpectSameResult(batched[i], service.Execute(reqs[i]), i);
  }
}

/// Submit-path coalescing: with max_batch_size > 1 the executor folds
/// queued compatible requests into one batch; answers equal standalone
/// Execute and the coalescing counters advance.
TEST(BatchExecuteTest, SubmitCoalescesQueuedSearches) {
  auto cluster = MakeCluster();
  DitaConfig config = ServingConfig();
  config.serving.scheduler_threads = 1;   // one executor: jobs queue up
  config.serving.max_batch_size = 16;
  config.serving.batch_window_seconds = 0.25;
  DitaService service(cluster, config);
  Dataset ds = CityDataset(240);
  ASSERT_TRUE(service.Start(ds).ok());

  std::vector<QueryRequest> reqs;
  for (size_t i = 0; i < 12; ++i) {
    reqs.push_back(SearchReq(ds[(i * 37) % ds.size()], 0.03 * (1 + i % 3)));
  }
  std::vector<std::future<Result<QueryResult>>> futs;
  futs.reserve(reqs.size());
  for (const QueryRequest& req : reqs) futs.push_back(service.Submit(req));
  for (size_t i = 0; i < reqs.size(); ++i) {
    ExpectSameResult(futs[i].get(), service.Execute(reqs[i]), i);
  }
  EXPECT_GT(service.coalesced_batches(), 0u);
  EXPECT_GT(service.coalesced_queries(), service.coalesced_batches());
}

}  // namespace
}  // namespace dita
