#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "index/trie_index.h"
#include "util/query_context.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace dita {
namespace {

Dataset FilterDataset(size_t n = 600, uint64_t seed = 71) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.region = MBR(Point{0, 0}, Point{1, 1});
  cfg.step = 0.01;
  cfg.avg_len = 16;
  cfg.min_len = 4;
  cfg.max_len = 40;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

TrieIndex::Options SmallOpts() {
  TrieIndex::Options opts;
  opts.num_pivots = 3;
  opts.align_fanout = 8;
  opts.pivot_fanout = 4;
  opts.leaf_capacity = 4;
  return opts;
}

/// One pruning algebra; all members of a batch must share these fields.
struct ModeCase {
  const char* name;
  PruneMode mode;
  double epsilon;
  int lcss_delta;
  bool gap;
};

const Point kGap{0.5, 0.5};

std::vector<ModeCase> AllModes() {
  return {
      {"accumulate", PruneMode::kAccumulate, 0.0, -1, false},
      {"accumulate+erp_gap", PruneMode::kAccumulate, 0.0, -1, true},
      {"max", PruneMode::kMax, 0.0, -1, false},
      {"edit", PruneMode::kEditCount, 0.05, -1, false},
      {"edit+lcss", PruneMode::kEditCount, 0.05, 3, false},
  };
}

TrieIndex::SearchSpec SpecFor(const Trajectory& q, double tau,
                              const ModeCase& mc) {
  TrieIndex::SearchSpec spec;
  spec.query = &q;
  spec.tau = tau;
  spec.mode = mc.mode;
  spec.epsilon = mc.epsilon;
  spec.lcss_delta = mc.lcss_delta;
  spec.erp_gap = mc.gap ? &kGap : nullptr;
  return spec;
}

double TauFor(const ModeCase& mc, size_t i) {
  if (mc.mode == PruneMode::kEditCount) return static_cast<double>(1 + i % 4);
  return 0.01 * (1.0 + static_cast<double>(i % 5));
}

bool StatsEqual(const TrieIndex::ProbeStats& a,
                const TrieIndex::ProbeStats& b) {
  return a.nodes_visited == b.nodes_visited &&
         a.nodes_pruned == b.nodes_pruned &&
         a.pruned_members == b.pruned_members;
}

/// Oracle: for every pruning algebra and batch shape (including a single
/// member and mixed taus), the batched traversal must emit per member
/// exactly the candidate vector and probe counters of a standalone
/// CollectCandidates call.
TEST(BatchFilterTest, BatchMatchesSingleAcrossModesAndSizes) {
  Dataset ds = FilterDataset();
  TrieIndex index;
  ASSERT_TRUE(index.Build(ds.trajectories(), SmallOpts()).ok());
  const size_t kQueries = 40;
  std::vector<Trajectory> queries;
  std::vector<double> taus;
  for (size_t i = 0; i < kQueries; ++i) {
    queries.push_back(ds[(i * 61) % ds.size()]);
  }

  for (const ModeCase& mc : AllModes()) {
    SCOPED_TRACE(mc.name);
    // Standalone answers (the oracle).
    std::vector<std::vector<uint32_t>> single(kQueries);
    std::vector<TrieIndex::ProbeStats> single_stats(kQueries);
    for (size_t i = 0; i < kQueries; ++i) {
      single_stats[i].Reset(index.num_levels());
      index.CollectCandidates(SpecFor(queries[i], TauFor(mc, i), mc),
                              &single[i], &single_stats[i]);
    }

    for (const size_t batch_size : {size_t{1}, size_t{2}, size_t{32},
                                    kQueries}) {
      SCOPED_TRACE(batch_size);
      for (size_t lo = 0; lo < kQueries; lo += batch_size) {
        const size_t hi = std::min(lo + batch_size, kQueries);
        std::vector<std::vector<uint32_t>> got(hi - lo);
        std::vector<TrieIndex::ProbeStats> got_stats(hi - lo);
        std::vector<TrieIndex::BatchQuery> bq(hi - lo);
        for (size_t i = lo; i < hi; ++i) {
          got_stats[i - lo].Reset(index.num_levels());
          bq[i - lo].spec = SpecFor(queries[i], TauFor(mc, i), mc);
          bq[i - lo].out = &got[i - lo];
          bq[i - lo].stats = &got_stats[i - lo];
        }
        index.CollectCandidatesBatch(bq.data(), bq.size());
        for (size_t i = lo; i < hi; ++i) {
          EXPECT_EQ(got[i - lo], single[i]) << "query " << i;
          EXPECT_TRUE(StatsEqual(got_stats[i - lo], single_stats[i]))
              << "query " << i;
        }
      }
    }
  }
}

/// A member stopped mid-traversal (self-cancel or candidate budget) must not
/// perturb any other member: the survivors stay bit-identical to their
/// standalone runs, batch after batch.
TEST(BatchFilterTest, StoppedMemberLeavesOthersBitIdentical) {
  Dataset ds = FilterDataset();
  TrieIndex index;
  ASSERT_TRUE(index.Build(ds.trajectories(), SmallOpts()).ok());
  const ModeCase mc{"accumulate", PruneMode::kAccumulate, 0.0, -1, false};
  const size_t kQueries = 8;
  std::vector<Trajectory> queries;
  for (size_t i = 0; i < kQueries; ++i) {
    queries.push_back(ds[(i * 61) % ds.size()]);
  }
  std::vector<std::vector<uint32_t>> single(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    index.CollectCandidates(SpecFor(queries[i], 0.05, mc), &single[i]);
  }

  // Victim 3 self-cancels after a handful of observed ops; victim 5 runs out
  // of candidate budget. Both stop mid-flight.
  QueryContext cancel_ctx;
  cancel_ctx.CancelAfterOps(4);
  QueryContext budget_ctx;
  ResourceBudget budget;
  budget.max_candidates = 1;
  budget_ctx.set_budget(budget);

  std::vector<std::vector<uint32_t>> got(kQueries);
  std::vector<TrieIndex::BatchQuery> bq(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    bq[i].spec = SpecFor(queries[i], 0.05, mc);
    if (i == 3) bq[i].spec.ctx = &cancel_ctx;
    if (i == 5) bq[i].spec.ctx = &budget_ctx;
    bq[i].out = &got[i];
  }
  index.CollectCandidatesBatch(bq.data(), bq.size());

  EXPECT_TRUE(cancel_ctx.stopped());
  EXPECT_TRUE(budget_ctx.stopped());
  for (size_t i = 0; i < kQueries; ++i) {
    if (i == 3 || i == 5) continue;  // stopped members' output is discarded
    EXPECT_EQ(got[i], single[i]) << "query " << i;
  }
}

/// Explicit scratch: results match the thread-local default, the arena is
/// measurable and reusable, and Release() frees it.
TEST(BatchFilterTest, ExplicitScratchMatchesThreadLocalAndReleases) {
  Dataset ds = FilterDataset(300, 77);
  TrieIndex index;
  ASSERT_TRUE(index.Build(ds.trajectories(), SmallOpts()).ok());
  const ModeCase mc{"accumulate", PruneMode::kAccumulate, 0.0, -1, false};
  const Trajectory q = ds[17];

  std::vector<uint32_t> with_default;
  index.CollectCandidates(SpecFor(q, 0.05, mc), &with_default);

  TrieIndex::Scratch scratch;
  EXPECT_EQ(scratch.ByteSize(), 0u);
  std::vector<uint32_t> with_explicit;
  index.CollectCandidates(SpecFor(q, 0.05, mc), &with_explicit, nullptr,
                          &scratch);
  EXPECT_EQ(with_explicit, with_default);
  EXPECT_GT(scratch.ByteSize(), 0u);

  // The same scratch serves the batched traversal, and reuse is idempotent.
  std::vector<std::vector<uint32_t>> got(3);
  std::vector<TrieIndex::BatchQuery> bq(3);
  for (size_t i = 0; i < 3; ++i) {
    bq[i].spec = SpecFor(q, 0.05, mc);
    bq[i].out = &got[i];
  }
  index.CollectCandidatesBatch(bq.data(), bq.size(), &scratch);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(got[i], with_default);

  scratch.Release();
  EXPECT_EQ(scratch.ByteSize(), 0u);
  std::vector<uint32_t> after_release;
  index.CollectCandidates(SpecFor(q, 0.05, mc), &after_release, nullptr,
                          &scratch);
  EXPECT_EQ(after_release, with_default);
}

/// Small builds must not fan out to the pool (the dispatch costs more than
/// the loop it splits); large builds must — and both produce the serial
/// trie, structure and all.
TEST(BatchFilterTest, ParallelBuildThresholdPinsSmallBuildsSerial) {
  ThreadPool pool(2);

  Dataset small = FilterDataset(512, 81);
  TrieIndex serial_small;
  ASSERT_TRUE(serial_small.Build(small.trajectories(), SmallOpts()).ok());
  TrieIndex pooled_small;
  double offloaded = 0.0;
  ASSERT_TRUE(
      pooled_small.Build(small.trajectories(), SmallOpts(), &pool, &offloaded)
          .ok());
  EXPECT_EQ(offloaded, 0.0) << "small build must stay on the calling thread";
  EXPECT_EQ(pooled_small.StructureDigest(), serial_small.StructureDigest());

  Dataset big = FilterDataset(TrieIndex::kMinBuildItemsPerThread * 2, 83);
  TrieIndex serial_big;
  ASSERT_TRUE(serial_big.Build(big.trajectories(), SmallOpts()).ok());
  TrieIndex pooled_big;
  offloaded = 0.0;
  ASSERT_TRUE(
      pooled_big.Build(big.trajectories(), SmallOpts(), &pool, &offloaded)
          .ok());
  EXPECT_GT(offloaded, 0.0) << "large build should use the pool";
  EXPECT_EQ(pooled_big.StructureDigest(), serial_big.StructureDigest());
}

}  // namespace
}  // namespace dita
