#include "distance/dtw.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dita {
namespace {

/// The paper's running example (Figure 1 / Table 1).
Trajectory PaperT1() {
  return Trajectory(1, {{1, 1}, {1, 2}, {3, 2}, {4, 4}, {4, 5}, {5, 5}});
}
Trajectory PaperT3() {
  return Trajectory(3, {{1, 1}, {4, 1}, {4, 3}, {4, 5}, {4, 6}, {5, 6}});
}

TEST(DtwTest, PaperTable1WorkedExample) {
  // Table 1: DTW(T1, T3) = w11 + w21 + w32 + w43 + w54 + w55 + w66 = 5.41.
  Dtw dtw;
  const double expected = 0 + 1 + std::sqrt(2.0) + 1 + 0 + 1 + 1;
  EXPECT_NEAR(dtw.Compute(PaperT1(), PaperT3()), expected, 1e-9);
  EXPECT_NEAR(dtw.Compute(PaperT1(), PaperT3()), 5.41, 0.01);
}

TEST(DtwTest, IdenticalTrajectoriesHaveZeroDistance) {
  Dtw dtw;
  EXPECT_DOUBLE_EQ(dtw.Compute(PaperT1(), PaperT1()), 0.0);
}

TEST(DtwTest, SymmetricForEqualLengths) {
  Dtw dtw;
  EXPECT_DOUBLE_EQ(dtw.Compute(PaperT1(), PaperT3()),
                   dtw.Compute(PaperT3(), PaperT1()));
}

TEST(DtwTest, SinglePointCases) {
  Dtw dtw;
  Trajectory single(0, {{0, 0}});
  Trajectory line(1, {{0, 0}, {3, 4}});
  // n = 1: sum of distances from every t_i to q_1.
  EXPECT_DOUBLE_EQ(dtw.Compute(line, single), 0.0 + 5.0);
  EXPECT_DOUBLE_EQ(dtw.Compute(single, line), 0.0 + 5.0);
  EXPECT_DOUBLE_EQ(dtw.Compute(single, single), 0.0);
}

TEST(DtwTest, WithinThresholdMatchesPaperExample26) {
  // Example 2.6: with Q = T1 and tau = 3, similar set = {T1, T2}.
  Dtw dtw;
  Trajectory t2(2, {{0, 1}, {0, 2}, {4, 2}, {4, 4}, {4, 5}, {5, 5}});
  EXPECT_TRUE(dtw.WithinThreshold(PaperT1(), PaperT1(), 3.0));
  EXPECT_TRUE(dtw.WithinThreshold(t2, PaperT1(), 3.0));
  EXPECT_FALSE(dtw.WithinThreshold(PaperT3(), PaperT1(), 3.0));
}

TEST(DtwTest, AmdLowerBoundOnPaperExample) {
  // Lemma 4.1: AMD <= DTW.
  const double amd = Dtw::AccumulatedMinDistance(PaperT1(), PaperT3());
  Dtw dtw;
  EXPECT_LE(amd, dtw.Compute(PaperT1(), PaperT3()) + 1e-12);
}

Trajectory RandomTrajectory(Rng& rng, size_t min_len = 2, size_t max_len = 24) {
  const size_t len =
      static_cast<size_t>(rng.UniformInt(static_cast<int64_t>(min_len),
                                         static_cast<int64_t>(max_len)));
  Trajectory t;
  Point pos{rng.Uniform(0, 10), rng.Uniform(0, 10)};
  for (size_t i = 0; i < len; ++i) {
    pos.x += rng.Gaussian(0, 0.5);
    pos.y += rng.Gaussian(0, 0.5);
    t.mutable_points().push_back(pos);
  }
  return t;
}

/// Property sweep: the double-direction thresholded DTW agrees exactly with
/// the full dynamic program for thresholds around the true distance.
class DtwThresholdProperty : public ::testing::TestWithParam<double> {};

TEST_P(DtwThresholdProperty, WithinThresholdAgreesWithCompute) {
  const double tau_factor = GetParam();
  Dtw dtw;
  Rng rng(static_cast<uint64_t>(tau_factor * 1000) + 5);
  for (int iter = 0; iter < 150; ++iter) {
    Trajectory a = RandomTrajectory(rng);
    Trajectory b = RandomTrajectory(rng);
    const double d = dtw.Compute(a, b);
    const double tau = d * tau_factor;
    // Skip ties within float reordering noise: the double-direction DP sums
    // the same terms in a different order, so exact equality at tau == d is
    // not required of the implementation.
    if (std::abs(d - tau) <= 1e-9 * (1.0 + d)) continue;
    EXPECT_EQ(dtw.WithinThreshold(a, b, tau), d <= tau)
        << "d=" << d << " tau=" << tau << " a=" << a.DebugString()
        << " b=" << b.DebugString();
  }
}

INSTANTIATE_TEST_SUITE_P(TauSweep, DtwThresholdProperty,
                         ::testing::Values(0.25, 0.5, 0.9, 0.999, 1.0, 1.001,
                                           1.5, 4.0));

/// Property: AMD is a lower bound of DTW on random inputs (Lemma 4.1).
TEST(DtwPropertyTest, AmdIsLowerBound) {
  Dtw dtw;
  Rng rng(99);
  for (int iter = 0; iter < 300; ++iter) {
    Trajectory a = RandomTrajectory(rng);
    Trajectory b = RandomTrajectory(rng);
    EXPECT_LE(Dtw::AccumulatedMinDistance(a, b), dtw.Compute(a, b) + 1e-9);
  }
}

TEST(DtwPropertyTest, TriangleInequalityCanFail) {
  // DTW is famously non-metric; document one concrete violation so nobody
  // plugs DTW into the VP-tree (which requires a metric; see §2.3 / §C).
  Dtw dtw;
  Trajectory a(0, {{0, 0}});
  Trajectory b(1, {{1, 0}, {2, 0}, {3, 0}});
  Trajectory c(2, {{2, 0}});
  const double ab = dtw.Compute(a, b);  // 1 + 2 + 3 = 6
  const double ac = dtw.Compute(a, c);  // 2
  const double cb = dtw.Compute(c, b);  // 1 + 0 + 1 = 2
  EXPECT_DOUBLE_EQ(ab, 6.0);
  EXPECT_DOUBLE_EQ(ac, 2.0);
  EXPECT_DOUBLE_EQ(cb, 2.0);
  EXPECT_GT(ab, ac + cb);  // the violation
}

}  // namespace
}  // namespace dita
