#include "util/string_util.h"

#include <gtest/gtest.h>

namespace dita {
namespace {

TEST(StrFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("x=%d y=%.2f s=%s", 3, 1.5, "hi"), "x=3 y=1.50 s=hi");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(StrSplitTest, SplitsKeepingEmptyFields) {
  EXPECT_EQ(StrSplit("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(StrSplit("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(StrSplit("a,", ','), (std::vector<std::string>{"a", ""}));
}

TEST(StrJoinTest, Joins) {
  EXPECT_EQ(StrJoin({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(StrJoin({}, ","), "");
  EXPECT_EQ(StrJoin({"solo"}, ","), "solo");
}

TEST(StrTrimTest, TrimsWhitespace) {
  EXPECT_EQ(StrTrim("  hi \t\n"), "hi");
  EXPECT_EQ(StrTrim(""), "");
  EXPECT_EQ(StrTrim("   "), "");
  EXPECT_EQ(StrTrim("no-trim"), "no-trim");
}

TEST(StrToUpperTest, UppercasesAscii) {
  EXPECT_EQ(StrToUpper("TrA-Join"), "TRA-JOIN");
}

TEST(HumanBytesTest, PicksUnits) {
  EXPECT_EQ(HumanBytes(512), "512.0 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KB");
  EXPECT_EQ(HumanBytes(3.5 * 1024 * 1024), "3.5 MB");
}

}  // namespace
}  // namespace dita
