// End-to-end fault-tolerance properties of the DITA engine on the simulated
// cluster: query and join answers must be invariant under injected faults
// (Spark lineage semantics — recomputation is deterministic), recovery must
// be visible in the cost model, and deadlines must surface as statuses.

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "workload/generator.h"

namespace dita {
namespace {

Dataset CityDataset(size_t n, uint64_t seed) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.region = MBR(Point{0, 0}, Point{1, 1});
  cfg.step = 0.01;
  cfg.avg_len = 16;
  cfg.min_len = 4;
  cfg.max_len = 50;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

DitaConfig SmallConfig() {
  DitaConfig config;
  config.build.ng = 3;
  config.build.trie.num_pivots = 3;
  config.build.trie.align_fanout = 8;
  config.build.trie.pivot_fanout = 4;
  config.build.trie.leaf_capacity = 4;
  config.distance_params.epsilon = 0.01;
  config.verify.cell_size = 0.02;
  return config;
}

std::shared_ptr<Cluster> MakeCluster(size_t workers = 4,
                                     double bandwidth = 125e6) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  cfg.bandwidth_bytes_per_sec = bandwidth;
  return std::make_shared<Cluster>(cfg);
}

/// A hostile but survivable fault schedule: transient failures, stragglers
/// with speculation enabled, and a permanent crash during the first
/// post-build stage.
FaultPlan HostilePlan(uint64_t seed) {
  FaultPlan plan;
  plan.seed = seed;
  plan.transient_failure_prob = 0.3;
  plan.straggler_prob = 0.2;
  plan.straggler_multiplier = 8.0;
  plan.crash_worker = 1;
  plan.crash_at_stage = 1;  // stage 0 is the index build
  return plan;
}

/// Acceptance (a): top-k search and join outputs are bit-identical with and
/// without injected faults, across multiple fault-schedule seeds.
TEST(FaultToleranceTest, SearchAndJoinInvariantUnderFaults) {
  const Dataset ds = CityDataset(200, 41);
  const double tau = 0.03;
  const size_t k = 5;

  // Fault-free reference.
  auto clean_cluster = MakeCluster();
  DitaEngine clean(clean_cluster, SmallConfig());
  ASSERT_TRUE(clean.BuildIndex(ds).ok());
  std::vector<std::vector<std::pair<TrajectoryId, double>>> clean_knn;
  for (size_t qi = 0; qi < 3; ++qi) {
    auto r = clean.KnnSearch(ds[qi * 17], k);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    clean_knn.push_back(*r);
  }
  auto clean_join = clean.Join(clean, tau);
  ASSERT_TRUE(clean_join.ok());
  EXPECT_FALSE(clean_join->empty());

  for (uint64_t seed : {101u, 202u, 303u}) {
    auto cluster = MakeCluster();
    {
      ClusterConfig cfg = cluster->config();
      cfg.speculation_multiplier = 2.0;
      cluster = std::make_shared<Cluster>(cfg);
    }
    cluster->InjectFaults(HostilePlan(seed));
    DitaEngine engine(cluster, SmallConfig());
    ASSERT_TRUE(engine.BuildIndex(ds).ok());

    for (size_t qi = 0; qi < 3; ++qi) {
      DitaEngine::QueryStats qstats;
      auto r = engine.KnnSearch(ds[qi * 17], k, 0.0, &qstats);
      ASSERT_TRUE(r.ok()) << "seed=" << seed << ": " << r.status().ToString();
      EXPECT_EQ(*r, clean_knn[qi]) << "seed=" << seed << " query=" << qi;
    }
    DitaEngine::JoinStats jstats;
    auto join = engine.Join(engine, tau, &jstats);
    ASSERT_TRUE(join.ok()) << "seed=" << seed;
    EXPECT_EQ(*join, *clean_join) << "seed=" << seed;

    // The schedule really injected faults, and the engine surfaced them.
    const FaultStats fs = cluster->fault_stats();
    EXPECT_GT(fs.retries, 0u) << "seed=" << seed;
    EXPECT_GT(fs.task_attempts, fs.retries) << "seed=" << seed;
    EXPECT_EQ(fs.worker_crashes, 1u) << "seed=" << seed;
    EXPECT_EQ(cluster->num_live_workers(), 3u);
    EXPECT_GT(jstats.faults.task_attempts, 0u);
  }
}

/// Acceptance (b): a worker crash mid-join is recovered — nonzero lineage
/// re-shipping is charged and the makespan strictly exceeds the fault-free
/// run's.
TEST(FaultToleranceTest, WorkerCrashMidJoinRecoversWithCharges) {
  const Dataset ds = CityDataset(150, 43);
  // tau = 0 keeps the shipped-byte plan essentially empty and deterministic,
  // so the only macroscopic network cost in the faulty run is crash
  // recovery; the low bandwidth makes that cost dwarf measurement noise.
  const double tau = 0.0;
  const double bandwidth = 50.0;

  auto run = [&](bool inject) {
    auto cluster = MakeCluster(4, bandwidth);
    DitaConfig config = SmallConfig();
    config.enable_division_balancing = false;
    DitaEngine engine(cluster, config);
    EXPECT_TRUE(engine.BuildIndex(ds).ok());
    if (inject) {
      FaultPlan plan;
      plan.crash_worker = 0;
      // stages_run() is the upcoming join-ship stage; +1 is the probe
      // stage, i.e. mid-join.
      plan.crash_at_stage = static_cast<int64_t>(cluster->stages_run()) + 1;
      cluster->InjectFaults(plan);
    }
    const Cluster::CostSnapshot snap = cluster->Snapshot();
    DitaEngine::JoinStats stats;
    auto pairs = engine.Join(engine, tau, &stats);
    EXPECT_TRUE(pairs.ok()) << pairs.status().ToString();
    return std::make_tuple(*pairs, cluster->MakespanSince(snap), stats);
  };

  auto [clean_pairs, clean_makespan, clean_stats] = run(false);
  auto [crash_pairs, crash_makespan, crash_stats] = run(true);

  // Identical answers (every trajectory matches at least itself at tau=0).
  EXPECT_FALSE(clean_pairs.empty());
  EXPECT_EQ(crash_pairs, clean_pairs);

  // Recovery happened and was charged.
  EXPECT_EQ(crash_stats.faults.worker_crashes, 1u);
  EXPECT_GT(crash_stats.faults.tasks_reassigned, 0u);
  EXPECT_GT(crash_stats.faults.recovery_bytes, 0u);
  EXPECT_GT(crash_stats.faults.recovery_seconds, 0.0);
  EXPECT_EQ(clean_stats.faults.recovery_bytes, 0u);

  // Lost work costs virtual time: the crashed run is strictly slower.
  EXPECT_GT(crash_makespan, clean_makespan);
}

/// Acceptance (c): a stage deadline miss surfaces Status::DeadlineExceeded
/// instead of hanging or aborting.
TEST(FaultToleranceTest, StageDeadlineMissSurfacesStatus) {
  const Dataset ds = CityDataset(120, 47);
  auto cluster = MakeCluster();
  DitaConfig config = SmallConfig();
  config.serving.stage_deadline_seconds = 1.0;  // virtual seconds
  DitaEngine engine(cluster, config);
  ASSERT_TRUE(engine.BuildIndex(ds).ok());

  // Every post-build task is a catastrophic straggler in virtual time.
  FaultPlan plan;
  plan.straggler_prob = 1.0;
  plan.straggler_multiplier = 1e12;
  cluster->InjectFaults(plan);

  auto search = engine.Search(ds[0], 0.05);
  ASSERT_FALSE(search.ok());
  EXPECT_EQ(search.status().code(), Status::Code::kDeadlineExceeded);

  auto join = engine.Join(engine, 0.02);
  ASSERT_FALSE(join.ok());
  EXPECT_EQ(join.status().code(), Status::Code::kDeadlineExceeded);
  EXPECT_GT(cluster->fault_stats().deadline_misses, 0u);

  // Clearing the schedule restores normal service on the same engine.
  cluster->ClearFaults();
  auto ok_search = engine.Search(ds[0], 0.05);
  EXPECT_TRUE(ok_search.ok()) << ok_search.status().ToString();
}

/// Per-operation fault summaries isolate concurrent operations on a shared
/// cluster: a clean query between two faulty ones reports zero fault work.
TEST(FaultToleranceTest, FaultStatsAreSnapshotScoped) {
  const Dataset ds = CityDataset(150, 53);
  auto cluster = MakeCluster();
  DitaEngine engine(cluster, SmallConfig());
  ASSERT_TRUE(engine.BuildIndex(ds).ok());

  FaultPlan plan;
  plan.seed = 9;
  plan.transient_failure_prob = 0.95;
  cluster->InjectFaults(plan);
  DitaEngine::QueryStats faulty;
  ASSERT_TRUE(engine.Search(ds[0], 0.05, &faulty).ok());
  EXPECT_GT(faulty.faults.retries, 0u);
  EXPECT_GT(faulty.faults.backoff_seconds, 0.0);

  cluster->ClearFaults();
  DitaEngine::QueryStats clean;
  ASSERT_TRUE(engine.Search(ds[0], 0.05, &clean).ok());
  EXPECT_EQ(clean.faults.retries, 0u);
  EXPECT_EQ(clean.faults.task_attempts, clean.partitions_probed);
  EXPECT_DOUBLE_EQ(clean.faults.backoff_seconds, 0.0);
}

/// Backoff waits are charged into worker virtual time, so a retry-heavy run
/// reports a strictly larger makespan than a clean one.
TEST(FaultToleranceTest, RetriesInflateMakespan) {
  const Dataset ds = CityDataset(150, 59);

  auto run = [&](double failure_prob) {
    ClusterConfig ccfg;
    ccfg.num_workers = 4;
    ccfg.retry_backoff_seconds = 0.5;  // virtual; dwarfs CPU noise
    auto cluster = std::make_shared<Cluster>(ccfg);
    DitaEngine engine(cluster, SmallConfig());
    EXPECT_TRUE(engine.BuildIndex(ds).ok());
    if (failure_prob > 0.0) {
      FaultPlan plan;
      plan.seed = 13;
      plan.transient_failure_prob = failure_prob;
      cluster->InjectFaults(plan);
    }
    const Cluster::CostSnapshot snap = cluster->Snapshot();
    DitaEngine::QueryStats stats;
    auto r = engine.Search(ds[3], 0.05, &stats);
    EXPECT_TRUE(r.ok());
    return std::make_pair(*r, cluster->MakespanSince(snap));
  };

  auto [clean_ids, clean_makespan] = run(0.0);
  auto [faulty_ids, faulty_makespan] = run(0.9);
  EXPECT_EQ(faulty_ids, clean_ids);
  EXPECT_GT(faulty_makespan, clean_makespan);
}

}  // namespace
}  // namespace dita
