// The serving runtime: the unified Execute() API and its legacy aliases,
// the fair-share QueryScheduler on the cost-aware admission gate, and
// DitaService's streaming ingest with epoch-snapshotted incremental
// indexes. The load-bearing invariant throughout: for ANY interleaving of
// inserts, deletes, queries, and epoch merges, the service answers exactly
// what a fresh batch DitaEngine built on the equivalent live set would
// answer — the delta scan uses the same verification predicate as the
// indexed path, so serving never trades exactness for freshness.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <map>
#include <random>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/admission.h"
#include "core/engine.h"
#include "serving/scheduler.h"
#include "serving/service.h"
#include "util/query_context.h"
#include "workload/generator.h"

namespace dita {
namespace {

Dataset CityDataset(size_t n, uint64_t seed,
                    const MBR& region = MBR(Point{0, 0}, Point{1, 1})) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.region = region;
  cfg.step = 0.01;
  cfg.avg_len = 16;
  cfg.min_len = 4;
  cfg.max_len = 50;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

DitaConfig SmallConfig() {
  DitaConfig config;
  config.build.ng = 3;
  config.build.trie.num_pivots = 3;
  config.build.trie.align_fanout = 8;
  config.build.trie.pivot_fanout = 4;
  config.build.trie.leaf_capacity = 4;
  config.distance_params.epsilon = 0.01;
  config.verify.cell_size = 0.02;
  return config;
}

std::shared_ptr<Cluster> MakeCluster(size_t workers = 4) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  return std::make_shared<Cluster>(cfg);
}

/// Re-ids a trajectory so insert pools never collide with base ids.
Trajectory WithId(const Trajectory& t, TrajectoryId id) {
  return Trajectory(id, t.points());
}

template <typename T>
std::vector<T> Sorted(std::vector<T> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ------------------------------------------------------------------------
// Satellite 1: the legacy wrappers are exact aliases of Execute().
// ------------------------------------------------------------------------

class ExecuteAliasTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = CityDataset(200, 77);
    cluster_ = MakeCluster();
    engine_ = std::make_unique<DitaEngine>(cluster_, SmallConfig());
    ASSERT_TRUE(engine_->BuildIndex(ds_).ok());
  }

  Dataset ds_;
  std::shared_ptr<Cluster> cluster_;
  std::unique_ptr<DitaEngine> engine_;
};

TEST_F(ExecuteAliasTest, SearchWrapperMatchesExecute) {
  for (size_t i = 0; i < 5; ++i) {
    const Trajectory& q = ds_[i * 17];
    DitaEngine::QueryStats stats;
    auto via_wrapper = engine_->Search(q, 0.05, &stats);
    ASSERT_TRUE(via_wrapper.ok());

    QueryRequest req;
    req.kind = QueryKind::kSearch;
    req.query = q;
    req.tau = 0.05;
    auto via_execute = engine_->Execute(req);
    ASSERT_TRUE(via_execute.ok());
    EXPECT_EQ(*via_wrapper, via_execute->ids);
    EXPECT_EQ(stats.results, via_execute->search_stats.results);
    EXPECT_EQ(stats.candidates, via_execute->search_stats.candidates);
  }
}

TEST_F(ExecuteAliasTest, KnnWrapperMatchesExecute) {
  const Trajectory& q = ds_[42];
  auto via_wrapper = engine_->KnnSearch(q, 7);
  ASSERT_TRUE(via_wrapper.ok());

  QueryRequest req;
  req.kind = QueryKind::kKnnSearch;
  req.query = q;
  req.k = 7;
  auto via_execute = engine_->Execute(req);
  ASSERT_TRUE(via_execute.ok());
  EXPECT_EQ(*via_wrapper, via_execute->neighbors);
  EXPECT_EQ(via_execute->neighbors.size(), 7u);
}

TEST_F(ExecuteAliasTest, JoinWrapperMatchesExecute) {
  auto via_wrapper = engine_->Join(*engine_, 0.02);
  ASSERT_TRUE(via_wrapper.ok());

  QueryRequest req;
  req.kind = QueryKind::kJoin;
  req.tau = 0.02;
  req.join_right = engine_.get();
  auto via_execute = engine_->Execute(req);
  ASSERT_TRUE(via_execute.ok());
  EXPECT_EQ(Sorted(*via_wrapper), Sorted(via_execute->pairs));
  // Self-join: every trajectory matches itself, so the result is nonempty.
  EXPECT_GE(via_execute->pairs.size(), ds_.size());
}

TEST_F(ExecuteAliasTest, ExecuteValidatesPerKind) {
  // Unbuilt engine keeps the legacy error text.
  DitaEngine fresh(cluster_, SmallConfig());
  QueryRequest req;
  req.kind = QueryKind::kSearch;
  req.query = ds_[0];
  req.tau = 0.05;
  const auto unbuilt = fresh.Execute(req);
  EXPECT_FALSE(unbuilt.ok());

  // k == 0 is an empty answer, not an error; k > n is an error.
  QueryRequest knn;
  knn.kind = QueryKind::kKnnSearch;
  knn.query = ds_[0];
  knn.k = 0;
  auto empty = engine_->Execute(knn);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->neighbors.empty());
  knn.k = ds_.size() + 1;
  EXPECT_FALSE(engine_->Execute(knn).ok());

  // Service-level join targets are rejected by the bare engine.
  QueryRequest join;
  join.kind = QueryKind::kJoin;
  join.tau = 0.02;
  join.join_right_service = reinterpret_cast<const DitaService*>(engine_.get());
  EXPECT_FALSE(engine_->Execute(join).ok());
}

TEST_F(ExecuteAliasTest, EstimateQueryCostIsPositive) {
  QueryRequest search;
  search.kind = QueryKind::kSearch;
  search.query = ds_[0];
  search.tau = 0.05;
  EXPECT_GE(engine_->EstimateQueryCost(search), 1u);

  QueryRequest knn;
  knn.kind = QueryKind::kKnnSearch;
  knn.query = ds_[0];
  knn.k = 5;
  EXPECT_GE(engine_->EstimateQueryCost(knn), 1u);

  QueryRequest join;
  join.kind = QueryKind::kJoin;
  join.tau = 0.05;
  join.join_right = engine_.get();
  // A join touches partition pairs; it must cost at least as much as the
  // broadest single probe.
  EXPECT_GE(engine_->EstimateQueryCost(join),
            engine_->EstimateQueryCost(search));
}

// ------------------------------------------------------------------------
// QueryScheduler: fair-share slot math and gate delegation.
// ------------------------------------------------------------------------

TEST(QuerySchedulerTest, SlotShareHalvesPerPriorityLevel) {
  QueryScheduler::Options opts;
  opts.slots = 16;
  QueryScheduler sched(opts);
  // Cost above the share clamps to the share; priority halves the share.
  EXPECT_EQ(sched.SlotsFor(0, 1000), 16u);
  EXPECT_EQ(sched.SlotsFor(1, 1000), 8u);
  EXPECT_EQ(sched.SlotsFor(2, 1000), 4u);
  EXPECT_EQ(sched.SlotsFor(4, 1000), 1u);
  // Deep priorities and negative inputs stay sane: at least one slot.
  EXPECT_EQ(sched.SlotsFor(30, 1000), 1u);
  EXPECT_EQ(sched.SlotsFor(-3, 1000), 16u);
  // Cost below the share is taken as-is (small queries stay small).
  EXPECT_EQ(sched.SlotsFor(0, 3), 3u);
  EXPECT_EQ(sched.SlotsFor(1, 1), 1u);
  EXPECT_EQ(sched.SlotsFor(0, 0), 1u);
}

TEST(QuerySchedulerTest, AcquireHoldsSlotsUntilReleased) {
  QueryScheduler::Options opts;
  opts.slots = 8;
  QueryScheduler sched(opts);
  QueryScheduler::Grant g;
  ASSERT_TRUE(sched.Acquire(1, 3, nullptr, &g).ok());
  EXPECT_TRUE(g.held());
  EXPECT_EQ(g.slots(), 3u);
  EXPECT_EQ(sched.slots_in_use(), 3u);
  EXPECT_EQ(sched.active(), 1u);
  g.Release();
  EXPECT_EQ(sched.slots_in_use(), 0u);
  EXPECT_EQ(sched.admitted(), 1u);
}

TEST(QuerySchedulerTest, ShedsWhenQueueIsFull) {
  QueryScheduler::Options opts;
  opts.slots = 1;
  opts.max_queued = 0;
  QueryScheduler sched(opts);
  QueryScheduler::Grant holder;
  ASSERT_TRUE(sched.Acquire(0, 1, nullptr, &holder).ok());
  QueryScheduler::Grant g;
  const Status s = sched.Acquire(0, 1, nullptr, &g);
  EXPECT_EQ(s.code(), Status::Code::kUnavailable);
  EXPECT_FALSE(g.held());
  EXPECT_EQ(sched.shed(), 1u);
}

TEST(QuerySchedulerTest, CancelledContextAbandonsQueue) {
  QueryScheduler::Options opts;
  opts.slots = 1;
  opts.max_queued = 4;
  QueryScheduler sched(opts);
  QueryScheduler::Grant holder;
  ASSERT_TRUE(sched.Acquire(0, 1, nullptr, &holder).ok());
  QueryContext ctx;
  ctx.Cancel();
  QueryScheduler::Grant g;
  const Status s = sched.Acquire(0, 1, &ctx, &g);
  EXPECT_EQ(s.code(), Status::Code::kCancelled);
  EXPECT_FALSE(g.held());
}

// ------------------------------------------------------------------------
// Satellite 3: cost accounting in the admission gate. A giant join cannot
// starve point searches (they bypass it while it waits for budget), and
// the bypass bound keeps the giant from starving in return.
// ------------------------------------------------------------------------

TEST(AdmissionGateCostTest, SmallQueriesBypassGiantUntilBypassBound) {
  AdmissionGate::Options opts;
  opts.max_inflight = 8;
  opts.max_queued = 8;
  opts.max_inflight_cost = 8;
  opts.max_bypass = 3;
  AdmissionGate gate(opts);

  // A medium query holds 6 of the 8 cost units.
  AdmissionGate::Ticket medium;
  ASSERT_TRUE(gate.Admit(nullptr, 6, &medium).ok());

  // The giant join (cost 8) cannot fit and queues.
  std::atomic<bool> giant_admitted{false};
  std::thread giant([&] {
    AdmissionGate::Ticket t;
    EXPECT_TRUE(gate.Admit(nullptr, 8, &t).ok());
    giant_admitted = true;
  });
  while (gate.queued() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Point searches (cost 1) fit the remaining budget and flow past the
  // queued giant — exactly max_bypass times.
  for (int i = 0; i < 3; ++i) {
    AdmissionGate::Ticket t;
    ASSERT_TRUE(gate.Admit(nullptr, 1, &t).ok()) << "bypass " << i;
    EXPECT_FALSE(giant_admitted.load());
  }
  EXPECT_EQ(gate.bypasses(), 3u);

  // The bypass allowance is spent: the next point search must wait its
  // turn behind the giant even though its cost would fit.
  std::atomic<bool> small_admitted{false};
  std::thread small([&] {
    AdmissionGate::Ticket t;
    EXPECT_TRUE(gate.Admit(nullptr, 1, &t).ok());
    small_admitted = true;
  });
  while (gate.queued() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(small_admitted.load());

  // Freeing the medium query lets the giant (queue head) in first; the
  // small query follows once the giant releases.
  medium.Release();
  giant.join();
  EXPECT_TRUE(giant_admitted.load());
  small.join();
  EXPECT_TRUE(small_admitted.load());
  EXPECT_EQ(gate.inflight(), 0u);
  // The cost budget held throughout: never more than 8 units in flight.
  EXPECT_LE(gate.cost_high_water(), 8u);
}

TEST(AdmissionGateCostTest, OversizedQueryRunsAloneInsteadOfHanging) {
  AdmissionGate::Options opts;
  opts.max_inflight = 4;
  opts.max_queued = 4;
  opts.max_inflight_cost = 8;
  AdmissionGate gate(opts);
  // Cost 100 > budget 8, but nothing is in flight: admitted, serially.
  AdmissionGate::Ticket t;
  ASSERT_TRUE(gate.Admit(nullptr, 100, &t).ok());
  EXPECT_EQ(gate.inflight(), 1u);
  t.Release();
  EXPECT_EQ(gate.inflight_cost(), 0u);
}

/// Mixed workload through a live service: one bulk self-join riding with a
/// stream of point searches. The regression this pins down: before cost
/// accounting, the join's admission was indistinguishable from a search's,
/// so a burst of joins could occupy every slot and point searches timed
/// out behind them; now the scheduler charges the join its estimated cost
/// and the searches keep flowing (bypasses observable on the gate).
TEST(AdmissionGateCostTest, ServiceMixedWorkloadKeepsPointSearchesFlowing) {
  const Dataset ds = CityDataset(150, 31);
  auto cluster = MakeCluster(4);
  DitaConfig config = SmallConfig();
  config.serving.scheduler_slots = 4;
  config.serving.synchronous_merge = true;
  DitaService service(cluster, config);
  ASSERT_TRUE(service.Start(ds).ok());

  std::atomic<size_t> searches_done{0};
  std::atomic<bool> stop_searches{false};
  std::thread join_thread([&] {
    QueryRequest req;
    req.kind = QueryKind::kJoin;
    req.tau = 0.02;
    req.priority = 2;  // bulk analytics: smaller share
    const auto r = service.Execute(req);
    EXPECT_TRUE(r.ok());
  });
  std::vector<std::thread> searchers;
  for (int i = 0; i < 3; ++i) {
    searchers.emplace_back([&, i] {
      QueryRequest req;
      req.kind = QueryKind::kSearch;
      req.query = ds[size_t(i) * 11];
      req.tau = 0.05;
      req.priority = 0;  // latency-sensitive
      while (!stop_searches.load()) {
        const auto r = service.Execute(req);
        EXPECT_TRUE(r.ok());
        ++searches_done;
      }
    });
  }
  join_thread.join();
  stop_searches = true;
  for (auto& t : searchers) t.join();

  EXPECT_GE(searches_done.load(), 3u);
  EXPECT_LE(service.scheduler().slots_in_use(), 0u);
  // The join was charged real cost: the pool's high water reflects shared
  // occupancy, and it never exceeded the slot budget (one oversized query
  // running alone is the only sanctioned excursion).
  EXPECT_GE(service.scheduler().slots_high_water(), 2u);
  EXPECT_EQ(service.scheduler().active(), 0u);
}

// ------------------------------------------------------------------------
// DitaService: ingest, epochs, snapshots.
// ------------------------------------------------------------------------

class DitaServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = CityDataset(160, 7);
    pool_ = CityDataset(60, 8);  // insert pool, re-idded on use
    cluster_ = MakeCluster();
    config_ = SmallConfig();
    config_.serving.synchronous_merge = true;
    config_.serving.merge_threshold = 1000;  // no merges unless forced
  }

  Trajectory PoolAt(size_t i) const {
    return WithId(pool_[i % pool_.size()], TrajectoryId(10000 + i));
  }

  Dataset ds_, pool_;
  std::shared_ptr<Cluster> cluster_;
  DitaConfig config_;
};

TEST_F(DitaServiceTest, UnmutatedServiceMatchesBatchEngine) {
  DitaService service(cluster_, config_);
  ASSERT_TRUE(service.Start(ds_).ok());
  DitaEngine batch(cluster_, SmallConfig());
  ASSERT_TRUE(batch.BuildIndex(ds_).ok());

  EXPECT_EQ(service.epoch(), 0u);
  EXPECT_EQ(service.live_size(), ds_.size());

  QueryRequest req;
  req.kind = QueryKind::kSearch;
  req.query = ds_[3];
  req.tau = 0.05;
  auto served = service.Execute(req);
  ASSERT_TRUE(served.ok());
  auto oracle = batch.Search(ds_[3], 0.05);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(served->ids, *oracle);
  EXPECT_EQ(served->serving.epoch, 0u);
  EXPECT_EQ(served->serving.delta_scanned, 0u);
  EXPECT_NE(service.ExplainLastQuery().find("epoch: 0"), std::string::npos);
}

TEST_F(DitaServiceTest, InsertIsVisibleToTheNextQueryExactly) {
  DitaService service(cluster_, config_);
  ASSERT_TRUE(service.Start(ds_).ok());

  // Insert a duplicate of a base trajectory under a fresh id: distance 0,
  // so any search centered on the original must now also return the twin.
  const Trajectory twin = WithId(ds_[5], 20001);
  ASSERT_TRUE(service.Insert(twin).ok());
  EXPECT_EQ(service.version(), 1u);
  EXPECT_EQ(service.epoch(), 0u);
  EXPECT_EQ(service.live_size(), ds_.size() + 1);

  QueryRequest req;
  req.kind = QueryKind::kSearch;
  req.query = ds_[5];
  req.tau = 0.05;
  auto served = service.Execute(req);
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(std::binary_search(served->ids.begin(), served->ids.end(),
                                 TrajectoryId(20001)));
  EXPECT_EQ(served->serving.delta_scanned, 1u);
  EXPECT_EQ(served->serving.delta_matches, 1u);
  EXPECT_TRUE(served->serving.delta_funnel.MonotonicallyNonIncreasing());

  // The delta answer is exact: a fresh batch engine over base+twin agrees.
  std::vector<Trajectory> live = ds_.trajectories();
  live.push_back(twin);
  DitaEngine batch(cluster_, SmallConfig());
  ASSERT_TRUE(batch.BuildIndex(Dataset(live)).ok());
  auto oracle = batch.Search(ds_[5], 0.05);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(served->ids, *oracle);
}

TEST_F(DitaServiceTest, DeleteHidesBaseAnswersAndAccountsForThem) {
  DitaService service(cluster_, config_);
  ASSERT_TRUE(service.Start(ds_).ok());

  const TrajectoryId victim = ds_[9].id();
  QueryRequest req;
  req.kind = QueryKind::kSearch;
  req.query = ds_[9];
  req.tau = 0.05;
  auto before = service.Execute(req);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(std::binary_search(before->ids.begin(), before->ids.end(), victim));

  ASSERT_TRUE(service.Delete(victim).ok());
  auto after = service.Execute(req);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(std::binary_search(after->ids.begin(), after->ids.end(), victim));
  EXPECT_GE(after->serving.deleted_filtered, 1u);
  EXPECT_EQ(after->ids.size(), before->ids.size() - 1);
}

TEST_F(DitaServiceTest, IngestValidation) {
  DitaService service(cluster_, config_);
  ASSERT_TRUE(service.Start(ds_).ok());

  // Duplicate live id (base) and duplicate pending insert both rejected.
  EXPECT_FALSE(service.Insert(ds_[0]).ok());
  const Trajectory fresh = PoolAt(0);
  ASSERT_TRUE(service.Insert(fresh).ok());
  EXPECT_FALSE(service.Insert(fresh).ok());

  // Too-short trajectories are rejected with the engine's message.
  EXPECT_FALSE(service.Insert(Trajectory(30000, {Point{0, 0}})).ok());

  // Deleting a pending insert removes it from the buffer outright.
  ASSERT_TRUE(service.Delete(fresh.id()).ok());
  EXPECT_EQ(service.delta_ops(), 0u);
  EXPECT_EQ(service.live_size(), ds_.size());

  // Deleting a dead id is NotFound; double-delete of a base id too.
  EXPECT_EQ(service.Delete(99999).code(), Status::Code::kNotFound);
  ASSERT_TRUE(service.Delete(ds_[0].id()).ok());
  EXPECT_EQ(service.Delete(ds_[0].id()).code(), Status::Code::kNotFound);

  // A deleted base id may be re-inserted (it is no longer live).
  ASSERT_TRUE(service.Insert(ds_[0]).ok());
  EXPECT_EQ(service.live_size(), ds_.size());
}

TEST_F(DitaServiceTest, EpochMergeFoldsDeltaAndPreservesAnswers) {
  config_.serving.merge_threshold = 8;
  DitaService service(cluster_, config_);
  ASSERT_TRUE(service.Start(ds_).ok());

  std::vector<Trajectory> live = ds_.trajectories();
  for (size_t i = 0; i < 8; ++i) {
    const Trajectory t = PoolAt(i);
    ASSERT_TRUE(service.Insert(t).ok());
    live.push_back(t);
  }
  // The 8th delta op crossed the threshold: a synchronous merge folded the
  // delta into a fresh epoch-1 base.
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.merges(), 1u);
  EXPECT_EQ(service.delta_ops(), 0u);
  EXPECT_EQ(service.live_size(), live.size());

  DitaEngine batch(cluster_, SmallConfig());
  ASSERT_TRUE(batch.BuildIndex(Dataset(live)).ok());
  QueryRequest req;
  req.kind = QueryKind::kSearch;
  req.query = pool_[2];
  req.tau = 0.05;
  auto served = service.Execute(req);
  ASSERT_TRUE(served.ok());
  auto oracle = batch.Search(pool_[2], 0.05);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(served->ids, *oracle);
  // Post-merge queries hit the new base, not a delta scan.
  EXPECT_EQ(served->serving.delta_scanned, 0u);
  EXPECT_EQ(served->serving.epoch, 1u);
  EXPECT_NE(service.ExplainLastQuery().find("epoch: 1"), std::string::npos);
}

TEST_F(DitaServiceTest, MergeCanDeleteEverythingAndServiceKeepsServing) {
  const Dataset tiny = CityDataset(12, 3);
  DitaService service(cluster_, config_);
  ASSERT_TRUE(service.Start(tiny).ok());
  for (const Trajectory& t : tiny.trajectories()) {
    ASSERT_TRUE(service.Delete(t.id()).ok());
  }
  ASSERT_TRUE(service.ForceMerge().ok());
  EXPECT_EQ(service.epoch(), 1u);
  EXPECT_EQ(service.live_size(), 0u);

  QueryRequest req;
  req.kind = QueryKind::kSearch;
  req.query = tiny[0];
  req.tau = 0.5;
  auto served = service.Execute(req);
  ASSERT_TRUE(served.ok());
  EXPECT_TRUE(served->ids.empty());

  // kNN on an empty table: k exceeds the (zero) cardinality.
  QueryRequest knn;
  knn.kind = QueryKind::kKnnSearch;
  knn.query = tiny[0];
  knn.k = 1;
  EXPECT_FALSE(service.Execute(knn).ok());

  // Life goes on: insert into the empty epoch and query it back.
  ASSERT_TRUE(service.Insert(tiny[4]).ok());
  auto revived = service.Execute(req);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ(revived->ids.size(), 1u);
}

TEST_F(DitaServiceTest, EmptyStartThenStreamingBuildUp) {
  DitaService service(cluster_, config_);
  ASSERT_TRUE(service.Start(Dataset()).ok());
  EXPECT_EQ(service.live_size(), 0u);

  std::vector<Trajectory> live;
  for (size_t i = 0; i < 10; ++i) {
    const Trajectory t = PoolAt(i);
    ASSERT_TRUE(service.Insert(t).ok());
    live.push_back(t);
  }
  DitaEngine batch(cluster_, SmallConfig());
  ASSERT_TRUE(batch.BuildIndex(Dataset(live)).ok());

  QueryRequest req;
  req.kind = QueryKind::kSearch;
  req.query = live[4];
  req.tau = 0.05;
  auto served = service.Execute(req);
  ASSERT_TRUE(served.ok());
  auto oracle = batch.Search(live[4], 0.05);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(served->ids, *oracle);
  EXPECT_EQ(served->serving.delta_scanned, live.size());

  QueryRequest knn;
  knn.kind = QueryKind::kKnnSearch;
  knn.query = live[4];
  knn.k = 3;
  auto knn_served = service.Execute(knn);
  ASSERT_TRUE(knn_served.ok());
  auto knn_oracle = batch.KnnSearch(live[4], 3);
  ASSERT_TRUE(knn_oracle.ok());
  EXPECT_EQ(knn_served->neighbors, *knn_oracle);
}

TEST_F(DitaServiceTest, SubmitMatchesExecuteAndFailsAfterStop) {
  DitaService service(cluster_, config_);
  ASSERT_TRUE(service.Start(ds_).ok());

  QueryRequest req;
  req.kind = QueryKind::kSearch;
  req.query = ds_[1];
  req.tau = 0.05;
  auto direct = service.Execute(req);
  ASSERT_TRUE(direct.ok());
  auto fut = service.Submit(req);
  auto async = fut.get();
  ASSERT_TRUE(async.ok());
  EXPECT_EQ(async->ids, direct->ids);

  service.Stop();
  auto dead = service.Submit(req).get();
  EXPECT_EQ(dead.status().code(), Status::Code::kUnavailable);
  service.Stop();  // idempotent
}

TEST_F(DitaServiceTest, SchedulerAccountsEveryQuery) {
  DitaService service(cluster_, config_);
  ASSERT_TRUE(service.Start(ds_).ok());
  QueryRequest req;
  req.kind = QueryKind::kSearch;
  req.query = ds_[0];
  req.tau = 0.05;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.Execute(req).ok());
  }
  EXPECT_GE(service.scheduler().admitted(), 5u);
  EXPECT_EQ(service.scheduler().active(), 0u);
  EXPECT_LE(service.scheduler().slots_high_water(),
            service.scheduler().total_slots());
}

// ------------------------------------------------------------------------
// Satellite 4: the batch-oracle property. For a seeded interleaving of
// inserts, deletes, and all three query kinds — across epoch merges — the
// service answers bit-identically to a fresh batch engine built on the
// equivalent live set.
// ------------------------------------------------------------------------

TEST(ServingOracleTest, SeededInterleavingMatchesBatchEngine) {
  for (const uint64_t seed : {11u, 23u}) {
    SCOPED_TRACE(testing::Message() << "seed " << seed);
    const Dataset base = CityDataset(120, seed);
    const Dataset pool = CityDataset(80, seed + 1);
    auto cluster = MakeCluster();

    DitaConfig config = SmallConfig();
    config.serving.synchronous_merge = true;
    config.serving.merge_threshold = 16;  // merges fire mid-interleaving
    DitaService service(cluster, config);
    ASSERT_TRUE(service.Start(base).ok());

    // Shadow state: id -> trajectory, mirrored on every accepted write.
    std::map<TrajectoryId, Trajectory> live;
    for (const Trajectory& t : base.trajectories()) live[t.id()] = t;

    std::mt19937_64 rng(seed * 1000003);
    size_t next_pool = 0;
    size_t total_results = 0;
    const auto live_vector = [&] {
      std::vector<Trajectory> v;
      v.reserve(live.size());
      for (const auto& [_, t] : live) v.push_back(t);
      return v;
    };

    for (int op = 0; op < 140; ++op) {
      const int dice = int(rng() % 10);
      if (dice < 4 && next_pool < pool.size()) {
        const Trajectory t =
            WithId(pool[next_pool], TrajectoryId(10000 + next_pool));
        ++next_pool;
        ASSERT_TRUE(service.Insert(t).ok());
        live[t.id()] = t;
      } else if (dice < 6 && live.size() > 40) {
        auto it = live.begin();
        std::advance(it, long(rng() % live.size()));
        ASSERT_TRUE(service.Delete(it->first).ok());
        live.erase(it);
      } else if (op % 8 == 7) {
        // Query checkpoint: rebuild a batch engine on the shadow live set
        // and require bit-identical answers from the service.
        DitaEngine batch(cluster, SmallConfig());
        ASSERT_TRUE(batch.BuildIndex(Dataset(live_vector())).ok());
        const Trajectory& q = base[(size_t(op) * 13) % base.size()];

        QueryRequest search;
        search.kind = QueryKind::kSearch;
        search.query = q;
        search.tau = 0.05;
        auto served = service.Execute(search);
        ASSERT_TRUE(served.ok());
        auto oracle = batch.Search(q, 0.05);
        ASSERT_TRUE(oracle.ok());
        EXPECT_EQ(served->ids, *oracle) << "search at op " << op;
        total_results += served->ids.size();

        QueryRequest knn;
        knn.kind = QueryKind::kKnnSearch;
        knn.query = q;
        knn.k = 5;
        auto knn_served = service.Execute(knn);
        ASSERT_TRUE(knn_served.ok());
        auto knn_oracle = batch.KnnSearch(q, 5);
        ASSERT_TRUE(knn_oracle.ok());
        EXPECT_EQ(knn_served->neighbors, *knn_oracle) << "knn at op " << op;

        if (op % 24 == 23) {
          QueryRequest join;
          join.kind = QueryKind::kJoin;
          join.tau = 0.02;
          auto join_served = service.Execute(join);
          ASSERT_TRUE(join_served.ok());
          auto join_oracle = batch.Join(batch, 0.02);
          ASSERT_TRUE(join_oracle.ok());
          EXPECT_EQ(Sorted(join_served->pairs), Sorted(*join_oracle))
              << "self-join at op " << op;
        }
      }
    }
    // The run crossed the merge threshold and produced real answers.
    EXPECT_GE(service.merges(), 1u);
    EXPECT_GT(total_results, 0u);

    // Final checkpoint after a forced merge: the folded state still agrees.
    ASSERT_TRUE(service.ForceMerge().ok());
    DitaEngine batch(cluster, SmallConfig());
    ASSERT_TRUE(batch.BuildIndex(Dataset(live_vector())).ok());
    QueryRequest search;
    search.kind = QueryKind::kSearch;
    search.query = base[1];
    search.tau = 0.05;
    auto served = service.Execute(search);
    ASSERT_TRUE(served.ok());
    auto oracle = batch.Search(base[1], 0.05);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(served->ids, *oracle);
  }
}

/// Service-level joins between two live tables: both sides' deltas are
/// folded in exactly.
TEST(ServingOracleTest, CrossServiceJoinMatchesBatchEngines) {
  auto cluster = MakeCluster();
  const Dataset left_ds = CityDataset(80, 41);
  const Dataset right_ds = CityDataset(80, 42);
  DitaConfig config = SmallConfig();
  config.serving.synchronous_merge = true;
  config.serving.merge_threshold = 1000;

  DitaService left(cluster, config);
  DitaService right(cluster, config);
  ASSERT_TRUE(left.Start(left_ds).ok());
  ASSERT_TRUE(right.Start(right_ds).ok());

  // Mutate both sides: a twin of a left trajectory lands on the right (a
  // guaranteed cross match), and a right base row dies.
  ASSERT_TRUE(right.Insert(WithId(left_ds[3], 7001)).ok());
  ASSERT_TRUE(left.Insert(WithId(right_ds[5], 7002)).ok());
  ASSERT_TRUE(right.Delete(right_ds[0].id()).ok());

  QueryRequest join;
  join.kind = QueryKind::kJoin;
  join.tau = 0.02;
  join.join_right_service = &right;
  auto served = left.Execute(join);
  ASSERT_TRUE(served.ok());

  std::vector<Trajectory> lv = left_ds.trajectories();
  lv.push_back(WithId(right_ds[5], 7002));
  std::vector<Trajectory> rv;
  for (const Trajectory& t : right_ds.trajectories()) {
    if (t.id() != right_ds[0].id()) rv.push_back(t);
  }
  rv.push_back(WithId(left_ds[3], 7001));
  DitaEngine lbatch(cluster, SmallConfig());
  DitaEngine rbatch(cluster, SmallConfig());
  ASSERT_TRUE(lbatch.BuildIndex(Dataset(lv)).ok());
  ASSERT_TRUE(rbatch.BuildIndex(Dataset(rv)).ok());
  auto oracle = lbatch.Join(rbatch, 0.02);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(Sorted(served->pairs), Sorted(*oracle));
  // The planted twin pair made it through the delta terms.
  const std::pair<TrajectoryId, TrajectoryId> planted{left_ds[3].id(), 7001};
  EXPECT_TRUE(std::find(served->pairs.begin(), served->pairs.end(), planted) !=
              served->pairs.end());
}

// ------------------------------------------------------------------------
// Concurrent soak (the TSan target): ingest, background epoch merges, and
// queries race freely; snapshot pinning keeps every answer consistent.
// ------------------------------------------------------------------------

TEST(ServingSoakTest, ConcurrentIngestMergesAndQueriesStayExact) {
  const Dataset base = CityDataset(120, 57);
  // Writers only touch a far-away region, so base-region query answers are
  // version-independent: whatever snapshot a query pins, its answer must
  // equal the batch answer on the untouched base.
  const Dataset far =
      CityDataset(64, 58, MBR(Point{10, 10}, Point{11, 11}));
  auto cluster = MakeCluster();
  DitaConfig config = SmallConfig();
  config.serving.merge_threshold = 24;  // background merges fire mid-run
  config.serving.scheduler_threads = 2;
  DitaService service(cluster, config);
  ASSERT_TRUE(service.Start(base).ok());

  constexpr size_t kQueries = 8;
  std::vector<std::vector<TrajectoryId>> expected(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    QueryRequest req;
    req.kind = QueryKind::kSearch;
    req.query = base[i * 11];
    req.tau = 0.05;
    auto r = service.Execute(req);
    ASSERT_TRUE(r.ok());
    expected[i] = r->ids;
  }

  std::atomic<bool> failed{false};
  std::thread writer([&] {
    for (size_t i = 0; i < far.size(); ++i) {
      const Trajectory t = WithId(far[i], TrajectoryId(50000 + i));
      if (!service.Insert(t).ok()) failed = true;
      if (i >= 5 && i % 3 == 0) {
        if (!service.Delete(TrajectoryId(50000 + i - 5)).ok()) failed = true;
      }
    }
  });
  std::thread merger([&] {
    for (int i = 0; i < 4; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      if (!service.ForceMerge().ok()) failed = true;
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      for (int i = 0; i < 24; ++i) {
        const size_t qi = size_t(r * 7 + i) % kQueries;
        QueryRequest req;
        req.kind = QueryKind::kSearch;
        req.query = base[qi * 11];
        req.tau = 0.05;
        // Alternate sync and async paths so the executor pool races too.
        auto res = (i % 4 == 3) ? service.Submit(req).get()
                                : service.Execute(req);
        if (!res.ok() || res->ids != expected[qi]) failed = true;
      }
    });
  }
  writer.join();
  merger.join();
  for (auto& t : readers) t.join();
  EXPECT_FALSE(failed.load());

  // Settle: fold the remaining delta and re-check against a batch oracle
  // over the final live set.
  ASSERT_TRUE(service.ForceMerge().ok());
  EXPECT_GE(service.merges(), 1u);
  EXPECT_EQ(service.delta_ops(), 0u);
  for (size_t i = 0; i < kQueries; ++i) {
    QueryRequest req;
    req.kind = QueryKind::kSearch;
    req.query = base[i * 11];
    req.tau = 0.05;
    auto r = service.Execute(req);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->ids, expected[i]) << "query " << i << " after final merge";
  }
  service.Stop();
}

// ------------------------------------------------------------------------
// Answer cache: version-tagged LRU over the serving read path. The
// load-bearing invariant: a hit after ANY publish (Insert / Delete /
// merge) is impossible, so cached answers are always what a recompute
// would return.
// ------------------------------------------------------------------------

class AnswerCacheTest : public ::testing::Test {
 protected:
  void StartService(size_t cache_entries, size_t n = 150) {
    ds_ = CityDataset(n, 311);
    DitaConfig config = SmallConfig();
    config.serving.synchronous_merge = true;
    config.serving.merge_threshold = 1000;  // no merges unless forced
    config.serving.answer_cache_entries = cache_entries;
    service_ = std::make_unique<DitaService>(MakeCluster(), config);
    ASSERT_TRUE(service_->Start(ds_).ok());
  }

  QueryRequest SearchReq(const Trajectory& q, double tau = 0.05) const {
    QueryRequest req;
    req.kind = QueryKind::kSearch;
    req.query = q;
    req.tau = tau;
    return req;
  }

  Dataset ds_;
  std::unique_ptr<DitaService> service_;
};

TEST_F(AnswerCacheTest, DisabledByDefaultCountsNothing) {
  StartService(0);
  const QueryRequest req = SearchReq(ds_[3]);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(service_->Execute(req).ok());
  }
  EXPECT_EQ(service_->cache_hits(), 0u);
  EXPECT_EQ(service_->cache_misses(), 0u);
  EXPECT_EQ(service_->cache_evictions(), 0u);
  EXPECT_EQ(service_->cache_invalidations(), 0u);
}

TEST_F(AnswerCacheTest, RepeatHitsAndAnswersAreIdentical) {
  StartService(16);
  const QueryRequest req = SearchReq(ds_[7]);
  auto first = service_->Execute(req);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(service_->cache_hits(), 0u);
  EXPECT_EQ(service_->cache_misses(), 1u);
  auto second = service_->Execute(req);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(service_->cache_hits(), 1u);
  EXPECT_EQ(second->ids, first->ids);
  EXPECT_EQ(second->serving.version, first->serving.version);
  // A different tau is a different key.
  auto other = service_->Execute(SearchReq(ds_[7], 0.08));
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(service_->cache_hits(), 1u);
  EXPECT_EQ(service_->cache_misses(), 2u);
}

TEST_F(AnswerCacheTest, HitAfterInsertIsImpossible) {
  StartService(16);
  // Use a live trajectory as its own query so the insert of a clone is
  // guaranteed to change the answer — a stale hit would be observable.
  const Trajectory& q = ds_[11];
  const QueryRequest req = SearchReq(q);
  auto before = service_->Execute(req);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(service_->Execute(req).ok());
  EXPECT_EQ(service_->cache_hits(), 1u);

  ASSERT_TRUE(service_->Insert(WithId(q, 900001)).ok());
  EXPECT_GE(service_->cache_invalidations(), 1u);
  auto after = service_->Execute(req);
  ASSERT_TRUE(after.ok());
  // No hit was served, and the answer reflects the write.
  EXPECT_EQ(service_->cache_hits(), 1u);
  EXPECT_NE(after->ids, before->ids);
  EXPECT_TRUE(std::find(after->ids.begin(), after->ids.end(), 900001) !=
              after->ids.end());
}

TEST_F(AnswerCacheTest, HitAfterDeleteOrMergeIsImpossible) {
  StartService(16);
  const Trajectory& q = ds_[13];
  const QueryRequest req = SearchReq(q);
  auto before = service_->Execute(req);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before->ids.empty());  // q matches itself at least

  // Delete the query's own id: the cached answer must die with it.
  const uint64_t inval0 = service_->cache_invalidations();
  ASSERT_TRUE(service_->Delete(q.id()).ok());
  EXPECT_GT(service_->cache_invalidations(), inval0);
  auto after_delete = service_->Execute(req);
  ASSERT_TRUE(after_delete.ok());
  EXPECT_EQ(service_->cache_hits(), 0u);
  EXPECT_TRUE(std::find(after_delete->ids.begin(), after_delete->ids.end(),
                        q.id()) == after_delete->ids.end());

  // A forced merge publishes a new epoch: again no hit may survive.
  const uint64_t inval1 = service_->cache_invalidations();
  ASSERT_TRUE(service_->ForceMerge().ok());
  EXPECT_GT(service_->cache_invalidations(), inval1);
  auto after_merge = service_->Execute(req);
  ASSERT_TRUE(after_merge.ok());
  EXPECT_EQ(service_->cache_hits(), 0u);
  EXPECT_EQ(after_merge->ids, after_delete->ids);
}

TEST_F(AnswerCacheTest, LruEvictsLeastRecentlyUsed) {
  StartService(2);
  const QueryRequest a = SearchReq(ds_[1]);
  const QueryRequest b = SearchReq(ds_[2]);
  const QueryRequest c = SearchReq(ds_[3]);
  ASSERT_TRUE(service_->Execute(a).ok());
  ASSERT_TRUE(service_->Execute(b).ok());
  ASSERT_TRUE(service_->Execute(c).ok());  // evicts a
  EXPECT_EQ(service_->cache_evictions(), 1u);
  ASSERT_TRUE(service_->Execute(b).ok());  // still resident
  EXPECT_EQ(service_->cache_hits(), 1u);
  ASSERT_TRUE(service_->Execute(a).ok());  // miss: was evicted; evicts c
  EXPECT_EQ(service_->cache_hits(), 1u);
  EXPECT_EQ(service_->cache_evictions(), 2u);
}

TEST_F(AnswerCacheTest, KnnResultsAreCached) {
  StartService(16);
  QueryRequest req;
  req.kind = QueryKind::kKnnSearch;
  req.query = ds_[5];
  req.k = 4;
  auto first = service_->Execute(req);
  ASSERT_TRUE(first.ok());
  auto second = service_->Execute(req);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(service_->cache_hits(), 1u);
  EXPECT_EQ(second->neighbors, first->neighbors);
  // Ingest invalidates kNN entries too.
  ASSERT_TRUE(service_->Insert(WithId(ds_[5], 900002)).ok());
  auto third = service_->Execute(req);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(service_->cache_hits(), 1u);
  EXPECT_NE(third->neighbors, first->neighbors);
}

TEST_F(AnswerCacheTest, BatchPathServesAndFillsTheCache) {
  StartService(16);
  const QueryRequest req = SearchReq(ds_[9]);
  // First batch: both members carry the same key; neither hits (the lookup
  // precedes the shared computation) but the result is stored.
  auto first = service_->ExecuteBatch({req, req});
  ASSERT_EQ(first.size(), 2u);
  ASSERT_TRUE(first[0].ok());
  ASSERT_TRUE(first[1].ok());
  EXPECT_EQ(service_->cache_hits(), 0u);
  // Second batch: both members hit, answers identical to the computed run.
  auto second = service_->ExecuteBatch({req, req});
  ASSERT_TRUE(second[0].ok());
  ASSERT_TRUE(second[1].ok());
  EXPECT_EQ(service_->cache_hits(), 2u);
  EXPECT_EQ(second[0]->ids, first[0]->ids);
  EXPECT_EQ(second[1]->ids, first[1]->ids);
}

TEST_F(AnswerCacheTest, ContextCarryingRequestsBypassTheCache) {
  StartService(16);
  QueryContext ctx;
  QueryRequest req = SearchReq(ds_[15]);
  req.ctx = &ctx;
  ASSERT_TRUE(service_->Execute(req).ok());
  ASSERT_TRUE(service_->Execute(req).ok());
  EXPECT_EQ(service_->cache_hits(), 0u);
  EXPECT_EQ(service_->cache_misses(), 0u);
}

}  // namespace
}  // namespace dita
