#include <algorithm>
#include <memory>

#include <gtest/gtest.h>

#include "baselines/centralized_dita.h"
#include "baselines/dft.h"
#include "baselines/mbe.h"
#include "baselines/naive.h"
#include "baselines/simba.h"
#include "baselines/vptree.h"
#include "core/engine.h"
#include "workload/generator.h"

namespace dita {
namespace {

std::shared_ptr<Cluster> MakeCluster(size_t workers = 4) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  return std::make_shared<Cluster>(cfg);
}

Dataset CityDataset(size_t n = 300, uint64_t seed = 11) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.region = MBR(Point{0, 0}, Point{1, 1});
  cfg.step = 0.01;
  cfg.avg_len = 14;
  cfg.min_len = 4;
  cfg.max_len = 40;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

std::vector<TrajectoryId> BruteForceSearch(const Dataset& ds,
                                           const TrajectoryDistance& dist,
                                           const Trajectory& q, double tau) {
  std::vector<TrajectoryId> out;
  for (const auto& t : ds.trajectories()) {
    if (dist.Compute(t, q) <= tau) out.push_back(t.id());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// All engines must return the exact answer set; they differ only in cost.
class DistributedEnginesAgree : public ::testing::TestWithParam<DistanceType> {
};

TEST_P(DistributedEnginesAgree, SearchMatchesBruteForce) {
  const DistanceType type = GetParam();
  Dataset ds = CityDataset();
  auto dist = *MakeDistance(type);

  auto cluster = MakeCluster();
  NaiveEngine naive(cluster, type);
  ASSERT_TRUE(naive.BuildIndex(ds).ok());
  SimbaEngine simba(cluster, type);
  ASSERT_TRUE(simba.BuildIndex(ds).ok());
  DftEngine dft(cluster, type);
  ASSERT_TRUE(dft.BuildIndex(ds).ok());

  auto queries = ds.SampleQueries(6, 23);
  for (const auto& q : queries) {
    for (double tau : {0.01, 0.05}) {
      auto expected = BruteForceSearch(ds, *dist, q, tau);
      auto naive_got = naive.Search(q, tau);
      ASSERT_TRUE(naive_got.ok());
      EXPECT_EQ(*naive_got, expected) << "naive tau=" << tau;
      auto simba_got = simba.Search(q, tau);
      ASSERT_TRUE(simba_got.ok());
      EXPECT_EQ(*simba_got, expected) << "simba tau=" << tau;
      auto dft_got = dft.Search(q, tau);
      ASSERT_TRUE(dft_got.ok());
      EXPECT_EQ(*dft_got, expected) << "dft tau=" << tau;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, DistributedEnginesAgree,
                         ::testing::Values(DistanceType::kDTW,
                                           DistanceType::kFrechet),
                         [](const auto& info) {
                           return DistanceTypeName(info.param);
                         });

TEST(SimbaTest, RejectsUnsupportedDistances) {
  auto cluster = MakeCluster();
  SimbaEngine simba(cluster, DistanceType::kEDR);
  EXPECT_EQ(simba.BuildIndex(CityDataset(20)).code(),
            Status::Code::kNotSupported);
}

TEST(DftTest, RejectsUnsupportedDistances) {
  auto cluster = MakeCluster();
  DftEngine dft(cluster, DistanceType::kLCSS);
  EXPECT_EQ(dft.BuildIndex(CityDataset(20)).code(),
            Status::Code::kNotSupported);
}

TEST(NaiveTest, SelfJoinMatchesBruteForce) {
  Dataset ds = CityDataset(80, 29);
  auto cluster = MakeCluster();
  NaiveEngine naive(cluster, DistanceType::kDTW);
  ASSERT_TRUE(naive.BuildIndex(ds).ok());
  auto dist = *MakeDistance(DistanceType::kDTW);
  const double tau = 0.03;
  auto got = naive.SelfJoin(tau);
  ASSERT_TRUE(got.ok());
  std::vector<std::pair<TrajectoryId, TrajectoryId>> expected;
  for (const auto& a : ds.trajectories()) {
    for (const auto& b : ds.trajectories()) {
      if (dist->Compute(b, a) <= tau) expected.emplace_back(a.id(), b.id());
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(*got, expected);
}

TEST(SimbaTest, SelfJoinMatchesDita) {
  Dataset ds = CityDataset(100, 31);
  const double tau = 0.02;

  auto cluster = MakeCluster();
  SimbaEngine simba(cluster, DistanceType::kDTW);
  ASSERT_TRUE(simba.BuildIndex(ds).ok());
  DitaEngine::JoinStats simba_stats;
  auto simba_got = simba.SelfJoin(tau, &simba_stats);
  ASSERT_TRUE(simba_got.ok());

  DitaConfig config;
  config.build.ng = 3;
  config.build.trie.num_pivots = 3;
  config.build.trie.leaf_capacity = 4;
  DitaEngine engine(cluster, config);
  ASSERT_TRUE(engine.BuildIndex(ds).ok());
  DitaEngine::JoinStats dita_stats;
  auto dita_got = engine.Join(engine, tau, &dita_stats);
  ASSERT_TRUE(dita_got.ok());

  EXPECT_EQ(*simba_got, *dita_got);
  // DITA ships trajectories, Simba ships partitions: DITA must move less.
  EXPECT_LT(dita_stats.bytes_shipped, simba_stats.bytes_shipped);
}

TEST(VpTreeTest, RequiresMetric) {
  VpTree tree;
  EXPECT_FALSE(tree.Build(CityDataset(20), DistanceType::kDTW).ok());
  EXPECT_TRUE(tree.Build(CityDataset(20), DistanceType::kFrechet).ok());
}

TEST(VpTreeTest, SearchMatchesBruteForceFrechet) {
  Dataset ds = CityDataset(250, 37);
  VpTree tree;
  ASSERT_TRUE(tree.Build(ds, DistanceType::kFrechet).ok());
  auto dist = *MakeDistance(DistanceType::kFrechet);
  for (const auto& q : ds.SampleQueries(8, 41)) {
    for (double tau : {0.01, 0.05, 0.2}) {
      VpTree::SearchStats stats;
      auto got = tree.Search(q, tau, &stats);
      ASSERT_TRUE(got.ok());
      EXPECT_EQ(*got, BruteForceSearch(ds, *dist, q, tau)) << "tau=" << tau;
      EXPECT_GT(stats.distance_evals, 0u);
      EXPECT_LE(stats.distance_evals, ds.size());
    }
  }
}

TEST(VpTreeTest, TrianglePruningSavesWork) {
  Dataset ds = CityDataset(400, 43);
  VpTree tree;
  ASSERT_TRUE(tree.Build(ds, DistanceType::kFrechet).ok());
  VpTree::SearchStats stats;
  ASSERT_TRUE(tree.Search(ds[0], 0.005, &stats).ok());
  EXPECT_LT(stats.distance_evals, ds.size());
}

class MbeProperty : public ::testing::TestWithParam<DistanceType> {};

TEST_P(MbeProperty, SearchMatchesBruteForce) {
  Dataset ds = CityDataset(250, 47);
  MbeIndex mbe;
  ASSERT_TRUE(mbe.Build(ds, GetParam(), 4).ok());
  auto dist = *MakeDistance(GetParam());
  for (const auto& q : ds.SampleQueries(8, 53)) {
    for (double tau : {0.01, 0.05}) {
      MbeIndex::SearchStats stats;
      auto got = mbe.Search(q, tau, &stats);
      ASSERT_TRUE(got.ok());
      auto expected = BruteForceSearch(ds, *dist, q, tau);
      EXPECT_EQ(*got, expected) << "tau=" << tau;
      EXPECT_GE(stats.candidates, expected.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Distances, MbeProperty,
                         ::testing::Values(DistanceType::kDTW,
                                           DistanceType::kFrechet),
                         [](const auto& info) {
                           return DistanceTypeName(info.param);
                         });

TEST(MbeTest, RejectsBadArgs) {
  MbeIndex mbe;
  EXPECT_FALSE(mbe.Build(CityDataset(20), DistanceType::kEDR).ok());
  EXPECT_FALSE(mbe.Build(CityDataset(20), DistanceType::kDTW, 0).ok());
}

TEST(CentralizedDitaTest, MatchesBruteForceAndPrunesMore) {
  Dataset ds = CityDataset(300, 59);
  DitaConfig config;
  config.build.trie.num_pivots = 4;
  config.build.trie.leaf_capacity = 4;
  CentralizedDita dita;
  ASSERT_TRUE(dita.Build(ds, config).ok());
  MbeIndex mbe;
  ASSERT_TRUE(mbe.Build(ds, DistanceType::kDTW, 4).ok());
  auto dist = *MakeDistance(DistanceType::kDTW);

  size_t dita_candidates = 0, mbe_candidates = 0;
  for (const auto& q : ds.SampleQueries(10, 61)) {
    const double tau = 0.02;
    CentralizedDita::SearchStats ds_stats;
    auto got = dita.Search(q, tau, &ds_stats);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, BruteForceSearch(ds, *dist, q, tau));
    dita_candidates += ds_stats.candidates;
    MbeIndex::SearchStats mbe_stats;
    ASSERT_TRUE(mbe.Search(q, tau, &mbe_stats).ok());
    mbe_candidates += mbe_stats.candidates;
  }
  // Appendix C: DITA's accumulating trie generates fewer candidates.
  EXPECT_LE(dita_candidates, mbe_candidates * 2);
}

}  // namespace
}  // namespace dita
