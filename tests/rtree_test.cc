#include "index/rtree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace dita {
namespace {

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  tree.Build({});
  EXPECT_TRUE(tree.empty());
  std::vector<uint32_t> out;
  tree.SearchWithinDistance(Point{0, 0}, 100.0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, SingleEntry) {
  RTree tree;
  tree.Build({{MBR(Point{0, 0}, Point{1, 1}), 42}});
  std::vector<uint32_t> out;
  tree.SearchWithinDistance(Point{2, 0.5}, 1.0, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
  out.clear();
  tree.SearchWithinDistance(Point{3, 0.5}, 1.0, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, IntersectionQuery) {
  RTree tree;
  std::vector<RTree::Entry> entries;
  for (uint32_t i = 0; i < 10; ++i) {
    const double x = i * 2.0;
    entries.push_back({MBR(Point{x, 0}, Point{x + 1, 1}), i});
  }
  tree.Build(std::move(entries));
  std::vector<uint32_t> out;
  tree.SearchIntersecting(MBR(Point{2.5, 0.2}, Point{6.5, 0.8}), &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 2, 3}));
}

/// Property: R-tree distance queries return exactly the brute-force set, for
/// many random configurations and fanouts.
class RTreeProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeProperty, MatchesBruteForce) {
  const size_t fanout = GetParam();
  Rng rng(fanout * 7 + 1);
  for (int round = 0; round < 10; ++round) {
    const size_t n = static_cast<size_t>(rng.UniformInt(1, 300));
    std::vector<RTree::Entry> entries;
    entries.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      Point a{rng.Uniform(-10, 10), rng.Uniform(-10, 10)};
      Point b{a.x + rng.Uniform(0, 2), a.y + rng.Uniform(0, 2)};
      entries.push_back({MBR(a, b), i});
    }
    RTree tree;
    tree.Build(entries, fanout);
    EXPECT_EQ(tree.size(), n);

    for (int q = 0; q < 20; ++q) {
      Point p{rng.Uniform(-12, 12), rng.Uniform(-12, 12)};
      const double tau = rng.Uniform(0, 3);
      std::set<uint32_t> expected;
      for (const auto& e : entries) {
        if (e.mbr.MinDist(p) <= tau) expected.insert(e.value);
      }
      std::vector<uint32_t> got;
      tree.SearchWithinDistance(p, tau, &got);
      EXPECT_EQ(std::set<uint32_t>(got.begin(), got.end()), expected)
          << "fanout=" << fanout << " n=" << n;
      EXPECT_EQ(got.size(), expected.size());  // no duplicates
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Fanouts, RTreeProperty, ::testing::Values(2, 4, 16, 64));

TEST(RTreeTest, ByteSizeIsPositive) {
  RTree tree;
  tree.Build({{MBR(Point{0, 0}, Point{1, 1}), 0}});
  EXPECT_GT(tree.ByteSize(), 0u);
}

}  // namespace
}  // namespace dita
