#include "workload/generator.h"

#include <gtest/gtest.h>

namespace dita {
namespace {

TEST(GeneratorTest, ProducesRequestedCardinality) {
  GeneratorConfig cfg;
  cfg.cardinality = 500;
  Dataset ds = GenerateTaxiDataset(cfg);
  EXPECT_EQ(ds.size(), 500u);
}

TEST(GeneratorTest, LengthsWithinBounds) {
  GeneratorConfig cfg;
  cfg.cardinality = 400;
  cfg.min_len = 7;
  cfg.max_len = 112;
  Dataset ds = GenerateTaxiDataset(cfg);
  auto s = ds.ComputeStats();
  EXPECT_GE(s.min_len, cfg.min_len);
  EXPECT_LE(s.max_len, cfg.max_len);
  // Mean should land in the neighbourhood of avg_len (log-normal clamp).
  EXPECT_GT(s.avg_len, cfg.avg_len * 0.5);
  EXPECT_LT(s.avg_len, cfg.avg_len * 2.0);
}

TEST(GeneratorTest, PointsStayInRegion) {
  GeneratorConfig cfg;
  cfg.cardinality = 100;
  Dataset ds = GenerateTaxiDataset(cfg);
  for (const auto& t : ds.trajectories()) {
    for (const auto& p : t.points()) {
      EXPECT_TRUE(cfg.region.Contains(p)) << "(" << p.x << "," << p.y << ")";
    }
  }
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  GeneratorConfig cfg;
  cfg.cardinality = 50;
  Dataset a = GenerateTaxiDataset(cfg);
  Dataset b = GenerateTaxiDataset(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (size_t j = 0; j < a[i].size(); ++j) EXPECT_EQ(a[i][j], b[i][j]);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig cfg;
  cfg.cardinality = 10;
  cfg.seed = 1;
  Dataset a = GenerateTaxiDataset(cfg);
  cfg.seed = 2;
  Dataset b = GenerateTaxiDataset(cfg);
  bool any_diff = false;
  for (size_t i = 0; i < a.size() && !any_diff; ++i) {
    if (a[i].size() != b[i].size() || !(a[i][0] == b[i][0])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GeneratorTest, PresetsMatchPaperShapes) {
  Dataset beijing = GenerateBeijingLike(0.02);
  Dataset chengdu = GenerateChengduLike(0.02);
  Dataset osm = GenerateOsmLike(0.02);
  EXPECT_GT(beijing.size(), 0u);
  EXPECT_GT(chengdu.size(), 0u);
  EXPECT_GT(osm.size(), 0u);
  // Chengdu trajectories are longer than Beijing's on average (Table 2).
  EXPECT_GT(chengdu.ComputeStats().avg_len, beijing.ComputeStats().avg_len);
  // OSM is the longest of all.
  EXPECT_GT(osm.ComputeStats().avg_len, chengdu.ComputeStats().avg_len);
}

TEST(GeneratorTest, HubSkewCreatesSpatialClustering) {
  // With hubs, many trajectories should start close to one another; measure
  // the fraction of start points with a close neighbour start.
  GeneratorConfig cfg;
  cfg.cardinality = 300;
  cfg.hub_fraction = 0.9;
  cfg.hubs = 4;
  Dataset skewed = GenerateTaxiDataset(cfg);
  cfg.hub_fraction = 0.0;
  Dataset uniform = GenerateTaxiDataset(cfg);

  auto close_pairs = [](const Dataset& ds) {
    size_t count = 0;
    for (size_t i = 0; i < ds.size(); ++i) {
      for (size_t j = i + 1; j < ds.size(); ++j) {
        if (PointDistance(ds[i].front(), ds[j].front()) < 0.01) ++count;
      }
    }
    return count;
  };
  EXPECT_GT(close_pairs(skewed), close_pairs(uniform));
}

}  // namespace
}  // namespace dita
