// Equivalence and determinism tests for the flat (CSR/SoA) index layouts
// (DESIGN.md §5c): the iterative flat traversals must emit bit-identical
// candidate sets — content AND order — to the recursive reference
// formulations, across every prune mode, metric quirk (ERP gap, LCSS delta
// window), fanout, and leaf capacity; and parallel builds must produce
// byte-identical structures to serial ones.

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "index/rtree.h"
#include "index/str_tile.h"
#include "index/trie_index.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "workload/generator.h"

namespace dita {
namespace {

std::vector<Trajectory> TestTrajectories(size_t n, uint64_t seed) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.avg_len = 30.0;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg).trajectories();
}

TrieIndex::Options TrieOptions(size_t align_fanout, size_t pivot_fanout,
                               size_t leaf_capacity) {
  TrieIndex::Options opts;
  opts.num_pivots = 3;
  opts.align_fanout = align_fanout;
  opts.pivot_fanout = pivot_fanout;
  opts.leaf_capacity = leaf_capacity;
  return opts;
}

/// Exercises one (index, spec) pair: the flat traversal must match the
/// recursive reference exactly, including emission order.
void ExpectTraversalsAgree(const TrieIndex& index,
                           const TrieIndex::SearchSpec& spec) {
  std::vector<uint32_t> flat, reference;
  index.CollectCandidates(spec, &flat);
  index.CollectCandidatesReference(spec, &reference);
  EXPECT_EQ(flat, reference);
}

TEST(FlatTrieTest, MatchesReferenceAcrossModesAndShapes) {
  const std::vector<Trajectory> data = TestTrajectories(400, 91);
  const std::vector<Trajectory> queries = TestTrajectories(12, 17);
  const Point gap{116.4, 39.9};

  const struct {
    size_t align, pivot, leaf;
  } shapes[] = {{2, 2, 1}, {8, 4, 4}, {32, 16, 16}};

  for (const auto& shape : shapes) {
    TrieIndex index;
    ASSERT_TRUE(
        index.Build(data, TrieOptions(shape.align, shape.pivot, shape.leaf))
            .ok());
    size_t nonempty = 0;
    for (const Trajectory& q : queries) {
      for (double tau : {0.0, 0.02, 0.1, 0.5}) {
        TrieIndex::SearchSpec spec;
        spec.query = &q;
        spec.tau = tau;

        spec.mode = PruneMode::kAccumulate;
        ExpectTraversalsAgree(index, spec);

        spec.erp_gap = &gap;  // ERP: gap matching, no endpoint alignment
        ExpectTraversalsAgree(index, spec);
        spec.erp_gap = nullptr;

        spec.mode = PruneMode::kMax;
        ExpectTraversalsAgree(index, spec);

        spec.mode = PruneMode::kEditCount;
        spec.epsilon = 0.05;
        spec.tau = tau * 40.0;  // edit budgets, not distances
        ExpectTraversalsAgree(index, spec);

        spec.lcss_delta = 5;  // adds the |i - j| <= delta window
        ExpectTraversalsAgree(index, spec);
        spec.lcss_delta = -1;

        std::vector<uint32_t> out;
        index.CollectCandidates(spec, &out);
        nonempty += !out.empty();
      }
    }
    // Guard against the vacuous pass where every traversal prunes at the
    // root and both sides trivially emit nothing.
    EXPECT_GT(nonempty, 0u);
  }
}

TEST(FlatTrieTest, EmptyAndSingletonPartitions) {
  TrieIndex empty;
  ASSERT_TRUE(empty.Build({}, TrieOptions(8, 4, 4)).ok());
  EXPECT_EQ(empty.size(), 0u);

  TrieIndex single;
  ASSERT_TRUE(
      single.Build({Trajectory(7, {{0, 0}, {1, 1}, {2, 0}})}, TrieOptions(8, 4, 4))
          .ok());
  ASSERT_EQ(single.size(), 1u);

  const Trajectory q(99, {{0, 0}, {1, 1}, {2, 0}});
  for (PruneMode mode :
       {PruneMode::kAccumulate, PruneMode::kMax, PruneMode::kEditCount}) {
    TrieIndex::SearchSpec spec;
    spec.query = &q;
    spec.tau = mode == PruneMode::kEditCount ? 1.0 : 0.5;
    spec.mode = mode;
    spec.epsilon = 0.1;
    ExpectTraversalsAgree(empty, spec);
    ExpectTraversalsAgree(single, spec);

    std::vector<uint32_t> out;
    empty.CollectCandidates(spec, &out);
    EXPECT_TRUE(out.empty());
    out.clear();
    single.CollectCandidates(spec, &out);
    EXPECT_EQ(out, std::vector<uint32_t>{0});  // exact self-match survives
  }
}

TEST(FlatTrieTest, ParallelBuildIsBitIdenticalToSerial) {
  const std::vector<Trajectory> data = TestTrajectories(600, 23);
  const TrieIndex::Options opts = TrieOptions(8, 4, 4);

  TrieIndex serial;
  ASSERT_TRUE(serial.Build(data, opts).ok());

  ThreadPool pool(4);
  for (int run = 0; run < 3; ++run) {
    TrieIndex parallel;
    double offloaded = 0.0;
    ASSERT_TRUE(parallel.Build(data, opts, &pool, &offloaded).ok());
    EXPECT_EQ(parallel.StructureDigest(), serial.StructureDigest());
    EXPECT_EQ(parallel.ByteSize(), serial.ByteSize());
    EXPECT_GE(offloaded, 0.0);
  }
}

TEST(FlatTrieTest, ByteSizeCountsFlatArraysAndSequences) {
  const std::vector<Trajectory> data = TestTrajectories(200, 5);
  TrieIndex small, large;
  ASSERT_TRUE(small.Build({data.begin(), data.begin() + 20}, TrieOptions(8, 4, 4))
                  .ok());
  ASSERT_TRUE(large.Build(data, TrieOptions(8, 4, 4)).ok());
  EXPECT_GT(small.ByteSize(), 0u);
  EXPECT_GT(large.ByteSize(), small.ByteSize());
  // The node arrays alone put a floor under the footprint: 4 MBR planes of
  // doubles plus 6 uint32 spans per node.
  EXPECT_GE(large.ByteSize(),
            large.NodeCount() * (4 * sizeof(double) + 6 * sizeof(uint32_t)));
}

std::vector<RTree::Entry> RandomEntries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<RTree::Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const Point lo{rng.Uniform(0.0, 10.0), rng.Uniform(0.0, 10.0)};
    const Point hi{lo.x + rng.Uniform(0.0, 0.5), lo.y + rng.Uniform(0.0, 0.5)};
    MBR mbr;
    mbr.Expand(lo);
    mbr.Expand(hi);
    entries.push_back(RTree::Entry{mbr, static_cast<uint32_t>(i)});
  }
  return entries;
}

TEST(FlatRTreeTest, MatchesReferenceAcrossFanouts) {
  Rng rng(7);
  for (size_t n : {0ul, 1ul, 5ul, 64ul, 500ul}) {
    const std::vector<RTree::Entry> entries = RandomEntries(n, 31 + n);
    for (size_t fanout : {2ul, 4ul, 16ul}) {
      RTree tree;
      tree.Build(entries, fanout);
      EXPECT_EQ(tree.size(), n);
      for (int probe = 0; probe < 20; ++probe) {
        const Point p{rng.Uniform(-1.0, 11.0), rng.Uniform(-1.0, 11.0)};
        const double tau = rng.Uniform(0.0, 3.0);
        std::vector<uint32_t> flat, reference;
        tree.SearchWithinDistance(p, tau, &flat);
        tree.SearchWithinDistanceReference(p, tau, &reference);
        EXPECT_EQ(flat, reference);

        MBR range;
        range.Expand(p);
        range.Expand(Point{p.x + rng.Uniform(0.0, 4.0),
                           p.y + rng.Uniform(0.0, 4.0)});
        flat.clear();
        reference.clear();
        tree.SearchIntersecting(range, &flat);
        tree.SearchIntersectingReference(range, &reference);
        EXPECT_EQ(flat, reference);
      }
    }
  }
}

TEST(FlatRTreeTest, RebuildsAreBitIdentical) {
  const std::vector<RTree::Entry> entries = RandomEntries(300, 3);
  RTree a, b;
  a.Build(entries, 8);
  b.Build(entries, 8);
  EXPECT_EQ(a.StructureDigest(), b.StructureDigest());
  EXPECT_GT(a.ByteSize(), 0u);

  // Duplicate-coordinate entries exercise the index tie-breaker: entries
  // with identical MBRs must still pack in a reproducible order.
  std::vector<RTree::Entry> dupes = entries;
  for (auto& e : dupes) e.mbr = entries[0].mbr;
  RTree c, d;
  c.Build(dupes, 8);
  d.Build(dupes, 8);
  EXPECT_EQ(c.StructureDigest(), d.StructureDigest());
  std::vector<uint32_t> hits;
  c.SearchIntersecting(entries[0].mbr, &hits);
  EXPECT_EQ(hits.size(), dupes.size());
}

TEST(FlatStrTileTest, ParallelTilingMatchesSerialWithTies) {
  // Many items share coordinates, so without the index tie-breaker the sort
  // order (and thus the grouping) would be unspecified.
  std::vector<Point> keys;
  Rng rng(11);
  const size_t n = 1 << 15;  // above the parallel-sort threshold
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(Point{static_cast<double>(rng.UniformInt(0, 15)),
                         static_cast<double>(rng.UniformInt(0, 15))});
  }
  std::vector<uint32_t> items(n);
  for (size_t i = 0; i < n; ++i) items[i] = static_cast<uint32_t>(i);
  auto key_of = [&](uint32_t i) { return keys[i]; };

  const auto serial = StrTile(items, key_of, 8);
  ThreadPool pool(4);
  for (int run = 0; run < 3; ++run) {
    double offloaded = 0.0;
    const auto parallel = StrTile(items, key_of, 8, &pool, &offloaded);
    EXPECT_EQ(parallel, serial);
  }
}

}  // namespace
}  // namespace dita
