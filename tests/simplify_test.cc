#include "geom/simplify.h"

#include <gtest/gtest.h>

#include "distance/dtw.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace dita {
namespace {

TEST(SegmentDistanceTest, KnownValues) {
  EXPECT_DOUBLE_EQ(SegmentDistance({0, 1}, {-1, 0}, {1, 0}), 1.0);  // above mid
  EXPECT_DOUBLE_EQ(SegmentDistance({2, 0}, {-1, 0}, {1, 0}), 1.0);  // beyond end
  EXPECT_DOUBLE_EQ(SegmentDistance({0, 0}, {0, 0}, {0, 0}), 0.0);   // degenerate
  EXPECT_DOUBLE_EQ(SegmentDistance({3, 4}, {0, 0}, {0, 0}), 5.0);
}

TEST(DouglasPeuckerTest, CollinearCollapsesToEndpoints) {
  Trajectory line(0, {{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}});
  Trajectory simple = SimplifyDouglasPeucker(line, 0.01);
  ASSERT_EQ(simple.size(), 2u);
  EXPECT_EQ(simple.front(), (Point{0, 0}));
  EXPECT_EQ(simple.back(), (Point{4, 0}));
  EXPECT_EQ(simple.id(), 0);
}

TEST(DouglasPeuckerTest, KeepsSignificantCorner) {
  Trajectory corner(1, {{0, 0}, {1, 0}, {2, 0}, {2, 2}});
  Trajectory simple = SimplifyDouglasPeucker(corner, 0.1);
  ASSERT_EQ(simple.size(), 3u);
  EXPECT_EQ(simple[1], (Point{2, 0}));
}

TEST(DouglasPeuckerTest, ToleranceZeroKeepsNonCollinear) {
  Trajectory zig(2, {{0, 0}, {1, 1}, {2, 0}});
  EXPECT_EQ(SimplifyDouglasPeucker(zig, 0.0).size(), 3u);
  Trajectory tiny(3, {{0, 0}, {5, 5}});
  EXPECT_EQ(SimplifyDouglasPeucker(tiny, 0.0).size(), 2u);
}

/// The error guarantee: every original point lies within tolerance of the
/// simplified polyline.
TEST(DouglasPeuckerTest, ErrorBoundHolds) {
  Rng rng(9);
  for (int iter = 0; iter < 50; ++iter) {
    Trajectory t;
    Point pos{0, 0};
    const size_t len = static_cast<size_t>(rng.UniformInt(3, 60));
    for (size_t i = 0; i < len; ++i) {
      pos.x += rng.Uniform(0, 1);
      pos.y += rng.Gaussian(0, 0.5);
      t.mutable_points().push_back(pos);
    }
    const double tolerance = rng.Uniform(0.05, 1.0);
    Trajectory simple = SimplifyDouglasPeucker(t, tolerance);
    ASSERT_GE(simple.size(), 2u);
    for (const Point& p : t.points()) {
      double best = std::numeric_limits<double>::infinity();
      for (size_t s = 0; s + 1 < simple.size(); ++s) {
        best = std::min(best, SegmentDistance(p, simple[s], simple[s + 1]));
      }
      EXPECT_LE(best, tolerance + 1e-12);
    }
  }
}

TEST(DownsampleTest, KeepsEndpointsAndBounds) {
  Trajectory t;
  for (int i = 0; i < 100; ++i) t.mutable_points().push_back({double(i), 0});
  Trajectory down = DownsampleUniform(t, 10);
  ASSERT_EQ(down.size(), 10u);
  EXPECT_EQ(down.front(), t.front());
  EXPECT_EQ(down.back(), t.back());
  // Short trajectories pass through untouched.
  EXPECT_EQ(DownsampleUniform(down, 50).size(), 10u);
  // max_points below 2 clamps to 2.
  EXPECT_EQ(DownsampleUniform(t, 1).size(), 2u);
}

TEST(SimplifyIntegrationTest, SimplifiedDataStillIndexable) {
  GeneratorConfig cfg;
  cfg.cardinality = 100;
  cfg.seed = 11;
  Dataset ds = GenerateTaxiDataset(cfg);
  Dataset simplified;
  for (const auto& t : ds.trajectories()) {
    simplified.Add(SimplifyDouglasPeucker(t, 0.0005));
  }
  EXPECT_LT(simplified.TotalPoints(), ds.TotalPoints());
  // Endpoints survive simplification (DITA's alignment anchors), so the
  // simplified dataset indexes and searches normally.
  for (size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(simplified[i].front(), ds[i].front());
    EXPECT_EQ(simplified[i].back(), ds[i].back());
    EXPECT_GE(simplified[i].size(), 2u);
  }
}

}  // namespace
}  // namespace dita
