// Cooperative cancellation, deadlines, resource budgets, and the admission
// gate. The load-bearing invariant everywhere: a query stopped mid-flight
// degrades gracefully — it returns OK with a *subset* of the unconstrained
// answer, tags QueryStats::termination / completeness, and its filter
// funnel still balances (monotone, final level == returned count).

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/admission.h"
#include "core/engine.h"
#include "workload/generator.h"

namespace dita {
namespace {

Dataset CityDataset(size_t n, uint64_t seed) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.region = MBR(Point{0, 0}, Point{1, 1});
  cfg.step = 0.01;
  cfg.avg_len = 16;
  cfg.min_len = 4;
  cfg.max_len = 50;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

DitaConfig SmallConfig() {
  DitaConfig config;
  config.build.ng = 3;
  config.build.trie.num_pivots = 3;
  config.build.trie.align_fanout = 8;
  config.build.trie.pivot_fanout = 4;
  config.build.trie.leaf_capacity = 4;
  config.distance_params.epsilon = 0.01;
  config.verify.cell_size = 0.02;
  return config;
}

std::shared_ptr<Cluster> MakeCluster(size_t workers = 4) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  return std::make_shared<Cluster>(cfg);
}

template <typename T>
bool IsSubsetOf(const std::vector<T>& sub, const std::vector<T>& super) {
  const std::set<T> all(super.begin(), super.end());
  for (const T& x : sub) {
    if (all.find(x) == all.end()) return false;
  }
  return true;
}

class CancellationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = CityDataset(200, 77);
    cluster_ = MakeCluster();
    engine_ = std::make_unique<DitaEngine>(cluster_, SmallConfig());
    ASSERT_TRUE(engine_->BuildIndex(ds_).ok());
  }

  Dataset ds_;
  std::shared_ptr<Cluster> cluster_;
  std::unique_ptr<DitaEngine> engine_;
  const double tau_ = 0.05;
};

/// An unconstrained context changes nothing: same answer as no context,
/// termination OK, completeness 1.0.
TEST_F(CancellationTest, UnconstrainedContextMatchesOracle) {
  const auto oracle = engine_->Search(ds_[3], tau_);
  ASSERT_TRUE(oracle.ok());
  QueryContext ctx;
  DitaEngine::QueryStats stats;
  const auto r = engine_->Search(ds_[3], tau_, &stats, &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, *oracle);
  EXPECT_TRUE(stats.termination.ok());
  EXPECT_DOUBLE_EQ(stats.completeness, 1.0);
  EXPECT_TRUE(stats.funnel.MonotonicallyNonIncreasing());
  EXPECT_EQ(stats.funnel.FinalSurvivors(), r->size());
}

/// Search under a tight candidate budget: partial subset of the oracle,
/// ResourceExhausted termination, balanced funnel.
TEST_F(CancellationTest, SearchSubsetUnderCandidateBudget) {
  const auto oracle = engine_->Search(ds_[3], tau_);
  ASSERT_TRUE(oracle.ok());
  ASSERT_FALSE(oracle->empty());

  QueryContext ctx;
  ResourceBudget budget;
  budget.max_candidates = 4;
  ctx.set_budget(budget);
  DitaEngine::QueryStats stats;
  const auto r = engine_->Search(ds_[3], tau_, &stats, &ctx);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(ctx.stopped());
  EXPECT_EQ(ctx.stop_cause(), QueryContext::StopCause::kCandidateBudget);
  EXPECT_EQ(stats.termination.code(), Status::Code::kResourceExhausted);
  EXPECT_LT(stats.completeness, 1.0);
  EXPECT_TRUE(IsSubsetOf(*r, *oracle));
  EXPECT_LT(r->size(), oracle->size());
  EXPECT_TRUE(stats.funnel.MonotonicallyNonIncreasing())
      << stats.funnel.ToTable();
  EXPECT_EQ(stats.funnel.FinalSurvivors(), r->size());
}

/// Search under a DP-cell budget: same degradation contract via the
/// verification charge point.
TEST_F(CancellationTest, SearchSubsetUnderDpCellBudget) {
  const auto oracle = engine_->Search(ds_[5], tau_);
  ASSERT_TRUE(oracle.ok());

  QueryContext ctx;
  ResourceBudget budget;
  budget.max_dp_cells = 64;
  ctx.set_budget(budget);
  DitaEngine::QueryStats stats;
  const auto r = engine_->Search(ds_[5], tau_, &stats, &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ctx.stop_cause(), QueryContext::StopCause::kDpCellBudget);
  EXPECT_EQ(stats.termination.code(), Status::Code::kResourceExhausted);
  EXPECT_TRUE(IsSubsetOf(*r, *oracle));
  EXPECT_TRUE(stats.funnel.MonotonicallyNonIncreasing());
  EXPECT_EQ(stats.funnel.FinalSurvivors(), r->size());
}

/// Mid-flight cancellations placed at many deterministic points: every
/// partial answer is a subset of the oracle, and the funnel balances at
/// every cut point.
TEST_F(CancellationTest, SearchSubsetUnderCancelAtEveryPoint) {
  const auto oracle = engine_->Search(ds_[9], tau_);
  ASSERT_TRUE(oracle.ok());

  for (uint64_t cancel_at : {1u, 64u, 256u, 1024u, 4096u, 16384u}) {
    QueryContext ctx;
    ctx.CancelAfterOps(cancel_at);
    DitaEngine::QueryStats stats;
    const auto r = engine_->Search(ds_[9], tau_, &stats, &ctx);
    ASSERT_TRUE(r.ok()) << "cancel_at=" << cancel_at;
    EXPECT_TRUE(IsSubsetOf(*r, *oracle)) << "cancel_at=" << cancel_at;
    if (ctx.stopped()) {
      EXPECT_EQ(stats.termination.code(), Status::Code::kCancelled);
      EXPECT_LE(stats.completeness, 1.0);
    } else {
      EXPECT_EQ(*r, *oracle);
      EXPECT_TRUE(stats.termination.ok());
    }
    EXPECT_TRUE(stats.funnel.MonotonicallyNonIncreasing())
        << "cancel_at=" << cancel_at << "\n"
        << stats.funnel.ToTable();
    EXPECT_EQ(stats.funnel.FinalSurvivors(), r->size())
        << "cancel_at=" << cancel_at;
  }
}

/// A context cancelled before the query starts returns an empty partial
/// result (completeness 0), still OK.
TEST_F(CancellationTest, PreCancelledContextReturnsEmptyPartial) {
  QueryContext ctx;
  ctx.Cancel();
  DitaEngine::QueryStats stats;
  const auto r = engine_->Search(ds_[3], tau_, &stats, &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
  EXPECT_EQ(stats.termination.code(), Status::Code::kCancelled);
  EXPECT_DOUBLE_EQ(stats.completeness, 0.0);
}

/// Virtual-time deadline: deterministic under the simulated clock — two
/// identical runs stop at the same place with the same partial answer.
TEST_F(CancellationTest, VirtualDeadlineIsDeterministic) {
  auto run = [&](std::vector<TrajectoryId>* out, DitaEngine::QueryStats* stats) {
    auto cluster = MakeCluster();
    DitaEngine engine(cluster, SmallConfig());
    ASSERT_TRUE(engine.BuildIndex(ds_).ok());
    QueryContext ctx;
    ctx.set_virtual_deadline_seconds(1e-9);
    const auto r = engine.Search(ds_[3], tau_, stats, &ctx);
    ASSERT_TRUE(r.ok());
    *out = *r;
    // The virtual deadline is observed at stage boundaries, after the search
    // stage itself ran; it stops follow-up work, not the current stage.
    EXPECT_TRUE(ctx.stopped());
    EXPECT_EQ(ctx.stop_cause(), QueryContext::StopCause::kVirtualDeadline);
    EXPECT_EQ(stats->termination.code(), Status::Code::kDeadlineExceeded);
  };
  std::vector<TrajectoryId> a, b;
  DitaEngine::QueryStats sa, sb;
  run(&a, &sa);
  run(&b, &sb);
  EXPECT_EQ(a, b);
  EXPECT_DOUBLE_EQ(sa.completeness, sb.completeness);
}

/// kNN under cancellation: the partial answer is a true prefix of the full
/// kNN set (the last fully-completed expansion round), completeness = found/k.
TEST_F(CancellationTest, KnnPartialIsPrefixOfFullAnswer) {
  const size_t k = 8;
  const auto full = engine_->KnnSearch(ds_[11], k);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->size(), k);

  for (uint64_t cancel_at : {1u, 512u, 2048u, 8192u}) {
    QueryContext ctx;
    ctx.CancelAfterOps(cancel_at);
    DitaEngine::QueryStats stats;
    const auto r = engine_->KnnSearch(ds_[11], k, 0.0, &stats, &ctx);
    ASSERT_TRUE(r.ok()) << "cancel_at=" << cancel_at;
    if (!ctx.stopped()) {
      EXPECT_EQ(*r, *full);
      continue;
    }
    EXPECT_EQ(stats.termination.code(), Status::Code::kCancelled);
    EXPECT_LE(r->size(), k);
    EXPECT_DOUBLE_EQ(stats.completeness,
                     static_cast<double>(r->size()) / static_cast<double>(k));
    // Prefix property: the i-th partial answer is the i-th full answer.
    for (size_t i = 0; i < r->size(); ++i) {
      EXPECT_EQ((*r)[i].first, (*full)[i].first)
          << "cancel_at=" << cancel_at << " i=" << i;
      EXPECT_DOUBLE_EQ((*r)[i].second, (*full)[i].second);
    }
  }
}

/// Join under budgets / cancellation: pairs are a subset of the full join,
/// termination is tagged, and the join funnel balances.
TEST_F(CancellationTest, JoinSubsetUnderBudgetAndCancel) {
  const auto full = engine_->Join(*engine_, tau_);
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full->empty());

  {
    QueryContext ctx;
    ResourceBudget budget;
    budget.max_dp_cells = 256;
    ctx.set_budget(budget);
    DitaEngine::JoinStats stats;
    const auto r = engine_->Join(*engine_, tau_, &stats, &ctx);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(ctx.stopped());
    EXPECT_EQ(stats.termination.code(), Status::Code::kResourceExhausted);
    EXPECT_LT(stats.completeness, 1.0);
    EXPECT_TRUE(IsSubsetOf(*r, *full));
    EXPECT_TRUE(stats.funnel.MonotonicallyNonIncreasing())
        << stats.funnel.ToTable();
    EXPECT_EQ(stats.funnel.FinalSurvivors(), r->size());
  }
  for (uint64_t cancel_at : {1u, 1024u, 16384u}) {
    QueryContext ctx;
    ctx.CancelAfterOps(cancel_at);
    DitaEngine::JoinStats stats;
    const auto r = engine_->Join(*engine_, tau_, &stats, &ctx);
    ASSERT_TRUE(r.ok()) << "cancel_at=" << cancel_at;
    EXPECT_TRUE(IsSubsetOf(*r, *full)) << "cancel_at=" << cancel_at;
    if (ctx.stopped()) {
      EXPECT_EQ(stats.termination.code(), Status::Code::kCancelled);
    } else {
      EXPECT_EQ(*r, *full);
    }
    EXPECT_TRUE(stats.funnel.MonotonicallyNonIncreasing());
    EXPECT_EQ(stats.funnel.FinalSurvivors(), r->size());
  }
}

/// Join with an unconstrained context still equals the full join.
TEST_F(CancellationTest, JoinUnconstrainedContextMatchesOracle) {
  const auto full = engine_->Join(*engine_, tau_);
  ASSERT_TRUE(full.ok());
  QueryContext ctx;
  DitaEngine::JoinStats stats;
  const auto r = engine_->Join(*engine_, tau_, &stats, &ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, *full);
  EXPECT_TRUE(stats.termination.ok());
  EXPECT_DOUBLE_EQ(stats.completeness, 1.0);
}

// ---------------------------------------------------------------------------
// Admission gate.

TEST(AdmissionGateTest, FastPathAdmitsUpToMaxInflight) {
  AdmissionGate gate(AdmissionGate::Options{2, 0});
  AdmissionGate::Ticket t1, t2;
  EXPECT_TRUE(gate.Admit(nullptr, &t1).ok());
  EXPECT_TRUE(gate.Admit(nullptr, &t2).ok());
  EXPECT_EQ(gate.inflight(), 2u);
  // Third query with no queue capacity is shed immediately.
  AdmissionGate::Ticket t3;
  const Status s = gate.Admit(nullptr, &t3);
  EXPECT_EQ(s.code(), Status::Code::kUnavailable);
  EXPECT_FALSE(t3.held());
  EXPECT_EQ(gate.shed(), 1u);
  t1.Release();
  EXPECT_EQ(gate.inflight(), 1u);
  EXPECT_TRUE(gate.Admit(nullptr, &t3).ok());
  EXPECT_EQ(gate.admitted(), 3u);
  EXPECT_EQ(gate.inflight_high_water(), 2u);
}

TEST(AdmissionGateTest, TicketReleasesOnDestruction) {
  AdmissionGate gate(AdmissionGate::Options{1, 0});
  {
    AdmissionGate::Ticket t;
    ASSERT_TRUE(gate.Admit(nullptr, &t).ok());
    EXPECT_EQ(gate.inflight(), 1u);
  }
  EXPECT_EQ(gate.inflight(), 0u);
}

TEST(AdmissionGateTest, CancelledContextAbandonsQueue) {
  AdmissionGate gate(AdmissionGate::Options{1, 4});
  AdmissionGate::Ticket holder;
  ASSERT_TRUE(gate.Admit(nullptr, &holder).ok());
  // A queued query whose context is already stopped leaves with its own
  // status rather than waiting forever.
  QueryContext ctx;
  ctx.Cancel();
  AdmissionGate::Ticket t;
  const Status s = gate.Admit(&ctx, &t);
  EXPECT_EQ(s.code(), Status::Code::kCancelled);
  EXPECT_FALSE(t.held());
  EXPECT_EQ(gate.inflight(), 1u);
}

TEST(AdmissionGateTest, QueuedQueryAdmittedFifoWhenSlotFrees) {
  AdmissionGate gate(AdmissionGate::Options{1, 2});
  AdmissionGate::Ticket holder;
  ASSERT_TRUE(gate.Admit(nullptr, &holder).ok());

  std::atomic<int> admitted_order{0};
  int first_pos = 0, second_pos = 0;
  std::thread q1([&] {
    AdmissionGate::Ticket t;
    EXPECT_TRUE(gate.Admit(nullptr, &t).ok());
    first_pos = ++admitted_order;
  });
  // Wait until q1 is actually enqueued so FIFO order is observable.
  while (gate.queued() < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread q2([&] {
    AdmissionGate::Ticket t;
    EXPECT_TRUE(gate.Admit(nullptr, &t).ok());
    second_pos = ++admitted_order;
  });
  while (gate.queued() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  holder.Release();
  q1.join();
  q2.join();
  EXPECT_EQ(gate.admitted(), 3u);
  EXPECT_EQ(gate.inflight(), 0u);
  EXPECT_EQ(gate.inflight_high_water(), 1u);
  EXPECT_LT(first_pos, second_pos);  // FIFO: q1 enqueued first, admitted first
}

/// Engine-level gate: concurrent queries never exceed max_inflight, and
/// every query either completes, is shed (Unavailable), or abandons the
/// queue with its own stop status.
TEST(AdmissionGateTest, EngineGateBoundsConcurrentQueries) {
  const Dataset ds = CityDataset(150, 99);
  ClusterConfig ccfg;
  ccfg.num_workers = 4;
  ccfg.execution_threads = 2;
  auto cluster = std::make_shared<Cluster>(ccfg);
  DitaConfig config = SmallConfig();
  config.serving.max_inflight_queries = 2;
  config.serving.max_queued_queries = 2;
  DitaEngine engine(cluster, config);
  ASSERT_TRUE(engine.BuildIndex(ds).ok());

  constexpr size_t kThreads = 6;
  std::atomic<size_t> ok_count{0}, shed_count{0};
  std::vector<std::thread> threads;
  for (size_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      const auto r = engine.Search(ds[i * 7], 0.05);
      if (r.ok()) {
        ++ok_count;
      } else {
        EXPECT_EQ(r.status().code(), Status::Code::kUnavailable);
        ++shed_count;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_NE(engine.admission_gate(), nullptr);
  EXPECT_LE(engine.admission_gate()->inflight_high_water(), 2u);
  EXPECT_EQ(engine.admission_gate()->inflight(), 0u);
  EXPECT_EQ(ok_count + shed_count, kThreads);
  EXPECT_GE(ok_count, 1u);
  EXPECT_EQ(engine.admission_gate()->admitted(), ok_count);
  EXPECT_EQ(engine.admission_gate()->shed(), shed_count);
}

/// The gate is off by default: no gate object, queries unaffected.
TEST(AdmissionGateTest, DisabledGateLeavesQueriesAlone) {
  const Dataset ds = CityDataset(80, 13);
  auto cluster = MakeCluster();
  DitaEngine engine(cluster, SmallConfig());
  ASSERT_TRUE(engine.BuildIndex(ds).ok());
  EXPECT_EQ(engine.admission_gate(), nullptr);
  EXPECT_TRUE(engine.Search(ds[0], 0.05).ok());
}

}  // namespace
}  // namespace dita
