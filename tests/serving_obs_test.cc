// Serving-plane observability: the always-on flight recorder (wraparound,
// concurrent writers, seqlock consistency), the per-request lifecycle
// records DitaService threads through every completion path, and the
// ServiceStats / DumpFlightRecorder rollups. The load-bearing invariant:
// every QueryResult's lifecycle phase breakdown telescopes to its total
// latency — queue + admission + cache + pin + base + delta + finalize ==
// total, on hits, sheds, and errors alike.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "obs/lifecycle.h"
#include "serving/service.h"
#include "util/query_context.h"
#include "workload/generator.h"

namespace dita {
namespace {

Dataset CityDataset(size_t n, uint64_t seed) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.region = MBR(Point{0, 0}, Point{1, 1});
  cfg.step = 0.01;
  cfg.avg_len = 16;
  cfg.min_len = 4;
  cfg.max_len = 50;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

DitaConfig SmallConfig() {
  DitaConfig config;
  config.build.ng = 3;
  config.build.trie.num_pivots = 3;
  config.build.trie.align_fanout = 8;
  config.build.trie.pivot_fanout = 4;
  config.build.trie.leaf_capacity = 4;
  config.distance_params.epsilon = 0.01;
  config.verify.cell_size = 0.02;
  return config;
}

std::shared_ptr<Cluster> MakeCluster(size_t workers = 4) {
  ClusterConfig cfg;
  cfg.num_workers = workers;
  return std::make_shared<Cluster>(cfg);
}

/// Re-ids a trajectory so insert pools never collide with base ids.
Trajectory WithId(const Trajectory& t, TrajectoryId id) {
  return Trajectory(id, t.points());
}

/// Phase telescoping tolerance: finalize is defined as the remainder, so the
/// sum differs from total only by floating-point rounding of the additions.
void ExpectTelescopes(const obs::RequestRecord& rec) {
  EXPECT_GT(rec.total_seconds, 0.0) << "request " << rec.request_id;
  EXPECT_NEAR(rec.PhaseSum(), rec.total_seconds,
              1e-12 + 1e-9 * rec.total_seconds)
      << "request " << rec.request_id;
  EXPECT_GE(rec.queue_seconds, 0.0);
  EXPECT_GE(rec.admission_seconds, 0.0);
  EXPECT_GE(rec.cache_seconds, 0.0);
  EXPECT_GE(rec.pin_seconds, 0.0);
  EXPECT_GE(rec.base_seconds, 0.0);
  EXPECT_GE(rec.delta_seconds, 0.0);
  EXPECT_GE(rec.merge_overlap_seconds, 0.0);
  EXPECT_LE(rec.merge_overlap_seconds, rec.total_seconds + 1e-12);
}

// ------------------------------------------------------------------------
// FlightRecorder unit behaviour.
// ------------------------------------------------------------------------

TEST(FlightRecorderTest, WrapsAroundKeepingTheMostRecentRecords) {
  obs::FlightRecorder rec(5);  // rounds up to 8
  EXPECT_TRUE(rec.enabled());
  EXPECT_EQ(rec.capacity(), 8u);
  EXPECT_TRUE(rec.Snapshot().empty());

  for (uint64_t i = 0; i < 100; ++i) {
    obs::RequestRecord r;
    r.request_id = i;
    r.kind = static_cast<uint8_t>(i % 3);
    r.total_seconds = static_cast<double>(i);
    rec.Record(r);
  }
  EXPECT_EQ(rec.total_recorded(), 100u);

  const std::vector<obs::RequestRecord> snap = rec.Snapshot();
  ASSERT_EQ(snap.size(), 8u);
  // Oldest-first, exactly the last capacity() tickets, payload intact.
  for (size_t i = 0; i < snap.size(); ++i) {
    EXPECT_EQ(snap[i].request_id, 92u + i);
    EXPECT_EQ(snap[i].kind, (92 + i) % 3);
    EXPECT_DOUBLE_EQ(snap[i].total_seconds, static_cast<double>(92 + i));
  }
}

TEST(FlightRecorderTest, ZeroCapacityDisablesRecording) {
  obs::FlightRecorder rec(0);
  EXPECT_FALSE(rec.enabled());
  EXPECT_EQ(rec.capacity(), 0u);
  obs::RequestRecord r;
  r.request_id = 7;
  rec.Record(r);  // must be a safe no-op
  EXPECT_EQ(rec.total_recorded(), 0u);
  EXPECT_TRUE(rec.Snapshot().empty());
}

TEST(FlightRecorderTest, ConcurrentWritersAndReadersSeeConsistentRecords) {
  // The seqlock contract under contention: a snapshot never returns a
  // torn record (mixed generations). Each writer stamps a payload that is
  // self-consistent (total_seconds mirrors request_id, epoch mirrors the
  // writer), so any mix-up is detectable.
  obs::FlightRecorder rec(64);
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 4000;
  std::atomic<bool> stop_reader{false};
  std::atomic<uint64_t> snapshots_taken{0};

  std::thread reader([&] {
    while (!stop_reader.load()) {
      const std::vector<obs::RequestRecord> snap = rec.Snapshot();
      EXPECT_LE(snap.size(), rec.capacity());
      for (const obs::RequestRecord& r : snap) {
        EXPECT_DOUBLE_EQ(r.total_seconds, static_cast<double>(r.request_id));
        EXPECT_EQ(r.epoch, r.request_id % kWriters);
      }
      snapshots_taken.fetch_add(1);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        obs::RequestRecord r;
        r.request_id = i * kWriters + static_cast<uint64_t>(w);
        r.epoch = static_cast<uint64_t>(w);
        r.total_seconds = static_cast<double>(r.request_id);
        rec.Record(r);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop_reader.store(true);
  reader.join();

  EXPECT_EQ(rec.total_recorded(), kWriters * kPerWriter);
  EXPECT_GT(snapshots_taken.load(), 0u);
  // Quiescent snapshot is full and strictly ticket-ordered.
  const std::vector<obs::RequestRecord> snap = rec.Snapshot();
  ASSERT_EQ(snap.size(), rec.capacity());
  for (size_t i = 1; i < snap.size(); ++i) {
    EXPECT_LT(snap[i - 1].request_id, snap[i].request_id);
  }
}

// ------------------------------------------------------------------------
// Lifecycle records on the serving read path.
// ------------------------------------------------------------------------

class ServingObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = CityDataset(200, 99);
    cluster_ = MakeCluster();
    config_ = SmallConfig();
    config_.serving.synchronous_merge = true;
    config_.serving.answer_cache_entries = 16;
    config_.serving.flight_recorder_entries = 64;
  }

  Dataset ds_;
  std::shared_ptr<Cluster> cluster_;
  DitaConfig config_;
};

TEST_F(ServingObsTest, PhaseBreakdownTelescopesToTotalOnEveryPath) {
  DitaService service(cluster_, config_);
  ASSERT_TRUE(service.Start(ds_).ok());

  // Unmerged inserts so queries exercise a real delta phase.
  ASSERT_TRUE(service.Insert(WithId(ds_[5], 20001)).ok());
  ASSERT_TRUE(service.Insert(WithId(ds_[6], 20002)).ok());

  QueryRequest search;
  search.kind = QueryKind::kSearch;
  search.query = ds_[5];
  search.tau = 0.05;
  auto r1 = service.Execute(search);
  ASSERT_TRUE(r1.ok());
  const obs::RequestRecord rec1 = (*r1).serving.lifecycle;
  ExpectTelescopes(rec1);
  EXPECT_EQ(rec1.kind, static_cast<uint8_t>(QueryKind::kSearch));
  EXPECT_EQ(rec1.results, (*r1).ids.size());
  EXPECT_FALSE(rec1.cache_hit());
  EXPECT_FALSE(rec1.shed());
  EXPECT_EQ(rec1.status_code, static_cast<uint8_t>(Status::Code::kOk));
  EXPECT_EQ(rec1.version, service.version());

  // Same request again: answer-cache hit, still a full telescoping record.
  auto r2 = service.Execute(search);
  ASSERT_TRUE(r2.ok());
  const obs::RequestRecord rec2 = (*r2).serving.lifecycle;
  ExpectTelescopes(rec2);
  EXPECT_TRUE(rec2.cache_hit());
  EXPECT_GT(rec2.request_id, rec1.request_id);
  EXPECT_EQ(rec2.results, rec1.results);
  // A hit never reaches the scheduler, the pin, or the engine.
  EXPECT_DOUBLE_EQ(rec2.admission_seconds, 0.0);
  EXPECT_DOUBLE_EQ(rec2.pin_seconds, 0.0);
  EXPECT_DOUBLE_EQ(rec2.base_seconds, 0.0);
  EXPECT_DOUBLE_EQ(rec2.delta_seconds, 0.0);

  QueryRequest knn;
  knn.kind = QueryKind::kKnnSearch;
  knn.query = ds_[7];
  knn.k = 5;
  auto r3 = service.Execute(knn);
  ASSERT_TRUE(r3.ok());
  ExpectTelescopes((*r3).serving.lifecycle);
  EXPECT_EQ((*r3).serving.lifecycle.kind,
            static_cast<uint8_t>(QueryKind::kKnnSearch));
  EXPECT_EQ((*r3).serving.lifecycle.results, (*r3).neighbors.size());

  QueryRequest join;
  join.kind = QueryKind::kJoin;
  join.tau = 0.02;
  auto r4 = service.Execute(join);
  ASSERT_TRUE(r4.ok());
  ExpectTelescopes((*r4).serving.lifecycle);
  EXPECT_EQ((*r4).serving.lifecycle.kind,
            static_cast<uint8_t>(QueryKind::kJoin));
  EXPECT_EQ((*r4).serving.lifecycle.results, (*r4).pairs.size());

  // Every one of those completions is also in the flight recorder, with the
  // same telescoping guarantee.
  const auto flight = service.flight_recorder().Snapshot();
  ASSERT_GE(flight.size(), 4u);
  for (const obs::RequestRecord& rec : flight) ExpectTelescopes(rec);
}

TEST_F(ServingObsTest, SubmittedQueriesCarryAsyncFlagAndQueuePhase) {
  config_.serving.scheduler_threads = 2;
  DitaService service(cluster_, config_);
  ASSERT_TRUE(service.Start(ds_).ok());

  QueryRequest req;
  req.kind = QueryKind::kSearch;
  req.query = ds_[11];
  req.tau = 0.05;
  auto fut = service.Submit(req);
  auto res = fut.get();
  ASSERT_TRUE(res.ok());
  const obs::RequestRecord rec = (*res).serving.lifecycle;
  ExpectTelescopes(rec);
  EXPECT_NE(rec.flags & obs::RequestRecord::kAsync, 0);
  // The synchronous path, by contrast, has no async flag.
  auto sync = service.Execute(req);
  ASSERT_TRUE(sync.ok());
  EXPECT_EQ((*sync).serving.lifecycle.flags & obs::RequestRecord::kAsync, 0);
}

TEST_F(ServingObsTest, ShedRequestsAreRecordedWithCauseAndCounted) {
  // One slot, one queue seat: while a join holds the slot and a search
  // waits, the next arrival is shed with Unavailable — and must still leave
  // a complete lifecycle record behind.
  config_.serving.scheduler_slots = 1;
  config_.serving.max_inflight_queries = 1;
  config_.serving.max_queued_queries = 1;
  DitaService service(cluster_, config_);
  ASSERT_TRUE(service.Start(ds_).ok());

  QueryRequest join;
  join.kind = QueryKind::kJoin;
  join.tau = 0.05;
  std::thread join_thread([&] {
    const auto r = service.Execute(join);
    EXPECT_TRUE(r.ok());
  });
  // Wait until the join actually holds its grant.
  while (service.scheduler().active() < 1) std::this_thread::yield();

  QueryRequest search;
  search.kind = QueryKind::kSearch;
  search.query = ds_[3];
  search.tau = 0.05;
  std::thread queued_thread([&] { (void)service.Execute(search); });
  while (service.scheduler().queued() < 1 &&
         service.scheduler().active() >= 1) {
    std::this_thread::yield();
  }

  // The queue seat may free up the instant the join finishes, so retry
  // until an Execute observes the full queue and sheds.
  Status shed_status = Status::OK();
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const auto r = service.Execute(search);
    if (!r.ok() && r.status().code() == Status::Code::kUnavailable) {
      shed_status = r.status();
      break;
    }
    if (service.scheduler().active() == 0 &&
        service.scheduler().queued() == 0) {
      break;  // contention window closed without a shed; stats check below
    }
  }
  join_thread.join();
  queued_thread.join();

  if (shed_status.code() == Status::Code::kUnavailable) {
    const DitaService::ServiceStats stats = service.Stats();
    EXPECT_GE(stats.shed, 1u);
    EXPECT_GE(service.scheduler().shed(), 1u);
    bool found = false;
    for (const obs::RequestRecord& rec : service.flight_recorder().Snapshot()) {
      if (!rec.shed()) continue;
      found = true;
      EXPECT_EQ(rec.status_code,
                static_cast<uint8_t>(Status::Code::kUnavailable));
      EXPECT_EQ(rec.results, 0u);
      ExpectTelescopes(rec);
    }
    EXPECT_TRUE(found) << "shed request missing from the flight recorder";
  }
}

TEST_F(ServingObsTest, StatsExplainAndDumpExposeTheRollup) {
  DitaService service(cluster_, config_);
  ASSERT_TRUE(service.Start(ds_).ok());

  QueryRequest search;
  search.kind = QueryKind::kSearch;
  search.query = ds_[2];
  search.tau = 0.05;
  ASSERT_TRUE(service.Execute(search).ok());
  ASSERT_TRUE(service.Execute(search).ok());  // cache hit
  QueryRequest knn;
  knn.kind = QueryKind::kKnnSearch;
  knn.query = ds_[4];
  knn.k = 3;
  ASSERT_TRUE(service.Execute(knn).ok());
  ASSERT_TRUE(service.Insert(WithId(ds_[8], 30001)).ok());
  ASSERT_TRUE(service.ForceMerge().ok());

  const DitaService::ServiceStats stats = service.Stats();
  EXPECT_GT(stats.uptime_seconds, 0.0);
  EXPECT_EQ(stats.queries_search, 2u);
  EXPECT_EQ(stats.queries_knn, 1u);
  EXPECT_EQ(stats.queries_join, 0u);
  EXPECT_EQ(stats.queries, 3u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.merges, 1u);
  EXPECT_GE(stats.merge_busy_seconds, 0.0);
  EXPECT_EQ(stats.recorded, 3u);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_EQ(stats.latency_search.count, 2u);
  EXPECT_EQ(stats.latency_knn.count, 1u);
  // Latency histograms share one bucketing shape, so kinds merge.
  obs::Histogram::Snapshot all = stats.latency_search;
  ASSERT_TRUE(all.MergeFrom(stats.latency_knn));
  ASSERT_TRUE(all.MergeFrom(stats.latency_join));
  EXPECT_EQ(all.count, 3u);

  const std::string explain = service.ExplainService();
  EXPECT_NE(explain.find("p99"), std::string::npos);
  EXPECT_NE(explain.find("search"), std::string::npos);
  EXPECT_NE(explain.find("shed"), std::string::npos);

  const std::string json = service.DumpFlightRecorder();
  for (const char* key :
       {"\"service\"", "\"requests\"", "\"uptime_seconds\"", "\"latency\"",
        "\"p999\"", "\"kind\"", "\"search\"", "\"stop_cause\"",
        "\"merge_overlap_seconds\"", "\"total_seconds\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  // Crude structural check: braces balance.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST_F(ServingObsTest, CoalescedBatchMembersTelescopeIndividually) {
  config_.serving.max_batch_size = 4;
  config_.serving.scheduler_threads = 1;  // one executor => drains coalesce
  DitaService service(cluster_, config_);
  ASSERT_TRUE(service.Start(ds_).ok());
  ASSERT_TRUE(service.Insert(WithId(ds_[9], 40001)).ok());

  std::vector<std::future<Result<QueryResult>>> futures;
  for (size_t i = 0; i < 8; ++i) {
    QueryRequest req;
    req.kind = QueryKind::kSearch;
    req.query = ds_[i * 13];
    req.tau = 0.05;
    futures.push_back(service.Submit(req));
  }
  bool saw_coalesced = false;
  for (auto& f : futures) {
    auto res = f.get();
    ASSERT_TRUE(res.ok());
    const obs::RequestRecord rec = (*res).serving.lifecycle;
    ExpectTelescopes(rec);
    EXPECT_NE(rec.flags & obs::RequestRecord::kAsync, 0);
    EXPECT_EQ(rec.results, (*res).ids.size());
    saw_coalesced = saw_coalesced || rec.coalesced();
  }
  // With one executor and 8 queued searches, at least one batch coalesced
  // (cache misses guaranteed: the queries are distinct).
  if (service.coalesced_batches() > 0) {
    EXPECT_TRUE(saw_coalesced);
  }
}

}  // namespace
}  // namespace dita
