#include "workload/loaders.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace dita {
namespace {

std::string WriteTemp(const char* name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path);
  out << content;
  return path;
}

TEST(GeoLifeLoaderTest, ParsesFixtureFile) {
  const std::string plt =
      "Geolife trajectory\n"
      "WGS 84\n"
      "Altitude is in Feet\n"
      "Reserved 3\n"
      "0,2,255,My Track,0,0,2,8421376\n"
      "0\n"
      "39.906631,116.385564,0,492,39925.44,2009-04-22,10:34:31\n"
      "39.906554,116.385625,0,492,39925.44,2009-04-22,10:34:36\n"
      "39.906436,116.385684,0,492,39925.44,2009-04-22,10:34:41\n";
  const std::string path = WriteTemp("fixture.plt", plt);
  auto t = LoadGeoLifePlt(path, 7);
  ASSERT_TRUE(t.ok()) << t.status().ToString();
  EXPECT_EQ(t->id(), 7);
  ASSERT_EQ(t->size(), 3u);
  // Points are (lon, lat).
  EXPECT_DOUBLE_EQ((*t)[0].x, 116.385564);
  EXPECT_DOUBLE_EQ((*t)[0].y, 39.906631);
  std::remove(path.c_str());
}

TEST(GeoLifeLoaderTest, RejectsGarbage) {
  EXPECT_FALSE(LoadGeoLifePlt("/nonexistent.plt", 0).ok());
  const std::string path = WriteTemp("short.plt", "only\nthree\nlines\n");
  EXPECT_FALSE(LoadGeoLifePlt(path, 0).ok());
  std::remove(path.c_str());
  const std::string bad = WriteTemp(
      "bad.plt", "h\nh\nh\nh\nh\nh\nnot_a_number,116.3,0,0,0,d,t\n1,2,0,0,0,d,t\n");
  EXPECT_FALSE(LoadGeoLifePlt(bad, 0).ok());
  std::remove(bad.c_str());
}

TEST(TDriveLoaderTest, ParsesAndChunks) {
  std::string rows;
  for (int i = 0; i < 10; ++i) {
    rows += StrFormat("368,2008-02-02 13:3%d:44,116.4%d,39.9%d\n", i, i, i);
  }
  const std::string path = WriteTemp("taxi368.txt", rows);
  auto whole = LoadTDriveFile(path, 100, 0);
  ASSERT_TRUE(whole.ok());
  ASSERT_EQ(whole->size(), 1u);
  EXPECT_EQ((*whole)[0].id(), 100);
  EXPECT_EQ((*whole)[0].size(), 10u);
  EXPECT_DOUBLE_EQ((*whole)[0][3].x, 116.43);

  auto chunked = LoadTDriveFile(path, 0, 4);
  ASSERT_TRUE(chunked.ok());
  // 10 fixes in chunks of 4: 4 + 4 + 2.
  ASSERT_EQ(chunked->size(), 3u);
  EXPECT_EQ((*chunked)[2].size(), 2u);
  EXPECT_EQ((*chunked)[2].id(), 2);
  std::remove(path.c_str());
}

TEST(TDriveLoaderTest, RejectsMalformedRows) {
  const std::string path =
      WriteTemp("badtaxi.txt", "368,2008-02-02 13:30:44,116.4\n");
  EXPECT_FALSE(LoadTDriveFile(path, 0).ok());
  std::remove(path.c_str());
  const std::string nan =
      WriteTemp("nantaxi.txt", "368,2008-02-02 13:30:44,abc,39.9\n");
  EXPECT_FALSE(LoadTDriveFile(nan, 0).ok());
  std::remove(nan.c_str());
}

}  // namespace
}  // namespace dita
