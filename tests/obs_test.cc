// Tests for the observability subsystem: metrics sharding, tracer
// determinism, exporter schema, and the end-to-end guarantees the rest of
// the repo relies on — byte-identical traces across identical runs (even
// under fault injection) and allocation-free steady-state metric updates.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/engine.h"
#include "obs/export.h"
#include "obs/funnel.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "workload/generator.h"

// ---------------------------------------------------------------------------
// Allocation counting: the steady-state test asserts that hot-path metric
// updates perform zero heap allocations. Counting via replaced global
// operator new is exact and works under the sanitizers too.
// ---------------------------------------------------------------------------

// GCC pairs the replaced operator delete's free() against the *default*
// operator new when inlining system headers; our new/delete both go through
// malloc/free, so the mismatch warning is a false positive.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

namespace {
std::atomic<uint64_t> g_heap_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace dita {
namespace {

// ---------------------------------------------------------------------------
// FilterFunnel
// ---------------------------------------------------------------------------

TEST(FunnelTest, MonotonicityAndFinalSurvivors) {
  obs::FilterFunnel funnel;
  EXPECT_TRUE(funnel.MonotonicallyNonIncreasing());
  EXPECT_EQ(funnel.FinalSurvivors(), 0u);

  funnel.AddLevel("table", 1000);
  funnel.AddLevel("global index", 400);
  funnel.AddLevel("trie", 50);
  funnel.AddLevel("verify", 7);
  EXPECT_TRUE(funnel.MonotonicallyNonIncreasing());
  EXPECT_EQ(funnel.FinalSurvivors(), 7u);

  funnel.AddLevel("broken", 8);  // grows: not a funnel any more
  EXPECT_FALSE(funnel.MonotonicallyNonIncreasing());
}

TEST(FunnelTest, TableAndJsonRenderAllLevels) {
  obs::FilterFunnel funnel;
  funnel.AddLevel("table", 100);
  funnel.AddLevel("verify", 4);
  const std::string table = funnel.ToTable();
  EXPECT_NE(table.find("table"), std::string::npos);
  EXPECT_NE(table.find("verify"), std::string::npos);
  EXPECT_NE(table.find("100"), std::string::npos);
  const std::string json = funnel.ToJson();
  EXPECT_NE(json.find("\"table\""), std::string::npos);
  EXPECT_NE(json.find("4"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

TEST(ObsMetricsTest, CounterSumsAcrossThreads) {
  obs::MetricsRegistry registry;
  obs::Counter* counter = registry.GetCounter("test.hammer");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(ObsMetricsTest, HistogramBucketsAndConcurrentObserve) {
  obs::MetricsRegistry registry;
  obs::Histogram* h =
      registry.GetHistogram("test.hist", obs::Histogram::Options{1.0, 64.0, 1});
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([h] {
      for (int i = 0; i < 1000; ++i) {
        h->Observe(0.5);  // underflow: bucket 0
        h->Observe(5.0);  // a regular bucket
        h->Observe(1e6);  // overflow: last bucket
      }
    });
  }
  for (auto& th : threads) th.join();
  const obs::Histogram::Snapshot snap = h->Snap();
  ASSERT_EQ(snap.counts.size(), h->bucket_count());
  EXPECT_EQ(snap.counts.front(), 4000u);
  EXPECT_EQ(snap.counts.back(), 4000u);
  EXPECT_EQ(snap.counts[h->BucketIndex(5.0)], 4000u);
  EXPECT_EQ(snap.count, 12000u);
  // 5.0's bucket must bracket 5.0 exactly.
  EXPECT_LE(snap.BucketLowerBound(h->BucketIndex(5.0)), 5.0);
  EXPECT_GT(snap.BucketUpperBound(h->BucketIndex(5.0)), 5.0);
}

TEST(ObsMetricsTest, HistogramBucketBoundaryEdges) {
  const obs::Histogram h(obs::Histogram::Options{1.0, 1024.0, 3});
  const obs::Histogram::Snapshot snap = h.Snap();
  const size_t n = h.bucket_count();
  // Degenerate inputs all land in the underflow bucket.
  EXPECT_EQ(h.BucketIndex(0.0), 0u);
  EXPECT_EQ(h.BucketIndex(-3.0), 0u);
  EXPECT_EQ(h.BucketIndex(std::numeric_limits<double>::quiet_NaN()), 0u);
  EXPECT_EQ(h.BucketIndex(std::nextafter(1.0, 0.0)), 0u);
  // min itself is the first regular bucket's lower bound; max opens the
  // overflow bucket; +inf is overflow too.
  EXPECT_EQ(h.BucketIndex(1.0), 1u);
  EXPECT_EQ(h.BucketIndex(1024.0), n - 1);
  EXPECT_EQ(h.BucketIndex(std::nextafter(1024.0, 0.0)), n - 2);
  EXPECT_EQ(h.BucketIndex(std::numeric_limits<double>::infinity()), n - 1);
  // Every regular bucket: bounds are exact — a value AT the lower bound
  // belongs to the bucket, the value just below it to the previous one, and
  // the value just below the upper bound still to the bucket. Relative
  // width is at most 2^-sub_bucket_bits.
  for (size_t i = 1; i + 1 < n; ++i) {
    const double lo = snap.BucketLowerBound(i);
    const double hi = snap.BucketUpperBound(i);
    ASSERT_LT(lo, hi);
    EXPECT_EQ(h.BucketIndex(lo), i);
    EXPECT_EQ(h.BucketIndex(std::nextafter(lo, 0.0)), i - 1);
    EXPECT_EQ(h.BucketIndex(std::nextafter(hi, 0.0)), i);
    EXPECT_LE((hi - lo) / lo, 1.0 / 8 + 1e-12);
  }
  // Buckets tile [min, max) with no gaps.
  for (size_t i = 1; i + 2 < n; ++i) {
    EXPECT_EQ(snap.BucketUpperBound(i), snap.BucketLowerBound(i + 1));
  }
  EXPECT_EQ(snap.BucketLowerBound(0), 0.0);
  EXPECT_EQ(snap.BucketUpperBound(n - 1),
            std::numeric_limits<double>::infinity());
}

TEST(ObsMetricsTest, HistogramQuantileBoundsMatchSortedOracle) {
  // Randomized oracle: the exact sorted-sample quantile must lie inside
  // [QuantileLowerBound(q), QuantileUpperBound(q)] for every q.
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> log_value(-6.0, 3.0);
  obs::Histogram h(obs::LatencyOptions());
  std::vector<double> samples;
  constexpr size_t kSamples = 5000;
  samples.reserve(kSamples);
  for (size_t i = 0; i < kSamples; ++i) {
    const double v = std::pow(10.0, log_value(rng));
    samples.push_back(v);
    h.Observe(v);
  }
  std::sort(samples.begin(), samples.end());
  const obs::Histogram::Snapshot snap = h.Snap();
  ASSERT_EQ(snap.count, kSamples);
  for (const double q :
       {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0}) {
    const size_t rank = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(q * static_cast<double>(kSamples))));
    const double oracle = samples[rank - 1];
    const double lo = snap.QuantileLowerBound(q);
    const double hi = snap.QuantileUpperBound(q);
    EXPECT_LE(lo, oracle) << "q=" << q;
    EXPECT_GE(hi, oracle) << "q=" << q;
    // LatencyOptions: 2^4 sub-buckets -> bounds within 6.25% relative error
    // (for in-range values).
    EXPECT_LE((hi - lo) / lo, 1.0 / 16 + 1e-12) << "q=" << q;
  }
}

TEST(ObsMetricsTest, HistogramSnapshotsMergeExactly) {
  std::mt19937_64 rng(7);
  std::uniform_real_distribution<double> log_value(-5.0, 2.0);
  obs::Histogram all(obs::LatencyOptions());
  obs::Histogram part_a(obs::LatencyOptions());
  obs::Histogram part_b(obs::LatencyOptions());
  for (int i = 0; i < 4000; ++i) {
    const double v = std::pow(10.0, log_value(rng));
    all.Observe(v);
    (i % 2 == 0 ? part_a : part_b).Observe(v);
  }
  obs::Histogram::Snapshot merged = part_a.Snap();
  ASSERT_TRUE(merged.MergeFrom(part_b.Snap()));
  const obs::Histogram::Snapshot expect = all.Snap();
  // Merging shards is lossless: bucket-wise identical to one histogram that
  // saw every sample, so quantile bounds agree exactly too.
  EXPECT_EQ(merged.count, expect.count);
  EXPECT_EQ(merged.counts, expect.counts);
  // Bucket counts merge exactly; the sum is a float accumulation whose
  // rounding depends on addition order, so compare it to relative epsilon.
  EXPECT_NEAR(merged.sum, expect.sum, 1e-9 * expect.sum);
  for (const double q : {0.5, 0.95, 0.99, 0.999}) {
    EXPECT_EQ(merged.QuantileUpperBound(q), expect.QuantileUpperBound(q));
    EXPECT_EQ(merged.QuantileLowerBound(q), expect.QuantileLowerBound(q));
  }
  // Shape mismatches refuse to merge rather than corrupt.
  obs::Histogram other(obs::CountOptions());
  obs::Histogram::Snapshot incompatible = other.Snap();
  EXPECT_FALSE(incompatible.MergeFrom(expect));
  EXPECT_FALSE(merged.MergeFrom(incompatible));
}

TEST(ObsMetricsTest, RegistryReturnsStablePointersAndOrderedSnapshot) {
  obs::MetricsRegistry registry;
  obs::Counter* b = registry.GetCounter("b.metric");
  obs::Counter* a = registry.GetCounter("a.metric");
  EXPECT_EQ(registry.GetCounter("b.metric"), b);  // same name, same object
  a->Add(1);
  b->Add(2);
  registry.GetGauge("g.metric")->Set(-7);
  const obs::MetricsRegistry::Snapshot snap = registry.Snap();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.metric");  // name-ordered
  EXPECT_EQ(snap.counters[1].first, "b.metric");
  EXPECT_EQ(snap.counters[1].second, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -7);
  EXPECT_EQ(registry.metric_count(), 3u);  // 2 counters + 1 gauge
}

TEST(ObsMetricsTest, NullHandlesAreInert) {
  obs::CounterHandle counter;          // disabled: no registry
  obs::HistogramHandle histogram;
  counter.Increment();
  counter.Add(100);
  histogram.Observe(3.5);
  EXPECT_FALSE(counter);
  EXPECT_FALSE(histogram);

  obs::MetricsRegistry registry;
  obs::CounterHandle live(&registry, "live.counter");
  live.Add(5);
  EXPECT_TRUE(live);
  EXPECT_EQ(registry.GetCounter("live.counter")->Value(), 5u);
}

TEST(ObsMetricsTest, SteadyStateIncrementsDoNotAllocate) {
  obs::MetricsRegistry registry;
  obs::CounterHandle counter(&registry, "steady.counter");
  obs::HistogramHandle histogram(&registry, "steady.hist",
                                 obs::CountOptions());
  // Warm-up: touch every code path once (registration already happened).
  counter.Add(1);
  histogram.Observe(3.0);
  const size_t metrics_before = registry.metric_count();

  const uint64_t allocs_before =
      g_heap_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 100000; ++i) {
    counter.Increment();
    counter.Add(3);
    histogram.Observe(static_cast<double>(i & 1023));
  }
  const uint64_t allocs_after =
      g_heap_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(allocs_after, allocs_before)
      << "hot-path metric updates must not touch the heap";
  EXPECT_EQ(registry.metric_count(), metrics_before)
      << "steady-state updates must not register new metrics";
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

TEST(ObsTracerTest, SpansNestOnDeterministicTicks) {
  obs::Tracer tracer;
  const uint64_t outer = tracer.BeginSpan("outer");
  const uint64_t inner = tracer.BeginSpan("inner");
  tracer.AddArg(inner, "items", 42);
  tracer.EndSpan(inner);
  tracer.Instant("marker");
  tracer.EndSpan(outer);

  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "outer");
  EXPECT_EQ(events[1].name, "inner");
  EXPECT_EQ(events[2].name, "marker");
  // Ticks are assigned in process order: outer begins before inner, inner
  // ends before outer.
  EXPECT_LT(events[0].begin, events[1].begin);
  EXPECT_LT(events[1].end, events[0].end);
  EXPECT_TRUE(events[0].closed);
  EXPECT_TRUE(events[1].closed);
  // The instant is a closed zero-length event.
  EXPECT_EQ(events[2].begin, events[2].end);
  ASSERT_EQ(events[1].args.size(), 1u);
  EXPECT_EQ(events[1].args[0].first, "items");
  EXPECT_EQ(events[1].args[0].second, 42u);
}

TEST(ObsTracerTest, ScopedLaneRoutesSpansToWorkerLanes) {
  obs::Tracer tracer;
  EXPECT_EQ(obs::Tracer::CurrentLane(), obs::kDriverLane);
  {
    obs::Tracer::ScopedLane lane(obs::WorkerLane(3));
    EXPECT_EQ(obs::Tracer::CurrentLane(), obs::WorkerLane(3));
    const uint64_t id = tracer.BeginSpan("on-worker");
    tracer.EndSpan(id);
  }
  EXPECT_EQ(obs::Tracer::CurrentLane(), obs::kDriverLane);
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].lane, obs::WorkerLane(3));
}

TEST(ObsTracerTest, ClearRestartsTheTickClock) {
  obs::Tracer tracer;
  tracer.EndSpan(tracer.BeginSpan("a"));
  tracer.Clear();
  EXPECT_EQ(tracer.span_count(), 0u);
  tracer.EndSpan(tracer.BeginSpan("b"));
  const auto events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].begin, 0u);  // ticks restarted
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

TEST(ObsExportTest, ChromeTraceValidatesAndContainsMetadata) {
  obs::Tracer tracer;
  const uint64_t id = tracer.BeginSpan("query");
  {
    obs::Tracer::ScopedLane lane(obs::WorkerLane(0));
    obs::SpanGuard task(&tracer, "task");
    task.Arg("task", 0);
  }
  tracer.AddArg(id, "results", 3);
  tracer.EndSpan(id);

  const std::string json = obs::ToChromeTraceJson(tracer);
  EXPECT_TRUE(obs::ValidateChromeTraceJson(json).ok())
      << obs::ValidateChromeTraceJson(json).ToString();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"driver\""), std::string::npos);
  EXPECT_NE(json.find("\"worker 0\""), std::string::npos);
  EXPECT_NE(json.find("\"query\""), std::string::npos);
}

TEST(ObsExportTest, ValidatorRejectsMalformedDocuments) {
  EXPECT_FALSE(obs::ValidateChromeTraceJson("").ok());
  EXPECT_FALSE(obs::ValidateChromeTraceJson("{}").ok());
  EXPECT_FALSE(obs::ValidateChromeTraceJson("{\"traceEvents\": 3}").ok());
  // An event missing "ph" must be rejected.
  EXPECT_FALSE(obs::ValidateChromeTraceJson(
                   "{\"traceEvents\": [{\"name\": \"x\", \"pid\": 0, "
                   "\"tid\": 0, \"ts\": 0}]}")
                   .ok());
  // A minimal well-formed document passes.
  EXPECT_TRUE(obs::ValidateChromeTraceJson(
                  "{\"traceEvents\": [{\"name\": \"x\", \"ph\": \"X\", "
                  "\"pid\": 0, \"tid\": 0, \"ts\": 0, \"dur\": 1}]}")
                  .ok());
}

TEST(ObsExportTest, MetricsJsonListsAllSections) {
  obs::MetricsRegistry registry;
  registry.GetCounter("c.one")->Add(11);
  registry.GetGauge("g.one")->Set(-3);
  registry.GetHistogram("h.one", {1.0, 2.0})->Observe(1.5);
  const std::string json = obs::MetricsToJson(registry);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"c.one\""), std::string::npos);
  EXPECT_NE(json.find("11"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("-3"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"h.one\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end: engine + cluster under tracing
// ---------------------------------------------------------------------------

Dataset ObsDataset(size_t n = 300, uint64_t seed = 51) {
  GeneratorConfig cfg;
  cfg.cardinality = n;
  cfg.region = MBR(Point{0, 0}, Point{1, 1});
  cfg.step = 0.01;
  cfg.avg_len = 16;
  cfg.min_len = 4;
  cfg.max_len = 50;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

DitaConfig ObsConfig() {
  DitaConfig config;
  config.build.ng = 3;
  config.build.trie.num_pivots = 3;
  config.build.trie.align_fanout = 8;
  config.build.trie.pivot_fanout = 4;
  config.build.trie.leaf_capacity = 4;
  config.distance = DistanceType::kDTW;
  config.verify.cell_size = 0.02;
  config.enable_tracing = true;
  config.enable_metrics = true;
  return config;
}

/// Builds an index and runs a batch of searches under fault injection,
/// returning the exported Chrome trace. Everything is seeded and search
/// control flow is fully deterministic (injected faults are pure functions
/// of (seed, stage, task, attempt); span ticks are logical), so two calls
/// must produce byte-identical output. Joins are deliberately excluded:
/// this plan has straggler_prob > 0, and speculative backups trigger on
/// *measured* straggler runtimes, so a join's task structure — and
/// therefore its trace — could differ between runs. (The planner's Delta,
/// §6.2, is itself deterministic: sampled DP work x a fixed per-cell cost.)
std::string RunTracedSearchWorkload() {
  ClusterConfig ccfg;
  ccfg.num_workers = 4;
  auto cluster = std::make_shared<Cluster>(ccfg);

  FaultPlan plan;
  plan.seed = 7;
  plan.transient_failure_prob = 0.2;
  plan.crash_worker = 2;
  plan.crash_at_stage = 1;
  plan.straggler_prob = 0.3;
  cluster->InjectFaults(plan);

  DitaEngine engine(cluster, ObsConfig());
  EXPECT_TRUE(engine.BuildIndex(ObsDataset()).ok());

  const Dataset queries = ObsDataset(5, 99);
  for (size_t i = 0; i < queries.size(); ++i) {
    DitaEngine::QueryStats stats;
    EXPECT_TRUE(engine.Search(queries[i], 0.05, &stats).ok());
  }
  return obs::ToChromeTraceJson(*cluster->tracer());
}

TEST(ObsEndToEndTest, IdenticalRunsExportByteIdenticalTraces) {
  const std::string first = RunTracedSearchWorkload();
  const std::string second = RunTracedSearchWorkload();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second)
      << "trace export must be deterministic across identical runs";
  EXPECT_TRUE(obs::ValidateChromeTraceJson(first).ok());
}

TEST(ObsEndToEndTest, JoinTraceIsWellFormedUnderFaults) {
  ClusterConfig ccfg;
  ccfg.num_workers = 4;
  auto cluster = std::make_shared<Cluster>(ccfg);
  FaultPlan plan;
  plan.seed = 11;
  plan.transient_failure_prob = 0.2;
  cluster->InjectFaults(plan);
  DitaEngine engine(cluster, ObsConfig());
  ASSERT_TRUE(engine.BuildIndex(ObsDataset()).ok());
  DitaEngine::JoinStats stats;
  ASSERT_TRUE(engine.Join(engine, 0.01, &stats).ok());
  const std::string json = obs::ToChromeTraceJson(*cluster->tracer());
  EXPECT_TRUE(obs::ValidateChromeTraceJson(json).ok());
  EXPECT_NE(json.find("\"join\""), std::string::npos);
  EXPECT_NE(json.find("\"join.plan\""), std::string::npos);
}

TEST(ObsEndToEndTest, TraceContainsNestedQueryStageTaskVerifySpans) {
  ClusterConfig ccfg;
  ccfg.num_workers = 4;
  auto cluster = std::make_shared<Cluster>(ccfg);
  DitaEngine engine(cluster, ObsConfig());
  ASSERT_TRUE(engine.BuildIndex(ObsDataset()).ok());
  const Dataset queries = ObsDataset(1, 99);
  ASSERT_TRUE(engine.Search(queries[0], 0.05).ok());

  const auto events = cluster->tracer()->Events();
  // Index-build stages also emit stage/task spans, so anchor on the query
  // span and only consider spans nested inside it by tick containment.
  const obs::Tracer::Event* query = nullptr;
  for (const auto& e : events) {
    if (e.name == "query") {
      query = &e;
      break;
    }
  }
  ASSERT_NE(query, nullptr);
  auto inside = [](const obs::Tracer::Event& outer,
                   const obs::Tracer::Event& e) {
    return e.begin > outer.begin && e.end < outer.end;
  };
  const obs::Tracer::Event* verify = nullptr;
  for (const auto& e : events) {
    if (e.name == "verify" && inside(*query, e)) {
      verify = &e;
      break;
    }
  }
  ASSERT_NE(verify, nullptr);
  // The task span owning this verify: same lane, containing ticks.
  const obs::Tracer::Event* task = nullptr;
  for (const auto& e : events) {
    if (e.name == "task" && e.lane == verify->lane && inside(e, *verify)) {
      task = &e;
      break;
    }
  }
  ASSERT_NE(task, nullptr);
  // The stage span containing that task (stages live on the driver lane).
  const obs::Tracer::Event* stage = nullptr;
  for (const auto& e : events) {
    if (e.name.rfind("stage", 0) == 0 && inside(*query, e) &&
        inside(e, *task)) {
      stage = &e;
      break;
    }
  }
  ASSERT_NE(stage, nullptr);
  // Tick containment: query ⊃ stage ⊃ task ⊃ verify.
  EXPECT_LT(query->begin, stage->begin);
  EXPECT_LT(stage->begin, task->begin);
  EXPECT_LT(task->begin, verify->begin);
  EXPECT_LE(verify->end, task->end);
  EXPECT_LE(task->end, stage->end);
  EXPECT_LE(stage->end, query->end);
  // Task and verify run on a worker lane, the query on the driver lane.
  EXPECT_EQ(query->lane, obs::kDriverLane);
  EXPECT_GT(task->lane, obs::kDriverLane);
  EXPECT_EQ(verify->lane, task->lane);
}

TEST(ObsEndToEndTest, SearchFunnelIsMonotoneAndEndsAtResults) {
  ClusterConfig ccfg;
  ccfg.num_workers = 4;
  auto cluster = std::make_shared<Cluster>(ccfg);
  DitaEngine engine(cluster, ObsConfig());
  ASSERT_TRUE(engine.BuildIndex(ObsDataset()).ok());

  const Dataset queries = ObsDataset(5, 123);
  for (size_t i = 0; i < queries.size(); ++i) {
    DitaEngine::QueryStats stats;
    auto r = engine.Search(queries[i], 0.05, &stats);
    ASSERT_TRUE(r.ok());
    ASSERT_FALSE(stats.funnel.empty());
    EXPECT_TRUE(stats.funnel.MonotonicallyNonIncreasing())
        << stats.funnel.ToTable();
    EXPECT_EQ(stats.funnel.FinalSurvivors(), r->size());
    EXPECT_EQ(stats.funnel.FinalSurvivors(), stats.results);
    // The funnel starts at the full table.
    EXPECT_EQ(stats.funnel.levels.front().survivors, engine.index_stats().num_trajectories);
  }
}

TEST(ObsEndToEndTest, JoinFunnelIsMonotoneAndEndsAtResultPairs) {
  ClusterConfig ccfg;
  ccfg.num_workers = 4;
  auto cluster = std::make_shared<Cluster>(ccfg);
  DitaEngine engine(cluster, ObsConfig());
  ASSERT_TRUE(engine.BuildIndex(ObsDataset()).ok());

  DitaEngine::JoinStats stats;
  auto r = engine.Join(engine, 0.01, &stats);
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(stats.funnel.empty());
  EXPECT_TRUE(stats.funnel.MonotonicallyNonIncreasing()) << stats.funnel.ToTable();
  EXPECT_EQ(stats.funnel.FinalSurvivors(), r->size());
  EXPECT_EQ(stats.funnel.FinalSurvivors(), stats.result_pairs);
  // Verification counters must be populated and self-consistent.
  EXPECT_EQ(stats.verify.pairs, stats.candidate_pairs);
  EXPECT_EQ(stats.verify.accepted, stats.result_pairs);
}

TEST(ObsEndToEndTest, MetricsMatchQueryStatsCounters) {
  ClusterConfig ccfg;
  ccfg.num_workers = 4;
  auto cluster = std::make_shared<Cluster>(ccfg);
  DitaEngine engine(cluster, ObsConfig());
  ASSERT_TRUE(engine.BuildIndex(ObsDataset()).ok());

  obs::MetricsRegistry* registry = cluster->metrics();
  ASSERT_NE(registry, nullptr);
  const uint64_t pairs_before = registry->GetCounter("verify.pairs")->Value();

  const Dataset queries = ObsDataset(3, 7);
  size_t total_candidates = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    DitaEngine::QueryStats stats;
    ASSERT_TRUE(engine.Search(queries[i], 0.05, &stats).ok());
    total_candidates += stats.verify.pairs;
  }
  EXPECT_EQ(registry->GetCounter("verify.pairs")->Value() - pairs_before,
            total_candidates);
  EXPECT_GT(registry->GetCounter("cluster.stages_run")->Value(), 0u);
}

TEST(ObsEndToEndTest, DisabledObservabilityKeepsClusterHandlesNull) {
  ClusterConfig ccfg;
  ccfg.num_workers = 2;
  auto cluster = std::make_shared<Cluster>(ccfg);
  DitaConfig config = ObsConfig();
  config.enable_tracing = false;
  config.enable_metrics = false;
  DitaEngine engine(cluster, config);
  ASSERT_TRUE(engine.BuildIndex(ObsDataset(100)).ok());
  const Dataset queries = ObsDataset(1, 3);
  DitaEngine::QueryStats stats;
  ASSERT_TRUE(engine.Search(queries[0], 0.05, &stats).ok());
  EXPECT_EQ(cluster->tracer(), nullptr);
  EXPECT_EQ(cluster->metrics(), nullptr);
  // Stats-driven observability still works without the subsystem.
  EXPECT_TRUE(stats.funnel.MonotonicallyNonIncreasing());
  EXPECT_EQ(stats.funnel.FinalSurvivors(), stats.results);
}

}  // namespace
}  // namespace dita
