#include <gtest/gtest.h>

#include "sql/engine.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "util/string_util.h"
#include "workload/generator.h"

namespace dita {
namespace {

TEST(LexerTest, TokenizesStatement) {
  auto tokens = LexSql("SELECT * FROM t WHERE dtw(t, [(1,1),(2,-2.5)]) <= 0.05");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens->front().upper, "SELECT");
  EXPECT_EQ(tokens->back().kind, Token::Kind::kEnd);
  // -2.5 lexes as a single negative number.
  bool found = false;
  for (const auto& t : *tokens) {
    if (t.kind == Token::Kind::kNumber && t.number == -2.5) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(LexerTest, RejectsBadCharacters) {
  EXPECT_FALSE(LexSql("SELECT # FROM t").ok());
}

TEST(ParserTest, ParsesSearchWithLiteral) {
  auto stmt = ParseSql(
      "SELECT * FROM taxis WHERE DTW(taxis, [(1,1),(2,2),(3,3)]) <= 0.004;");
  ASSERT_TRUE(stmt.ok());
  const auto* search = std::get_if<SearchStatement>(&*stmt);
  ASSERT_NE(search, nullptr);
  EXPECT_EQ(search->table, "taxis");
  EXPECT_EQ(search->function, "DTW");
  EXPECT_DOUBLE_EQ(search->threshold, 0.004);
  const auto* lit = std::get_if<TrajectoryLiteral>(&search->query);
  ASSERT_NE(lit, nullptr);
  EXPECT_EQ(lit->points.size(), 3u);
  EXPECT_EQ(lit->points[1], (Point{2, 2}));
}

TEST(ParserTest, ParsesSearchWithParam) {
  auto stmt = ParseSql("SELECT * FROM t WHERE frechet(t, @myquery) <= 1.5");
  ASSERT_TRUE(stmt.ok());
  const auto* search = std::get_if<SearchStatement>(&*stmt);
  ASSERT_NE(search, nullptr);
  const auto* param = std::get_if<TrajectoryParam>(&search->query);
  ASSERT_NE(param, nullptr);
  EXPECT_EQ(param->name, "myquery");
}

TEST(ParserTest, ParsesKnnOrderByLimit) {
  auto stmt = ParseSql("SELECT * FROM t ORDER BY DTW(t, @q) LIMIT 5");
  ASSERT_TRUE(stmt.ok());
  const auto* knn = std::get_if<KnnStatement>(&*stmt);
  ASSERT_NE(knn, nullptr);
  EXPECT_EQ(knn->table, "t");
  EXPECT_EQ(knn->function, "DTW");
  EXPECT_EQ(knn->k, 5u);
  EXPECT_FALSE(ParseSql("SELECT * FROM t ORDER BY DTW(t, @q) LIMIT 0").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t ORDER BY DTW(t, @q) LIMIT 2.5").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t ORDER BY DTW(u, @q) LIMIT 5").ok());
}

TEST(ParserTest, ParsesTraJoin) {
  auto stmt = ParseSql("SELECT * FROM a TRA-JOIN b ON LCSS(a, b) <= 3");
  ASSERT_TRUE(stmt.ok());
  const auto* join = std::get_if<JoinStatement>(&*stmt);
  ASSERT_NE(join, nullptr);
  EXPECT_EQ(join->left_table, "a");
  EXPECT_EQ(join->right_table, "b");
  EXPECT_EQ(join->function, "LCSS");
  EXPECT_DOUBLE_EQ(join->threshold, 3.0);
}

TEST(ParserTest, ParsesCreateIndexAndShowTables) {
  auto create = ParseSql("CREATE INDEX TrieIndex ON T USE TRIE");
  ASSERT_TRUE(create.ok());
  const auto* c = std::get_if<CreateIndexStatement>(&*create);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->index_name, "TrieIndex");
  EXPECT_EQ(c->table, "T");

  auto show = ParseSql("SHOW TABLES");
  ASSERT_TRUE(show.ok());
  EXPECT_TRUE(std::holds_alternative<ShowTablesStatement>(*show));
}

TEST(ParserTest, RejectsMalformedStatements) {
  EXPECT_FALSE(ParseSql("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE DTW(u, @q) <= 1").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM a TRA-JOIN b ON DTW(a, c) <= 1").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE DTW(t, [(1,1)]) <= 1").ok());
  EXPECT_FALSE(ParseSql("CREATE INDEX foo ON t USE HASH").ok());
  EXPECT_FALSE(ParseSql("SELECT * FROM t WHERE DTW(t, @q) <= 1 garbage").ok());
  EXPECT_FALSE(ParseSql("").ok());
}

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ClusterConfig ccfg;
    ccfg.num_workers = 4;
    auto cluster = std::make_shared<Cluster>(ccfg);
    DitaConfig config;
    config.build.ng = 3;
    config.build.trie.num_pivots = 3;
    config.build.trie.leaf_capacity = 4;
    engine_ = std::make_unique<SqlEngine>(cluster, config);

    GeneratorConfig gcfg;
    gcfg.cardinality = 150;
    gcfg.region = MBR(Point{0, 0}, Point{1, 1});
    gcfg.step = 0.01;
    gcfg.seed = 91;
    data_ = GenerateTaxiDataset(gcfg);
    ASSERT_TRUE(engine_->RegisterTable("taxis", data_).ok());
  }

  std::unique_ptr<SqlEngine> engine_;
  Dataset data_;
};

TEST_F(SqlEngineTest, ShowTables) {
  auto result = engine_->Execute("SHOW TABLES");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0], "TAXIS");
}

TEST_F(SqlEngineTest, CreateIndexReportsStats) {
  auto result = engine_->Execute("CREATE INDEX TrieIndex ON taxis USE TRIE");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_NE(result->rows[0][0].find("partitions"), std::string::npos);
}

TEST_F(SqlEngineTest, SearchWithBoundParam) {
  ASSERT_TRUE(engine_->BindTrajectory("q", data_[3]).ok());
  auto result =
      engine_->Execute("SELECT * FROM taxis WHERE DTW(taxis, @q) <= 0.01");
  ASSERT_TRUE(result.ok());
  // The query trajectory itself is in the table.
  bool found_self = false;
  for (const auto& row : result->rows) {
    if (row[0] == std::to_string(data_[3].id())) found_self = true;
  }
  EXPECT_TRUE(found_self);
}

TEST_F(SqlEngineTest, SearchWithLiteralMatchesEngine) {
  const Trajectory& q = data_[5];
  std::string lit = "[";
  for (size_t i = 0; i < q.size(); ++i) {
    if (i > 0) lit += ",";
    lit += StrFormat("(%.9g,%.9g)", q[i].x, q[i].y);
  }
  lit += "]";
  auto result = engine_->Execute(
      StrFormat("SELECT * FROM taxis WHERE DTW(taxis, %s) <= 0.02", lit.c_str()));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GE(result->rows.size(), 1u);
}

TEST_F(SqlEngineTest, KnnQueryReturnsOrderedRows) {
  ASSERT_TRUE(engine_->BindTrajectory("q", data_[3]).ok());
  auto result =
      engine_->Execute("SELECT * FROM taxis ORDER BY DTW(taxis, @q) LIMIT 4");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rows.size(), 4u);
  EXPECT_EQ(result->columns,
            (std::vector<std::string>{"trajectory_id", "distance"}));
  // First hit is the query itself at distance 0.
  EXPECT_EQ(result->rows[0][0], std::to_string(data_[3].id()));
  double prev = -1;
  for (const auto& row : result->rows) {
    const double d = std::stod(row[1]);
    EXPECT_GE(d, prev);
    prev = d;
  }
}

TEST_F(SqlEngineTest, SelfJoin) {
  auto result = engine_->Execute(
      "SELECT * FROM taxis TRA-JOIN taxis ON DTW(taxis, taxis) <= 0.005");
  ASSERT_TRUE(result.ok());
  // At minimum every trajectory pairs with itself.
  EXPECT_GE(result->rows.size(), data_.size());
  EXPECT_EQ(result->columns.size(), 2u);
}

TEST_F(SqlEngineTest, ErrorsSurfaceCleanly) {
  EXPECT_EQ(engine_->Execute("SELECT * FROM nope WHERE DTW(nope, @q) <= 1")
                .status()
                .code(),
            Status::Code::kNotFound);
  EXPECT_EQ(engine_->Execute("SELECT * FROM taxis WHERE DTW(taxis, @nq) <= 1")
                .status()
                .code(),
            Status::Code::kNotFound);
  EXPECT_EQ(
      engine_->Execute("SELECT * FROM taxis WHERE HAUSDORFF(taxis, @q) <= 1")
          .status()
          .code(),
      Status::Code::kInvalidArgument);
}

TEST_F(SqlEngineTest, ResultToStringTruncates) {
  SqlResult r;
  r.columns = {"a"};
  for (int i = 0; i < 30; ++i) r.rows.push_back({std::to_string(i)});
  const std::string s = r.ToString(5);
  EXPECT_NE(s.find("(30 rows total)"), std::string::npos);
}

}  // namespace
}  // namespace dita
