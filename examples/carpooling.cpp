// Car pooling (one of the paper's motivating applications, §1): find pairs
// of taxi trips similar enough to share a vehicle, then estimate how many
// trips could be saved by greedily pairing them up.
//
//   ./build/examples/carpooling

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "core/engine.h"
#include "sql/dataframe.h"
#include "workload/generator.h"

int main() {
  using namespace dita;

  ClusterConfig cluster_config;
  cluster_config.num_workers = 16;
  auto cluster = std::make_shared<Cluster>(cluster_config);
  DitaConfig config;
  config.build.ng = 5;
  DataFrameContext ctx(cluster, config);

  // Rush-hour trips, heavily hub-skewed (airport / station runs) — exactly
  // the workload where pooling pays off.
  GeneratorConfig gen;
  gen.cardinality = 2500;
  gen.hubs = 6;
  gen.hub_fraction = 0.8;
  gen.seed = 7;
  DataFrame trips = ctx.CreateDataFrame(GenerateTaxiDataset(gen));
  std::printf("rush hour: %zu requested trips\n", trips.size());

  // Poolable = DTW within 0.002 (~200m of accumulated detour).
  DitaEngine::JoinStats jstats;
  auto pairs = trips.TraJoin(trips, "dtw", 0.002, &jstats);
  if (!pairs.ok()) {
    std::fprintf(stderr, "join failed: %s\n", pairs.status().ToString().c_str());
    return 1;
  }

  // Greedy matching over the similarity graph (skip self-pairs and
  // mirrored duplicates).
  std::map<TrajectoryId, std::vector<TrajectoryId>> adjacency;
  size_t poolable_pairs = 0;
  for (const auto& [a, b] : *pairs) {
    if (a < b) {
      adjacency[a].push_back(b);
      adjacency[b].push_back(a);
      ++poolable_pairs;
    }
  }
  std::set<TrajectoryId> used;
  size_t pooled = 0;
  for (auto& [id, neighbors] : adjacency) {
    if (used.count(id)) continue;
    for (TrajectoryId partner : neighbors) {
      if (partner != id && !used.count(partner)) {
        used.insert(id);
        used.insert(partner);
        ++pooled;
        break;
      }
    }
  }

  std::printf("poolable pairs: %zu (join: %zu graph edges, %.2f s cost-model)\n",
              poolable_pairs, jstats.graph_edges, jstats.makespan_seconds);
  std::printf("greedy matching: %zu shared rides, saving %zu of %zu trips "
              "(%.1f%%)\n",
              pooled, pooled, trips.size(),
              100.0 * double(pooled) / double(trips.size()));
  return 0;
}
