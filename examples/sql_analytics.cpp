// SQL interface demo: register tables, create a trie index, and run the
// paper's three statement forms (§3) against them.
//
//   ./build/examples/sql_analytics

#include <cstdio>

#include "sql/engine.h"
#include "util/string_util.h"
#include "workload/generator.h"

namespace {

void Run(dita::SqlEngine& engine, const std::string& sql) {
  std::printf("\ndita-sql> %s\n", sql.c_str());
  auto result = engine.Execute(sql);
  if (!result.ok()) {
    std::printf("ERROR: %s\n", result.status().ToString().c_str());
    return;
  }
  std::printf("%s(%zu rows, %.3f ms)\n", result->ToString(8).c_str(),
              result->rows.size(), result->seconds * 1e3);
}

}  // namespace

int main() {
  using namespace dita;

  ClusterConfig cluster_config;
  cluster_config.num_workers = 16;
  auto cluster = std::make_shared<Cluster>(cluster_config);
  DitaConfig config;
  config.build.ng = 5;
  SqlEngine sql(cluster, config);

  // Two city-scale tables: morning and evening taxi trips.
  Dataset morning = GenerateBeijingLike(0.1, /*seed=*/1);
  Dataset evening = GenerateBeijingLike(0.1, /*seed=*/2);
  if (!sql.RegisterTable("morning", morning).ok() ||
      !sql.RegisterTable("evening", evening).ok()) {
    std::fprintf(stderr, "table registration failed\n");
    return 1;
  }

  Run(sql, "SHOW TABLES");
  Run(sql, "CREATE INDEX TrieIndex ON morning USE TRIE");

  // Search with a literal trajectory (a short hop near the city center).
  Run(sql,
      "SELECT * FROM morning WHERE "
      "DTW(morning, [(116.38,39.90),(116.385,39.905),(116.39,39.91)]) <= 0.01");

  // Search with a bound parameter: "find trips like trip #7".
  if (!sql.BindTrajectory("trip7", morning[7]).ok()) return 1;
  Run(sql, "SELECT * FROM morning WHERE DTW(morning, @trip7) <= 0.002");

  // Frechet works on the same table; the engine builds a second index.
  Run(sql, "SELECT * FROM morning WHERE FRECHET(morning, @trip7) <= 0.001");

  // The TRA-JOIN of the paper: morning trips matching evening trips.
  Run(sql,
      "SELECT * FROM morning TRA-JOIN evening ON DTW(morning, evening) <= "
      "0.001");
  return 0;
}
