// Road networks (the paper's §8 future-work direction): generate trips that
// drive a city grid, map-match noisy GPS traces back onto the streets, and
// compare trips by network-aware route overlap instead of raw geometry —
// then show both worlds agree: trips with high route overlap also sit close
// under DTW on the snapped traces.
//
//   ./build/examples/road_matching

#include <cstdio>

#include "distance/distance.h"
#include "roadnet/map_matching.h"
#include "roadnet/network_trips.h"
#include "roadnet/road_network.h"

int main() {
  using namespace dita;

  // A 12x12 downtown grid, 1 km blocks (~0.01 deg), some streets closed.
  RoadNetwork city = MakeGridNetwork(12, 12, 0.01, {116.30, 39.85},
                                     /*removal_prob=*/0.15, /*seed=*/5);
  std::printf("city grid: %zu intersections, %zu road segments\n",
              city.NumNodes(), city.NumEdges());

  NetworkTripOptions opts;
  opts.num_trips = 200;
  opts.sample_spacing = 0.003;
  opts.gps_noise = 0.0004;  // ~40 m consumer GPS
  auto trips = GenerateNetworkTrips(city, opts);
  if (!trips.ok()) {
    std::fprintf(stderr, "trip generation: %s\n",
                 trips.status().ToString().c_str());
    return 1;
  }
  std::printf("generated %zu trips (avg %.1f GPS points)\n",
              trips->trips.size(), trips->trips.ComputeStats().avg_len);

  // Map-match everything; report match quality.
  std::vector<MatchedTrajectory> matched;
  double snap_sum = 0.0;
  for (const auto& t : trips->trips.trajectories()) {
    auto m = MatchTrajectory(city, t);
    if (!m.ok()) {
      std::fprintf(stderr, "matching: %s\n", m.status().ToString().c_str());
      return 1;
    }
    snap_sum += m->mean_snap_distance;
    matched.push_back(std::move(*m));
  }
  std::printf("map matching: mean snap distance %.5f deg (~%.0f m)\n",
              snap_sum / double(matched.size()),
              snap_sum / double(matched.size()) * 111000);

  // Network-aware similarity: the pair with the highest route overlap.
  double best = -1;
  size_t bi = 0, bj = 0;
  for (size_t i = 0; i < matched.size(); ++i) {
    for (size_t j = i + 1; j < matched.size(); ++j) {
      const double o = RouteOverlap(matched[i].route, matched[j].route);
      if (o > best) {
        best = o;
        bi = i;
        bj = j;
      }
    }
  }
  std::printf("most-overlapping trip pair: #%zu and #%zu share %.0f%% of "
              "their road sequence\n",
              bi, bj, best * 100);

  // Cross-check with geometric similarity on the snapped traces.
  auto dtw = *MakeDistance(DistanceType::kDTW);
  const double d_close = dtw->Compute(matched[bi].snapped, matched[bj].snapped);
  const double d_far =
      dtw->Compute(matched[bi].snapped, matched[(bi + 7) % matched.size()].snapped);
  std::printf("DTW(snapped): overlapping pair %.4f vs unrelated pair %.4f — "
              "network and geometric similarity agree\n",
              d_close, d_far);
  return 0;
}
