// Command-line utility around the library: generate datasets, convert
// between CSV and the compact binary format, print statistics, and run
// ad-hoc searches — the small ops tool a deployment would keep around.
//
//   dita_tool generate --out=trips.dita [--preset=beijing|chengdu|osm] [--scale=0.1]
//   dita_tool convert --in=trips.csv --out=trips.dita      (and vice versa)
//   dita_tool stats   --in=trips.dita
//   dita_tool search  --in=trips.dita --query-id=42 --tau=0.003 [--fn=dtw]

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "core/engine.h"
#include "util/string_util.h"
#include "workload/binary_io.h"
#include "workload/generator.h"

namespace {

using namespace dita;

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) continue;
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      flags[arg.substr(2)] = "true";
    } else {
      flags[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return flags;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

Result<Dataset> LoadAny(const std::string& path) {
  if (EndsWith(path, ".csv")) return Dataset::ReadCsv(path);
  return ReadBinary(path);
}

Status SaveAny(const Dataset& ds, const std::string& path) {
  if (EndsWith(path, ".csv")) return ds.WriteCsv(path);
  return WriteBinary(ds, path);
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

int CmdGenerate(const std::map<std::string, std::string>& flags) {
  auto it = flags.find("out");
  if (it == flags.end()) return Fail(Status::InvalidArgument("--out required"));
  const std::string preset =
      flags.count("preset") ? flags.at("preset") : "beijing";
  const double scale =
      flags.count("scale") ? std::atof(flags.at("scale").c_str()) : 0.1;
  Dataset ds;
  if (preset == "beijing") {
    ds = GenerateBeijingLike(scale);
  } else if (preset == "chengdu") {
    ds = GenerateChengduLike(scale);
  } else if (preset == "osm") {
    ds = GenerateOsmLike(scale);
  } else {
    return Fail(Status::InvalidArgument("unknown preset: " + preset));
  }
  if (Status st = SaveAny(ds, it->second); !st.ok()) return Fail(st);
  std::printf("wrote %zu trajectories to %s\n", ds.size(), it->second.c_str());
  return 0;
}

int CmdConvert(const std::map<std::string, std::string>& flags) {
  if (!flags.count("in") || !flags.count("out")) {
    return Fail(Status::InvalidArgument("--in and --out required"));
  }
  auto ds = LoadAny(flags.at("in"));
  if (!ds.ok()) return Fail(ds.status());
  if (Status st = SaveAny(*ds, flags.at("out")); !st.ok()) return Fail(st);
  std::printf("converted %zu trajectories: %s -> %s\n", ds->size(),
              flags.at("in").c_str(), flags.at("out").c_str());
  return 0;
}

int CmdStats(const std::map<std::string, std::string>& flags) {
  if (!flags.count("in")) return Fail(Status::InvalidArgument("--in required"));
  auto ds = LoadAny(flags.at("in"));
  if (!ds.ok()) return Fail(ds.status());
  const auto s = ds->ComputeStats();
  std::printf("cardinality: %zu\navg_len: %.1f\nmin_len: %zu\nmax_len: %zu\n"
              "raw size: %s\n",
              s.cardinality, s.avg_len, s.min_len, s.max_len,
              HumanBytes(double(s.bytes)).c_str());
  return 0;
}

int CmdSearch(const std::map<std::string, std::string>& flags) {
  if (!flags.count("in") || !flags.count("query-id") || !flags.count("tau")) {
    return Fail(
        Status::InvalidArgument("--in, --query-id and --tau required"));
  }
  auto ds = LoadAny(flags.at("in"));
  if (!ds.ok()) return Fail(ds.status());
  const TrajectoryId qid = std::atoll(flags.at("query-id").c_str());
  const double tau = std::atof(flags.at("tau").c_str());
  const Trajectory* query = nullptr;
  for (const auto& t : ds->trajectories()) {
    if (t.id() == qid) query = &t;
  }
  if (query == nullptr) {
    return Fail(Status::NotFound("no trajectory with --query-id"));
  }

  ClusterConfig ccfg;
  ccfg.num_workers = 16;
  auto cluster = std::make_shared<Cluster>(ccfg);
  DitaConfig config;
  if (flags.count("fn")) {
    auto type = ParseDistanceType(flags.at("fn"));
    if (!type.ok()) return Fail(type.status());
    config.distance = *type;
  }
  DitaEngine engine(cluster, config);
  if (Status st = engine.BuildIndex(*ds); !st.ok()) return Fail(st);
  DitaEngine::QueryStats stats;
  auto hits = engine.Search(*query, tau, &stats);
  if (!hits.ok()) return Fail(hits.status());
  std::printf("%zu similar trajectories (%.3f ms cost-model):", hits->size(),
              stats.makespan_seconds * 1e3);
  for (TrajectoryId id : *hits) std::printf(" %lld", static_cast<long long>(id));
  std::printf("\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: dita_tool <generate|convert|stats|search> [--flags]\n");
    return 2;
  }
  const std::string cmd = argv[1];
  const auto flags = ParseFlags(argc, argv);
  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "convert") return CmdConvert(flags);
  if (cmd == "stats") return CmdStats(flags);
  if (cmd == "search") return CmdSearch(flags);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 2;
}
