// Observability demo: run a traced, metered range query (and a small
// self-join) over a synthetic taxi workload, print the filter funnel and a
// per-stage span table, and export
//
//   TRACE_dita.json    Chrome trace_event JSON — load it in Perfetto
//                      (https://ui.perfetto.dev) or chrome://tracing
//   METRICS_dita.json  flat metrics snapshot (counters/gauges/histograms)
//
//   ./build/examples/obs_demo              # run + export + print tables
//   ./build/examples/obs_demo --selftest   # validate exports, no files
//
// --selftest is wired into ctest (obs_demo_schema): it re-validates the
// exported trace against the Chrome schema and checks the funnel invariants
// end-to-end, exiting non-zero on any violation.

#include <cstdio>
#include <cstring>
#include <future>
#include <map>
#include <string>
#include <vector>

#include "core/engine.h"
#include "obs/export.h"
#include "serving/service.h"
#include "workload/generator.h"

namespace {

using namespace dita;

/// Aggregates spans by name: count and total ticks spent (ticks are the
/// tracer's logical clock — they order and nest work, they are not seconds).
void PrintSpanTable(const obs::Tracer& tracer) {
  struct Row {
    uint64_t count = 0;
    uint64_t ticks = 0;
  };
  std::map<std::string, Row> rows;
  for (const auto& e : tracer.Events()) {
    Row& row = rows[e.name];
    ++row.count;
    row.ticks += e.end - e.begin;
  }
  std::printf("%-24s %10s %12s\n", "span", "count", "total ticks");
  for (const auto& [name, row] : rows) {
    std::printf("%-24s %10llu %12llu\n", name.c_str(),
                static_cast<unsigned long long>(row.count),
                static_cast<unsigned long long>(row.ticks));
  }
}

int Fail(const char* what) {
  std::fprintf(stderr, "obs_demo selftest FAILED: %s\n", what);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool selftest =
      argc > 1 && std::strcmp(argv[1], "--selftest") == 0;

  // A 8-worker simulated cluster with tracing and metrics on.
  ClusterConfig cluster_config;
  cluster_config.num_workers = 8;
  auto cluster = std::make_shared<Cluster>(cluster_config);

  DitaConfig config;
  config.build.ng = 4;
  config.build.trie.num_pivots = 4;
  config.enable_tracing = true;
  config.enable_metrics = true;

  Dataset taxis = GenerateBeijingLike(/*scale=*/0.1);
  DitaEngine engine(cluster, config);
  if (Status st = engine.BuildIndex(taxis); !st.ok()) {
    std::fprintf(stderr, "BuildIndex: %s\n", st.ToString().c_str());
    return 1;
  }

  // Range query: everything within DTW distance 0.003 of a sample trip.
  const Trajectory& query = taxis[42];
  DitaEngine::QueryStats qstats;
  auto hits = engine.Search(query, 0.003, &qstats);
  if (!hits.ok()) {
    std::fprintf(stderr, "Search: %s\n", hits.status().ToString().c_str());
    return 1;
  }

  // A small self-join so the trace also shows the planning + probe stages.
  DitaEngine::JoinStats jstats;
  auto pairs = engine.Join(engine, 0.001, &jstats);
  if (!pairs.ok()) {
    std::fprintf(stderr, "Join: %s\n", pairs.status().ToString().c_str());
    return 1;
  }

  // Serving section: the same cluster (one tracer, one registry) now hosts
  // a DitaService mid-trace — Submit()ed queries run on the executor lanes,
  // streaming ingest crosses the merge threshold so an epoch merge lands on
  // the serving.merge lane, and a repeated query hits the answer cache
  // (serving.cache lane) — so the exported trace shows the serving plane
  // alongside the engine's worker lanes.
  DitaConfig serving_config = config;
  serving_config.serving.merge_threshold = 8;
  serving_config.serving.synchronous_merge = true;
  serving_config.serving.scheduler_threads = 2;
  serving_config.serving.answer_cache_entries = 16;
  DitaService service(cluster, serving_config);
  uint64_t service_cache_hits = 0;
  uint64_t service_merges = 0;
  {
    std::vector<Trajectory> town_trips(taxis.trajectories().begin(),
                                       taxis.trajectories().begin() + 200);
    const Dataset town(town_trips);
    if (Status st = service.Start(town); !st.ok()) {
      std::fprintf(stderr, "service.Start: %s\n", st.ToString().c_str());
      return 1;
    }
    // Async queries on the executor lanes.
    QueryRequest sreq;
    sreq.kind = QueryKind::kSearch;
    sreq.query = town[3];
    sreq.tau = 0.003;
    std::vector<std::future<Result<QueryResult>>> futs;
    for (int i = 0; i < 4; ++i) futs.push_back(service.Submit(sreq));
    for (auto& f : futs) {
      if (!f.get().ok()) return Fail("serving Submit failed");
    }
    // Ingest past the merge threshold: an epoch merge inside the trace.
    for (size_t i = 0; i < 10; ++i) {
      if (!service.Insert(Trajectory(TrajectoryId(90000 + i),
                                     town[i].points()))
               .ok()) {
        return Fail("serving Insert failed");
      }
    }
    // Post-merge repeat: miss (new version) then hit on the answer cache.
    if (!service.Execute(sreq).ok() || !service.Execute(sreq).ok()) {
      return Fail("serving Execute failed");
    }
    service_cache_hits = service.cache_hits();
    service_merges = service.merges();
  }

  const std::string trace = obs::ToChromeTraceJson(*cluster->tracer());
  const std::string metrics = obs::MetricsToJson(*cluster->metrics());
  const std::string flight = service.DumpFlightRecorder();

  if (selftest) {
    // 1. The exported trace must satisfy the Chrome trace_event schema.
    if (Status st = obs::ValidateChromeTraceJson(trace); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return Fail("trace schema validation");
    }
    // 2. The query→stage→task→verify span chain must be present.
    for (const char* name : {"query", "stage:search", "task", "verify",
                             "join", "join.plan", "trie.collect"}) {
      if (trace.find(std::string("\"") + name + "\"") == std::string::npos) {
        std::fprintf(stderr, "missing span: %s\n", name);
        return Fail("span coverage");
      }
    }
    // 3. Funnels are monotone and land exactly on the result counts.
    if (!qstats.funnel.MonotonicallyNonIncreasing())
      return Fail("search funnel not monotone");
    if (qstats.funnel.FinalSurvivors() != hits->size())
      return Fail("search funnel does not end at results");
    if (!jstats.funnel.MonotonicallyNonIncreasing())
      return Fail("join funnel not monotone");
    if (jstats.funnel.FinalSurvivors() != jstats.result_pairs)
      return Fail("join funnel does not end at result pairs");
    // 4. Metrics export mentions the funnel counters.
    for (const char* name :
         {"filter.trie.nodes_visited", "verify.pairs", "cluster.stages_run"}) {
      if (metrics.find(std::string("\"") + name + "\"") == std::string::npos) {
        std::fprintf(stderr, "missing metric: %s\n", name);
        return Fail("metric coverage");
      }
    }
    // 5. The serving plane showed up on its own lanes: executor threads,
    //    the epoch merge, and an answer-cache hit instant.
    for (const char* name : {"serving.query", "serving.merge", "serving.exec",
                             "serving.cache.hit", "serving.epoch.published"}) {
      if (trace.find(name) == std::string::npos) {
        std::fprintf(stderr, "missing serving trace marker: %s\n", name);
        return Fail("serving lane coverage");
      }
    }
    if (service_cache_hits == 0) return Fail("no answer-cache hit recorded");
    if (service_merges == 0) return Fail("no epoch merge ran mid-trace");
    // 6. The always-on flight recorder captured the serving requests with
    //    telescoping phase records.
    if (service.flight_recorder().total_recorded() == 0) {
      return Fail("flight recorder empty");
    }
    for (const char* key : {"\"requests\"", "\"total_seconds\"",
                            "\"finalize_seconds\"", "\"cache_hit\": true"}) {
      if (flight.find(key) == std::string::npos) {
        std::fprintf(stderr, "missing flight-recorder key: %s\n", key);
        return Fail("flight recorder dump");
      }
    }
    std::printf(
        "obs_demo selftest OK (%zu spans, %zu hits, %zu join pairs, "
        "%llu serving requests)\n",
        cluster->tracer()->span_count(), hits->size(), pairs->size(),
        static_cast<unsigned long long>(
            service.flight_recorder().total_recorded()));
    return 0;
  }

  std::printf("search: %zu hits at tau=0.003\n\n", hits->size());
  std::printf("== filter funnel (search) ==\n%s\n",
              qstats.funnel.ToTable().c_str());
  std::printf("== filter funnel (join, pair units) ==\n%s\n",
              jstats.funnel.ToTable().c_str());
  std::printf("== span table ==\n");
  PrintSpanTable(*cluster->tracer());
  std::printf("\n== serving rollup ==\n%s", service.ExplainService().c_str());

  if (Status st = obs::WriteFile("TRACE_dita.json", trace); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (Status st = obs::WriteFile("METRICS_dita.json", metrics); !st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "\nwrote TRACE_dita.json (open in https://ui.perfetto.dev) and "
      "METRICS_dita.json\n");
  return 0;
}
