// Quickstart: build a DITA engine over a synthetic taxi dataset, run a
// threshold similarity search and a self-join, and print what happened.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/engine.h"
#include "util/string_util.h"
#include "workload/generator.h"

int main() {
  using namespace dita;

  // 1. A simulated 16-worker cluster (see src/cluster/cluster.h: tasks run
  //    for real; latency is reported under the paper's cost model).
  ClusterConfig cluster_config;
  cluster_config.num_workers = 16;
  auto cluster = std::make_shared<Cluster>(cluster_config);

  // 2. A Beijing-like taxi workload (Table 2 shapes, laptop scale).
  Dataset taxis = GenerateBeijingLike(/*scale=*/0.25);
  auto stats = taxis.ComputeStats();
  std::printf("dataset: %zu trajectories, avg len %.1f, %s\n", stats.cardinality,
              stats.avg_len, HumanBytes(double(stats.bytes)).c_str());

  // 3. Index: STR first/last partitioning + global R-trees + per-partition
  //    pivot tries (CREATE INDEX TrieIndex ON taxis USE TRIE).
  DitaConfig config;
  config.build.ng = 6;
  config.build.trie.num_pivots = 4;
  DitaEngine engine(cluster, config);
  if (Status st = engine.BuildIndex(taxis); !st.ok()) {
    std::fprintf(stderr, "BuildIndex: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("index: %zu partitions, global %s, local %s, built in %.2fs\n",
              engine.index_stats().num_partitions,
              HumanBytes(double(engine.index_stats().global_index_bytes)).c_str(),
              HumanBytes(double(engine.index_stats().local_index_bytes)).c_str(),
              engine.index_stats().build_seconds);

  // 4. Similarity search: everything within DTW distance 0.002 (~222m
  //    accumulated) of a sample trip.
  const Trajectory& query = taxis[42];
  DitaEngine::QueryStats qstats;
  auto hits = engine.Search(query, 0.003, &qstats);
  if (!hits.ok()) {
    std::fprintf(stderr, "Search: %s\n", hits.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "search: %zu similar trips (probed %zu partitions, %zu candidates, "
      "%.3f ms cost-model latency)\n",
      hits->size(), qstats.partitions_probed, qstats.candidates,
      qstats.makespan_seconds * 1e3);

  // 5. Similarity self-join: all trip pairs within DTW distance 0.001.
  DitaEngine::JoinStats jstats;
  auto pairs = engine.Join(engine, 0.001, &jstats);
  if (!pairs.ok()) {
    std::fprintf(stderr, "Join: %s\n", pairs.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "join: %zu pairs (bi-graph %zu edges, %s shipped, load ratio %.2f, "
      "%.2f s cost-model time)\n",
      pairs->size(), jstats.graph_edges,
      HumanBytes(double(jstats.bytes_shipped)).c_str(), jstats.load_ratio,
      jstats.makespan_seconds);
  return 0;
}
