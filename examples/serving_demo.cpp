// Online serving in one file: a long-lived DitaService fed by streaming
// ingest while concurrent queries run against epoch-pinned snapshots.
//
//   build/examples/serving_demo
//   build/examples/serving_demo --obs-export=PREFIX
//
// The demo starts a service over a synthetic city table, fires a mixed
// batch of async queries through the unified QueryRequest API, streams
// inserts/deletes in parallel, forces an epoch merge, and prints the
// EXPLAIN of the last query so the epoch/delta accounting is visible.
//
// With --obs-export=PREFIX the run additionally enables the registry
// metrics plane, prints the ExplainService() SLO rollup, and writes
// PREFIX_metrics.json (obs::MetricsToJson) plus PREFIX_flight.json
// (DitaService::DumpFlightRecorder) — the documents ci.sh's obs pass
// schema-checks and tools/obs_report.py renders.

#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "obs/export.h"
#include "serving/service.h"
#include "util/logging.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace dita;

  std::string obs_prefix;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--obs-export=", 13) == 0) {
      obs_prefix = argv[i] + 13;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  GeneratorConfig gcfg;
  gcfg.cardinality = 800;
  gcfg.region = MBR(Point{0, 0}, Point{1, 1});
  gcfg.step = 0.01;
  gcfg.seed = 7;
  const Dataset city = GenerateTaxiDataset(gcfg);

  ClusterConfig ccfg;
  ccfg.num_workers = 8;
  auto cluster = std::make_shared<Cluster>(ccfg);

  DitaConfig config;
  config.serving.merge_threshold = 32;  // epoch merge after 32 delta ops
  config.serving.scheduler_threads = 2;
  config.serving.answer_cache_entries = 64;  // so the export shows hits
  config.enable_metrics = !obs_prefix.empty();

  DitaService service(cluster, config);
  DITA_CHECK(service.Start(city).ok());
  std::printf("service up: %zu trajectories, epoch %llu\n",
              service.live_size(),
              static_cast<unsigned long long>(service.epoch()));

  // Async queries through the unified request API: a threshold search, a
  // kNN, and a low-priority self-join share the scheduler's slot pool.
  QueryRequest search;
  search.kind = QueryKind::kSearch;
  search.query = city[5];
  search.tau = 0.004;
  search.priority = 0;

  QueryRequest knn;
  knn.kind = QueryKind::kKnnSearch;
  knn.query = city[9];
  knn.k = 3;

  QueryRequest join;
  join.kind = QueryKind::kJoin;
  join.tau = 0.003;
  join.priority = 2;  // bulk analytics yields slots to point queries

  auto search_fut = service.Submit(search);
  auto knn_fut = service.Submit(knn);
  auto join_fut = service.Submit(join);

  // Meanwhile the table keeps moving: fresh trips stream in, old ones
  // retire. Queries in flight keep their pinned snapshot; the next query
  // sees the new version.
  for (size_t i = 0; i < 40; ++i) {
    DITA_CHECK(
        service.Insert(Trajectory(TrajectoryId(10000 + i), city[i].points()))
            .ok());
  }
  for (size_t i = 0; i < 10; ++i) {
    DITA_CHECK(service.Delete(city[i].id()).ok());
  }

  auto search_res = search_fut.get();
  auto knn_res = knn_fut.get();
  auto join_res = join_fut.get();
  DITA_CHECK(search_res.ok() && knn_res.ok() && join_res.ok());
  std::printf("search: %zu ids | knn: %zu neighbors | join: %zu pairs\n",
              search_res->ids.size(), knn_res->neighbors.size(),
              join_res->pairs.size());

  // Fold the delta into a new epoch and show the serving-aware EXPLAIN.
  DITA_CHECK(service.ForceMerge().ok());
  QueryRequest again = search;
  auto post = service.Execute(again);
  DITA_CHECK(post.ok());
  std::printf("after merge: epoch %llu, %llu merges, %zu live\n%s",
              static_cast<unsigned long long>(service.epoch()),
              static_cast<unsigned long long>(service.merges()),
              service.live_size(), service.ExplainLastQuery().c_str());

  std::printf("scheduler: %llu admitted, %zu slots\n",
              static_cast<unsigned long long>(service.scheduler().admitted()),
              service.scheduler().total_slots());

  if (!obs_prefix.empty()) {
    // Re-run the search so the answer cache records a hit for the export,
    // then dump the two observability documents the obs CI pass validates.
    DITA_CHECK(service.Execute(again).ok());
    std::printf("\n%s", service.ExplainService().c_str());
    const std::string metrics_path = obs_prefix + "_metrics.json";
    const std::string flight_path = obs_prefix + "_flight.json";
    DITA_CHECK(
        obs::WriteFile(metrics_path, obs::MetricsToJson(*cluster->metrics()))
            .ok());
    DITA_CHECK(
        obs::WriteFile(flight_path, service.DumpFlightRecorder()).ok());
    std::printf("wrote %s and %s\n", metrics_path.c_str(),
                flight_path.c_str());
  }
  service.Stop();
  return 0;
}
