// Fleet insights: the §1 applications end-to-end on one fleet's day of
// trips — frequent-route mining (navigation / road planning), density
// clustering (transportation optimization), and outlier detection
// (anomalous trips), all powered by one distributed similarity self-join.
//
//   ./build/examples/fleet_insights

#include <cstdio>

#include "analytics/clustering.h"
#include "analytics/frequent_routes.h"
#include "analytics/outliers.h"
#include "core/engine.h"
#include "workload/generator.h"

int main() {
  using namespace dita;

  ClusterConfig cluster_config;
  cluster_config.num_workers = 16;
  auto cluster = std::make_shared<Cluster>(cluster_config);

  GeneratorConfig gen;
  gen.cardinality = 4000;
  gen.trips_per_route = 12;
  gen.point_drop_prob = 0.0;
  gen.seed = 17;
  Dataset fleet = GenerateTaxiDataset(gen);
  std::printf("fleet: %zu trips over one day\n", fleet.size());

  DitaConfig config;
  config.build.ng = 5;
  DitaEngine engine(cluster, config);
  if (Status st = engine.BuildIndex(fleet); !st.ok()) {
    std::fprintf(stderr, "BuildIndex: %s\n", st.ToString().c_str());
    return 1;
  }

  const double tau = 0.002;  // "same street sequence" threshold

  // One similarity graph powers all three analyses.
  auto graph = SimilarityGraph::FromSelfJoin(engine, tau);
  if (!graph.ok()) {
    std::fprintf(stderr, "join: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  std::printf("similarity graph: %zu nodes, %zu edges\n", graph->NumNodes(),
              graph->NumEdges());

  auto routes = MineFrequentRoutesInGraph(*graph, /*min_support=*/8);
  std::printf("\ntop frequent routes (candidates for dedicated bus lines):\n");
  for (size_t i = 0; i < routes.size() && i < 5; ++i) {
    std::printf("  route %zu: %zu trips/day, representative trip #%lld\n",
                i + 1, routes[i].support,
                static_cast<long long>(routes[i].representative));
  }

  ClusteringResult clusters = ClusterGraph(*graph, /*min_pts=*/5);
  std::printf("\ndensity clustering: %d clusters, %zu noise trips\n",
              clusters.num_clusters, clusters.noise.size());

  auto outliers = FindOutliersInGraph(*graph, /*min_neighbors=*/1);
  std::printf("outlier trips (no similar trip all day): %zu", outliers.size());
  for (size_t i = 0; i < outliers.size() && i < 8; ++i) {
    std::printf("%s#%lld", i == 0 ? " — " : ", ",
                static_cast<long long>(outliers[i]));
  }
  std::printf("\n");
  return 0;
}
