// Frequent-trajectory navigation (another §1 application): given the route a
// driver is about to take, retrieve similar historical trips at increasing
// thresholds and report how popular the route is — the building block of a
// "most drivers go this way" navigation hint.
//
//   ./build/examples/navigation

#include <cstdio>

#include "core/engine.h"
#include "workload/generator.h"

int main() {
  using namespace dita;

  ClusterConfig cluster_config;
  cluster_config.num_workers = 16;
  auto cluster = std::make_shared<Cluster>(cluster_config);

  Dataset history = GenerateChengduLike(/*scale=*/0.2);
  std::printf("history: %zu past trips\n", history.size());

  DitaConfig config;
  config.build.ng = 6;
  config.build.trie.num_pivots = 5;  // Chengdu's longer trips favour K = 5 (§B)
  DitaEngine engine(cluster, config);
  if (Status st = engine.BuildIndex(history); !st.ok()) {
    std::fprintf(stderr, "BuildIndex: %s\n", st.ToString().c_str());
    return 1;
  }

  // The planned route: reuse a historical trip as the driver's plan.
  const Trajectory& plan = history[123];
  std::printf("planned route: %zu GPS points\n", plan.size());

  std::printf("%10s %12s %14s %12s\n", "tau", "similar", "candidates",
              "latency(ms)");
  for (double tau : {0.001, 0.002, 0.004, 0.008, 0.016}) {
    DitaEngine::QueryStats stats;
    auto hits = engine.Search(plan, tau, &stats);
    if (!hits.ok()) {
      std::fprintf(stderr, "Search: %s\n", hits.status().ToString().c_str());
      return 1;
    }
    std::printf("%10.4f %12zu %14zu %12.3f\n", tau, hits->size(),
                stats.candidates, stats.makespan_seconds * 1e3);
  }

  // A popularity verdict at the "same street" threshold.
  auto hits = engine.Search(plan, 0.008);
  if (hits.ok()) {
    const double share = 100.0 * double(hits->size()) / double(history.size());
    std::printf("\n%zu of %zu historical trips (%.2f%%) follow this route — "
                "%s\n",
                hits->size(), history.size(), share,
                hits->size() > 10 ? "a frequent trajectory; recommend it"
                                  : "an uncommon route");
  }
  return 0;
}
