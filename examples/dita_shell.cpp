// Interactive SQL shell: explore the DITA SQL dialect against generated
// datasets. Two tables ("beijing", "chengdu") are pre-registered and a query
// parameter @trip is bound to a sample trip.
//
//   ./build/examples/dita_shell
//   dita> SELECT * FROM beijing WHERE DTW(beijing, @trip) <= 0.003
//   dita> CREATE INDEX TrieIndex ON chengdu USE TRIE
//   dita> SELECT * FROM beijing TRA-JOIN beijing ON DTW(beijing, beijing) <= 0.001
//   dita> quit

#include <cstdio>
#include <iostream>
#include <string>

#include "sql/engine.h"
#include "util/string_util.h"
#include "workload/generator.h"

int main() {
  using namespace dita;

  ClusterConfig cluster_config;
  cluster_config.num_workers = 16;
  auto cluster = std::make_shared<Cluster>(cluster_config);
  DitaConfig config;
  config.build.ng = 5;
  SqlEngine engine(cluster, config);

  Dataset beijing = GenerateBeijingLike(0.2, 1);
  Dataset chengdu = GenerateChengduLike(0.2, 2);
  if (!engine.RegisterTable("beijing", beijing).ok() ||
      !engine.RegisterTable("chengdu", chengdu).ok() ||
      !engine.BindTrajectory("trip", beijing[7]).ok()) {
    std::fprintf(stderr, "setup failed\n");
    return 1;
  }

  std::printf("DITA SQL shell — tables: beijing (%zu trips), chengdu (%zu "
              "trips); @trip is bound.\n",
              beijing.size(), chengdu.size());
  std::printf("Statements: SELECT / TRA-JOIN / CREATE INDEX / SHOW TABLES; "
              "'quit' exits.\n");

  std::string line;
  while (true) {
    std::printf("dita> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;
    const std::string trimmed = StrTrim(line);
    if (trimmed.empty()) continue;
    if (trimmed == "quit" || trimmed == "exit") break;
    auto result = engine.Execute(trimmed);
    if (!result.ok()) {
      std::printf("ERROR: %s\n", result.status().ToString().c_str());
      continue;
    }
    std::printf("%s(%zu rows, %.3f ms)\n", result->ToString(20).c_str(),
                result->rows.size(), result->seconds * 1e3);
  }
  return 0;
}
