#ifndef DITA_SERVING_SERVICE_H_
#define DITA_SERVING_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "obs/lifecycle.h"
#include "serving/scheduler.h"
#include "serving/snapshot.h"
#include "util/timer.h"
#include "workload/dataset.h"

namespace dita {

/// Version-tagged LRU cache for the serving read path (DESIGN.md §5g).
/// Keys are a 128-bit content digest of the request — query points, the tau
/// / k / initial_tau bit patterns, the query kind, and the stats flag — so
/// a hit is byte-for-byte the answer the engine would recompute. (The
/// digest is a conservative refinement of the minhash sketch key: sketch
/// canonicalization would alias distinct queries and force re-verification
/// on hit; the exact digest keeps hits sound with zero extra work.)
///
/// Staleness is impossible by two independent guards:
///  1. every publish (Insert / Delete / merge) calls InvalidateAll;
///  2. a hit additionally requires the entry's tagged snapshot version to
///     equal the looking query's current version — so a Store racing a
///     publish can never be served afterwards (versions bump on every
///     publish, and equal versions imply identical live sets).
///
/// Capacity 0 (the ServingOptions::answer_cache_entries default) disables
/// the cache entirely; every method is then a counter-free no-op.
class AnswerCache {
 public:
  struct Key {
    uint64_t h1 = 0;
    uint64_t h2 = 0;
    friend bool operator==(const Key&, const Key&) = default;
  };

  /// Content digest of everything that determines `req`'s answer on a
  /// fixed snapshot. The metric is per-service (all requests share it), so
  /// it is not part of the key.
  static Key KeyFor(const QueryRequest& req);

  /// Sets capacity and registers the serving.cache.* counters. Called once
  /// from the service constructor, before any traffic.
  void Configure(size_t capacity, obs::MetricsRegistry* metrics);

  bool enabled() const { return capacity_ > 0; }

  /// On hit (key present AND entry tagged with `version`) copies the stored
  /// result into `out`, refreshes LRU order, and returns true. A version
  /// mismatch — an entry stored by a query that raced a publish — is erased
  /// and counted as a miss.
  bool Lookup(const Key& key, uint64_t version, QueryResult* out);

  /// Inserts (or refreshes) `res` under `key`, tagged with the snapshot
  /// version it was computed against, evicting the LRU tail past capacity.
  void Store(const Key& key, uint64_t version, const QueryResult& res);

  /// Drops every entry. Called by the write path after each publish.
  void InvalidateAll();

  uint64_t hits() const { return hits_.load(); }
  uint64_t misses() const { return misses_.load(); }
  uint64_t evictions() const { return evictions_.load(); }
  uint64_t invalidations() const { return invalidations_.load(); }

 private:
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.h1 ^ (k.h2 * 0x9e3779b97f4a7c15ull));
    }
  };
  struct Entry {
    Key key;
    uint64_t version = 0;
    QueryResult result;
  };

  size_t capacity_ = 0;
  std::mutex mu_;
  /// LRU order, most recent first; map values point into the list.
  std::list<Entry> lru_;
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> index_;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  obs::CounterHandle m_hits_;
  obs::CounterHandle m_misses_;
  obs::CounterHandle m_evictions_;
  obs::CounterHandle m_invalidations_;
};

/// The long-lived serving runtime around DitaEngine: where the engine is
/// build-once / query-once, DitaService multiplexes concurrent
/// Search/Join/KnnSearch traffic over a *mutating* table.
///
///  - **Scheduling**: every query passes the fair-share QueryScheduler
///    (cost-estimated from global-index stats, priority-shaped slot shares,
///    bounded head-of-line bypass) before touching the cluster.
///  - **Streaming ingest**: Insert/Delete land in a delta buffer that
///    queries scan linearly (exact — the scan uses the same verification
///    predicate as the index path — and funnel-accounted). Once the delta
///    reaches ServingOptions::merge_threshold, an epoch merge rebuilds the
///    base index with the delta folded in, on a background thread (or
///    inline with synchronous_merge).
///  - **Snapshot pinning**: queries pin an immutable TableSnapshot for
///    their whole lifetime, so ingest and merges running concurrently never
///    tear an in-flight query's view; ExplainLastQuery reports the epoch a
///    query ran against.
///
/// All three query kinds answer bit-identically to a fresh batch DitaEngine
/// built on the pinned snapshot's live set (the oracle property
/// serving_test enforces).
class DitaService {
 public:
  DitaService(std::shared_ptr<Cluster> cluster, const DitaConfig& config);
  ~DitaService();

  DitaService(const DitaService&) = delete;
  DitaService& operator=(const DitaService&) = delete;

  /// Builds the epoch-0 base index over `initial` (may be empty) and starts
  /// the background merge + executor threads. Must be called exactly once
  /// before any other method.
  Status Start(const Dataset& initial);

  /// Drains and joins the background threads. Idempotent; the destructor
  /// calls it. Queries submitted after Stop() fail with Unavailable.
  void Stop();

  /// Synchronous query execution: schedule (blocking for a fair-share slot
  /// grant), pin the freshest snapshot, run. Thread-safe; any number of
  /// Execute calls may run concurrently with each other and with ingest.
  Result<QueryResult> Execute(const QueryRequest& req) const;

  /// Asynchronous execution on the service's executor pool
  /// (ServingOptions::scheduler_threads). The request is owned by the
  /// future's job; a non-null req.ctx must outlive the future. With
  /// ServingOptions::max_batch_size > 1, an executor draining the queue
  /// coalesces a FIFO prefix of compatible requests (threshold searches
  /// without join targets) into one ExecuteBatch call — answers are
  /// bit-identical to sequential Execute calls on the same snapshot.
  std::future<Result<QueryResult>> Submit(QueryRequest req) const;

  /// Executes several requests as one scheduled unit: ONE fair-share grant
  /// (summed cost, most-urgent member priority), ONE pinned snapshot, the
  /// base engine's batched search (shared trie traversal + multi-query
  /// verify), and ONE delta pass whose per-insert VerifyPrecomp is computed
  /// once and scored against every member. Results are positional and
  /// per-member bit-identical to Execute against the same snapshot,
  /// including stats, serving info, and per-member error statuses.
  /// Requests that cannot coalesce (joins, kNN) fall back to standalone
  /// Execute calls with their own grants. A member whose ctx stops loses
  /// only its own answer.
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<QueryRequest>& reqs) const;

  /// Coalescing counters: batches executed through the coalesced Submit
  /// path since Start(), and the total queries those batches contained.
  uint64_t coalesced_batches() const { return coalesced_batches_.load(); }
  uint64_t coalesced_queries() const { return coalesced_queries_.load(); }

  /// Answer-cache counters (all zero while
  /// ServingOptions::answer_cache_entries is 0, the default).
  uint64_t cache_hits() const { return answer_cache_.hits(); }
  uint64_t cache_misses() const { return answer_cache_.misses(); }
  uint64_t cache_evictions() const { return answer_cache_.evictions(); }
  uint64_t cache_invalidations() const { return answer_cache_.invalidations(); }

  /// Streaming ingest. Insert requires >= 2 points and an id that is not
  /// currently live (re-inserting a deleted id is fine); Delete removes a
  /// pending insert directly or marks a base id deleted, and returns
  /// NotFound for ids that are not live. Both publish a new snapshot
  /// version; in-flight queries keep their pinned view.
  Status Insert(const Trajectory& t);
  Status Delete(TrajectoryId id);

  /// Runs an epoch merge now (rebuilding the base with the delta folded
  /// in), synchronously, regardless of merge_threshold. No-op when the
  /// delta is empty.
  Status ForceMerge();

  /// Pins the current snapshot: the returned view is immutable and stays
  /// valid for as long as the pointer is held, no matter what ingest or
  /// merges do afterwards.
  std::shared_ptr<const TableSnapshot> Pin() const;

  uint64_t epoch() const { return Pin()->epoch; }
  uint64_t version() const { return Pin()->version; }
  size_t live_size() const { return Pin()->live_size(); }
  size_t delta_ops() const { return Pin()->delta_ops(); }
  /// Epoch merges completed since Start().
  uint64_t merges() const;

  /// EXPLAIN for the most recent query on this service: kind, the epoch /
  /// version it ran against, the base filter funnel, and the delta-scan
  /// funnel. Empty string if no query ran yet.
  std::string ExplainLastQuery() const;

  /// Service-level rollup, fed by always-on instrumentation (independent of
  /// enable_metrics): per-kind log-bucketed latency histograms, queue /
  /// admission wait histograms, and the shed / degraded / cache counters an
  /// SLO report needs.
  struct ServiceStats {
    double uptime_seconds = 0.0;
    uint64_t queries = 0;  // completed requests, cache hits included
    uint64_t queries_search = 0;
    uint64_t queries_join = 0;
    uint64_t queries_knn = 0;
    uint64_t shed = 0;      // rejected at admission
    uint64_t degraded = 0;  // partial answers (stop/budget)
    uint64_t errors = 0;    // non-OK, non-shed completions
    uint64_t cache_hits = 0;
    uint64_t cache_misses = 0;
    uint64_t inserts = 0;
    uint64_t deletes = 0;
    uint64_t merges = 0;
    double merge_busy_seconds = 0.0;
    uint64_t coalesced_batches = 0;
    uint64_t coalesced_queries = 0;
    uint64_t recorded = 0;  // flight-recorder tickets ever written
    obs::Histogram::Snapshot latency_search;
    obs::Histogram::Snapshot latency_join;
    obs::Histogram::Snapshot latency_knn;
    obs::Histogram::Snapshot queue_wait;
    obs::Histogram::Snapshot admission_wait;
  };
  ServiceStats Stats() const;

  /// Human-readable ServiceStats: per-kind p50/p95/p99/p999 bounds,
  /// shed/degraded/cache rates, ingest and merge counters.
  std::string ExplainService() const;

  /// JSON export of the service rollup plus the flight recorder's last N
  /// request records ({"service": {...}, "requests": [...]}), the input
  /// tools/obs_report.py renders.
  std::string DumpFlightRecorder() const;

  const obs::FlightRecorder& flight_recorder() const {
    return flight_recorder_;
  }

  const QueryScheduler& scheduler() const { return *scheduler_; }
  const DitaConfig& config() const { return config_; }
  const std::shared_ptr<Cluster>& cluster() const { return cluster_; }

 private:
  struct Op {
    bool is_insert = false;
    Trajectory insert;
    TrajectoryId erase = -1;
  };

  /// Estimated admission cost of `req` against `snap` (cost_hint wins).
  uint64_t EstimateCost(const TableSnapshot& snap, const QueryRequest& req) const;

  /// True when `req` may join a coalesced batch: a threshold search with no
  /// join target (all such requests share metric and snapshot by
  /// construction, so one traversal can serve them all).
  static bool Coalescible(const QueryRequest& req) {
    return req.kind == QueryKind::kSearch && req.join_right == nullptr &&
           req.join_right_service == nullptr;
  }

  /// Intra-query phase boundaries on the service clock, stamped by the
  /// snapshot query bodies so the lifecycle record can split base-index work
  /// from the delta scan. Both default to "not stamped" (0) — callers fall
  /// back to attributing the whole body to the base phase.
  struct PhaseSplit {
    double base_done_seconds = 0.0;   ///< after the base-index pass
    double delta_done_seconds = 0.0;  ///< after the delta scan
  };

  /// Query bodies over pinned snapshots. `collect` mirrors
  /// QueryRequest::collect_stats.
  Result<QueryResult> SearchSnapshot(const TableSnapshot& snap,
                                     const QueryRequest& req,
                                     PhaseSplit* split = nullptr) const;
  Result<QueryResult> KnnSnapshot(const TableSnapshot& snap,
                                  const QueryRequest& req,
                                  PhaseSplit* split = nullptr) const;
  Result<QueryResult> JoinSnapshots(const TableSnapshot& left,
                                    const TableSnapshot& right,
                                    const QueryRequest& req,
                                    PhaseSplit* split = nullptr) const;

  /// Seconds since service construction on the service's steady clock — the
  /// timebase of every RequestRecord boundary.
  double NowSeconds() const { return service_clock_.Seconds(); }

  /// Cumulative merge-thread busy seconds as of `now` (counting the
  /// in-progress merge, if any). Two readings bracketing a request give its
  /// merge_overlap_seconds.
  double MergeBusyAt(double now) const;

  /// Execute body with an explicit arrival stamp and extra lifecycle flags:
  /// Execute passes NowSeconds() and 0; the executor pool passes the Submit
  /// enqueue time plus RequestRecord::kAsync.
  Result<QueryResult> ExecuteInternal(const QueryRequest& req,
                                      double arrival_seconds,
                                      uint8_t extra_flags) const;

  /// ExecuteBatch body with per-member arrival stamps (empty = "arriving
  /// now") and extra lifecycle flags; members served by the shared batch
  /// machinery additionally get RequestRecord::kCoalesced.
  std::vector<Result<QueryResult>> ExecuteBatchInternal(
      const std::vector<QueryRequest>& reqs,
      const std::vector<double>& arrivals, uint8_t extra_flags) const;

  /// Terminal accounting shared by every completion path (normal, cache
  /// hit, shed, error): derives total from `end_seconds`, turns the stashed
  /// merge-busy-at-arrival value into merge_overlap_seconds, observes the
  /// always-on histograms, bumps outcome counters, appends to the flight
  /// recorder, and mirrors the record onto res->serving.lifecycle when ok.
  /// On entry rec->merge_overlap_seconds must hold MergeBusyAt(arrival).
  void FinishRequest(obs::RequestRecord* rec, double end_seconds,
                     Result<QueryResult>* res) const;

  /// Search ids of `snap` matching (q, tau) — the building block the join
  /// delta terms reuse. Appends live matching ids (unsorted) to `out`.
  Status SearchIdsInto(const TableSnapshot& snap, const Trajectory& q,
                       double tau, QueryContext* ctx,
                       QueryResult::ServingInfo* acct,
                       std::vector<TrajectoryId>* out) const;

  /// One epoch merge: rebuild the base over (base \ deleted) + inserts,
  /// replay operations that arrived mid-merge, publish epoch+1. Returns
  /// immediately when the delta is empty or another merge is running.
  Status MergeOnce();
  /// Kicks the background thread (or merges inline under
  /// synchronous_merge) when the delta crossed merge_threshold.
  void MaybeScheduleMerge();

  void MergeLoop();
  void ExecutorLoop(size_t executor_index);

  void RecordExplain(const QueryResult& res) const;

  std::shared_ptr<Cluster> cluster_;
  DitaConfig config_;
  /// Config the base engines are built with: identical except the engine
  /// admission gate is disabled — the service's scheduler owns admission,
  /// and double-gating would deadlock composed queries (join terms issue
  /// nested base queries).
  DitaConfig base_config_;
  std::shared_ptr<TrajectoryDistance> distance_;
  std::unique_ptr<Verifier> verifier_;
  std::unique_ptr<QueryScheduler> scheduler_;
  bool started_ = false;

  /// Guards the published snapshot pointer (readers Pin() under it).
  mutable std::mutex snap_mu_;
  std::shared_ptr<const TableSnapshot> snap_;

  /// Serializes writers (Insert / Delete / merge publish) and guards the
  /// mid-merge op log. Mutable so const counters (merges()) can read under
  /// it.
  mutable std::mutex write_mu_;
  bool merging_ = false;
  std::vector<Op> op_log_;
  uint64_t merges_ = 0;

  /// Background merge thread. `stop_` is atomic so the executor pool and
  /// Submit can read it without taking merge_mu_; setters still hold the
  /// relevant mutex before notifying, so no wakeup is lost.
  std::thread merge_thread_;
  std::mutex merge_mu_;
  std::condition_variable merge_cv_;
  bool merge_requested_ = false;
  std::atomic<bool> stop_{false};

  /// Executor pool for Submit().
  struct Job {
    QueryRequest req;
    std::promise<Result<QueryResult>> promise;
    /// Service-clock stamp of Submit(): the request's lifecycle arrival, so
    /// queue_seconds covers executor queueing too.
    double enqueue_seconds = 0.0;
  };
  mutable std::mutex jobs_mu_;
  mutable std::condition_variable jobs_cv_;
  mutable std::deque<Job> jobs_;
  std::vector<std::thread> executors_;

  /// ExplainLastQuery state.
  mutable std::mutex explain_mu_;
  mutable std::string last_explain_;

  /// Mutable because the read path (const Execute) looks up and stores.
  mutable AnswerCache answer_cache_;

  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::CounterHandle m_inserts_;
  obs::CounterHandle m_deletes_;
  obs::CounterHandle m_merges_;
  obs::CounterHandle m_queries_;
  obs::CounterHandle m_delta_scanned_;
  obs::CounterHandle m_coalesced_queries_;
  obs::HistogramHandle h_batch_size_;
  obs::HistogramHandle h_latency_search_;
  obs::HistogramHandle h_latency_join_;
  obs::HistogramHandle h_latency_knn_;
  obs::HistogramHandle h_queue_wait_;
  obs::GaugeHandle g_inflight_cost_;
  obs::GaugeHandle g_queue_depth_;
  obs::GaugeHandle g_pinned_snapshots_;
  obs::GaugeHandle g_delta_bytes_;
  obs::GaugeHandle g_merge_backlog_;
  mutable std::atomic<uint64_t> coalesced_batches_{0};
  mutable std::atomic<uint64_t> coalesced_queries_{0};

  /// Always-on serving observability (independent of enable_metrics /
  /// enable_tracing): the flight recorder, per-kind latency + wait
  /// histograms, and outcome counters behind Stats() / ExplainService() /
  /// DumpFlightRecorder(). Mutable because the read path is const.
  WallTimer service_clock_;
  mutable obs::FlightRecorder flight_recorder_;
  mutable obs::Histogram lat_search_{obs::LatencyOptions()};
  mutable obs::Histogram lat_join_{obs::LatencyOptions()};
  mutable obs::Histogram lat_knn_{obs::LatencyOptions()};
  mutable obs::Histogram queue_wait_hist_{obs::LatencyOptions()};
  mutable obs::Histogram admission_wait_hist_{obs::LatencyOptions()};
  mutable std::atomic<uint64_t> request_seq_{0};
  mutable std::atomic<uint64_t> shed_count_{0};
  mutable std::atomic<uint64_t> degraded_count_{0};
  mutable std::atomic<uint64_t> errors_count_{0};
  std::atomic<uint64_t> inserts_count_{0};
  std::atomic<uint64_t> deletes_count_{0};
  mutable std::atomic<int64_t> pinned_queries_{0};

  /// Merge-overlap timebase, lock-free for readers: cumulative busy seconds
  /// of finished merges, and the start stamp of the in-progress merge
  /// (kMergeIdleBits when none), both stored as bit_cast double words.
  static constexpr uint64_t kMergeIdleBits = ~uint64_t{0};
  mutable std::atomic<uint64_t> merge_busy_bits_{0};
  std::atomic<uint64_t> merge_started_bits_{kMergeIdleBits};
};

}  // namespace dita

#endif  // DITA_SERVING_SERVICE_H_
