#include "serving/scheduler.h"

#include <algorithm>

#include "util/logging.h"

namespace dita {

namespace {
AdmissionGate::Options GateOptions(const QueryScheduler::Options& o) {
  AdmissionGate::Options g;
  g.max_inflight = o.max_inflight > 0 ? o.max_inflight : std::max<size_t>(1, o.slots);
  g.max_queued = o.max_queued;
  // The slot pool is the gate's cost budget: Admit(cost = slots wanted)
  // blocks until that many slots are free, and the gate's oversized-query
  // rule lets a full-pool query run alone instead of deadlocking.
  g.max_inflight_cost = o.slots;
  g.max_bypass = o.max_bypass;
  return g;
}
}  // namespace

QueryScheduler::QueryScheduler(const Options& options)
    : options_(options), gate_(GateOptions(options)) {
  DITA_CHECK(options_.slots >= 1);
}

size_t QueryScheduler::SlotsFor(int priority, uint64_t cost) const {
  const int p = std::clamp(priority, 0, 6);
  const size_t share = std::max<size_t>(1, options_.slots >> p);
  return static_cast<size_t>(
      std::clamp<uint64_t>(cost, 1, static_cast<uint64_t>(share)));
}

Status QueryScheduler::Acquire(int priority, uint64_t cost, QueryContext* ctx,
                               Grant* out, double* waited_seconds) {
  const size_t want = SlotsFor(priority, cost);
  AdmissionGate::Ticket ticket;
  DITA_RETURN_IF_ERROR(gate_.Admit(ctx, want, &ticket, waited_seconds));
  out->ticket_ = std::move(ticket);
  out->slots_ = want;
  return Status::OK();
}

}  // namespace dita
