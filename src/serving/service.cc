#include "serving/service.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace dita {

// ----------------------------------------------------------- answer cache --

namespace {

// splitmix64 fold step; seeds the two key lanes differently so the 128-bit
// digest has no cheap collisions across lanes.
uint64_t MixFold(uint64_t h, uint64_t v) {
  h += 0x9e3779b97f4a7c15ull + v;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

uint64_t DoubleBits(double d) {
  uint64_t b = 0;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

}  // namespace

AnswerCache::Key AnswerCache::KeyFor(const QueryRequest& req) {
  Key k{0x2545f4914f6cdd1dull, 0x6a09e667f3bcc909ull};
  const auto fold = [&k](uint64_t v) {
    k.h1 = MixFold(k.h1, v);
    k.h2 = MixFold(k.h2, k.h1 ^ v);
  };
  fold(static_cast<uint64_t>(req.kind));
  fold(DoubleBits(req.tau));
  fold(req.k);
  fold(DoubleBits(req.initial_tau));
  fold(req.collect_stats ? 1 : 0);
  fold(req.query.size());
  for (const Point& p : req.query.points()) {
    fold(DoubleBits(p.x));
    fold(DoubleBits(p.y));
  }
  return k;
}

void AnswerCache::Configure(size_t capacity, obs::MetricsRegistry* metrics) {
  capacity_ = capacity;
  if (capacity_ == 0) return;
  m_hits_ = {metrics, "serving.cache.hits"};
  m_misses_ = {metrics, "serving.cache.misses"};
  m_evictions_ = {metrics, "serving.cache.evictions"};
  m_invalidations_ = {metrics, "serving.cache.invalidations"};
}

bool AnswerCache::Lookup(const Key& key, uint64_t version, QueryResult* out) {
  if (capacity_ == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1);
    m_misses_.Increment();
    return false;
  }
  if (it->second->version != version) {
    // A Store that raced a publish: provably dead (versions only grow), so
    // reclaim the slot now rather than waiting for LRU pressure.
    lru_.erase(it->second);
    index_.erase(it);
    misses_.fetch_add(1);
    m_misses_.Increment();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->result;
  hits_.fetch_add(1);
  m_hits_.Increment();
  return true;
}

void AnswerCache::Store(const Key& key, uint64_t version,
                        const QueryResult& res) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->version = version;
    it->second->result = res;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, version, res});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.fetch_add(1);
    m_evictions_.Increment();
  }
}

void AnswerCache::InvalidateAll() {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  invalidations_.fetch_add(1);
  m_invalidations_.Increment();
}

DitaService::DitaService(std::shared_ptr<Cluster> cluster,
                         const DitaConfig& config)
    : cluster_(std::move(cluster)), config_(config), base_config_(config) {
  DITA_CHECK(cluster_ != nullptr);
  base_config_.serving.max_inflight_queries = 0;
  auto dist = MakeDistance(config_.distance, config_.distance_params);
  DITA_CHECK(dist.ok());
  distance_ = *dist;
  verifier_ = std::make_unique<Verifier>(distance_, config_);

  QueryScheduler::Options sopts;
  sopts.slots = config_.serving.scheduler_slots > 0
                    ? config_.serving.scheduler_slots
                    : cluster_->num_workers();
  sopts.max_inflight = config_.serving.max_inflight_queries;
  if (config_.serving.max_queued_queries > 0) {
    sopts.max_queued = config_.serving.max_queued_queries;
  }
  sopts.max_bypass = config_.serving.max_bypass;
  scheduler_ = std::make_unique<QueryScheduler>(sopts);

  tracer_ =
      config_.enable_tracing ? cluster_->EnableTracing() : cluster_->tracer();
  metrics_ =
      config_.enable_metrics ? cluster_->EnableMetrics() : cluster_->metrics();
  m_inserts_ = {metrics_, "serving.inserts"};
  m_deletes_ = {metrics_, "serving.deletes"};
  m_merges_ = {metrics_, "serving.merges"};
  m_queries_ = {metrics_, "serving.queries"};
  m_delta_scanned_ = {metrics_, "serving.delta.scanned"};
  m_coalesced_queries_ = {metrics_, "serving.batch.coalesced"};
  h_batch_size_ = {metrics_, "serving.batch.size",
                   obs::LinearBounds(1.0, 1.0, 33)};
  answer_cache_.Configure(config_.serving.answer_cache_entries, metrics_);
}

DitaService::~DitaService() { Stop(); }

Status DitaService::Start(const Dataset& initial) {
  if (started_) return Status::Internal("DitaService::Start called twice");

  auto snap = std::make_shared<TableSnapshot>();
  auto ids = std::make_shared<std::unordered_set<TrajectoryId>>();
  auto data = std::make_shared<std::vector<Trajectory>>(initial.trajectories());
  for (const Trajectory& t : *data) {
    if (t.size() < 2) {
      return Status::InvalidArgument(
          "DITA requires trajectories with at least 2 points");
    }
    if (!ids->insert(t.id()).second) {
      return Status::InvalidArgument("duplicate trajectory id in initial data");
    }
  }
  if (!data->empty()) {
    auto base = std::make_shared<DitaEngine>(cluster_, base_config_);
    DITA_RETURN_IF_ERROR(base->BuildIndex(initial));
    snap->base = std::move(base);
  }
  snap->base_data = std::move(data);
  snap->base_ids = std::move(ids);
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    snap_ = std::move(snap);
  }
  started_ = true;

  if (!config_.serving.synchronous_merge) {
    merge_thread_ = std::thread([this] { MergeLoop(); });
  }
  const size_t nexec = std::max<size_t>(1, config_.serving.scheduler_threads);
  executors_.reserve(nexec);
  for (size_t i = 0; i < nexec; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
  return Status::OK();
}

void DitaService::Stop() {
  {
    std::lock_guard<std::mutex> lock(merge_mu_);
    if (stop_.load()) return;
    stop_.store(true);
  }
  merge_cv_.notify_all();
  {
    // Taken and dropped so a worker between its predicate check and its
    // block still sees the notify.
    std::lock_guard<std::mutex> lock(jobs_mu_);
  }
  jobs_cv_.notify_all();
  if (merge_thread_.joinable()) merge_thread_.join();
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();
  // Fail whatever Submit jobs were still queued.
  std::deque<Job> orphans;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    orphans.swap(jobs_);
  }
  for (Job& j : orphans) {
    j.promise.set_value(Status::Unavailable("service stopped"));
  }
}

std::shared_ptr<const TableSnapshot> DitaService::Pin() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return snap_;
}

uint64_t DitaService::merges() const {
  std::lock_guard<std::mutex> lock(write_mu_);
  return merges_;
}

// ---------------------------------------------------------------- ingest --

Status DitaService::Insert(const Trajectory& t) {
  if (!started_) return Status::Internal("DitaService used before Start");
  if (t.size() < 2) {
    return Status::InvalidArgument(
        "DITA requires trajectories with at least 2 points");
  }
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    const std::shared_ptr<const TableSnapshot> cur = Pin();
    if (cur->IsLive(t.id())) {
      return Status::InvalidArgument("trajectory id is already live");
    }
    auto next = std::make_shared<TableSnapshot>(*cur);
    next->version = cur->version + 1;
    next->inserts.push_back(t);
    // Quantize the delta sketch once, here, in the epoch base's frame; the
    // delta scan of every future query reuses it (all-zero when the base
    // has no sketch tier, which also disables the scan-side test).
    next->insert_sigs.emplace_back();
    if (cur->base != nullptr && cur->base->SketchActive()) {
      next->insert_sigs.back() = BuildSignature(t, cur->base->sig_grid());
    }
    if (merging_) op_log_.push_back(Op{true, t, -1});
    {
      std::lock_guard<std::mutex> slock(snap_mu_);
      snap_ = std::move(next);
    }
  }
  answer_cache_.InvalidateAll();
  m_inserts_.Increment();
  MaybeScheduleMerge();
  return Status::OK();
}

Status DitaService::Delete(TrajectoryId id) {
  if (!started_) return Status::Internal("DitaService used before Start");
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    const std::shared_ptr<const TableSnapshot> cur = Pin();
    auto next = std::make_shared<TableSnapshot>(*cur);
    next->version = cur->version + 1;
    const auto it = std::find_if(
        next->inserts.begin(), next->inserts.end(),
        [id](const Trajectory& t) { return t.id() == id; });
    if (it != next->inserts.end()) {
      // A pending insert dies in the buffer; it never reaches `deleted`.
      next->insert_sigs.erase(next->insert_sigs.begin() +
                              (it - next->inserts.begin()));
      next->inserts.erase(it);
    } else if (cur->InBase(id) && cur->deleted.count(id) == 0) {
      next->deleted.insert(id);
    } else {
      return Status::NotFound("trajectory id is not live");
    }
    if (merging_) op_log_.push_back(Op{false, Trajectory(), id});
    {
      std::lock_guard<std::mutex> slock(snap_mu_);
      snap_ = std::move(next);
    }
  }
  answer_cache_.InvalidateAll();
  m_deletes_.Increment();
  MaybeScheduleMerge();
  return Status::OK();
}

void DitaService::MaybeScheduleMerge() {
  bool need = false;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    need = !merging_ &&
           Pin()->delta_ops() >= config_.serving.merge_threshold &&
           config_.serving.merge_threshold > 0;
  }
  if (!need) return;
  if (config_.serving.synchronous_merge) {
    // Inline merge: deterministic for tests and single-threaded harnesses.
    // Failure leaves the delta intact (queries stay exact, just slower), so
    // dropping the status here loses nothing but the retry.
    const Status merged = MergeOnce();
    (void)merged;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(merge_mu_);
    merge_requested_ = true;
  }
  merge_cv_.notify_one();
}

Status DitaService::ForceMerge() {
  if (!started_) return Status::Internal("DitaService used before Start");
  return MergeOnce();
}

Status DitaService::MergeOnce() {
  std::shared_ptr<const TableSnapshot> src;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (merging_) return Status::OK();  // another merge is already running
    src = Pin();
    if (src->delta_ops() == 0) return Status::OK();
    merging_ = true;
    op_log_.clear();
  }
  obs::SpanGuard merge_span(tracer_, "serving.merge");

  // Rebuild outside the write lock: queries keep answering from the old
  // snapshot, and concurrent writes keep landing in the *current* snapshot
  // (visible immediately) while also being recorded in op_log_ for replay.
  std::vector<Trajectory> new_data;
  new_data.reserve(src->base_size() + src->inserts.size());
  for (const Trajectory& t : *src->base_data) {
    if (src->deleted.count(t.id()) == 0) new_data.push_back(t);
  }
  for (const Trajectory& t : src->inserts) new_data.push_back(t);

  std::shared_ptr<DitaEngine> base;
  if (!new_data.empty()) {
    base = std::make_shared<DitaEngine>(cluster_, base_config_);
    const Status built = base->BuildIndex(Dataset(new_data));
    if (!built.ok()) {
      std::lock_guard<std::mutex> lock(write_mu_);
      merging_ = false;
      op_log_.clear();
      return built;
    }
  }

  auto ids = std::make_shared<std::unordered_set<TrajectoryId>>();
  ids->reserve(new_data.size());
  for (const Trajectory& t : new_data) ids->insert(t.id());

  {
    std::lock_guard<std::mutex> lock(write_mu_);
    const std::shared_ptr<const TableSnapshot> cur = Pin();
    auto next = std::make_shared<TableSnapshot>();
    next->epoch = src->epoch + 1;
    next->version = cur->version + 1;
    next->base = std::move(base);
    next->base_data =
        std::make_shared<std::vector<Trajectory>>(std::move(new_data));
    next->base_ids = std::move(ids);
    // Replay writes that raced the rebuild: they are already visible in
    // `cur`'s delta, but against the *old* base; re-expressing them against
    // the new base keeps the live set identical across the publish.
    for (Op& op : op_log_) {
      if (op.is_insert) {
        // The replayed insert belongs to the *new* epoch's delta, so its
        // sketch must be quantized in the new base's frame.
        next->insert_sigs.emplace_back();
        if (next->base != nullptr && next->base->SketchActive()) {
          next->insert_sigs.back() =
              BuildSignature(op.insert, next->base->sig_grid());
        }
        next->inserts.push_back(std::move(op.insert));
        continue;
      }
      const auto it = std::find_if(
          next->inserts.begin(), next->inserts.end(),
          [&op](const Trajectory& t) { return t.id() == op.erase; });
      if (it != next->inserts.end()) {
        next->insert_sigs.erase(next->insert_sigs.begin() +
                                (it - next->inserts.begin()));
        next->inserts.erase(it);
      } else if (next->base_ids->count(op.erase) > 0) {
        next->deleted.insert(op.erase);
      }
    }
    op_log_.clear();
    merging_ = false;
    ++merges_;
    {
      std::lock_guard<std::mutex> slock(snap_mu_);
      snap_ = std::move(next);
    }
  }
  answer_cache_.InvalidateAll();
  m_merges_.Increment();
  if (tracer_ != nullptr) tracer_->Instant("serving.epoch.published");
  // Writes that raced the rebuild may already exceed the threshold again.
  MaybeScheduleMerge();
  return Status::OK();
}

void DitaService::MergeLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(merge_mu_);
      merge_cv_.wait(lock,
                     [this] { return merge_requested_ || stop_.load(); });
      if (stop_.load()) return;
      merge_requested_ = false;
    }
    // Background merge failures (e.g. a fault-injected build) are retried
    // on the next threshold crossing; the delta keeps queries exact
    // meanwhile.
    const Status merged = MergeOnce();
    (void)merged;
  }
}

// --------------------------------------------------------------- queries --

uint64_t DitaService::EstimateCost(const TableSnapshot& snap,
                                   const QueryRequest& req) const {
  if (req.cost_hint > 0) return req.cost_hint;
  if (snap.base == nullptr) return 1;
  if (req.kind == QueryKind::kJoin) {
    QueryRequest probe = req;
    probe.join_right_service = nullptr;
    probe.join_right = nullptr;
    if (req.join_right_service != nullptr &&
        req.join_right_service != this) {
      const std::shared_ptr<const TableSnapshot> rs =
          req.join_right_service->Pin();
      if (rs->base != nullptr) probe.join_right = rs->base.get();
    } else if (req.join_right != nullptr) {
      probe.join_right = req.join_right;
    }
    // A null probe.join_right means self-join against our own base.
    return snap.base->EstimateQueryCost(probe);
  }
  return snap.base->EstimateQueryCost(req);
}

Result<QueryResult> DitaService::Execute(const QueryRequest& req) const {
  if (!started_) return Status::Internal("DitaService used before Start");
  // Answer cache (DESIGN.md §5g): a hit returns the stored result without
  // an admission grant — the point of the tier is that repeated reads skip
  // the scheduler and the engine entirely. Joins are never cached (their
  // answer depends on a second table's state), nor are context-carrying
  // requests (a deadline/budget can degrade the answer).
  AnswerCache::Key ckey;
  const bool cacheable =
      answer_cache_.enabled() && req.ctx == nullptr &&
      req.kind != QueryKind::kJoin && req.join_right == nullptr &&
      req.join_right_service == nullptr;
  if (cacheable) {
    ckey = AnswerCache::KeyFor(req);
    QueryResult hit;
    if (answer_cache_.Lookup(ckey, Pin()->version, &hit)) {
      m_queries_.Increment();
      if (req.collect_stats) RecordExplain(hit);
      return hit;
    }
  }
  // Cost is estimated against the snapshot current at arrival; the query
  // itself runs on the snapshot pinned *after* the grant, so it sees every
  // write that completed before it was scheduled.
  const uint64_t cost = EstimateCost(*Pin(), req);
  QueryScheduler::Grant grant;
  DITA_RETURN_IF_ERROR(scheduler_->Acquire(req.priority, cost, req.ctx, &grant));
  const std::shared_ptr<const TableSnapshot> snap = Pin();

  obs::SpanGuard span(tracer_, "serving.query");
  span.Arg("epoch", snap->epoch);
  m_queries_.Increment();

  Result<QueryResult> res = Status::OK();
  switch (req.kind) {
    case QueryKind::kSearch:
      res = SearchSnapshot(*snap, req);
      break;
    case QueryKind::kKnnSearch:
      res = KnnSnapshot(*snap, req);
      break;
    case QueryKind::kJoin: {
      if (req.join_right_service != nullptr && req.join_right != nullptr) {
        return Status::InvalidArgument(
            "set at most one of join_right / join_right_service");
      }
      if (req.join_right_service != nullptr &&
          req.join_right_service != this) {
        if (req.join_right_service->cluster_.get() != cluster_.get()) {
          return Status::InvalidArgument("joined tables must share a cluster");
        }
        const std::shared_ptr<const TableSnapshot> rsnap =
            req.join_right_service->Pin();
        res = JoinSnapshots(*snap, *rsnap, req);
      } else if (req.join_right != nullptr) {
        // Bare-engine right side: wrap it as a deltaless snapshot.
        TableSnapshot rsnap;
        rsnap.base = std::shared_ptr<const DitaEngine>(
            std::shared_ptr<const DitaEngine>(), req.join_right);
        res = JoinSnapshots(*snap, rsnap, req);
      } else {
        res = JoinSnapshots(*snap, *snap, req);
      }
      break;
    }
  }
  if (!res.ok()) return res;
  res->serving.epoch = snap->epoch;
  res->serving.version = snap->version;
  m_delta_scanned_.Add(res->serving.delta_scanned);
  if (req.collect_stats) RecordExplain(*res);
  // Only complete answers are cacheable; a hit is indistinguishable from a
  // recompute only when the stored result is the full one. The version tag
  // makes a Store racing a publish harmless (Lookup rejects it).
  if (cacheable && res->search_stats.termination.ok() &&
      res->search_stats.completeness >= 1.0) {
    answer_cache_.Store(ckey, snap->version, *res);
  }
  return res;
}

std::future<Result<QueryResult>> DitaService::Submit(QueryRequest req) const {
  Job job;
  job.req = std::move(req);
  std::future<Result<QueryResult>> fut = job.promise.get_future();
  if (stop_.load() || !started_) {
    job.promise.set_value(Status::Unavailable("service stopped"));
    return fut;
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.notify_one();
  return fut;
}

void DitaService::ExecutorLoop() {
  const size_t max_batch = std::max<size_t>(1, config_.serving.max_batch_size);
  while (true) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock,
                    [this] { return !jobs_.empty() || stop_.load(); });
      if (jobs_.empty()) return;  // stop_ with an empty queue
      batch.push_back(std::move(jobs_.front()));
      jobs_.pop_front();
      if (max_batch > 1 && Coalescible(batch.front().req)) {
        // Coalesce the FIFO *prefix* of compatible queued requests —
        // stopping at the first incompatible one preserves submission
        // order across the batch boundary.
        while (batch.size() < max_batch && !jobs_.empty() &&
               Coalescible(jobs_.front().req)) {
          batch.push_back(std::move(jobs_.front()));
          jobs_.pop_front();
        }
        if (batch.size() < max_batch && jobs_.empty() && !stop_.load() &&
            config_.serving.batch_window_seconds > 0.0) {
          // Linger briefly for more compatible work; an incompatible
          // arrival or the window expiring closes the batch.
          const auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(
                      config_.serving.batch_window_seconds));
          while (batch.size() < max_batch && !stop_.load()) {
            const bool woke = jobs_cv_.wait_until(
                lock, deadline,
                [this] { return !jobs_.empty() || stop_.load(); });
            if (!woke || stop_.load()) break;  // window expired or stopping
            if (jobs_.empty() || !Coalescible(jobs_.front().req)) break;
            batch.push_back(std::move(jobs_.front()));
            jobs_.pop_front();
          }
        }
      }
    }
    if (batch.size() == 1) {
      batch.front().promise.set_value(Execute(batch.front().req));
      continue;
    }
    coalesced_batches_.fetch_add(1);
    coalesced_queries_.fetch_add(batch.size());
    m_coalesced_queries_.Add(batch.size());
    h_batch_size_.Observe(static_cast<double>(batch.size()));
    std::vector<QueryRequest> reqs;
    reqs.reserve(batch.size());
    for (Job& j : batch) reqs.push_back(std::move(j.req));
    std::vector<Result<QueryResult>> results = ExecuteBatch(reqs);
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
}

std::vector<Result<QueryResult>> DitaService::ExecuteBatch(
    const std::vector<QueryRequest>& reqs) const {
  std::vector<Result<QueryResult>> out;
  out.reserve(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    out.push_back(
        Result<QueryResult>(Status::Internal("batch slot not filled")));
  }
  if (reqs.empty()) return out;
  if (!started_) {
    for (auto& r : out) r = Status::Internal("DitaService used before Start");
    return out;
  }
  // Joins and kNN take the standalone path with their own grants; only
  // threshold searches share the batch machinery. Cache hits peel off
  // before admission, exactly as in Execute — each hit is individually
  // consistent with the version it was stored against.
  std::vector<size_t> members;
  const bool cache_on = answer_cache_.enabled();
  const uint64_t look_version = cache_on ? Pin()->version : 0;
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (!Coalescible(reqs[i])) {
      out[i] = Execute(reqs[i]);
      continue;
    }
    if (cache_on && reqs[i].ctx == nullptr) {
      QueryResult hit;
      if (answer_cache_.Lookup(AnswerCache::KeyFor(reqs[i]), look_version,
                               &hit)) {
        m_queries_.Increment();
        if (reqs[i].collect_stats) RecordExplain(hit);
        out[i] = std::move(hit);
        continue;
      }
    }
    members.push_back(i);
  }
  if (members.empty()) return out;
  if (members.size() == 1) {
    out[members[0]] = Execute(reqs[members[0]]);
    return out;
  }
  const size_t n = members.size();

  // One fair-share grant covers the whole batch: the members' summed cost
  // at the most urgent member's priority, so the scheduler sees the same
  // load the standalone calls would have presented.
  uint64_t cost = 0;
  int priority = reqs[members[0]].priority;
  {
    const std::shared_ptr<const TableSnapshot> cur = Pin();
    for (const size_t i : members) {
      cost += EstimateCost(*cur, reqs[i]);
      priority = std::min(priority, reqs[i].priority);
    }
  }
  QueryScheduler::Grant grant;
  const Status adm = scheduler_->Acquire(priority, cost, nullptr, &grant);
  if (!adm.ok()) {
    for (const size_t i : members) out[i] = adm;
    return out;
  }
  const std::shared_ptr<const TableSnapshot> snap = Pin();

  obs::SpanGuard span(tracer_, "serving.query.batch");
  span.Arg("epoch", snap->epoch);
  span.Arg("queries", n);
  m_queries_.Add(n);

  std::vector<QueryResult> res(n);
  std::vector<std::vector<TrajectoryId>> ids(n);
  std::vector<uint8_t> live(n, 1);
  if (snap->base != nullptr) {
    std::vector<QueryRequest> base_reqs;
    base_reqs.reserve(n);
    for (const size_t i : members) {
      QueryRequest br = reqs[i];
      br.join_right = nullptr;
      br.join_right_service = nullptr;
      base_reqs.push_back(std::move(br));
    }
    std::vector<Result<QueryResult>> base_res =
        snap->base->ExecuteBatch(base_reqs);
    for (size_t m = 0; m < n; ++m) {
      if (!base_res[m].ok()) {
        out[members[m]] = base_res[m].status();
        live[m] = 0;
        continue;
      }
      res[m].search_stats = std::move(base_res[m]->search_stats);
      for (const TrajectoryId id : base_res[m]->ids) {
        if (snap->deleted.count(id) > 0) {
          ++res[m].serving.deleted_filtered;
        } else {
          ids[m].push_back(id);
        }
      }
    }
  } else {
    for (size_t m = 0; m < n; ++m) {
      const QueryRequest& req = reqs[members[m]];
      if (req.query.size() < 2) {
        out[members[m]] = Status::InvalidArgument(
            "query needs at least 2 points");
        live[m] = 0;
      } else if (req.tau < 0) {
        out[members[m]] =
            Status::InvalidArgument("threshold must be non-negative");
        live[m] = 0;
      }
    }
  }

  // Delta scan: each insert's VerifyPrecomp is computed ONCE and scored
  // against every live member — the serving-side share of the batch. Per
  // member, the scan order, counters, and funnel are exactly the standalone
  // SearchSnapshot delta pass.
  std::vector<VerifyPrecomp> qps;
  qps.reserve(n);
  std::vector<VerifyStats> dstats(n);
  for (const size_t i : members) {
    qps.push_back(VerifyPrecomp::For(reqs[i].query, config_.verify.cell_size));
  }
  // Level-0 sketch over the delta (DESIGN.md §5g): the stored insert
  // signatures are in the base's frame, so each member's dilated query set
  // is built there too; the per-insert subset test then mirrors the
  // indexed path's exactly.
  const bool sketch = snap->base != nullptr && snap->base->SketchActive() &&
                      !snap->inserts.empty();
  std::vector<SigBits> dsig(sketch ? n : 0);
  if (sketch) {
    for (size_t m = 0; m < n; ++m) {
      if (!live[m]) continue;
      const QueryRequest& req = reqs[members[m]];
      dsig[m] = snap->base->DilatedQuerySig(req.query, req.tau);
    }
  }
  for (size_t d = 0; d < snap->inserts.size(); ++d) {
    const Trajectory& t = snap->inserts[d];
    VerifyPrecomp tp = VerifyPrecomp::For(t, config_.verify.cell_size);
    if (sketch) tp.sig = snap->insert_sigs[d];
    for (size_t m = 0; m < n; ++m) {
      if (!live[m]) continue;
      const QueryRequest& req = reqs[members[m]];
      ++res[m].serving.delta_scanned;
      if (verifier_->Verify(t, tp, req.query, qps[m], req.tau, &dstats[m],
                            sketch ? &dsig[m] : nullptr)) {
        ids[m].push_back(t.id());
        ++res[m].serving.delta_matches;
      }
    }
  }

  for (size_t m = 0; m < n; ++m) {
    if (!live[m]) continue;
    const QueryRequest& req = reqs[members[m]];
    res[m].kind = QueryKind::kSearch;
    if (!snap->inserts.empty() && req.collect_stats) {
      res[m].serving.delta_funnel.AddLevel("delta buffer",
                                           snap->inserts.size());
      res[m].serving.delta_funnel.AddLevel(
          "sketch signature", dstats[m].pairs - dstats[m].pruned_by_sketch);
      res[m].serving.delta_funnel.AddLevel(
          "mbr coverage", dstats[m].pairs - dstats[m].pruned_by_sketch -
                              dstats[m].pruned_by_mbr);
      res[m].serving.delta_funnel.AddLevel("cell bound",
                                           dstats[m].dp_computed);
      res[m].serving.delta_funnel.AddLevel("threshold dp",
                                           dstats[m].accepted);
    }
    std::sort(ids[m].begin(), ids[m].end());
    res[m].ids = std::move(ids[m]);
    if (req.collect_stats) res[m].search_stats.results = res[m].ids.size();
    res[m].serving.epoch = snap->epoch;
    res[m].serving.version = snap->version;
    m_delta_scanned_.Add(res[m].serving.delta_scanned);
    if (req.collect_stats) RecordExplain(res[m]);
    if (cache_on && req.ctx == nullptr &&
        res[m].search_stats.termination.ok() &&
        res[m].search_stats.completeness >= 1.0) {
      answer_cache_.Store(AnswerCache::KeyFor(req), snap->version, res[m]);
    }
    out[members[m]] = std::move(res[m]);
  }
  return out;
}

Status DitaService::SearchIdsInto(const TableSnapshot& snap,
                                  const Trajectory& q, double tau,
                                  QueryContext* ctx,
                                  QueryResult::ServingInfo* acct,
                                  std::vector<TrajectoryId>* out) const {
  if (snap.base != nullptr) {
    QueryRequest base_req;
    base_req.kind = QueryKind::kSearch;
    base_req.query = q;
    base_req.tau = tau;
    base_req.ctx = ctx;
    base_req.collect_stats = false;
    auto r = snap.base->Execute(base_req);
    DITA_RETURN_IF_ERROR(r.status());
    for (const TrajectoryId id : r->ids) {
      if (snap.deleted.count(id) > 0) {
        ++acct->deleted_filtered;
      } else {
        out->push_back(id);
      }
    }
  } else {
    if (q.size() < 2) {
      return Status::InvalidArgument("query needs at least 2 points");
    }
    if (tau < 0) {
      return Status::InvalidArgument("threshold must be non-negative");
    }
  }
  // Delta scan: exact, because Verifier::Verify is the same accept
  // predicate the indexed path ends in (sound filters + thresholded DP).
  // The level-0 sketch test reuses the signatures Insert quantized in the
  // base's frame against the query's dilated set in that same frame.
  const VerifyPrecomp qp = VerifyPrecomp::For(q, config_.verify.cell_size);
  const bool sketch = snap.base != nullptr && snap.base->SketchActive() &&
                      !snap.inserts.empty();
  SigBits dilated;
  if (sketch) dilated = snap.base->DilatedQuerySig(q, tau);
  VerifyStats dstats;
  for (size_t d = 0; d < snap.inserts.size(); ++d) {
    const Trajectory& t = snap.inserts[d];
    ++acct->delta_scanned;
    VerifyPrecomp tp = VerifyPrecomp::For(t, config_.verify.cell_size);
    if (sketch) tp.sig = snap.insert_sigs[d];
    if (verifier_->Verify(t, tp, q, qp, tau, &dstats,
                          sketch ? &dilated : nullptr)) {
      out->push_back(t.id());
      ++acct->delta_matches;
    }
  }
  if (!snap.inserts.empty()) {
    acct->delta_funnel.AddLevel("delta buffer", snap.inserts.size());
    acct->delta_funnel.AddLevel("sketch signature",
                                dstats.pairs - dstats.pruned_by_sketch);
    acct->delta_funnel.AddLevel(
        "mbr coverage",
        dstats.pairs - dstats.pruned_by_sketch - dstats.pruned_by_mbr);
    acct->delta_funnel.AddLevel("cell bound", dstats.dp_computed);
    acct->delta_funnel.AddLevel("threshold dp", dstats.accepted);
  }
  return Status::OK();
}

Result<QueryResult> DitaService::SearchSnapshot(const TableSnapshot& snap,
                                                const QueryRequest& req) const {
  QueryResult res;
  res.kind = QueryKind::kSearch;
  std::vector<TrajectoryId> ids;
  if (snap.base != nullptr) {
    QueryRequest base_req = req;
    base_req.join_right = nullptr;
    base_req.join_right_service = nullptr;
    auto r = snap.base->Execute(base_req);
    DITA_RETURN_IF_ERROR(r.status());
    res.search_stats = std::move(r->search_stats);
    for (const TrajectoryId id : r->ids) {
      if (snap.deleted.count(id) > 0) {
        ++res.serving.deleted_filtered;
      } else {
        ids.push_back(id);
      }
    }
  } else {
    if (req.query.size() < 2) {
      return Status::InvalidArgument("query needs at least 2 points");
    }
    if (req.tau < 0) {
      return Status::InvalidArgument("threshold must be non-negative");
    }
  }
  const VerifyPrecomp qp =
      VerifyPrecomp::For(req.query, config_.verify.cell_size);
  const bool sketch = snap.base != nullptr && snap.base->SketchActive() &&
                      !snap.inserts.empty();
  SigBits dilated;
  if (sketch) dilated = snap.base->DilatedQuerySig(req.query, req.tau);
  VerifyStats dstats;
  for (size_t d = 0; d < snap.inserts.size(); ++d) {
    const Trajectory& t = snap.inserts[d];
    ++res.serving.delta_scanned;
    VerifyPrecomp tp = VerifyPrecomp::For(t, config_.verify.cell_size);
    if (sketch) tp.sig = snap.insert_sigs[d];
    if (verifier_->Verify(t, tp, req.query, qp, req.tau, &dstats,
                          sketch ? &dilated : nullptr)) {
      ids.push_back(t.id());
      ++res.serving.delta_matches;
    }
  }
  if (!snap.inserts.empty() && req.collect_stats) {
    res.serving.delta_funnel.AddLevel("delta buffer", snap.inserts.size());
    res.serving.delta_funnel.AddLevel("sketch signature",
                                      dstats.pairs - dstats.pruned_by_sketch);
    res.serving.delta_funnel.AddLevel(
        "mbr coverage",
        dstats.pairs - dstats.pruned_by_sketch - dstats.pruned_by_mbr);
    res.serving.delta_funnel.AddLevel("cell bound", dstats.dp_computed);
    res.serving.delta_funnel.AddLevel("threshold dp", dstats.accepted);
  }
  std::sort(ids.begin(), ids.end());
  res.ids = std::move(ids);
  if (req.collect_stats) res.search_stats.results = res.ids.size();
  return res;
}

Result<QueryResult> DitaService::KnnSnapshot(const TableSnapshot& snap,
                                             const QueryRequest& req) const {
  QueryResult res;
  res.kind = QueryKind::kKnnSearch;
  if (req.query.size() < 2) {
    return Status::InvalidArgument("query needs at least 2 points");
  }
  if (req.k == 0) return res;
  if (req.k > snap.live_size()) {
    return Status::InvalidArgument("k exceeds the table cardinality");
  }
  std::vector<std::pair<TrajectoryId, double>> scored;
  if (snap.base != nullptr) {
    // Deleted ids may occupy up to |deleted| of the base's top slots, so
    // over-fetch by that much; the top-k *live* base answers are then
    // guaranteed to be present.
    const size_t kbase =
        std::min(snap.base_size(), req.k + snap.deleted.size());
    QueryRequest base_req = req;
    base_req.k = kbase;
    base_req.join_right = nullptr;
    base_req.join_right_service = nullptr;
    auto r = snap.base->Execute(base_req);
    DITA_RETURN_IF_ERROR(r.status());
    res.search_stats = std::move(r->search_stats);
    for (const auto& [id, d] : r->neighbors) {
      if (snap.deleted.count(id) > 0) {
        ++res.serving.deleted_filtered;
      } else {
        scored.emplace_back(id, d);
      }
    }
  }
  // Delta trajectories are scored with the same DP kernel the engine uses,
  // so merged distances are bit-comparable with the base's.
  for (const Trajectory& t : snap.inserts) {
    ++res.serving.delta_scanned;
    scored.emplace_back(t.id(), distance_->Compute(t, req.query));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  if (scored.size() > req.k) scored.resize(req.k);
  for (const auto& [id, d] : scored) {
    (void)d;
    if (snap.base_ids == nullptr || snap.base_ids->count(id) == 0) {
      ++res.serving.delta_matches;
    }
  }
  res.neighbors = std::move(scored);
  if (req.collect_stats) res.search_stats.results = res.neighbors.size();
  return res;
}

Result<QueryResult> DitaService::JoinSnapshots(const TableSnapshot& left,
                                               const TableSnapshot& right,
                                               const QueryRequest& req) const {
  QueryResult res;
  res.kind = QueryKind::kJoin;
  if (req.tau < 0) {
    return Status::InvalidArgument("threshold must be non-negative");
  }
  std::vector<std::pair<TrajectoryId, TrajectoryId>> pairs;

  // Term 1: base x base through the distributed join, minus pairs whose
  // endpoint died. (The three terms partition live x live: term 1 covers
  // live-base x live-base, term 2 the left delta against everything live on
  // the right, term 3 the live left base against the right delta — disjoint
  // by construction, so no dedup pass is needed.)
  if (left.base != nullptr && right.base != nullptr) {
    QueryRequest base_req = req;
    base_req.join_right = right.base.get();
    base_req.join_right_service = nullptr;
    auto r = left.base->Execute(base_req);
    DITA_RETURN_IF_ERROR(r.status());
    res.join_stats = std::move(r->join_stats);
    for (const auto& [l, rr] : r->pairs) {
      if (left.deleted.count(l) > 0 || right.deleted.count(rr) > 0) {
        ++res.serving.deleted_filtered;
      } else {
        pairs.emplace_back(l, rr);
      }
    }
  }

  // Term 2: left delta x live right (base and delta of the right snapshot).
  for (const Trajectory& t : left.inserts) {
    ++res.serving.delta_scanned;
    std::vector<TrajectoryId> rids;
    DITA_RETURN_IF_ERROR(
        SearchIdsInto(right, t, req.tau, req.ctx, &res.serving, &rids));
    for (const TrajectoryId rid : rids) {
      pairs.emplace_back(t.id(), rid);
      ++res.serving.delta_matches;
    }
  }

  // Term 3: live left base x right delta. Distance kernels are symmetric
  // under argument swap (the batch join already relies on this: edge
  // orientation decides which side ships), so searching the left base with
  // a right-delta trajectory tests exactly f(left, right) <= tau.
  if (left.base != nullptr) {
    for (const Trajectory& t : right.inserts) {
      ++res.serving.delta_scanned;
      QueryRequest probe;
      probe.kind = QueryKind::kSearch;
      probe.query = t;
      probe.tau = req.tau;
      probe.ctx = req.ctx;
      probe.collect_stats = false;
      auto r = left.base->Execute(probe);
      DITA_RETURN_IF_ERROR(r.status());
      for (const TrajectoryId lid : r->ids) {
        if (left.deleted.count(lid) > 0) {
          ++res.serving.deleted_filtered;
          continue;
        }
        pairs.emplace_back(lid, t.id());
        ++res.serving.delta_matches;
      }
    }
  }

  std::sort(pairs.begin(), pairs.end());
  res.pairs = std::move(pairs);
  if (req.collect_stats) res.join_stats.result_pairs = res.pairs.size();
  return res;
}

// ---------------------------------------------------------------- explain --

void DitaService::RecordExplain(const QueryResult& res) const {
  std::ostringstream out;
  const char* kind = res.kind == QueryKind::kSearch
                         ? "similarity search"
                         : (res.kind == QueryKind::kJoin ? "trajectory join"
                                                         : "knn search");
  out << "== Serving query (" << kind << ") ==\n"
      << "epoch: " << res.serving.epoch << ", version: " << res.serving.version
      << "\n";
  const obs::FilterFunnel& base_funnel = res.kind == QueryKind::kJoin
                                             ? res.join_stats.funnel
                                             : res.search_stats.funnel;
  if (!base_funnel.empty()) out << base_funnel.ToTable();
  out << "delta: scanned " << res.serving.delta_scanned << ", matched "
      << res.serving.delta_matches << ", deleted filtered "
      << res.serving.deleted_filtered << "\n";
  if (!res.serving.delta_funnel.empty()) {
    out << res.serving.delta_funnel.ToTable();
  }
  const size_t results = res.kind == QueryKind::kSearch
                             ? res.ids.size()
                             : (res.kind == QueryKind::kJoin
                                    ? res.pairs.size()
                                    : res.neighbors.size());
  out << "results: " << results << "\n";
  std::lock_guard<std::mutex> lock(explain_mu_);
  last_explain_ = out.str();
}

std::string DitaService::ExplainLastQuery() const {
  std::lock_guard<std::mutex> lock(explain_mu_);
  return last_explain_;
}

}  // namespace dita
