#include "serving/service.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <limits>
#include <cstring>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "obs/export.h"
#include "util/logging.h"
#include "util/timer.h"

namespace dita {

// ----------------------------------------------------------- answer cache --

namespace {

// splitmix64 fold step; seeds the two key lanes differently so the 128-bit
// digest has no cheap collisions across lanes.
uint64_t MixFold(uint64_t h, uint64_t v) {
  h += 0x9e3779b97f4a7c15ull + v;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

uint64_t DoubleBits(double d) {
  uint64_t b = 0;
  std::memcpy(&b, &d, sizeof(b));
  return b;
}

// Approximate resident bytes of a snapshot's unmerged delta: insert points
// plus the deleted-id set. Feeds the serving.delta.bytes gauge.
uint64_t DeltaBytes(const TableSnapshot& snap) {
  uint64_t bytes = 0;
  for (const Trajectory& t : snap.inserts) bytes += t.size() * sizeof(Point);
  bytes += snap.deleted.size() * sizeof(TrajectoryId);
  return bytes;
}

const char* KindName(uint8_t kind) {
  switch (static_cast<QueryKind>(kind)) {
    case QueryKind::kSearch:
      return "search";
    case QueryKind::kJoin:
      return "join";
    case QueryKind::kKnnSearch:
      return "knn";
  }
  return "unknown";
}

}  // namespace

AnswerCache::Key AnswerCache::KeyFor(const QueryRequest& req) {
  Key k{0x2545f4914f6cdd1dull, 0x6a09e667f3bcc909ull};
  const auto fold = [&k](uint64_t v) {
    k.h1 = MixFold(k.h1, v);
    k.h2 = MixFold(k.h2, k.h1 ^ v);
  };
  fold(static_cast<uint64_t>(req.kind));
  fold(DoubleBits(req.tau));
  fold(req.k);
  fold(DoubleBits(req.initial_tau));
  fold(req.collect_stats ? 1 : 0);
  fold(req.query.size());
  for (const Point& p : req.query.points()) {
    fold(DoubleBits(p.x));
    fold(DoubleBits(p.y));
  }
  return k;
}

void AnswerCache::Configure(size_t capacity, obs::MetricsRegistry* metrics) {
  capacity_ = capacity;
  if (capacity_ == 0) return;
  m_hits_ = {metrics, "serving.cache.hits"};
  m_misses_ = {metrics, "serving.cache.misses"};
  m_evictions_ = {metrics, "serving.cache.evictions"};
  m_invalidations_ = {metrics, "serving.cache.invalidations"};
}

bool AnswerCache::Lookup(const Key& key, uint64_t version, QueryResult* out) {
  if (capacity_ == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    misses_.fetch_add(1);
    m_misses_.Increment();
    return false;
  }
  if (it->second->version != version) {
    // A Store that raced a publish: provably dead (versions only grow), so
    // reclaim the slot now rather than waiting for LRU pressure.
    lru_.erase(it->second);
    index_.erase(it);
    misses_.fetch_add(1);
    m_misses_.Increment();
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  *out = it->second->result;
  hits_.fetch_add(1);
  m_hits_.Increment();
  return true;
}

void AnswerCache::Store(const Key& key, uint64_t version,
                        const QueryResult& res) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->version = version;
    it->second->result = res;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, version, res});
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    evictions_.fetch_add(1);
    m_evictions_.Increment();
  }
}

void AnswerCache::InvalidateAll() {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
  invalidations_.fetch_add(1);
  m_invalidations_.Increment();
}

DitaService::DitaService(std::shared_ptr<Cluster> cluster,
                         const DitaConfig& config)
    : cluster_(std::move(cluster)),
      config_(config),
      base_config_(config),
      flight_recorder_(config.serving.flight_recorder_entries) {
  DITA_CHECK(cluster_ != nullptr);
  base_config_.serving.max_inflight_queries = 0;
  auto dist = MakeDistance(config_.distance, config_.distance_params);
  DITA_CHECK(dist.ok());
  distance_ = *dist;
  verifier_ = std::make_unique<Verifier>(distance_, config_);

  QueryScheduler::Options sopts;
  sopts.slots = config_.serving.scheduler_slots > 0
                    ? config_.serving.scheduler_slots
                    : cluster_->num_workers();
  sopts.max_inflight = config_.serving.max_inflight_queries;
  if (config_.serving.max_queued_queries > 0) {
    sopts.max_queued = config_.serving.max_queued_queries;
  }
  sopts.max_bypass = config_.serving.max_bypass;
  scheduler_ = std::make_unique<QueryScheduler>(sopts);

  tracer_ =
      config_.enable_tracing ? cluster_->EnableTracing() : cluster_->tracer();
  metrics_ =
      config_.enable_metrics ? cluster_->EnableMetrics() : cluster_->metrics();
  m_inserts_ = {metrics_, "serving.inserts"};
  m_deletes_ = {metrics_, "serving.deletes"};
  m_merges_ = {metrics_, "serving.merges"};
  m_queries_ = {metrics_, "serving.queries"};
  m_delta_scanned_ = {metrics_, "serving.delta.scanned"};
  m_coalesced_queries_ = {metrics_, "serving.batch.coalesced"};
  h_batch_size_ = {metrics_, "serving.batch.size", obs::CountOptions()};
  h_latency_search_ = {metrics_, "serving.latency.search_seconds",
                       obs::LatencyOptions()};
  h_latency_join_ = {metrics_, "serving.latency.join_seconds",
                     obs::LatencyOptions()};
  h_latency_knn_ = {metrics_, "serving.latency.knn_seconds",
                    obs::LatencyOptions()};
  h_queue_wait_ = {metrics_, "serving.queue_wait_seconds",
                   obs::LatencyOptions()};
  g_inflight_cost_ = {metrics_, "serving.inflight_cost"};
  g_queue_depth_ = {metrics_, "serving.queue.depth"};
  g_pinned_snapshots_ = {metrics_, "serving.pinned_snapshots"};
  g_delta_bytes_ = {metrics_, "serving.delta.bytes"};
  g_merge_backlog_ = {metrics_, "serving.merge.backlog"};
  answer_cache_.Configure(config_.serving.answer_cache_entries, metrics_);
}

DitaService::~DitaService() { Stop(); }

Status DitaService::Start(const Dataset& initial) {
  if (started_) return Status::Internal("DitaService::Start called twice");

  auto snap = std::make_shared<TableSnapshot>();
  auto ids = std::make_shared<std::unordered_set<TrajectoryId>>();
  auto data = std::make_shared<std::vector<Trajectory>>(initial.trajectories());
  for (const Trajectory& t : *data) {
    if (t.size() < 2) {
      return Status::InvalidArgument(
          "DITA requires trajectories with at least 2 points");
    }
    if (!ids->insert(t.id()).second) {
      return Status::InvalidArgument("duplicate trajectory id in initial data");
    }
  }
  if (!data->empty()) {
    auto base = std::make_shared<DitaEngine>(cluster_, base_config_);
    DITA_RETURN_IF_ERROR(base->BuildIndex(initial));
    snap->base = std::move(base);
  }
  snap->base_data = std::move(data);
  snap->base_ids = std::move(ids);
  {
    std::lock_guard<std::mutex> lock(snap_mu_);
    snap_ = std::move(snap);
  }
  started_ = true;

  if (!config_.serving.synchronous_merge) {
    merge_thread_ = std::thread([this] { MergeLoop(); });
  }
  const size_t nexec = std::max<size_t>(1, config_.serving.scheduler_threads);
  executors_.reserve(nexec);
  for (size_t i = 0; i < nexec; ++i) {
    executors_.emplace_back([this, i] { ExecutorLoop(i); });
  }
  return Status::OK();
}

void DitaService::Stop() {
  {
    std::lock_guard<std::mutex> lock(merge_mu_);
    if (stop_.load()) return;
    stop_.store(true);
  }
  merge_cv_.notify_all();
  {
    // Taken and dropped so a worker between its predicate check and its
    // block still sees the notify.
    std::lock_guard<std::mutex> lock(jobs_mu_);
  }
  jobs_cv_.notify_all();
  if (merge_thread_.joinable()) merge_thread_.join();
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();
  // Fail whatever Submit jobs were still queued.
  std::deque<Job> orphans;
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    orphans.swap(jobs_);
  }
  for (Job& j : orphans) {
    j.promise.set_value(Status::Unavailable("service stopped"));
  }
}

std::shared_ptr<const TableSnapshot> DitaService::Pin() const {
  std::lock_guard<std::mutex> lock(snap_mu_);
  return snap_;
}

uint64_t DitaService::merges() const {
  std::lock_guard<std::mutex> lock(write_mu_);
  return merges_;
}

// ---------------------------------------------------------------- ingest --

Status DitaService::Insert(const Trajectory& t) {
  if (!started_) return Status::Internal("DitaService used before Start");
  if (t.size() < 2) {
    return Status::InvalidArgument(
        "DITA requires trajectories with at least 2 points");
  }
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    const std::shared_ptr<const TableSnapshot> cur = Pin();
    if (cur->IsLive(t.id())) {
      return Status::InvalidArgument("trajectory id is already live");
    }
    auto next = std::make_shared<TableSnapshot>(*cur);
    next->version = cur->version + 1;
    next->inserts.push_back(t);
    // Quantize the delta sketch once, here, in the epoch base's frame; the
    // delta scan of every future query reuses it (all-zero when the base
    // has no sketch tier, which also disables the scan-side test).
    next->insert_sigs.emplace_back();
    if (cur->base != nullptr && cur->base->SketchActive()) {
      next->insert_sigs.back() = BuildSignature(t, cur->base->sig_grid());
    }
    if (merging_) op_log_.push_back(Op{true, t, -1});
    {
      std::lock_guard<std::mutex> slock(snap_mu_);
      snap_ = std::move(next);
    }
  }
  answer_cache_.InvalidateAll();
  m_inserts_.Increment();
  inserts_count_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::shared_ptr<const TableSnapshot> now_snap = Pin();
    g_delta_bytes_.Set(static_cast<int64_t>(DeltaBytes(*now_snap)));
    g_merge_backlog_.Set(static_cast<int64_t>(now_snap->delta_ops()));
  }
  MaybeScheduleMerge();
  return Status::OK();
}

Status DitaService::Delete(TrajectoryId id) {
  if (!started_) return Status::Internal("DitaService used before Start");
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    const std::shared_ptr<const TableSnapshot> cur = Pin();
    auto next = std::make_shared<TableSnapshot>(*cur);
    next->version = cur->version + 1;
    const auto it = std::find_if(
        next->inserts.begin(), next->inserts.end(),
        [id](const Trajectory& t) { return t.id() == id; });
    if (it != next->inserts.end()) {
      // A pending insert dies in the buffer; it never reaches `deleted`.
      next->insert_sigs.erase(next->insert_sigs.begin() +
                              (it - next->inserts.begin()));
      next->inserts.erase(it);
    } else if (cur->InBase(id) && cur->deleted.count(id) == 0) {
      next->deleted.insert(id);
    } else {
      return Status::NotFound("trajectory id is not live");
    }
    if (merging_) op_log_.push_back(Op{false, Trajectory(), id});
    {
      std::lock_guard<std::mutex> slock(snap_mu_);
      snap_ = std::move(next);
    }
  }
  answer_cache_.InvalidateAll();
  m_deletes_.Increment();
  deletes_count_.fetch_add(1, std::memory_order_relaxed);
  {
    const std::shared_ptr<const TableSnapshot> now_snap = Pin();
    g_delta_bytes_.Set(static_cast<int64_t>(DeltaBytes(*now_snap)));
    g_merge_backlog_.Set(static_cast<int64_t>(now_snap->delta_ops()));
  }
  MaybeScheduleMerge();
  return Status::OK();
}

void DitaService::MaybeScheduleMerge() {
  bool need = false;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    need = !merging_ &&
           Pin()->delta_ops() >= config_.serving.merge_threshold &&
           config_.serving.merge_threshold > 0;
  }
  if (!need) return;
  if (config_.serving.synchronous_merge) {
    // Inline merge: deterministic for tests and single-threaded harnesses.
    // Failure leaves the delta intact (queries stay exact, just slower), so
    // dropping the status here loses nothing but the retry.
    const Status merged = MergeOnce();
    (void)merged;
    return;
  }
  {
    std::lock_guard<std::mutex> lock(merge_mu_);
    merge_requested_ = true;
  }
  merge_cv_.notify_one();
}

Status DitaService::ForceMerge() {
  if (!started_) return Status::Internal("DitaService used before Start");
  return MergeOnce();
}

Status DitaService::MergeOnce() {
  std::shared_ptr<const TableSnapshot> src;
  {
    std::lock_guard<std::mutex> lock(write_mu_);
    if (merging_) return Status::OK();  // another merge is already running
    src = Pin();
    if (src->delta_ops() == 0) return Status::OK();
    merging_ = true;
    op_log_.clear();
  }
  // Merge-busy window: queries bracket MergeBusyAt() readings around their
  // run to compute merge_overlap_seconds.
  const double merge_start = NowSeconds();
  merge_started_bits_.store(std::bit_cast<uint64_t>(merge_start),
                            std::memory_order_release);
  const auto close_busy_window = [&] {
    const double busy = std::bit_cast<double>(
        merge_busy_bits_.load(std::memory_order_relaxed));
    merge_busy_bits_.store(
        std::bit_cast<uint64_t>(busy + (NowSeconds() - merge_start)),
        std::memory_order_relaxed);
    merge_started_bits_.store(kMergeIdleBits, std::memory_order_release);
  };
  // The merge body runs on its own trace lane regardless of which thread
  // drives it (background loop, ForceMerge caller, or a synchronous write).
  obs::Tracer::ScopedLane merge_lane(obs::kMergeLane);
  obs::SpanGuard merge_span(tracer_, "serving.merge");

  // Rebuild outside the write lock: queries keep answering from the old
  // snapshot, and concurrent writes keep landing in the *current* snapshot
  // (visible immediately) while also being recorded in op_log_ for replay.
  std::vector<Trajectory> new_data;
  new_data.reserve(src->base_size() + src->inserts.size());
  for (const Trajectory& t : *src->base_data) {
    if (src->deleted.count(t.id()) == 0) new_data.push_back(t);
  }
  for (const Trajectory& t : src->inserts) new_data.push_back(t);

  std::shared_ptr<DitaEngine> base;
  if (!new_data.empty()) {
    base = std::make_shared<DitaEngine>(cluster_, base_config_);
    const Status built = base->BuildIndex(Dataset(new_data));
    if (!built.ok()) {
      std::lock_guard<std::mutex> lock(write_mu_);
      merging_ = false;
      op_log_.clear();
      close_busy_window();
      return built;
    }
  }

  auto ids = std::make_shared<std::unordered_set<TrajectoryId>>();
  ids->reserve(new_data.size());
  for (const Trajectory& t : new_data) ids->insert(t.id());

  {
    std::lock_guard<std::mutex> lock(write_mu_);
    const std::shared_ptr<const TableSnapshot> cur = Pin();
    auto next = std::make_shared<TableSnapshot>();
    next->epoch = src->epoch + 1;
    next->version = cur->version + 1;
    next->base = std::move(base);
    next->base_data =
        std::make_shared<std::vector<Trajectory>>(std::move(new_data));
    next->base_ids = std::move(ids);
    // Replay writes that raced the rebuild: they are already visible in
    // `cur`'s delta, but against the *old* base; re-expressing them against
    // the new base keeps the live set identical across the publish.
    for (Op& op : op_log_) {
      if (op.is_insert) {
        // The replayed insert belongs to the *new* epoch's delta, so its
        // sketch must be quantized in the new base's frame.
        next->insert_sigs.emplace_back();
        if (next->base != nullptr && next->base->SketchActive()) {
          next->insert_sigs.back() =
              BuildSignature(op.insert, next->base->sig_grid());
        }
        next->inserts.push_back(std::move(op.insert));
        continue;
      }
      const auto it = std::find_if(
          next->inserts.begin(), next->inserts.end(),
          [&op](const Trajectory& t) { return t.id() == op.erase; });
      if (it != next->inserts.end()) {
        next->insert_sigs.erase(next->insert_sigs.begin() +
                                (it - next->inserts.begin()));
        next->inserts.erase(it);
      } else if (next->base_ids->count(op.erase) > 0) {
        next->deleted.insert(op.erase);
      }
    }
    op_log_.clear();
    merging_ = false;
    ++merges_;
    {
      std::lock_guard<std::mutex> slock(snap_mu_);
      snap_ = std::move(next);
    }
  }
  close_busy_window();
  answer_cache_.InvalidateAll();
  m_merges_.Increment();
  if (tracer_ != nullptr) tracer_->Instant("serving.epoch.published");
  {
    const std::shared_ptr<const TableSnapshot> now_snap = Pin();
    g_delta_bytes_.Set(static_cast<int64_t>(DeltaBytes(*now_snap)));
    g_merge_backlog_.Set(static_cast<int64_t>(now_snap->delta_ops()));
  }
  // Writes that raced the rebuild may already exceed the threshold again.
  MaybeScheduleMerge();
  return Status::OK();
}

void DitaService::MergeLoop() {
  while (true) {
    {
      std::unique_lock<std::mutex> lock(merge_mu_);
      merge_cv_.wait(lock,
                     [this] { return merge_requested_ || stop_.load(); });
      if (stop_.load()) return;
      merge_requested_ = false;
    }
    // Background merge failures (e.g. a fault-injected build) are retried
    // on the next threshold crossing; the delta keeps queries exact
    // meanwhile.
    const Status merged = MergeOnce();
    (void)merged;
  }
}

double DitaService::MergeBusyAt(double now) const {
  const double busy =
      std::bit_cast<double>(merge_busy_bits_.load(std::memory_order_relaxed));
  const uint64_t started = merge_started_bits_.load(std::memory_order_acquire);
  if (started == kMergeIdleBits) return busy;
  const double since = now - std::bit_cast<double>(started);
  return busy + (since > 0.0 ? since : 0.0);
}

void DitaService::FinishRequest(obs::RequestRecord* rec, double end_seconds,
                                Result<QueryResult>* res) const {
  rec->total_seconds = end_seconds - rec->arrival_seconds;
  // finalize is defined as the remainder, so the telescoping invariant
  // (PhaseSum == total up to one rounding step) holds on every path —
  // including sheds and errors, where later phases never ran.
  const double accounted = rec->queue_seconds + rec->admission_seconds +
                           rec->cache_seconds + rec->pin_seconds +
                           rec->base_seconds + rec->delta_seconds;
  rec->finalize_seconds = rec->total_seconds - accounted;
  // On entry merge_overlap_seconds holds MergeBusyAt(arrival); the second
  // reading turns the stash into the overlap with background merge work.
  double overlap = MergeBusyAt(end_seconds) - rec->merge_overlap_seconds;
  rec->merge_overlap_seconds =
      std::clamp(overlap, 0.0, rec->total_seconds);

  const Status& st = res->status();
  rec->status_code = static_cast<uint8_t>(st.code());
  if (res->ok()) {
    const QueryResult& qr = **res;
    rec->epoch = qr.serving.epoch;
    rec->version = qr.serving.version;
    const size_t produced = qr.kind == QueryKind::kSearch
                                ? qr.ids.size()
                                : (qr.kind == QueryKind::kJoin
                                       ? qr.pairs.size()
                                       : qr.neighbors.size());
    rec->results = static_cast<uint32_t>(
        std::min<size_t>(produced, std::numeric_limits<uint32_t>::max()));
    const Status& term = qr.kind == QueryKind::kJoin
                             ? qr.join_stats.termination
                             : qr.search_stats.termination;
    const double completeness = qr.kind == QueryKind::kJoin
                                    ? qr.join_stats.completeness
                                    : qr.search_stats.completeness;
    if (!term.ok() || completeness < 1.0) {
      rec->flags |= obs::RequestRecord::kDegraded;
      degraded_count_.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (st.code() == Status::Code::kUnavailable ||
             st.code() == Status::Code::kResourceExhausted) {
    rec->flags |= obs::RequestRecord::kShed;
    shed_count_.fetch_add(1, std::memory_order_relaxed);
  } else {
    errors_count_.fetch_add(1, std::memory_order_relaxed);
  }

  // Always-on rollup (feeds Stats() / the SLO report even with
  // enable_metrics off) plus the registry mirrors. Latency histograms cover
  // every terminal outcome, sheds included — their wait-then-reject time is
  // part of what callers experienced.
  queue_wait_hist_.Observe(rec->queue_seconds);
  admission_wait_hist_.Observe(rec->admission_seconds);
  h_queue_wait_.Observe(rec->queue_seconds);
  switch (static_cast<QueryKind>(rec->kind)) {
    case QueryKind::kSearch:
      lat_search_.Observe(rec->total_seconds);
      h_latency_search_.Observe(rec->total_seconds);
      break;
    case QueryKind::kJoin:
      lat_join_.Observe(rec->total_seconds);
      h_latency_join_.Observe(rec->total_seconds);
      break;
    case QueryKind::kKnnSearch:
      lat_knn_.Observe(rec->total_seconds);
      h_latency_knn_.Observe(rec->total_seconds);
      break;
  }
  flight_recorder_.Record(*rec);
  if (res->ok()) (*res)->serving.lifecycle = *rec;
}

// --------------------------------------------------------------- queries --

uint64_t DitaService::EstimateCost(const TableSnapshot& snap,
                                   const QueryRequest& req) const {
  if (req.cost_hint > 0) return req.cost_hint;
  if (snap.base == nullptr) return 1;
  if (req.kind == QueryKind::kJoin) {
    QueryRequest probe = req;
    probe.join_right_service = nullptr;
    probe.join_right = nullptr;
    if (req.join_right_service != nullptr &&
        req.join_right_service != this) {
      const std::shared_ptr<const TableSnapshot> rs =
          req.join_right_service->Pin();
      if (rs->base != nullptr) probe.join_right = rs->base.get();
    } else if (req.join_right != nullptr) {
      probe.join_right = req.join_right;
    }
    // A null probe.join_right means self-join against our own base.
    return snap.base->EstimateQueryCost(probe);
  }
  return snap.base->EstimateQueryCost(req);
}

Result<QueryResult> DitaService::Execute(const QueryRequest& req) const {
  return ExecuteInternal(req, NowSeconds(), 0);
}

Result<QueryResult> DitaService::ExecuteInternal(const QueryRequest& req,
                                                 double arrival_seconds,
                                                 uint8_t extra_flags) const {
  if (!started_) return Status::Internal("DitaService used before Start");
  obs::RequestRecord rec;
  rec.request_id = request_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  rec.kind = static_cast<uint8_t>(req.kind);
  rec.flags = extra_flags;
  rec.arrival_seconds = arrival_seconds;
  // Stash MergeBusyAt(arrival); FinishRequest turns it into the overlap.
  rec.merge_overlap_seconds = MergeBusyAt(arrival_seconds);
  double last = NowSeconds();
  rec.queue_seconds = last - arrival_seconds;

  // Answer cache (DESIGN.md §5g): a hit returns the stored result without
  // an admission grant — the point of the tier is that repeated reads skip
  // the scheduler and the engine entirely. Joins are never cached (their
  // answer depends on a second table's state), nor are context-carrying
  // requests (a deadline/budget can degrade the answer).
  AnswerCache::Key ckey;
  const bool cacheable =
      answer_cache_.enabled() && req.ctx == nullptr &&
      req.kind != QueryKind::kJoin && req.join_right == nullptr &&
      req.join_right_service == nullptr;
  if (cacheable) {
    ckey = AnswerCache::KeyFor(req);
    QueryResult hit;
    const bool got = answer_cache_.Lookup(ckey, Pin()->version, &hit);
    const double now = NowSeconds();
    rec.cache_seconds = now - last;
    last = now;
    if (tracer_ != nullptr) {
      tracer_->Instant(got ? "serving.cache.hit" : "serving.cache.miss",
                       obs::kCacheLane);
    }
    if (got) {
      m_queries_.Increment();
      if (req.collect_stats) RecordExplain(hit);
      rec.flags |= obs::RequestRecord::kCacheHit;
      Result<QueryResult> res(std::move(hit));
      FinishRequest(&rec, NowSeconds(), &res);
      return res;
    }
  }
  // Cost is estimated against the snapshot current at arrival; the query
  // itself runs on the snapshot pinned *after* the grant, so it sees every
  // write that completed before it was scheduled.
  const uint64_t cost = EstimateCost(*Pin(), req);
  QueryScheduler::Grant grant;
  const Status admitted =
      scheduler_->Acquire(req.priority, cost, req.ctx, &grant);
  {
    const double now = NowSeconds();
    rec.admission_seconds = now - last;
    last = now;
  }
  g_inflight_cost_.Set(static_cast<int64_t>(scheduler_->slots_in_use()));
  if (!admitted.ok()) {
    if (req.ctx != nullptr) {
      rec.stop_cause = static_cast<uint8_t>(req.ctx->stop_cause());
    }
    Result<QueryResult> res = admitted;
    FinishRequest(&rec, NowSeconds(), &res);
    return res;
  }
  const std::shared_ptr<const TableSnapshot> snap = Pin();
  g_pinned_snapshots_.Set(
      pinned_queries_.fetch_add(1, std::memory_order_relaxed) + 1);

  obs::SpanGuard span(tracer_, "serving.query");
  span.Arg("epoch", snap->epoch);
  m_queries_.Increment();
  {
    const double now = NowSeconds();
    rec.pin_seconds = now - last;
    last = now;
  }

  PhaseSplit split;
  Result<QueryResult> res = Status::OK();
  switch (req.kind) {
    case QueryKind::kSearch:
      res = SearchSnapshot(*snap, req, &split);
      break;
    case QueryKind::kKnnSearch:
      res = KnnSnapshot(*snap, req, &split);
      break;
    case QueryKind::kJoin: {
      if (req.join_right_service != nullptr && req.join_right != nullptr) {
        res = Status::InvalidArgument(
            "set at most one of join_right / join_right_service");
      } else if (req.join_right_service != nullptr &&
                 req.join_right_service != this) {
        if (req.join_right_service->cluster_.get() != cluster_.get()) {
          res = Status::InvalidArgument("joined tables must share a cluster");
        } else {
          const std::shared_ptr<const TableSnapshot> rsnap =
              req.join_right_service->Pin();
          res = JoinSnapshots(*snap, *rsnap, req, &split);
        }
      } else if (req.join_right != nullptr) {
        // Bare-engine right side: wrap it as a deltaless snapshot.
        TableSnapshot rsnap;
        rsnap.base = std::shared_ptr<const DitaEngine>(
            std::shared_ptr<const DitaEngine>(), req.join_right);
        res = JoinSnapshots(*snap, rsnap, req, &split);
      } else {
        res = JoinSnapshots(*snap, *snap, req, &split);
      }
      break;
    }
  }
  g_pinned_snapshots_.Set(
      pinned_queries_.fetch_sub(1, std::memory_order_relaxed) - 1);
  // Attribute the body: the split stamps separate base-index work from the
  // delta scan; an unstamped boundary (error exits) folds into base.
  const double body_end = NowSeconds();
  const double base_done =
      split.base_done_seconds > 0.0 ? split.base_done_seconds : body_end;
  const double delta_done =
      split.delta_done_seconds > 0.0 ? split.delta_done_seconds : body_end;
  rec.base_seconds = base_done - last;
  rec.delta_seconds = delta_done - base_done;
  if (req.ctx != nullptr) {
    rec.stop_cause = static_cast<uint8_t>(req.ctx->stop_cause());
  }
  if (!res.ok()) {
    FinishRequest(&rec, NowSeconds(), &res);
    return res;
  }
  res->serving.epoch = snap->epoch;
  res->serving.version = snap->version;
  m_delta_scanned_.Add(res->serving.delta_scanned);
  if (req.collect_stats) RecordExplain(*res);
  // Only complete answers are cacheable; a hit is indistinguishable from a
  // recompute only when the stored result is the full one. The version tag
  // makes a Store racing a publish harmless (Lookup rejects it).
  if (cacheable && res->search_stats.termination.ok() &&
      res->search_stats.completeness >= 1.0) {
    answer_cache_.Store(ckey, snap->version, *res);
  }
  FinishRequest(&rec, NowSeconds(), &res);
  return res;
}

std::future<Result<QueryResult>> DitaService::Submit(QueryRequest req) const {
  Job job;
  job.req = std::move(req);
  job.enqueue_seconds = NowSeconds();
  std::future<Result<QueryResult>> fut = job.promise.get_future();
  if (stop_.load() || !started_) {
    job.promise.set_value(Status::Unavailable("service stopped"));
    return fut;
  }
  {
    std::lock_guard<std::mutex> lock(jobs_mu_);
    jobs_.push_back(std::move(job));
    g_queue_depth_.Set(static_cast<int64_t>(jobs_.size()));
  }
  jobs_cv_.notify_one();
  return fut;
}

void DitaService::ExecutorLoop(size_t executor_index) {
  // Every span / instant this thread emits lands on its own serving lane
  // ("serving.exec N" in the exported trace).
  obs::Tracer::ScopedLane lane(obs::ServingExecutorLane(executor_index));
  const size_t max_batch = std::max<size_t>(1, config_.serving.max_batch_size);
  while (true) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(jobs_mu_);
      jobs_cv_.wait(lock,
                    [this] { return !jobs_.empty() || stop_.load(); });
      if (jobs_.empty()) return;  // stop_ with an empty queue
      batch.push_back(std::move(jobs_.front()));
      jobs_.pop_front();
      if (max_batch > 1 && Coalescible(batch.front().req)) {
        // Coalesce the FIFO *prefix* of compatible queued requests —
        // stopping at the first incompatible one preserves submission
        // order across the batch boundary.
        while (batch.size() < max_batch && !jobs_.empty() &&
               Coalescible(jobs_.front().req)) {
          batch.push_back(std::move(jobs_.front()));
          jobs_.pop_front();
        }
        if (batch.size() < max_batch && jobs_.empty() && !stop_.load() &&
            config_.serving.batch_window_seconds > 0.0) {
          // Linger briefly for more compatible work; an incompatible
          // arrival or the window expiring closes the batch.
          const auto deadline =
              std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(
                      config_.serving.batch_window_seconds));
          while (batch.size() < max_batch && !stop_.load()) {
            const bool woke = jobs_cv_.wait_until(
                lock, deadline,
                [this] { return !jobs_.empty() || stop_.load(); });
            if (!woke || stop_.load()) break;  // window expired or stopping
            if (jobs_.empty() || !Coalescible(jobs_.front().req)) break;
            batch.push_back(std::move(jobs_.front()));
            jobs_.pop_front();
          }
        }
      }
      g_queue_depth_.Set(static_cast<int64_t>(jobs_.size()));
    }
    if (batch.size() == 1) {
      Job& j = batch.front();
      j.promise.set_value(ExecuteInternal(j.req, j.enqueue_seconds,
                                          obs::RequestRecord::kAsync));
      continue;
    }
    coalesced_batches_.fetch_add(1);
    coalesced_queries_.fetch_add(batch.size());
    m_coalesced_queries_.Add(batch.size());
    h_batch_size_.Observe(static_cast<double>(batch.size()));
    std::vector<QueryRequest> reqs;
    std::vector<double> arrivals;
    reqs.reserve(batch.size());
    arrivals.reserve(batch.size());
    for (Job& j : batch) {
      reqs.push_back(std::move(j.req));
      arrivals.push_back(j.enqueue_seconds);
    }
    std::vector<Result<QueryResult>> results =
        ExecuteBatchInternal(reqs, arrivals, obs::RequestRecord::kAsync);
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move(results[i]));
    }
  }
}

std::vector<Result<QueryResult>> DitaService::ExecuteBatch(
    const std::vector<QueryRequest>& reqs) const {
  return ExecuteBatchInternal(reqs, {}, 0);
}

std::vector<Result<QueryResult>> DitaService::ExecuteBatchInternal(
    const std::vector<QueryRequest>& reqs, const std::vector<double>& arrivals,
    uint8_t extra_flags) const {
  const double t_pickup = NowSeconds();
  const auto arrival_of = [&](size_t i) {
    return i < arrivals.size() ? arrivals[i] : t_pickup;
  };
  std::vector<Result<QueryResult>> out;
  out.reserve(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    out.push_back(
        Result<QueryResult>(Status::Internal("batch slot not filled")));
  }
  if (reqs.empty()) return out;
  if (!started_) {
    for (auto& r : out) r = Status::Internal("DitaService used before Start");
    return out;
  }
  // Joins and kNN take the standalone path with their own grants; only
  // threshold searches share the batch machinery. Cache hits peel off
  // before admission, exactly as in Execute — each hit is individually
  // consistent with the version it was stored against.
  std::vector<size_t> members;
  const bool cache_on = answer_cache_.enabled();
  const uint64_t look_version = cache_on ? Pin()->version : 0;
  for (size_t i = 0; i < reqs.size(); ++i) {
    if (!Coalescible(reqs[i])) {
      out[i] = ExecuteInternal(reqs[i], arrival_of(i), extra_flags);
      continue;
    }
    if (cache_on && reqs[i].ctx == nullptr) {
      QueryResult hit;
      const bool got = answer_cache_.Lookup(AnswerCache::KeyFor(reqs[i]),
                                            look_version, &hit);
      if (tracer_ != nullptr) {
        tracer_->Instant(got ? "serving.cache.hit" : "serving.cache.miss",
                         obs::kCacheLane);
      }
      if (got) {
        obs::RequestRecord rec;
        rec.request_id =
            request_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
        rec.kind = static_cast<uint8_t>(reqs[i].kind);
        rec.flags = extra_flags | obs::RequestRecord::kCacheHit;
        rec.arrival_seconds = arrival_of(i);
        rec.merge_overlap_seconds = MergeBusyAt(rec.arrival_seconds);
        rec.queue_seconds = t_pickup - rec.arrival_seconds;
        rec.cache_seconds = NowSeconds() - t_pickup;
        m_queries_.Increment();
        if (reqs[i].collect_stats) RecordExplain(hit);
        Result<QueryResult> r(std::move(hit));
        FinishRequest(&rec, NowSeconds(), &r);
        out[i] = std::move(r);
        continue;
      }
    }
    members.push_back(i);
  }
  if (members.empty()) return out;
  if (members.size() == 1) {
    out[members[0]] =
        ExecuteInternal(reqs[members[0]], arrival_of(members[0]), extra_flags);
    return out;
  }
  const size_t n = members.size();
  const double t_cache = NowSeconds();

  // One fair-share grant covers the whole batch: the members' summed cost
  // at the most urgent member's priority, so the scheduler sees the same
  // load the standalone calls would have presented.
  uint64_t cost = 0;
  int priority = reqs[members[0]].priority;
  {
    const std::shared_ptr<const TableSnapshot> cur = Pin();
    for (const size_t i : members) {
      cost += EstimateCost(*cur, reqs[i]);
      priority = std::min(priority, reqs[i].priority);
    }
  }
  QueryScheduler::Grant grant;
  const Status adm = scheduler_->Acquire(priority, cost, nullptr, &grant);
  const double t_admit = NowSeconds();
  g_inflight_cost_.Set(static_cast<int64_t>(scheduler_->slots_in_use()));
  // Seeds a member's lifecycle record with the batch's shared boundaries:
  // per-member queue, then one cache / admission window for the whole batch.
  const auto member_record = [&](size_t i) {
    obs::RequestRecord rec;
    rec.request_id = request_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    rec.kind = static_cast<uint8_t>(reqs[i].kind);
    rec.flags = extra_flags | obs::RequestRecord::kCoalesced;
    rec.arrival_seconds = arrival_of(i);
    rec.merge_overlap_seconds = MergeBusyAt(rec.arrival_seconds);
    rec.queue_seconds = t_pickup - rec.arrival_seconds;
    rec.cache_seconds = t_cache - t_pickup;
    rec.admission_seconds = t_admit - t_cache;
    if (reqs[i].ctx != nullptr) {
      rec.stop_cause = static_cast<uint8_t>(reqs[i].ctx->stop_cause());
    }
    return rec;
  };
  if (!adm.ok()) {
    for (const size_t i : members) {
      obs::RequestRecord rec = member_record(i);
      Result<QueryResult> r = adm;
      FinishRequest(&rec, NowSeconds(), &r);
      out[i] = std::move(r);
    }
    return out;
  }
  const std::shared_ptr<const TableSnapshot> snap = Pin();
  g_pinned_snapshots_.Set(
      pinned_queries_.fetch_add(1, std::memory_order_relaxed) + 1);

  obs::SpanGuard span(tracer_, "serving.query.batch");
  span.Arg("epoch", snap->epoch);
  span.Arg("queries", n);
  m_queries_.Add(n);
  const double t_pin = NowSeconds();

  std::vector<QueryResult> res(n);
  std::vector<std::vector<TrajectoryId>> ids(n);
  std::vector<uint8_t> live(n, 1);
  if (snap->base != nullptr) {
    std::vector<QueryRequest> base_reqs;
    base_reqs.reserve(n);
    for (const size_t i : members) {
      QueryRequest br = reqs[i];
      br.join_right = nullptr;
      br.join_right_service = nullptr;
      base_reqs.push_back(std::move(br));
    }
    std::vector<Result<QueryResult>> base_res =
        snap->base->ExecuteBatch(base_reqs);
    for (size_t m = 0; m < n; ++m) {
      if (!base_res[m].ok()) {
        out[members[m]] = base_res[m].status();
        live[m] = 0;
        continue;
      }
      res[m].search_stats = std::move(base_res[m]->search_stats);
      for (const TrajectoryId id : base_res[m]->ids) {
        if (snap->deleted.count(id) > 0) {
          ++res[m].serving.deleted_filtered;
        } else {
          ids[m].push_back(id);
        }
      }
    }
  } else {
    for (size_t m = 0; m < n; ++m) {
      const QueryRequest& req = reqs[members[m]];
      if (req.query.size() < 2) {
        out[members[m]] = Status::InvalidArgument(
            "query needs at least 2 points");
        live[m] = 0;
      } else if (req.tau < 0) {
        out[members[m]] =
            Status::InvalidArgument("threshold must be non-negative");
        live[m] = 0;
      }
    }
  }
  const double t_base = NowSeconds();

  // Delta scan: each insert's VerifyPrecomp is computed ONCE and scored
  // against every live member — the serving-side share of the batch. Per
  // member, the scan order, counters, and funnel are exactly the standalone
  // SearchSnapshot delta pass.
  std::vector<VerifyPrecomp> qps;
  qps.reserve(n);
  std::vector<VerifyStats> dstats(n);
  for (const size_t i : members) {
    qps.push_back(VerifyPrecomp::For(reqs[i].query, config_.verify.cell_size));
  }
  // Level-0 sketch over the delta (DESIGN.md §5g): the stored insert
  // signatures are in the base's frame, so each member's dilated query set
  // is built there too; the per-insert subset test then mirrors the
  // indexed path's exactly.
  const bool sketch = snap->base != nullptr && snap->base->SketchActive() &&
                      !snap->inserts.empty();
  std::vector<SigBits> dsig(sketch ? n : 0);
  if (sketch) {
    for (size_t m = 0; m < n; ++m) {
      if (!live[m]) continue;
      const QueryRequest& req = reqs[members[m]];
      dsig[m] = snap->base->DilatedQuerySig(req.query, req.tau);
    }
  }
  for (size_t d = 0; d < snap->inserts.size(); ++d) {
    const Trajectory& t = snap->inserts[d];
    VerifyPrecomp tp = VerifyPrecomp::For(t, config_.verify.cell_size);
    if (sketch) tp.sig = snap->insert_sigs[d];
    for (size_t m = 0; m < n; ++m) {
      if (!live[m]) continue;
      const QueryRequest& req = reqs[members[m]];
      ++res[m].serving.delta_scanned;
      if (verifier_->Verify(t, tp, req.query, qps[m], req.tau, &dstats[m],
                            sketch ? &dsig[m] : nullptr)) {
        ids[m].push_back(t.id());
        ++res[m].serving.delta_matches;
      }
    }
  }
  const double t_delta = NowSeconds();

  for (size_t m = 0; m < n; ++m) {
    obs::RequestRecord rec = member_record(members[m]);
    rec.pin_seconds = t_pin - t_admit;
    rec.base_seconds = t_base - t_pin;
    rec.delta_seconds = t_delta - t_base;
    if (!live[m]) {
      // out[members[m]] already holds this member's error status.
      FinishRequest(&rec, NowSeconds(), &out[members[m]]);
      continue;
    }
    const QueryRequest& req = reqs[members[m]];
    res[m].kind = QueryKind::kSearch;
    if (!snap->inserts.empty() && req.collect_stats) {
      res[m].serving.delta_funnel.AddLevel("delta buffer",
                                           snap->inserts.size());
      res[m].serving.delta_funnel.AddLevel(
          "sketch signature", dstats[m].pairs - dstats[m].pruned_by_sketch);
      res[m].serving.delta_funnel.AddLevel(
          "mbr coverage", dstats[m].pairs - dstats[m].pruned_by_sketch -
                              dstats[m].pruned_by_mbr);
      res[m].serving.delta_funnel.AddLevel("cell bound",
                                           dstats[m].dp_computed);
      res[m].serving.delta_funnel.AddLevel("threshold dp",
                                           dstats[m].accepted);
    }
    std::sort(ids[m].begin(), ids[m].end());
    res[m].ids = std::move(ids[m]);
    if (req.collect_stats) res[m].search_stats.results = res[m].ids.size();
    res[m].serving.epoch = snap->epoch;
    res[m].serving.version = snap->version;
    m_delta_scanned_.Add(res[m].serving.delta_scanned);
    if (req.collect_stats) RecordExplain(res[m]);
    if (cache_on && req.ctx == nullptr &&
        res[m].search_stats.termination.ok() &&
        res[m].search_stats.completeness >= 1.0) {
      answer_cache_.Store(AnswerCache::KeyFor(req), snap->version, res[m]);
    }
    Result<QueryResult> r(std::move(res[m]));
    FinishRequest(&rec, NowSeconds(), &r);
    out[members[m]] = std::move(r);
  }
  g_pinned_snapshots_.Set(
      pinned_queries_.fetch_sub(1, std::memory_order_relaxed) - 1);
  return out;
}

Status DitaService::SearchIdsInto(const TableSnapshot& snap,
                                  const Trajectory& q, double tau,
                                  QueryContext* ctx,
                                  QueryResult::ServingInfo* acct,
                                  std::vector<TrajectoryId>* out) const {
  if (snap.base != nullptr) {
    QueryRequest base_req;
    base_req.kind = QueryKind::kSearch;
    base_req.query = q;
    base_req.tau = tau;
    base_req.ctx = ctx;
    base_req.collect_stats = false;
    auto r = snap.base->Execute(base_req);
    DITA_RETURN_IF_ERROR(r.status());
    for (const TrajectoryId id : r->ids) {
      if (snap.deleted.count(id) > 0) {
        ++acct->deleted_filtered;
      } else {
        out->push_back(id);
      }
    }
  } else {
    if (q.size() < 2) {
      return Status::InvalidArgument("query needs at least 2 points");
    }
    if (tau < 0) {
      return Status::InvalidArgument("threshold must be non-negative");
    }
  }
  // Delta scan: exact, because Verifier::Verify is the same accept
  // predicate the indexed path ends in (sound filters + thresholded DP).
  // The level-0 sketch test reuses the signatures Insert quantized in the
  // base's frame against the query's dilated set in that same frame.
  const VerifyPrecomp qp = VerifyPrecomp::For(q, config_.verify.cell_size);
  const bool sketch = snap.base != nullptr && snap.base->SketchActive() &&
                      !snap.inserts.empty();
  SigBits dilated;
  if (sketch) dilated = snap.base->DilatedQuerySig(q, tau);
  VerifyStats dstats;
  for (size_t d = 0; d < snap.inserts.size(); ++d) {
    const Trajectory& t = snap.inserts[d];
    ++acct->delta_scanned;
    VerifyPrecomp tp = VerifyPrecomp::For(t, config_.verify.cell_size);
    if (sketch) tp.sig = snap.insert_sigs[d];
    if (verifier_->Verify(t, tp, q, qp, tau, &dstats,
                          sketch ? &dilated : nullptr)) {
      out->push_back(t.id());
      ++acct->delta_matches;
    }
  }
  if (!snap.inserts.empty()) {
    acct->delta_funnel.AddLevel("delta buffer", snap.inserts.size());
    acct->delta_funnel.AddLevel("sketch signature",
                                dstats.pairs - dstats.pruned_by_sketch);
    acct->delta_funnel.AddLevel(
        "mbr coverage",
        dstats.pairs - dstats.pruned_by_sketch - dstats.pruned_by_mbr);
    acct->delta_funnel.AddLevel("cell bound", dstats.dp_computed);
    acct->delta_funnel.AddLevel("threshold dp", dstats.accepted);
  }
  return Status::OK();
}

Result<QueryResult> DitaService::SearchSnapshot(const TableSnapshot& snap,
                                                const QueryRequest& req,
                                                PhaseSplit* split) const {
  QueryResult res;
  res.kind = QueryKind::kSearch;
  std::vector<TrajectoryId> ids;
  if (snap.base != nullptr) {
    QueryRequest base_req = req;
    base_req.join_right = nullptr;
    base_req.join_right_service = nullptr;
    auto r = snap.base->Execute(base_req);
    DITA_RETURN_IF_ERROR(r.status());
    res.search_stats = std::move(r->search_stats);
    for (const TrajectoryId id : r->ids) {
      if (snap.deleted.count(id) > 0) {
        ++res.serving.deleted_filtered;
      } else {
        ids.push_back(id);
      }
    }
  } else {
    if (req.query.size() < 2) {
      return Status::InvalidArgument("query needs at least 2 points");
    }
    if (req.tau < 0) {
      return Status::InvalidArgument("threshold must be non-negative");
    }
  }
  if (split != nullptr) split->base_done_seconds = NowSeconds();
  const VerifyPrecomp qp =
      VerifyPrecomp::For(req.query, config_.verify.cell_size);
  const bool sketch = snap.base != nullptr && snap.base->SketchActive() &&
                      !snap.inserts.empty();
  SigBits dilated;
  if (sketch) dilated = snap.base->DilatedQuerySig(req.query, req.tau);
  VerifyStats dstats;
  for (size_t d = 0; d < snap.inserts.size(); ++d) {
    const Trajectory& t = snap.inserts[d];
    ++res.serving.delta_scanned;
    VerifyPrecomp tp = VerifyPrecomp::For(t, config_.verify.cell_size);
    if (sketch) tp.sig = snap.insert_sigs[d];
    if (verifier_->Verify(t, tp, req.query, qp, req.tau, &dstats,
                          sketch ? &dilated : nullptr)) {
      ids.push_back(t.id());
      ++res.serving.delta_matches;
    }
  }
  if (split != nullptr) split->delta_done_seconds = NowSeconds();
  if (!snap.inserts.empty() && req.collect_stats) {
    res.serving.delta_funnel.AddLevel("delta buffer", snap.inserts.size());
    res.serving.delta_funnel.AddLevel("sketch signature",
                                      dstats.pairs - dstats.pruned_by_sketch);
    res.serving.delta_funnel.AddLevel(
        "mbr coverage",
        dstats.pairs - dstats.pruned_by_sketch - dstats.pruned_by_mbr);
    res.serving.delta_funnel.AddLevel("cell bound", dstats.dp_computed);
    res.serving.delta_funnel.AddLevel("threshold dp", dstats.accepted);
  }
  std::sort(ids.begin(), ids.end());
  res.ids = std::move(ids);
  if (req.collect_stats) res.search_stats.results = res.ids.size();
  return res;
}

Result<QueryResult> DitaService::KnnSnapshot(const TableSnapshot& snap,
                                             const QueryRequest& req,
                                             PhaseSplit* split) const {
  QueryResult res;
  res.kind = QueryKind::kKnnSearch;
  if (req.query.size() < 2) {
    return Status::InvalidArgument("query needs at least 2 points");
  }
  if (req.k == 0) return res;
  if (req.k > snap.live_size()) {
    return Status::InvalidArgument("k exceeds the table cardinality");
  }
  std::vector<std::pair<TrajectoryId, double>> scored;
  if (snap.base != nullptr) {
    // Deleted ids may occupy up to |deleted| of the base's top slots, so
    // over-fetch by that much; the top-k *live* base answers are then
    // guaranteed to be present.
    const size_t kbase =
        std::min(snap.base_size(), req.k + snap.deleted.size());
    QueryRequest base_req = req;
    base_req.k = kbase;
    base_req.join_right = nullptr;
    base_req.join_right_service = nullptr;
    auto r = snap.base->Execute(base_req);
    DITA_RETURN_IF_ERROR(r.status());
    res.search_stats = std::move(r->search_stats);
    for (const auto& [id, d] : r->neighbors) {
      if (snap.deleted.count(id) > 0) {
        ++res.serving.deleted_filtered;
      } else {
        scored.emplace_back(id, d);
      }
    }
  }
  if (split != nullptr) split->base_done_seconds = NowSeconds();
  // Delta trajectories are scored with the same DP kernel the engine uses,
  // so merged distances are bit-comparable with the base's.
  for (const Trajectory& t : snap.inserts) {
    ++res.serving.delta_scanned;
    scored.emplace_back(t.id(), distance_->Compute(t, req.query));
  }
  if (split != nullptr) split->delta_done_seconds = NowSeconds();
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  if (scored.size() > req.k) scored.resize(req.k);
  for (const auto& [id, d] : scored) {
    (void)d;
    if (snap.base_ids == nullptr || snap.base_ids->count(id) == 0) {
      ++res.serving.delta_matches;
    }
  }
  res.neighbors = std::move(scored);
  if (req.collect_stats) res.search_stats.results = res.neighbors.size();
  return res;
}

Result<QueryResult> DitaService::JoinSnapshots(const TableSnapshot& left,
                                               const TableSnapshot& right,
                                               const QueryRequest& req,
                                               PhaseSplit* split) const {
  QueryResult res;
  res.kind = QueryKind::kJoin;
  if (req.tau < 0) {
    return Status::InvalidArgument("threshold must be non-negative");
  }
  std::vector<std::pair<TrajectoryId, TrajectoryId>> pairs;

  // Term 1: base x base through the distributed join, minus pairs whose
  // endpoint died. (The three terms partition live x live: term 1 covers
  // live-base x live-base, term 2 the left delta against everything live on
  // the right, term 3 the live left base against the right delta — disjoint
  // by construction, so no dedup pass is needed.)
  if (left.base != nullptr && right.base != nullptr) {
    QueryRequest base_req = req;
    base_req.join_right = right.base.get();
    base_req.join_right_service = nullptr;
    auto r = left.base->Execute(base_req);
    DITA_RETURN_IF_ERROR(r.status());
    res.join_stats = std::move(r->join_stats);
    for (const auto& [l, rr] : r->pairs) {
      if (left.deleted.count(l) > 0 || right.deleted.count(rr) > 0) {
        ++res.serving.deleted_filtered;
      } else {
        pairs.emplace_back(l, rr);
      }
    }
  }
  if (split != nullptr) split->base_done_seconds = NowSeconds();

  // Term 2: left delta x live right (base and delta of the right snapshot).
  for (const Trajectory& t : left.inserts) {
    ++res.serving.delta_scanned;
    std::vector<TrajectoryId> rids;
    DITA_RETURN_IF_ERROR(
        SearchIdsInto(right, t, req.tau, req.ctx, &res.serving, &rids));
    for (const TrajectoryId rid : rids) {
      pairs.emplace_back(t.id(), rid);
      ++res.serving.delta_matches;
    }
  }

  // Term 3: live left base x right delta. Distance kernels are symmetric
  // under argument swap (the batch join already relies on this: edge
  // orientation decides which side ships), so searching the left base with
  // a right-delta trajectory tests exactly f(left, right) <= tau.
  if (left.base != nullptr) {
    for (const Trajectory& t : right.inserts) {
      ++res.serving.delta_scanned;
      QueryRequest probe;
      probe.kind = QueryKind::kSearch;
      probe.query = t;
      probe.tau = req.tau;
      probe.ctx = req.ctx;
      probe.collect_stats = false;
      auto r = left.base->Execute(probe);
      DITA_RETURN_IF_ERROR(r.status());
      for (const TrajectoryId lid : r->ids) {
        if (left.deleted.count(lid) > 0) {
          ++res.serving.deleted_filtered;
          continue;
        }
        pairs.emplace_back(lid, t.id());
        ++res.serving.delta_matches;
      }
    }
  }
  if (split != nullptr) split->delta_done_seconds = NowSeconds();

  std::sort(pairs.begin(), pairs.end());
  res.pairs = std::move(pairs);
  if (req.collect_stats) res.join_stats.result_pairs = res.pairs.size();
  return res;
}

// ---------------------------------------------------------------- explain --

void DitaService::RecordExplain(const QueryResult& res) const {
  std::ostringstream out;
  const char* kind = res.kind == QueryKind::kSearch
                         ? "similarity search"
                         : (res.kind == QueryKind::kJoin ? "trajectory join"
                                                         : "knn search");
  out << "== Serving query (" << kind << ") ==\n"
      << "epoch: " << res.serving.epoch << ", version: " << res.serving.version
      << "\n";
  const obs::FilterFunnel& base_funnel = res.kind == QueryKind::kJoin
                                             ? res.join_stats.funnel
                                             : res.search_stats.funnel;
  if (!base_funnel.empty()) out << base_funnel.ToTable();
  out << "delta: scanned " << res.serving.delta_scanned << ", matched "
      << res.serving.delta_matches << ", deleted filtered "
      << res.serving.deleted_filtered << "\n";
  if (!res.serving.delta_funnel.empty()) {
    out << res.serving.delta_funnel.ToTable();
  }
  const size_t results = res.kind == QueryKind::kSearch
                             ? res.ids.size()
                             : (res.kind == QueryKind::kJoin
                                    ? res.pairs.size()
                                    : res.neighbors.size());
  out << "results: " << results << "\n";
  std::lock_guard<std::mutex> lock(explain_mu_);
  last_explain_ = out.str();
}

std::string DitaService::ExplainLastQuery() const {
  std::lock_guard<std::mutex> lock(explain_mu_);
  return last_explain_;
}

// ---------------------------------------------------------- observability --

DitaService::ServiceStats DitaService::Stats() const {
  ServiceStats s;
  s.uptime_seconds = NowSeconds();
  s.latency_search = lat_search_.Snap();
  s.latency_join = lat_join_.Snap();
  s.latency_knn = lat_knn_.Snap();
  s.queue_wait = queue_wait_hist_.Snap();
  s.admission_wait = admission_wait_hist_.Snap();
  s.queries_search = s.latency_search.count;
  s.queries_join = s.latency_join.count;
  s.queries_knn = s.latency_knn.count;
  s.queries = s.queries_search + s.queries_join + s.queries_knn;
  s.shed = shed_count_.load(std::memory_order_relaxed);
  s.degraded = degraded_count_.load(std::memory_order_relaxed);
  s.errors = errors_count_.load(std::memory_order_relaxed);
  s.cache_hits = answer_cache_.hits();
  s.cache_misses = answer_cache_.misses();
  s.inserts = inserts_count_.load(std::memory_order_relaxed);
  s.deletes = deletes_count_.load(std::memory_order_relaxed);
  s.merges = merges();
  s.merge_busy_seconds = MergeBusyAt(NowSeconds());
  s.coalesced_batches = coalesced_batches_.load();
  s.coalesced_queries = coalesced_queries_.load();
  s.recorded = flight_recorder_.total_recorded();
  return s;
}

std::string DitaService::ExplainService() const {
  const ServiceStats s = Stats();
  std::ostringstream out;
  out << "== DitaService ==\n"
      << "uptime: " << s.uptime_seconds << " s, queries: " << s.queries
      << " (search " << s.queries_search << ", join " << s.queries_join
      << ", knn " << s.queries_knn << ")\n"
      << "shed: " << s.shed << ", degraded: " << s.degraded
      << ", errors: " << s.errors << "\n"
      << "cache: " << s.cache_hits << " hits / " << s.cache_misses
      << " misses\n"
      << "ingest: " << s.inserts << " inserts, " << s.deletes << " deletes, "
      << s.merges << " merges (" << s.merge_busy_seconds << " s busy)\n"
      << "coalescing: " << s.coalesced_queries << " queries in "
      << s.coalesced_batches << " batches\n"
      << "flight recorder: " << s.recorded << " recorded, capacity "
      << flight_recorder_.capacity() << "\n";
  const auto row = [&out](const char* name,
                          const obs::Histogram::Snapshot& h) {
    out << name << ": n=" << h.count;
    if (h.count > 0) {
      out << " p50<=" << h.QuantileUpperBound(0.5) << " p95<="
          << h.QuantileUpperBound(0.95) << " p99<="
          << h.QuantileUpperBound(0.99) << " p999<="
          << h.QuantileUpperBound(0.999) << " (s)";
    }
    out << "\n";
  };
  row("latency.search", s.latency_search);
  row("latency.join", s.latency_join);
  row("latency.knn", s.latency_knn);
  row("queue_wait", s.queue_wait);
  row("admission_wait", s.admission_wait);
  return out.str();
}

std::string DitaService::DumpFlightRecorder() const {
  const ServiceStats s = Stats();
  const std::vector<obs::RequestRecord> records = flight_recorder_.Snapshot();
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("service");
  w.BeginObject();
  w.Key("uptime_seconds");
  w.Double(s.uptime_seconds);
  w.Key("queries");
  w.UInt(s.queries);
  w.Key("queries_search");
  w.UInt(s.queries_search);
  w.Key("queries_join");
  w.UInt(s.queries_join);
  w.Key("queries_knn");
  w.UInt(s.queries_knn);
  w.Key("shed");
  w.UInt(s.shed);
  w.Key("degraded");
  w.UInt(s.degraded);
  w.Key("errors");
  w.UInt(s.errors);
  w.Key("cache_hits");
  w.UInt(s.cache_hits);
  w.Key("cache_misses");
  w.UInt(s.cache_misses);
  w.Key("inserts");
  w.UInt(s.inserts);
  w.Key("deletes");
  w.UInt(s.deletes);
  w.Key("merges");
  w.UInt(s.merges);
  w.Key("merge_busy_seconds");
  w.Double(s.merge_busy_seconds);
  w.Key("coalesced_batches");
  w.UInt(s.coalesced_batches);
  w.Key("coalesced_queries");
  w.UInt(s.coalesced_queries);
  w.Key("recorded");
  w.UInt(s.recorded);
  w.Key("capacity");
  w.UInt(flight_recorder_.capacity());
  w.Key("latency");
  w.BeginObject();
  const auto hist = [&w](const char* name,
                         const obs::Histogram::Snapshot& h) {
    w.Key(name);
    w.BeginObject();
    w.Key("count");
    w.UInt(h.count);
    w.Key("p50");
    w.Double(h.QuantileUpperBound(0.5));
    w.Key("p95");
    w.Double(h.QuantileUpperBound(0.95));
    w.Key("p99");
    w.Double(h.QuantileUpperBound(0.99));
    w.Key("p999");
    w.Double(h.QuantileUpperBound(0.999));
    w.EndObject();
  };
  hist("search", s.latency_search);
  hist("join", s.latency_join);
  hist("knn", s.latency_knn);
  hist("queue_wait", s.queue_wait);
  hist("admission_wait", s.admission_wait);
  w.EndObject();
  w.EndObject();
  w.Key("requests");
  w.BeginArray();
  for (const obs::RequestRecord& r : records) {
    w.BeginObject();
    w.Key("id");
    w.UInt(r.request_id);
    w.Key("kind");
    w.String(KindName(r.kind));
    w.Key("status_code");
    w.UInt(r.status_code);
    w.Key("stop_cause");
    w.String(QueryContext::StopCauseName(
        static_cast<QueryContext::StopCause>(r.stop_cause)));
    w.Key("cache_hit");
    w.Raw(r.cache_hit() ? "true" : "false");
    w.Key("coalesced");
    w.Raw(r.coalesced() ? "true" : "false");
    w.Key("degraded");
    w.Raw(r.degraded() ? "true" : "false");
    w.Key("shed");
    w.Raw(r.shed() ? "true" : "false");
    w.Key("async");
    w.Raw((r.flags & obs::RequestRecord::kAsync) != 0 ? "true" : "false");
    w.Key("results");
    w.UInt(r.results);
    w.Key("epoch");
    w.UInt(r.epoch);
    w.Key("version");
    w.UInt(r.version);
    w.Key("arrival_seconds");
    w.Double(r.arrival_seconds);
    w.Key("queue_seconds");
    w.Double(r.queue_seconds);
    w.Key("admission_seconds");
    w.Double(r.admission_seconds);
    w.Key("cache_seconds");
    w.Double(r.cache_seconds);
    w.Key("pin_seconds");
    w.Double(r.pin_seconds);
    w.Key("base_seconds");
    w.Double(r.base_seconds);
    w.Key("delta_seconds");
    w.Double(r.delta_seconds);
    w.Key("finalize_seconds");
    w.Double(r.finalize_seconds);
    w.Key("total_seconds");
    w.Double(r.total_seconds);
    w.Key("merge_overlap_seconds");
    w.Double(r.merge_overlap_seconds);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

}  // namespace dita
