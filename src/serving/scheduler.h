#ifndef DITA_SERVING_SCHEDULER_H_
#define DITA_SERVING_SCHEDULER_H_

#include <cstdint>
#include <memory>

#include "core/admission.h"
#include "util/query_context.h"
#include "util/status.h"

namespace dita {

/// Fair-share slot scheduler for concurrent queries, layered on the
/// cost-aware AdmissionGate: the cluster's worker slots form the gate's
/// cost budget, and every query holds a number of slots proportional to its
/// estimated cost (capped by its priority class's share) for as long as it
/// runs. The gate supplies the queueing discipline — FIFO with bounded
/// head-of-line bypass — so a giant join occupies most of the pool by
/// itself while cheap point searches keep flowing past it, and after
/// `max_bypass` bypasses the join's turn becomes mandatory (no starvation
/// in either direction).
///
/// Priority shapes the share, not the order: a priority-p query may hold at
/// most slots >> min(p, 6) slots (priority 0 can take the whole pool), so
/// lower-priority work always leaves headroom for latency-sensitive
/// traffic.
class QueryScheduler {
 public:
  struct Options {
    /// Total worker slots shared by all running queries; the gate's cost
    /// budget. Typically Cluster::num_workers().
    size_t slots = 16;
    /// Concurrent queries admitted regardless of slot math (the gate's
    /// count bound). 0 defaults to `slots`.
    size_t max_inflight = 0;
    /// Queries allowed to wait; beyond this the scheduler sheds with
    /// Status::Unavailable.
    size_t max_queued = 64;
    /// Starvation bound for head-of-line bypass (see AdmissionGate).
    size_t max_bypass = 16;
  };

  /// RAII slot grant: holds `slots()` slots until destroyed / released.
  class Grant {
   public:
    Grant() = default;
    Grant(Grant&&) = default;
    Grant& operator=(Grant&&) = default;

    bool held() const { return ticket_.held(); }
    size_t slots() const { return slots_; }
    void Release() { ticket_.Release(); }

   private:
    friend class QueryScheduler;
    AdmissionGate::Ticket ticket_;
    size_t slots_ = 0;
  };

  explicit QueryScheduler(const Options& options);

  /// Blocks until this query's fair-share slot count is granted, sheds with
  /// Unavailable when the wait queue is full, or returns `ctx`'s status if
  /// it stops while queued. `cost` is the query's estimated cost
  /// (DitaEngine::EstimateQueryCost units); `priority` >= 0, lower is more
  /// important. `waited_seconds` (optional) receives the wall-clock queue
  /// wait on every exit path, including sheds and abandonments.
  Status Acquire(int priority, uint64_t cost, QueryContext* ctx, Grant* out,
                 double* waited_seconds = nullptr);

  /// Slots a (priority, cost) query would hold: cost clamped to
  /// [1, share(priority)] where share halves per priority level.
  size_t SlotsFor(int priority, uint64_t cost) const;

  size_t total_slots() const { return options_.slots; }
  /// Counters, delegated to the underlying gate: slots_in_use() is the
  /// gate's in-flight cost, slots_high_water() its cost high-water.
  uint64_t admitted() const { return gate_.admitted(); }
  uint64_t shed() const { return gate_.shed(); }
  uint64_t bypasses() const { return gate_.bypasses(); }
  size_t active() const { return gate_.inflight(); }
  size_t queued() const { return gate_.queued(); }
  uint64_t slots_in_use() const { return gate_.inflight_cost(); }
  uint64_t slots_high_water() const { return gate_.cost_high_water(); }
  uint64_t abandoned() const { return gate_.abandoned(); }
  double queue_wait_seconds() const { return gate_.queue_wait_seconds(); }

 private:
  const Options options_;
  AdmissionGate gate_;
};

}  // namespace dita

#endif  // DITA_SERVING_SCHEDULER_H_
