#ifndef DITA_SERVING_SNAPSHOT_H_
#define DITA_SERVING_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/engine.h"
#include "geom/trajectory.h"
#include "index/signature.h"

namespace dita {

/// One immutable, consistent view of a served trajectory table: a base
/// engine (the flat trie / R-tree indexes of some epoch) plus the delta that
/// has accumulated on top of it — trajectories inserted since the epoch's
/// rebuild and base ids deleted since then. Queries pin a snapshot (one
/// shared_ptr copy) for their whole lifetime, so concurrent ingest and epoch
/// merges never change what an in-flight query sees; writers publish a new
/// snapshot instead of mutating this one (copy-on-write — the base engine,
/// base data, and base-id set are shared across versions of an epoch, only
/// the small delta vectors are copied per write).
///
/// Invariants, maintained by DitaService's write path:
///  - `deleted` is a subset of `base_ids` (a deleted pending insert is
///    removed from `inserts` directly, it never reaches `deleted`);
///  - ids of `inserts` are disjoint from the live base ids
///    (`base_ids` minus `deleted`) and pairwise distinct;
///  - the live set is exactly (base_ids \ deleted) ∪ ids(inserts).
struct TableSnapshot {
  /// Base-index generation: bumped by every epoch merge (rebuild), never by
  /// plain ingest. ExplainLastQuery reports the epoch a query ran against.
  uint64_t epoch = 0;
  /// Publish counter: bumped by every ingest operation *and* every merge,
  /// so equal versions imply identical live sets.
  uint64_t version = 0;

  /// The epoch's immutable base index; null when the base is empty (fresh
  /// service started without data, or a merge deleted everything). The
  /// engine is built with admission disabled — DitaService's scheduler owns
  /// admission, and double-gating would deadlock composed queries.
  std::shared_ptr<const DitaEngine> base;
  /// The exact trajectories `base` indexes, in build order; the next epoch
  /// merge rebuilds from (base_data \ deleted) + inserts.
  std::shared_ptr<const std::vector<Trajectory>> base_data;
  /// Ids of `base_data`, for O(1) liveness checks.
  std::shared_ptr<const std::unordered_set<TrajectoryId>> base_ids;

  /// Delta: inserted since the epoch's rebuild, in insertion order (queries
  /// scan these linearly; merges append them to the new base in this
  /// order), and base ids deleted since the rebuild.
  std::vector<Trajectory> inserts;
  std::unordered_set<TrajectoryId> deleted;
  /// Level-0 sketches of `inserts`, parallel by index, quantized in the
  /// epoch base engine's SigGrid frame at Insert time (all-zero when the
  /// base has no grid or the metric is non-geometric). The write path keeps
  /// this in lockstep with `inserts` — including the mid-merge replay,
  /// which re-quantizes against the *new* base's frame — so the delta scan
  /// runs the same sketch prune as the indexed path without re-quantizing
  /// per query.
  std::vector<TrajSignature> insert_sigs;

  size_t base_size() const { return base_data == nullptr ? 0 : base_data->size(); }

  /// Trajectories a query over this snapshot answers about.
  size_t live_size() const {
    return base_size() - deleted.size() + inserts.size();
  }

  /// Delta operations accumulated since the epoch's rebuild; once this
  /// crosses ServingOptions::merge_threshold the service schedules a merge.
  size_t delta_ops() const { return inserts.size() + deleted.size(); }

  bool InBase(TrajectoryId id) const {
    return base_ids != nullptr && base_ids->count(id) > 0;
  }

  bool IsLive(TrajectoryId id) const {
    if (InBase(id)) return deleted.count(id) == 0;
    for (const Trajectory& t : inserts) {
      if (t.id() == id) return true;
    }
    return false;
  }
};

}  // namespace dita

#endif  // DITA_SERVING_SNAPSHOT_H_
