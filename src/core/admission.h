#ifndef DITA_CORE_ADMISSION_H_
#define DITA_CORE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "util/query_context.h"
#include "util/status.h"

namespace dita {

/// Bounded admission gate in front of the engine's query entry points: at
/// most `max_inflight` queries run concurrently, up to `max_queued` more
/// wait in FIFO order, and everything beyond that is shed immediately with
/// Status::Unavailable — overload degrades to fast rejections instead of an
/// unbounded pile-up. A queued query whose QueryContext stops (cancel or
/// wall deadline) leaves the queue with the context's status rather than
/// waiting for a slot it no longer wants.
class AdmissionGate {
 public:
  struct Options {
    /// Concurrent queries admitted past the gate. Must be >= 1.
    size_t max_inflight = 1;
    /// Queries allowed to wait when all slots are taken; 0 sheds on any
    /// contention.
    size_t max_queued = 0;
  };

  /// RAII in-flight slot. Move-only; releasing (destruction) frees the slot
  /// and wakes the head-of-line waiter. A default-constructed ticket holds
  /// nothing, so budgets are released on every exit path by construction.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept : gate_(o.gate_) { o.gate_ = nullptr; }
    Ticket& operator=(Ticket&& o) noexcept {
      Release();
      gate_ = o.gate_;
      o.gate_ = nullptr;
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    bool held() const { return gate_ != nullptr; }
    void Release();

   private:
    friend class AdmissionGate;
    explicit Ticket(AdmissionGate* gate) : gate_(gate) {}
    AdmissionGate* gate_ = nullptr;
  };

  explicit AdmissionGate(const Options& options);

  /// Blocks until a slot is granted (FIFO among waiters), the queue is full
  /// (returns Unavailable without waiting), or `ctx` (may be null) stops
  /// while queued (returns the context's status). On OK, `*out` holds the
  /// slot.
  Status Admit(QueryContext* ctx, Ticket* out);

  /// Counters for tests and overload dashboards.
  uint64_t admitted() const;
  uint64_t shed() const;
  size_t inflight() const;
  /// Queries currently waiting in the FIFO queue.
  size_t queued() const;
  /// Maximum concurrent in-flight queries ever observed; the gate's core
  /// invariant is high_water() <= max_inflight.
  size_t inflight_high_water() const;

 private:
  void ReleaseSlot();

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t inflight_ = 0;
  size_t high_water_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  uint64_t next_waiter_ = 0;
  /// FIFO of waiter ids; the head is admitted first. A cancelled waiter
  /// removes its own id.
  std::deque<uint64_t> waiting_;
};

}  // namespace dita

#endif  // DITA_CORE_ADMISSION_H_
