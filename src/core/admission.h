#ifndef DITA_CORE_ADMISSION_H_
#define DITA_CORE_ADMISSION_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "util/query_context.h"
#include "util/status.h"

namespace dita {

/// Bounded admission gate in front of the engine's query entry points: at
/// most `max_inflight` queries run concurrently, up to `max_queued` more
/// wait in FIFO order, and everything beyond that is shed immediately with
/// Status::Unavailable — overload degrades to fast rejections instead of an
/// unbounded pile-up. A queued query whose QueryContext stops (cancel or
/// wall deadline) leaves the queue with the context's status rather than
/// waiting for a slot it no longer wants.
///
/// With `max_inflight_cost` set, admission additionally keys on each
/// query's estimated cost (QueryRequest::cost_hint or
/// DitaEngine::EstimateQueryCost): the total cost of in-flight queries
/// stays within the budget, and a small query may bypass a larger one
/// blocked at the head of the queue — up to `max_bypass` times, after which
/// the large query's turn becomes mandatory. One giant join therefore
/// consumes budget, not the whole gate: point searches keep flowing past it
/// while it waits, and it still cannot starve.
class AdmissionGate {
 public:
  struct Options {
    /// Concurrent queries admitted past the gate. Must be >= 1.
    size_t max_inflight = 1;
    /// Queries allowed to wait when all slots are taken; 0 sheds on any
    /// contention.
    size_t max_queued = 0;
    /// Total estimated cost units admitted concurrently; 0 disables cost
    /// accounting (the gate then keys on query count alone). A query whose
    /// cost alone exceeds the budget is still admitted when it is the only
    /// one in flight, so oversized queries run serially instead of hanging.
    uint64_t max_inflight_cost = 0;
    /// Bound on how often a waiter may be bypassed by smaller queries that
    /// fit the remaining cost budget; once reached, the gate stops
    /// admitting around it (starvation bound).
    size_t max_bypass = 16;
  };

  /// RAII in-flight slot. Move-only; releasing (destruction) frees the slot
  /// and its cost and wakes the waiters. A default-constructed ticket holds
  /// nothing, so budgets are released on every exit path by construction.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& o) noexcept : gate_(o.gate_), cost_(o.cost_) {
      o.gate_ = nullptr;
    }
    Ticket& operator=(Ticket&& o) noexcept {
      Release();
      gate_ = o.gate_;
      cost_ = o.cost_;
      o.gate_ = nullptr;
      return *this;
    }
    Ticket(const Ticket&) = delete;
    Ticket& operator=(const Ticket&) = delete;
    ~Ticket() { Release(); }

    bool held() const { return gate_ != nullptr; }
    void Release();

   private:
    friend class AdmissionGate;
    Ticket(AdmissionGate* gate, uint64_t cost) : gate_(gate), cost_(cost) {}
    AdmissionGate* gate_ = nullptr;
    uint64_t cost_ = 0;
  };

  explicit AdmissionGate(const Options& options);

  /// Blocks until a slot (and, with cost accounting on, cost budget) is
  /// granted, the queue is full (returns Unavailable without waiting), or
  /// `ctx` (may be null) stops while queued (returns the context's status).
  /// On OK, `*out` holds the slot. `cost` is the query's estimated cost in
  /// the same units as Options::max_inflight_cost; it is ignored when cost
  /// accounting is disabled.
  ///
  /// `waited_seconds` (optional) receives the wall-clock time spent inside
  /// Admit on *every* exit path — grant, shed, and queue abandonment alike —
  /// so rejected queries can report how long they queued before giving up
  /// instead of losing that time.
  Status Admit(QueryContext* ctx, uint64_t cost, Ticket* out,
               double* waited_seconds = nullptr);
  Status Admit(QueryContext* ctx, Ticket* out) { return Admit(ctx, 1, out); }

  /// Counters for tests and overload dashboards.
  uint64_t admitted() const;
  uint64_t shed() const;
  /// Waiters that left the queue because their QueryContext stopped.
  uint64_t abandoned() const;
  /// Total wall-clock seconds spent queued inside Admit, across all exits
  /// (granted, shed, abandoned).
  double queue_wait_seconds() const;
  size_t inflight() const;
  /// Estimated cost units currently in flight.
  uint64_t inflight_cost() const;
  /// Queries currently waiting in the FIFO queue.
  size_t queued() const;
  /// Maximum concurrent in-flight queries ever observed; the gate's core
  /// invariant is high_water() <= max_inflight.
  size_t inflight_high_water() const;
  /// Maximum concurrent in-flight cost ever observed; stays within
  /// max_inflight_cost except for a single oversized query running alone.
  uint64_t cost_high_water() const;
  /// Times a smaller query was admitted around a larger queued one.
  uint64_t bypasses() const;

 private:
  struct Waiter {
    uint64_t id = 0;
    uint64_t cost = 0;
    /// Times smaller queries were admitted around this waiter.
    size_t bypassed = 0;
  };

  /// True when `cost` fits the remaining cost budget (or accounting is
  /// off, or nothing is in flight). Caller holds mu_.
  bool CostFitsLocked(uint64_t cost) const;
  /// Admission test for waiter `pos` (index into waiting_): a slot is free,
  /// its cost fits, and every waiter ahead of it currently does not fit and
  /// has bypass allowance left. Caller holds mu_.
  bool CanAdmitLocked(size_t pos) const;
  void AdmitLocked(uint64_t cost);
  void ReleaseSlot(uint64_t cost);

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t inflight_ = 0;
  uint64_t inflight_cost_ = 0;
  size_t high_water_ = 0;
  uint64_t cost_high_water_ = 0;
  uint64_t admitted_ = 0;
  uint64_t shed_ = 0;
  uint64_t abandoned_ = 0;
  double queue_wait_seconds_ = 0.0;
  uint64_t bypasses_ = 0;
  uint64_t next_waiter_ = 0;
  /// FIFO of waiters; the head is admitted first unless cost-based bypass
  /// applies. A cancelled waiter removes its own entry.
  std::deque<Waiter> waiting_;
};

}  // namespace dita

#endif  // DITA_CORE_ADMISSION_H_
