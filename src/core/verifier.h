#ifndef DITA_CORE_VERIFIER_H_
#define DITA_CORE_VERIFIER_H_

#include <memory>

#include "core/config.h"
#include "distance/distance.h"
#include "geom/trajectory.h"
#include "index/cell.h"

namespace dita {

/// Per-trajectory data precomputed at index-build time so verification can
/// run its cheap filters without touching the raw points (§5.3.3:
/// "Computing MBRs and cells is pre-processed during creating the index").
struct VerifyPrecomp {
  MBR mbr;
  CellSummary cells;

  static VerifyPrecomp For(const Trajectory& t, double cell_size) {
    return VerifyPrecomp{t.ComputeMBR(), CompressToCells(t, cell_size)};
  }
};

/// Counters describing where candidate pairs were resolved; feeds Fig. 17's
/// candidate counts and the verification ablation.
struct VerifyStats {
  size_t pairs = 0;
  size_t pruned_by_mbr = 0;
  size_t pruned_by_cell = 0;
  size_t dp_computed = 0;
  size_t accepted = 0;

  void Merge(const VerifyStats& o) {
    pairs += o.pairs;
    pruned_by_mbr += o.pruned_by_mbr;
    pruned_by_cell += o.pruned_by_cell;
    dp_computed += o.dp_computed;
    accepted += o.accepted;
  }
};

/// The verification pipeline of §5.3.3, ordered cheapest first:
///  (1) MBR coverage filtering via extended MBRs (Lemma 5.4);
///  (2) cell-compression lower bound (Lemma 5.6);
///  (3) double-direction threshold-aware dynamic program.
/// Steps (1)-(2) only apply to distances whose semantics support them (DTW,
/// Frechet — every point must align within tau); edit distances go straight
/// to their thresholded DP, which embeds the length filter.
class Verifier {
 public:
  Verifier(std::shared_ptr<TrajectoryDistance> distance, const DitaConfig& config)
      : distance_(std::move(distance)),
        mbr_enabled_(config.enable_mbr_verification),
        cell_enabled_(config.enable_cell_verification) {}

  /// Returns true iff distance(t, q) <= tau. Never rejects a true answer.
  bool Verify(const Trajectory& t, const VerifyPrecomp& tp, const Trajectory& q,
              const VerifyPrecomp& qp, double tau, VerifyStats* stats) const;

  const TrajectoryDistance& distance() const { return *distance_; }

 private:
  std::shared_ptr<TrajectoryDistance> distance_;
  bool mbr_enabled_;
  bool cell_enabled_;
};

}  // namespace dita

#endif  // DITA_CORE_VERIFIER_H_
