#ifndef DITA_CORE_VERIFIER_H_
#define DITA_CORE_VERIFIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/config.h"
#include "distance/distance.h"
#include "geom/soa.h"
#include "geom/trajectory.h"
#include "index/cell.h"
#include "index/signature.h"
#include "obs/trace.h"
#include "util/query_context.h"
#include "util/thread_pool.h"

namespace dita {

/// Per-trajectory data precomputed at index-build time so verification can
/// run its cheap filters without touching the raw points (§5.3.3:
/// "Computing MBRs and cells is pre-processed during creating the index").
/// The SoA copy of the coordinates feeds the DP kernels directly, keeping
/// their inner loops on contiguous lanes.
struct VerifyPrecomp {
  MBR mbr;
  CellSummary cells;
  SoaTrajectory soa;
  /// Level-0 sketch (DESIGN.md §5g): grid-cell bitset + minhash shingles in
  /// the owning engine's SigGrid frame. Zero (empty bits) when the precomp
  /// was built without a grid; the sketch filter then never engages.
  TrajSignature sig;

  static VerifyPrecomp For(const Trajectory& t, double cell_size,
                           const SigGrid* grid = nullptr) {
    VerifyPrecomp p{t.ComputeMBR(), CompressToCells(t, cell_size),
                    SoaTrajectory(t), TrajSignature{}};
    if (grid != nullptr && grid->valid()) p.sig = BuildSignature(t, *grid);
    return p;
  }

  /// Heap bytes this precomp holds beyond the indexed trajectory itself;
  /// accumulated into IndexStats::local_index_bytes (the inline signature
  /// is separately accounted in IndexStats::sketch_bytes).
  size_t ByteSize() const {
    return sizeof(MBR) + cells.cells.size() * sizeof(CellSummary::Cell) +
           soa.ByteSize();
  }
};

/// Counters describing where candidate pairs were resolved; feeds Fig. 17's
/// candidate counts and the verification ablation.
struct VerifyStats {
  size_t pairs = 0;
  size_t pruned_by_sketch = 0;
  size_t pruned_by_mbr = 0;
  size_t pruned_by_cell = 0;
  size_t dp_computed = 0;
  size_t accepted = 0;
  /// DP matrix cells |T| x |Q| summed over pairs that reached the DP — the
  /// work the filters failed to prune (feeds the verify.dp.cells metric).
  uint64_t dp_cells = 0;

  void Merge(const VerifyStats& o) {
    pairs += o.pairs;
    pruned_by_sketch += o.pruned_by_sketch;
    pruned_by_mbr += o.pruned_by_mbr;
    pruned_by_cell += o.pruned_by_cell;
    dp_computed += o.dp_computed;
    dp_cells += o.dp_cells;
    accepted += o.accepted;
  }
};

/// The verification pipeline of §5.3.3, ordered cheapest first:
///  (1) MBR coverage filtering via extended MBRs (Lemma 5.4);
///  (2) cell-compression lower bound (Lemma 5.6);
///  (3) threshold-aware dynamic program on SoA kernels.
/// Steps (1)-(2) only apply to distances whose semantics support them (DTW,
/// Frechet — every point must align within tau); edit distances go straight
/// to their thresholded DP, which embeds the length filter.
class Verifier {
 public:
  /// One partition's worth of verification work against a single query:
  /// `candidates` indexes into `precomp` (positions within the partition).
  struct Batch {
    const std::vector<VerifyPrecomp>* precomp = nullptr;
    const std::vector<uint32_t>* candidates = nullptr;
    const VerifyPrecomp* query = nullptr;
    double tau = 0.0;
    /// Tau-dilated query signature (engine frame); null disables the
    /// per-candidate sketch test for this batch. Only set for DTW/Frechet.
    const SigBits* dilated = nullptr;
    /// Optional cooperative stop token. VerifyBatch checkpoints the filter
    /// scan, charges surviving DP cells against the budget, caps scratch
    /// growth, attaches the token to every DP scratch involved (kernels
    /// poll it per row block), and abandons the batch once stopped. The
    /// caller must then discard the batch's partial output.
    QueryContext* ctx = nullptr;
  };

  struct BatchResult {
    /// Candidates accepted by this batch.
    size_t accepted = 0;
    /// DP chunks dispatched to the pool (0 when the batch ran serially).
    size_t pool_chunks = 0;
    /// CPU seconds burned on pool threads. The caller must charge these to
    /// its cluster task (Cluster::ChargeCurrentTask) so the virtual-time
    /// ledger sees the same total work as a serial run.
    double offloaded_seconds = 0.0;
  };

  /// One member of a multi-query verification pass: this query's candidate
  /// list (positions into the shared partition precomp array) and its own
  /// tau / stop token / output sinks. The accepted positions land in
  /// `accepted` in candidate-list order, exactly as a standalone
  /// VerifyBatch call would emit them, and `stats` receives the standalone
  /// counters.
  struct MultiQuery {
    const std::vector<uint32_t>* candidates = nullptr;
    const VerifyPrecomp* query = nullptr;
    double tau = 0.0;
    /// Tau-dilated query signature; null disables the sketch test for this
    /// member (see Batch::dilated).
    const SigBits* dilated = nullptr;
    QueryContext* ctx = nullptr;
    std::vector<uint32_t>* accepted = nullptr;
    VerifyStats* stats = nullptr;
  };

  Verifier(std::shared_ptr<TrajectoryDistance> distance, const DitaConfig& config)
      : distance_(std::move(distance)),
        mbr_enabled_(config.verify.enable_mbr),
        cell_enabled_(config.verify.enable_cell),
        sketch_enabled_(config.verify.enable_sketch) {}

  /// Returns true iff distance(t, q) <= tau. Never rejects a true answer.
  /// `dilated` (optional) enables the level-0 sketch test against tp.sig.
  bool Verify(const Trajectory& t, const VerifyPrecomp& tp, const Trajectory& q,
              const VerifyPrecomp& qp, double tau, VerifyStats* stats,
              const SigBits* dilated = nullptr) const;

  /// Verifies a whole candidate list: a tight first pass runs the MBR/cell
  /// filters, then the surviving DP work either runs serially on the calling
  /// thread or — when `pool` is non-null and at least `min_parallel`
  /// survivors remain — is chunked across the pool. Accepted positions are
  /// appended to `accepted` in candidate order regardless of the execution
  /// mode, so results are deterministic. Stats accumulation matches a loop
  /// of Verify() calls exactly. With `tracer` non-null the batch is wrapped
  /// in a "verify" span (on the calling thread's lane) carrying the batch's
  /// pair / survivor / accepted counts.
  BatchResult VerifyBatch(const Batch& batch, ThreadPool* pool,
                          size_t min_parallel, std::vector<uint32_t>* accepted,
                          VerifyStats* stats,
                          obs::Tracer* tracer = nullptr) const;

  /// Verifies several queries' candidate lists against one partition in a
  /// single pass (DESIGN.md §5f). Per member the filter scan, accounting,
  /// and context charges are identical to a standalone VerifyBatch call;
  /// the surviving DP work of all members is then merged and swept
  /// candidate-major — one candidate trajectory's SoA lanes are scored
  /// against every interested query back to back while they are hot —
  /// either serially or chunked across `pool` (`min_parallel` applies to
  /// the merged survivor count). Per-member outputs are deterministic and
  /// bit-identical to the standalone path; a member whose context stops
  /// mid-sweep only loses its own remaining DP work (its partial output
  /// must be discarded by the caller, as everywhere else). The summed
  /// BatchResult's offloaded_seconds must be charged to the caller's
  /// cluster task as usual.
  BatchResult VerifyMulti(const std::vector<VerifyPrecomp>& precomp,
                          MultiQuery* queries, size_t count, ThreadPool* pool,
                          size_t min_parallel,
                          obs::Tracer* tracer = nullptr) const;

  const TrajectoryDistance& distance() const { return *distance_; }

 private:
  /// Filter steps (0)-(2) only; updates the prune counters. Step (0) is the
  /// sketch subset test, active when `dilated` is non-null.
  bool PassesFilters(const VerifyPrecomp& tp, const VerifyPrecomp& qp,
                     double tau, VerifyStats* stats,
                     const SigBits* dilated) const;

  std::shared_ptr<TrajectoryDistance> distance_;
  bool mbr_enabled_;
  bool cell_enabled_;
  bool sketch_enabled_;
};

}  // namespace dita

#endif  // DITA_CORE_VERIFIER_H_
