#include "core/join_planner.h"

#include <algorithm>
#include <cmath>

#include "distance/dp_scratch.h"
#include "util/logging.h"
#include "util/timer.h"

namespace dita {
namespace {

// Nominal cost of one threshold-DP cell, used to turn sampled DP work into
// the planner's Delta (seconds per candidate pair, §6.2). The magnitude is
// anchored by BENCH_micro_filter.json (~2.4 us per no-abandon DTW pair of
// ~32-point trajectories, i.e. ~2.3 ns/cell); orientation only compares it
// against simulated network seconds, so the ratio matters, not the scale.
constexpr double kSecondsPerDpCell = 2.3e-9;

}  // namespace

JoinPlanner::JoinPlanner(const DitaEngine& left, const DitaEngine& right,
                         double tau, QueryContext* ctx)
    : left_(left),
      right_(right),
      tau_(tau),
      ctx_(ctx),
      cluster_(*left.cluster_) {}

size_t JoinPlanner::NodeIndex(bool is_left, uint32_t part) const {
  return is_left ? part : left_.partitions_.size() + part;
}

void JoinPlanner::BuildGraph() {
  const Point* erp_gap = left_.config_.distance == DistanceType::kERP
                             ? &left_.config_.distance_params.erp_gap
                             : nullptr;
  const PruneMode mode = left_.distance_->prune_mode();
  const double eps = left_.distance_->matching_epsilon();
  // Level-0 sketch tier (DESIGN.md §5g): project each right partition's
  // aggregate bits into the left frame, dilated by tau, once. An edge whose
  // left aggregate misses the projection cannot contain a matching pair —
  // only signatures cross the frame boundary, never trajectories.
  const bool sketch = SketchActive();
  std::vector<SigBits> right_proj;
  if (sketch) {
    right_proj.resize(right_.partitions_.size());
    for (uint32_t j = 0; j < right_.partitions_.size(); ++j) {
      right_proj[j] = DilateAcross(right_.partitions_[j].sketch_agg.bits,
                                   right_.sig_grid_, left_.sig_grid_, tau_);
    }
  }
  sketch_pruned_pairs_ = 0;
  size_t sketch_pruned_edges = 0;
  for (uint32_t i = 0; i < left_.partitions_.size(); ++i) {
    for (uint32_t j = 0; j < right_.partitions_.size(); ++j) {
      const auto& rs = right_.global_.summary(j);
      if (left_.global_.PartitionsMayJoin(i, rs.mbr_first, rs.mbr_last, tau_,
                                          mode, eps, erp_gap)) {
        if (sketch) {
          const auto& lp = left_.partitions_[i];
          const auto& rp = right_.partitions_[j];
          if (!lp.sketch_agg.bits.Empty() && !rp.sketch_agg.bits.Empty() &&
              !lp.sketch_agg.bits.Intersects(right_proj[j])) {
            sketch_pruned_pairs_ += static_cast<uint64_t>(lp.trie.size()) *
                                    rp.trie.size();
            ++sketch_pruned_edges;
            continue;
          }
        }
        Edge e;
        e.left_part = i;
        e.right_part = j;
        edges_.push_back(e);
      }
    }
  }
  if (sketch_pruned_edges > 0) {
    left_.m_sketch_partitions_pruned_.Add(sketch_pruned_edges);
  }
}

void JoinPlanner::EstimateWeights() {
  // Sample trajectories of each partition once; reuse across its edges.
  const double rate = left_.config_.join_sample_rate;
  auto sample_positions = [&](size_t partition_size) {
    size_t want = static_cast<size_t>(std::ceil(rate * double(partition_size)));
    want = std::clamp<size_t>(want, 1, 16);
    std::vector<uint32_t> out;
    const size_t stride = std::max<size_t>(1, partition_size / want);
    for (size_t pos = 0; pos < partition_size && out.size() < want; pos += stride) {
      out.push_back(static_cast<uint32_t>(pos));
    }
    return out;
  };

  CpuTimer sampling_timer;
  size_t probed_candidates = 0;
  double probed_cells = 0.0;
  const bool sketch = SketchActive();

  // Estimates one direction: ship from `src` partition of `src_side` to
  // `dst` partition of the other side; returns {trans_bytes, comp_pairs}.
  auto estimate = [&](const DitaEngine& src_side, uint32_t src,
                      const DitaEngine& dst_side, uint32_t dst,
                      double* trans_bytes, double* comp_pairs) {
    const auto& sp = src_side.partitions_[src];
    const auto& dst_summary = dst_side.global_.summary(dst);
    const auto sampled = sample_positions(sp.trie.size());
    if (sampled.empty()) {
      *trans_bytes = 0;
      *comp_pairs = 0;
      return;
    }
    // Sketch-aware estimation: sampled trajectories the ship filter would
    // drop count as irrelevant, and the aggregates' minhash resemblance is
    // a multiplicative prior on surviving pairs (estimation only — the
    // minhash never prunes, DESIGN.md §5g).
    SigBits proj;
    double resemblance = 0.0;
    if (sketch) {
      const auto& dagg = dst_side.partitions_[dst].sketch_agg;
      proj = DilateAcross(dagg.bits, dst_side.sig_grid_, src_side.sig_grid_,
                          tau_);
      resemblance = MinhashResemblance(sp.sketch_agg.minhash, dagg.minhash);
    }
    size_t relevant = 0;
    size_t candidates = 0;
    for (uint32_t pos : sampled) {
      const Trajectory& t = sp.trie.trajectory(pos);
      if (sketch && !sp.precomp[pos].sig.bits.Empty() &&
          !sp.precomp[pos].sig.bits.SubsetOf(proj)) {
        continue;  // the ship stage would never send it
      }
      if (!dst_side.TrajectoryRelevantTo(t, dst_summary, tau_)) continue;
      ++relevant;
      TrieIndex::SearchSpec spec = dst_side.MakeSpec(t, tau_);
      std::vector<uint32_t> cands;
      dst_side.partitions_[dst].trie.CollectCandidates(spec, &cands);
      for (uint32_t c : cands) {
        probed_cells +=
            double(t.size()) *
            double(dst_side.partitions_[dst].trie.trajectory(c).size());
      }
      candidates += cands.size();
    }
    probed_candidates += candidates;
    const double frac = double(relevant) / double(sampled.size());
    *trans_bytes = frac * double(sp.data_bytes);
    *comp_pairs = double(candidates) / double(sampled.size()) *
                  double(sp.trie.size()) * (1.0 + resemblance);
  };

  for (Edge& e : edges_) {
    double bytes_lr, pairs_lr, bytes_rl, pairs_rl;
    estimate(left_, e.left_part, right_, e.right_part, &bytes_lr, &pairs_lr);
    estimate(right_, e.right_part, left_, e.left_part, &bytes_rl, &pairs_rl);
    const double bandwidth = cluster_.config().bandwidth_bytes_per_sec;
    e.trans_lr = bytes_lr / bandwidth;
    e.trans_rl = bytes_rl / bandwidth;
    // comp converted to seconds below, once seconds_per_pair_ is known; stash
    // pair counts for now.
    e.comp_lr = pairs_lr;
    e.comp_rl = pairs_rl;
  }

  // Delta (§6.2): expected verify seconds per candidate pair, derived from
  // the sampled work volume — average DP area per candidate times a fixed
  // per-cell cost — never from the sampling CpuTimer. Orientation and
  // division balancing must be pure functions of data and config so serial
  // runs replan identically (the chaos soak's determinism contract); the
  // measured sampling CPU is still charged to the driver's virtual clock
  // below, it just never feeds a comparison.
  const double sampling_seconds = sampling_timer.Seconds();
  if (probed_candidates > 0) {
    seconds_per_pair_ =
        kSecondsPerDpCell * probed_cells / double(probed_candidates);
  }
  for (Edge& e : edges_) {
    e.comp_lr *= seconds_per_pair_;
    e.comp_rl *= seconds_per_pair_;
  }
  cluster_.RecordDriverCompute(sampling_seconds);
}

std::vector<double> JoinPlanner::NodeCosts() const {
  std::vector<double> tc(left_.partitions_.size() + right_.partitions_.size(),
                         0.0);
  for (const Edge& e : edges_) {
    const size_t l = NodeIndex(true, e.left_part);
    const size_t r = NodeIndex(false, e.right_part);
    if (e.left_to_right) {
      tc[l] += e.trans_lr;  // network cost borne by the sender
      tc[r] += e.comp_lr;   // computation borne by the receiver
    } else {
      tc[r] += e.trans_rl;
      tc[l] += e.comp_rl;
    }
  }
  return tc;
}

void JoinPlanner::OrientGreedily() {
  // Initial orientation: cheaper direction per edge (§6.2 greedy step 1).
  for (Edge& e : edges_) {
    e.left_to_right = (e.trans_lr + e.comp_lr) <= (e.trans_rl + e.comp_rl);
  }
  if (!left_.config_.enable_graph_orientation) return;

  // Iterative improvement: flip the edge of the maximum-cost node that
  // lowers the global maximum the most; stop at a fixpoint.
  const size_t max_iters = 4 * edges_.size() + 8;
  for (size_t iter = 0; iter < max_iters; ++iter) {
    std::vector<double> tc = NodeCosts();
    const size_t hottest = static_cast<size_t>(
        std::max_element(tc.begin(), tc.end()) - tc.begin());
    const double current_max = tc[hottest];

    double best_max = current_max;
    Edge* best_edge = nullptr;
    for (Edge& e : edges_) {
      const size_t l = NodeIndex(true, e.left_part);
      const size_t r = NodeIndex(false, e.right_part);
      if (l != hottest && r != hottest) continue;
      // Evaluate the flip's effect on the two incident nodes only; other
      // nodes are unaffected, so the new global max is the max of the two
      // updated nodes and the old max over the rest (approximated by
      // current_max of non-incident nodes).
      double nl = tc[l];
      double nr = tc[r];
      if (e.left_to_right) {
        nl += e.comp_rl - e.trans_lr;
        nr += e.trans_rl - e.comp_lr;
      } else {
        nl += e.trans_lr - e.comp_rl;
        nr += e.comp_lr - e.trans_rl;
      }
      double rest = 0.0;
      for (size_t n = 0; n < tc.size(); ++n) {
        if (n != l && n != r) rest = std::max(rest, tc[n]);
      }
      const double new_max = std::max({rest, nl, nr});
      if (new_max < best_max - 1e-15) {
        best_max = new_max;
        best_edge = &e;
      }
    }
    if (best_edge == nullptr) break;
    best_edge->left_to_right = !best_edge->left_to_right;
  }
}

void JoinPlanner::PlanDivisions() {
  const size_t num_nodes = left_.partitions_.size() + right_.partitions_.size();
  node_workers_.assign(num_nodes, {});
  for (uint32_t p = 0; p < left_.partitions_.size(); ++p) {
    node_workers_[NodeIndex(true, p)] = {left_.partitions_[p].home_worker};
  }
  for (uint32_t p = 0; p < right_.partitions_.size(); ++p) {
    node_workers_[NodeIndex(false, p)] = {right_.partitions_[p].home_worker};
  }
  divided_partitions_ = 0;
  if (!left_.config_.enable_division_balancing) return;

  std::vector<double> tc = NodeCosts();
  std::vector<double> sorted = tc;
  std::sort(sorted.begin(), sorted.end());
  const size_t q_idx = static_cast<size_t>(
      std::min<double>(double(sorted.size() - 1),
                       std::floor(left_.config_.division_quantile *
                                  double(sorted.size()))));
  const double threshold = sorted[q_idx];
  if (threshold <= 0.0) return;

  for (size_t n = 0; n < num_nodes; ++n) {
    if (tc[n] <= threshold) continue;
    size_t replicas = static_cast<size_t>(std::ceil(tc[n] / threshold));
    replicas = std::min(replicas, cluster_.num_workers());
    if (replicas <= 1) continue;
    ++divided_partitions_;
    const size_t home = node_workers_[n][0];
    const bool is_left = n < left_.partitions_.size();
    const uint32_t part =
        static_cast<uint32_t>(is_left ? n : n - left_.partitions_.size());
    const auto& partition = Side(is_left).partitions_[part];
    const uint64_t replica_bytes =
        partition.data_bytes + partition.trie.ByteSize();
    for (size_t k = 1; k < replicas; ++k) {
      const size_t worker = (home + k) % cluster_.num_workers();
      node_workers_[n].push_back(worker);
      // Shipping the partition's data and index to the replica.
      cluster_.RecordTransfer(home, worker, replica_bytes);
    }
  }
}

Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> JoinPlanner::Run(
    DitaEngine::JoinStats* stats) {
  snap_ = cluster_.Snapshot();
  const Cluster::CostSnapshot snap = snap_;
  const uint64_t bytes_before = cluster_.total_bytes_sent();
  obs::SpanGuard join_span(left_.tracer_, "join");

  {
    obs::SpanGuard plan_span(left_.tracer_, "join.plan");
    CpuTimer planning_timer;
    BuildGraph();
    cluster_.RecordDriverCompute(planning_timer.Seconds());

    EstimateWeights();

    CpuTimer orientation_timer;
    OrientGreedily();
    PlanDivisions();
    cluster_.RecordDriverCompute(orientation_timer.Seconds());
    plan_span.Arg("edges", edges_.size());
    plan_span.Arg("divided_partitions", divided_partitions_);
  }

  auto result = Execute(stats);
  join_span.Arg("edges", edges_.size());
  if (result.ok()) join_span.Arg("result_pairs", result.value().size());
  if (result.ok() && degraded_) {
    left_.m_query_degraded_.Increment();
    if (left_.tracer_ != nullptr) left_.tracer_->Instant("query.degraded");
  }
  if (result.ok() && stats != nullptr) {
    stats->makespan_seconds = cluster_.MakespanSince(snap);
    stats->load_ratio = cluster_.LoadRatioSince(snap);
    stats->bytes_shipped = cluster_.total_bytes_sent() - bytes_before;
    stats->graph_edges = edges_.size();
    stats->divided_partitions = divided_partitions_;
    stats->result_pairs = result.value().size();
    stats->faults = cluster_.FaultsSince(snap);
    stats->termination = ctx_ != nullptr ? ctx_->ToStatus() : Status::OK();
    stats->completeness = completeness_;

    // Join filter funnel, in trajectory-pair units. Each (T, Q) pair lives
    // in exactly one partition pair, so the per-edge sums never double
    // count; the verify counters continue the funnel from the trie
    // candidates down to the accepted result pairs.
    const uint64_t all_pairs =
        static_cast<uint64_t>(left_.index_stats_.num_trajectories) *
        right_.index_stats_.num_trajectories;
    uint64_t graph_pairs = 0;
    for (const Edge& e : edges_) {
      graph_pairs +=
          static_cast<uint64_t>(left_.partitions_[e.left_part].trie.size()) *
          right_.partitions_[e.right_part].trie.size();
    }
    obs::FilterFunnel funnel;
    funnel.AddLevel("all pairs", all_pairs);
    funnel.AddLevel("partition graph", graph_pairs + sketch_pruned_pairs_);
    funnel.AddLevel("sketch pairs", graph_pairs);
    funnel.AddLevel("ship relevance", ship_pairs_);
    funnel.AddLevel("trie candidates", stats->candidate_pairs);
    funnel.AddLevel("sketch signature",
                    stats->verify.pairs - stats->verify.pruned_by_sketch);
    funnel.AddLevel("mbr coverage",
                    stats->verify.pairs - stats->verify.pruned_by_sketch -
                        stats->verify.pruned_by_mbr);
    funnel.AddLevel("cell bound", stats->verify.dp_computed);
    funnel.AddLevel("threshold dp", stats->verify.accepted);
    stats->funnel = std::move(funnel);
  }
  return result;
}

Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>>
JoinPlanner::Execute(DitaEngine::JoinStats* stats) {
  // Each oriented edge becomes a ship task on a source replica worker and a
  // probe task on a target replica worker. Replicas take edges round-robin.
  struct EdgePlan {
    const Edge* edge;
    size_t src_worker;
    size_t dst_worker;
    std::vector<uint32_t> shipped;  // filled by the ship stage
    /// Set at the end of the ship task body; an edge whose ship was cut
    /// short never reaches the probe stage (its shipped list is partial).
    bool ship_complete = false;
  };
  std::vector<EdgePlan> plans;
  plans.reserve(edges_.size());
  std::vector<size_t> next_replica(node_workers_.size(), 0);
  auto pick_worker = [&](size_t node) {
    const auto& workers = node_workers_[node];
    const size_t w = workers[next_replica[node] % workers.size()];
    ++next_replica[node];
    return w;
  };
  for (const Edge& e : edges_) {
    EdgePlan plan;
    plan.edge = &e;
    const size_t l = NodeIndex(true, e.left_part);
    const size_t r = NodeIndex(false, e.right_part);
    plan.src_worker = pick_worker(e.left_to_right ? l : r);
    plan.dst_worker = pick_worker(e.left_to_right ? r : l);
    plans.push_back(std::move(plan));
  }

  // Stage 1: source-side filtering ("send only trajectories that have
  // candidates in the target", §6.2) + transfer accounting.
  std::vector<Cluster::Task> ship_tasks;
  ship_tasks.reserve(plans.size());
  for (EdgePlan& plan : plans) {
    const Edge& pe = *plan.edge;
    const DitaEngine& plan_src = pe.left_to_right ? left_ : right_;
    const uint32_t src_part = pe.left_to_right ? pe.left_part : pe.right_part;
    const uint64_t src_bytes = plan_src.partitions_[src_part].data_bytes;
    ship_tasks.push_back({plan.src_worker,
                          [this, &plan] {
      const Edge& e = *plan.edge;
      const DitaEngine& src_side = e.left_to_right ? left_ : right_;
      const DitaEngine& dst_side = e.left_to_right ? right_ : left_;
      const uint32_t src = e.left_to_right ? e.left_part : e.right_part;
      const uint32_t dst = e.left_to_right ? e.right_part : e.left_part;
      const auto& sp = src_side.partitions_[src];
      const auto& dst_summary = dst_side.global_.summary(dst);
      // Sketch ship filter: project the target aggregate into the source
      // frame once per edge; a source trajectory whose bits escape the
      // projection cannot match anything in the target, so it never ships
      // (the signatures crossed the wire during planning, the trajectory
      // now doesn't have to).
      const bool sketch = SketchActive();
      SigBits proj;
      if (sketch) {
        proj = DilateAcross(
            dst_side.partitions_[dst].sketch_agg.bits, dst_side.sig_grid_,
            src_side.sig_grid_, tau_);
      }
      uint64_t bytes = 0;
      constexpr uint32_t kCheckStride = 64;
      for (uint32_t pos = 0; pos < sp.trie.size(); ++pos) {
        if (ctx_ != nullptr && (pos % kCheckStride) == 0 &&
            ctx_->CheckPoint(kCheckStride)) {
          return Status::OK();  // ship_complete stays false; edge is dropped
        }
        if (sketch && !sp.precomp[pos].sig.bits.Empty() &&
            !sp.precomp[pos].sig.bits.SubsetOf(proj)) {
          continue;
        }
        const Trajectory& t = sp.trie.trajectory(pos);
        if (dst_side.TrajectoryRelevantTo(t, dst_summary, tau_)) {
          plan.shipped.push_back(pos);
          bytes += t.ByteSize();
        }
      }
      plan.ship_complete = ctx_ == nullptr || !ctx_->stopped();
      // Only complete ships pay for the transfer: an abandoned edge never
      // sends its trajectories to the target.
      if (plan.ship_complete) {
        cluster_.RecordTransfer(plan.src_worker, plan.dst_worker, bytes);
      }
      return Status::OK();
                          },
                          src_bytes});
  }
  std::vector<uint8_t> kept_ship;
  {
    const Status ship_status = cluster_.RunStage(
        std::move(ship_tasks), left_.StageOpts("join-ship", ctx_), &kept_ship);
    if (ctx_ != nullptr) {
      ctx_->ObserveVirtualSeconds(cluster_.MakespanSince(snap_));
    }
    if (!ship_status.ok() && !DitaEngine::ShouldDegrade(ctx_, ship_status)) {
      return ship_status;
    }
  }

  // Stage 2: target-side local joins, over the edges whose ship completed.
  // Each probe task writes only its own slot so a stopped join merges
  // exactly the edges that ran to completion.
  std::vector<size_t> eligible;
  eligible.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    if (!kept_ship.empty() && !kept_ship[i]) continue;
    if (!plans[i].ship_complete) continue;
    eligible.push_back(i);
  }
  struct ProbeOut {
    std::vector<std::pair<TrajectoryId, TrajectoryId>> pairs;
    size_t candidates = 0;
    VerifyStats vstats;
    bool complete = false;
  };
  std::vector<ProbeOut> probe_outs(eligible.size());
  // Verify counters feed JoinStats::verify / the funnel and the verify.*
  // metrics; when neither consumer exists the verifier keeps its
  // counter-free hot path (stats pointer stays null, as before).
  const bool want_verify_stats = stats != nullptr || left_.metrics_ != nullptr;
  std::vector<Cluster::Task> probe_tasks;
  probe_tasks.reserve(eligible.size());
  for (size_t slot = 0; slot < eligible.size(); ++slot) {
    EdgePlan& plan = plans[eligible[slot]];
    ProbeOut* out = &probe_outs[slot];
    const Edge& pe = *plan.edge;
    const DitaEngine& plan_dst = pe.left_to_right ? right_ : left_;
    const uint32_t dst_part = pe.left_to_right ? pe.right_part : pe.left_part;
    const uint64_t dst_bytes = plan_dst.partitions_[dst_part].data_bytes;
    probe_tasks.push_back({plan.dst_worker,
                           [this, &plan, out, want_verify_stats] {
      const Edge& e = *plan.edge;
      const DitaEngine& src_side = e.left_to_right ? left_ : right_;
      const DitaEngine& dst_side = e.left_to_right ? right_ : left_;
      const uint32_t src = e.left_to_right ? e.left_part : e.right_part;
      const uint32_t dst = e.left_to_right ? e.right_part : e.left_part;
      const auto& sp = src_side.partitions_[src];
      const auto& dp = dst_side.partitions_[dst];

      DpScratch& scratch = DpScratch::ThreadLocal();
      const bool sketch = SketchActive();
      double offloaded = 0.0;
      for (uint32_t pos : plan.shipped) {
        if (ctx_ != nullptr && ctx_->stopped()) break;
        const Trajectory& q = sp.trie.trajectory(pos);
        const VerifyPrecomp& qp = sp.precomp[pos];
        // Re-quantize the shipped trajectory in the *target's* frame so the
        // per-candidate subset test runs in the target's own geometry
        // (its raw points travelled with it; building a signature is O(n)).
        SigBits qdil;
        if (sketch) {
          qdil = Dilate(BuildSignature(q, dst_side.sig_grid_).bits,
                        dst_side.sig_grid_, tau_);
        }
        TrieIndex::SearchSpec spec = dst_side.MakeSpec(q, tau_);
        spec.ctx = ctx_;
        std::vector<uint32_t>& cands = scratch.Candidates();
        cands.clear();
        dp.trie.CollectCandidates(spec, &cands);
        out->candidates += cands.size();
        std::vector<uint32_t>& accepted = scratch.Accepted();
        accepted.clear();
        const Verifier::Batch batch{&dp.precomp,          &cands, &qp, tau_,
                                    sketch ? &qdil : nullptr, ctx_};
        const Verifier::BatchResult r = dst_side.verifier_->VerifyBatch(
            batch, dst_side.verify_pool_.get(),
            dst_side.config_.verify.parallel_min, &accepted,
            want_verify_stats ? &out->vstats : nullptr, dst_side.tracer_);
        offloaded += r.offloaded_seconds;
        for (uint32_t cpos : accepted) {
          const Trajectory& t = dp.trie.trajectory(cpos);
          if (e.left_to_right) {
            out->pairs.emplace_back(q.id(), t.id());
          } else {
            out->pairs.emplace_back(t.id(), q.id());
          }
        }
      }
      if (offloaded > 0.0) Cluster::ChargeCurrentTask(offloaded);
      out->complete = ctx_ == nullptr || !ctx_->stopped();
      return Status::OK();
                           },
                           dst_bytes});
  }
  std::vector<uint8_t> kept_probe;
  {
    const Status probe_status =
        cluster_.RunStage(std::move(probe_tasks),
                          left_.StageOpts("join-probe", ctx_), &kept_probe);
    if (ctx_ != nullptr) {
      ctx_->ObserveVirtualSeconds(cluster_.MakespanSince(snap_));
    }
    if (!probe_status.ok() && !DitaEngine::ShouldDegrade(ctx_, probe_status)) {
      return probe_status;
    }
  }

  // Merge the completed edges. ship_pairs_ counts only merged edges so the
  // funnel still balances under degradation.
  std::vector<std::pair<TrajectoryId, TrajectoryId>> results;
  size_t candidate_pairs = 0;
  VerifyStats vstats;
  ship_pairs_ = 0;
  size_t merged_edges = 0;
  for (size_t slot = 0; slot < eligible.size(); ++slot) {
    if (!kept_probe.empty() && !kept_probe[slot]) continue;
    if (!probe_outs[slot].complete) continue;
    ++merged_edges;
    const EdgePlan& plan = plans[eligible[slot]];
    const Edge& pe = *plan.edge;
    const DitaEngine& plan_dst = pe.left_to_right ? right_ : left_;
    const uint32_t dst_part = pe.left_to_right ? pe.right_part : pe.left_part;
    ship_pairs_ += static_cast<uint64_t>(plan.shipped.size()) *
                   plan_dst.partitions_[dst_part].trie.size();
    results.insert(results.end(), probe_outs[slot].pairs.begin(),
                   probe_outs[slot].pairs.end());
    candidate_pairs += probe_outs[slot].candidates;
    vstats.Merge(probe_outs[slot].vstats);
  }
  completeness_ = edges_.empty() ? 1.0
                                 : static_cast<double>(merged_edges) /
                                       static_cast<double>(edges_.size());
  degraded_ = ctx_ != nullptr && ctx_->stopped();

  if (stats != nullptr) {
    stats->candidate_pairs = candidate_pairs;
    stats->verify = vstats;
  }
  // Fold the join's verify counters into the metrics registry (no global
  // probe or trie-level breakdown on the join path).
  left_.RecordFilterMetrics(0, TrieIndex::ProbeStats{}, vstats);
  std::sort(results.begin(), results.end());
  return results;
}

}  // namespace dita
