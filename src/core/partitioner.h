#ifndef DITA_CORE_PARTITIONER_H_
#define DITA_CORE_PARTITIONER_H_

#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"
#include "workload/dataset.h"

namespace dita {

/// Two-level STR partitioning (§4.2.1, Algorithm 1 lines 1-3): trajectories
/// are grouped into `ng` buckets by first point, then each bucket into `ng`
/// sub-buckets by last point. Every sub-bucket becomes one partition; all
/// partitions hold roughly the same number of trajectories even under skew.
/// When `pool` is non-null the STR tiling sorts are chunked across it
/// (identical output to serial); helper CPU seconds accumulate into
/// `*offloaded_seconds` when provided.
Result<std::vector<std::vector<Trajectory>>> PartitionByFirstLast(
    const std::vector<Trajectory>& trajectories, size_t ng,
    ThreadPool* pool = nullptr, double* offloaded_seconds = nullptr);

/// Random partitioning into `num_partitions` equal-size groups — the
/// baseline scheme of the Appendix B "Partitioning Scheme" ablation
/// (Fig. 13). Deterministic given `seed`.
Result<std::vector<std::vector<Trajectory>>> PartitionRandomly(
    const std::vector<Trajectory>& trajectories, size_t num_partitions,
    uint64_t seed = 13);

}  // namespace dita

#endif  // DITA_CORE_PARTITIONER_H_
