#include "core/admission.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"

namespace dita {

void AdmissionGate::Ticket::Release() {
  if (gate_ != nullptr) {
    gate_->ReleaseSlot();
    gate_ = nullptr;
  }
}

AdmissionGate::AdmissionGate(const Options& options) : options_(options) {
  DITA_CHECK(options_.max_inflight >= 1);
}

Status AdmissionGate::Admit(QueryContext* ctx, Ticket* out) {
  std::unique_lock<std::mutex> lock(mu_);
  if (inflight_ < options_.max_inflight && waiting_.empty()) {
    ++inflight_;
    high_water_ = std::max(high_water_, inflight_);
    ++admitted_;
    *out = Ticket(this);
    return Status::OK();
  }
  if (waiting_.size() >= options_.max_queued) {
    ++shed_;
    return Status::Unavailable("admission queue full");
  }
  const uint64_t my = next_waiter_++;
  waiting_.push_back(my);
  while (true) {
    if (ctx != nullptr && ctx->stopped()) {
      // The caller gave up while queued; leave without a slot. Waiters
      // behind us move up.
      waiting_.erase(std::find(waiting_.begin(), waiting_.end(), my));
      cv_.notify_all();
      return ctx->ToStatus();
    }
    if (inflight_ < options_.max_inflight && waiting_.front() == my) {
      waiting_.pop_front();
      ++inflight_;
      high_water_ = std::max(high_water_, inflight_);
      ++admitted_;
      cv_.notify_all();
      *out = Ticket(this);
      return Status::OK();
    }
    // Bounded wait so a queued query notices its context stopping even if no
    // slot ever frees (e.g. a wall-clock deadline firing mid-queue).
    cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void AdmissionGate::ReleaseSlot() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DITA_CHECK(inflight_ > 0);
    --inflight_;
  }
  cv_.notify_all();
}

uint64_t AdmissionGate::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t AdmissionGate::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

size_t AdmissionGate::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

size_t AdmissionGate::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_.size();
}

size_t AdmissionGate::inflight_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

}  // namespace dita
