#include "core/admission.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"
#include "util/timer.h"

namespace dita {

void AdmissionGate::Ticket::Release() {
  if (gate_ != nullptr) {
    gate_->ReleaseSlot(cost_);
    gate_ = nullptr;
  }
}

AdmissionGate::AdmissionGate(const Options& options) : options_(options) {
  DITA_CHECK(options_.max_inflight >= 1);
}

bool AdmissionGate::CostFitsLocked(uint64_t cost) const {
  if (options_.max_inflight_cost == 0) return true;
  // An oversized query is admitted when it runs alone; otherwise nothing
  // with cost > budget could ever run.
  if (inflight_ == 0) return true;
  return inflight_cost_ + cost <= options_.max_inflight_cost;
}

bool AdmissionGate::CanAdmitLocked(size_t pos) const {
  if (inflight_ >= options_.max_inflight) return false;
  if (!CostFitsLocked(waiting_[pos].cost)) return false;
  for (size_t i = 0; i < pos; ++i) {
    // Someone ahead could run right now: FIFO order wins, let them.
    if (CostFitsLocked(waiting_[i].cost)) return false;
    // Aging: a waiter bypassed too often blocks further jumps, so large
    // queries cannot be starved by a stream of small ones.
    if (waiting_[i].bypassed >= options_.max_bypass) return false;
  }
  return true;
}

void AdmissionGate::AdmitLocked(uint64_t cost) {
  ++inflight_;
  inflight_cost_ += cost;
  high_water_ = std::max(high_water_, inflight_);
  cost_high_water_ = std::max(cost_high_water_, inflight_cost_);
  ++admitted_;
}

Status AdmissionGate::Admit(QueryContext* ctx, uint64_t cost, Ticket* out,
                            double* waited_seconds) {
  // The wait clock starts before the lock: contention on mu_ itself is time
  // the caller spent queued at the gate, and every exit path below reports
  // it (granted, shed, and abandoned alike).
  WallTimer wait_timer;
  const auto settle_wait = [&](double* acc_locked) {
    const double waited = wait_timer.Seconds();
    *acc_locked += waited;
    if (waited_seconds != nullptr) *waited_seconds = waited;
  };
  if (options_.max_inflight_cost == 0) cost = 0;
  std::unique_lock<std::mutex> lock(mu_);
  if (inflight_ < options_.max_inflight && waiting_.empty() &&
      CostFitsLocked(cost)) {
    AdmitLocked(cost);
    settle_wait(&queue_wait_seconds_);
    *out = Ticket(this, cost);
    return Status::OK();
  }
  if (waiting_.size() >= options_.max_queued) {
    ++shed_;
    settle_wait(&queue_wait_seconds_);
    return Status::Unavailable("admission queue full");
  }
  const uint64_t my = next_waiter_++;
  waiting_.push_back(Waiter{my, cost, 0});
  while (true) {
    if (ctx != nullptr && ctx->stopped()) {
      // The caller gave up while queued; leave without a slot. Waiters
      // behind us move up.
      waiting_.erase(std::find_if(
          waiting_.begin(), waiting_.end(),
          [my](const Waiter& w) { return w.id == my; }));
      ++abandoned_;
      settle_wait(&queue_wait_seconds_);
      cv_.notify_all();
      return ctx->ToStatus();
    }
    const auto it = std::find_if(waiting_.begin(), waiting_.end(),
                                 [my](const Waiter& w) { return w.id == my; });
    const size_t pos = static_cast<size_t>(it - waiting_.begin());
    if (CanAdmitLocked(pos)) {
      // Every waiter ahead was cost-blocked; this admission jumps them.
      for (size_t i = 0; i < pos; ++i) {
        ++waiting_[i].bypassed;
        ++bypasses_;
      }
      waiting_.erase(it);
      AdmitLocked(cost);
      settle_wait(&queue_wait_seconds_);
      cv_.notify_all();
      *out = Ticket(this, cost);
      return Status::OK();
    }
    // Bounded wait so a queued query notices its context stopping even if no
    // slot ever frees (e.g. a wall-clock deadline firing mid-queue).
    cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void AdmissionGate::ReleaseSlot(uint64_t cost) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    DITA_CHECK(inflight_ > 0);
    --inflight_;
    DITA_CHECK(inflight_cost_ >= cost);
    inflight_cost_ -= cost;
  }
  cv_.notify_all();
}

uint64_t AdmissionGate::admitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_;
}

uint64_t AdmissionGate::shed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_;
}

uint64_t AdmissionGate::abandoned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return abandoned_;
}

double AdmissionGate::queue_wait_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_wait_seconds_;
}

size_t AdmissionGate::inflight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_;
}

uint64_t AdmissionGate::inflight_cost() const {
  std::lock_guard<std::mutex> lock(mu_);
  return inflight_cost_;
}

size_t AdmissionGate::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return waiting_.size();
}

size_t AdmissionGate::inflight_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return high_water_;
}

uint64_t AdmissionGate::cost_high_water() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cost_high_water_;
}

uint64_t AdmissionGate::bypasses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bypasses_;
}

}  // namespace dita
