#ifndef DITA_CORE_CONFIG_H_
#define DITA_CORE_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "distance/distance.h"
#include "index/trie_index.h"

namespace dita {

/// All tuning knobs of a DITA engine instance, grouped by lifecycle stage:
/// `build` governs index construction, `verify` the verification pipeline,
/// and `serving` the long-lived query runtime (admission, scheduling,
/// streaming ingest). Defaults follow the paper's defaults (Table 3) scaled
/// to this repository's laptop-size datasets.
struct DitaConfig {
  /// Index-construction knobs (§4).
  struct BuildOptions {
    /// N_G: trajectories are grouped into N_G buckets by first point and
    /// each bucket into N_G sub-buckets by last point, giving up to N_G^2
    /// partitions (§4.2.1). The paper uses 32-256 at 10M+ trajectories; at
    /// our scale the equivalent sweet spot is single digits.
    size_t ng = 8;

    /// Local index parameters: K (pivots), N_L (fanouts), leaf capacity,
    /// pivot selection strategy.
    TrieIndex::Options trie;

    /// Engine-local threads for index construction: indexing-sequence
    /// extraction, STR tiling sorts (partitioning and trie levels), and the
    /// verification precomputation are chunked across this pool. 0 builds
    /// serially. Parallel builds are bit-identical to serial ones — chunk
    /// boundaries only partition slot-indexed writes and merge sorted runs —
    /// and helper CPU is charged back into cluster virtual time the same way
    /// verify.threads charges DP work.
    size_t threads = 0;

    /// Ablation: replaces first/last STR partitioning with random placement
    /// (the Appendix B partitioning-scheme ablation, Fig. 13). Global
    /// pruning still works — the per-partition first/last MBRs are simply
    /// huge, so nearly everything is relevant, reproducing the ablation's
    /// penalty.
    bool random_partitioning = false;
  };

  /// Verification-pipeline knobs (§5.3.3).
  struct VerifyOptions {
    /// Cell side D for the cell-compression verification filter (§5.3.3).
    double cell_size = 0.01;

    /// Intra-task parallel verification: number of engine-local threads
    /// used to chunk a partition's surviving DP work inside one cluster
    /// task. 0 verifies serially on the task thread. Chunk CPU is charged
    /// back to the owning task's virtual time, so simulated makespans are
    /// unchanged — only wall-clock latency improves.
    size_t threads = 0;

    /// Minimum number of filter survivors before VerifyBatch fans out to
    /// the verify pool; below this the submit/latch overhead outweighs the
    /// DP.
    size_t parallel_min = 32;

    /// Ablation toggles for the MBR (Lemma 5.4) and cell (Lemma 5.6)
    /// verification filters (defaults on; the ablation bench turns some
    /// off).
    bool enable_mbr = true;
    bool enable_cell = true;

    /// Level-0 sketch prefilter (DESIGN.md §5g): per-trajectory grid-cell
    /// bitset signatures, tested (a) per partition aggregate in front of
    /// the trie traversal and (b) per candidate in front of the MBR/cell
    /// filters. Exact — the dilated-signature test is a necessary
    /// condition for DTW/Frechet matches; edit distances bypass it, like
    /// the other geometric filters.
    bool enable_sketch = true;
  };

  /// Long-lived serving runtime knobs: admission control on the engine's
  /// query entry points, and — through DitaService — fair-share query
  /// scheduling, streaming ingest, and background epoch merges.
  struct ServingOptions {
    /// Admission gate: maximum queries (Search / Join / KnnSearch) allowed
    /// in flight concurrently. Excess queries wait in FIFO order up to
    /// `max_queued_queries` deep; beyond that they are shed immediately
    /// with Status::Unavailable — overload degrades into fast rejections
    /// rather than unbounded queueing. 0 disables the gate.
    size_t max_inflight_queries = 0;
    size_t max_queued_queries = 0;

    /// Admission cost budget: total estimated cost units (see
    /// QueryRequest::cost_hint / DitaEngine::EstimateQueryCost) admitted
    /// concurrently. With a cost budget, one giant join consumes most of
    /// the budget by itself and cheap point searches keep flowing past it
    /// (bounded head-of-line bypass); without it the gate keys on query
    /// count alone. 0 disables cost accounting.
    uint64_t max_inflight_cost = 0;

    /// Virtual-time budget per cluster stage (search probes, join
    /// ship/probe, index build). A stage whose slowest worker exceeds it
    /// surfaces Status::DeadlineExceeded instead of an open-ended wait.
    /// 0 disables.
    double stage_deadline_seconds = 0.0;

    /// DitaService scheduler: fair-share worker slots carved across
    /// concurrent queries (each query holds EstimateQueryCost slots while
    /// it runs). 0 defaults to the cluster's worker count.
    size_t scheduler_slots = 0;

    /// Threads executing queries submitted asynchronously via
    /// DitaService::Submit.
    size_t scheduler_threads = 2;

    /// How many times a small query may bypass a larger one stuck at the
    /// head of the scheduler/gate queue before the large query's turn
    /// becomes mandatory (starvation bound).
    size_t max_bypass = 16;

    /// Streaming ingest: once a snapshot's delta (inserts + deletes since
    /// the last base rebuild) reaches this many operations, an epoch merge
    /// rebuilds the base index with the delta folded in. Deltas below the
    /// threshold are linearly scanned by queries (exact, funnel-accounted).
    size_t merge_threshold = 64;

    /// true runs epoch merges inline in the write call that crossed the
    /// threshold (deterministic; tests and single-threaded harnesses);
    /// false runs them on DitaService's background merge thread.
    bool synchronous_merge = false;

    /// Micro-batching of Submit()ed queries (DESIGN.md §5f): an executor
    /// draining the queue coalesces up to this many *compatible* queued
    /// requests (threshold searches with no join target — same metric and
    /// snapshot by construction) into one DitaService::ExecuteBatch call,
    /// sharing the trie traversal and verify sweeps. 1 disables coalescing.
    /// Answers are bit-identical either way.
    size_t max_batch_size = 1;

    /// With coalescing enabled, how long an executor may linger for more
    /// compatible work after picking up the first request of a batch. 0
    /// coalesces only what is already queued (no added latency).
    double batch_window_seconds = 0.0;

    /// DitaService answer cache (DESIGN.md §5g): LRU entries keyed by the
    /// canonicalized query (content digest + minhash sketch, tau, metric,
    /// kind, k), serving repeat queries without touching the scheduler or
    /// the index. Entries are version-tagged and the whole cache is
    /// invalidated on every snapshot publish (insert / delete / epoch
    /// merge), so a hit can never return a stale answer. 0 disables.
    size_t answer_cache_entries = 0;

    /// Always-on flight recorder: DitaService keeps the last N per-request
    /// lifecycle records (obs::RequestRecord) in a lock-free ring,
    /// independent of enable_tracing / enable_metrics, so the moments
    /// before an incident are always exportable
    /// (DitaService::DumpFlightRecorder). Rounded up to a power of two;
    /// 0 disables. The default costs ~32 KiB per service.
    size_t flight_recorder_entries = 256;
  };

  BuildOptions build;
  VerifyOptions verify;
  ServingOptions serving;

  /// Similarity function and its parameters.
  DistanceType distance = DistanceType::kDTW;
  DistanceParams distance_params;

  /// Sample rate used to estimate the join bi-graph's trans/comp edge
  /// weights (§6.2 "DITA samples T and Q").
  double join_sample_rate = 0.1;

  /// Partitions whose total cost exceeds this quantile of the per-partition
  /// cost distribution are divided (replicated) for load balancing (§6.3).
  double division_quantile = 0.98;

  /// Observability (src/obs/): off by default, and when off every
  /// instrumentation site compiles down to one null-handle branch. Tracing
  /// records nested spans (query -> stage -> task -> verify) on the
  /// cluster's deterministic virtual-time ticks; metrics accumulate
  /// lock-free sharded counters/histograms (filter.trie.*, verify.dp.*,
  /// cluster.stage.*). Both attach to the engine's cluster, so engines
  /// sharing a cluster share one tracer and one registry.
  bool enable_tracing = false;
  bool enable_metrics = false;

  /// Join ablation toggles (defaults on; Fig. 16 turns some off).
  bool enable_graph_orientation = true;
  bool enable_division_balancing = true;
};

}  // namespace dita

#endif  // DITA_CORE_CONFIG_H_
