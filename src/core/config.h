#ifndef DITA_CORE_CONFIG_H_
#define DITA_CORE_CONFIG_H_

#include <cstddef>

#include "distance/distance.h"
#include "index/trie_index.h"

namespace dita {

/// All tuning knobs of a DITA engine instance. Defaults follow the paper's
/// defaults (Table 3) scaled to this repository's laptop-size datasets.
struct DitaConfig {
  /// N_G: trajectories are grouped into N_G buckets by first point and each
  /// bucket into N_G sub-buckets by last point, giving up to N_G^2
  /// partitions (§4.2.1). The paper uses 32-256 at 10M+ trajectories; at
  /// our scale the equivalent sweet spot is single digits.
  size_t ng = 8;

  /// Local index parameters: K (pivots), N_L (fanouts), leaf capacity,
  /// pivot selection strategy.
  TrieIndex::Options trie;

  /// Similarity function and its parameters.
  DistanceType distance = DistanceType::kDTW;
  DistanceParams distance_params;

  /// Cell side D for the cell-compression verification filter (§5.3.3).
  double cell_size = 0.01;

  /// Sample rate used to estimate the join bi-graph's trans/comp edge
  /// weights (§6.2 "DITA samples T and Q").
  double join_sample_rate = 0.1;

  /// Partitions whose total cost exceeds this quantile of the per-partition
  /// cost distribution are divided (replicated) for load balancing (§6.3).
  double division_quantile = 0.98;

  /// Intra-task parallel verification (§5.3.3): number of engine-local
  /// threads used to chunk a partition's surviving DP work inside one
  /// cluster task. 0 verifies serially on the task thread. Chunk CPU is
  /// charged back to the owning task's virtual time, so simulated makespans
  /// are unchanged — only wall-clock latency improves.
  size_t verify_threads = 0;

  /// Minimum number of filter survivors before VerifyBatch fans out to the
  /// verify pool; below this the submit/latch overhead outweighs the DP.
  size_t verify_parallel_min = 32;

  /// Engine-local threads for index construction: indexing-sequence
  /// extraction, STR tiling sorts (partitioning and trie levels), and the
  /// verification precomputation are chunked across this pool. 0 builds
  /// serially. Parallel builds are bit-identical to serial ones — chunk
  /// boundaries only partition slot-indexed writes and merge sorted runs —
  /// and helper CPU is charged back into cluster virtual time the same way
  /// verify_threads charges DP work.
  size_t build_threads = 0;

  /// Virtual-time budget per cluster stage (search probes, join ship/probe,
  /// index build). A stage whose slowest worker exceeds it surfaces
  /// Status::DeadlineExceeded instead of an open-ended wait. 0 disables.
  double stage_deadline_seconds = 0.0;

  /// Admission gate: maximum queries (Search / Join / KnnSearch) allowed in
  /// flight on this engine concurrently. Excess queries wait in FIFO order
  /// up to `max_queued_queries` deep; beyond that they are shed immediately
  /// with Status::Unavailable — overload degrades into fast rejections
  /// rather than unbounded queueing. 0 disables the gate.
  size_t max_inflight_queries = 0;
  size_t max_queued_queries = 0;

  /// Observability (src/obs/): off by default, and when off every
  /// instrumentation site compiles down to one null-handle branch. Tracing
  /// records nested spans (query -> stage -> task -> verify) on the
  /// cluster's deterministic virtual-time ticks; metrics accumulate
  /// lock-free sharded counters/histograms (filter.trie.*, verify.dp.*,
  /// cluster.stage.*). Both attach to the engine's cluster, so engines
  /// sharing a cluster share one tracer and one registry.
  bool enable_tracing = false;
  bool enable_metrics = false;

  /// Ablation toggles (defaults on; Fig. 13/16 turn some off).
  /// Replaces first/last STR partitioning with random placement (the
  /// Appendix B partitioning-scheme ablation, Fig. 13). Global pruning
  /// still works — the per-partition first/last MBRs are simply huge, so
  /// nearly everything is relevant, reproducing the ablation's penalty.
  bool random_partitioning = false;
  bool enable_graph_orientation = true;
  bool enable_division_balancing = true;
  bool enable_mbr_verification = true;
  bool enable_cell_verification = true;
};

}  // namespace dita

#endif  // DITA_CORE_CONFIG_H_
