#ifndef DITA_CORE_GLOBAL_INDEX_H_
#define DITA_CORE_GLOBAL_INDEX_H_

#include <vector>

#include "distance/distance.h"
#include "geom/trajectory.h"
#include "index/rtree.h"

namespace dita {

/// DITA's global index (§4.2.2): per partition, the MBR of all first points
/// (MBR_f) and of all last points (MBR_l), organized in two R-trees. The
/// driver probes it to find the partitions that can possibly contain
/// trajectories similar to a query.
class GlobalIndex {
 public:
  struct PartitionSummary {
    MBR mbr_first;
    MBR mbr_last;
  };

  GlobalIndex() = default;

  void Build(std::vector<PartitionSummary> partitions, size_t rtree_fanout = 16);

  /// Relevant partitions for `q` under threshold `tau` (§5.2):
  ///  - kAccumulate: MinDist(q1, MBR_f) + MinDist(qn, MBR_l) <= tau;
  ///  - kMax: both MinDist values <= tau (Frechet keeps tau un-split);
  ///  - kEditCount: a partition is pruned only when the number of alignment
  ///    levels that cannot match within `epsilon` exceeds the edit budget;
  ///    both checks use the minimum over every query point because edit
  ///    distances may delete endpoints.
  ///  - ERP (kAccumulate with `erp_gap` set): each alignment MBR contributes
  ///    min over all query points and the gap point, since rows may be
  ///    gap-matched.
  std::vector<uint32_t> RelevantPartitions(const Trajectory& q, double tau,
                                           PruneMode mode, double epsilon = 0.0,
                                           const Point* erp_gap = nullptr) const;

  /// Like RelevantPartitions but for a *set* summarized by its own first/last
  /// MBRs — used by the join's partition-pair graph construction (§6.1).
  /// `erp_gap` disables rectangle-level pruning entirely: with gap matching
  /// allowed, the other partition's points can sit anywhere, so no sound
  /// partition-pair bound exists.
  bool PartitionsMayJoin(uint32_t partition, const MBR& other_first,
                         const MBR& other_last, double tau, PruneMode mode,
                         double epsilon = 0.0, const Point* erp_gap = nullptr) const;

  size_t num_partitions() const { return partitions_.size(); }
  const PartitionSummary& summary(uint32_t i) const { return partitions_[i]; }
  size_t ByteSize() const;

 private:
  std::vector<PartitionSummary> partitions_;
  RTree first_tree_;
  RTree last_tree_;
};

}  // namespace dita

#endif  // DITA_CORE_GLOBAL_INDEX_H_
