#ifndef DITA_CORE_JOIN_PLANNER_H_
#define DITA_CORE_JOIN_PLANNER_H_

#include <utility>
#include <vector>

#include "core/engine.h"

namespace dita {

/// Plans and executes one distributed trajectory similarity join (§6).
///
/// Pipeline:
///  1. Build the partition-partition bi-graph: an edge per partition pair
///     that may contain similar trajectories (global-index test).
///  2. Estimate each edge's `trans` (bytes to ship) and `comp` (candidate
///     pairs to verify) weights by sampling, and convert both to seconds
///     using the measured per-pair verification time and the cluster
///     bandwidth (the paper's lambda = 1/(Delta*B), §6.2).
///  3. Orient each edge greedily to minimize the maximum per-partition total
///     cost TC = NC + CC (the graph-orientation approximation; the exact
///     problem is NP-hard [6]).
///  4. Division-based load balancing (§6.3): partitions whose TC exceeds the
///     configured quantile are replicated and their edges spread over the
///     replicas (replication traffic is charged).
///  5. Execute: per edge, the source worker filters which of its
///     trajectories have candidates in the target partition and ships only
///     those; the target worker probes its trie and verifies.
class JoinPlanner {
 public:
  /// `ctx` (may be null) is the query's stop token: a join stopped
  /// mid-flight degrades to the pairs produced by the edges whose ship and
  /// probe both completed — a correct subset of the full join.
  JoinPlanner(const DitaEngine& left, const DitaEngine& right, double tau,
              QueryContext* ctx = nullptr);

  Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> Run(
      DitaEngine::JoinStats* stats);

 private:
  /// Bi-graph node: a partition of either side. Left partitions come first.
  struct NodeRef {
    bool is_left;
    uint32_t partition;
  };

  struct Edge {
    uint32_t left_part = 0;
    uint32_t right_part = 0;
    /// Estimated cost in seconds for each orientation.
    double trans_lr = 0.0, comp_lr = 0.0;
    double trans_rl = 0.0, comp_rl = 0.0;
    bool left_to_right = true;
  };

  size_t NodeIndex(bool is_left, uint32_t part) const;
  const DitaEngine& Side(bool is_left) const { return is_left ? left_ : right_; }

  /// True when the level-0 sketch tier applies to this join: both engines
  /// built a grid and the (shared) metric is geometric.
  bool SketchActive() const {
    return left_.SketchActive() && right_.SketchActive();
  }

  void BuildGraph();
  void EstimateWeights();
  void OrientGreedily();
  void PlanDivisions();

  /// Per-node total cost under the current orientation.
  std::vector<double> NodeCosts() const;

  Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> Execute(
      DitaEngine::JoinStats* stats);

  const DitaEngine& left_;
  const DitaEngine& right_;
  const double tau_;
  QueryContext* const ctx_;
  Cluster& cluster_;
  /// Cost snapshot taken at Run() entry; Execute feeds the accumulated
  /// makespan into the context's virtual deadline after each stage.
  Cluster::CostSnapshot snap_;

  std::vector<Edge> edges_;
  /// Trajectory pairs of partition pairs that passed the global-index test
  /// but were pruned by the aggregate-signature intersect (DESIGN.md §5g);
  /// shipped nothing, probed nothing. Feeds the funnel's "sketch pairs"
  /// level. Filled by BuildGraph.
  uint64_t sketch_pruned_pairs_ = 0;
  /// Worker assignments per node: [0] is the home worker; extra entries are
  /// division replicas.
  std::vector<std::vector<size_t>> node_workers_;
  size_t divided_partitions_ = 0;
  /// Measured seconds per verified candidate pair (Delta in §6.2).
  double seconds_per_pair_ = 1e-6;
  /// Trajectory pairs surviving the ship-relevance filter: per edge,
  /// |shipped| x |target partition| (funnel level between the partition
  /// graph and the trie candidates). Filled by Execute; under degradation
  /// it counts only the merged (completed) edges so the funnel balances.
  uint64_t ship_pairs_ = 0;
  /// Fraction of edges whose probe completed and was merged; 1.0 for
  /// complete joins. Filled by Execute.
  double completeness_ = 1.0;
  /// True when a QueryContext stop cut the join short and the result is the
  /// completed-edge subset. Filled by Execute.
  bool degraded_ = false;
};

}  // namespace dita

#endif  // DITA_CORE_JOIN_PLANNER_H_
