#include "core/global_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dita {

void GlobalIndex::Build(std::vector<PartitionSummary> partitions,
                        size_t rtree_fanout) {
  partitions_ = std::move(partitions);
  std::vector<RTree::Entry> first_entries;
  std::vector<RTree::Entry> last_entries;
  first_entries.reserve(partitions_.size());
  last_entries.reserve(partitions_.size());
  for (uint32_t i = 0; i < partitions_.size(); ++i) {
    first_entries.push_back({partitions_[i].mbr_first, i});
    last_entries.push_back({partitions_[i].mbr_last, i});
  }
  first_tree_.Build(std::move(first_entries), rtree_fanout);
  last_tree_.Build(std::move(last_entries), rtree_fanout);
}

namespace {

/// Minimum distance from any point of `q` to `mbr`.
double MinDistAnyPoint(const Trajectory& q, const MBR& mbr) {
  double best = std::numeric_limits<double>::infinity();
  for (const Point& p : q.points()) {
    best = std::min(best, mbr.MinDist(p));
    if (best == 0.0) break;
  }
  return best;
}

}  // namespace

std::vector<uint32_t> GlobalIndex::RelevantPartitions(const Trajectory& q,
                                                      double tau,
                                                      PruneMode mode,
                                                      double epsilon,
                                                      const Point* erp_gap) const {
  std::vector<uint32_t> out;
  if (partitions_.empty() || q.empty()) return out;

  if (erp_gap != nullptr) {
    for (uint32_t i = 0; i < partitions_.size(); ++i) {
      const double df = std::min(MinDistAnyPoint(q, partitions_[i].mbr_first),
                                 partitions_[i].mbr_first.MinDist(*erp_gap));
      const double dl = std::min(MinDistAnyPoint(q, partitions_[i].mbr_last),
                                 partitions_[i].mbr_last.MinDist(*erp_gap));
      if (df + dl <= tau) out.push_back(i);
    }
    return out;
  }

  if (mode == PruneMode::kEditCount) {
    // Edit distances: endpoints of indexed trajectories may be edited away,
    // so the aligned-endpoint argument does not apply. A partition needs at
    // least one edit per alignment MBR that is farther than epsilon from
    // every query point; prune when that already exceeds the budget.
    const double budget = std::floor(tau);
    for (uint32_t i = 0; i < partitions_.size(); ++i) {
      double edits = 0.0;
      if (MinDistAnyPoint(q, partitions_[i].mbr_first) > epsilon) edits += 1.0;
      if (MinDistAnyPoint(q, partitions_[i].mbr_last) > epsilon) edits += 1.0;
      if (edits <= budget) out.push_back(i);
    }
    return out;
  }

  // Cf: partitions whose first-point MBR is within tau of q1; Cl: same for
  // the last point. Intersect, then apply the combined test.
  std::vector<uint32_t> cf;
  std::vector<uint32_t> cl;
  first_tree_.SearchWithinDistance(q.front(), tau, &cf);
  last_tree_.SearchWithinDistance(q.back(), tau, &cl);
  std::sort(cf.begin(), cf.end());
  std::sort(cl.begin(), cl.end());
  std::vector<uint32_t> both;
  std::set_intersection(cf.begin(), cf.end(), cl.begin(), cl.end(),
                        std::back_inserter(both));
  for (uint32_t i : both) {
    const double df = partitions_[i].mbr_first.MinDist(q.front());
    const double dl = partitions_[i].mbr_last.MinDist(q.back());
    const bool keep =
        mode == PruneMode::kAccumulate ? (df + dl <= tau) : (df <= tau && dl <= tau);
    if (keep) out.push_back(i);
  }
  return out;
}

bool GlobalIndex::PartitionsMayJoin(uint32_t partition, const MBR& other_first,
                                    const MBR& other_last, double tau,
                                    PruneMode mode, double epsilon,
                                    const Point* erp_gap) const {
  if (erp_gap != nullptr) return true;
  const PartitionSummary& s = partitions_[partition];
  const double df = s.mbr_first.MinDist(other_first);
  const double dl = s.mbr_last.MinDist(other_last);
  switch (mode) {
    case PruneMode::kAccumulate:
      return df + dl <= tau;
    case PruneMode::kMax:
      return df <= tau && dl <= tau;
    case PruneMode::kEditCount: {
      // Rectangle-level distances cannot see individual query points, so
      // only the trivially safe check applies: if both alignment MBRs are
      // farther than epsilon apart, two edits are needed.
      double edits = 0.0;
      if (df > epsilon) edits += 1.0;
      if (dl > epsilon) edits += 1.0;
      return edits <= std::floor(tau);
    }
  }
  return true;
}

size_t GlobalIndex::ByteSize() const {
  return partitions_.size() * sizeof(PartitionSummary) + first_tree_.ByteSize() +
         last_tree_.ByteSize();
}

}  // namespace dita
