#include "core/engine.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "core/join_planner.h"
#include "distance/dp_scratch.h"
#include "core/partitioner.h"
#include "util/logging.h"
#include "util/timer.h"

namespace dita {

DitaEngine::DitaEngine(std::shared_ptr<Cluster> cluster, const DitaConfig& config)
    : cluster_(std::move(cluster)), config_(config) {
  DITA_CHECK(cluster_ != nullptr);
  auto dist = MakeDistance(config_.distance, config_.distance_params);
  DITA_CHECK(dist.ok());
  distance_ = *dist;
  verifier_ = std::make_unique<Verifier>(distance_, config_);
  // Observability attaches to the cluster so engines sharing it share one
  // tracer / registry; when the toggles are off we still pick up a tracer
  // another engine already enabled.
  tracer_ =
      config_.enable_tracing ? cluster_->EnableTracing() : cluster_->tracer();
  metrics_ =
      config_.enable_metrics ? cluster_->EnableMetrics() : cluster_->metrics();
  m_partitions_relevant_ = {metrics_, "filter.global.partitions_relevant"};
  m_sketch_partitions_pruned_ = {metrics_, "filter.sketch.partitions_pruned"};
  m_sketch_candidates_pruned_ = {metrics_, "filter.sketch.candidates_pruned"};
  m_trie_nodes_visited_ = {metrics_, "filter.trie.nodes_visited"};
  m_trie_nodes_pruned_ = {metrics_, "filter.trie.nodes_pruned"};
  m_trie_candidates_ = {metrics_, "filter.trie.candidates"};
  m_verify_pairs_ = {metrics_, "verify.pairs"};
  m_verify_pruned_mbr_ = {metrics_, "verify.pruned_mbr"};
  m_verify_pruned_cell_ = {metrics_, "verify.pruned_cell"};
  m_verify_dp_computed_ = {metrics_, "verify.dp.computed"};
  m_verify_dp_cells_ = {metrics_, "verify.dp.cells"};
  m_verify_accepted_ = {metrics_, "verify.accepted"};
  h_query_candidates_ = {metrics_, "query.candidates", obs::CountOptions()};
  h_batch_survivors_ = {metrics_, "verify.batch.survivors",
                        obs::CountOptions()};
  m_query_admitted_ = {metrics_, "query.admitted"};
  m_query_shed_ = {metrics_, "query.shed"};
  m_query_shed_search_ = {metrics_, "query.shed.search"};
  m_query_shed_join_ = {metrics_, "query.shed.join"};
  m_query_shed_knn_ = {metrics_, "query.shed.knn"};
  m_query_degraded_ = {metrics_, "query.degraded"};
  h_admission_wait_ = {metrics_, "query.admission_wait_seconds",
                       obs::LatencyOptions()};
  if (config_.verify.threads > 0) {
    verify_pool_ = std::make_unique<ThreadPool>(config_.verify.threads);
  }
  if (config_.build.threads > 0) {
    build_pool_ = std::make_unique<ThreadPool>(config_.build.threads);
  }
  if (config_.serving.max_inflight_queries > 0) {
    gate_ = std::make_unique<AdmissionGate>(AdmissionGate::Options{
        config_.serving.max_inflight_queries, config_.serving.max_queued_queries,
        config_.serving.max_inflight_cost, config_.serving.max_bypass});
  }
}

DitaEngine::~DitaEngine() { ReleaseThreadScratch(); }

void DitaEngine::ReleaseThreadScratch() {
  // Broadcast one release task per pool thread. Each task parks on a busy
  // barrier until all of them are running — the pool is FIFO with exactly
  // num_threads() workers, so this guarantees every task landed on a
  // distinct thread — then frees that thread's grow-once arenas.
  const auto broadcast = [](ThreadPool* pool) {
    if (pool == nullptr || pool->num_threads() == 0) return;
    const size_t n = pool->num_threads();
    std::atomic<size_t> arrived{0};
    for (size_t i = 0; i < n; ++i) {
      pool->Submit([&arrived, n] {
        arrived.fetch_add(1, std::memory_order_acq_rel);
        while (arrived.load(std::memory_order_acquire) < n) {
          std::this_thread::yield();
        }
        TrieIndex::Scratch::ThreadLocal().Release();
      });
    }
    pool->Wait();
  };
  broadcast(build_pool_.get());
  broadcast(verify_pool_.get());
  TrieIndex::Scratch::ThreadLocal().Release();
}

bool DitaEngine::SketchActive() const {
  if (!config_.verify.enable_sketch || !sig_grid_.valid()) return false;
  return config_.distance == DistanceType::kDTW ||
         config_.distance == DistanceType::kFrechet;
}

SigBits DitaEngine::DilatedQuerySig(const Trajectory& q, double tau) const {
  return Dilate(BuildSignature(q, sig_grid_).bits, sig_grid_, tau);
}

bool DitaEngine::ShouldDegrade(const QueryContext* ctx, const Status& stage) {
  if (ctx == nullptr || !ctx->stopped()) return false;
  switch (stage.code()) {
    case Status::Code::kOk:
    case Status::Code::kCancelled:
    case Status::Code::kDeadlineExceeded:
    case Status::Code::kResourceExhausted:
      return true;
    default:
      return false;
  }
}

Status DitaEngine::AdmitQuery(QueryKind kind, QueryContext* ctx, uint64_t cost,
                              AdmissionGate::Ticket* ticket,
                              double* waited_seconds) const {
  if (waited_seconds != nullptr) *waited_seconds = 0.0;
  if (gate_ == nullptr) return Status::OK();
  double waited = 0.0;
  const Status s = gate_->Admit(ctx, cost, ticket, &waited);
  if (waited_seconds != nullptr) *waited_seconds = waited;
  h_admission_wait_.Observe(waited);
  if (s.ok()) {
    m_query_admitted_.Increment();
  } else {
    m_query_shed_.Increment();
    switch (kind) {
      case QueryKind::kSearch:
        m_query_shed_search_.Increment();
        break;
      case QueryKind::kJoin:
        m_query_shed_join_.Increment();
        break;
      case QueryKind::kKnnSearch:
        m_query_shed_knn_.Increment();
        break;
    }
    if (tracer_ != nullptr) tracer_->Instant("query.shed");
  }
  return s;
}

uint64_t DitaEngine::EstimateQueryCost(const QueryRequest& req) const {
  if (req.cost_hint > 0) return req.cost_hint;
  if (!indexed_) return 1;
  switch (req.kind) {
    case QueryKind::kSearch:
    case QueryKind::kKnnSearch: {
      if (req.query.size() < 2) return 1;
      // Relevant-partition count is the unit the cluster actually pays per
      // probe stage; +1 covers the driver work every query does.
      double tau = req.kind == QueryKind::kSearch ? req.tau : req.initial_tau;
      if (req.kind == QueryKind::kKnnSearch && tau <= 0.0) {
        const MBR qmbr = req.query.ComputeMBR();
        tau = std::max(1e-9, 0.01 * PointDistance(qmbr.lo(), qmbr.hi()));
      }
      const Point* erp_gap = config_.distance == DistanceType::kERP
                                 ? &config_.distance_params.erp_gap
                                 : nullptr;
      const std::vector<uint32_t> relevant = global_.RelevantPartitions(
          req.query, tau, distance_->prune_mode(),
          distance_->matching_epsilon(), erp_gap);
      return static_cast<uint64_t>(relevant.size()) + 1;
    }
    case QueryKind::kJoin: {
      // Upper bound of partition-pair probes, clamped so one estimate cannot
      // dwarf every budget into meaninglessness.
      const DitaEngine* right =
          req.join_right != nullptr ? req.join_right : this;
      const uint64_t left_parts = std::max<uint64_t>(1, partitions_.size());
      const uint64_t right_parts = std::max<uint64_t>(
          1, right->indexed_ ? right->partitions_.size() : 1);
      return std::min<uint64_t>(left_parts * right_parts, uint64_t{1} << 20);
    }
  }
  return 1;
}

Result<QueryResult> DitaEngine::Execute(const QueryRequest& req) const {
  QueryResult res;
  res.kind = req.kind;
  QueryStats* qstats = req.collect_stats ? &res.search_stats : nullptr;
  switch (req.kind) {
    case QueryKind::kSearch: {
      if (!indexed_) return Status::Internal("Search before BuildIndex");
      if (req.query.size() < 2) {
        return Status::InvalidArgument("query needs at least 2 points");
      }
      if (req.tau < 0) {
        return Status::InvalidArgument("threshold must be non-negative");
      }
      AdmissionGate::Ticket ticket;
      double admission_wait = 0.0;
      DITA_RETURN_IF_ERROR(AdmitQuery(req.kind, req.ctx,
                                      EstimateQueryCost(req), &ticket,
                                      &admission_wait));
      auto r = SearchImpl(req.query, req.tau, qstats, req.ctx);
      DITA_RETURN_IF_ERROR(r.status());
      if (qstats != nullptr) qstats->admission_wait_seconds = admission_wait;
      res.ids = std::move(*r);
      return res;
    }
    case QueryKind::kKnnSearch: {
      if (!indexed_) return Status::Internal("KnnSearch before BuildIndex");
      if (req.query.size() < 2) {
        return Status::InvalidArgument("query needs at least 2 points");
      }
      if (req.k == 0) return res;
      if (req.k > index_stats_.num_trajectories) {
        return Status::InvalidArgument("k exceeds the table cardinality");
      }
      AdmissionGate::Ticket ticket;
      double admission_wait = 0.0;
      DITA_RETURN_IF_ERROR(AdmitQuery(req.kind, req.ctx,
                                      EstimateQueryCost(req), &ticket,
                                      &admission_wait));
      auto r =
          KnnSearchImpl(req.query, req.k, req.initial_tau, qstats, req.ctx);
      DITA_RETURN_IF_ERROR(r.status());
      if (qstats != nullptr) qstats->admission_wait_seconds = admission_wait;
      res.neighbors = std::move(*r);
      return res;
    }
    case QueryKind::kJoin: {
      if (req.join_right_service != nullptr) {
        return Status::InvalidArgument(
            "service-level join targets require DitaService::Execute");
      }
      const DitaEngine& right =
          req.join_right != nullptr ? *req.join_right : *this;
      if (!indexed_ || !right.indexed_) {
        return Status::Internal("Join before BuildIndex");
      }
      if (cluster_.get() != right.cluster_.get()) {
        return Status::InvalidArgument("joined tables must share a cluster");
      }
      if (req.tau < 0) {
        return Status::InvalidArgument("threshold must be non-negative");
      }
      AdmissionGate::Ticket ticket;
      DITA_RETURN_IF_ERROR(AdmitQuery(req.kind, req.ctx,
                                      EstimateQueryCost(req), &ticket));
      auto r = JoinImpl(right, req.tau,
                        req.collect_stats ? &res.join_stats : nullptr, req.ctx);
      DITA_RETURN_IF_ERROR(r.status());
      res.pairs = std::move(*r);
      return res;
    }
  }
  return Status::InvalidArgument("unknown query kind");
}

Result<std::vector<TrajectoryId>> DitaEngine::Search(const Trajectory& q,
                                                     double tau,
                                                     QueryStats* stats,
                                                     QueryContext* ctx) const {
  QueryRequest req;
  req.kind = QueryKind::kSearch;
  req.query = q;
  req.tau = tau;
  req.ctx = ctx;
  req.collect_stats = stats != nullptr;
  auto r = Execute(req);
  DITA_RETURN_IF_ERROR(r.status());
  if (stats != nullptr) *stats = std::move(r->search_stats);
  return std::move(r->ids);
}

Result<std::vector<std::pair<TrajectoryId, double>>> DitaEngine::KnnSearch(
    const Trajectory& q, size_t k, double initial_tau, QueryStats* stats,
    QueryContext* ctx) const {
  QueryRequest req;
  req.kind = QueryKind::kKnnSearch;
  req.query = q;
  req.k = k;
  req.initial_tau = initial_tau;
  req.ctx = ctx;
  req.collect_stats = stats != nullptr;
  auto r = Execute(req);
  DITA_RETURN_IF_ERROR(r.status());
  if (stats != nullptr) *stats = std::move(r->search_stats);
  return std::move(r->neighbors);
}

Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> DitaEngine::Join(
    const DitaEngine& right, double tau, JoinStats* stats,
    QueryContext* ctx) const {
  QueryRequest req;
  req.kind = QueryKind::kJoin;
  req.join_right = &right;
  req.tau = tau;
  req.ctx = ctx;
  req.collect_stats = stats != nullptr;
  auto r = Execute(req);
  DITA_RETURN_IF_ERROR(r.status());
  if (stats != nullptr) *stats = std::move(r->join_stats);
  return std::move(r->pairs);
}

Status DitaEngine::BuildIndex(const Dataset& data) {
  if (config_.build.ng == 0) {
    return Status::InvalidArgument("ng must be positive");
  }
  if (config_.build.trie.align_fanout < 2 ||
      config_.build.trie.pivot_fanout < 2) {
    return Status::InvalidArgument("trie fanouts must be at least 2");
  }
  if (config_.build.trie.leaf_capacity < 1) {
    return Status::InvalidArgument("trie leaf capacity must be at least 1");
  }
  for (const Trajectory& t : data.trajectories()) {
    if (t.size() < 2) {
      return Status::InvalidArgument(
          "DITA requires trajectories with at least 2 points");
    }
  }
  WallTimer build_timer;
  obs::SpanGuard build_span(tracer_, "index.build");

  // Partitioning runs on the driver; its CPU — including STR sort chunks
  // offloaded to the build pool — lands in the driver ledger.
  CpuTimer partition_timer;
  double partition_offloaded = 0.0;
  auto parts = config_.build.random_partitioning
                   ? PartitionRandomly(data.trajectories(),
                                       config_.build.ng * config_.build.ng)
                   : PartitionByFirstLast(data.trajectories(), config_.build.ng,
                                          build_pool_.get(),
                                          &partition_offloaded);
  DITA_RETURN_IF_ERROR(parts.status());

  // Level-0 sketch frame (DESIGN.md §5g): one fixed grid over the whole
  // table's data MBR, shared by every partition so signatures stay
  // comparable across them (and across delta inserts later).
  MBR data_mbr;
  for (const auto& part : *parts) {
    for (const Trajectory& t : part) {
      for (const Point& pt : t.points()) data_mbr.Expand(pt);
    }
  }
  sig_grid_ = data_mbr.empty() ? SigGrid{} : SigGrid::For(data_mbr);
  cluster_->RecordDriverCompute(partition_timer.Seconds() + partition_offloaded);

  partitions_.clear();
  partitions_.resize(parts->size());
  std::vector<GlobalIndex::PartitionSummary> summaries(parts->size());

  // Build local indexes as one cluster stage: each partition's trie is
  // constructed on its home worker.
  std::vector<Cluster::Task> tasks;
  for (size_t p = 0; p < parts->size(); ++p) {
    Partition& partition = partitions_[p];
    partition.home_worker = cluster_->WorkerOf(p);
    std::vector<Trajectory>* source = &(*parts)[p];
    GlobalIndex::PartitionSummary* summary = &summaries[p];
    // Build-stage tasks carry no recovery bytes: the source data is
    // driver-resident, so a lost build recomputes from lineage for free
    // (only the recomputation CPU is charged).
    tasks.push_back(
        {partition.home_worker, [this, &partition, source, summary] {
           for (const Trajectory& t : *source) {
             summary->mbr_first.Expand(t.front());
             summary->mbr_last.Expand(t.back());
             partition.data_bytes += t.ByteSize();
           }
           // Inputs were validated above, so Build cannot fail here.
           double offloaded = 0.0;
           DITA_CHECK(partition.trie
                          .Build(std::move(*source), config_.build.trie,
                                 build_pool_.get(), &offloaded)
                          .ok());
           // Verification summaries are independent per trajectory:
           // slot-indexed writes, so the parallel result is identical to
           // the serial loop.
           partition.precomp.resize(partition.trie.size());
           offloaded += ThreadPool::ParallelFor(
               build_pool_.get(), partition.trie.size(), /*min_parallel=*/64,
               [this, &partition](size_t lo, size_t hi) {
                 for (size_t i = lo; i < hi; ++i) {
                   partition.precomp[i] = VerifyPrecomp::For(
                       partition.trie.trajectories()[i],
                       config_.verify.cell_size, &sig_grid_);
                 }
               });
           // Aggregate sketch over the members (OR of bits, component-wise
           // minhash minima) — the partition-level prune the search paths
           // test before probing the trie.
           for (const VerifyPrecomp& vp : partition.precomp) {
             AggregateSignature(vp.sig, &partition.sketch_agg);
           }
           // Pool-thread CPU is charged to this cluster task so the
           // virtual-time ledger matches a serial build.
           if (offloaded > 0.0) Cluster::ChargeCurrentTask(offloaded);
           return Status::OK();
         }});
  }
  DITA_RETURN_IF_ERROR(cluster_->RunStage(std::move(tasks), StageOpts("build")));

  // Driver builds the global index over the partition summaries.
  CpuTimer driver_timer;
  global_.Build(std::move(summaries));
  cluster_->RecordDriverCompute(driver_timer.Seconds());

  index_stats_ = IndexStats{};
  index_stats_.build_seconds = build_timer.Seconds();
  index_stats_.num_partitions = partitions_.size();
  index_stats_.num_trajectories = data.size();
  index_stats_.global_index_bytes = global_.ByteSize();
  for (const Partition& p : partitions_) {
    index_stats_.local_index_bytes += p.trie.ByteSize();
    for (const VerifyPrecomp& vp : p.precomp) {
      index_stats_.local_index_bytes += vp.ByteSize();
    }
    // Signatures are inline (fixed-width) — one per trajectory plus the
    // partition aggregate.
    index_stats_.sketch_bytes += (p.precomp.size() + 1) * sizeof(TrajSignature);
  }
  build_span.Arg("partitions", partitions_.size());
  build_span.Arg("trajectories", data.size());
  indexed_ = true;
  return Status::OK();
}

void DitaEngine::RecordFilterMetrics(size_t partitions_relevant,
                                     const TrieIndex::ProbeStats& pstats,
                                     const VerifyStats& vstats) const {
  if (metrics_ == nullptr) return;
  m_partitions_relevant_.Add(partitions_relevant);
  m_sketch_candidates_pruned_.Add(vstats.pruned_by_sketch);
  m_trie_nodes_visited_.Add(pstats.nodes_visited);
  m_trie_nodes_pruned_.Add(pstats.nodes_pruned);
  m_trie_candidates_.Add(vstats.pairs);
  m_verify_pairs_.Add(vstats.pairs);
  m_verify_pruned_mbr_.Add(vstats.pruned_by_mbr);
  m_verify_pruned_cell_.Add(vstats.pruned_by_cell);
  m_verify_dp_computed_.Add(vstats.dp_computed);
  m_verify_dp_cells_.Add(vstats.dp_cells);
  m_verify_accepted_.Add(vstats.accepted);
}

TrieIndex::SearchSpec DitaEngine::MakeSpec(const Trajectory& q, double tau) const {
  TrieIndex::SearchSpec spec;
  spec.query = &q;
  spec.tau = tau;
  spec.mode = distance_->prune_mode();
  spec.epsilon = distance_->matching_epsilon();
  if (config_.distance == DistanceType::kLCSS) {
    spec.lcss_delta = config_.distance_params.delta;
  }
  if (config_.distance == DistanceType::kERP) {
    spec.erp_gap = &config_.distance_params.erp_gap;
  }
  return spec;
}

bool DitaEngine::TrajectoryRelevantTo(const Trajectory& t,
                                      const GlobalIndex::PartitionSummary& s,
                                      double tau) const {
  const double df = s.mbr_first.MinDist(t.front());
  const double dl = s.mbr_last.MinDist(t.back());
  switch (distance_->prune_mode()) {
    case PruneMode::kAccumulate:
      if (config_.distance == DistanceType::kERP) return true;  // gap matching
      return df + dl <= tau;
    case PruneMode::kMax:
      return df <= tau && dl <= tau;
    case PruneMode::kEditCount: {
      double edits = 0.0;
      const double eps = distance_->matching_epsilon();
      // Only rectangle-level information is available here; a first/last MBR
      // farther than epsilon from *every* point of t forces an edit.
      double best_f = s.mbr_first.MinDist(t.front());
      double best_l = s.mbr_last.MinDist(t.back());
      for (const Point& p : t.points()) {
        best_f = std::min(best_f, s.mbr_first.MinDist(p));
        best_l = std::min(best_l, s.mbr_last.MinDist(p));
      }
      if (best_f > eps) edits += 1.0;
      if (best_l > eps) edits += 1.0;
      return edits <= std::floor(tau);
    }
  }
  return true;
}

size_t DitaEngine::LocalSearch(const Partition& p, const Trajectory& q,
                               const VerifyPrecomp& qp, double tau,
                               std::vector<TrajectoryId>* results,
                               VerifyStats* vstats,
                               TrieIndex::ProbeStats* pstats,
                               QueryContext* ctx,
                               const SigBits* dilated) const {
  TrieIndex::SearchSpec spec = MakeSpec(q, tau);
  spec.ctx = ctx;
  DpScratch& scratch = DpScratch::ThreadLocal();
  std::vector<uint32_t>& candidates = scratch.Candidates();
  candidates.clear();
  {
    obs::SpanGuard collect_span(tracer_, "trie.collect");
    p.trie.CollectCandidates(spec, &candidates, pstats);
    collect_span.Arg("candidates", candidates.size());
  }
  std::vector<uint32_t>& accepted = scratch.Accepted();
  accepted.clear();
  const size_t dp_before = vstats != nullptr ? vstats->dp_computed : 0;
  const Verifier::Batch batch{&p.precomp, &candidates, &qp, tau, dilated, ctx};
  const Verifier::BatchResult r = verifier_->VerifyBatch(
      batch, verify_pool_.get(), config_.verify.parallel_min, &accepted,
      vstats, tracer_);
  if (vstats != nullptr) {
    h_batch_survivors_.Observe(
        static_cast<double>(vstats->dp_computed - dp_before));
  }
  // DP chunks ran on pool threads; charge their CPU to this cluster task so
  // the virtual-time ledger matches a serial verification.
  if (r.offloaded_seconds > 0.0) Cluster::ChargeCurrentTask(r.offloaded_seconds);
  for (const uint32_t pos : accepted) {
    results->push_back(p.trie.trajectory(pos).id());
  }
  return candidates.size();
}

Result<std::vector<TrajectoryId>> DitaEngine::SearchImpl(
    const Trajectory& q, double tau, QueryStats* stats,
    QueryContext* ctx) const {
  const Cluster::CostSnapshot snap = cluster_->Snapshot();
  obs::SpanGuard query_span(tracer_, "query");

  // Driver: probe the global index for relevant partitions.
  CpuTimer driver_timer;
  const Point* erp_gap = config_.distance == DistanceType::kERP
                             ? &config_.distance_params.erp_gap
                             : nullptr;
  std::vector<uint32_t> relevant;
  {
    obs::SpanGuard probe_span(tracer_, "probe.global");
    relevant = global_.RelevantPartitions(q, tau, distance_->prune_mode(),
                                          distance_->matching_epsilon(),
                                          erp_gap);
    probe_span.Arg("relevant", relevant.size());
  }
  const VerifyPrecomp qp = VerifyPrecomp::For(q, config_.verify.cell_size);

  // Level-0 sketch tier (DESIGN.md §5g): dilate the query's signature by
  // tau once, then drop relevant partitions whose aggregate bits miss the
  // dilated set — no member of such a partition can pass the per-candidate
  // subset test, let alone match. Pruned partitions were proven empty of
  // answers, so they count as fully searched for completeness.
  const bool sketch = SketchActive();
  SigBits dilated;
  uint64_t sketch_pruned_population = 0;
  if (sketch) {
    dilated = DilatedQuerySig(q, tau);
    size_t pruned_parts = 0;
    std::vector<uint32_t> probed;
    probed.reserve(relevant.size());
    for (const uint32_t pid : relevant) {
      const Partition& part = partitions_[pid];
      if (!part.sketch_agg.bits.Empty() &&
          !part.sketch_agg.bits.Intersects(dilated)) {
        sketch_pruned_population += part.trie.size();
        ++pruned_parts;
      } else {
        probed.push_back(pid);
      }
    }
    relevant.swap(probed);
    if (pruned_parts > 0) m_sketch_partitions_pruned_.Add(pruned_parts);
  }
  cluster_->RecordDriverCompute(driver_timer.Seconds());

  // Probe-stat collection feeds the funnel (per caller request) and the
  // filter.trie.* metrics; when neither consumer exists the trie traversal
  // keeps its stats-free hot path.
  const bool want_probe_stats = stats != nullptr || metrics_ != nullptr;
  const size_t trie_levels = config_.build.trie.num_pivots + 2;

  // Workers: local filter + verify per relevant partition.
  std::vector<SearchLocalOut> outs(relevant.size());
  std::vector<Cluster::Task> tasks;
  tasks.reserve(relevant.size());
  for (size_t idx = 0; idx < relevant.size(); ++idx) {
    const Partition* part = &partitions_[relevant[idx]];
    SearchLocalOut* out = &outs[idx];
    tasks.push_back({part->home_worker,
                     [&, part, out] {
                       if (want_probe_stats) out->pstats.Reset(trie_levels);
                       out->candidates = LocalSearch(
                           *part, q, qp, tau, &out->ids, &out->vstats,
                           want_probe_stats ? &out->pstats : nullptr, ctx,
                           sketch ? &dilated : nullptr);
                       // Complete iff the stop (if any) had not fired by the
                       // time this task finished; conservative under real
                       // concurrency, exact under serial execution.
                       out->complete = ctx == nullptr || !ctx->stopped();
                       return Status::OK();
                     },
                     part->data_bytes});
  }
  std::vector<uint8_t> kept;
  const Status stage =
      cluster_->RunStage(std::move(tasks), StageOpts("search", ctx), &kept);
  if (ctx != nullptr) ctx->ObserveVirtualSeconds(cluster_->MakespanSince(snap));
  const bool degraded = !stage.ok() && ShouldDegrade(ctx, stage);
  if (!stage.ok() && !degraded) return stage;
  if (degraded) {
    m_query_degraded_.Increment();
    if (tracer_ != nullptr) tracer_->Instant("query.degraded");
  }

  // Merge the surviving tasks' slots. A complete query merges everything
  // (kept is all-ones and every slot is complete), so this is the same
  // result as the pre-slot merge.
  std::vector<const SearchLocalOut*> slots(relevant.size(), nullptr);
  for (size_t idx = 0; idx < relevant.size(); ++idx) {
    if ((kept.empty() || kept[idx]) && outs[idx].complete) {
      slots[idx] = &outs[idx];
    }
  }
  size_t total_candidates = 0;
  std::vector<TrajectoryId> results =
      MergeSearch(relevant, slots, stats, ctx, snap, &total_candidates,
                  sketch_pruned_population);
  query_span.Arg("partitions_probed", relevant.size());
  query_span.Arg("candidates", total_candidates);
  query_span.Arg("results", results.size());
  return results;
}

std::vector<TrajectoryId> DitaEngine::MergeSearch(
    const std::vector<uint32_t>& relevant,
    const std::vector<const SearchLocalOut*>& slots, QueryStats* stats,
    QueryContext* ctx, const Cluster::CostSnapshot& snap,
    size_t* total_candidates_out, uint64_t sketch_pruned_population) const {
  const bool want_probe_stats = stats != nullptr || metrics_ != nullptr;
  const size_t trie_levels = config_.build.trie.num_pivots + 2;
  std::vector<TrajectoryId> results;
  size_t total_candidates = 0;
  // Sketch-pruned partitions were proven to hold no answers, so they count
  // as merged (fully searched) for completeness and enter the funnel at the
  // "global index" level before the "sketch partitions" level removes them.
  uint64_t relevant_population = sketch_pruned_population;
  uint64_t merged_population = sketch_pruned_population;
  VerifyStats vstats;
  TrieIndex::ProbeStats pstats;
  pstats.Reset(trie_levels);
  for (size_t idx = 0; idx < relevant.size(); ++idx) {
    const uint64_t population = partitions_[relevant[idx]].trie.size();
    relevant_population += population;
    const SearchLocalOut* out = slots[idx];
    if (out == nullptr) continue;
    merged_population += population;
    results.insert(results.end(), out->ids.begin(), out->ids.end());
    total_candidates += out->candidates;
    vstats.Merge(out->vstats);
    if (want_probe_stats) pstats.Merge(out->pstats);
  }
  const double completeness =
      relevant_population == 0
          ? 1.0
          : static_cast<double>(merged_population) /
                static_cast<double>(relevant_population);

  RecordFilterMetrics(relevant.size(), pstats, vstats);
  h_query_candidates_.Observe(static_cast<double>(total_candidates));

  if (stats != nullptr) {
    stats->makespan_seconds = cluster_->MakespanSince(snap);
    stats->partitions_probed = relevant.size();
    stats->candidates = total_candidates;
    stats->verify = vstats;
    stats->results = results.size();
    stats->faults = cluster_->FaultsSince(snap);
    stats->termination = ctx != nullptr ? ctx->ToStatus() : Status::OK();
    stats->completeness = completeness;

    // Filter funnel: survivors after each pruning level. Within the trie,
    // survivors after level l are the relevant population minus everything
    // pruned at levels <= l; the remainder after the last level is exactly
    // the candidate set, and the verify counters carry the funnel to the
    // accepted results. Under degradation every level counts only the
    // merged (completed) partitions, so the funnel still balances: it stays
    // monotone and ends at the returned result count.
    obs::FilterFunnel funnel;
    funnel.AddLevel("table", index_stats_.num_trajectories);
    funnel.AddLevel("global index", merged_population);
    uint64_t remaining = merged_population - sketch_pruned_population;
    funnel.AddLevel("sketch partitions", remaining);
    for (size_t l = 0; l < trie_levels; ++l) {
      remaining -= pstats.pruned_members[l];
      const std::string label =
          l == 0 ? "trie: first"
                 : (l == 1 ? "trie: last"
                           : "trie: pivot " + std::to_string(l - 1));
      funnel.AddLevel(label, remaining);
    }
    funnel.AddLevel("candidates", total_candidates);
    funnel.AddLevel("sketch signature",
                    vstats.pairs - vstats.pruned_by_sketch);
    funnel.AddLevel("mbr coverage", vstats.pairs - vstats.pruned_by_sketch -
                                        vstats.pruned_by_mbr);
    funnel.AddLevel("cell bound", vstats.dp_computed);
    funnel.AddLevel("threshold dp", vstats.accepted);
    stats->funnel = std::move(funnel);
  }
  std::sort(results.begin(), results.end());
  if (total_candidates_out != nullptr) *total_candidates_out = total_candidates;
  return results;
}

std::vector<Result<QueryResult>> DitaEngine::ExecuteBatch(
    std::span<const QueryRequest> reqs) const {
  std::vector<Result<QueryResult>> out;
  out.reserve(reqs.size());
  for (size_t i = 0; i < reqs.size(); ++i) {
    out.push_back(Result<QueryResult>(Status::Internal("batch slot not filled")));
  }
  // Only valid threshold searches batch; everything else — joins, kNN, and
  // searches that would fail validation — takes the standalone path so its
  // behavior (including its error) is exactly Execute's.
  std::vector<size_t> batched;
  for (size_t i = 0; i < reqs.size(); ++i) {
    const QueryRequest& req = reqs[i];
    const bool batchable = req.kind == QueryKind::kSearch && indexed_ &&
                           req.query.size() >= 2 && req.tau >= 0;
    if (batchable) {
      batched.push_back(i);
    } else {
      out[i] = Execute(req);
    }
  }
  if (batched.empty()) return out;
  if (batched.size() == 1) {
    out[batched[0]] = Execute(reqs[batched[0]]);
    return out;
  }
  // One admission ticket covers the whole batch at the members' summed
  // cost, so the gate's inflight-cost budget sees the same load as the
  // standalone calls would have presented.
  uint64_t cost = 0;
  for (const size_t i : batched) cost += EstimateQueryCost(reqs[i]);
  AdmissionGate::Ticket ticket;
  const Status admitted =
      AdmitQuery(QueryKind::kSearch, nullptr, cost, &ticket);
  if (!admitted.ok()) {
    for (const size_t i : batched) out[i] = admitted;
    return out;
  }
  SearchBatchImpl(reqs, batched, &out);
  return out;
}

void DitaEngine::SearchBatchImpl(std::span<const QueryRequest> reqs,
                                 const std::vector<size_t>& members,
                                 std::vector<Result<QueryResult>>* results) const {
  const Cluster::CostSnapshot snap = cluster_->Snapshot();
  obs::SpanGuard batch_span(tracer_, "query.batch");
  batch_span.Arg("queries", members.size());
  const size_t n = members.size();
  const size_t trie_levels = config_.build.trie.num_pivots + 2;
  const Point* erp_gap = config_.distance == DistanceType::kERP
                             ? &config_.distance_params.erp_gap
                             : nullptr;

  // Driver: per member, relevant partitions + verification precomp (the
  // same work the standalone path performs, once per member).
  CpuTimer driver_timer;
  std::vector<std::vector<uint32_t>> relevant(n);
  std::vector<VerifyPrecomp> qps;
  qps.reserve(n);
  for (size_t m = 0; m < n; ++m) {
    const QueryRequest& req = reqs[members[m]];
    relevant[m] = global_.RelevantPartitions(req.query, req.tau,
                                             distance_->prune_mode(),
                                             distance_->matching_epsilon(),
                                             erp_gap);
    qps.push_back(VerifyPrecomp::For(req.query, config_.verify.cell_size));
  }

  // Level-0 sketch tier, per member (see SearchImpl). The dilated
  // signatures live in the driver thread's grow-once scratch arena — the
  // traversal tasks only read them — so a steady batch stream allocates
  // nothing here.
  const bool sketch = SketchActive();
  std::vector<SigBits>& dsigs = TrieIndex::Scratch::ThreadLocal().DilatedSigs();
  std::vector<uint64_t> sketch_pruned_pop(n, 0);
  if (sketch) {
    if (dsigs.size() < n) dsigs.resize(n);
    size_t pruned_parts = 0;
    for (size_t m = 0; m < n; ++m) {
      const QueryRequest& req = reqs[members[m]];
      dsigs[m] = DilatedQuerySig(req.query, req.tau);
      std::vector<uint32_t> probed;
      probed.reserve(relevant[m].size());
      for (const uint32_t pid : relevant[m]) {
        const Partition& part = partitions_[pid];
        if (!part.sketch_agg.bits.Empty() &&
            !part.sketch_agg.bits.Intersects(dsigs[m])) {
          sketch_pruned_pop[m] += part.trie.size();
          ++pruned_parts;
        } else {
          probed.push_back(pid);
        }
      }
      relevant[m].swap(probed);
    }
    if (pruned_parts > 0) m_sketch_partitions_pruned_.Add(pruned_parts);
  }
  cluster_->RecordDriverCompute(driver_timer.Seconds());

  // Group members by relevant partition: each involved partition is probed
  // by ONE task running the shared trie traversal and the multi-query
  // verify pass for its member subset — this is where the batch saves work
  // over n standalone stages. Slots stay per (partition, member), so each
  // member's merge/degradation logic is untouched.
  struct PartWork {
    uint32_t pid = 0;
    std::vector<uint32_t> members;     // ordinals into `members`, ascending
    std::vector<SearchLocalOut> outs;  // parallel to members
  };
  std::map<uint32_t, std::vector<uint32_t>> by_part;
  for (size_t m = 0; m < n; ++m) {
    for (const uint32_t pid : relevant[m]) {
      by_part[pid].push_back(static_cast<uint32_t>(m));
    }
  }
  std::vector<PartWork> work;
  work.reserve(by_part.size());
  std::unordered_map<uint32_t, uint32_t> work_of;
  for (auto& [pid, ms] : by_part) {
    work_of[pid] = static_cast<uint32_t>(work.size());
    PartWork pw;
    pw.pid = pid;
    pw.members = std::move(ms);
    pw.outs.resize(pw.members.size());
    work.push_back(std::move(pw));
  }
  // slot_of[m][idx] locates member m's slot for relevant[m][idx].
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> slot_of(n);
  for (size_t m = 0; m < n; ++m) {
    slot_of[m].reserve(relevant[m].size());
    for (const uint32_t pid : relevant[m]) {
      const uint32_t w = work_of[pid];
      const auto& wm = work[w].members;
      const uint32_t j = static_cast<uint32_t>(
          std::lower_bound(wm.begin(), wm.end(), static_cast<uint32_t>(m)) -
          wm.begin());
      slot_of[m].push_back({w, j});
    }
  }

  std::vector<Cluster::Task> tasks;
  tasks.reserve(work.size());
  for (PartWork& pw : work) {
    const Partition* part = &partitions_[pw.pid];
    PartWork* w = &pw;
    tasks.push_back(
        {part->home_worker,
         [this, part, w, reqs, &members, &qps, trie_levels, sketch, &dsigs] {
           const size_t cnt = w->members.size();
           std::vector<std::vector<uint32_t>> cand(cnt);
           std::vector<std::vector<uint32_t>> acc(cnt);
           std::vector<TrieIndex::BatchQuery> bq(cnt);
           for (size_t j = 0; j < cnt; ++j) {
             const QueryRequest& req = reqs[members[w->members[j]]];
             SearchLocalOut* slot = &w->outs[j];
             TrieIndex::SearchSpec spec = MakeSpec(req.query, req.tau);
             spec.ctx = req.ctx;
             bq[j].spec = spec;
             bq[j].out = &cand[j];
             if (req.collect_stats || metrics_ != nullptr) {
               slot->pstats.Reset(trie_levels);
               bq[j].stats = &slot->pstats;
             }
           }
           {
             obs::SpanGuard collect_span(tracer_, "trie.collect");
             part->trie.CollectCandidatesBatch(bq.data(), cnt);
             size_t total = 0;
             for (const auto& c : cand) total += c.size();
             collect_span.Arg("queries", cnt);
             collect_span.Arg("candidates", total);
           }
           std::vector<Verifier::MultiQuery> mq(cnt);
           for (size_t j = 0; j < cnt; ++j) {
             const QueryRequest& req = reqs[members[w->members[j]]];
             mq[j] = Verifier::MultiQuery{
                 &cand[j], &qps[w->members[j]], req.tau,
                 sketch ? &dsigs[w->members[j]] : nullptr,
                 req.ctx,  &acc[j],             &w->outs[j].vstats};
           }
           const Verifier::BatchResult r = verifier_->VerifyMulti(
               part->precomp, mq.data(), cnt, verify_pool_.get(),
               config_.verify.parallel_min, tracer_);
           if (r.offloaded_seconds > 0.0) {
             Cluster::ChargeCurrentTask(r.offloaded_seconds);
           }
           for (size_t j = 0; j < cnt; ++j) {
             const QueryRequest& req = reqs[members[w->members[j]]];
             SearchLocalOut* slot = &w->outs[j];
             slot->candidates = cand[j].size();
             for (const uint32_t pos : acc[j]) {
               slot->ids.push_back(part->trie.trajectory(pos).id());
             }
             h_batch_survivors_.Observe(
                 static_cast<double>(slot->vstats.dp_computed));
             slot->complete = req.ctx == nullptr || !req.ctx->stopped();
           }
           return Status::OK();
         },
         part->data_bytes});
  }

  // The stage itself carries no member context: one member's stop must not
  // abort the shared traversal for the rest (the traversal drops the
  // stopped member from its alive sets instead). Infrastructure failures
  // still fail the stage — and with it every member, exactly as each
  // standalone call would have failed.
  std::vector<uint8_t> kept;
  const Status stage =
      cluster_->RunStage(std::move(tasks), StageOpts("search.batch"), &kept);
  for (size_t m = 0; m < n; ++m) {
    QueryContext* const ctx = reqs[members[m]].ctx;
    if (ctx != nullptr) {
      ctx->ObserveVirtualSeconds(cluster_->MakespanSince(snap));
    }
  }
  if (!stage.ok()) {
    for (size_t m = 0; m < n; ++m) (*results)[members[m]] = stage;
    return;
  }

  size_t batch_results = 0;
  for (size_t m = 0; m < n; ++m) {
    const QueryRequest& req = reqs[members[m]];
    std::vector<const SearchLocalOut*> slots(relevant[m].size(), nullptr);
    bool dropped = false;
    for (size_t idx = 0; idx < relevant[m].size(); ++idx) {
      const auto [w, j] = slot_of[m][idx];
      if ((!kept.empty() && !kept[w]) || !work[w].outs[j].complete) {
        dropped = true;
        continue;
      }
      slots[idx] = &work[w].outs[j];
    }
    if (dropped) {
      m_query_degraded_.Increment();
      if (tracer_ != nullptr) tracer_->Instant("query.degraded");
    }
    QueryResult res;
    res.kind = QueryKind::kSearch;
    QueryStats* qstats = req.collect_stats ? &res.search_stats : nullptr;
    size_t total_candidates = 0;
    res.ids = MergeSearch(relevant[m], slots, qstats, req.ctx, snap,
                          &total_candidates, sketch_pruned_pop[m]);
    batch_results += res.ids.size();
    (*results)[members[m]] = std::move(res);
  }
  batch_span.Arg("results", batch_results);
}

Result<std::vector<std::pair<TrajectoryId, double>>> DitaEngine::KnnSearchImpl(
    const Trajectory& q, size_t k, double initial_tau,
    QueryStats* stats, QueryContext* ctx) const {
  const Cluster::CostSnapshot snap = cluster_->Snapshot();
  obs::SpanGuard knn_span(tracer_, "knn.query");
  knn_span.Arg("k", k);
  const VerifyPrecomp qp = VerifyPrecomp::For(q, config_.verify.cell_size);

  // Seed the expansion with a data-derived radius: the spread of the query
  // itself is a reasonable unit of distance for its neighbourhood.
  double tau = initial_tau;
  if (tau <= 0.0) {
    const MBR qmbr = q.ComputeMBR();
    tau = std::max(1e-9, 0.01 * PointDistance(qmbr.lo(), qmbr.hi()));
  }

  // Iterative threshold expansion: collect candidates at radius tau, keep
  // exact distances, and stop once k answers lie within tau (then no
  // trajectory outside radius tau can belong to the kNN set, because every
  // result within tau beats it).
  std::vector<std::pair<TrajectoryId, double>> scored;
  // Snapshot of `scored` after the most recent *fully completed* round. A
  // complete round at radius tau enumerated every trajectory within tau, so
  // its answers — sorted by distance — are a true prefix of the kNN set
  // even when fewer than k were found. A round cut short mid-flight proves
  // nothing of the sort, so a stopped query falls back to this snapshot.
  std::vector<std::pair<TrajectoryId, double>> last_complete;
  bool stopped_early = false;
  // Per-partition memo of exact distances: expansion rounds re-collect most
  // of the previous round's candidates (the radius only grows), and exact
  // DP scores are the expensive part, so they are computed once per
  // (partition, position) across all rounds. Each partition appears in at
  // most one task per round, so its map needs no locking — and memoized
  // distances from an abandoned round stay valid for the next one.
  std::vector<std::unordered_map<uint32_t, double>> memo(partitions_.size());
  size_t total_candidates = 0;
  size_t probed = 0;
  const bool sketch = SketchActive();
  for (int round = 0; round < 64; ++round) {
    scored.clear();
    const Point* erp_gap = config_.distance == DistanceType::kERP
                               ? &config_.distance_params.erp_gap
                               : nullptr;
    CpuTimer driver_timer;
    std::vector<uint32_t> relevant = global_.RelevantPartitions(
        q, tau, distance_->prune_mode(), distance_->matching_epsilon(), erp_gap);
    // Sketch tier, re-dilated each round (the dilation radius is the
    // round's tau). Partition prune as in SearchImpl; per candidate the
    // subset test skips the exact-distance computation — a skipped
    // candidate provably has distance > tau, so it cannot enter `scored`.
    SigBits dilated;
    if (sketch) {
      dilated = DilatedQuerySig(q, tau);
      size_t pruned_parts = 0;
      std::vector<uint32_t> kept_parts;
      kept_parts.reserve(relevant.size());
      for (const uint32_t pid : relevant) {
        const Partition& part = partitions_[pid];
        if (!part.sketch_agg.bits.Empty() &&
            !part.sketch_agg.bits.Intersects(dilated)) {
          ++pruned_parts;
        } else {
          kept_parts.push_back(pid);
        }
      }
      relevant.swap(kept_parts);
      if (pruned_parts > 0) m_sketch_partitions_pruned_.Add(pruned_parts);
    }
    cluster_->RecordDriverCompute(driver_timer.Seconds());

    struct RoundOut {
      std::vector<std::pair<TrajectoryId, double>> scored;
      size_t candidates = 0;
      bool complete = false;
    };
    std::vector<RoundOut> outs(relevant.size());
    std::vector<Cluster::Task> tasks;
    tasks.reserve(relevant.size());
    for (size_t idx = 0; idx < relevant.size(); ++idx) {
      const uint32_t pid = relevant[idx];
      const Partition* part = &partitions_[pid];
      std::unordered_map<uint32_t, double>* part_memo = &memo[pid];
      RoundOut* out = &outs[idx];
      tasks.push_back({part->home_worker,
                       [&, part, part_memo, out] {
        TrieIndex::SearchSpec spec = MakeSpec(q, tau);
        spec.ctx = ctx;
        DpScratch& scratch = DpScratch::ThreadLocal();
        std::vector<uint32_t>& candidates = scratch.Candidates();
        candidates.clear();
        part->trie.CollectCandidates(spec, &candidates);
        const TrajView qv = scratch.ExtractB(q);
        for (uint32_t pos : candidates) {
          if (ctx != nullptr && ctx->stopped()) break;
          if (sketch && !part->precomp[pos].sig.bits.Empty() &&
              !part->precomp[pos].sig.bits.SubsetOf(dilated)) {
            continue;
          }
          // Exact distance needed for ranking; WithinThreshold's boolean
          // answer is not enough here. Memoized across expansion rounds.
          double d;
          const auto it = part_memo->find(pos);
          if (it != part_memo->end()) {
            d = it->second;
          } else {
            d = distance_->Compute(part->precomp[pos].soa.view(), qv, &scratch);
            part_memo->emplace(pos, d);
          }
          if (d <= tau) {
            out->scored.emplace_back(part->trie.trajectory(pos).id(), d);
          }
        }
        out->candidates = candidates.size();
        out->complete = ctx == nullptr || !ctx->stopped();
        return Status::OK();
                       },
                       part->data_bytes});
    }
    probed += relevant.size();
    std::vector<uint8_t> kept;
    const Status stage = cluster_->RunStage(
        std::move(tasks), StageOpts("knn-search", ctx), &kept);
    if (ctx != nullptr) {
      ctx->ObserveVirtualSeconds(cluster_->MakespanSince(snap));
    }
    if (!stage.ok() && !ShouldDegrade(ctx, stage)) return stage;
    bool round_complete = stage.ok();
    for (size_t idx = 0; idx < relevant.size(); ++idx) {
      if ((!kept.empty() && !kept[idx]) || !outs[idx].complete) {
        round_complete = false;
        continue;
      }
      total_candidates += outs[idx].candidates;
      scored.insert(scored.end(), outs[idx].scored.begin(),
                    outs[idx].scored.end());
    }
    // Snapshot before checking for a stop: a stop that fired *after* the
    // whole round ran (e.g. the virtual deadline observed above) still
    // leaves a fully enumerated round to fall back on.
    if (round_complete) last_complete = scored;
    if (ctx != nullptr && ctx->stopped()) {
      stopped_early = true;
      break;
    }
    if (round_complete && scored.size() >= k) break;
    tau *= 2.0;
  }
  if (stopped_early) {
    m_query_degraded_.Increment();
    if (tracer_ != nullptr) tracer_->Instant("query.degraded");
    scored = std::move(last_complete);
  } else if (scored.size() < k) {
    return Status::Internal("kNN expansion failed to find k results");
  }

  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });
  if (scored.size() > k) scored.resize(k);
  if (stats != nullptr) {
    stats->makespan_seconds = cluster_->MakespanSince(snap);
    stats->partitions_probed = probed;
    stats->candidates = total_candidates;
    stats->results = scored.size();
    stats->faults = cluster_->FaultsSince(snap);
    stats->termination = ctx != nullptr ? ctx->ToStatus() : Status::OK();
    stats->completeness =
        stopped_early ? static_cast<double>(scored.size()) /
                            static_cast<double>(k)
                      : 1.0;
  }
  return scored;
}

Result<std::vector<DitaEngine::KnnJoinRow>> DitaEngine::KnnJoin(
    const DitaEngine& right, size_t k) const {
  if (!indexed_ || !right.indexed_) {
    return Status::Internal("KnnJoin before BuildIndex");
  }
  if (cluster_.get() != right.cluster_.get()) {
    return Status::InvalidArgument("joined tables must share a cluster");
  }
  if (k == 0) return std::vector<KnnJoinRow>{};
  if (k > right.index_stats_.num_trajectories) {
    return Status::InvalidArgument("k exceeds the right table cardinality");
  }

  // Per-left-trajectory threshold expansion against the right index. Left
  // trajectories are visited partition by partition, reusing each query's
  // previous radius as the seed for its partition neighbours (similar trips
  // colocate, so radii are strongly correlated).
  std::vector<KnnJoinRow> rows;
  for (const Partition& part : partitions_) {
    double seed_tau = 0.0;
    for (uint32_t pos = 0; pos < part.trie.size(); ++pos) {
      const Trajectory& t = part.trie.trajectory(pos);
      auto knn = right.KnnSearch(t, k, seed_tau);
      DITA_RETURN_IF_ERROR(knn.status());
      if (!knn->empty()) seed_tau = knn->back().second;
      for (const auto& [id, d] : *knn) {
        rows.push_back(KnnJoinRow{t.id(), id, d});
      }
    }
  }
  std::sort(rows.begin(), rows.end(), [](const KnnJoinRow& a, const KnnJoinRow& b) {
    if (a.left != b.left) return a.left < b.left;
    if (a.distance != b.distance) return a.distance < b.distance;
    return a.right < b.right;
  });
  return rows;
}

Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> DitaEngine::JoinImpl(
    const DitaEngine& right, double tau, JoinStats* stats,
    QueryContext* ctx) const {
  JoinPlanner planner(*this, right, tau, ctx);
  return planner.Run(stats);
}

}  // namespace dita
