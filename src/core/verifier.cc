#include "core/verifier.h"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "distance/dp_scratch.h"
#include "util/timer.h"

namespace dita {

bool Verifier::PassesFilters(const VerifyPrecomp& tp, const VerifyPrecomp& qp,
                             double tau, VerifyStats* stats,
                             const SigBits* dilated) const {
  const PruneMode mode = distance_->prune_mode();
  // DTW and Frechet align every point of T within tau of some point of Q,
  // which is what the MBR/cell bounds encode. Edit distances may delete
  // points and ERP may match the gap point, so neither bound applies there.
  const bool geometric = distance_->type() == DistanceType::kDTW ||
                         distance_->type() == DistanceType::kFrechet;

  if (geometric && sketch_enabled_ && dilated != nullptr &&
      !tp.sig.bits.Empty()) {
    // Level 0 (DESIGN.md §5g): every point of a matching T lies within tau
    // of some query point, so every occupied cell of T lies in the query's
    // tau-dilated cell set. Four AND-NOTs — cheaper than any other filter.
    if (!tp.sig.bits.SubsetOf(*dilated)) {
      if (stats != nullptr) ++stats->pruned_by_sketch;
      return false;
    }
  }

  if (geometric && mbr_enabled_) {
    // Lemma 5.4: if similar, EMBR_{T,tau} covers MBR_Q and vice versa. Both
    // DTW and Frechet align every point of one trajectory to within tau of
    // a point of the other, so the lemma applies to both.
    if (!tp.mbr.Extended(tau).Covers(qp.mbr) ||
        !qp.mbr.Extended(tau).Covers(tp.mbr)) {
      if (stats != nullptr) ++stats->pruned_by_mbr;
      return false;
    }
  }

  if (geometric && cell_enabled_) {
    const bool is_max = mode == PruneMode::kMax;
    const double lb_tq = is_max ? CellLowerBoundFrechet(tp.cells, qp.cells, tau)
                                : CellLowerBoundDtw(tp.cells, qp.cells, tau);
    if (lb_tq > tau) {
      if (stats != nullptr) ++stats->pruned_by_cell;
      return false;
    }
    const double lb_qt = is_max ? CellLowerBoundFrechet(qp.cells, tp.cells, tau)
                                : CellLowerBoundDtw(qp.cells, tp.cells, tau);
    if (lb_qt > tau) {
      if (stats != nullptr) ++stats->pruned_by_cell;
      return false;
    }
  }
  return true;
}

bool Verifier::Verify(const Trajectory&, const VerifyPrecomp& tp,
                      const Trajectory&, const VerifyPrecomp& qp, double tau,
                      VerifyStats* stats, const SigBits* dilated) const {
  if (stats != nullptr) ++stats->pairs;
  if (!PassesFilters(tp, qp, tau, stats, dilated)) return false;
  if (stats != nullptr) {
    ++stats->dp_computed;
    stats->dp_cells +=
        static_cast<uint64_t>(tp.soa.size()) * qp.soa.size();
  }
  const bool within = distance_->WithinThreshold(
      tp.soa.view(), qp.soa.view(), tau, &DpScratch::ThreadLocal());
  if (within && stats != nullptr) ++stats->accepted;
  return within;
}

Verifier::BatchResult Verifier::VerifyBatch(const Batch& batch,
                                            ThreadPool* pool,
                                            size_t min_parallel,
                                            std::vector<uint32_t>* accepted,
                                            VerifyStats* stats,
                                            obs::Tracer* tracer) const {
  obs::SpanGuard span(tracer, "verify");
  BatchResult out;
  const std::vector<VerifyPrecomp>& precomp = *batch.precomp;
  const std::vector<uint32_t>& candidates = *batch.candidates;
  const VerifyPrecomp& qp = *batch.query;
  const double tau = batch.tau;
  QueryContext* const ctx = batch.ctx;
  const size_t before = accepted->size();
  DpScratch& scratch = DpScratch::ThreadLocal();
  if (ctx != nullptr && ctx->stopped()) return out;

  if (stats != nullptr) stats->pairs += candidates.size();

  // Pass 1: cheap geometric filters only — a tight scan over the precomp
  // array that never touches DP state or raw coordinates. Checkpointed in
  // blocks: candidate filter tests are the unit of work charged here.
  std::vector<uint32_t>& survivors = scratch.Survivors();
  survivors.clear();
  constexpr size_t kFilterStride = 256;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (ctx != nullptr && (i % kFilterStride) == 0 && i != 0 &&
        ctx->CheckPoint(kFilterStride)) {
      return out;
    }
    const uint32_t pos = candidates[i];
    if (PassesFilters(precomp[pos], qp, tau, stats, batch.dilated)) {
      survivors.push_back(pos);
    }
  }
  uint64_t batch_dp_cells = 0;
  for (const uint32_t pos : survivors) {
    batch_dp_cells +=
        static_cast<uint64_t>(precomp[pos].soa.size()) * qp.soa.size();
  }
  if (stats != nullptr) {
    stats->dp_computed += survivors.size();
    stats->dp_cells += batch_dp_cells;
  }
  // The whole batch's DP work is charged up front: exceeding max_dp_cells
  // skips the DP entirely instead of discovering the overrun halfway in.
  if (ctx != nullptr && ctx->ChargeDpCells(batch_dp_cells)) return out;
  if (ctx != nullptr && ctx->CheckScratchBytes(scratch.ByteSize())) return out;

  // Pass 2: thresholded DP on the survivors. The context rides along in the
  // scratch so the kernels' row-block polls see it; restored on every exit.
  struct ScratchCtxGuard {
    DpScratch* s;
    ~ScratchCtxGuard() { s->SetQueryContext(nullptr); }
  };
  const TrajView qv = qp.soa.view();
  const size_t count = survivors.size();
  const size_t min_par = std::max<size_t>(min_parallel, 2);
  if (pool == nullptr || pool->num_threads() < 2 || count < min_par) {
    scratch.SetQueryContext(ctx);
    ScratchCtxGuard guard{&scratch};
    for (const uint32_t pos : survivors) {
      if (ctx != nullptr && ctx->stopped()) break;
      if (distance_->WithinThreshold(precomp[pos].soa.view(), qv, tau,
                                     &scratch)) {
        accepted->push_back(pos);
      }
    }
  } else {
    // Chunk the DP work across the pool. Accept bits land in a flags lane
    // and are compacted serially afterwards, so the output order matches the
    // serial path. Each chunk measures its own CPU time (CpuTimer is
    // per-thread) and the sum is reported as offloaded_seconds for the
    // cluster's virtual-time ledger.
    uint8_t* flags = scratch.Flags(count);
    const size_t chunk_count = std::min(count, pool->num_threads() * 4);
    const size_t chunk_len = (count + chunk_count - 1) / chunk_count;
    double* chunk_cpu = scratch.Gap(chunk_count);
    const uint32_t* surv = survivors.data();

    struct Sync {
      std::mutex mu;
      std::condition_variable done;
      size_t remaining = 0;
      std::exception_ptr error;
    } sync;
    size_t launched = 0;
    for (size_t c = 0; c < chunk_count && c * chunk_len < count; ++c) {
      ++launched;
    }
    sync.remaining = launched;

    for (size_t c = 0; c < launched; ++c) {
      const size_t lo = c * chunk_len;
      const size_t hi = std::min(count, lo + chunk_len);
      pool->Submit([this, surv, flags, chunk_cpu, lo, hi, c, qv, tau, ctx,
                    &precomp, &sync] {
        CpuTimer timer;
        try {
          DpScratch& local = DpScratch::ThreadLocal();
          local.SetQueryContext(ctx);
          ScratchCtxGuard guard{&local};
          for (size_t k = lo; k < hi; ++k) {
            if (ctx != nullptr && ctx->stopped()) {
              // Remaining flags must not read as stale accepts.
              for (size_t r = k; r < hi; ++r) flags[r] = 0;
              break;
            }
            flags[k] = distance_->WithinThreshold(precomp[surv[k]].soa.view(),
                                                  qv, tau, &local)
                           ? 1
                           : 0;
          }
        } catch (...) {
          std::lock_guard<std::mutex> lock(sync.mu);
          if (!sync.error) sync.error = std::current_exception();
        }
        chunk_cpu[c] = timer.Seconds();
        std::lock_guard<std::mutex> lock(sync.mu);
        if (--sync.remaining == 0) sync.done.notify_all();
      });
    }
    {
      // Wait on our own latch rather than ThreadPool::Wait(): the pool is
      // shared, and Wait() would also wait on other callers' tasks.
      std::unique_lock<std::mutex> lock(sync.mu);
      sync.done.wait(lock, [&sync] { return sync.remaining == 0; });
    }
    if (sync.error) std::rethrow_exception(sync.error);

    out.pool_chunks = launched;
    for (size_t c = 0; c < launched; ++c) {
      out.offloaded_seconds += chunk_cpu[c];
    }
    for (size_t k = 0; k < count; ++k) {
      if (flags[k]) accepted->push_back(surv[k]);
    }
  }

  out.accepted = accepted->size() - before;
  if (stats != nullptr) stats->accepted += out.accepted;
  span.Arg("pairs", candidates.size());
  span.Arg("survivors", count);
  span.Arg("accepted", out.accepted);
  return out;
}

Verifier::BatchResult Verifier::VerifyMulti(
    const std::vector<VerifyPrecomp>& precomp, MultiQuery* queries,
    size_t count, ThreadPool* pool, size_t min_parallel,
    obs::Tracer* tracer) const {
  BatchResult out;
  if (count == 0) return out;
  if (count == 1) {
    Batch b;
    b.precomp = &precomp;
    b.candidates = queries[0].candidates;
    b.query = queries[0].query;
    b.tau = queries[0].tau;
    b.dilated = queries[0].dilated;
    b.ctx = queries[0].ctx;
    return VerifyBatch(b, pool, min_parallel, queries[0].accepted,
                       queries[0].stats, tracer);
  }
  obs::SpanGuard span(tracer, "verify.multi");
  DpScratch& scratch = DpScratch::ThreadLocal();

  // Pass 1, member by member: exactly the standalone filter scan — same
  // stride checkpoints, same prune/dp accounting order, same up-front DP
  // cell charge. Each member's survivors land contiguously (candidate-list
  // order) in the shared survivors lane; offs[m] delimits them. A member
  // that stops anywhere in its own pass contributes nothing downstream.
  std::vector<uint32_t>& survivors = scratch.Survivors();
  survivors.clear();
  std::vector<size_t> offs(count + 1, 0);
  size_t total_pairs = 0;
  constexpr size_t kFilterStride = 256;
  for (size_t m = 0; m < count; ++m) {
    offs[m] = survivors.size();
    MultiQuery& q = queries[m];
    QueryContext* const ctx = q.ctx;
    if (ctx != nullptr && ctx->stopped()) continue;
    const std::vector<uint32_t>& candidates = *q.candidates;
    if (q.stats != nullptr) q.stats->pairs += candidates.size();
    total_pairs += candidates.size();
    bool stopped_in_scan = false;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (ctx != nullptr && (i % kFilterStride) == 0 && i != 0 &&
          ctx->CheckPoint(kFilterStride)) {
        stopped_in_scan = true;
        break;
      }
      const uint32_t pos = candidates[i];
      if (PassesFilters(precomp[pos], *q.query, q.tau, q.stats, q.dilated)) {
        survivors.push_back(pos);
      }
    }
    if (stopped_in_scan) {
      survivors.resize(offs[m]);
      continue;
    }
    uint64_t member_dp_cells = 0;
    for (size_t r = offs[m]; r < survivors.size(); ++r) {
      member_dp_cells += static_cast<uint64_t>(precomp[survivors[r]].soa.size()) *
                         q.query->soa.size();
    }
    if (q.stats != nullptr) {
      q.stats->dp_computed += survivors.size() - offs[m];
      q.stats->dp_cells += member_dp_cells;
    }
    if (ctx != nullptr && (ctx->ChargeDpCells(member_dp_cells) ||
                           ctx->CheckScratchBytes(scratch.ByteSize()))) {
      survivors.resize(offs[m]);
      continue;
    }
  }
  offs[count] = survivors.size();
  const size_t total = survivors.size();

  // Pass 2: the merged DP work, swept candidate-major. Sorting the packed
  // (position << 32 | rank) keys groups every (candidate, query) pair that
  // shares a candidate trajectory, so its SoA lanes are scored against all
  // interested queries while hot. Accept bits are keyed by survivor rank,
  // and the per-member compaction below re-reads them in rank order — i.e.
  // in each member's own candidate order, matching the standalone path.
  if (total > 0) {
    std::vector<uint64_t>& pairs = scratch.Pairs();
    pairs.clear();
    pairs.reserve(total);
    for (size_t g = 0; g < total; ++g) {
      pairs.push_back((uint64_t{survivors[g]} << 32) | g);
    }
    std::sort(pairs.begin(), pairs.end());
    uint8_t* flags = scratch.Flags(total);
    const uint32_t* surv = survivors.data();
    auto member_of = [&offs](size_t g) -> size_t {
      return static_cast<size_t>(
          std::upper_bound(offs.begin(), offs.end(), g) - offs.begin() - 1);
    };

    struct ScratchCtxGuard {
      DpScratch* s;
      ~ScratchCtxGuard() { s->SetQueryContext(nullptr); }
    };
    const size_t min_par = std::max<size_t>(min_parallel, 2);
    if (pool == nullptr || pool->num_threads() < 2 || total < min_par) {
      ScratchCtxGuard guard{&scratch};
      for (const uint64_t key : pairs) {
        const size_t g = static_cast<size_t>(key & 0xffffffffu);
        const uint32_t pos = static_cast<uint32_t>(key >> 32);
        MultiQuery& q = queries[member_of(g)];
        if (q.ctx != nullptr && q.ctx->stopped()) {
          flags[g] = 0;
          continue;
        }
        scratch.SetQueryContext(q.ctx);
        flags[g] = distance_->WithinThreshold(precomp[pos].soa.view(),
                                              q.query->soa.view(), q.tau,
                                              &scratch)
                       ? 1
                       : 0;
      }
    } else {
      const uint64_t* pair_data = pairs.data();
      const size_t chunk_count = std::min(total, pool->num_threads() * 4);
      const size_t chunk_len = (total + chunk_count - 1) / chunk_count;
      double* chunk_cpu = scratch.Gap(chunk_count);

      struct Sync {
        std::mutex mu;
        std::condition_variable done;
        size_t remaining = 0;
        std::exception_ptr error;
      } sync;
      size_t launched = 0;
      for (size_t c = 0; c < chunk_count && c * chunk_len < total; ++c) {
        ++launched;
      }
      sync.remaining = launched;

      for (size_t c = 0; c < launched; ++c) {
        const size_t lo = c * chunk_len;
        const size_t hi = std::min(total, lo + chunk_len);
        pool->Submit([this, pair_data, flags, chunk_cpu, lo, hi, c, queries,
                      &member_of, &precomp, &sync] {
          CpuTimer timer;
          try {
            DpScratch& local = DpScratch::ThreadLocal();
            ScratchCtxGuard guard{&local};
            for (size_t k = lo; k < hi; ++k) {
              const uint64_t key = pair_data[k];
              const size_t g = static_cast<size_t>(key & 0xffffffffu);
              const uint32_t pos = static_cast<uint32_t>(key >> 32);
              MultiQuery& q = queries[member_of(g)];
              if (q.ctx != nullptr && q.ctx->stopped()) {
                // A stopped member's flags must not read as stale accepts;
                // the other members' pairs in this chunk keep running.
                flags[g] = 0;
                continue;
              }
              local.SetQueryContext(q.ctx);
              flags[g] = distance_->WithinThreshold(precomp[pos].soa.view(),
                                                    q.query->soa.view(), q.tau,
                                                    &local)
                             ? 1
                             : 0;
            }
          } catch (...) {
            std::lock_guard<std::mutex> lock(sync.mu);
            if (!sync.error) sync.error = std::current_exception();
          }
          chunk_cpu[c] = timer.Seconds();
          std::lock_guard<std::mutex> lock(sync.mu);
          if (--sync.remaining == 0) sync.done.notify_all();
        });
      }
      {
        std::unique_lock<std::mutex> lock(sync.mu);
        sync.done.wait(lock, [&sync] { return sync.remaining == 0; });
      }
      if (sync.error) std::rethrow_exception(sync.error);

      out.pool_chunks = launched;
      for (size_t c = 0; c < launched; ++c) {
        out.offloaded_seconds += chunk_cpu[c];
      }
    }

    for (size_t m = 0; m < count; ++m) {
      MultiQuery& q = queries[m];
      const size_t before = q.accepted->size();
      for (size_t g = offs[m]; g < offs[m + 1]; ++g) {
        if (flags[g]) q.accepted->push_back(surv[g]);
      }
      const size_t got = q.accepted->size() - before;
      if (q.stats != nullptr) q.stats->accepted += got;
      out.accepted += got;
    }
  }

  span.Arg("queries", count);
  span.Arg("pairs", total_pairs);
  span.Arg("survivors", total);
  span.Arg("accepted", out.accepted);
  return out;
}

}  // namespace dita
