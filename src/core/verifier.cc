#include "core/verifier.h"

namespace dita {

bool Verifier::Verify(const Trajectory& t, const VerifyPrecomp& tp,
                      const Trajectory& q, const VerifyPrecomp& qp, double tau,
                      VerifyStats* stats) const {
  if (stats != nullptr) ++stats->pairs;
  const PruneMode mode = distance_->prune_mode();
  // DTW and Frechet align every point of T within tau of some point of Q,
  // which is what the MBR/cell bounds encode. Edit distances may delete
  // points and ERP may match the gap point, so neither bound applies there.
  const bool geometric = distance_->type() == DistanceType::kDTW ||
                         distance_->type() == DistanceType::kFrechet;

  if (geometric && mbr_enabled_) {
    // Lemma 5.4: if similar, EMBR_{T,tau} covers MBR_Q and vice versa. Both
    // DTW and Frechet align every point of one trajectory to within tau of
    // a point of the other, so the lemma applies to both.
    if (!tp.mbr.Extended(tau).Covers(qp.mbr) ||
        !qp.mbr.Extended(tau).Covers(tp.mbr)) {
      if (stats != nullptr) ++stats->pruned_by_mbr;
      return false;
    }
  }

  if (geometric && cell_enabled_) {
    const bool is_max = mode == PruneMode::kMax;
    const double lb_tq = is_max ? CellLowerBoundFrechet(tp.cells, qp.cells)
                                : CellLowerBoundDtw(tp.cells, qp.cells, tau);
    if (lb_tq > tau) {
      if (stats != nullptr) ++stats->pruned_by_cell;
      return false;
    }
    const double lb_qt = is_max ? CellLowerBoundFrechet(qp.cells, tp.cells)
                                : CellLowerBoundDtw(qp.cells, tp.cells, tau);
    if (lb_qt > tau) {
      if (stats != nullptr) ++stats->pruned_by_cell;
      return false;
    }
  }

  if (stats != nullptr) ++stats->dp_computed;
  const bool within = distance_->WithinThreshold(t, q, tau);
  if (within && stats != nullptr) ++stats->accepted;
  return within;
}

}  // namespace dita
