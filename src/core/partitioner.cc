#include "core/partitioner.h"

#include <algorithm>
#include <numeric>

#include "index/str_tile.h"
#include "util/rng.h"

namespace dita {

Result<std::vector<std::vector<Trajectory>>> PartitionByFirstLast(
    const std::vector<Trajectory>& trajectories, size_t ng, ThreadPool* pool,
    double* offloaded_seconds) {
  if (ng == 0) return Status::InvalidArgument("ng must be positive");
  for (const Trajectory& t : trajectories) {
    if (t.empty()) return Status::InvalidArgument("empty trajectory");
  }
  std::vector<std::vector<Trajectory>> partitions;
  if (trajectories.empty()) return partitions;

  std::vector<uint32_t> all(trajectories.size());
  std::iota(all.begin(), all.end(), 0);
  auto by_first = [&](uint32_t i) { return trajectories[i].front(); };
  auto by_last = [&](uint32_t i) { return trajectories[i].back(); };

  for (auto& bucket :
       StrTile(std::move(all), by_first, ng, pool, offloaded_seconds)) {
    for (auto& sub :
         StrTile(std::move(bucket), by_last, ng, pool, offloaded_seconds)) {
      std::vector<Trajectory> part;
      part.reserve(sub.size());
      for (uint32_t i : sub) part.push_back(trajectories[i]);
      partitions.push_back(std::move(part));
    }
  }
  return partitions;
}

Result<std::vector<std::vector<Trajectory>>> PartitionRandomly(
    const std::vector<Trajectory>& trajectories, size_t num_partitions,
    uint64_t seed) {
  if (num_partitions == 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  for (const Trajectory& t : trajectories) {
    if (t.empty()) return Status::InvalidArgument("empty trajectory");
  }
  std::vector<uint32_t> order(trajectories.size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  std::shuffle(order.begin(), order.end(), rng.engine());

  const size_t used = std::min(num_partitions, std::max<size_t>(1, order.size()));
  std::vector<std::vector<Trajectory>> partitions(used);
  for (size_t i = 0; i < order.size(); ++i) {
    partitions[i % used].push_back(trajectories[order[i]]);
  }
  return partitions;
}

}  // namespace dita
