#ifndef DITA_CORE_ENGINE_H_
#define DITA_CORE_ENGINE_H_

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/admission.h"
#include "core/config.h"
#include "core/global_index.h"
#include "core/verifier.h"
#include "distance/distance.h"
#include "index/trie_index.h"
#include "obs/funnel.h"
#include "obs/lifecycle.h"
#include "util/thread_pool.h"
#include "workload/dataset.h"

namespace dita {

class DitaEngine;
class DitaService;

/// Statistics captured while building the index (Table 5 rows).
struct IndexStats {
  double build_seconds = 0.0;
  size_t num_partitions = 0;
  size_t num_trajectories = 0;
  size_t global_index_bytes = 0;
  size_t local_index_bytes = 0;
  /// Bytes held by the level-0 sketch tier (per-trajectory signatures plus
  /// per-partition aggregates; DESIGN.md §5g).
  size_t sketch_bytes = 0;
};

/// Per-query observability (Figs. 7-8, 17).
struct QueryStats {
  double makespan_seconds = 0.0;
  size_t partitions_probed = 0;
  size_t candidates = 0;
  VerifyStats verify;
  size_t results = 0;
  /// Fault handling this query triggered (retries, recoveries, backups).
  FaultStats faults;
  /// Survivors at each pruning level, table -> global index -> trie
  /// levels -> MBR coverage -> cell bound -> threshold DP. Monotonically
  /// non-increasing; the last level equals `results`.
  obs::FilterFunnel funnel;
  /// How the query ended. OK means it ran to completion; kCancelled /
  /// kDeadlineExceeded / kResourceExhausted mean the returned results are
  /// a *partial* answer — a correct subset of the full one — produced by
  /// graceful degradation under a QueryContext stop.
  Status termination;
  /// Fraction of the query's relevant population that was fully searched
  /// before it stopped; 1.0 for complete queries. (For kNN: fraction of
  /// the requested k that was found.)
  double completeness = 1.0;
  /// Wall-clock seconds spent queued at the engine's admission gate (0 when
  /// the gate is off). Reported even when the query was shed or abandoned
  /// its queue slot — see AdmissionGate::Admit.
  double admission_wait_seconds = 0.0;
};

/// Per-join observability (Figs. 9-11, 16).
struct JoinStats {
  double makespan_seconds = 0.0;
  double load_ratio = 1.0;
  uint64_t bytes_shipped = 0;
  size_t graph_edges = 0;
  size_t divided_partitions = 0;
  size_t candidate_pairs = 0;
  size_t result_pairs = 0;
  /// Verification-pipeline counters in pair units (mirrors
  /// QueryStats::verify; pairs == candidate_pairs, accepted ==
  /// result_pairs).
  VerifyStats verify;
  /// Fault handling this join triggered (retries, recoveries, backups).
  FaultStats faults;
  /// Survivors at each pruning level, in trajectory-pair units: |T| x |Q|
  /// -> partition graph -> ship relevance -> trie candidates -> MBR ->
  /// cell -> accepted. Monotonically non-increasing; ends at
  /// `result_pairs`.
  obs::FilterFunnel funnel;
  /// How the join ended (see QueryStats::termination): non-OK means the
  /// returned pairs are a correct subset of the full join result.
  Status termination;
  /// Fraction of the join's partition-pair edges whose probe completed;
  /// 1.0 for complete joins.
  double completeness = 1.0;
};

/// The kind of query a QueryRequest carries.
enum class QueryKind { kSearch, kJoin, kKnnSearch };

/// One query, in the unified request format every layer speaks: the engine
/// executes it (Execute), DitaService schedules it across concurrent
/// requests and runs it against an epoch snapshot, and the SQL/DataFrame
/// layer translates statements into it. The legacy Search / Join /
/// KnnSearch signatures are thin wrappers that build one of these.
struct QueryRequest {
  QueryKind kind = QueryKind::kSearch;

  /// The query trajectory (kSearch / kKnnSearch). Owned, so asynchronous
  /// executors (DitaService::Submit) need no external lifetime contract.
  Trajectory query;

  /// Similarity threshold tau (kSearch / kJoin).
  double tau = 0.0;

  /// Neighbor count (kKnnSearch) and optional expansion seed radius
  /// (0 picks a data-derived default).
  size_t k = 0;
  double initial_tau = 0.0;

  /// kJoin: the right-side table. Exactly one may be set; both null means
  /// self-join. The service-level pointer lets DitaService join two live
  /// tables delta-consistently; the engine-level pointer joins two static
  /// indexes.
  const DitaEngine* join_right = nullptr;
  const DitaService* join_right_service = nullptr;

  /// Scheduling class for DitaService's fair-share scheduler: 0 is the
  /// highest priority; higher values yield smaller shares.
  int priority = 1;

  /// Estimated cost in admission units for the gate / scheduler; 0 lets
  /// the engine estimate it from global-index statistics
  /// (EstimateQueryCost).
  uint64_t cost_hint = 0;

  /// Optional cooperative cancellation / deadline / budget token; see
  /// DitaEngine::Search.
  QueryContext* ctx = nullptr;

  /// When false the engine skips per-query stat/funnel collection and the
  /// trie keeps its stats-free hot path (the legacy wrappers set this from
  /// whether the caller passed a stats out-param).
  bool collect_stats = true;
};

/// The unified response: exactly one of the payload vectors is populated
/// (matching `kind`), alongside the corresponding stats block.
struct QueryResult {
  QueryKind kind = QueryKind::kSearch;

  /// kSearch: matching trajectory ids, ascending.
  std::vector<TrajectoryId> ids;
  /// kJoin: (left_id, right_id) pairs, sorted.
  std::vector<std::pair<TrajectoryId, TrajectoryId>> pairs;
  /// kKnnSearch: (id, distance) pairs sorted by distance.
  std::vector<std::pair<TrajectoryId, double>> neighbors;

  QueryStats search_stats;  // kSearch / kKnnSearch
  JoinStats join_stats;     // kJoin

  /// Serving-layer accounting, zeroed when the query ran on a bare engine.
  struct ServingInfo {
    /// Base-index generation the query's pinned snapshot belonged to.
    uint64_t epoch = 0;
    /// Snapshot version (bumped by every ingest op and merge publish).
    uint64_t version = 0;
    /// Delta-buffer trajectories linearly scanned / accepted.
    size_t delta_scanned = 0;
    size_t delta_matches = 0;
    /// Base-index answers dropped because their id was deleted.
    size_t deleted_filtered = 0;
    /// Funnel over the delta scan: buffer -> MBR -> cell -> threshold DP
    /// (search only; monotone, ends at delta_matches).
    obs::FilterFunnel delta_funnel;
    /// Timestamped phase breakdown of the request's life inside
    /// DitaService (queue -> admission -> cache -> pin -> base -> delta ->
    /// finalize); phases telescope to lifecycle.total_seconds. Zeroed on a
    /// bare engine.
    obs::RequestRecord lifecycle;
  } serving;
};

/// The DITA engine: one indexed trajectory table living on a (simulated)
/// cluster. Mirrors the system of §3-§6: STR first/last partitioning, global
/// R-tree index on the driver, per-partition trie local indexes co-located
/// with the data, filter-verification search, and cost-model-driven
/// distributed join.
class DitaEngine {
 public:
  // Legacy nested aliases; the structs now live at namespace scope so the
  // unified QueryRequest / QueryResult can carry them.
  using IndexStats = dita::IndexStats;
  using QueryStats = dita::QueryStats;
  using JoinStats = dita::JoinStats;

  DitaEngine(std::shared_ptr<Cluster> cluster, const DitaConfig& config);

  /// Partitions `data`, builds the global index and each partition's local
  /// trie (charged to the owning workers), and precomputes verification
  /// summaries. Requires every trajectory to have at least 2 points.
  Status BuildIndex(const Dataset& data);

  bool indexed() const { return indexed_; }
  const IndexStats& index_stats() const { return index_stats_; }
  const DitaConfig& config() const { return config_; }
  const Cluster& cluster() const { return *cluster_; }

  /// The single query entry point: validates, admits (cost-aware when the
  /// gate has a cost budget), and dispatches on `req.kind`. All public
  /// query methods below are exact aliases over this.
  Result<QueryResult> Execute(const QueryRequest& req) const;

  /// Executes a group of requests, running compatible threshold searches as
  /// one batched pass through the filter pipeline (DESIGN.md §5f): each
  /// relevant partition is probed once per batch with
  /// TrieIndex::CollectCandidatesBatch + Verifier::VerifyMulti instead of
  /// once per query. Results are positional (results[i] answers reqs[i])
  /// and per query bit-identical to Execute — including funnel, verify, and
  /// trie counters; only makespan-style timings reflect the shared stage.
  /// Non-search requests (and searches that fail validation) fall back to
  /// individual Execute calls. The batch is admitted as one ticket whose
  /// cost is the members' summed estimate. A member whose QueryContext
  /// stops mid-batch degrades alone, exactly as it would standalone; the
  /// other members' answers are unaffected.
  std::vector<Result<QueryResult>> ExecuteBatch(
      std::span<const QueryRequest> reqs) const;
  std::vector<Result<QueryResult>> ExecuteBatch(
      const std::vector<QueryRequest>& reqs) const {
    return ExecuteBatch(std::span<const QueryRequest>(reqs));
  }

  /// Estimated cost of `req` in admission units (relevant-partition probes
  /// for searches, partition-pair upper bound for joins; always >= 1).
  /// Drives the admission gate's cost budget and DitaService's fair-share
  /// slot allocation when QueryRequest::cost_hint is 0.
  uint64_t EstimateQueryCost(const QueryRequest& req) const;

  /// Threshold similarity search (Definition 2.4, §5): all trajectory ids T
  /// with f(T, q) <= tau. Cost is charged to the shared cluster; per-query
  /// latency lands in `stats` if provided.
  ///
  /// With `ctx` non-null the query runs under that context's cancellation
  /// token, deadlines, and resource budgets. A query stopped mid-flight
  /// degrades gracefully: the call still returns OK with the subset of the
  /// answer produced by the partitions that completed, and tags
  /// `stats->termination` / `stats->completeness` accordingly. Errors
  /// unrelated to the stop (lost workers, invalid input) propagate as
  /// before.
  Result<std::vector<TrajectoryId>> Search(const Trajectory& q, double tau,
                                           QueryStats* stats = nullptr,
                                           QueryContext* ctx = nullptr) const;

  /// Threshold similarity join against `right` (Definition 2.5, §6):
  /// returns (left_id, right_id) pairs with f(T, Q) <= tau. `right` may be
  /// this engine itself (self-join). Both engines must share the cluster.
  /// `ctx` behaves as in Search: a stopped join returns the pairs from the
  /// edges that completed (a subset of the full join).
  Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> Join(
      const DitaEngine& right, double tau, JoinStats* stats = nullptr,
      QueryContext* ctx = nullptr) const;

  /// kNN similarity search (the paper's §8 future work): the k trajectories
  /// closest to `q` under the engine's distance, as (id, distance) pairs
  /// sorted by distance. Implemented by iterative threshold expansion over
  /// the threshold search machinery: double tau until at least k verified
  /// answers exist, then rank candidates by exact distance. Exact for
  /// kAccumulate/kMax distances; `initial_tau` seeds the expansion (0 picks
  /// a data-derived default). `ctx` behaves as in Search; a stopped kNN
  /// query returns the last fully-completed expansion round's answers
  /// (each one a true member of the kNN set), possibly fewer than k.
  Result<std::vector<std::pair<TrajectoryId, double>>> KnnSearch(
      const Trajectory& q, size_t k, double initial_tau = 0.0,
      QueryStats* stats = nullptr, QueryContext* ctx = nullptr) const;

  /// One kNN-join result row: a left trajectory and one of its k nearest
  /// right trajectories.
  struct KnnJoinRow {
    TrajectoryId left = -1;
    TrajectoryId right = -1;
    double distance = 0.0;

    friend bool operator==(const KnnJoinRow&, const KnnJoinRow&) = default;
  };

  /// kNN similarity join (§8 future work): for every trajectory of this
  /// table, its k nearest trajectories in `right`, via per-trajectory
  /// threshold expansion against the right table's index. Rows are grouped
  /// by left id (ascending), each group sorted by distance.
  Result<std::vector<KnnJoinRow>> KnnJoin(const DitaEngine& right,
                                          size_t k) const;

 private:
  friend class JoinPlanner;
  friend class DitaService;

  /// One data partition: clustered trie index plus verification precomp.
  struct Partition {
    size_t home_worker = 0;
    TrieIndex trie;
    std::vector<VerifyPrecomp> precomp;  // parallel to trie.trajectories()
    size_t data_bytes = 0;
    /// Aggregate sketch over the members: OR of cell bits, component-wise
    /// minhash minima. A query whose dilated signature misses these bits
    /// cannot match anything in the partition (DESIGN.md §5g).
    TrajSignature sketch_agg;
  };

  /// One (partition, query) slot of a search stage. Each task writes only
  /// its own slots, so a query cut short can merge exactly the slots that
  /// ran to completion — partial results are a well-defined subset, not a
  /// torn merge.
  struct SearchLocalOut {
    std::vector<TrajectoryId> ids;
    size_t candidates = 0;
    VerifyStats vstats;
    TrieIndex::ProbeStats pstats;
    /// Set at the end of the task body; false when the task was cut short
    /// mid-filter (its partial output must be discarded).
    bool complete = false;
  };

  /// Merges one query's surviving per-partition slots (`slots` parallel to
  /// `relevant`; null entries were dropped or incomplete), folds the
  /// aggregated counters into the metrics registry, fills `stats`
  /// (termination, completeness, filter funnel) when requested, and returns
  /// the sorted result ids. Shared verbatim by the single-query and batched
  /// search paths so their per-query accounting cannot drift apart.
  /// `sketch_pruned_population` is the trajectory count of the relevant
  /// partitions the level-0 sketch pruned before probing; those partitions
  /// were proven empty of matches, so they count as merged for completeness
  /// and the funnel's "sketch partitions" level subtracts them.
  std::vector<TrajectoryId> MergeSearch(
      const std::vector<uint32_t>& relevant,
      const std::vector<const SearchLocalOut*>& slots, QueryStats* stats,
      QueryContext* ctx, const Cluster::CostSnapshot& snap,
      size_t* total_candidates_out,
      uint64_t sketch_pruned_population = 0) const;

  /// The un-gated query bodies; Execute admits once, then dispatches here.
  Result<std::vector<TrajectoryId>> SearchImpl(const Trajectory& q, double tau,
                                               QueryStats* stats,
                                               QueryContext* ctx) const;

  /// The batched search body: `members` indexes the kSearch requests of
  /// `reqs` that passed validation; answers land in the matching positions
  /// of `out`.
  void SearchBatchImpl(std::span<const QueryRequest> reqs,
                       const std::vector<size_t>& members,
                       std::vector<Result<QueryResult>>* out) const;
  Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> JoinImpl(
      const DitaEngine& right, double tau, JoinStats* stats,
      QueryContext* ctx) const;
  Result<std::vector<std::pair<TrajectoryId, double>>> KnnSearchImpl(
      const Trajectory& q, size_t k, double initial_tau, QueryStats* stats,
      QueryContext* ctx) const;

  TrieIndex::SearchSpec MakeSpec(const Trajectory& q, double tau) const;

  /// Stage options carrying the engine's configured deadline and the
  /// query's stop token (may be null).
  StageOptions StageOpts(std::string name, QueryContext* ctx = nullptr) const {
    return StageOptions{std::move(name),
                        config_.serving.stage_deadline_seconds, ctx};
  }

  /// True when a stage status should degrade into a partial OK result:
  /// the query's own context stopped and the stage failed for that reason
  /// (or not at all). Unrelated errors (lost workers, invalid input) never
  /// degrade.
  static bool ShouldDegrade(const QueryContext* ctx, const Status& stage);

  /// Acquires an admission ticket when the gate is enabled; on shed or
  /// queue-abandon the returned status is the caller's answer. `cost` is
  /// the query's estimated admission cost. Sheds are counted both globally
  /// and per query kind; `waited_seconds` (optional) receives the gate
  /// queue wait on every exit path, shed included.
  Status AdmitQuery(QueryKind kind, QueryContext* ctx, uint64_t cost,
                    AdmissionGate::Ticket* ticket,
                    double* waited_seconds = nullptr) const;

  /// Per-trajectory global relevance test against a partition summary —
  /// the "has candidates in Qj" check of §6.2's trans estimation.
  bool TrajectoryRelevantTo(const Trajectory& t,
                            const GlobalIndex::PartitionSummary& s,
                            double tau) const;

  /// Local filter+verify of `q` against partition `p`; appends matching
  /// trajectory ids. Returns the number of candidates that reached
  /// verification. `pstats` (optional) tallies the trie traversal for the
  /// filter funnel.
  size_t LocalSearch(const Partition& p, const Trajectory& q,
                     const VerifyPrecomp& qp, double tau,
                     std::vector<TrajectoryId>* results, VerifyStats* vstats,
                     TrieIndex::ProbeStats* pstats = nullptr,
                     QueryContext* ctx = nullptr,
                     const SigBits* dilated = nullptr) const;

  /// True when the level-0 sketch tier applies to this engine's queries:
  /// the toggle is on, the grid was built, and the metric is geometric
  /// (DTW / Frechet — edit distances bypass the sketch like the other
  /// geometric filters).
  bool SketchActive() const;

  /// Builds the query-side sketch for `q` at radius `tau`: the dilated bit
  /// set the per-candidate subset test and the partition-aggregate
  /// intersect test run against. Only called when SketchActive().
  SigBits DilatedQuerySig(const Trajectory& q, double tau) const;

  /// Folds one operation's aggregated filter/verify counters into the
  /// metrics registry (no-op when metrics are disabled). Cold path: called
  /// once per query/join, after the stage completes.
  void RecordFilterMetrics(size_t partitions_relevant,
                           const TrieIndex::ProbeStats& pstats,
                           const VerifyStats& vstats) const;

  std::shared_ptr<Cluster> cluster_;
  DitaConfig config_;
  std::shared_ptr<TrajectoryDistance> distance_;
  std::unique_ptr<Verifier> verifier_;
  /// Engine-local pool for intra-task parallel verification (see
  /// DitaConfig::VerifyOptions::threads); null when verification is serial.
  std::unique_ptr<ThreadPool> verify_pool_;
  /// Engine-local pool for parallel index construction (see
  /// DitaConfig::BuildOptions::threads); null when builds are serial.
  /// Helper CPU is charged back to the owning cluster task / the driver
  /// ledger, so simulated makespans match a serial build.
  std::unique_ptr<ThreadPool> build_pool_;
  GlobalIndex global_;
  std::vector<Partition> partitions_;
  IndexStats index_stats_;
  bool indexed_ = false;
  /// Quantization frame of the level-0 sketch tier: fixed at BuildIndex
  /// time over the table's data MBR. Invalid (all-zero) until then, and
  /// whenever the data region is degenerate.
  SigGrid sig_grid_;
  /// Admission gate (null when ServingOptions::max_inflight_queries == 0).
  /// Mutable: taking a ticket is bookkeeping, not an engine mutation.
  mutable std::unique_ptr<AdmissionGate> gate_;

 public:
  /// Gate counters for tests / dashboards; null when the gate is disabled.
  const AdmissionGate* admission_gate() const { return gate_.get(); }

  /// The sketch tier's quantization frame (invalid before BuildIndex).
  const SigGrid& sig_grid() const { return sig_grid_; }

  /// Releases the grow-once trie/verify scratch arenas of the engine's own
  /// pool threads and the calling thread. Idempotent; called by the
  /// destructor so engine teardown returns scratch memory instead of
  /// leaving it parked on pool threads.
  void ReleaseThreadScratch();

  ~DitaEngine();

 private:

  /// Owned by the cluster (shared across engines on it); null when the
  /// corresponding DitaConfig toggle is off and nobody else enabled it.
  obs::Tracer* tracer_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  /// Cached null-safe handles: disabled metrics cost one branch per update.
  obs::CounterHandle m_partitions_relevant_;
  obs::CounterHandle m_sketch_partitions_pruned_;
  obs::CounterHandle m_sketch_candidates_pruned_;
  obs::CounterHandle m_trie_nodes_visited_;
  obs::CounterHandle m_trie_nodes_pruned_;
  obs::CounterHandle m_trie_candidates_;
  obs::CounterHandle m_verify_pairs_;
  obs::CounterHandle m_verify_pruned_mbr_;
  obs::CounterHandle m_verify_pruned_cell_;
  obs::CounterHandle m_verify_dp_computed_;
  obs::CounterHandle m_verify_dp_cells_;
  obs::CounterHandle m_verify_accepted_;
  obs::HistogramHandle h_query_candidates_;
  obs::HistogramHandle h_batch_survivors_;
  obs::CounterHandle m_query_admitted_;
  obs::CounterHandle m_query_shed_;
  /// Per-kind shed breakdown (query.shed.{search,join,knn}); the global
  /// query.shed counter stays the sum.
  obs::CounterHandle m_query_shed_search_;
  obs::CounterHandle m_query_shed_join_;
  obs::CounterHandle m_query_shed_knn_;
  obs::CounterHandle m_query_degraded_;
  obs::HistogramHandle h_admission_wait_;
};

}  // namespace dita

#endif  // DITA_CORE_ENGINE_H_
