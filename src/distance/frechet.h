#ifndef DITA_DISTANCE_FRECHET_H_
#define DITA_DISTANCE_FRECHET_H_

#include "distance/distance.h"

namespace dita {

/// Discrete Frechet distance (Definition A.1) — the metric similarity
/// function DITA supports. The recurrence mirrors DTW's with (max, min)
/// replacing (+, min).
class Frechet : public TrajectoryDistance {
 public:
  using TrajectoryDistance::Compute;
  using TrajectoryDistance::WithinThreshold;

  DistanceType type() const override { return DistanceType::kFrechet; }
  std::string name() const override { return "Frechet"; }
  bool is_metric() const override { return true; }
  PruneMode prune_mode() const override { return PruneMode::kMax; }

  double Compute(const TrajView& t, const TrajView& q,
                 DpScratch* scratch) const override;
  bool WithinThreshold(const TrajView& t, const TrajView& q, double tau,
                       DpScratch* scratch) const override;
};

}  // namespace dita

#endif  // DITA_DISTANCE_FRECHET_H_
