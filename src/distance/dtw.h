#ifndef DITA_DISTANCE_DTW_H_
#define DITA_DISTANCE_DTW_H_

#include "distance/distance.h"

namespace dita {

/// Dynamic Time Warping (Definition 2.2), the paper's default distance.
/// WithinThreshold runs the double-direction, early-abandoning dynamic
/// program of §5.3.3: forward DP over the first half of T, backward DP over
/// the second half, then an exact join across the split row; each direction
/// abandons as soon as its frontier minimum exceeds tau.
class Dtw : public TrajectoryDistance {
 public:
  DistanceType type() const override { return DistanceType::kDTW; }
  std::string name() const override { return "DTW"; }
  bool is_metric() const override { return false; }
  PruneMode prune_mode() const override { return PruneMode::kAccumulate; }

  double Compute(const Trajectory& t, const Trajectory& q) const override;
  bool WithinThreshold(const Trajectory& t, const Trajectory& q,
                       double tau) const override;

  /// Accumulated minimum distance AMD (Lemma 4.1): an O(mn) lower bound on
  /// DTW. Exposed for tests and ablations.
  static double AccumulatedMinDistance(const Trajectory& t, const Trajectory& q);
};

}  // namespace dita

#endif  // DITA_DISTANCE_DTW_H_
