#ifndef DITA_DISTANCE_DTW_H_
#define DITA_DISTANCE_DTW_H_

#include "distance/distance.h"

namespace dita {

/// Dynamic Time Warping (Definition 2.2), the paper's default distance.
/// WithinThreshold runs a threshold-aware dynamic program (§5.3.3): the
/// double-direction anchor bound rejects cheaply, then a single forward pass
/// keeps only the per-row window of columns that can still lie on a path of
/// cost <= tau (every continuation must pay the last anchor distance).
class Dtw : public TrajectoryDistance {
 public:
  using TrajectoryDistance::Compute;
  using TrajectoryDistance::WithinThreshold;

  DistanceType type() const override { return DistanceType::kDTW; }
  std::string name() const override { return "DTW"; }
  bool is_metric() const override { return false; }
  PruneMode prune_mode() const override { return PruneMode::kAccumulate; }

  double Compute(const TrajView& t, const TrajView& q,
                 DpScratch* scratch) const override;
  bool WithinThreshold(const TrajView& t, const TrajView& q, double tau,
                       DpScratch* scratch) const override;

  /// Accumulated minimum distance AMD (Lemma 4.1): an O(mn) lower bound on
  /// DTW. Exposed for tests and ablations.
  static double AccumulatedMinDistance(const Trajectory& t, const Trajectory& q);
};

}  // namespace dita

#endif  // DITA_DISTANCE_DTW_H_
