#include "distance/dp_scratch.h"

namespace dita {

DpScratch& DpScratch::ThreadLocal() {
  thread_local DpScratch scratch;
  return scratch;
}

}  // namespace dita
