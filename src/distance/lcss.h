#ifndef DITA_DISTANCE_LCSS_H_
#define DITA_DISTANCE_LCSS_H_

#include "distance/distance.h"

namespace dita {

/// Longest Common SubSequence distance (Definition A.3). Two points match
/// when their distance is within epsilon and their indices differ by at most
/// delta. We report the distance form
///     LCSS_dist(T, Q) = min(m, n) - lcss(T, Q)
/// which matches the paper's worked example (T1, T3, delta=1, epsilon=1 -> 2):
/// the number of points of the shorter trajectory left unmatched.
class Lcss : public TrajectoryDistance {
 public:
  Lcss(double epsilon, int delta) : epsilon_(epsilon), delta_(delta) {}

  using TrajectoryDistance::Compute;
  using TrajectoryDistance::WithinThreshold;

  DistanceType type() const override { return DistanceType::kLCSS; }
  std::string name() const override { return "LCSS"; }
  bool is_metric() const override { return false; }
  PruneMode prune_mode() const override { return PruneMode::kEditCount; }
  double matching_epsilon() const override { return epsilon_; }

  double Compute(const TrajView& t, const TrajView& q,
                 DpScratch* scratch) const override;
  bool WithinThreshold(const TrajView& t, const TrajView& q, double tau,
                       DpScratch* scratch) const override;

  /// The raw similarity (number of matched point pairs); exposed for tests.
  size_t Similarity(const Trajectory& t, const Trajectory& q) const;

  int delta() const { return delta_; }

 private:
  double epsilon_;
  int delta_;
};

}  // namespace dita

#endif  // DITA_DISTANCE_LCSS_H_
