#ifndef DITA_DISTANCE_ERP_H_
#define DITA_DISTANCE_ERP_H_

#include "distance/distance.h"

namespace dita {

/// Edit distance with Real Penalty (Chen & Ng, VLDB'04; cited as [9]).
/// Matching a pair costs their distance; a gap costs the distance to a fixed
/// reference point g. ERP is a metric and accumulates like DTW, so it shares
/// the kAccumulate prune mode.
class Erp : public TrajectoryDistance {
 public:
  explicit Erp(const Point& gap) : gap_(gap) {}

  using TrajectoryDistance::Compute;
  using TrajectoryDistance::WithinThreshold;

  DistanceType type() const override { return DistanceType::kERP; }
  std::string name() const override { return "ERP"; }
  bool is_metric() const override { return true; }
  PruneMode prune_mode() const override { return PruneMode::kAccumulate; }

  double Compute(const TrajView& t, const TrajView& q,
                 DpScratch* scratch) const override;
  bool WithinThreshold(const TrajView& t, const TrajView& q, double tau,
                       DpScratch* scratch) const override;

 private:
  Point gap_;
};

}  // namespace dita

#endif  // DITA_DISTANCE_ERP_H_
