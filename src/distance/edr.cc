#include "distance/edr.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

namespace dita {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double Edr::Compute(const Trajectory& t, const Trajectory& q) const {
  const auto& a = t.points();
  const auto& b = q.points();
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0) return static_cast<double>(n);
  if (n == 0) return static_cast<double>(m);

  // row[j] = EDR(prefix of T, first j points of Q).
  std::vector<double> row(n + 1);
  for (size_t j = 0; j <= n; ++j) row[j] = static_cast<double>(j);
  for (size_t i = 1; i <= m; ++i) {
    double diag = row[0];
    row[0] = static_cast<double>(i);
    for (size_t j = 1; j <= n; ++j) {
      const double up = row[j];
      const double subcost =
          PointDistance(a[i - 1], b[j - 1]) <= epsilon_ ? 0.0 : 1.0;
      row[j] = std::min({diag + subcost, up + 1.0, row[j - 1] + 1.0});
      diag = up;
    }
  }
  return row[n];
}

bool Edr::WithinThreshold(const Trajectory& t, const Trajectory& q,
                          double tau) const {
  const auto& a = t.points();
  const auto& b = q.points();
  const long m = static_cast<long>(a.size());
  const long n = static_cast<long>(b.size());
  if (std::abs(m - n) > tau) return false;  // length filter (Appendix A)
  if (m == 0 || n == 0) return true;        // |m - n| <= tau already

  // Banded DP: a cell (i, j) with |i - j| > band needs more than tau
  // insert/delete operations, so it cannot be on a path of cost <= tau.
  const long band = static_cast<long>(std::floor(tau));
  std::vector<double> row(static_cast<size_t>(n) + 1, kInf);
  std::vector<double> prev(static_cast<size_t>(n) + 1, kInf);
  for (long j = 0; j <= std::min(n, band); ++j) prev[j] = static_cast<double>(j);
  for (long i = 1; i <= m; ++i) {
    std::fill(row.begin(), row.end(), kInf);
    const long j_lo = std::max(1L, i - band);
    const long j_hi = std::min(n, i + band);
    if (i <= band) row[0] = static_cast<double>(i);
    double row_min = row[0];
    for (long j = j_lo; j <= j_hi; ++j) {
      const double subcost =
          PointDistance(a[i - 1], b[j - 1]) <= epsilon_ ? 0.0 : 1.0;
      row[j] = std::min({prev[j - 1] + subcost, prev[j] + 1.0, row[j - 1] + 1.0});
      row_min = std::min(row_min, row[j]);
    }
    if (row_min > tau) return false;
    std::swap(row, prev);
  }
  return prev[n] <= tau;
}

}  // namespace dita
