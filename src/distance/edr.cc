#include "distance/edr.h"

#include "distance/kernels.h"

namespace dita {

double Edr::Compute(const TrajView& t, const TrajView& q,
                    DpScratch* scratch) const {
  return kernels::EdrCompute(t, q, epsilon_, *scratch);
}

bool Edr::WithinThreshold(const TrajView& t, const TrajView& q, double tau,
                          DpScratch* scratch) const {
  return kernels::EdrWithin(t, q, epsilon_, tau, *scratch);
}

}  // namespace dita
