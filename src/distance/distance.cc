#include "distance/distance.h"

#include "distance/dtw.h"
#include "distance/edr.h"
#include "distance/erp.h"
#include "distance/frechet.h"
#include "distance/lcss.h"
#include "util/string_util.h"

namespace dita {

double TrajectoryDistance::Compute(const Trajectory& t,
                                   const Trajectory& q) const {
  DpScratch& scratch = DpScratch::ThreadLocal();
  const TrajView tv = scratch.ExtractA(t);
  const TrajView qv = scratch.ExtractB(q);
  return Compute(tv, qv, &scratch);
}

bool TrajectoryDistance::WithinThreshold(const Trajectory& t,
                                         const Trajectory& q,
                                         double tau) const {
  DpScratch& scratch = DpScratch::ThreadLocal();
  const TrajView tv = scratch.ExtractA(t);
  const TrajView qv = scratch.ExtractB(q);
  return WithinThreshold(tv, qv, tau, &scratch);
}

bool TrajectoryDistance::WithinThreshold(const TrajView& t, const TrajView& q,
                                         double tau,
                                         DpScratch* scratch) const {
  return Compute(t, q, scratch) <= tau;
}

Result<std::shared_ptr<TrajectoryDistance>> MakeDistance(
    DistanceType type, const DistanceParams& params) {
  switch (type) {
    case DistanceType::kDTW:
      return std::shared_ptr<TrajectoryDistance>(std::make_shared<Dtw>());
    case DistanceType::kFrechet:
      return std::shared_ptr<TrajectoryDistance>(std::make_shared<Frechet>());
    case DistanceType::kEDR:
      if (params.epsilon < 0) {
        return Status::InvalidArgument("EDR epsilon must be non-negative");
      }
      return std::shared_ptr<TrajectoryDistance>(
          std::make_shared<Edr>(params.epsilon));
    case DistanceType::kLCSS:
      if (params.epsilon < 0 || params.delta < 0) {
        return Status::InvalidArgument(
            "LCSS epsilon and delta must be non-negative");
      }
      return std::shared_ptr<TrajectoryDistance>(
          std::make_shared<Lcss>(params.epsilon, params.delta));
    case DistanceType::kERP:
      return std::shared_ptr<TrajectoryDistance>(
          std::make_shared<Erp>(params.erp_gap));
  }
  return Status::InvalidArgument("unknown distance type");
}

Result<DistanceType> ParseDistanceType(const std::string& name) {
  const std::string upper = StrToUpper(name);
  if (upper == "DTW") return DistanceType::kDTW;
  if (upper == "FRECHET") return DistanceType::kFrechet;
  if (upper == "EDR") return DistanceType::kEDR;
  if (upper == "LCSS") return DistanceType::kLCSS;
  if (upper == "ERP") return DistanceType::kERP;
  return Status::InvalidArgument("unknown distance function: " + name);
}

const char* DistanceTypeName(DistanceType type) {
  switch (type) {
    case DistanceType::kDTW:
      return "DTW";
    case DistanceType::kFrechet:
      return "Frechet";
    case DistanceType::kEDR:
      return "EDR";
    case DistanceType::kLCSS:
      return "LCSS";
    case DistanceType::kERP:
      return "ERP";
  }
  return "Unknown";
}

}  // namespace dita
