#include "distance/dtw.h"

#include <algorithm>
#include <limits>
#include <vector>

#include "util/logging.h"

namespace dita {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

double Dtw::Compute(const Trajectory& t, const Trajectory& q) const {
  const auto& a = t.points();
  const auto& b = q.points();
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0 || n == 0) return m == n ? 0.0 : kInf;

  // Rolling single-row DP: row[j] = DTW(T^i, Q^j).
  std::vector<double> row(n);
  row[0] = PointDistance(a[0], b[0]);
  for (size_t j = 1; j < n; ++j) row[j] = row[j - 1] + PointDistance(a[0], b[j]);
  for (size_t i = 1; i < m; ++i) {
    double diag = row[0];  // DTW(T^{i-1}, Q^1)
    row[0] += PointDistance(a[i], b[0]);
    for (size_t j = 1; j < n; ++j) {
      const double up = row[j];  // DTW(T^{i-1}, Q^{j})
      row[j] = PointDistance(a[i], b[j]) + std::min({diag, up, row[j - 1]});
      diag = up;
    }
  }
  return row[n - 1];
}

bool Dtw::WithinThreshold(const Trajectory& t, const Trajectory& q,
                          double tau) const {
  const auto& a = t.points();
  const auto& b = q.points();
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0 || n == 0) return m == n && 0.0 <= tau;

  // Double-direction anchor bound: every warping path includes dist(t1, q1)
  // and dist(tm, qn) (Definition 2.2), so their sum already lower-bounds DTW
  // unless the trajectories are single points.
  const double anchors = PointDistance(a[0], b[0]) +
                         PointDistance(a[m - 1], b[n - 1]);
  if (m > 1 || n > 1) {
    if (anchors > tau) return false;
  } else if (PointDistance(a[0], b[0]) > tau) {
    return false;
  }
  if (m == 1 || n == 1) return Compute(t, q) <= tau;

  // Forward DP over rows [0, split]; backward DP over rows [split+1, m-1].
  // Any warping path crosses from row `split` to row `split+1` by a step
  // (split, j) -> (split+1, j') with j' in {j, j+1}, so
  //   DTW = min_j min(F[j] + B[j], F[j] + B[j+1]).
  const size_t split = (m - 1) / 2;

  std::vector<double> fwd(n);
  fwd[0] = PointDistance(a[0], b[0]);
  for (size_t j = 1; j < n; ++j) fwd[j] = fwd[j - 1] + PointDistance(a[0], b[j]);
  for (size_t i = 1; i <= split; ++i) {
    double diag = fwd[0];
    fwd[0] += PointDistance(a[i], b[0]);
    double row_min = fwd[0];
    for (size_t j = 1; j < n; ++j) {
      const double up = fwd[j];
      fwd[j] = PointDistance(a[i], b[j]) + std::min({diag, up, fwd[j - 1]});
      diag = up;
      row_min = std::min(row_min, fwd[j]);
    }
    // Every remaining path still has to pay dist(tm, qn); fold it into the
    // abandon test to tighten the bound.
    if (row_min + PointDistance(a[m - 1], b[n - 1]) > tau) return false;
  }

  // Backward DP: bwd[j] = min cost of a path from (i, j) to (m-1, n-1).
  std::vector<double> bwd(n);
  bwd[n - 1] = PointDistance(a[m - 1], b[n - 1]);
  for (size_t jj = n - 1; jj-- > 0;) {
    bwd[jj] = bwd[jj + 1] + PointDistance(a[m - 1], b[jj]);
  }
  for (size_t i = m - 1; i-- > split + 1;) {
    double diag = bwd[n - 1];  // value at (i+1, j+1) before overwrite
    bwd[n - 1] += PointDistance(a[i], b[n - 1]);
    double row_min = bwd[n - 1];
    for (size_t jj = n - 1; jj-- > 0;) {
      const double down = bwd[jj];  // (i+1, j)
      bwd[jj] = PointDistance(a[i], b[jj]) + std::min({diag, down, bwd[jj + 1]});
      diag = down;
      row_min = std::min(row_min, bwd[jj]);
    }
    if (row_min + PointDistance(a[0], b[0]) > tau) return false;
  }

  double best = kInf;
  for (size_t j = 0; j < n; ++j) {
    best = std::min(best, fwd[j] + bwd[j]);
    if (j + 1 < n) best = std::min(best, fwd[j] + bwd[j + 1]);
  }
  return best <= tau;
}

double Dtw::AccumulatedMinDistance(const Trajectory& t, const Trajectory& q) {
  const auto& a = t.points();
  const auto& b = q.points();
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0 || n == 0) return m == n ? 0.0 : kInf;
  double amd = PointDistance(a[0], b[0]) + PointDistance(a[m - 1], b[n - 1]);
  if (m == 1 && n == 1) return PointDistance(a[0], b[0]);
  for (size_t i = 1; i + 1 < m; ++i) {
    double min_d = kInf;
    for (size_t j = 0; j < n; ++j) {
      min_d = std::min(min_d, PointDistance(a[i], b[j]));
    }
    amd += min_d;
  }
  return amd;
}

}  // namespace dita
