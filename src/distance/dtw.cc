#include "distance/dtw.h"

#include "distance/kernels.h"

namespace dita {

double Dtw::Compute(const TrajView& t, const TrajView& q,
                    DpScratch* scratch) const {
  return kernels::DtwCompute(t, q, *scratch);
}

bool Dtw::WithinThreshold(const TrajView& t, const TrajView& q, double tau,
                          DpScratch* scratch) const {
  return kernels::DtwWithin(t, q, tau, *scratch);
}

double Dtw::AccumulatedMinDistance(const Trajectory& t, const Trajectory& q) {
  DpScratch& scratch = DpScratch::ThreadLocal();
  const TrajView tv = scratch.ExtractA(t);
  const TrajView qv = scratch.ExtractB(q);
  return kernels::DtwAmd(tv, qv);
}

}  // namespace dita
