#ifndef DITA_DISTANCE_DP_SCRATCH_H_
#define DITA_DISTANCE_DP_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/soa.h"
#include "util/query_context.h"

namespace dita {

/// Reusable dynamic-programming scratch space for the distance kernels and
/// batch verification. One instance lives per thread (ThreadLocal()); all
/// lanes grow monotonically and are never shrunk, so once a thread has seen
/// the largest trajectory it will verify, kernel calls perform zero heap
/// allocations. reallocations() counts actual capacity growths so tests can
/// assert steady-state allocation freedom.
///
/// Lanes are distinct by role; a kernel may use RowA/RowB/Dist/Gap
/// simultaneously, and batch verification uses the candidate/survivor/flag
/// lanes while kernels run on the row lanes, so none of these alias.
class DpScratch {
 public:
  static DpScratch& ThreadLocal();

  /// DP row lanes (double). Rolling rows for the five distance DPs.
  double* RowA(size_t n) { return Ensure(&row_a_, n); }
  double* RowB(size_t n) { return Ensure(&row_b_, n); }
  /// Per-row point-distance lane: one vectorizable distance pass per row,
  /// then a recurrence pass, keeps sqrt out of the dependent chain.
  double* Dist(size_t n) { return Ensure(&dist_, n); }
  /// ERP gap-distance lane: dist(b[j], gap) computed once per call.
  double* Gap(size_t n) { return Ensure(&gap_, n); }

  /// Integer DP rows (LCSS similarity counts).
  size_t* IRowA(size_t n) { return Ensure(&irow_a_, n); }
  size_t* IRowB(size_t n) { return Ensure(&irow_b_, n); }

  /// Per-survivor accept flags for parallel batch verification.
  uint8_t* Flags(size_t n) { return Ensure(&flags_, n); }

  /// Position buffers reused by search and batch verification. Callers clear
  /// before use; capacity is retained across calls.
  std::vector<uint32_t>& Candidates() { return candidates_; }
  std::vector<uint32_t>& Survivors() { return survivors_; }
  std::vector<uint32_t>& Accepted() { return accepted_; }
  /// Packed (candidate position << 32 | survivor rank) keys for multi-query
  /// verification: sorting them groups the DP work candidate-major, so one
  /// candidate's SoA lanes stay hot while it is scored against every query
  /// in the batch.
  std::vector<uint64_t>& Pairs() { return pairs_; }

  /// Extract a trajectory into the A/B coordinate lanes. Entry points taking
  /// Trajectory arguments use these; callers holding a precomputed
  /// SoaTrajectory pass its view directly and skip the copy.
  TrajView ExtractA(const Trajectory& t) { return Extract(&ax_, &ay_, t); }
  TrajView ExtractB(const Trajectory& t) { return Extract(&bx_, &by_, t); }

  uint64_t reallocations() const { return reallocations_; }

  /// Cancellation hook for the DP kernels: the Verifier attaches the active
  /// QueryContext for the duration of a batch (including on pool threads),
  /// and the threshold kernels poll it every few rows via PollRows. Without
  /// a context the poll is one null-pointer branch. A kernel observing a
  /// stop abandons the DP and reports "not within" — safe because the
  /// stopped task's entire output is dropped by the engine.
  void SetQueryContext(QueryContext* ctx) { ctx_ = ctx; }
  QueryContext* query_context() const { return ctx_; }
  /// Charges `rows` DP rows; true when the query must stop.
  bool PollRows(uint64_t rows) {
    return ctx_ != nullptr && ctx_->CheckPoint(rows);
  }

  /// Heap bytes currently held across all lanes — the basis for the
  /// ResourceBudget::max_scratch_bytes cap.
  size_t ByteSize() const {
    return (row_a_.capacity() + row_b_.capacity() + dist_.capacity() +
            gap_.capacity() + ax_.capacity() + ay_.capacity() +
            bx_.capacity() + by_.capacity()) *
               sizeof(double) +
           (irow_a_.capacity() + irow_b_.capacity()) * sizeof(size_t) +
           flags_.capacity() * sizeof(uint8_t) +
           (candidates_.capacity() + survivors_.capacity() +
            accepted_.capacity()) *
               sizeof(uint32_t) +
           pairs_.capacity() * sizeof(uint64_t);
  }

 private:
  template <typename T>
  T* Ensure(std::vector<T>* v, size_t n) {
    if (v->size() < n) {
      if (v->capacity() < n) ++reallocations_;
      v->resize(n);
    }
    return v->data();
  }

  TrajView Extract(std::vector<double>* xs, std::vector<double>* ys,
                   const Trajectory& t) {
    const auto& pts = t.points();
    Ensure(xs, pts.size());
    Ensure(ys, pts.size());
    for (size_t i = 0; i < pts.size(); ++i) {
      (*xs)[i] = pts[i].x;
      (*ys)[i] = pts[i].y;
    }
    return TrajView{xs->data(), ys->data(), pts.size()};
  }

  std::vector<double> row_a_, row_b_, dist_, gap_;
  std::vector<size_t> irow_a_, irow_b_;
  std::vector<uint8_t> flags_;
  std::vector<double> ax_, ay_, bx_, by_;
  std::vector<uint32_t> candidates_, survivors_, accepted_;
  std::vector<uint64_t> pairs_;
  uint64_t reallocations_ = 0;
  QueryContext* ctx_ = nullptr;
};

}  // namespace dita

#endif  // DITA_DISTANCE_DP_SCRATCH_H_
