#ifndef DITA_DISTANCE_KERNELS_H_
#define DITA_DISTANCE_KERNELS_H_

#include <cmath>
#include <cstddef>

#include "distance/dp_scratch.h"
#include "geom/point.h"
#include "geom/soa.h"

namespace dita {
namespace kernels {

/// Classifies a squared point distance against a threshold eps while almost
/// never taking a square root. Squared comparison is conclusive outside a
/// narrow relative band around eps^2 (1e-12, thousands of double ulps wide —
/// far beyond the rounding error of one multiply plus one sqrt, so both
/// shortcuts are safe); inside the band we fall back to the exact sqrt
/// comparison, keeping Within() bit-compatible with
/// `std::sqrt(dist_sq) <= eps` everywhere, including exact boundaries.
struct SqThreshold {
  double eps = 0.0;
  double definitely_le = 0.0;  // dist_sq <= this  =>  sqrt(dist_sq) <= eps
  double definitely_gt = 0.0;  // dist_sq >= this  =>  sqrt(dist_sq) >  eps

  static SqThreshold For(double eps) {
    SqThreshold t;
    t.eps = eps;
    if (eps < 0.0) {
      // A negative threshold matches nothing (distances are >= 0).
      t.definitely_le = -1.0;
      t.definitely_gt = 0.0;
      return t;
    }
    const double eps_sq = eps * eps;
    t.definitely_le = eps_sq * (1.0 - 1e-12);
    t.definitely_gt = eps_sq * (1.0 + 1e-12);
    return t;
  }

  /// Exactly equivalent to std::sqrt(dist_sq) <= eps for dist_sq >= 0.
  bool Within(double dist_sq) const {
    if (dist_sq <= definitely_le) return true;
    if (dist_sq >= definitely_gt) return false;
    return std::sqrt(dist_sq) <= eps;
  }
};

/// The DP kernels behind the five TrajectoryDistance implementations. All of
/// them run over SoA views with rows and per-row distance lanes borrowed from
/// `s`; none allocate once the scratch has grown to the largest trajectory a
/// thread has seen. Each is bit-compatible with the pre-kernel reference
/// implementation (see DESIGN.md for the per-metric argument).
double DtwCompute(const TrajView& a, const TrajView& b, DpScratch& s);
bool DtwWithin(const TrajView& a, const TrajView& b, double tau, DpScratch& s);
/// AMD lower bound (Lemma 4.1): squared min per row, one sqrt per row.
double DtwAmd(const TrajView& a, const TrajView& b);

double FrechetCompute(const TrajView& a, const TrajView& b, DpScratch& s);
bool FrechetWithin(const TrajView& a, const TrajView& b, double tau,
                   DpScratch& s);

double EdrCompute(const TrajView& a, const TrajView& b, double epsilon,
                  DpScratch& s);
bool EdrWithin(const TrajView& a, const TrajView& b, double epsilon,
               double tau, DpScratch& s);

size_t LcssSimilarity(const TrajView& a, const TrajView& b, double epsilon,
                      long delta, DpScratch& s);
bool LcssWithin(const TrajView& a, const TrajView& b, double epsilon,
                long delta, double tau, DpScratch& s);

double ErpCompute(const TrajView& a, const TrajView& b, const Point& gap,
                  DpScratch& s);
bool ErpWithin(const TrajView& a, const TrajView& b, const Point& gap,
               double tau, DpScratch& s);

}  // namespace kernels
}  // namespace dita

#endif  // DITA_DISTANCE_KERNELS_H_
