#ifndef DITA_DISTANCE_DISTANCE_H_
#define DITA_DISTANCE_DISTANCE_H_

#include <memory>
#include <string>

#include "distance/dp_scratch.h"
#include "geom/soa.h"
#include "geom/trajectory.h"
#include "util/status.h"

namespace dita {

/// Trajectory similarity functions supported by DITA (§2.3, Appendix A).
enum class DistanceType { kDTW, kFrechet, kEDR, kLCSS, kERP };

/// How the trie index accumulates per-level MinDist values for a distance
/// function (Appendix A):
///  - kAccumulate: subtract each level's MinDist from the remaining threshold
///    (DTW, ERP — sums of point distances).
///  - kMax: keep the threshold; prune when a level's MinDist exceeds it
///    (Frechet — a max over the warping path).
///  - kEditCount: a level whose MinDist exceeds the matching epsilon costs one
///    edit; prune when the edit budget goes negative (EDR, LCSS).
enum class PruneMode { kAccumulate, kMax, kEditCount };

/// Tuning knobs for the edit-based and gap-based distances.
struct DistanceParams {
  /// Matching threshold epsilon for EDR / LCSS.
  double epsilon = 0.0001;
  /// Index constraint delta for LCSS (|i - j| <= delta).
  int delta = 3;
  /// Gap (reference) point g for ERP.
  Point erp_gap{0.0, 0.0};
};

/// Interface implemented by every similarity function. Implementations are
/// immutable and thread-safe; one instance is shared across workers.
class TrajectoryDistance {
 public:
  virtual ~TrajectoryDistance() = default;

  virtual DistanceType type() const = 0;
  virtual std::string name() const = 0;

  /// True for metric distances (Frechet); VP-tree requires a metric.
  virtual bool is_metric() const = 0;

  virtual PruneMode prune_mode() const = 0;

  /// Matching epsilon used by kEditCount distances; 0 otherwise.
  virtual double matching_epsilon() const { return 0.0; }

  /// Exact distance via the full dynamic program. Extracts both
  /// trajectories into this thread's SoA scratch lanes and runs the view
  /// kernel; allocation-free once the scratch has warmed up.
  double Compute(const Trajectory& t, const Trajectory& q) const;

  /// Threshold-aware test: returns true iff Compute(t, q) <= tau, but may
  /// abandon the dynamic program early once the result provably exceeds tau.
  /// Implementations must be exact (never prune a true answer).
  bool WithinThreshold(const Trajectory& t, const Trajectory& q,
                       double tau) const;

  /// Kernel entry points over flat SoA coordinate views. Hot paths (batch
  /// verification, kNN scoring) hold precomputed SoaTrajectory views and
  /// call these directly; `scratch` supplies the DP rows and is typically
  /// DpScratch::ThreadLocal().
  virtual double Compute(const TrajView& t, const TrajView& q,
                         DpScratch* scratch) const = 0;
  virtual bool WithinThreshold(const TrajView& t, const TrajView& q,
                               double tau, DpScratch* scratch) const;
};

/// Creates a distance instance. Returns InvalidArgument for unknown types.
Result<std::shared_ptr<TrajectoryDistance>> MakeDistance(
    DistanceType type, const DistanceParams& params = DistanceParams());

/// Parses "dtw" / "frechet" / "edr" / "lcss" / "erp" (case-insensitive).
Result<DistanceType> ParseDistanceType(const std::string& name);

const char* DistanceTypeName(DistanceType type);

}  // namespace dita

#endif  // DITA_DISTANCE_DISTANCE_H_
