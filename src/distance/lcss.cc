#include "distance/lcss.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

namespace dita {

size_t Lcss::Similarity(const Trajectory& t, const Trajectory& q) const {
  const auto& a = t.points();
  const auto& b = q.points();
  const long m = static_cast<long>(a.size());
  const long n = static_cast<long>(b.size());
  if (m == 0 || n == 0) return 0;

  // The index constraint |i - j| <= delta confines matches to a band, so
  // only band cells need point distances; outside the band the DP value is
  // constant along each row (no further matches are permitted there), which
  // we materialize so neighbouring rows can read any column directly.
  std::vector<size_t> prev(static_cast<size_t>(n) + 1, 0);
  std::vector<size_t> row(static_cast<size_t>(n) + 1, 0);
  for (long i = 1; i <= m; ++i) {
    // Clamp: when i - delta exceeds n the band is empty and row i simply
    // copies row i-1 (no new matches are permitted).
    const long lo = std::min(std::max(1L, i - delta_), n + 1);
    const long hi = std::min(n, i + delta_);
    // Columns before the band: row i cannot add matches there.
    for (long j = 0; j < lo; ++j) row[j] = prev[j];
    for (long j = lo; j <= hi; ++j) {
      if (PointDistance(a[i - 1], b[j - 1]) <= epsilon_) {
        row[j] = prev[j - 1] + 1;
      } else {
        row[j] = std::max(prev[j], row[j - 1]);
      }
    }
    // Columns after the band: constant continuation of the last band cell.
    for (long j = hi + 1; j <= n; ++j) row[j] = std::max(row[hi], prev[j]);
    std::swap(row, prev);
  }
  return prev[static_cast<size_t>(n)];
}

double Lcss::Compute(const Trajectory& t, const Trajectory& q) const {
  const size_t m = t.size();
  const size_t n = q.size();
  const size_t shorter = std::min(m, n);
  return static_cast<double>(shorter - std::min(shorter, Similarity(t, q)));
}

bool Lcss::WithinThreshold(const Trajectory& t, const Trajectory& q,
                           double tau) const {
  // min(m, n) - lcss <= tau  <=>  lcss >= min(m, n) - tau. Cheap pre-check:
  // the index constraint caps achievable similarity by min(m, n), so a
  // negative requirement is trivially met.
  const double required =
      static_cast<double>(std::min(t.size(), q.size())) - tau;
  if (required <= 0) return true;

  // Banded DP with an upper-bound abandon: after row i the similarity can
  // grow by at most (m - i) more matches.
  const auto& a = t.points();
  const auto& b = q.points();
  const long m = static_cast<long>(a.size());
  const long n = static_cast<long>(b.size());
  std::vector<size_t> prev(static_cast<size_t>(n) + 1, 0);
  std::vector<size_t> row(static_cast<size_t>(n) + 1, 0);
  for (long i = 1; i <= m; ++i) {
    const long lo = std::min(std::max(1L, i - delta_), n + 1);
    const long hi = std::min(n, i + delta_);
    for (long j = 0; j < lo; ++j) row[j] = prev[j];
    size_t row_best = row[lo - 1];
    for (long j = lo; j <= hi; ++j) {
      if (PointDistance(a[i - 1], b[j - 1]) <= epsilon_) {
        row[j] = prev[j - 1] + 1;
      } else {
        row[j] = std::max(prev[j], row[j - 1]);
      }
      row_best = std::max(row_best, row[j]);
    }
    for (long j = hi + 1; j <= n; ++j) {
      row[j] = std::max(row[hi], prev[j]);
      row_best = std::max(row_best, row[j]);
    }
    if (static_cast<double>(row_best + static_cast<size_t>(m - i)) < required) {
      return false;
    }
    std::swap(row, prev);
  }
  return static_cast<double>(prev[static_cast<size_t>(n)]) >= required;
}

}  // namespace dita
