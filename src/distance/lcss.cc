#include "distance/lcss.h"

#include <algorithm>

#include "distance/kernels.h"

namespace dita {

size_t Lcss::Similarity(const Trajectory& t, const Trajectory& q) const {
  DpScratch& scratch = DpScratch::ThreadLocal();
  const TrajView tv = scratch.ExtractA(t);
  const TrajView qv = scratch.ExtractB(q);
  return kernels::LcssSimilarity(tv, qv, epsilon_, delta_, scratch);
}

double Lcss::Compute(const TrajView& t, const TrajView& q,
                     DpScratch* scratch) const {
  const size_t shorter = std::min(t.len, q.len);
  const size_t sim = kernels::LcssSimilarity(t, q, epsilon_, delta_, *scratch);
  return static_cast<double>(shorter - std::min(shorter, sim));
}

bool Lcss::WithinThreshold(const TrajView& t, const TrajView& q, double tau,
                           DpScratch* scratch) const {
  return kernels::LcssWithin(t, q, epsilon_, delta_, tau, *scratch);
}

}  // namespace dita
