#include "distance/frechet.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace dita {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double Frechet::Compute(const Trajectory& t, const Trajectory& q) const {
  const auto& a = t.points();
  const auto& b = q.points();
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0 || n == 0) return m == n ? 0.0 : kInf;

  std::vector<double> row(n);
  row[0] = PointDistance(a[0], b[0]);
  for (size_t j = 1; j < n; ++j) {
    row[j] = std::max(row[j - 1], PointDistance(a[0], b[j]));
  }
  for (size_t i = 1; i < m; ++i) {
    double diag = row[0];
    row[0] = std::max(row[0], PointDistance(a[i], b[0]));
    for (size_t j = 1; j < n; ++j) {
      const double up = row[j];
      row[j] = std::max(PointDistance(a[i], b[j]),
                        std::min({diag, up, row[j - 1]}));
      diag = up;
    }
  }
  return row[n - 1];
}

bool Frechet::WithinThreshold(const Trajectory& t, const Trajectory& q,
                              double tau) const {
  const auto& a = t.points();
  const auto& b = q.points();
  const size_t m = a.size();
  const size_t n = b.size();
  if (m == 0 || n == 0) return m == n && 0.0 <= tau;

  // Both endpoints are always aligned, so either exceeding tau disproves
  // similarity immediately.
  if (PointDistance(a[0], b[0]) > tau) return false;
  if (PointDistance(a[m - 1], b[n - 1]) > tau) return false;

  std::vector<double> row(n);
  row[0] = PointDistance(a[0], b[0]);
  for (size_t j = 1; j < n; ++j) {
    row[j] = std::max(row[j - 1], PointDistance(a[0], b[j]));
  }
  for (size_t i = 1; i < m; ++i) {
    double diag = row[0];
    row[0] = std::max(row[0], PointDistance(a[i], b[0]));
    double row_min = row[0];
    for (size_t j = 1; j < n; ++j) {
      const double up = row[j];
      row[j] = std::max(PointDistance(a[i], b[j]),
                        std::min({diag, up, row[j - 1]}));
      diag = up;
      row_min = std::min(row_min, row[j]);
    }
    // Every path to (m-1, n-1) extends some cell in this row; if all of them
    // already exceed tau the distance must exceed tau.
    if (row_min > tau) return false;
  }
  return row[n - 1] <= tau;
}

}  // namespace dita
