#include "distance/frechet.h"

#include "distance/kernels.h"

namespace dita {

double Frechet::Compute(const TrajView& t, const TrajView& q,
                        DpScratch* scratch) const {
  return kernels::FrechetCompute(t, q, *scratch);
}

bool Frechet::WithinThreshold(const TrajView& t, const TrajView& q, double tau,
                              DpScratch* scratch) const {
  return kernels::FrechetWithin(t, q, tau, *scratch);
}

}  // namespace dita
