#include "distance/erp.h"

#include "distance/kernels.h"

namespace dita {

double Erp::Compute(const TrajView& t, const TrajView& q,
                    DpScratch* scratch) const {
  return kernels::ErpCompute(t, q, gap_, *scratch);
}

bool Erp::WithinThreshold(const TrajView& t, const TrajView& q, double tau,
                          DpScratch* scratch) const {
  return kernels::ErpWithin(t, q, gap_, tau, *scratch);
}

}  // namespace dita
