#include "distance/erp.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace dita {

double Erp::Compute(const Trajectory& t, const Trajectory& q) const {
  const auto& a = t.points();
  const auto& b = q.points();
  const size_t m = a.size();
  const size_t n = b.size();

  std::vector<double> prev(n + 1, 0.0);
  for (size_t j = 1; j <= n; ++j) prev[j] = prev[j - 1] + PointDistance(b[j - 1], gap_);
  std::vector<double> row(n + 1, 0.0);
  for (size_t i = 1; i <= m; ++i) {
    row[0] = prev[0] + PointDistance(a[i - 1], gap_);
    for (size_t j = 1; j <= n; ++j) {
      row[j] = std::min({prev[j - 1] + PointDistance(a[i - 1], b[j - 1]),
                         prev[j] + PointDistance(a[i - 1], gap_),
                         row[j - 1] + PointDistance(b[j - 1], gap_)});
    }
    std::swap(row, prev);
  }
  return prev[n];
}

bool Erp::WithinThreshold(const Trajectory& t, const Trajectory& q,
                          double tau) const {
  const auto& a = t.points();
  const auto& b = q.points();
  const size_t m = a.size();
  const size_t n = b.size();

  std::vector<double> prev(n + 1, 0.0);
  for (size_t j = 1; j <= n; ++j) prev[j] = prev[j - 1] + PointDistance(b[j - 1], gap_);
  std::vector<double> row(n + 1, 0.0);
  for (size_t i = 1; i <= m; ++i) {
    row[0] = prev[0] + PointDistance(a[i - 1], gap_);
    double row_min = row[0];
    for (size_t j = 1; j <= n; ++j) {
      row[j] = std::min({prev[j - 1] + PointDistance(a[i - 1], b[j - 1]),
                         prev[j] + PointDistance(a[i - 1], gap_),
                         row[j - 1] + PointDistance(b[j - 1], gap_)});
      row_min = std::min(row_min, row[j]);
    }
    // ERP costs are non-negative, so a frontier entirely above tau can never
    // come back below it.
    if (row_min > tau) return false;
    std::swap(row, prev);
  }
  return prev[n] <= tau;
}

}  // namespace dita
