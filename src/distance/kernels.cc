#include "distance/kernels.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace dita {
namespace kernels {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// One vectorizable pass: out[j] = dist((ax, ay), b[j]) for j in [lo, hi).
/// Separating the distance pass from the recurrence pass keeps the sqrt out
/// of the DP's loop-carried dependency chain.
inline void RowDistances(double ax, double ay, const TrajView& b, size_t lo,
                         size_t hi, double* out) {
  const double* bx = b.xs;
  const double* by = b.ys;
  for (size_t j = lo; j < hi; ++j) {
    const double dx = ax - bx[j];
    const double dy = ay - by[j];
    out[j] = std::sqrt(dx * dx + dy * dy);
  }
}

inline void RowDistancesSquared(double ax, double ay, const TrajView& b,
                                size_t lo, size_t hi, double* out) {
  const double* bx = b.xs;
  const double* by = b.ys;
  for (size_t j = lo; j < hi; ++j) {
    const double dx = ax - bx[j];
    const double dy = ay - by[j];
    out[j] = dx * dx + dy * dy;
  }
}

inline double Dist(const TrajView& a, size_t i, const TrajView& b, size_t j) {
  const double dx = a.xs[i] - b.xs[j];
  const double dy = a.ys[i] - b.ys[j];
  return std::sqrt(dx * dx + dy * dy);
}

inline double DistSquared(const TrajView& a, size_t i, const TrajView& b,
                          size_t j) {
  const double dx = a.xs[i] - b.xs[j];
  const double dy = a.ys[i] - b.ys[j];
  return dx * dx + dy * dy;
}

inline double Min3(double x, double y, double z) {
  const double m = x < y ? x : y;
  return z < m ? z : m;
}

}  // namespace

double DtwCompute(const TrajView& a, const TrajView& b, DpScratch& s) {
  const size_t m = a.len;
  const size_t n = b.len;
  if (m == 0 || n == 0) return m == n ? 0.0 : kInf;

  // Rolling single-row DP: row[j] = DTW(T^i, Q^j).
  double* row = s.RowA(n);
  double* dist = s.Dist(n);
  RowDistances(a.xs[0], a.ys[0], b, 0, n, dist);
  row[0] = dist[0];
  for (size_t j = 1; j < n; ++j) row[j] = row[j - 1] + dist[j];
  for (size_t i = 1; i < m; ++i) {
    RowDistances(a.xs[i], a.ys[i], b, 0, n, dist);
    double diag = row[0];  // DTW(T^{i-1}, Q^1)
    row[0] += dist[0];
    for (size_t j = 1; j < n; ++j) {
      const double up = row[j];  // DTW(T^{i-1}, Q^{j})
      row[j] = dist[j] + Min3(diag, up, row[j - 1]);
      diag = up;
    }
  }
  return row[n - 1];
}

// Threshold-aware single-pass DTW with column-window pruning. Call a cell
// (i, j) with forward value v "live" when it can still be part of a path of
// total cost <= tau: for the final cell that means v <= tau, for every other
// cell v + d_last <= tau, because any continuation must at least pay the
// last anchor distance d_last = dist(t_m, q_n) (Definition 2.2). Per row we
// only compute the columns reachable from the previous row's live window
// plus a horizontal extension, and only carry the live span forward.
//
// Exactness: DTW cell costs are non-negative, and IEEE addition of
// non-negative values is monotone (fl(x + y) >= x), so every descendant of a
// dead cell computes a value v' >= v, hence fl(v' + d_last) >= fl(v + d_last)
// > tau — dead stays dead, with the same floating-point expression the
// reference's row-min abandon test uses. Conversely a live cell can never
// take its DP minimum from a dead predecessor (the resulting value would be
// dead by the same argument), so live cells compute bit-identical values to
// the full DP and the final accept/reject decision is unchanged.
bool DtwWithin(const TrajView& a, const TrajView& b, double tau, DpScratch& s) {
  const size_t m = a.len;
  const size_t n = b.len;
  if (m == 0 || n == 0) return m == n && 0.0 <= tau;

  const double d00 = Dist(a, 0, b, 0);
  if (m == 1 && n == 1) return d00 <= tau;
  const double d_last = Dist(a, m - 1, b, n - 1);
  // Double-direction anchor bound: every warping path includes both
  // endpoint alignments, so their sum already lower-bounds DTW.
  if (d00 + d_last > tau) return false;
  if (m == 1 || n == 1) return DtwCompute(a, b, s) <= tau;

  double* row = s.RowA(n);
  double* dist = s.Dist(n);

  // Row 0 is a prefix sum, so it dies for good at the first dead column.
  RowDistances(a.xs[0], a.ys[0], b, 0, n, dist);
  row[0] = dist[0];
  size_t beg = 0;  // first live column of the previous row
  size_t end = 1;  // one past the last live column of the previous row
  for (size_t j = 1; j < n; ++j) {
    const double v = row[j - 1] + dist[j];
    if (v + d_last > tau) break;
    row[j] = v;
    end = j + 1;
  }
  if (end < n) row[end] = kInf;  // sentinel for the next row's up/diag reads

  for (size_t i = 1; i < m; ++i) {
    // Cooperative cancellation: a false accept is impossible here (stopped
    // queries drop this pair's verdict entirely), so bailing mid-DP is safe.
    if ((i & 31) == 0 && s.PollRows(32)) return false;
    const bool final_row = i + 1 == m;
    RowDistances(a.xs[i], a.ys[i], b, beg, std::min(end + 1, n), dist);
    size_t new_beg = n;
    size_t last_live = n;  // n = no live cell seen in this row yet
    double left = kInf;  // value at (i, j-1)
    double diag = kInf;  // previous row at j-1; row[beg-1] is dead/sentinel
    // Columns with an up or diagonal predecessor: [beg, end]. The sentinel
    // written after the previous row makes row[end] read as infinity.
    const size_t lim = std::min(end, n - 1);
    size_t j = beg;
    for (; j <= lim; ++j) {
      const double up = row[j];
      const double best = Min3(diag, up, left);
      diag = up;
      if (best == kInf) {  // no reachable predecessor
        row[j] = kInf;
        left = kInf;
        continue;
      }
      const double v = dist[j] + best;
      row[j] = v;
      left = v;
      const bool live =
          (final_row && j == n - 1) ? v <= tau : v + d_last <= tau;
      if (live) {
        if (new_beg == n) new_beg = j;
        last_live = j;
      }
    }
    // Horizontal extension past the previous row's window: only the left
    // predecessor exists there and the chain is non-decreasing, so it ends
    // at the first dead cell — and never starts from one.
    if (last_live == lim && lim + 1 < n) {
      for (j = lim + 1; j < n; ++j) {
        const double v = Dist(a, i, b, j) + left;
        const bool live =
            (final_row && j == n - 1) ? v <= tau : v + d_last <= tau;
        if (!live) break;
        row[j] = v;
        left = v;
        last_live = j;
      }
    }
    if (new_beg == n) return false;  // the whole frontier exceeds tau
    beg = new_beg;
    end = last_live + 1;
    if (beg > 0) row[beg - 1] = kInf;
    if (end < n) row[end] = kInf;
  }
  // The final cell is live iff its value is within tau.
  return end == n;
}

double DtwAmd(const TrajView& a, const TrajView& b) {
  const size_t m = a.len;
  const size_t n = b.len;
  if (m == 0 || n == 0) return m == n ? 0.0 : kInf;
  if (m == 1 && n == 1) return Dist(a, 0, b, 0);
  double amd = Dist(a, 0, b, 0) + Dist(a, m - 1, b, n - 1);
  for (size_t i = 1; i + 1 < m; ++i) {
    // min over sqrt == sqrt of min: sqrt is monotone (also after rounding),
    // so one sqrt per row replaces n of them without changing the result.
    const double ax = a.xs[i];
    const double ay = a.ys[i];
    double min_sq = kInf;
    for (size_t j = 0; j < n; ++j) {
      const double dx = ax - b.xs[j];
      const double dy = ay - b.ys[j];
      const double dsq = dx * dx + dy * dy;
      min_sq = dsq < min_sq ? dsq : min_sq;
    }
    amd += std::sqrt(min_sq);
  }
  return amd;
}

// Frechet runs entirely in squared space: its DP only min/maxes values (no
// additions), min/max are order-based selections, and x -> sqrt(x) is
// non-decreasing even after rounding, so selecting among squared distances
// picks values whose roots are exactly the reference's selections. One sqrt
// at the very end (and inside threshold comparisons) suffices.
double FrechetCompute(const TrajView& a, const TrajView& b, DpScratch& s) {
  const size_t m = a.len;
  const size_t n = b.len;
  if (m == 0 || n == 0) return m == n ? 0.0 : kInf;

  double* row = s.RowA(n);
  double* dist = s.Dist(n);
  RowDistancesSquared(a.xs[0], a.ys[0], b, 0, n, dist);
  row[0] = dist[0];
  for (size_t j = 1; j < n; ++j) row[j] = std::max(row[j - 1], dist[j]);
  for (size_t i = 1; i < m; ++i) {
    RowDistancesSquared(a.xs[i], a.ys[i], b, 0, n, dist);
    double diag = row[0];
    row[0] = std::max(row[0], dist[0]);
    for (size_t j = 1; j < n; ++j) {
      const double up = row[j];
      row[j] = std::max(dist[j], Min3(diag, up, row[j - 1]));
      diag = up;
    }
  }
  return std::sqrt(row[n - 1]);
}

// Same column-window pruning as DtwWithin, with an even simpler liveness
// rule: a Frechet path's value is the max over its cells and can only grow,
// so a cell is dead as soon as its own value exceeds tau — no anchor term,
// no rounding concerns (min/max are exact). Squared space throughout;
// SqThreshold keeps every tau comparison bit-compatible.
bool FrechetWithin(const TrajView& a, const TrajView& b, double tau,
                   DpScratch& s) {
  const size_t m = a.len;
  const size_t n = b.len;
  if (m == 0 || n == 0) return m == n && 0.0 <= tau;
  if (tau < 0.0) return false;  // distances are >= 0

  const SqThreshold st = SqThreshold::For(tau);
  // Both endpoints are always aligned, so either exceeding tau disproves
  // similarity immediately.
  if (!st.Within(DistSquared(a, 0, b, 0))) return false;
  if (!st.Within(DistSquared(a, m - 1, b, n - 1))) return false;

  double* row = s.RowA(n);
  double* dist = s.Dist(n);
  RowDistancesSquared(a.xs[0], a.ys[0], b, 0, n, dist);
  row[0] = dist[0];
  size_t beg = 0;
  size_t end = 1;
  for (size_t j = 1; j < n; ++j) {
    const double v = std::max(row[j - 1], dist[j]);  // prefix maxima grow
    if (!st.Within(v)) break;
    row[j] = v;
    end = j + 1;
  }
  if (end < n) row[end] = kInf;

  for (size_t i = 1; i < m; ++i) {
    if ((i & 31) == 0 && s.PollRows(32)) return false;
    RowDistancesSquared(a.xs[i], a.ys[i], b, beg, std::min(end + 1, n), dist);
    size_t new_beg = n;
    size_t last_live = n;  // n = no live cell seen in this row yet
    double left = kInf;
    double diag = kInf;
    const size_t lim = std::min(end, n - 1);
    size_t j = beg;
    for (; j <= lim; ++j) {
      const double up = row[j];
      const double best = Min3(diag, up, left);
      diag = up;
      if (best == kInf) {
        row[j] = kInf;
        left = kInf;
        continue;
      }
      const double v = std::max(dist[j], best);
      row[j] = v;
      left = v;
      if (st.Within(v)) {
        if (new_beg == n) new_beg = j;
        last_live = j;
      }
    }
    if (last_live == lim && lim + 1 < n) {
      for (j = lim + 1; j < n; ++j) {
        const double v = std::max(DistSquared(a, i, b, j), left);
        if (!st.Within(v)) break;
        row[j] = v;
        left = v;
        last_live = j;
      }
    }
    if (new_beg == n) return false;
    beg = new_beg;
    end = last_live + 1;
    if (beg > 0) row[beg - 1] = kInf;
    if (end < n) row[end] = kInf;
  }
  return end == n;
}

double EdrCompute(const TrajView& a, const TrajView& b, double epsilon,
                  DpScratch& s) {
  const size_t m = a.len;
  const size_t n = b.len;
  if (m == 0) return static_cast<double>(n);
  if (n == 0) return static_cast<double>(m);

  const SqThreshold eps = SqThreshold::For(epsilon);
  // row[j] = EDR(prefix of T, first j points of Q).
  double* row = s.RowA(n + 1);
  double* dsq = s.Dist(n);
  for (size_t j = 0; j <= n; ++j) row[j] = static_cast<double>(j);
  for (size_t i = 1; i <= m; ++i) {
    RowDistancesSquared(a.xs[i - 1], a.ys[i - 1], b, 0, n, dsq);
    double diag = row[0];
    row[0] = static_cast<double>(i);
    for (size_t j = 1; j <= n; ++j) {
      const double up = row[j];
      const double subcost = eps.Within(dsq[j - 1]) ? 0.0 : 1.0;
      row[j] = Min3(diag + subcost, up + 1.0, row[j - 1] + 1.0);
      diag = up;
    }
  }
  return row[n];
}

bool EdrWithin(const TrajView& a, const TrajView& b, double epsilon,
               double tau, DpScratch& s) {
  const long m = static_cast<long>(a.len);
  const long n = static_cast<long>(b.len);
  if (std::abs(m - n) > tau) return false;  // length filter (Appendix A)
  if (m == 0 || n == 0) return true;        // |m - n| <= tau already

  const SqThreshold eps = SqThreshold::For(epsilon);
  // Banded DP: a cell (i, j) with |i - j| > band needs more than tau
  // insert/delete operations, so it cannot be on a path of cost <= tau.
  const long band = static_cast<long>(std::floor(tau));
  double* row = s.RowA(static_cast<size_t>(n) + 1);
  double* prev = s.RowB(static_cast<size_t>(n) + 1);
  double* dsq = s.Dist(static_cast<size_t>(n));
  for (long j = 0; j <= n; ++j) {
    row[j] = kInf;
    prev[j] = kInf;
  }
  for (long j = 0; j <= std::min(n, band); ++j) prev[j] = static_cast<double>(j);
  for (long i = 1; i <= m; ++i) {
    if ((i & 31) == 0 && s.PollRows(32)) return false;
    const long j_lo = std::max(1L, i - band);
    const long j_hi = std::min(n, i + band);
    // The rolling arrays hold values from two rows ago outside the band;
    // resetting the single slot on each side of the band reproduces the
    // reference's full-row infinity fill (the band shifts right by at most
    // one column per row, so no other stale slot is ever read).
    row[j_lo - 1] = kInf;
    if (j_hi < n) row[j_hi + 1] = kInf;
    double row_min = kInf;
    if (i <= band) {
      row[0] = static_cast<double>(i);
      row_min = row[0];
    }
    RowDistancesSquared(a.xs[i - 1], a.ys[i - 1], b,
                        static_cast<size_t>(j_lo - 1),
                        static_cast<size_t>(j_hi), dsq);
    for (long j = j_lo; j <= j_hi; ++j) {
      const double subcost = eps.Within(dsq[j - 1]) ? 0.0 : 1.0;
      row[j] = Min3(prev[j - 1] + subcost, prev[j] + 1.0, row[j - 1] + 1.0);
      row_min = std::min(row_min, row[j]);
    }
    if (row_min > tau) return false;
    std::swap(row, prev);
  }
  return prev[n] <= tau;
}

size_t LcssSimilarity(const TrajView& a, const TrajView& b, double epsilon,
                      long delta, DpScratch& s) {
  const long m = static_cast<long>(a.len);
  const long n = static_cast<long>(b.len);
  if (m == 0 || n == 0) return 0;

  const SqThreshold eps = SqThreshold::For(epsilon);
  // The index constraint |i - j| <= delta confines matches to a band, so
  // only band cells need point distances; outside the band the DP value is
  // constant along each row (no further matches are permitted there), which
  // we materialize so neighbouring rows can read any column directly.
  size_t* prev = s.IRowA(static_cast<size_t>(n) + 1);
  size_t* row = s.IRowB(static_cast<size_t>(n) + 1);
  for (long j = 0; j <= n; ++j) prev[j] = 0;
  double* dsq = s.Dist(static_cast<size_t>(n));
  for (long i = 1; i <= m; ++i) {
    // Clamp: when i - delta exceeds n the band is empty and row i simply
    // copies row i-1 (no new matches are permitted).
    const long lo = std::min(std::max(1L, i - delta), n + 1);
    const long hi = std::min(n, i + delta);
    // Columns before the band: row i cannot add matches there.
    for (long j = 0; j < lo; ++j) row[j] = prev[j];
    if (lo <= hi) {
      RowDistancesSquared(a.xs[i - 1], a.ys[i - 1], b,
                          static_cast<size_t>(lo - 1),
                          static_cast<size_t>(hi), dsq);
    }
    for (long j = lo; j <= hi; ++j) {
      if (eps.Within(dsq[j - 1])) {
        row[j] = prev[j - 1] + 1;
      } else {
        row[j] = std::max(prev[j], row[j - 1]);
      }
    }
    // Columns after the band: constant continuation of the last band cell.
    for (long j = hi + 1; j <= n; ++j) row[j] = std::max(row[hi], prev[j]);
    std::swap(row, prev);
  }
  return prev[n];
}

bool LcssWithin(const TrajView& a, const TrajView& b, double epsilon,
                long delta, double tau, DpScratch& s) {
  // min(m, n) - lcss <= tau  <=>  lcss >= min(m, n) - tau. Cheap pre-check:
  // the index constraint caps achievable similarity by min(m, n), so a
  // negative requirement is trivially met.
  const double required = static_cast<double>(std::min(a.len, b.len)) - tau;
  if (required <= 0) return true;

  const SqThreshold eps = SqThreshold::For(epsilon);
  // Banded DP with an upper-bound abandon: after row i the similarity can
  // grow by at most (m - i) more matches.
  const long m = static_cast<long>(a.len);
  const long n = static_cast<long>(b.len);
  size_t* prev = s.IRowA(static_cast<size_t>(n) + 1);
  size_t* row = s.IRowB(static_cast<size_t>(n) + 1);
  for (long j = 0; j <= n; ++j) prev[j] = 0;
  double* dsq = s.Dist(static_cast<size_t>(n));
  for (long i = 1; i <= m; ++i) {
    if ((i & 31) == 0 && s.PollRows(32)) return false;
    const long lo = std::min(std::max(1L, i - delta), n + 1);
    const long hi = std::min(n, i + delta);
    for (long j = 0; j < lo; ++j) row[j] = prev[j];
    size_t row_best = row[lo - 1];
    if (lo <= hi) {
      RowDistancesSquared(a.xs[i - 1], a.ys[i - 1], b,
                          static_cast<size_t>(lo - 1),
                          static_cast<size_t>(hi), dsq);
    }
    for (long j = lo; j <= hi; ++j) {
      if (eps.Within(dsq[j - 1])) {
        row[j] = prev[j - 1] + 1;
      } else {
        row[j] = std::max(prev[j], row[j - 1]);
      }
      row_best = std::max(row_best, row[j]);
    }
    for (long j = hi + 1; j <= n; ++j) {
      row[j] = std::max(row[hi], prev[j]);
      row_best = std::max(row_best, row[j]);
    }
    if (static_cast<double>(row_best + static_cast<size_t>(m - i)) < required) {
      return false;
    }
    std::swap(row, prev);
  }
  return static_cast<double>(prev[n]) >= required;
}

double ErpCompute(const TrajView& a, const TrajView& b, const Point& gap,
                  DpScratch& s) {
  const size_t m = a.len;
  const size_t n = b.len;

  double* prev = s.RowA(n + 1);
  double* row = s.RowB(n + 1);
  double* dist = s.Dist(n);
  double* gap_b = s.Gap(n);
  // dist(b[j], g) appears in every row of the DP; hoist it out entirely.
  RowDistances(gap.x, gap.y, b, 0, n, gap_b);
  prev[0] = 0.0;
  for (size_t j = 1; j <= n; ++j) prev[j] = prev[j - 1] + gap_b[j - 1];
  for (size_t i = 1; i <= m; ++i) {
    const double dgx = a.xs[i - 1] - gap.x;
    const double dgy = a.ys[i - 1] - gap.y;
    const double gap_a = std::sqrt(dgx * dgx + dgy * dgy);
    RowDistances(a.xs[i - 1], a.ys[i - 1], b, 0, n, dist);
    row[0] = prev[0] + gap_a;
    for (size_t j = 1; j <= n; ++j) {
      row[j] = Min3(prev[j - 1] + dist[j - 1], prev[j] + gap_a,
                    row[j - 1] + gap_b[j - 1]);
    }
    std::swap(prev, row);
  }
  return prev[n];
}

bool ErpWithin(const TrajView& a, const TrajView& b, const Point& gap,
               double tau, DpScratch& s) {
  const size_t m = a.len;
  const size_t n = b.len;

  double* prev = s.RowA(n + 1);
  double* row = s.RowB(n + 1);
  double* dist = s.Dist(n);
  double* gap_b = s.Gap(n);
  RowDistances(gap.x, gap.y, b, 0, n, gap_b);
  prev[0] = 0.0;
  for (size_t j = 1; j <= n; ++j) prev[j] = prev[j - 1] + gap_b[j - 1];
  for (size_t i = 1; i <= m; ++i) {
    if ((i & 31) == 0 && s.PollRows(32)) return false;
    const double dgx = a.xs[i - 1] - gap.x;
    const double dgy = a.ys[i - 1] - gap.y;
    const double gap_a = std::sqrt(dgx * dgx + dgy * dgy);
    RowDistances(a.xs[i - 1], a.ys[i - 1], b, 0, n, dist);
    row[0] = prev[0] + gap_a;
    double row_min = row[0];
    for (size_t j = 1; j <= n; ++j) {
      row[j] = Min3(prev[j - 1] + dist[j - 1], prev[j] + gap_a,
                    row[j - 1] + gap_b[j - 1]);
      row_min = std::min(row_min, row[j]);
    }
    // ERP costs are non-negative, so a frontier entirely above tau can never
    // come back below it.
    if (row_min > tau) return false;
    std::swap(prev, row);
  }
  return prev[n] <= tau;
}

}  // namespace kernels
}  // namespace dita
