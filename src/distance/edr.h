#ifndef DITA_DISTANCE_EDR_H_
#define DITA_DISTANCE_EDR_H_

#include "distance/distance.h"

namespace dita {

/// Edit Distance on Real sequence (Definition A.2): the minimum number of
/// edit operations (insert / delete / substitute) that make the trajectories
/// match, where two points match when their distance is within epsilon.
class Edr : public TrajectoryDistance {
 public:
  explicit Edr(double epsilon) : epsilon_(epsilon) {}

  using TrajectoryDistance::Compute;
  using TrajectoryDistance::WithinThreshold;

  DistanceType type() const override { return DistanceType::kEDR; }
  std::string name() const override { return "EDR"; }
  bool is_metric() const override { return false; }
  PruneMode prune_mode() const override { return PruneMode::kEditCount; }
  double matching_epsilon() const override { return epsilon_; }

  double Compute(const TrajView& t, const TrajView& q,
                 DpScratch* scratch) const override;

  /// Applies the length filter |m - n| > tau (Appendix A) and a banded DP of
  /// half-width tau — any path leaving the band costs more than tau edits.
  bool WithinThreshold(const TrajView& t, const TrajView& q, double tau,
                       DpScratch* scratch) const override;

 private:
  double epsilon_;
};

}  // namespace dita

#endif  // DITA_DISTANCE_EDR_H_
