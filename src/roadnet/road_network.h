#ifndef DITA_ROADNET_ROAD_NETWORK_H_
#define DITA_ROADNET_ROAD_NETWORK_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "index/rtree.h"
#include "util/rng.h"
#include "util/status.h"

namespace dita {

using NodeId = uint32_t;
using EdgeId = uint32_t;

/// A road network: intersections (nodes) connected by bidirectional road
/// segments (edges). This is the substrate for the paper's §8 future-work
/// direction ("an extension of DITA by considering road networks"):
/// map matching snaps GPS trajectories onto it, and route-overlap similarity
/// compares trips by shared road segments.
class RoadNetwork {
 public:
  struct Edge {
    NodeId a = 0;
    NodeId b = 0;
    double length = 0.0;
  };

  RoadNetwork() = default;

  /// Adds an intersection; returns its id.
  NodeId AddNode(const Point& location);

  /// Adds a bidirectional segment between existing nodes; returns its id or
  /// InvalidArgument for unknown/identical endpoints.
  Result<EdgeId> AddEdge(NodeId a, NodeId b);

  /// Must be called after the last AddEdge and before spatial queries;
  /// builds the edge R-tree.
  void Finalize();

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }
  const Point& node(NodeId id) const { return nodes_[id]; }
  const Edge& edge(EdgeId id) const { return edges_[id]; }

  /// Edges incident to `node`.
  const std::vector<EdgeId>& EdgesAt(NodeId node) const {
    return incident_[node];
  }

  /// The edge nearest to `p` plus the snapped (projected) position; returns
  /// NotFound on an empty network. Requires Finalize().
  struct Snap {
    EdgeId edge = 0;
    Point position;
    double distance = 0.0;
  };
  Result<Snap> NearestEdge(const Point& p) const;

  /// Up to `k` nearest edges by snap distance (for map-matching candidate
  /// sets). Requires Finalize().
  std::vector<Snap> NearestEdges(const Point& p, size_t k) const;

  /// Dijkstra shortest path; returns the node sequence from `from` to `to`
  /// (inclusive) or NotFound if disconnected.
  Result<std::vector<NodeId>> ShortestPath(NodeId from, NodeId to) const;

  /// Network distance of the shortest path; infinity if disconnected.
  double NetworkDistance(NodeId from, NodeId to) const;

  /// True iff the two edges share an endpoint (or are the same edge).
  bool EdgesAdjacent(EdgeId x, EdgeId y) const;

 private:
  std::vector<Point> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> incident_;
  RTree edge_tree_;
  bool finalized_ = false;
};

/// Generates a rows x cols Manhattan grid network with `spacing` between
/// intersections, anchored at `origin`. Every street exists; a small
/// fraction (`removal_prob`) of interior segments is removed to create
/// detours, while grid connectivity is preserved by keeping the boundary
/// ring intact.
RoadNetwork MakeGridNetwork(size_t rows, size_t cols, double spacing,
                            const Point& origin, double removal_prob = 0.0,
                            uint64_t seed = 1);

}  // namespace dita

#endif  // DITA_ROADNET_ROAD_NETWORK_H_
