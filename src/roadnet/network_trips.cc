#include "roadnet/network_trips.h"

#include <cmath>

namespace dita {

Result<NetworkTrips> GenerateNetworkTrips(const RoadNetwork& network,
                                          const NetworkTripOptions& options) {
  if (network.NumNodes() < 2) {
    return Status::InvalidArgument("network needs at least two nodes");
  }
  if (options.sample_spacing <= 0) {
    return Status::InvalidArgument("sample spacing must be positive");
  }
  Rng rng(options.seed);
  NetworkTrips out;
  const int64_t max_node = static_cast<int64_t>(network.NumNodes()) - 1;
  size_t produced = 0;
  size_t attempts = 0;
  while (produced < options.num_trips && attempts < options.num_trips * 50) {
    ++attempts;
    const NodeId from = static_cast<NodeId>(rng.UniformInt(0, max_node));
    const NodeId to = static_cast<NodeId>(rng.UniformInt(0, max_node));
    if (from == to) continue;
    auto path = network.ShortestPath(from, to);
    if (!path.ok() || path->size() < options.min_hops + 1) continue;

    // Walk the node path emitting samples every `sample_spacing`.
    Trajectory t;
    t.set_id(static_cast<TrajectoryId>(produced));
    auto emit = [&](const Point& p) {
      t.mutable_points().push_back(
          Point{p.x + rng.Gaussian(0, options.gps_noise),
                p.y + rng.Gaussian(0, options.gps_noise)});
    };
    emit(network.node((*path)[0]));
    double carried = 0.0;
    for (size_t i = 0; i + 1 < path->size(); ++i) {
      const Point& a = network.node((*path)[i]);
      const Point& b = network.node((*path)[i + 1]);
      const double seg_len = PointDistance(a, b);
      if (seg_len == 0.0) continue;
      double offset = options.sample_spacing - carried;
      while (offset < seg_len) {
        const double frac = offset / seg_len;
        emit(Point{a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y)});
        offset += options.sample_spacing;
      }
      carried = seg_len - (offset - options.sample_spacing);
    }
    emit(network.node(path->back()));
    if (t.size() < 2) continue;

    out.trips.Add(std::move(t));
    out.truth_paths.push_back(std::move(*path));
    ++produced;
  }
  if (produced < options.num_trips) {
    return Status::Internal("could not generate enough connected trips");
  }
  return out;
}

}  // namespace dita
