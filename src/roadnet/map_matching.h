#ifndef DITA_ROADNET_MAP_MATCHING_H_
#define DITA_ROADNET_MAP_MATCHING_H_

#include <vector>

#include "geom/trajectory.h"
#include "roadnet/road_network.h"

namespace dita {

/// Map matching: snap a noisy GPS trajectory onto the road network as a
/// sequence of road-segment ids. A lightweight Viterbi over per-point
/// candidate edges: emission cost = snap distance; transition cost = 0 for
/// staying on the same or an adjacent edge and a jump penalty scaled by the
/// snapped displacement otherwise (full HMM map matching computes network
/// distances between candidates; the adjacency approximation is accurate on
/// dense urban grids and keeps matching O(n * k^2)).
struct MapMatchOptions {
  /// Candidate edges per GPS point.
  size_t candidates_per_point = 4;
  /// Cost multiplier for transitions between non-adjacent edges.
  double jump_penalty = 3.0;
};

struct MatchedTrajectory {
  /// One matched edge per GPS point.
  std::vector<EdgeId> edges;
  /// Snapped positions (on the matched edges), parallel to `edges`.
  Trajectory snapped;
  /// The deduplicated road sequence (consecutive repeats collapsed) — the
  /// trip's route, the unit network-aware similarity compares.
  std::vector<EdgeId> route;
  /// Mean snap distance, a match-quality indicator.
  double mean_snap_distance = 0.0;
};

/// Matches `t` onto `network`; InvalidArgument for empty inputs.
Result<MatchedTrajectory> MatchTrajectory(const RoadNetwork& network,
                                          const Trajectory& t,
                                          const MapMatchOptions& options =
                                              MapMatchOptions());

/// Network-aware route similarity: the fraction of the shorter route covered
/// by the longest common subsequence of road segments, in [0, 1]. 1 = one
/// route contains the other's segment sequence; 0 = no shared segments in
/// order. (The segment-sequence analogue of LCSS, as road-network trajectory
/// similarity is usually defined.)
double RouteOverlap(const std::vector<EdgeId>& a, const std::vector<EdgeId>& b);

}  // namespace dita

#endif  // DITA_ROADNET_MAP_MATCHING_H_
