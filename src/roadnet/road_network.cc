#include "roadnet/road_network.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "geom/simplify.h"
#include "util/logging.h"

namespace dita {

NodeId RoadNetwork::AddNode(const Point& location) {
  nodes_.push_back(location);
  incident_.emplace_back();
  finalized_ = false;
  return static_cast<NodeId>(nodes_.size() - 1);
}

Result<EdgeId> RoadNetwork::AddEdge(NodeId a, NodeId b) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint does not exist");
  }
  if (a == b) return Status::InvalidArgument("self-loop edges not allowed");
  Edge e;
  e.a = a;
  e.b = b;
  e.length = PointDistance(nodes_[a], nodes_[b]);
  edges_.push_back(e);
  const EdgeId id = static_cast<EdgeId>(edges_.size() - 1);
  incident_[a].push_back(id);
  incident_[b].push_back(id);
  finalized_ = false;
  return id;
}

void RoadNetwork::Finalize() {
  std::vector<RTree::Entry> entries;
  entries.reserve(edges_.size());
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    MBR mbr;
    mbr.Expand(nodes_[edges_[id].a]);
    mbr.Expand(nodes_[edges_[id].b]);
    entries.push_back({mbr, id});
  }
  edge_tree_.Build(std::move(entries));
  finalized_ = true;
}

namespace {

/// Projection of `p` onto segment (a, b).
Point ProjectOntoSegment(const Point& p, const Point& a, const Point& b) {
  const double abx = b.x - a.x;
  const double aby = b.y - a.y;
  const double len2 = abx * abx + aby * aby;
  if (len2 == 0.0) return a;
  double t = ((p.x - a.x) * abx + (p.y - a.y) * aby) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return Point{a.x + t * abx, a.y + t * aby};
}

}  // namespace

Result<RoadNetwork::Snap> RoadNetwork::NearestEdge(const Point& p) const {
  auto snaps = NearestEdges(p, 1);
  if (snaps.empty()) return Status::NotFound("empty road network");
  return snaps.front();
}

std::vector<RoadNetwork::Snap> RoadNetwork::NearestEdges(const Point& p,
                                                         size_t k) const {
  DITA_CHECK(finalized_);
  std::vector<Snap> snaps;
  if (edges_.empty() || k == 0) return snaps;

  // Expanding-radius R-tree probe; fall back to doubling until k hits (or
  // the whole network has been scanned).
  double radius = 1e-6;
  std::vector<uint32_t> hits;
  for (int rounds = 0; rounds < 64; ++rounds) {
    hits.clear();
    edge_tree_.SearchWithinDistance(p, radius, &hits);
    if (hits.size() >= k || hits.size() == edges_.size()) break;
    radius *= 4.0;
  }
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());

  snaps.reserve(hits.size());
  for (EdgeId id : hits) {
    Snap s;
    s.edge = id;
    s.position = ProjectOntoSegment(p, nodes_[edges_[id].a], nodes_[edges_[id].b]);
    s.distance = PointDistance(p, s.position);
    snaps.push_back(s);
  }
  std::sort(snaps.begin(), snaps.end(),
            [](const Snap& x, const Snap& y) { return x.distance < y.distance; });
  if (snaps.size() > k) snaps.resize(k);
  return snaps;
}

Result<std::vector<NodeId>> RoadNetwork::ShortestPath(NodeId from,
                                                      NodeId to) const {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::InvalidArgument("unknown node");
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(nodes_.size(), kInf);
  std::vector<NodeId> parent(nodes_.size(), from);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  dist[from] = 0.0;
  queue.push({0.0, from});
  while (!queue.empty()) {
    const auto [d, u] = queue.top();
    queue.pop();
    if (d > dist[u]) continue;
    if (u == to) break;
    for (EdgeId eid : incident_[u]) {
      const Edge& e = edges_[eid];
      const NodeId v = e.a == u ? e.b : e.a;
      const double nd = d + e.length;
      if (nd < dist[v]) {
        dist[v] = nd;
        parent[v] = u;
        queue.push({nd, v});
      }
    }
  }
  if (dist[to] == kInf) return Status::NotFound("nodes are disconnected");
  std::vector<NodeId> path;
  for (NodeId u = to; u != from; u = parent[u]) path.push_back(u);
  path.push_back(from);
  std::reverse(path.begin(), path.end());
  return path;
}

double RoadNetwork::NetworkDistance(NodeId from, NodeId to) const {
  auto path = ShortestPath(from, to);
  if (!path.ok()) return std::numeric_limits<double>::infinity();
  double total = 0.0;
  for (size_t i = 0; i + 1 < path->size(); ++i) {
    total += PointDistance(nodes_[(*path)[i]], nodes_[(*path)[i + 1]]);
  }
  return total;
}

bool RoadNetwork::EdgesAdjacent(EdgeId x, EdgeId y) const {
  if (x == y) return true;
  const Edge& ex = edges_[x];
  const Edge& ey = edges_[y];
  return ex.a == ey.a || ex.a == ey.b || ex.b == ey.a || ex.b == ey.b;
}

RoadNetwork MakeGridNetwork(size_t rows, size_t cols, double spacing,
                            const Point& origin, double removal_prob,
                            uint64_t seed) {
  DITA_CHECK(rows >= 2 && cols >= 2);
  RoadNetwork net;
  Rng rng(seed);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      net.AddNode(Point{origin.x + double(c) * spacing,
                        origin.y + double(r) * spacing});
    }
  }
  auto node_at = [&](size_t r, size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      const bool boundary_row = r == 0 || r == rows - 1;
      const bool boundary_col = c == 0 || c == cols - 1;
      if (c + 1 < cols) {
        // Horizontal street segment; interior ones may be removed.
        if (boundary_row || !rng.Chance(removal_prob)) {
          DITA_CHECK(net.AddEdge(node_at(r, c), node_at(r, c + 1)).ok());
        }
      }
      if (r + 1 < rows) {
        if (boundary_col || !rng.Chance(removal_prob)) {
          DITA_CHECK(net.AddEdge(node_at(r, c), node_at(r + 1, c)).ok());
        }
      }
    }
  }
  net.Finalize();
  return net;
}

}  // namespace dita
