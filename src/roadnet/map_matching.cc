#include "roadnet/map_matching.h"

#include <algorithm>
#include <limits>

namespace dita {

Result<MatchedTrajectory> MatchTrajectory(const RoadNetwork& network,
                                          const Trajectory& t,
                                          const MapMatchOptions& options) {
  if (t.empty()) return Status::InvalidArgument("empty trajectory");
  if (network.NumEdges() == 0) return Status::InvalidArgument("empty network");
  if (options.candidates_per_point == 0) {
    return Status::InvalidArgument("need at least one candidate per point");
  }

  // Per-point candidate sets.
  std::vector<std::vector<RoadNetwork::Snap>> candidates(t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    candidates[i] = network.NearestEdges(t[i], options.candidates_per_point);
    if (candidates[i].empty()) {
      return Status::Internal("no candidate edges near a GPS point");
    }
  }

  // Viterbi: cost[i][c] = best total cost ending at candidate c of point i.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> cost(t.size());
  std::vector<std::vector<size_t>> back(t.size());
  cost[0].resize(candidates[0].size());
  back[0].assign(candidates[0].size(), 0);
  for (size_t c = 0; c < candidates[0].size(); ++c) {
    cost[0][c] = candidates[0][c].distance;
  }
  for (size_t i = 1; i < t.size(); ++i) {
    cost[i].assign(candidates[i].size(), kInf);
    back[i].assign(candidates[i].size(), 0);
    for (size_t c = 0; c < candidates[i].size(); ++c) {
      const auto& cur = candidates[i][c];
      for (size_t p = 0; p < candidates[i - 1].size(); ++p) {
        const auto& prev = candidates[i - 1][p];
        double transition = 0.0;
        if (!network.EdgesAdjacent(prev.edge, cur.edge)) {
          transition = options.jump_penalty *
                       PointDistance(prev.position, cur.position);
        }
        const double total = cost[i - 1][p] + cur.distance + transition;
        if (total < cost[i][c]) {
          cost[i][c] = total;
          back[i][c] = p;
        }
      }
    }
  }

  // Backtrack the best final state.
  MatchedTrajectory out;
  out.edges.resize(t.size());
  out.snapped.set_id(t.id());
  out.snapped.mutable_points().resize(t.size());
  size_t best = 0;
  for (size_t c = 1; c < cost.back().size(); ++c) {
    if (cost.back()[c] < cost.back()[best]) best = c;
  }
  double snap_sum = 0.0;
  for (size_t i = t.size(); i-- > 0;) {
    const auto& snap = candidates[i][best];
    out.edges[i] = snap.edge;
    out.snapped.mutable_points()[i] = snap.position;
    snap_sum += snap.distance;
    best = back[i][best];
  }
  out.mean_snap_distance = snap_sum / double(t.size());

  out.route.reserve(out.edges.size());
  for (EdgeId e : out.edges) {
    if (out.route.empty() || out.route.back() != e) out.route.push_back(e);
  }
  return out;
}

double RouteOverlap(const std::vector<EdgeId>& a, const std::vector<EdgeId>& b) {
  if (a.empty() || b.empty()) return 0.0;
  // Classic LCS DP over segment ids.
  std::vector<size_t> prev(b.size() + 1, 0);
  std::vector<size_t> row(b.size() + 1, 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a[i - 1] == b[j - 1]) {
        row[j] = prev[j - 1] + 1;
      } else {
        row[j] = std::max(prev[j], row[j - 1]);
      }
    }
    std::swap(prev, row);
  }
  const size_t lcs = prev[b.size()];
  return double(lcs) / double(std::min(a.size(), b.size()));
}

}  // namespace dita
