#ifndef DITA_ROADNET_NETWORK_TRIPS_H_
#define DITA_ROADNET_NETWORK_TRIPS_H_

#include "roadnet/road_network.h"
#include "workload/dataset.h"

namespace dita {

/// Generates trips that actually drive the road network: each trip is the
/// shortest path between two random intersections, sampled along the road at
/// roughly `sample_spacing`, with GPS noise. The ground-truth node path is
/// returned alongside, so map-matching accuracy is measurable.
struct NetworkTripOptions {
  size_t num_trips = 100;
  /// Distance between consecutive GPS samples along the route.
  double sample_spacing = 0.002;
  /// Per-point GPS noise (std dev).
  double gps_noise = 0.00005;
  /// Minimum network hops between trip endpoints.
  size_t min_hops = 3;
  uint64_t seed = 3;
};

struct NetworkTrips {
  Dataset trips;
  /// Ground-truth node path per trip, parallel to `trips`.
  std::vector<std::vector<NodeId>> truth_paths;
};

Result<NetworkTrips> GenerateNetworkTrips(const RoadNetwork& network,
                                          const NetworkTripOptions& options);

}  // namespace dita

#endif  // DITA_ROADNET_NETWORK_TRIPS_H_
