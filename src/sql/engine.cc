#include "sql/engine.h"

#include <algorithm>

#include "util/string_util.h"

namespace dita {

std::string SqlResult::ToString(size_t max_rows) const {
  std::string out = StrJoin(columns, " | ") + "\n";
  for (size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    out += StrJoin(rows[i], " | ") + "\n";
  }
  if (rows.size() > max_rows) {
    out += StrFormat("... (%zu rows total)\n", rows.size());
  }
  return out;
}

SqlEngine::SqlEngine(std::shared_ptr<Cluster> cluster,
                     const DitaConfig& default_config)
    : cluster_(std::move(cluster)), default_config_(default_config) {}

Status SqlEngine::RegisterTable(const std::string& name, Dataset data) {
  if (name.empty()) return Status::InvalidArgument("empty table name");
  Table table;
  table.data = std::move(data);
  tables_[StrToUpper(name)] = std::move(table);
  return Status::OK();
}

Status SqlEngine::BindTrajectory(const std::string& name, Trajectory trajectory) {
  if (trajectory.size() < 2) {
    return Status::InvalidArgument("query trajectory needs at least 2 points");
  }
  parameters_[StrToUpper(name)] = std::move(trajectory);
  return Status::OK();
}

std::vector<std::string> SqlEngine::TableNames() const {
  std::vector<std::string> names;
  for (const auto& [name, _] : tables_) names.push_back(name);
  return names;
}

Result<SqlEngine::Table*> SqlEngine::FindTable(const std::string& name) {
  auto it = tables_.find(StrToUpper(name));
  if (it == tables_.end()) return Status::NotFound("no such table: " + name);
  return &it->second;
}

Result<Trajectory> SqlEngine::ResolveQuery(
    const std::variant<TrajectoryLiteral, TrajectoryParam>& q) const {
  if (const auto* lit = std::get_if<TrajectoryLiteral>(&q)) {
    return Trajectory(-1, lit->points);
  }
  const auto& param = std::get<TrajectoryParam>(q);
  auto it = parameters_.find(StrToUpper(param.name));
  if (it == parameters_.end()) {
    return Status::NotFound("unbound query trajectory: @" + param.name);
  }
  return it->second;
}

Result<std::shared_ptr<DitaEngine>> SqlEngine::EngineFor(Table* table,
                                                         DistanceType distance) {
  auto it = table->engines.find(distance);
  if (it != table->engines.end()) return it->second;
  DitaConfig config = default_config_;
  config.distance = distance;
  auto engine = std::make_shared<DitaEngine>(cluster_, config);
  DITA_RETURN_IF_ERROR(engine->BuildIndex(table->data));
  table->engines[distance] = engine;
  return engine;
}

Result<SqlResult> SqlEngine::Execute(const std::string& sql) {
  auto stmt = ParseSql(sql);
  DITA_RETURN_IF_ERROR(stmt.status());

  if (std::holds_alternative<ShowTablesStatement>(*stmt)) {
    SqlResult result;
    result.columns = {"table"};
    for (const auto& name : TableNames()) result.rows.push_back({name});
    return result;
  }

  if (const auto* create = std::get_if<CreateIndexStatement>(&*stmt)) {
    auto table = FindTable(create->table);
    DITA_RETURN_IF_ERROR(table.status());
    auto engine = EngineFor(*table, default_config_.distance);
    DITA_RETURN_IF_ERROR(engine.status());
    SqlResult result;
    result.columns = {"status"};
    result.rows.push_back({StrFormat(
        "index %s created on %s (%zu partitions, %s local, %s global)",
        create->index_name.c_str(), create->table.c_str(),
        (*engine)->index_stats().num_partitions,
        HumanBytes(double((*engine)->index_stats().local_index_bytes)).c_str(),
        HumanBytes(double((*engine)->index_stats().global_index_bytes)).c_str())});
    result.seconds = (*engine)->index_stats().build_seconds;
    return result;
  }

  if (const auto* knn = std::get_if<KnnStatement>(&*stmt)) {
    auto table = FindTable(knn->table);
    DITA_RETURN_IF_ERROR(table.status());
    auto type = ParseDistanceType(knn->function);
    DITA_RETURN_IF_ERROR(type.status());
    auto engine = EngineFor(*table, *type);
    DITA_RETURN_IF_ERROR(engine.status());
    auto query = ResolveQuery(knn->query);
    DITA_RETURN_IF_ERROR(query.status());

    QueryRequest req;
    req.kind = QueryKind::kKnnSearch;
    req.query = std::move(*query);
    req.k = knn->k;
    auto res = (*engine)->Execute(req);
    DITA_RETURN_IF_ERROR(res.status());
    SqlResult result;
    result.columns = {"trajectory_id", "distance"};
    for (const auto& [id, d] : res->neighbors) {
      result.rows.push_back(
          {StrFormat("%lld", static_cast<long long>(id)), StrFormat("%g", d)});
    }
    result.seconds = res->search_stats.makespan_seconds;
    return result;
  }

  if (const auto* search = std::get_if<SearchStatement>(&*stmt)) {
    auto table = FindTable(search->table);
    DITA_RETURN_IF_ERROR(table.status());
    auto type = ParseDistanceType(search->function);
    DITA_RETURN_IF_ERROR(type.status());
    auto engine = EngineFor(*table, *type);
    DITA_RETURN_IF_ERROR(engine.status());

    auto resolved = ResolveQuery(search->query);
    DITA_RETURN_IF_ERROR(resolved.status());

    QueryRequest req;
    req.kind = QueryKind::kSearch;
    req.query = std::move(*resolved);
    req.tau = search->threshold;
    auto res = (*engine)->Execute(req);
    DITA_RETURN_IF_ERROR(res.status());
    SqlResult result;
    result.columns = {"trajectory_id"};
    for (TrajectoryId id : res->ids) {
      result.rows.push_back({StrFormat("%lld", static_cast<long long>(id))});
    }
    result.seconds = res->search_stats.makespan_seconds;
    return result;
  }

  const auto& join = std::get<JoinStatement>(*stmt);
  auto left = FindTable(join.left_table);
  DITA_RETURN_IF_ERROR(left.status());
  auto right = FindTable(join.right_table);
  DITA_RETURN_IF_ERROR(right.status());
  auto type = ParseDistanceType(join.function);
  DITA_RETURN_IF_ERROR(type.status());
  auto left_engine = EngineFor(*left, *type);
  DITA_RETURN_IF_ERROR(left_engine.status());
  auto right_engine = EngineFor(*right, *type);
  DITA_RETURN_IF_ERROR(right_engine.status());

  QueryRequest req;
  req.kind = QueryKind::kJoin;
  req.join_right = right_engine->get();
  req.tau = join.threshold;
  auto res = (*left_engine)->Execute(req);
  DITA_RETURN_IF_ERROR(res.status());
  SqlResult result;
  result.columns = {StrToUpper(join.left_table) + ".id",
                    StrToUpper(join.right_table) + ".id"};
  for (const auto& [a, b] : res->pairs) {
    result.rows.push_back({StrFormat("%lld", static_cast<long long>(a)),
                           StrFormat("%lld", static_cast<long long>(b))});
  }
  result.seconds = res->join_stats.makespan_seconds;
  return result;
}

}  // namespace dita
