#include "sql/parser.h"

#include <algorithm>

#include "sql/lexer.h"
#include "util/string_util.h"

namespace dita {

namespace {

/// Recursive-descent cursor over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> Parse() {
    if (PeekKeyword("SELECT")) return ParseSelect();
    if (PeekKeyword("CREATE")) return ParseCreateIndex();
    if (PeekKeyword("SHOW")) return ParseShowTables();
    return Err("expected SELECT, CREATE, or SHOW");
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[i];
  }
  void Advance() { if (pos_ + 1 < tokens_.size()) ++pos_; }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == Token::Kind::kIdent && Peek().upper == kw;
  }
  bool PeekPunct(const char* p) const {
    return Peek().kind == Token::Kind::kPunct && Peek().text == p;
  }

  Status Err(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("parse error at offset %zu: %s (near '%s')", Peek().offset,
                  what.c_str(), Peek().text.c_str()));
  }

  Status ExpectKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return Err(StrFormat("expected %s", kw));
    Advance();
    return Status::OK();
  }
  Status ExpectPunct(const char* p) {
    if (!PeekPunct(p)) return Err(StrFormat("expected '%s'", p));
    Advance();
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != Token::Kind::kIdent) return Err("expected identifier");
    std::string name = Peek().text;
    Advance();
    return name;
  }
  Result<double> ExpectNumber() {
    if (Peek().kind != Token::Kind::kNumber) return Err("expected a number");
    const double v = Peek().number;
    Advance();
    return v;
  }

  Status ExpectStatementEnd() {
    if (PeekPunct(";")) Advance();
    if (Peek().kind != Token::Kind::kEnd) return Err("trailing input");
    return Status::OK();
  }

  /// `<=` (two punct tokens).
  Status ExpectLessEqual() {
    DITA_RETURN_IF_ERROR(ExpectPunct("<"));
    return ExpectPunct("=");
  }

  /// `[(x,y),(x,y),...]`
  Result<TrajectoryLiteral> ParseTrajectoryLiteral() {
    TrajectoryLiteral lit;
    DITA_RETURN_IF_ERROR(ExpectPunct("["));
    while (true) {
      DITA_RETURN_IF_ERROR(ExpectPunct("("));
      auto x = ExpectNumber();
      DITA_RETURN_IF_ERROR(x.status());
      DITA_RETURN_IF_ERROR(ExpectPunct(","));
      auto y = ExpectNumber();
      DITA_RETURN_IF_ERROR(y.status());
      DITA_RETURN_IF_ERROR(ExpectPunct(")"));
      lit.points.push_back(Point{*x, *y});
      if (PeekPunct(",")) {
        Advance();
        continue;
      }
      break;
    }
    DITA_RETURN_IF_ERROR(ExpectPunct("]"));
    if (lit.points.size() < 2) {
      return Err("trajectory literal needs at least 2 points");
    }
    return lit;
  }

  Result<Statement> ParseSelect() {
    DITA_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    DITA_RETURN_IF_ERROR(ExpectPunct("*"));
    DITA_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto table = ExpectIdent();
    DITA_RETURN_IF_ERROR(table.status());

    // TRA-JOIN lexes as TRA '-' JOIN.
    if (PeekKeyword("TRA") && Peek(1).text == "-" &&
        Peek(2).kind == Token::Kind::kIdent && Peek(2).upper == "JOIN") {
      Advance();
      Advance();
      Advance();
      JoinStatement join;
      join.left_table = *table;
      auto right = ExpectIdent();
      DITA_RETURN_IF_ERROR(right.status());
      join.right_table = *right;
      DITA_RETURN_IF_ERROR(ExpectKeyword("ON"));
      auto func = ExpectIdent();
      DITA_RETURN_IF_ERROR(func.status());
      join.function = *func;
      DITA_RETURN_IF_ERROR(ExpectPunct("("));
      auto l = ExpectIdent();
      DITA_RETURN_IF_ERROR(l.status());
      DITA_RETURN_IF_ERROR(ExpectPunct(","));
      auto r = ExpectIdent();
      DITA_RETURN_IF_ERROR(r.status());
      DITA_RETURN_IF_ERROR(ExpectPunct(")"));
      if (StrToUpper(*l) != StrToUpper(join.left_table) ||
          StrToUpper(*r) != StrToUpper(join.right_table)) {
        return Err("TRA-JOIN predicate must reference the joined tables");
      }
      DITA_RETURN_IF_ERROR(ExpectLessEqual());
      auto tau = ExpectNumber();
      DITA_RETURN_IF_ERROR(tau.status());
      join.threshold = *tau;
      DITA_RETURN_IF_ERROR(ExpectStatementEnd());
      return Statement(join);
    }

    // SELECT * FROM t ORDER BY f(t, q) LIMIT k — kNN.
    if (PeekKeyword("ORDER")) {
      Advance();
      DITA_RETURN_IF_ERROR(ExpectKeyword("BY"));
      KnnStatement knn;
      knn.table = *table;
      DITA_RETURN_IF_ERROR(ParsePredicateHead(knn.table, &knn.function,
                                              &knn.query));
      DITA_RETURN_IF_ERROR(ExpectKeyword("LIMIT"));
      auto k = ExpectNumber();
      DITA_RETURN_IF_ERROR(k.status());
      if (*k < 1 || *k != static_cast<double>(static_cast<size_t>(*k))) {
        return Err("LIMIT must be a positive integer");
      }
      knn.k = static_cast<size_t>(*k);
      DITA_RETURN_IF_ERROR(ExpectStatementEnd());
      return Statement(knn);
    }

    DITA_RETURN_IF_ERROR(ExpectKeyword("WHERE"));
    SearchStatement search;
    search.table = *table;
    DITA_RETURN_IF_ERROR(ParsePredicateHead(search.table, &search.function,
                                            &search.query));
    DITA_RETURN_IF_ERROR(ExpectLessEqual());
    auto tau = ExpectNumber();
    DITA_RETURN_IF_ERROR(tau.status());
    search.threshold = *tau;
    DITA_RETURN_IF_ERROR(ExpectStatementEnd());
    return Statement(search);
  }

  /// Parses `f(table, <literal or @param>)`, validating the table reference.
  Status ParsePredicateHead(
      const std::string& table, std::string* function,
      std::variant<TrajectoryLiteral, TrajectoryParam>* query) {
    auto func = ExpectIdent();
    DITA_RETURN_IF_ERROR(func.status());
    *function = *func;
    DITA_RETURN_IF_ERROR(ExpectPunct("("));
    auto t = ExpectIdent();
    DITA_RETURN_IF_ERROR(t.status());
    if (StrToUpper(*t) != StrToUpper(table)) {
      return Err("predicate must reference the selected table");
    }
    DITA_RETURN_IF_ERROR(ExpectPunct(","));
    if (PeekPunct("@")) {
      Advance();
      auto name = ExpectIdent();
      DITA_RETURN_IF_ERROR(name.status());
      *query = TrajectoryParam{*name};
    } else {
      auto lit = ParseTrajectoryLiteral();
      DITA_RETURN_IF_ERROR(lit.status());
      *query = *lit;
    }
    return ExpectPunct(")");
  }

  Result<Statement> ParseCreateIndex() {
    DITA_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    DITA_RETURN_IF_ERROR(ExpectKeyword("INDEX"));
    CreateIndexStatement stmt;
    auto name = ExpectIdent();
    DITA_RETURN_IF_ERROR(name.status());
    stmt.index_name = *name;
    DITA_RETURN_IF_ERROR(ExpectKeyword("ON"));
    auto table = ExpectIdent();
    DITA_RETURN_IF_ERROR(table.status());
    stmt.table = *table;
    DITA_RETURN_IF_ERROR(ExpectKeyword("USE"));
    DITA_RETURN_IF_ERROR(ExpectKeyword("TRIE"));
    DITA_RETURN_IF_ERROR(ExpectStatementEnd());
    return Statement(stmt);
  }

  Result<Statement> ParseShowTables() {
    DITA_RETURN_IF_ERROR(ExpectKeyword("SHOW"));
    DITA_RETURN_IF_ERROR(ExpectKeyword("TABLES"));
    DITA_RETURN_IF_ERROR(ExpectStatementEnd());
    return Statement(ShowTablesStatement{});
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<Statement> ParseSql(const std::string& sql) {
  auto tokens = LexSql(sql);
  DITA_RETURN_IF_ERROR(tokens.status());
  Parser parser(std::move(*tokens));
  return parser.Parse();
}

}  // namespace dita
