#ifndef DITA_SQL_LEXER_H_
#define DITA_SQL_LEXER_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace dita {

/// A token of the extended-SQL dialect (§3).
struct Token {
  enum class Kind {
    kIdent,    // table / function / index names; keywords are upper-cased idents
    kNumber,   // double literal, optionally signed
    kPunct,    // ( ) [ ] , * = < > @ - ;
    kEnd,
  };
  Kind kind = Kind::kEnd;
  std::string text;   // original text (idents preserve case in `text`)
  std::string upper;  // upper-cased text for keyword comparison
  double number = 0.0;
  size_t offset = 0;  // byte offset in the statement, for error messages
};

/// Tokenizes one SQL statement. `-` directly followed by a digit starts a
/// negative number; otherwise it is punctuation (so `TRA-JOIN` lexes as
/// three tokens the parser reassembles).
Result<std::vector<Token>> LexSql(const std::string& sql);

}  // namespace dita

#endif  // DITA_SQL_LEXER_H_
