#ifndef DITA_SQL_DATAFRAME_H_
#define DITA_SQL_DATAFRAME_H_

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/engine.h"
#include "serving/service.h"
#include "workload/dataset.h"

namespace dita {

/// The procedural counterpart of the SQL interface (§3 "DataFrame"): a
/// trajectory collection with chainable analytics methods, in the spirit of
/// Spark's DataFrame API. Queries are routed through a long-lived
/// DitaService per distance function, so a DataFrame is mutable: Insert and
/// Delete stream into the service's delta buffers and epoch merges fold
/// them into the indexes in the background of further queries.
///
///   DataFrameContext ctx(cluster, config);
///   DataFrame taxis = ctx.CreateDataFrame(dataset).CreateTrieIndex();
///   auto hits  = taxis.SimilaritySearch(q, "dtw", 0.005);
///   auto pairs = taxis.TraJoin(taxis, "dtw", 0.005);
///   taxis.Insert(new_trip);   // visible to the next query
class DataFrame;

class DataFrameContext {
 public:
  DataFrameContext(std::shared_ptr<Cluster> cluster, const DitaConfig& config)
      : cluster_(std::move(cluster)), config_(config) {}

  DataFrame CreateDataFrame(Dataset data);

  const std::shared_ptr<Cluster>& cluster() const { return cluster_; }
  const DitaConfig& config() const { return config_; }

 private:
  std::shared_ptr<Cluster> cluster_;
  DitaConfig config_;
};

class DataFrame {
 public:
  /// Eagerly builds the index (and starts the serving runtime) for
  /// `function` (default: the context's configured distance). Without this
  /// call, analytics methods build lazily on first use.
  DataFrame& CreateTrieIndex(const std::string& function = "");

  /// All trajectory ids within `tau` of `query` under `function`.
  Result<std::vector<TrajectoryId>> SimilaritySearch(
      const Trajectory& query, const std::string& function, double tau,
      DitaEngine::QueryStats* stats = nullptr);

  /// Similarity join against `other` (may be *this).
  Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> TraJoin(
      DataFrame& other, const std::string& function, double tau,
      DitaEngine::JoinStats* stats = nullptr);

  /// The k nearest trajectories to `query` as (id, distance) pairs.
  Result<std::vector<std::pair<TrajectoryId, double>>> KnnSearch(
      const Trajectory& query, const std::string& function, size_t k);

  /// Streaming ingest: the trajectory becomes visible to the next query on
  /// every distance function's service (and to services built later).
  Status Insert(const Trajectory& t);
  Status Delete(TrajectoryId id);

  /// EXPLAIN for the most recent SimilaritySearch on any copy of this
  /// DataFrame: filter-funnel table, a one-line summary, and — once the
  /// DataFrame has mutated — the epoch the query ran against. Empty string
  /// if no search ran yet.
  std::string ExplainLastQuery() const;

  /// EXPLAIN for the most recent TraJoin where this DataFrame was the left
  /// side. Empty string if no join ran yet.
  std::string ExplainLastJoin() const;

  size_t size() const { return state_->data.size(); }
  const Dataset& dataset() const { return state_->data; }

  /// The serving runtime backing `function` (built on demand); tests and
  /// dashboards read scheduler / epoch counters from it.
  Result<std::shared_ptr<DitaService>> Service(const std::string& function = "");

 private:
  friend class DataFrameContext;

  /// Shared so DataFrame stays cheap to copy, like Spark's handle semantics.
  struct State {
    DataFrameContext* context = nullptr;
    Dataset data;
    std::map<DistanceType, std::shared_ptr<DitaService>> services;
    /// Stats of the newest search/join, kept for ExplainLast*(). DataFrame
    /// calls always collect stats — it is the convenience API, and the
    /// collection cost is one funnel per operation, not per candidate.
    DitaEngine::QueryStats last_query_stats;
    QueryResult::ServingInfo last_query_serving;
    bool has_last_query = false;
    DitaEngine::JoinStats last_join_stats;
    QueryResult::ServingInfo last_join_serving;
    bool has_last_join = false;
  };

  explicit DataFrame(std::shared_ptr<State> state) : state_(std::move(state)) {}

  Result<std::shared_ptr<DitaService>> ServiceFor(const std::string& function);

  std::shared_ptr<State> state_;
};

}  // namespace dita

#endif  // DITA_SQL_DATAFRAME_H_
