#include "sql/dataframe.h"

#include "util/logging.h"

namespace dita {

DataFrame DataFrameContext::CreateDataFrame(Dataset data) {
  auto state = std::make_shared<DataFrame::State>();
  state->context = this;
  state->data = std::move(data);
  return DataFrame(std::move(state));
}

Result<std::shared_ptr<DitaEngine>> DataFrame::EngineFor(
    const std::string& function) {
  DistanceType type = state_->context->config().distance;
  if (!function.empty()) {
    auto parsed = ParseDistanceType(function);
    DITA_RETURN_IF_ERROR(parsed.status());
    type = *parsed;
  }
  auto it = state_->engines.find(type);
  if (it != state_->engines.end()) return it->second;
  DitaConfig config = state_->context->config();
  config.distance = type;
  auto engine =
      std::make_shared<DitaEngine>(state_->context->cluster(), config);
  DITA_RETURN_IF_ERROR(engine->BuildIndex(state_->data));
  state_->engines[type] = engine;
  return engine;
}

DataFrame& DataFrame::CreateTrieIndex(const std::string& function) {
  auto engine = EngineFor(function);
  if (!engine.ok()) {
    DITA_LOG(kError) << "CreateTrieIndex failed: "
                     << engine.status().ToString();
  }
  return *this;
}

Result<std::vector<TrajectoryId>> DataFrame::SimilaritySearch(
    const Trajectory& query, const std::string& function, double tau,
    DitaEngine::QueryStats* stats) {
  auto engine = EngineFor(function);
  DITA_RETURN_IF_ERROR(engine.status());
  return (*engine)->Search(query, tau, stats);
}

Result<std::vector<std::pair<TrajectoryId, double>>> DataFrame::KnnSearch(
    const Trajectory& query, const std::string& function, size_t k) {
  auto engine = EngineFor(function);
  DITA_RETURN_IF_ERROR(engine.status());
  return (*engine)->KnnSearch(query, k);
}

Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> DataFrame::TraJoin(
    DataFrame& other, const std::string& function, double tau,
    DitaEngine::JoinStats* stats) {
  auto left = EngineFor(function);
  DITA_RETURN_IF_ERROR(left.status());
  auto right = other.EngineFor(function);
  DITA_RETURN_IF_ERROR(right.status());
  return (*left)->Join(**right, tau, stats);
}

}  // namespace dita
