#include "sql/dataframe.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace dita {

DataFrame DataFrameContext::CreateDataFrame(Dataset data) {
  auto state = std::make_shared<DataFrame::State>();
  state->context = this;
  state->data = std::move(data);
  return DataFrame(std::move(state));
}

Result<std::shared_ptr<DitaService>> DataFrame::ServiceFor(
    const std::string& function) {
  DistanceType type = state_->context->config().distance;
  if (!function.empty()) {
    auto parsed = ParseDistanceType(function);
    DITA_RETURN_IF_ERROR(parsed.status());
    type = *parsed;
  }
  auto it = state_->services.find(type);
  if (it != state_->services.end()) return it->second;
  DitaConfig config = state_->context->config();
  config.distance = type;
  // DataFrame is the deterministic convenience layer: merges run inline in
  // the ingest call that crossed the threshold, so a query issued right
  // after an Insert always sees a settled snapshot.
  config.serving.synchronous_merge = true;
  auto service =
      std::make_shared<DitaService>(state_->context->cluster(), config);
  DITA_RETURN_IF_ERROR(service->Start(state_->data));
  state_->services[type] = service;
  return service;
}

Result<std::shared_ptr<DitaService>> DataFrame::Service(
    const std::string& function) {
  return ServiceFor(function);
}

DataFrame& DataFrame::CreateTrieIndex(const std::string& function) {
  auto service = ServiceFor(function);
  if (!service.ok()) {
    DITA_LOG(kError) << "CreateTrieIndex failed: "
                     << service.status().ToString();
  }
  return *this;
}

Result<std::vector<TrajectoryId>> DataFrame::SimilaritySearch(
    const Trajectory& query, const std::string& function, double tau,
    DitaEngine::QueryStats* stats) {
  auto service = ServiceFor(function);
  DITA_RETURN_IF_ERROR(service.status());
  QueryRequest req;
  req.kind = QueryKind::kSearch;
  req.query = query;
  req.tau = tau;
  auto result = (*service)->Execute(req);
  DITA_RETURN_IF_ERROR(result.status());
  if (stats != nullptr) *stats = result->search_stats;
  state_->last_query_stats = std::move(result->search_stats);
  state_->last_query_serving = result->serving;
  state_->has_last_query = true;
  return std::move(result->ids);
}

Result<std::vector<std::pair<TrajectoryId, double>>> DataFrame::KnnSearch(
    const Trajectory& query, const std::string& function, size_t k) {
  auto service = ServiceFor(function);
  DITA_RETURN_IF_ERROR(service.status());
  QueryRequest req;
  req.kind = QueryKind::kKnnSearch;
  req.query = query;
  req.k = k;
  auto result = (*service)->Execute(req);
  DITA_RETURN_IF_ERROR(result.status());
  return std::move(result->neighbors);
}

Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> DataFrame::TraJoin(
    DataFrame& other, const std::string& function, double tau,
    DitaEngine::JoinStats* stats) {
  auto left = ServiceFor(function);
  DITA_RETURN_IF_ERROR(left.status());
  auto right = other.ServiceFor(function);
  DITA_RETURN_IF_ERROR(right.status());
  QueryRequest req;
  req.kind = QueryKind::kJoin;
  req.tau = tau;
  req.join_right_service = right->get();
  auto result = (*left)->Execute(req);
  DITA_RETURN_IF_ERROR(result.status());
  if (stats != nullptr) *stats = result->join_stats;
  state_->last_join_stats = std::move(result->join_stats);
  state_->last_join_serving = result->serving;
  state_->has_last_join = true;
  return std::move(result->pairs);
}

Status DataFrame::Insert(const Trajectory& t) {
  if (t.size() < 2) {
    return Status::InvalidArgument(
        "DITA requires trajectories with at least 2 points");
  }
  for (const Trajectory& existing : state_->data.trajectories()) {
    if (existing.id() == t.id()) {
      return Status::InvalidArgument("trajectory id is already live");
    }
  }
  // Existing services first (they re-validate); the raw dataset — the seed
  // for services built later — follows only once every service accepted.
  for (auto& [type, service] : state_->services) {
    DITA_RETURN_IF_ERROR(service->Insert(t));
  }
  state_->data.Add(t);
  return Status::OK();
}

Status DataFrame::Delete(TrajectoryId id) {
  auto& rows = state_->data.mutable_trajectories();
  const auto it = std::find_if(rows.begin(), rows.end(), [id](const Trajectory& t) {
    return t.id() == id;
  });
  if (it == rows.end()) return Status::NotFound("trajectory id is not live");
  for (auto& [type, service] : state_->services) {
    DITA_RETURN_IF_ERROR(service->Delete(id));
  }
  rows.erase(it);
  return Status::OK();
}

std::string DataFrame::ExplainLastQuery() const {
  if (!state_->has_last_query) return "";
  const DitaEngine::QueryStats& s = state_->last_query_stats;
  const QueryResult::ServingInfo& serving = state_->last_query_serving;
  std::ostringstream out;
  out << "== Similarity search ==\n"
      << s.funnel.ToTable() << "partitions probed: " << s.partitions_probed
      << ", candidates: " << s.candidates << ", results: " << s.results
      << ", makespan: " << s.makespan_seconds << "s\n";
  if (serving.epoch > 0 || serving.delta_scanned > 0 ||
      serving.deleted_filtered > 0) {
    out << "epoch: " << serving.epoch << ", delta scanned: "
        << serving.delta_scanned << ", delta matched: "
        << serving.delta_matches << ", deleted filtered: "
        << serving.deleted_filtered << "\n";
  }
  return out.str();
}

std::string DataFrame::ExplainLastJoin() const {
  if (!state_->has_last_join) return "";
  const DitaEngine::JoinStats& s = state_->last_join_stats;
  const QueryResult::ServingInfo& serving = state_->last_join_serving;
  std::ostringstream out;
  out << "== Trajectory join ==\n"
      << s.funnel.ToTable() << "graph edges: " << s.graph_edges
      << ", divided partitions: " << s.divided_partitions
      << ", bytes shipped: " << s.bytes_shipped
      << ", result pairs: " << s.result_pairs
      << ", makespan: " << s.makespan_seconds << "s\n";
  if (serving.epoch > 0 || serving.delta_scanned > 0 ||
      serving.deleted_filtered > 0) {
    out << "epoch: " << serving.epoch << ", delta scanned: "
        << serving.delta_scanned << ", delta matched: "
        << serving.delta_matches << ", deleted filtered: "
        << serving.deleted_filtered << "\n";
  }
  return out.str();
}

}  // namespace dita
