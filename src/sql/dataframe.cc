#include "sql/dataframe.h"

#include <sstream>

#include "util/logging.h"

namespace dita {

DataFrame DataFrameContext::CreateDataFrame(Dataset data) {
  auto state = std::make_shared<DataFrame::State>();
  state->context = this;
  state->data = std::move(data);
  return DataFrame(std::move(state));
}

Result<std::shared_ptr<DitaEngine>> DataFrame::EngineFor(
    const std::string& function) {
  DistanceType type = state_->context->config().distance;
  if (!function.empty()) {
    auto parsed = ParseDistanceType(function);
    DITA_RETURN_IF_ERROR(parsed.status());
    type = *parsed;
  }
  auto it = state_->engines.find(type);
  if (it != state_->engines.end()) return it->second;
  DitaConfig config = state_->context->config();
  config.distance = type;
  auto engine =
      std::make_shared<DitaEngine>(state_->context->cluster(), config);
  DITA_RETURN_IF_ERROR(engine->BuildIndex(state_->data));
  state_->engines[type] = engine;
  return engine;
}

DataFrame& DataFrame::CreateTrieIndex(const std::string& function) {
  auto engine = EngineFor(function);
  if (!engine.ok()) {
    DITA_LOG(kError) << "CreateTrieIndex failed: "
                     << engine.status().ToString();
  }
  return *this;
}

Result<std::vector<TrajectoryId>> DataFrame::SimilaritySearch(
    const Trajectory& query, const std::string& function, double tau,
    DitaEngine::QueryStats* stats) {
  auto engine = EngineFor(function);
  DITA_RETURN_IF_ERROR(engine.status());
  DitaEngine::QueryStats local;
  auto result = (*engine)->Search(query, tau, stats != nullptr ? stats : &local);
  if (result.ok()) {
    state_->last_query_stats = stats != nullptr ? *stats : local;
    state_->has_last_query = true;
  }
  return result;
}

Result<std::vector<std::pair<TrajectoryId, double>>> DataFrame::KnnSearch(
    const Trajectory& query, const std::string& function, size_t k) {
  auto engine = EngineFor(function);
  DITA_RETURN_IF_ERROR(engine.status());
  return (*engine)->KnnSearch(query, k);
}

Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> DataFrame::TraJoin(
    DataFrame& other, const std::string& function, double tau,
    DitaEngine::JoinStats* stats) {
  auto left = EngineFor(function);
  DITA_RETURN_IF_ERROR(left.status());
  auto right = other.EngineFor(function);
  DITA_RETURN_IF_ERROR(right.status());
  DitaEngine::JoinStats local;
  auto result = (*left)->Join(**right, tau, stats != nullptr ? stats : &local);
  if (result.ok()) {
    state_->last_join_stats = stats != nullptr ? *stats : local;
    state_->has_last_join = true;
  }
  return result;
}

std::string DataFrame::ExplainLastQuery() const {
  if (!state_->has_last_query) return "";
  const DitaEngine::QueryStats& s = state_->last_query_stats;
  std::ostringstream out;
  out << "== Similarity search ==\n"
      << s.funnel.ToTable() << "partitions probed: " << s.partitions_probed
      << ", candidates: " << s.candidates << ", results: " << s.results
      << ", makespan: " << s.makespan_seconds << "s\n";
  return out.str();
}

std::string DataFrame::ExplainLastJoin() const {
  if (!state_->has_last_join) return "";
  const DitaEngine::JoinStats& s = state_->last_join_stats;
  std::ostringstream out;
  out << "== Trajectory join ==\n"
      << s.funnel.ToTable() << "graph edges: " << s.graph_edges
      << ", divided partitions: " << s.divided_partitions
      << ", bytes shipped: " << s.bytes_shipped
      << ", result pairs: " << s.result_pairs
      << ", makespan: " << s.makespan_seconds << "s\n";
  return out.str();
}

}  // namespace dita
