#include "sql/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace dita {

Result<std::vector<Token>> LexSql(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    const char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(sql[j])) ||
                       sql[j] == '_')) {
        ++j;
      }
      tok.kind = Token::Kind::kIdent;
      tok.text = sql.substr(i, j - i);
      tok.upper = StrToUpper(tok.text);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
               (c == '-' && i + 1 < n &&
                (std::isdigit(static_cast<unsigned char>(sql[i + 1])) ||
                 sql[i + 1] == '.'))) {
      char* end = nullptr;
      tok.kind = Token::Kind::kNumber;
      tok.number = std::strtod(sql.c_str() + i, &end);
      const size_t len = static_cast<size_t>(end - (sql.c_str() + i));
      if (len == 0) {
        return Status::InvalidArgument(
            StrFormat("bad number at offset %zu", i));
      }
      tok.text = sql.substr(i, len);
      tok.upper = tok.text;
      i += len;
    } else if (std::string("()[],*=<>@-;").find(c) != std::string::npos) {
      tok.kind = Token::Kind::kPunct;
      tok.text = std::string(1, c);
      tok.upper = tok.text;
      ++i;
    } else {
      return Status::InvalidArgument(
          StrFormat("unexpected character '%c' at offset %zu", c, i));
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = Token::Kind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace dita
