#ifndef DITA_SQL_ENGINE_H_
#define DITA_SQL_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "core/engine.h"
#include "sql/parser.h"
#include "workload/dataset.h"

namespace dita {

/// Tabular result of a SQL statement. Trajectory ids are returned as rows;
/// metadata statements return string rows.
struct SqlResult {
  std::vector<std::string> columns;
  std::vector<std::vector<std::string>> rows;
  /// Virtual cluster time consumed by the statement (cost-model makespan).
  double seconds = 0.0;

  std::string ToString(size_t max_rows = 20) const;
};

/// The SQL front-end: a catalog of named trajectory tables, per-table DITA
/// engines (created by CREATE INDEX, or on demand), and an executor for the
/// parsed statements. Mirrors the paper's Spark SQL integration at the
/// interface level (§3).
class SqlEngine {
 public:
  SqlEngine(std::shared_ptr<Cluster> cluster, const DitaConfig& default_config);

  /// Registers (or replaces) a table.
  Status RegisterTable(const std::string& name, Dataset data);

  /// Binds a named query trajectory usable as `@name` in WHERE clauses.
  Status BindTrajectory(const std::string& name, Trajectory trajectory);

  /// Parses and executes one statement.
  Result<SqlResult> Execute(const std::string& sql);

  std::vector<std::string> TableNames() const;

 private:
  struct Table {
    Dataset data;
    /// Engines keyed by distance type: the trie layout is shared logic but
    /// each engine pins one similarity function, as DitaConfig does.
    std::map<DistanceType, std::shared_ptr<DitaEngine>> engines;
  };

  /// Upper-cased lookup (SQL identifiers are case-insensitive).
  Result<Table*> FindTable(const std::string& name);

  /// Materializes a literal or bound-parameter query trajectory.
  Result<Trajectory> ResolveQuery(
      const std::variant<TrajectoryLiteral, TrajectoryParam>& q) const;

  /// Returns the table's engine for `distance`, building the index if this
  /// is the first use (CREATE INDEX builds the default one eagerly).
  Result<std::shared_ptr<DitaEngine>> EngineFor(Table* table,
                                                DistanceType distance);

  std::shared_ptr<Cluster> cluster_;
  DitaConfig default_config_;
  std::map<std::string, Table> tables_;          // key: upper-cased name
  std::map<std::string, Trajectory> parameters_;  // key: upper-cased name
};

}  // namespace dita

#endif  // DITA_SQL_ENGINE_H_
