#ifndef DITA_SQL_PARSER_H_
#define DITA_SQL_PARSER_H_

#include <string>
#include <variant>
#include <vector>

#include "geom/trajectory.h"
#include "util/status.h"

namespace dita {

/// AST of DITA's extended SQL (§3). The dialect covers exactly the paper's
/// statements plus a trajectory literal / named-parameter syntax for search
/// queries:
///
///   SELECT * FROM T WHERE DTW(T, [(1,1),(2,2)]) <= 0.005
///   SELECT * FROM T WHERE FRECHET(T, @q) <= 0.005
///   SELECT * FROM T ORDER BY DTW(T, @q) LIMIT 5          -- kNN
///   SELECT * FROM T TRA-JOIN Q ON DTW(T, Q) <= 0.005
///   CREATE INDEX TrieIndex ON T USE TRIE
///   SHOW TABLES

struct TrajectoryLiteral {
  std::vector<Point> points;
};

/// A named query-trajectory parameter, bound via SqlEngine::BindTrajectory.
struct TrajectoryParam {
  std::string name;
};

struct SearchStatement {
  std::string table;
  std::string function;  // distance name, e.g. "DTW"
  std::variant<TrajectoryLiteral, TrajectoryParam> query;
  double threshold = 0.0;
};

/// SELECT * FROM T ORDER BY f(T, @q) LIMIT k — kNN search.
struct KnnStatement {
  std::string table;
  std::string function;
  std::variant<TrajectoryLiteral, TrajectoryParam> query;
  size_t k = 0;
};

struct JoinStatement {
  std::string left_table;
  std::string right_table;
  std::string function;
  double threshold = 0.0;
};

struct CreateIndexStatement {
  std::string index_name;
  std::string table;
};

struct ShowTablesStatement {};

using Statement = std::variant<SearchStatement, KnnStatement, JoinStatement,
                               CreateIndexStatement, ShowTablesStatement>;

/// Parses a single statement (an optional trailing ';' is allowed).
Result<Statement> ParseSql(const std::string& sql);

}  // namespace dita

#endif  // DITA_SQL_PARSER_H_
