#include "cluster/fault_injector.h"

namespace dita {

namespace {

/// splitmix64 finalizer: cheap, well-mixed, and stable across platforms.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

double FaultInjector::UnitHash(uint64_t stage, uint64_t task, uint64_t attempt,
                               uint64_t salt) const {
  uint64_t h = Mix64(plan_.seed ^ Mix64(salt));
  h = Mix64(h ^ Mix64(stage + 1));
  h = Mix64(h ^ Mix64(task + 1));
  h = Mix64(h ^ Mix64(attempt + 1));
  // 53 mantissa bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool FaultInjector::TransientFailure(uint64_t stage, uint64_t task,
                                     uint64_t attempt) const {
  if (plan_.transient_failure_prob <= 0.0) return false;
  return UnitHash(stage, task, attempt, 0x7261696c) <  // "rail"
         plan_.transient_failure_prob;
}

bool FaultInjector::IsStraggler(uint64_t stage, uint64_t task) const {
  if (plan_.straggler_prob <= 0.0) return false;
  return UnitHash(stage, task, 0, 0x736c6f77) < plan_.straggler_prob;  // "slow"
}

bool FaultInjector::CrashesWorkerAt(uint64_t stage, uint64_t worker) const {
  return plan_.crash_worker >= 0 && plan_.crash_at_stage >= 0 &&
         worker == static_cast<uint64_t>(plan_.crash_worker) &&
         stage == static_cast<uint64_t>(plan_.crash_at_stage);
}

double FaultInjector::LostWorkFraction(uint64_t stage, uint64_t task,
                                       uint64_t attempt) const {
  // Never exactly 0: a failed attempt always wasted *some* work.
  const double u = UnitHash(stage, task, attempt, 0x6c6f7374);  // "lost"
  return u == 0.0 ? 1.0 : u;
}

}  // namespace dita
