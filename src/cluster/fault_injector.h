#ifndef DITA_CLUSTER_FAULT_INJECTOR_H_
#define DITA_CLUSTER_FAULT_INJECTOR_H_

#include <cstdint>

namespace dita {

/// Declarative description of the faults to inject into a cluster run.
/// Everything is derived from `seed` and stage/task coordinates, never from
/// wall-clock time or thread scheduling, so a fault schedule is perfectly
/// reproducible: the same plan against the same stage sequence injects the
/// same faults.
struct FaultPlan {
  /// Seed of the per-decision hash. Two plans with different seeds produce
  /// independent fault schedules.
  uint64_t seed = 42;

  /// Probability that one task *attempt* fails transiently (a lost executor
  /// heartbeat, a fetch failure). Failed attempts are retried by the cluster
  /// up to ClusterConfig::max_task_attempts.
  double transient_failure_prob = 0.0;

  /// Permanent crash of worker `crash_worker` when stage counter
  /// `crash_at_stage` starts (-1 disables). The worker is blacklisted; its
  /// tasks and partitions are recovered on survivors.
  int64_t crash_worker = -1;
  int64_t crash_at_stage = -1;

  /// Probability that a task runs on a degraded ("straggler") node, and the
  /// virtual-time slowdown it suffers there. Speculative execution exists to
  /// cut these off the critical path.
  double straggler_prob = 0.0;
  double straggler_multiplier = 4.0;

  bool any_faults() const {
    return transient_failure_prob > 0.0 || crash_worker >= 0 ||
           straggler_prob > 0.0;
  }
};

/// Deterministic fault oracle: pure functions of (seed, stage, task,
/// attempt). The cluster consults it during virtual-time accounting; the
/// injector itself never mutates state, so concurrent queries are safe.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  const FaultPlan& plan() const { return plan_; }

  /// Does attempt `attempt` (1-based) of task `task` in stage `stage` fail
  /// transiently?
  bool TransientFailure(uint64_t stage, uint64_t task, uint64_t attempt) const;

  /// Does task `task` of stage `stage` land on a degraded node?
  bool IsStraggler(uint64_t stage, uint64_t task) const;

  /// Does worker `worker` crash permanently when stage `stage` starts?
  bool CrashesWorkerAt(uint64_t stage, uint64_t worker) const;

  /// Fraction of a task's compute that had completed (and is lost) when its
  /// attempt failed or its worker died mid-flight. Deterministic in (0, 1].
  double LostWorkFraction(uint64_t stage, uint64_t task,
                          uint64_t attempt) const;

 private:
  /// Uniform double in [0, 1) from the given coordinates.
  double UnitHash(uint64_t stage, uint64_t task, uint64_t attempt,
                  uint64_t salt) const;

  FaultPlan plan_;
};

}  // namespace dita

#endif  // DITA_CLUSTER_FAULT_INJECTOR_H_
