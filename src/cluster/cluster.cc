#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"
#include "util/timer.h"

namespace dita {

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  DITA_CHECK(config_.num_workers > 0);
  DITA_CHECK(config_.bandwidth_bytes_per_sec > 0);
  stats_.resize(config_.num_workers);
}

Status Cluster::RunStage(std::vector<Task> tasks) {
  for (const Task& t : tasks) {
    if (t.worker >= config_.num_workers) {
      return Status::InvalidArgument("task bound to nonexistent worker");
    }
    if (!t.fn) return Status::InvalidArgument("task without a function");
  }
  const size_t threads =
      config_.execution_threads == 0 ? 1 : config_.execution_threads;
  if (threads == 1) {
    // Fast path: run inline, no pool overhead.
    for (Task& t : tasks) {
      CpuTimer timer;
      t.fn();
      const double secs = timer.Seconds();
      std::lock_guard<std::mutex> lock(mu_);
      stats_[t.worker].compute_seconds += secs;
    }
    return Status::OK();
  }
  ThreadPool pool(threads);
  for (Task& t : tasks) {
    pool.Submit([this, &t] {
      CpuTimer timer;
      t.fn();
      const double secs = timer.Seconds();
      std::lock_guard<std::mutex> lock(mu_);
      stats_[t.worker].compute_seconds += secs;
    });
  }
  pool.Wait();
  return Status::OK();
}

void Cluster::RecordTransfer(size_t from, size_t to, uint64_t bytes) {
  DITA_CHECK(from < config_.num_workers && to < config_.num_workers);
  if (from == to) return;  // local, in-memory
  std::lock_guard<std::mutex> lock(mu_);
  stats_[from].bytes_sent += bytes;
  stats_[from].network_seconds +=
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
}

void Cluster::RecordDriverCompute(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  driver_seconds_ += seconds;
}

void Cluster::RecordDriverTransfer(size_t worker, uint64_t bytes) {
  DITA_CHECK(worker < config_.num_workers);
  std::lock_guard<std::mutex> lock(mu_);
  const double secs =
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
  stats_[worker].bytes_sent += bytes;
  stats_[worker].network_seconds += secs;
  driver_seconds_ += secs;
}

double Cluster::MakespanSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double worst = 0.0;
  for (const WorkerStats& w : stats_) worst = std::max(worst, w.TotalSeconds());
  return driver_seconds_ + worst;
}

double Cluster::LoadRatio() const {
  std::lock_guard<std::mutex> lock(mu_);
  double worst = 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (const WorkerStats& w : stats_) {
    const double t = w.TotalSeconds();
    worst = std::max(worst, t);
    if (t > 0.0) best = std::min(best, t);
  }
  if (worst == 0.0) return 1.0;
  if (!std::isfinite(best)) return 1.0;
  return worst / best;
}

uint64_t Cluster::total_bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const WorkerStats& w : stats_) total += w.bytes_sent;
  return total;
}

Cluster::CostSnapshot Cluster::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  CostSnapshot snap;
  snap.worker_totals.reserve(stats_.size());
  for (const WorkerStats& w : stats_) snap.worker_totals.push_back(w.TotalSeconds());
  snap.driver_seconds = driver_seconds_;
  return snap;
}

double Cluster::MakespanSince(const CostSnapshot& snap) const {
  std::lock_guard<std::mutex> lock(mu_);
  DITA_CHECK(snap.worker_totals.size() == stats_.size());
  double worst = 0.0;
  for (size_t i = 0; i < stats_.size(); ++i) {
    worst = std::max(worst, stats_[i].TotalSeconds() - snap.worker_totals[i]);
  }
  return (driver_seconds_ - snap.driver_seconds) + worst;
}

double Cluster::LoadRatioSince(const CostSnapshot& snap) const {
  std::lock_guard<std::mutex> lock(mu_);
  DITA_CHECK(snap.worker_totals.size() == stats_.size());
  double worst = 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < stats_.size(); ++i) {
    const double delta = stats_[i].TotalSeconds() - snap.worker_totals[i];
    worst = std::max(worst, delta);
    if (delta > 0.0) best = std::min(best, delta);
  }
  if (worst == 0.0 || !std::isfinite(best)) return 1.0;
  return worst / best;
}

void Cluster::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  for (WorkerStats& w : stats_) w = WorkerStats{};
  driver_seconds_ = 0.0;
}

}  // namespace dita
