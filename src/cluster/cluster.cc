#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace dita {

namespace {
// Per-thread ledger of helper-thread CPU charged to the task currently
// running on this thread (Cluster::ChargeCurrentTask). ExecuteTasks zeroes
// it before each task body and folds it into the task's measured seconds
// after, so retries/speculation/deadlines all see the inflated runtime.
thread_local double t_task_offloaded_seconds = 0.0;
}  // namespace

void Cluster::ChargeCurrentTask(double seconds) {
  if (seconds > 0.0) t_task_offloaded_seconds += seconds;
}

Cluster::Cluster(const ClusterConfig& config) : config_(config) {
  DITA_CHECK(config_.num_workers > 0);
  DITA_CHECK(config_.bandwidth_bytes_per_sec > 0);
  DITA_CHECK(config_.max_task_attempts > 0);
  stats_.resize(config_.num_workers);
}

void Cluster::InjectFaults(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mu_);
  injector_ = std::make_unique<FaultInjector>(plan);
}

void Cluster::ClearFaults() {
  std::lock_guard<std::mutex> lock(mu_);
  injector_.reset();
}

obs::Tracer* Cluster::EnableTracing() {
  std::lock_guard<std::mutex> lock(mu_);
  if (tracer_ == nullptr) tracer_ = std::make_unique<obs::Tracer>();
  return tracer_.get();
}

obs::MetricsRegistry* Cluster::EnableMetrics() {
  std::lock_guard<std::mutex> lock(mu_);
  if (metrics_ == nullptr) {
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    obs::MetricsRegistry* m = metrics_.get();
    m_stages_run_ = {m, "cluster.stages_run"};
    m_task_attempts_ = {m, "cluster.task.attempts"};
    m_stage_retries_ = {m, "cluster.stage.retries"};
    m_worker_crashes_ = {m, "cluster.worker.crashes"};
    m_spec_launches_ = {m, "cluster.speculative.launches"};
    m_bytes_shipped_ = {m, "cluster.bytes_shipped"};
    m_deadline_misses_ = {m, "cluster.stage.deadline_misses"};
  }
  return metrics_.get();
}

Status Cluster::ExecuteTasks(std::vector<Task>* tasks, QueryContext* ctx,
                             std::vector<TaskRun>* runs) {
  runs->resize(tasks->size());
  const size_t threads =
      config_.execution_threads == 0 ? 1 : config_.execution_threads;
  obs::Tracer* tracer = tracer_.get();
  if (threads == 1) {
    // Fast path: run inline, no pool overhead.
    Status first_error;
    for (size_t i = 0; i < tasks->size(); ++i) {
      if (ctx != nullptr && ctx->stopped()) {
        // The query stopped before this task started; skip the body. The
        // accounting pass charges nothing for skipped tasks, so the stop
        // point also bounds the query's virtual cost.
        (*runs)[i].skipped = true;
        continue;
      }
      // Nested spans opened by the task body (verification, candidate
      // collection) land on the owning worker's lane.
      obs::Tracer::ScopedLane lane(obs::WorkerLane((*tasks)[i].worker));
      obs::SpanGuard span(tracer, "task");
      span.Arg("task", i);
      span.Arg("worker", (*tasks)[i].worker);
      CpuTimer timer;
      t_task_offloaded_seconds = 0.0;
      try {
        (*runs)[i].status = (*tasks)[i].fn();
      } catch (const std::exception& e) {
        if (first_error.ok()) {
          first_error = Status::Internal(std::string("task threw: ") + e.what());
        }
      } catch (...) {
        if (first_error.ok()) first_error = Status::Internal("task threw");
      }
      (*runs)[i].seconds = timer.Seconds() + t_task_offloaded_seconds;
    }
    return first_error;
  }
  ThreadPool pool(threads);
  for (size_t i = 0; i < tasks->size(); ++i) {
    Task* t = &(*tasks)[i];
    TaskRun* run = &(*runs)[i];
    pool.Submit([t, run, tracer, ctx, i] {
      if (ctx != nullptr && ctx->stopped()) {
        run->skipped = true;
        return;
      }
      obs::Tracer::ScopedLane lane(obs::WorkerLane(t->worker));
      obs::SpanGuard span(tracer, "task");
      span.Arg("task", i);
      span.Arg("worker", t->worker);
      CpuTimer timer;
      t_task_offloaded_seconds = 0.0;
      run->status = t->fn();
      run->seconds = timer.Seconds() + t_task_offloaded_seconds;
    });
  }
  // A throwing task surfaces here (ThreadPool captures it) instead of
  // terminating the worker thread.
  try {
    pool.Wait();
  } catch (const std::exception& e) {
    return Status::Internal(std::string("task threw: ") + e.what());
  } catch (...) {
    return Status::Internal("task threw");
  }
  return Status::OK();
}

size_t Cluster::LeastLoadedLiveLocked(size_t exclude) const {
  size_t best = config_.num_workers;
  double best_load = std::numeric_limits<double>::infinity();
  for (size_t w = 0; w < config_.num_workers; ++w) {
    if (!stats_[w].alive || w == exclude) continue;
    const double load = stats_[w].TotalSeconds();
    if (load < best_load) {
      best_load = load;
      best = w;
    }
  }
  return best;
}

void Cluster::RecordTransferLocked(size_t from, size_t to, uint64_t bytes) {
  if (from == to) return;  // local, in-memory
  m_bytes_shipped_.Add(bytes);
  stats_[from].bytes_sent += bytes;
  stats_[from].network_seconds +=
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
}

size_t Cluster::RecoverTaskLocked(size_t from, uint64_t input_bytes) {
  const size_t to = LeastLoadedLiveLocked(config_.num_workers);
  if (to == config_.num_workers) return to;  // nobody left
  ++fault_stats_.tasks_reassigned;
  if (input_bytes > 0) {
    // Lineage re-materialization: the partition's bytes ship to the new
    // owner from a surviving peer (the dead worker's copy is gone).
    size_t src = config_.num_workers;
    for (size_t w = 0; w < config_.num_workers; ++w) {
      if (stats_[w].alive && w != to) {
        src = w;
        break;
      }
    }
    if (src != config_.num_workers) {
      RecordTransferLocked(src, to, input_bytes);
    }
    fault_stats_.recovery_bytes += input_bytes;
  }
  (void)from;
  return to;
}

Status Cluster::RunStage(std::vector<Task> tasks, const StageOptions& options,
                         std::vector<uint8_t>* kept) {
  for (const Task& t : tasks) {
    if (t.worker >= config_.num_workers) {
      return Status::InvalidArgument("task bound to nonexistent worker");
    }
    if (!t.fn) return Status::InvalidArgument("task without a function");
  }
  if (kept != nullptr) kept->assign(tasks.size(), 0);

  // The stage span wraps both passes, so task / retry / backup spans nest
  // inside it by tick containment.
  obs::SpanGuard stage_span(
      tracer_.get(),
      options.name.empty() ? "stage" : "stage:" + options.name);
  stage_span.Arg("tasks", tasks.size());
  m_stages_run_.Increment();

  // Pass 1: every task function runs exactly once, for real. Retries,
  // recoveries, and speculative backups below recompute *deterministically
  // identical* results (Spark lineage semantics), so re-running the closure
  // is unnecessary — and would duplicate its side effects.
  std::vector<TaskRun> runs;
  const Status exec_status = ExecuteTasks(&tasks, options.ctx, &runs);

  // Pass 2: deterministic virtual-time accounting, including fault
  // handling. Single-threaded under the lock; injection decisions depend
  // only on (seed, stage, task index, attempt), never on scheduling.
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t stage = stages_run_++;
  stage_span.Arg("stage", stage);

  std::vector<double> start_totals(config_.num_workers);
  for (size_t w = 0; w < config_.num_workers; ++w) {
    start_totals[w] = stats_[w].TotalSeconds();
  }

  // Permanent worker crash: fires as the stage starts, so this stage's
  // tasks on the victim are lost mid-flight and recovered on survivors.
  size_t crashed_this_stage = config_.num_workers;
  if (injector_ != nullptr) {
    for (size_t w = 0; w < config_.num_workers; ++w) {
      if (!stats_[w].alive || !injector_->CrashesWorkerAt(stage, w)) continue;
      size_t live = 0;
      for (const WorkerStats& s : stats_) live += s.alive ? 1 : 0;
      if (live <= 1) break;  // never kill the last worker
      stats_[w].alive = false;
      ++fault_stats_.worker_crashes;
      m_worker_crashes_.Increment();
      if (tracer_ != nullptr) {
        tracer_->Instant("worker.crash", obs::WorkerLane(w));
      }
      crashed_this_stage = w;
    }
  }

  Status app_error = exec_status;
  std::vector<size_t> owners(tasks.size());
  std::vector<double> runtimes(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (app_error.ok() && !runs[i].status.ok()) app_error = runs[i].status;
    size_t w = tasks[i].worker;
    if (runs[i].skipped) {
      // Never executed (query stopped first): no attempts, no retries, no
      // recovery, no speculation, zero virtual time. kept stays 0.
      owners[i] = w;
      runtimes[i] = 0.0;
      continue;
    }

    if (!stats_[w].alive) {
      if (w == crashed_this_stage && injector_ != nullptr) {
        // In-flight work lost with the worker: a deterministic fraction of
        // the task had completed when the crash hit.
        stats_[w].compute_seconds +=
            injector_->LostWorkFraction(stage, i, 0) * runs[i].seconds;
      }
      const size_t recovered = RecoverTaskLocked(w, tasks[i].input_bytes);
      if (recovered == config_.num_workers) {
        return Status::Unavailable("no live worker to recover task in stage " +
                                   options.name);
      }
      fault_stats_.recovery_seconds += runs[i].seconds;
      w = recovered;
    }

    // Transient attempt failures: charge the wasted partial attempt plus a
    // capped exponential backoff wait, then retry on the same worker. The
    // fault is transient, so the final permitted attempt always completes.
    uint64_t attempt = 1;
    if (injector_ != nullptr) {
      while (attempt < config_.max_task_attempts &&
             injector_->TransientFailure(stage, i, attempt)) {
        // Cancellation observed between retries: a stopped query does not
        // keep burning backoff waits and wasted attempts on virtual time.
        if (options.ctx != nullptr && options.ctx->stopped()) break;
        ++fault_stats_.transient_failures;
        ++fault_stats_.retries;
        ++stats_[w].task_retries;
        m_stage_retries_.Increment();
        if (tracer_ != nullptr) {
          // One span per retried attempt, on the retrying worker's lane.
          const uint64_t id =
              tracer_->BeginSpan("task.retry", obs::WorkerLane(w));
          tracer_->AddArg(id, "task", i);
          tracer_->AddArg(id, "attempt", attempt);
          tracer_->EndSpan(id);
        }
        stats_[w].compute_seconds +=
            injector_->LostWorkFraction(stage, i, attempt) * runs[i].seconds;
        const double backoff =
            std::min(config_.retry_backoff_cap_seconds,
                     config_.retry_backoff_seconds *
                         std::pow(2.0, static_cast<double>(attempt - 1)));
        stats_[w].backoff_seconds += backoff;
        fault_stats_.backoff_seconds += backoff;
        ++attempt;
      }
    }
    stats_[w].task_attempts += attempt;
    fault_stats_.task_attempts += attempt;
    m_task_attempts_.Add(attempt);

    double runtime = runs[i].seconds;
    if (injector_ != nullptr && injector_->IsStraggler(stage, i)) {
      runtime *= injector_->plan().straggler_multiplier;
    }
    owners[i] = w;
    runtimes[i] = runtime;
  }

  // Speculative execution: tasks far beyond the stage median get a backup
  // on the least-loaded live worker; both attempts stop when the first one
  // finishes, so each side is charged the winner's runtime.
  std::vector<bool> speculated(tasks.size(), false);
  if (config_.speculation_multiplier > 0.0 && tasks.size() >= 2) {
    std::vector<double> sorted = runtimes;
    std::sort(sorted.begin(), sorted.end());
    const double median = sorted[sorted.size() / 2];
    if (median > 0.0) {
      for (size_t i = 0; i < tasks.size(); ++i) {
        if (runtimes[i] <= config_.speculation_multiplier * median) continue;
        const size_t backup = LeastLoadedLiveLocked(owners[i]);
        if (backup == config_.num_workers) continue;
        speculated[i] = true;
        ++fault_stats_.speculative_launches;
        ++stats_[backup].task_attempts;
        ++fault_stats_.task_attempts;
        m_spec_launches_.Increment();
        m_task_attempts_.Add(1);
        if (tracer_ != nullptr) {
          const uint64_t id =
              tracer_->BeginSpan("task.backup", obs::WorkerLane(backup));
          tracer_->AddArg(id, "task", i);
          tracer_->AddArg(id, "original_worker", owners[i]);
          tracer_->EndSpan(id);
        }
        RecordTransferLocked(owners[i], backup, tasks[i].input_bytes);
        // The backup runs on a healthy node at the task's measured speed.
        const double backup_runtime = runs[i].seconds;
        if (backup_runtime < runtimes[i]) ++fault_stats_.speculative_wins;
        const double winner = std::min(runtimes[i], backup_runtime);
        stats_[owners[i]].compute_seconds += winner;
        stats_[backup].compute_seconds += winner;
        if (kept != nullptr) {
          const double done =
              stats_[owners[i]].TotalSeconds() - start_totals[owners[i]];
          (*kept)[i] = (options.deadline_seconds <= 0.0 ||
                        done <= options.deadline_seconds)
                           ? 1
                           : 0;
        }
      }
    }
  }
  for (size_t i = 0; i < tasks.size(); ++i) {
    if (speculated[i]) continue;
    if (runs[i].skipped) continue;
    stats_[owners[i]].compute_seconds += runtimes[i];
    if (kept != nullptr) {
      // Deterministic deadline semantics: a task's output is kept iff its
      // owner's cumulative stage time when the task finished charging still
      // fit the deadline. Workers charge in task-index order, so the kept
      // set is a per-worker prefix — "completed outputs kept, in-flight
      // dropped" — and is identical on every run.
      const double done =
          stats_[owners[i]].TotalSeconds() - start_totals[owners[i]];
      (*kept)[i] =
          (options.deadline_seconds <= 0.0 || done <= options.deadline_seconds)
              ? 1
              : 0;
    }
  }

  if (!app_error.ok()) return app_error;

  if (options.ctx != nullptr && options.ctx->stopped()) {
    // The query's own token stopped the stage; its cause (cancel, deadline,
    // budget) outranks the stage deadline below — the caller decides how to
    // degrade based on it.
    return options.ctx->ToStatus();
  }

  if (options.deadline_seconds > 0.0) {
    double stage_makespan = 0.0;
    for (size_t w = 0; w < config_.num_workers; ++w) {
      stage_makespan =
          std::max(stage_makespan, stats_[w].TotalSeconds() - start_totals[w]);
    }
    if (stage_makespan > options.deadline_seconds) {
      ++fault_stats_.deadline_misses;
      m_deadline_misses_.Increment();
      return Status::DeadlineExceeded(
          "stage " + (options.name.empty() ? "<unnamed>" : options.name) +
          " missed its deadline");
    }
  }
  return Status::OK();
}

void Cluster::RecordTransfer(size_t from, size_t to, uint64_t bytes) {
  DITA_CHECK(from < config_.num_workers && to < config_.num_workers);
  std::lock_guard<std::mutex> lock(mu_);
  RecordTransferLocked(from, to, bytes);
}

void Cluster::RecordDriverCompute(double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  driver_seconds_ += seconds;
}

void Cluster::RecordDriverTransfer(size_t worker, uint64_t bytes) {
  DITA_CHECK(worker < config_.num_workers);
  std::lock_guard<std::mutex> lock(mu_);
  const double secs =
      static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
  m_bytes_shipped_.Add(bytes);
  stats_[worker].bytes_sent += bytes;
  stats_[worker].network_seconds += secs;
  driver_seconds_ += secs;
}

double Cluster::MakespanSeconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double worst = 0.0;
  for (const WorkerStats& w : stats_) worst = std::max(worst, w.TotalSeconds());
  return driver_seconds_ + worst;
}

double Cluster::LoadRatio() const {
  std::lock_guard<std::mutex> lock(mu_);
  double worst = 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (const WorkerStats& w : stats_) {
    const double t = w.TotalSeconds();
    worst = std::max(worst, t);
    if (t > 0.0) best = std::min(best, t);
  }
  if (worst == 0.0) return 1.0;
  if (!std::isfinite(best)) return 1.0;
  return worst / best;
}

uint64_t Cluster::total_bytes_sent() const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const WorkerStats& w : stats_) total += w.bytes_sent;
  return total;
}

FaultStats Cluster::fault_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return fault_stats_;
}

uint64_t Cluster::stages_run() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stages_run_;
}

size_t Cluster::num_live_workers() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t live = 0;
  for (const WorkerStats& w : stats_) live += w.alive ? 1 : 0;
  return live;
}

Cluster::CostSnapshot Cluster::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  CostSnapshot snap;
  snap.worker_totals.reserve(stats_.size());
  for (const WorkerStats& w : stats_) snap.worker_totals.push_back(w.TotalSeconds());
  snap.driver_seconds = driver_seconds_;
  snap.faults = fault_stats_;
  return snap;
}

double Cluster::MakespanSince(const CostSnapshot& snap) const {
  std::lock_guard<std::mutex> lock(mu_);
  DITA_CHECK(snap.worker_totals.size() == stats_.size());
  double worst = 0.0;
  for (size_t i = 0; i < stats_.size(); ++i) {
    worst = std::max(worst, stats_[i].TotalSeconds() - snap.worker_totals[i]);
  }
  return (driver_seconds_ - snap.driver_seconds) + worst;
}

double Cluster::LoadRatioSince(const CostSnapshot& snap) const {
  std::lock_guard<std::mutex> lock(mu_);
  DITA_CHECK(snap.worker_totals.size() == stats_.size());
  double worst = 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < stats_.size(); ++i) {
    const double delta = stats_[i].TotalSeconds() - snap.worker_totals[i];
    worst = std::max(worst, delta);
    if (delta > 0.0) best = std::min(best, delta);
  }
  if (worst == 0.0 || !std::isfinite(best)) return 1.0;
  return worst / best;
}

FaultStats Cluster::FaultsSince(const CostSnapshot& snap) const {
  std::lock_guard<std::mutex> lock(mu_);
  FaultStats d;
  const FaultStats& a = fault_stats_;
  const FaultStats& b = snap.faults;
  d.task_attempts = a.task_attempts - b.task_attempts;
  d.transient_failures = a.transient_failures - b.transient_failures;
  d.retries = a.retries - b.retries;
  d.worker_crashes = a.worker_crashes - b.worker_crashes;
  d.tasks_reassigned = a.tasks_reassigned - b.tasks_reassigned;
  d.recovery_bytes = a.recovery_bytes - b.recovery_bytes;
  d.recovery_seconds = a.recovery_seconds - b.recovery_seconds;
  d.backoff_seconds = a.backoff_seconds - b.backoff_seconds;
  d.speculative_launches = a.speculative_launches - b.speculative_launches;
  d.speculative_wins = a.speculative_wins - b.speculative_wins;
  d.deadline_misses = a.deadline_misses - b.deadline_misses;
  return d;
}

void Cluster::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  for (WorkerStats& w : stats_) w = WorkerStats{};
  driver_seconds_ = 0.0;
  fault_stats_ = FaultStats{};
  stages_run_ = 0;
}

}  // namespace dita
