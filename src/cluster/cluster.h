#ifndef DITA_CLUSTER_CLUSTER_H_
#define DITA_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/fault_injector.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/query_context.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace dita {

/// Virtual time accumulated by one simulated worker.
struct WorkerStats {
  /// Measured CPU seconds of tasks executed on this worker.
  double compute_seconds = 0.0;
  /// Bytes this worker shipped to other workers.
  uint64_t bytes_sent = 0;
  /// Simulated transmission time (bytes_sent / bandwidth).
  double network_seconds = 0.0;
  /// Virtual seconds this worker sat in retry backoff waits.
  double backoff_seconds = 0.0;
  /// Task attempts executed here (first tries + retries + speculative
  /// backups).
  uint64_t task_attempts = 0;
  /// Attempts beyond the first for a task charged to this worker.
  uint64_t task_retries = 0;
  /// False once the worker has been crashed by fault injection.
  bool alive = true;

  double TotalSeconds() const {
    return compute_seconds + network_seconds + backoff_seconds;
  }
};

/// Aggregate fault-handling counters for a cluster (or, as a delta, for one
/// operation on a shared cluster). All costs here are *also* charged into
/// the per-worker virtual totals; this is the observability summary.
struct FaultStats {
  /// Task attempts across all stages (>= number of tasks run).
  uint64_t task_attempts = 0;
  /// Injected transient attempt failures.
  uint64_t transient_failures = 0;
  /// Retries performed after transient failures.
  uint64_t retries = 0;
  /// Workers permanently lost to injected crashes.
  uint64_t worker_crashes = 0;
  /// Tasks moved off a dead worker onto a survivor.
  uint64_t tasks_reassigned = 0;
  /// Bytes re-shipped to rebuild lost partitions on survivors.
  uint64_t recovery_bytes = 0;
  /// CPU seconds of lineage-style recomputation charged to survivors.
  double recovery_seconds = 0.0;
  /// Virtual seconds spent in retry backoff waits.
  double backoff_seconds = 0.0;
  /// Speculative backup tasks launched / backups that beat the original.
  uint64_t speculative_launches = 0;
  uint64_t speculative_wins = 0;
  /// Stages that exceeded their deadline.
  uint64_t deadline_misses = 0;
};

/// Configuration of the simulated cluster.
struct ClusterConfig {
  /// Number of workers ("cores" in the paper's scale-up plots: each Spark
  /// core executes one partition task at a time, which is exactly what a
  /// worker models here).
  size_t num_workers = 16;
  /// Simulated network bandwidth per worker, bytes/second. The default
  /// models the paper's Gigabit Ethernet (~125 MB/s).
  double bandwidth_bytes_per_sec = 125e6;
  /// Real execution threads used to run tasks; accounting is independent of
  /// this. 0 means one thread (the host here is single-core anyway).
  size_t execution_threads = 0;

  /// Fault-handling policy (mirrors Spark's spark.task.maxFailures and
  /// speculation knobs). A task attempt that fails transiently is retried
  /// up to `max_task_attempts` total attempts, waiting an exponentially
  /// growing backoff (charged as virtual time) between attempts.
  size_t max_task_attempts = 4;
  double retry_backoff_seconds = 0.05;
  double retry_backoff_cap_seconds = 1.0;
  /// Speculative execution: when a task's virtual runtime exceeds
  /// `speculation_multiplier` x the stage median, a backup attempt is
  /// launched on the least-loaded live worker and the first finisher wins.
  /// 0 disables speculation.
  double speculation_multiplier = 0.0;
};

/// Per-stage execution options.
struct StageOptions {
  /// Stage label used in error messages.
  std::string name;
  /// Virtual-time budget for the stage: if the slowest worker's virtual
  /// time charged by this stage exceeds the deadline, RunStage returns
  /// Status::DeadlineExceeded (results may be partially recorded). 0 means
  /// no deadline.
  double deadline_seconds = 0.0;
  /// Optional cooperative stop token for the query this stage belongs to.
  /// Once it reads stopped, task bodies that have not started yet are
  /// skipped (their TaskRun is marked skipped, no virtual time charged,
  /// no retries or speculation), the transient-retry loop stops retrying,
  /// and RunStage reports the token's status instead of OK. Task bodies
  /// themselves are expected to observe the same token at their own charge
  /// points; the stage-level checks only bound the scheduling overhead.
  QueryContext* ctx = nullptr;
};

/// A deterministic in-process substitute for the paper's Spark cluster.
///
/// Tasks are executed for real; each task's measured CPU time is charged to
/// the worker that owns it, and every cross-worker byte is charged as
/// simulated network time. Experiment latency is then reported as the
/// *makespan* under the paper's own cost model (§6.2):
///     time = driver_seconds + max_w (compute_w + network_w)
/// which preserves scale-up / scale-out / load-balance behaviour without
/// real parallel hardware.
///
/// Fault tolerance mirrors Spark's: an installed FaultInjector (see
/// InjectFaults) deterministically fails task attempts, crashes workers, and
/// slows stragglers. Each task's *function runs exactly once* — like a
/// deterministic Spark lineage recomputation, a retried or recovered task
/// recomputes the identical result — and all failure handling (wasted
/// attempts, backoff waits, recovery re-shipping, speculative backups) is
/// charged in virtual time. Query and join answers are therefore invariant
/// under any injected fault schedule; only the cost model output changes.
class Cluster {
 public:
  /// A unit of work bound to a worker, mirroring a Spark partition task.
  struct Task {
    size_t worker = 0;
    /// The task body. Runs exactly once; a non-OK return fails the stage
    /// (application errors are not retried — they are deterministic).
    std::function<Status()> fn;
    /// Bytes that must be re-shipped to a survivor if this task's worker is
    /// lost (the owning partition's data, i.e. its lineage materialization).
    uint64_t input_bytes = 0;
  };

  explicit Cluster(const ClusterConfig& config);

  size_t num_workers() const { return config_.num_workers; }
  const ClusterConfig& config() const { return config_; }

  /// Round-robin home worker for partition `partition_id`.
  size_t WorkerOf(size_t partition_id) const {
    return partition_id % config_.num_workers;
  }

  /// Installs a deterministic fault schedule; replaces any previous one.
  void InjectFaults(const FaultPlan& plan);
  /// Removes the fault schedule (dead workers stay dead; see ResetStats).
  void ClearFaults();

  /// Turns on span tracing (idempotent) and returns the tracer. Stages,
  /// task attempts, retries, and speculative backups are recorded as spans
  /// on virtual-time ticks (see obs::Tracer for the determinism contract).
  /// Must be called before the cluster is used from multiple threads.
  obs::Tracer* EnableTracing();
  /// Turns on metrics (idempotent) and returns the registry. Cluster-level
  /// counters (cluster.stage.retries, cluster.task.attempts, ...) start
  /// accumulating from this point. Must be called before concurrent use.
  obs::MetricsRegistry* EnableMetrics();
  /// Null when tracing / metrics are disabled: every instrumentation site
  /// then reduces to one null-pointer branch.
  obs::Tracer* tracer() const { return tracer_.get(); }
  obs::MetricsRegistry* metrics() const { return metrics_.get(); }

  /// Executes all tasks (possibly concurrently), charging each task's CPU
  /// time to its worker. Returns after every task completes. Tasks must not
  /// touch shared mutable state without their own synchronization.
  ///
  /// With faults injected, failed attempts are retried with capped
  /// exponential backoff, tasks on crashed workers are recovered on
  /// survivors (recomputation time plus `input_bytes` re-shipped), and
  /// stragglers may be speculatively duplicated. If every worker a stage
  /// needs is dead, returns Status::Unavailable; if the stage blows its
  /// StageOptions deadline, returns Status::DeadlineExceeded.
  /// With `kept` non-null, its i-th element is set to 1 iff task i's output
  /// is part of the stage's deterministic result state: the task actually
  /// ran (was not skipped after a cooperative stop) and — when the stage has
  /// a deadline — its owner's cumulative stage virtual time at the moment
  /// the task's runtime was charged still fit the deadline. Callers use this
  /// to keep completed tasks' outputs and drop in-flight ones when a stage
  /// is cut short; without a deadline or stop every entry is 1.
  Status RunStage(std::vector<Task> tasks, const StageOptions& options,
                  std::vector<uint8_t>* kept);
  Status RunStage(std::vector<Task> tasks, const StageOptions& options) {
    return RunStage(std::move(tasks), options, nullptr);
  }
  Status RunStage(std::vector<Task> tasks) {
    return RunStage(std::move(tasks), StageOptions{}, nullptr);
  }

  /// Adds CPU seconds to the cluster task currently executing on this
  /// thread. Task bodies that offload work to helper threads (e.g. batched
  /// verification chunked over an engine-local pool) must call this with the
  /// helpers' measured CPU time: task runtimes are measured with a
  /// per-thread clock, so offloaded work would otherwise escape the
  /// virtual-time ledger and deflate simulated makespans. No-op when no task
  /// is executing on the calling thread.
  static void ChargeCurrentTask(double seconds);

  /// Charges `bytes` of traffic from `from` to `to`. Same-worker transfers
  /// are free (in-memory). Thread-safe.
  void RecordTransfer(size_t from, size_t to, uint64_t bytes);

  /// Charges sequential driver-side work (global index probing, planning,
  /// collecting results).
  void RecordDriverCompute(double seconds);

  /// Charges a transfer between a worker and the driver (e.g. DFT's bitmap
  /// collection barrier). Both the worker's send time and the driver's
  /// sequential receive time are charged, making the barrier visible in the
  /// makespan.
  void RecordDriverTransfer(size_t worker, uint64_t bytes);

  /// Makespan under the cost model: driver + slowest worker.
  double MakespanSeconds() const;

  /// Ratio of the busiest to the least-busy worker's total virtual time
  /// (the paper's "un-balanced ratio", Fig. 16). Workers with no recorded
  /// time count as idle; if any worker is fully idle the ratio is computed
  /// against the smallest non-zero load.
  double LoadRatio() const;

  double driver_seconds() const { return driver_seconds_; }
  uint64_t total_bytes_sent() const;
  const std::vector<WorkerStats>& worker_stats() const { return stats_; }

  /// Fault-handling counters accumulated since construction / ResetStats.
  FaultStats fault_stats() const;

  /// Number of stages executed so far; the next RunStage call will be stage
  /// `stages_run()` in FaultPlan coordinates.
  uint64_t stages_run() const;

  /// Workers still alive (not crashed by fault injection).
  size_t num_live_workers() const;

  /// Point-in-time copy of per-worker virtual totals, for measuring the
  /// incremental cost of one operation (a query, a join) on a shared
  /// cluster.
  struct CostSnapshot {
    std::vector<double> worker_totals;
    double driver_seconds = 0.0;
    FaultStats faults;
  };
  CostSnapshot Snapshot() const;

  /// Makespan of the work recorded since `snap`: driver delta plus the
  /// largest per-worker delta.
  double MakespanSince(const CostSnapshot& snap) const;

  /// Load ratio (busiest / least-busy non-idle worker) of the work recorded
  /// since `snap`.
  double LoadRatioSince(const CostSnapshot& snap) const;

  /// Fault counters accumulated since `snap` (element-wise difference).
  FaultStats FaultsSince(const CostSnapshot& snap) const;

  /// Clears all accumulated accounting (stats only, not configuration) and
  /// resurrects crashed workers; the stage counter restarts at 0.
  void ResetStats();

 private:
  /// Per-task result of the single real execution pass.
  struct TaskRun {
    double seconds = 0.0;
    Status status;
    /// True when the task body was skipped because the stage's QueryContext
    /// had already stopped when the task came up for execution.
    bool skipped = false;
  };

  /// Runs every task function exactly once (inline or on the pool),
  /// recording measured CPU seconds and returned status. Tasks coming up
  /// after `ctx` (may be null) reads stopped are skipped.
  Status ExecuteTasks(std::vector<Task>* tasks, QueryContext* ctx,
                      std::vector<TaskRun>* runs);

  /// Least-loaded live worker (ties broken by lowest id), excluding
  /// `exclude` (pass num_workers to exclude nobody). Returns num_workers if
  /// no live worker qualifies. Caller holds mu_.
  size_t LeastLoadedLiveLocked(size_t exclude) const;

  /// Moves a task off dead worker `from`: picks a survivor, charges the
  /// lineage re-shipping of `input_bytes` from a live peer, and bumps the
  /// recovery counters. Returns the new owner. Caller holds mu_.
  size_t RecoverTaskLocked(size_t from, uint64_t input_bytes);

  /// Charges a cross-worker transfer. Caller holds mu_.
  void RecordTransferLocked(size_t from, size_t to, uint64_t bytes);

  ClusterConfig config_;
  std::vector<WorkerStats> stats_;
  double driver_seconds_ = 0.0;
  FaultStats fault_stats_;
  uint64_t stages_run_ = 0;
  std::unique_ptr<FaultInjector> injector_;
  /// Observability is opt-in; null means disabled (the default). Set once by
  /// EnableTracing / EnableMetrics before concurrent use, then read-only.
  std::unique_ptr<obs::Tracer> tracer_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  obs::CounterHandle m_stages_run_;
  obs::CounterHandle m_task_attempts_;
  obs::CounterHandle m_stage_retries_;
  obs::CounterHandle m_worker_crashes_;
  obs::CounterHandle m_spec_launches_;
  obs::CounterHandle m_bytes_shipped_;
  obs::CounterHandle m_deadline_misses_;
  mutable std::mutex mu_;
};

}  // namespace dita

#endif  // DITA_CLUSTER_CLUSTER_H_
