#ifndef DITA_CLUSTER_CLUSTER_H_
#define DITA_CLUSTER_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "util/status.h"
#include "util/thread_pool.h"

namespace dita {

/// Virtual time accumulated by one simulated worker.
struct WorkerStats {
  /// Measured CPU seconds of tasks executed on this worker.
  double compute_seconds = 0.0;
  /// Bytes this worker shipped to other workers.
  uint64_t bytes_sent = 0;
  /// Simulated transmission time (bytes_sent / bandwidth).
  double network_seconds = 0.0;

  double TotalSeconds() const { return compute_seconds + network_seconds; }
};

/// Configuration of the simulated cluster.
struct ClusterConfig {
  /// Number of workers ("cores" in the paper's scale-up plots: each Spark
  /// core executes one partition task at a time, which is exactly what a
  /// worker models here).
  size_t num_workers = 16;
  /// Simulated network bandwidth per worker, bytes/second. The default
  /// models the paper's Gigabit Ethernet (~125 MB/s).
  double bandwidth_bytes_per_sec = 125e6;
  /// Real execution threads used to run tasks; accounting is independent of
  /// this. 0 means one thread (the host here is single-core anyway).
  size_t execution_threads = 0;
};

/// A deterministic in-process substitute for the paper's Spark cluster.
///
/// Tasks are executed for real; each task's measured CPU time is charged to
/// the worker that owns it, and every cross-worker byte is charged as
/// simulated network time. Experiment latency is then reported as the
/// *makespan* under the paper's own cost model (§6.2):
///     time = driver_seconds + max_w (compute_w + network_w)
/// which preserves scale-up / scale-out / load-balance behaviour without
/// real parallel hardware.
class Cluster {
 public:
  /// A unit of work bound to a worker, mirroring a Spark partition task.
  struct Task {
    size_t worker = 0;
    std::function<void()> fn;
  };

  explicit Cluster(const ClusterConfig& config);

  size_t num_workers() const { return config_.num_workers; }
  const ClusterConfig& config() const { return config_; }

  /// Round-robin home worker for partition `partition_id`.
  size_t WorkerOf(size_t partition_id) const {
    return partition_id % config_.num_workers;
  }

  /// Executes all tasks (possibly concurrently), charging each task's CPU
  /// time to its worker. Returns after every task completes. Tasks must not
  /// touch shared mutable state without their own synchronization.
  Status RunStage(std::vector<Task> tasks);

  /// Charges `bytes` of traffic from `from` to `to`. Same-worker transfers
  /// are free (in-memory). Thread-safe.
  void RecordTransfer(size_t from, size_t to, uint64_t bytes);

  /// Charges sequential driver-side work (global index probing, planning,
  /// collecting results).
  void RecordDriverCompute(double seconds);

  /// Charges a transfer between a worker and the driver (e.g. DFT's bitmap
  /// collection barrier). Both the worker's send time and the driver's
  /// sequential receive time are charged, making the barrier visible in the
  /// makespan.
  void RecordDriverTransfer(size_t worker, uint64_t bytes);

  /// Makespan under the cost model: driver + slowest worker.
  double MakespanSeconds() const;

  /// Ratio of the busiest to the least-busy worker's total virtual time
  /// (the paper's "un-balanced ratio", Fig. 16). Workers with no recorded
  /// time count as idle; if any worker is fully idle the ratio is computed
  /// against the smallest non-zero load.
  double LoadRatio() const;

  double driver_seconds() const { return driver_seconds_; }
  uint64_t total_bytes_sent() const;
  const std::vector<WorkerStats>& worker_stats() const { return stats_; }

  /// Point-in-time copy of per-worker virtual totals, for measuring the
  /// incremental cost of one operation (a query, a join) on a shared
  /// cluster.
  struct CostSnapshot {
    std::vector<double> worker_totals;
    double driver_seconds = 0.0;
  };
  CostSnapshot Snapshot() const;

  /// Makespan of the work recorded since `snap`: driver delta plus the
  /// largest per-worker delta.
  double MakespanSince(const CostSnapshot& snap) const;

  /// Load ratio (busiest / least-busy non-idle worker) of the work recorded
  /// since `snap`.
  double LoadRatioSince(const CostSnapshot& snap) const;

  /// Clears all accumulated accounting (stats only, not configuration).
  void ResetStats();

 private:
  ClusterConfig config_;
  std::vector<WorkerStats> stats_;
  double driver_seconds_ = 0.0;
  mutable std::mutex mu_;
};

}  // namespace dita

#endif  // DITA_CLUSTER_CLUSTER_H_
