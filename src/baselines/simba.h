#ifndef DITA_BASELINES_SIMBA_H_
#define DITA_BASELINES_SIMBA_H_

#include <memory>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/engine.h"
#include "distance/distance.h"
#include "index/rtree.h"
#include "workload/dataset.h"

namespace dita {

/// The Simba-derived baseline (§7.1): the spatial analytics system of Xie et
/// al. [47] extended to trajectories exactly as the paper describes —
/// trajectories are indexed *by their first point only* (global R-tree over
/// partition first-point MBRs, local R-tree over trajectory first points);
/// candidates are trajectories whose first point is within tau of the
/// query's first point; verification uses only the double-direction
/// thresholded distance.
///
/// Supports DTW and Frechet (distances whose first points must align within
/// tau); other functions return NotSupported, as in the paper's evaluation.
class SimbaEngine {
 public:
  SimbaEngine(std::shared_ptr<Cluster> cluster, DistanceType distance,
              const DistanceParams& params = DistanceParams());

  Status BuildIndex(const Dataset& data);

  Result<std::vector<TrajectoryId>> Search(
      const Trajectory& q, double tau,
      DitaEngine::QueryStats* stats = nullptr) const;

  /// Join: relevant partition pairs exchange *entire partitions* (the
  /// paper's observation (4) in §7.2.2 — Simba ships partitions while DITA
  /// ships individual trajectories), then probe the local first-point
  /// R-tree and verify. No cost model, no balancing.
  Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> SelfJoin(
      double tau, DitaEngine::JoinStats* stats = nullptr) const;

  size_t index_bytes() const;

 private:
  struct Partition {
    std::vector<Trajectory> trajectories;
    RTree first_points;  // entry value = position in `trajectories`
    MBR mbr_first;
    size_t bytes = 0;
  };

  Status CheckDistance() const;

  std::shared_ptr<Cluster> cluster_;
  std::shared_ptr<TrajectoryDistance> distance_;
  std::vector<Partition> partitions_;
  RTree global_first_;  // entry value = partition id
  bool indexed_ = false;
};

}  // namespace dita

#endif  // DITA_BASELINES_SIMBA_H_
