#ifndef DITA_BASELINES_NAIVE_H_
#define DITA_BASELINES_NAIVE_H_

#include <memory>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "core/engine.h"
#include "distance/distance.h"
#include "workload/dataset.h"

namespace dita {

/// The paper's Naive baseline (§7.1): no index at all. Data is randomly
/// partitioned; every query scans every partition with the thresholded
/// (double-direction) distance; joins ship every partition to every other.
class NaiveEngine {
 public:
  NaiveEngine(std::shared_ptr<Cluster> cluster, DistanceType distance,
              const DistanceParams& params = DistanceParams());

  /// Randomly spreads the data over one partition per worker.
  Status BuildIndex(const Dataset& data);

  Result<std::vector<TrajectoryId>> Search(
      const Trajectory& q, double tau,
      DitaEngine::QueryStats* stats = nullptr) const;

  /// Self-join via full partition broadcast; quadratic — the paper could not
  /// finish it on real datasets, and neither should you on large inputs.
  Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> SelfJoin(
      double tau, DitaEngine::JoinStats* stats = nullptr) const;

 private:
  std::shared_ptr<Cluster> cluster_;
  std::shared_ptr<TrajectoryDistance> distance_;
  std::vector<std::vector<Trajectory>> partitions_;
  std::vector<size_t> partition_bytes_;
  bool indexed_ = false;
};

}  // namespace dita

#endif  // DITA_BASELINES_NAIVE_H_
