#include "baselines/vptree.h"

#include <algorithm>

#include "util/timer.h"

namespace dita {

Status VpTree::Build(const Dataset& data, DistanceType distance,
                     const DistanceParams& params) {
  auto dist = MakeDistance(distance, params);
  DITA_RETURN_IF_ERROR(dist.status());
  if (!(*dist)->is_metric()) {
    return Status::InvalidArgument(
        "VP-tree requires a metric distance (Frechet or ERP)");
  }
  distance_ = *dist;
  items_ = data.trajectories();
  nodes_.clear();
  WallTimer timer;
  std::vector<uint32_t> order(items_.size());
  for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  root_ = BuildNode(order.begin(), order.end());
  build_seconds_ = timer.Seconds();
  return Status::OK();
}

int32_t VpTree::BuildNode(std::vector<uint32_t>::iterator begin,
                          std::vector<uint32_t>::iterator end) {
  if (begin == end) return -1;
  Node node;
  node.item = *begin;
  ++begin;
  if (begin != end) {
    // Median-split the rest by distance to the vantage point.
    const auto mid = begin + (end - begin) / 2;
    std::nth_element(begin, mid, end, [&](uint32_t a, uint32_t b) {
      return distance_->Compute(items_[a], items_[node.item]) <
             distance_->Compute(items_[b], items_[node.item]);
    });
    node.radius = distance_->Compute(items_[*mid], items_[node.item]);
    const int32_t self = static_cast<int32_t>(nodes_.size());
    nodes_.push_back(node);
    const int32_t inside = BuildNode(begin, mid);
    const int32_t outside = BuildNode(mid, end);
    nodes_[self].inside = inside;
    nodes_[self].outside = outside;
    return self;
  }
  nodes_.push_back(node);
  return static_cast<int32_t>(nodes_.size() - 1);
}

Result<std::vector<TrajectoryId>> VpTree::Search(const Trajectory& q,
                                                 double tau,
                                                 SearchStats* stats) const {
  if (distance_ == nullptr) return Status::Internal("Search before Build");
  if (tau < 0) return Status::InvalidArgument("threshold must be non-negative");
  std::vector<TrajectoryId> out;
  SearchStats local;
  SearchNode(root_, q, tau, &out, &local);
  if (stats != nullptr) *stats = local;
  std::sort(out.begin(), out.end());
  return out;
}

void VpTree::SearchNode(int32_t node_idx, const Trajectory& q, double tau,
                        std::vector<TrajectoryId>* out,
                        SearchStats* stats) const {
  if (node_idx < 0) return;
  const Node& node = nodes_[static_cast<size_t>(node_idx)];
  ++stats->distance_evals;
  const double d = distance_->Compute(q, items_[node.item]);
  if (d <= tau) out->push_back(items_[node.item].id());
  // Triangle inequality: the inside subtree holds items within radius of the
  // vantage point, so it can contain answers only if d - tau <= radius;
  // the outside subtree only if d + tau >= radius.
  if (d - tau <= node.radius) SearchNode(node.inside, q, tau, out, stats);
  if (d + tau >= node.radius) SearchNode(node.outside, q, tau, out, stats);
}

size_t VpTree::ByteSize() const {
  size_t bytes = nodes_.size() * sizeof(Node);
  for (const Trajectory& t : items_) bytes += t.ByteSize();
  return bytes;
}

}  // namespace dita
