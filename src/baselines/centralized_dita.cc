#include "baselines/centralized_dita.h"

#include <algorithm>
#include <memory>

#include "distance/dp_scratch.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace dita {

Status CentralizedDita::Build(const Dataset& data, const DitaConfig& config) {
  config_ = config;
  auto dist = MakeDistance(config.distance, config.distance_params);
  DITA_RETURN_IF_ERROR(dist.status());
  distance_ = *dist;
  verifier_ = std::make_unique<Verifier>(distance_, config_);

  WallTimer timer;
  // No cluster ledger here; the pool's only effect is wall-clock (and the
  // build is bit-identical to the serial one either way).
  std::unique_ptr<ThreadPool> pool;
  if (config.build.threads > 0) {
    pool = std::make_unique<ThreadPool>(config.build.threads);
  }
  DITA_RETURN_IF_ERROR(
      trie_.Build(data.trajectories(), config.build.trie, pool.get()));
  precomp_.clear();
  precomp_.resize(trie_.size());
  ThreadPool::ParallelFor(
      pool.get(), trie_.size(), /*min_parallel=*/64,
      [this, &config](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) {
          precomp_[i] = VerifyPrecomp::For(trie_.trajectories()[i],
                                           config.verify.cell_size);
        }
      });
  build_seconds_ = timer.Seconds();
  return Status::OK();
}

Result<std::vector<TrajectoryId>> CentralizedDita::Search(
    const Trajectory& q, double tau, SearchStats* stats) const {
  if (verifier_ == nullptr) return Status::Internal("Search before Build");
  if (tau < 0) return Status::InvalidArgument("threshold must be non-negative");

  TrieIndex::SearchSpec spec;
  spec.query = &q;
  spec.tau = tau;
  spec.mode = distance_->prune_mode();
  spec.epsilon = distance_->matching_epsilon();
  if (config_.distance == DistanceType::kLCSS) {
    spec.lcss_delta = config_.distance_params.delta;
  }
  if (config_.distance == DistanceType::kERP) {
    spec.erp_gap = &config_.distance_params.erp_gap;
  }

  DpScratch& scratch = DpScratch::ThreadLocal();
  std::vector<uint32_t>& candidates = scratch.Candidates();
  candidates.clear();
  trie_.CollectCandidates(spec, &candidates);
  const VerifyPrecomp qp = VerifyPrecomp::For(q, config_.verify.cell_size);

  SearchStats local;
  local.candidates = candidates.size();
  std::vector<uint32_t>& accepted = scratch.Accepted();
  accepted.clear();
  const Verifier::Batch batch{&precomp_, &candidates, &qp, tau};
  verifier_->VerifyBatch(batch, /*pool=*/nullptr, /*min_parallel=*/0,
                         &accepted, &local.verify);
  std::vector<TrajectoryId> out;
  out.reserve(accepted.size());
  for (uint32_t pos : accepted) out.push_back(trie_.trajectory(pos).id());
  if (stats != nullptr) *stats = local;
  std::sort(out.begin(), out.end());
  return out;
}

size_t CentralizedDita::ByteSize() const {
  size_t bytes = trie_.ByteSize();
  for (const VerifyPrecomp& vp : precomp_) bytes += vp.ByteSize();
  return bytes;
}

}  // namespace dita
