#ifndef DITA_BASELINES_VPTREE_H_
#define DITA_BASELINES_VPTREE_H_

#include <memory>
#include <vector>

#include "distance/distance.h"
#include "workload/dataset.h"

namespace dita {

/// Centralized vantage-point tree baseline (Appendix C; [19, 40, 49]).
/// Requires a *metric* distance (Frechet, ERP): pruning relies on the
/// triangle inequality |d(q,v) - d(v,t)| <= d(q,t).
class VpTree {
 public:
  struct SearchStats {
    /// Number of full distance computations — the VP-tree's "candidates"
    /// for the Fig. 17 comparison (every visited node costs one DP).
    size_t distance_evals = 0;
  };

  /// Builds the tree; O(n log n) distance computations.
  Status Build(const Dataset& data, DistanceType distance,
               const DistanceParams& params = DistanceParams());

  /// Exact threshold search via triangle-inequality pruning.
  Result<std::vector<TrajectoryId>> Search(const Trajectory& q, double tau,
                                           SearchStats* stats = nullptr) const;

  double build_seconds() const { return build_seconds_; }
  size_t ByteSize() const;

 private:
  struct Node {
    uint32_t item = 0;          // index into items_
    double radius = 0.0;        // median distance to the inside subtree
    int32_t inside = -1;        // child node indices; -1 = none
    int32_t outside = -1;
  };

  int32_t BuildNode(std::vector<uint32_t>::iterator begin,
                    std::vector<uint32_t>::iterator end);
  void SearchNode(int32_t node, const Trajectory& q, double tau,
                  std::vector<TrajectoryId>* out, SearchStats* stats) const;

  std::shared_ptr<TrajectoryDistance> distance_;
  std::vector<Trajectory> items_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
  double build_seconds_ = 0.0;
};

}  // namespace dita

#endif  // DITA_BASELINES_VPTREE_H_
