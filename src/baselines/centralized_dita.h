#ifndef DITA_BASELINES_CENTRALIZED_DITA_H_
#define DITA_BASELINES_CENTRALIZED_DITA_H_

#include <memory>
#include <vector>

#include "core/config.h"
#include "core/verifier.h"
#include "index/trie_index.h"
#include "workload/dataset.h"

namespace dita {

/// The "centralized implementation of DITA" used in the Appendix C
/// comparison against VP-tree and MBE: one trie index over the whole dataset
/// plus the full verification pipeline, no cluster.
class CentralizedDita {
 public:
  struct SearchStats {
    /// Trajectories surviving the trie filter (Fig. 17's candidate count).
    size_t candidates = 0;
    VerifyStats verify;
  };

  Status Build(const Dataset& data, const DitaConfig& config);

  Result<std::vector<TrajectoryId>> Search(const Trajectory& q, double tau,
                                           SearchStats* stats = nullptr) const;

  double build_seconds() const { return build_seconds_; }
  size_t ByteSize() const;

 private:
  DitaConfig config_;
  std::shared_ptr<TrajectoryDistance> distance_;
  std::unique_ptr<Verifier> verifier_;
  TrieIndex trie_;
  std::vector<VerifyPrecomp> precomp_;
  double build_seconds_ = 0.0;
};

}  // namespace dita

#endif  // DITA_BASELINES_CENTRALIZED_DITA_H_
