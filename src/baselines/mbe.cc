#include "baselines/mbe.h"

#include <algorithm>
#include <limits>

#include "util/timer.h"

namespace dita {

Status MbeIndex::Build(const Dataset& data, DistanceType distance,
                       size_t envelope_width, const DistanceParams& params) {
  if (distance != DistanceType::kDTW && distance != DistanceType::kFrechet) {
    return Status::NotSupported("MBE supports DTW and Frechet");
  }
  if (envelope_width == 0) {
    return Status::InvalidArgument("envelope width must be positive");
  }
  auto dist = MakeDistance(distance, params);
  DITA_RETURN_IF_ERROR(dist.status());
  distance_ = *dist;

  WallTimer timer;
  items_ = data.trajectories();
  envelopes_.clear();
  envelopes_.resize(items_.size());
  std::vector<RTree::Entry> entries;
  for (uint32_t pos = 0; pos < items_.size(); ++pos) {
    const auto& pts = items_[pos].points();
    for (size_t s = 0; s < pts.size(); s += envelope_width) {
      MBR run;
      for (size_t i = s; i < std::min(pts.size(), s + envelope_width); ++i) {
        run.Expand(pts[i]);
      }
      envelopes_[pos].push_back(run);
      entries.push_back({run, pos});
    }
  }
  envelope_tree_.Build(std::move(entries));
  build_seconds_ = timer.Seconds();
  return Status::OK();
}

double MbeIndex::LowerBound(const Trajectory& q, uint32_t pos) const {
  // Every point of the query aligns to some point of the trajectory, which
  // lies inside one of the envelope MBRs. Summing per-point minima bounds
  // DTW from below; taking the max bounds Frechet.
  const auto& env = envelopes_[pos];
  const bool is_max = distance_->prune_mode() == PruneMode::kMax;
  double agg = 0.0;
  for (const Point& p : q.points()) {
    double best = std::numeric_limits<double>::infinity();
    for (const MBR& mbr : env) best = std::min(best, mbr.MinDist(p));
    if (is_max) {
      agg = std::max(agg, best);
    } else {
      agg += best;
    }
  }
  return agg;
}

Result<std::vector<TrajectoryId>> MbeIndex::Search(const Trajectory& q,
                                                   double tau,
                                                   SearchStats* stats) const {
  if (distance_ == nullptr) return Status::Internal("Search before Build");
  if (tau < 0) return Status::InvalidArgument("threshold must be non-negative");
  if (q.empty()) return Status::InvalidArgument("empty query");

  // R-tree prefilter: a similar trajectory must have an envelope MBR within
  // tau of the query's first point (its first point aligns with q1 for both
  // DTW and Frechet).
  std::vector<uint32_t> hits;
  envelope_tree_.SearchWithinDistance(q.front(), tau, &hits);
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());

  SearchStats local;
  local.prefilter_survivors = hits.size();
  std::vector<TrajectoryId> out;
  for (uint32_t pos : hits) {
    if (LowerBound(q, pos) > tau) continue;
    ++local.candidates;
    if (distance_->WithinThreshold(items_[pos], q, tau)) {
      out.push_back(items_[pos].id());
    }
  }
  if (stats != nullptr) *stats = local;
  std::sort(out.begin(), out.end());
  return out;
}

size_t MbeIndex::ByteSize() const {
  size_t bytes = envelope_tree_.ByteSize();
  for (const auto& env : envelopes_) bytes += env.size() * sizeof(MBR);
  for (const Trajectory& t : items_) bytes += t.ByteSize();
  return bytes;
}

}  // namespace dita
