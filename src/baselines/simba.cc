#include "baselines/simba.h"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "index/str_tile.h"
#include "util/logging.h"
#include "util/timer.h"

namespace dita {

SimbaEngine::SimbaEngine(std::shared_ptr<Cluster> cluster, DistanceType distance,
                         const DistanceParams& params)
    : cluster_(std::move(cluster)) {
  DITA_CHECK(cluster_ != nullptr);
  auto dist = MakeDistance(distance, params);
  DITA_CHECK(dist.ok());
  distance_ = *dist;
}

Status SimbaEngine::CheckDistance() const {
  if (distance_->type() != DistanceType::kDTW &&
      distance_->type() != DistanceType::kFrechet) {
    return Status::NotSupported(
        "Simba's first-point index only supports DTW and Frechet");
  }
  return Status::OK();
}

Status SimbaEngine::BuildIndex(const Dataset& data) {
  DITA_RETURN_IF_ERROR(CheckDistance());
  for (const Trajectory& t : data.trajectories()) {
    if (t.size() < 2) {
      return Status::InvalidArgument("trajectories need at least 2 points");
    }
  }
  // One-level STR partitioning by first point, one partition per worker
  // times a small factor (Simba defaults to on the order of worker count).
  const size_t target_partitions = cluster_->num_workers() * 4;
  std::vector<uint32_t> all(data.size());
  std::iota(all.begin(), all.end(), 0);
  auto groups = StrTile(
      std::move(all), [&](uint32_t i) { return data[i].front(); },
      target_partitions);

  partitions_.clear();
  partitions_.resize(groups.size());
  std::vector<Cluster::Task> tasks;
  for (size_t p = 0; p < groups.size(); ++p) {
    Partition& part = partitions_[p];
    const std::vector<uint32_t>* members = &groups[p];
    tasks.push_back({cluster_->WorkerOf(p), [&data, &part, members] {
                       std::vector<RTree::Entry> entries;
                       for (uint32_t i : *members) {
                         const Trajectory& t = data[i];
                         part.mbr_first.Expand(t.front());
                         part.bytes += t.ByteSize();
                         entries.push_back(
                             {MBR::FromPoint(t.front()),
                              static_cast<uint32_t>(part.trajectories.size())});
                         part.trajectories.push_back(t);
                       }
                       part.first_points.Build(std::move(entries));
                       return Status::OK();
                     }});
  }
  DITA_RETURN_IF_ERROR(cluster_->RunStage(std::move(tasks)));

  CpuTimer driver_timer;
  std::vector<RTree::Entry> global_entries;
  for (uint32_t p = 0; p < partitions_.size(); ++p) {
    global_entries.push_back({partitions_[p].mbr_first, p});
  }
  global_first_.Build(std::move(global_entries));
  cluster_->RecordDriverCompute(driver_timer.Seconds());
  indexed_ = true;
  return Status::OK();
}

Result<std::vector<TrajectoryId>> SimbaEngine::Search(
    const Trajectory& q, double tau, DitaEngine::QueryStats* stats) const {
  if (!indexed_) return Status::Internal("Search before BuildIndex");
  if (tau < 0) return Status::InvalidArgument("threshold must be non-negative");
  const Cluster::CostSnapshot snap = cluster_->Snapshot();

  CpuTimer driver_timer;
  std::vector<uint32_t> relevant;
  global_first_.SearchWithinDistance(q.front(), tau, &relevant);
  cluster_->RecordDriverCompute(driver_timer.Seconds());

  std::mutex mu;
  std::vector<TrajectoryId> results;
  size_t candidates = 0;
  std::vector<Cluster::Task> tasks;
  for (uint32_t p : relevant) {
    const Partition* part = &partitions_[p];
    tasks.push_back({cluster_->WorkerOf(p),
                     [&, part] {
                       std::vector<uint32_t> cands;
                       part->first_points.SearchWithinDistance(q.front(), tau,
                                                               &cands);
                       std::vector<TrajectoryId> local;
                       for (uint32_t pos : cands) {
                         const Trajectory& t = part->trajectories[pos];
                         if (distance_->WithinThreshold(t, q, tau)) {
                           local.push_back(t.id());
                         }
                       }
                       std::lock_guard<std::mutex> lock(mu);
                       candidates += cands.size();
                       results.insert(results.end(), local.begin(), local.end());
                       return Status::OK();
                     },
                     part->bytes});
  }
  DITA_RETURN_IF_ERROR(cluster_->RunStage(std::move(tasks)));

  if (stats != nullptr) {
    stats->makespan_seconds = cluster_->MakespanSince(snap);
    stats->partitions_probed = relevant.size();
    stats->candidates = candidates;
    stats->results = results.size();
  }
  std::sort(results.begin(), results.end());
  return results;
}

Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> SimbaEngine::SelfJoin(
    double tau, DitaEngine::JoinStats* stats) const {
  if (!indexed_) return Status::Internal("Join before BuildIndex");
  const Cluster::CostSnapshot snap = cluster_->Snapshot();
  const uint64_t bytes_before = cluster_->total_bytes_sent();

  // Relevant ordered partition pairs: first MBRs within tau.
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  CpuTimer driver_timer;
  for (uint32_t i = 0; i < partitions_.size(); ++i) {
    for (uint32_t j = 0; j < partitions_.size(); ++j) {
      if (partitions_[i].mbr_first.MinDist(partitions_[j].mbr_first) <= tau) {
        edges.emplace_back(i, j);
      }
    }
  }
  cluster_->RecordDriverCompute(driver_timer.Seconds());

  // Ship whole source partitions (no per-trajectory filtering).
  for (const auto& [src, dst] : edges) {
    cluster_->RecordTransfer(cluster_->WorkerOf(src), cluster_->WorkerOf(dst),
                             partitions_[src].bytes);
  }

  std::mutex mu;
  std::vector<std::pair<TrajectoryId, TrajectoryId>> results;
  size_t candidate_pairs = 0;
  std::vector<Cluster::Task> tasks;
  for (const auto& edge : edges) {
    const Partition* src = &partitions_[edge.first];
    const Partition* dst = &partitions_[edge.second];
    tasks.push_back({cluster_->WorkerOf(edge.second),
                     [&, src, dst] {
      std::vector<std::pair<TrajectoryId, TrajectoryId>> local;
      size_t local_pairs = 0;
      for (const Trajectory& a : src->trajectories) {
        std::vector<uint32_t> cands;
        dst->first_points.SearchWithinDistance(a.front(), tau, &cands);
        local_pairs += cands.size();
        for (uint32_t pos : cands) {
          const Trajectory& b = dst->trajectories[pos];
          if (distance_->WithinThreshold(b, a, tau)) {
            local.emplace_back(a.id(), b.id());
          }
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      results.insert(results.end(), local.begin(), local.end());
      candidate_pairs += local_pairs;
      return Status::OK();
                     },
                     dst->bytes});
  }
  DITA_RETURN_IF_ERROR(cluster_->RunStage(std::move(tasks)));

  if (stats != nullptr) {
    stats->makespan_seconds = cluster_->MakespanSince(snap);
    stats->load_ratio = cluster_->LoadRatioSince(snap);
    stats->bytes_shipped = cluster_->total_bytes_sent() - bytes_before;
    stats->graph_edges = edges.size();
    stats->candidate_pairs = candidate_pairs;
    stats->result_pairs = results.size();
  }
  std::sort(results.begin(), results.end());
  return results;
}

size_t SimbaEngine::index_bytes() const {
  size_t bytes = global_first_.ByteSize();
  for (const Partition& p : partitions_) bytes += p.first_points.ByteSize();
  return bytes;
}

}  // namespace dita
