#include "baselines/dft.h"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "index/str_tile.h"
#include "util/logging.h"
#include "util/timer.h"

namespace dita {

DftEngine::DftEngine(std::shared_ptr<Cluster> cluster, DistanceType distance,
                     const DistanceParams& params)
    : cluster_(std::move(cluster)) {
  DITA_CHECK(cluster_ != nullptr);
  auto dist = MakeDistance(distance, params);
  DITA_CHECK(dist.ok());
  distance_ = *dist;
}

Status DftEngine::BuildIndex(const Dataset& data) {
  if (distance_->type() != DistanceType::kDTW &&
      distance_->type() != DistanceType::kFrechet) {
    return Status::NotSupported(
        "the DFT baseline supports DTW and Frechet threshold search");
  }
  for (const Trajectory& t : data.trajectories()) {
    if (t.size() < 2) {
      return Status::InvalidArgument("trajectories need at least 2 points");
    }
  }
  total_trajectories_ = data.size();

  // DFT partitions segments; we approximate with trajectory-level STR on the
  // first point so each partition can be indexed independently, then build
  // the segment R-tree inside each partition.
  const size_t target_partitions = cluster_->num_workers() * 4;
  std::vector<uint32_t> all(data.size());
  std::iota(all.begin(), all.end(), 0);
  auto groups = StrTile(
      std::move(all), [&](uint32_t i) { return data[i].front(); },
      target_partitions);

  partitions_.clear();
  partitions_.resize(groups.size());
  std::vector<Cluster::Task> tasks;
  for (size_t p = 0; p < groups.size(); ++p) {
    Partition& part = partitions_[p];
    const std::vector<uint32_t>* members = &groups[p];
    tasks.push_back({cluster_->WorkerOf(p), [&data, &part, members] {
                       std::vector<RTree::Entry> entries;
                       for (uint32_t i : *members) {
                         const Trajectory& t = data[i];
                         const uint32_t pos =
                             static_cast<uint32_t>(part.trajectories.size());
                         for (size_t s = 0; s + 1 < t.size(); ++s) {
                           MBR seg;
                           seg.Expand(t[s]);
                           seg.Expand(t[s + 1]);
                           entries.push_back({seg, pos});
                         }
                         part.bytes += t.ByteSize();
                         part.trajectories.push_back(t);
                       }
                       part.segments.Build(std::move(entries));
                       return Status::OK();
                     }});
  }
  DITA_RETURN_IF_ERROR(cluster_->RunStage(std::move(tasks)));
  indexed_ = true;
  return Status::OK();
}

Result<std::vector<TrajectoryId>> DftEngine::Search(
    const Trajectory& q, double tau, DitaEngine::QueryStats* stats) const {
  if (!indexed_) return Status::Internal("Search before BuildIndex");
  if (tau < 0) return Status::InvalidArgument("threshold must be non-negative");
  const Cluster::CostSnapshot snap = cluster_->Snapshot();

  // Stage 1: every partition probes its segment index and produces the set
  // of candidate positions — a trajectory is a candidate if one of its
  // segments lies within tau of the query's first point (a sound filter:
  // similar trajectories must have their first segment there).
  std::mutex mu;
  std::vector<std::vector<uint32_t>> partition_candidates(partitions_.size());
  std::vector<Cluster::Task> filter_tasks;
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const Partition* part = &partitions_[p];
    std::vector<uint32_t>* out = &partition_candidates[p];
    filter_tasks.push_back({cluster_->WorkerOf(p),
                            [&, part, out] {
                              std::vector<uint32_t> hits;
                              part->segments.SearchWithinDistance(q.front(), tau,
                                                                  &hits);
                              std::sort(hits.begin(), hits.end());
                              hits.erase(std::unique(hits.begin(), hits.end()),
                                         hits.end());
                              std::lock_guard<std::mutex> lock(mu);
                              *out = std::move(hits);
                              return Status::OK();
                            },
                            part->bytes});
  }
  DITA_RETURN_IF_ERROR(cluster_->RunStage(std::move(filter_tasks)));

  // Barrier: each worker ships its candidate bitmap to the driver; the
  // driver merges sequentially and redistributes before verification (the
  // non-clustered-index handshake the paper criticizes).
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const uint64_t bitmap_bytes = (partitions_[p].trajectories.size() + 7) / 8;
    cluster_->RecordDriverTransfer(cluster_->WorkerOf(p), bitmap_bytes);
  }
  CpuTimer merge_timer;
  size_t total_candidates = 0;
  for (const auto& cands : partition_candidates) total_candidates += cands.size();
  // The sequential merge touches every trajectory's bit once.
  cluster_->RecordDriverCompute(merge_timer.Seconds() +
                                1e-9 * static_cast<double>(total_trajectories_));
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const uint64_t bitmap_bytes = (partitions_[p].trajectories.size() + 7) / 8;
    cluster_->RecordDriverTransfer(cluster_->WorkerOf(p), bitmap_bytes);
  }

  // Stage 2: verification with the plain thresholded DP.
  std::vector<TrajectoryId> results;
  std::vector<Cluster::Task> verify_tasks;
  for (size_t p = 0; p < partitions_.size(); ++p) {
    if (partition_candidates[p].empty()) continue;
    const Partition* part = &partitions_[p];
    const std::vector<uint32_t>* cands = &partition_candidates[p];
    verify_tasks.push_back({cluster_->WorkerOf(p),
                            [&, part, cands] {
                              std::vector<TrajectoryId> local;
                              for (uint32_t pos : *cands) {
                                const Trajectory& t = part->trajectories[pos];
                                if (distance_->WithinThreshold(t, q, tau)) {
                                  local.push_back(t.id());
                                }
                              }
                              std::lock_guard<std::mutex> lock(mu);
                              results.insert(results.end(), local.begin(),
                                             local.end());
                              return Status::OK();
                            },
                            part->bytes});
  }
  DITA_RETURN_IF_ERROR(cluster_->RunStage(std::move(verify_tasks)));

  if (stats != nullptr) {
    stats->makespan_seconds = cluster_->MakespanSince(snap);
    stats->partitions_probed = partitions_.size();
    stats->candidates = total_candidates;
    stats->results = results.size();
  }
  std::sort(results.begin(), results.end());
  return results;
}

size_t DftEngine::index_bytes() const {
  size_t bytes = 0;
  for (const Partition& p : partitions_) bytes += p.segments.ByteSize();
  return bytes;
}

}  // namespace dita
