#include "baselines/naive.h"

#include <algorithm>
#include <mutex>

#include "core/partitioner.h"
#include "util/logging.h"

namespace dita {

NaiveEngine::NaiveEngine(std::shared_ptr<Cluster> cluster, DistanceType distance,
                         const DistanceParams& params)
    : cluster_(std::move(cluster)) {
  DITA_CHECK(cluster_ != nullptr);
  auto dist = MakeDistance(distance, params);
  DITA_CHECK(dist.ok());
  distance_ = *dist;
}

Status NaiveEngine::BuildIndex(const Dataset& data) {
  auto parts = PartitionRandomly(data.trajectories(), cluster_->num_workers());
  DITA_RETURN_IF_ERROR(parts.status());
  partitions_ = std::move(*parts);
  partition_bytes_.clear();
  for (const auto& p : partitions_) {
    size_t bytes = 0;
    for (const auto& t : p) bytes += t.ByteSize();
    partition_bytes_.push_back(bytes);
  }
  indexed_ = true;
  return Status::OK();
}

Result<std::vector<TrajectoryId>> NaiveEngine::Search(
    const Trajectory& q, double tau, DitaEngine::QueryStats* stats) const {
  if (!indexed_) return Status::Internal("Search before BuildIndex");
  if (tau < 0) return Status::InvalidArgument("threshold must be non-negative");
  const Cluster::CostSnapshot snap = cluster_->Snapshot();

  std::mutex mu;
  std::vector<TrajectoryId> results;
  size_t scanned = 0;
  std::vector<Cluster::Task> tasks;
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const std::vector<Trajectory>* part = &partitions_[p];
    tasks.push_back({cluster_->WorkerOf(p),
                     [&, part] {
                       std::vector<TrajectoryId> local;
                       for (const Trajectory& t : *part) {
                         if (distance_->WithinThreshold(t, q, tau)) {
                           local.push_back(t.id());
                         }
                       }
                       std::lock_guard<std::mutex> lock(mu);
                       results.insert(results.end(), local.begin(), local.end());
                       scanned += part->size();
                       return Status::OK();
                     },
                     partition_bytes_[p]});
  }
  DITA_RETURN_IF_ERROR(cluster_->RunStage(std::move(tasks)));

  if (stats != nullptr) {
    stats->makespan_seconds = cluster_->MakespanSince(snap);
    stats->partitions_probed = partitions_.size();
    stats->candidates = scanned;  // no filtering: every trajectory verified
    stats->results = results.size();
  }
  std::sort(results.begin(), results.end());
  return results;
}

Result<std::vector<std::pair<TrajectoryId, TrajectoryId>>> NaiveEngine::SelfJoin(
    double tau, DitaEngine::JoinStats* stats) const {
  if (!indexed_) return Status::Internal("Join before BuildIndex");
  const Cluster::CostSnapshot snap = cluster_->Snapshot();
  const uint64_t bytes_before = cluster_->total_bytes_sent();

  // Every partition is broadcast to every other partition's worker.
  for (size_t src = 0; src < partitions_.size(); ++src) {
    for (size_t dst = 0; dst < partitions_.size(); ++dst) {
      if (src == dst) continue;
      cluster_->RecordTransfer(cluster_->WorkerOf(src), cluster_->WorkerOf(dst),
                               partition_bytes_[src]);
    }
  }

  std::mutex mu;
  std::vector<std::pair<TrajectoryId, TrajectoryId>> results;
  size_t pairs = 0;
  std::vector<Cluster::Task> tasks;
  for (size_t dst = 0; dst < partitions_.size(); ++dst) {
    const std::vector<Trajectory>* right_part = &partitions_[dst];
    tasks.push_back({cluster_->WorkerOf(dst), [&, right_part] {
      std::vector<std::pair<TrajectoryId, TrajectoryId>> local;
      size_t local_pairs = 0;
      for (const auto& src_part : partitions_) {
        for (const Trajectory& a : src_part) {
          for (const Trajectory& b : *right_part) {
            ++local_pairs;
            if (distance_->WithinThreshold(b, a, tau)) {
              local.emplace_back(a.id(), b.id());
            }
          }
        }
      }
      std::lock_guard<std::mutex> lock(mu);
      results.insert(results.end(), local.begin(), local.end());
      pairs += local_pairs;
      return Status::OK();
    }, partition_bytes_[dst]});
  }
  DITA_RETURN_IF_ERROR(cluster_->RunStage(std::move(tasks)));

  if (stats != nullptr) {
    stats->makespan_seconds = cluster_->MakespanSince(snap);
    stats->load_ratio = cluster_->LoadRatioSince(snap);
    stats->bytes_shipped = cluster_->total_bytes_sent() - bytes_before;
    stats->candidate_pairs = pairs;
    stats->result_pairs = results.size();
  }
  std::sort(results.begin(), results.end());
  return results;
}

}  // namespace dita
