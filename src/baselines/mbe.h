#ifndef DITA_BASELINES_MBE_H_
#define DITA_BASELINES_MBE_H_

#include <memory>
#include <vector>

#include "distance/distance.h"
#include "index/rtree.h"
#include "workload/dataset.h"

namespace dita {

/// Centralized Minimum Bounding Envelope baseline (Appendix C; Vlachos et
/// al. [42]): each trajectory is covered by a sequence of MBRs over runs of
/// `envelope_width` consecutive points, all envelope MBRs live in one
/// R-tree, and a sum/max lower bound over the envelope prunes dissimilar
/// trajectories before the exact DP verification. Supports DTW (sum bound)
/// and Frechet (max bound).
class MbeIndex {
 public:
  struct SearchStats {
    /// Trajectories surviving the envelope lower bound (Fig. 17's
    /// candidate count).
    size_t candidates = 0;
    size_t prefilter_survivors = 0;
  };

  Status Build(const Dataset& data, DistanceType distance,
               size_t envelope_width = 8,
               const DistanceParams& params = DistanceParams());

  Result<std::vector<TrajectoryId>> Search(const Trajectory& q, double tau,
                                           SearchStats* stats = nullptr) const;

  double build_seconds() const { return build_seconds_; }
  size_t ByteSize() const;

 private:
  /// Lower bound of the distance between q and trajectory `pos`'s envelope.
  double LowerBound(const Trajectory& q, uint32_t pos) const;

  std::shared_ptr<TrajectoryDistance> distance_;
  std::vector<Trajectory> items_;
  std::vector<std::vector<MBR>> envelopes_;  // parallel to items_
  RTree envelope_tree_;                      // all MBRs, value = item pos
  double build_seconds_ = 0.0;
};

}  // namespace dita

#endif  // DITA_BASELINES_MBE_H_
