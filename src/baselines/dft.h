#ifndef DITA_BASELINES_DFT_H_
#define DITA_BASELINES_DFT_H_

#include <memory>
#include <vector>

#include "cluster/cluster.h"
#include "core/engine.h"
#include "distance/distance.h"
#include "index/rtree.h"
#include "workload/dataset.h"

namespace dita {

/// The DFT-derived baseline: the distributed trajectory search system of Xie
/// et al. [46], extended to threshold search on DTW as the paper describes.
/// Its distinguishing (and, per §2.3/§7.2.1, performance-limiting)
/// properties modelled here:
///  - a *segment-based, non-clustered* index: local R-trees over per-segment
///    MBRs, mapping back to trajectory ids;
///  - a *bitmap barrier*: every worker reports a bitmap of pruned/candidate
///    trajectory ids to the driver, which merges them sequentially and
///    redistributes the merged bitmap before verification can start;
///  - no verification optimizations (plain thresholded DP only).
///
/// Join is intentionally unsupported: the paper shows the bitmap approach
/// needs ~terabytes of memory for join workloads (§7.2.2).
class DftEngine {
 public:
  DftEngine(std::shared_ptr<Cluster> cluster, DistanceType distance,
            const DistanceParams& params = DistanceParams());

  Status BuildIndex(const Dataset& data);

  Result<std::vector<TrajectoryId>> Search(
      const Trajectory& q, double tau,
      DitaEngine::QueryStats* stats = nullptr) const;

  size_t index_bytes() const;

 private:
  struct Partition {
    std::vector<Trajectory> trajectories;
    RTree segments;  // entry value = position in `trajectories`
    size_t bytes = 0;
  };

  std::shared_ptr<Cluster> cluster_;
  std::shared_ptr<TrajectoryDistance> distance_;
  std::vector<Partition> partitions_;
  size_t total_trajectories_ = 0;
  bool indexed_ = false;
};

}  // namespace dita

#endif  // DITA_BASELINES_DFT_H_
