#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dita {

namespace {

/// Samples a trajectory length from a log-normal clamped to the configured
/// range, with the log-mean placed so the mean lands near avg_len.
size_t SampleLength(const GeneratorConfig& cfg, Rng& rng) {
  const double sigma = 0.6;
  const double mu = std::log(std::max(1.0, cfg.avg_len)) - sigma * sigma / 2;
  const double raw = std::exp(rng.Gaussian(mu, sigma));
  const double clamped = std::clamp(raw, static_cast<double>(cfg.min_len),
                                    static_cast<double>(cfg.max_len));
  return static_cast<size_t>(clamped + 0.5);
}

Point ClampToRegion(Point p, const MBR& region) {
  p.x = std::clamp(p.x, region.lo().x, region.hi().x);
  p.y = std::clamp(p.y, region.lo().y, region.hi().y);
  return p;
}

}  // namespace

namespace {

/// One endpoint of a route: near a hub (taxi queue, ~a city block of
/// clustering) or uniform in the region.
Point SampleEndpoint(const GeneratorConfig& cfg, const std::vector<Point>& hubs,
                     Rng& rng) {
  if (!hubs.empty() && rng.Chance(cfg.hub_fraction)) {
    const Point& hub = hubs[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(hubs.size()) - 1))];
    return ClampToRegion(Point{hub.x + rng.Gaussian(0, cfg.step),
                               hub.y + rng.Gaussian(0, cfg.step)},
                         cfg.region);
  }
  return Point{rng.Uniform(cfg.region.lo().x, cfg.region.hi().x),
               rng.Uniform(cfg.region.lo().y, cfg.region.hi().y)};
}

/// One canonical route: an origin-destination path with a route-specific
/// detour. Hub endpoints make many routes share their origin *and*
/// destination while the middles diverge by several city blocks — the
/// taxi-data pattern that defeats endpoint-only indexes (Simba's first-point
/// R-tree, anchor-distance rejection) and motivates DITA's pivot points.
std::vector<Point> GenerateRoute(const GeneratorConfig& cfg,
                                 const std::vector<Point>& hubs, Rng& rng) {
  const size_t len = SampleLength(cfg, rng);
  const Point origin = SampleEndpoint(cfg, hubs, rng);
  const Point dest = SampleEndpoint(cfg, hubs, rng);

  // Route-specific lateral detour: amplitude of a few blocks, 1-3 lobes.
  const double amp =
      cfg.step * rng.Uniform(2.0, 8.0) * (rng.Chance(0.5) ? 1.0 : -1.0);
  const int lobes = static_cast<int>(rng.UniformInt(1, 3));
  double px = -(dest.y - origin.y);
  double py = dest.x - origin.x;
  const double norm = std::sqrt(px * px + py * py);
  if (norm > 0) {
    px /= norm;
    py /= norm;
  }

  std::vector<Point> pts;
  pts.reserve(len);
  for (size_t k = 0; k < len; ++k) {
    const double t = len > 1 ? double(k) / double(len - 1) : 0.0;
    const double off = amp * std::sin(lobes * M_PI * t) *
                       rng.Uniform(0.9, 1.1);
    const double jitter_x = rng.Gaussian(0, cfg.step * 0.15);
    const double jitter_y = rng.Gaussian(0, cfg.step * 0.15);
    Point p{origin.x + t * (dest.x - origin.x) + px * off + jitter_x,
            origin.y + t * (dest.y - origin.y) + py * off + jitter_y};
    pts.push_back(ClampToRegion(p, cfg.region));
  }
  return pts;
}

/// A trip over a canonical route: GPS noise on every point plus occasional
/// dropped interior samples (device sampling jitter).
Trajectory SampleTrip(const GeneratorConfig& cfg, const std::vector<Point>& route,
                      TrajectoryId id, Rng& rng) {
  Trajectory t;
  t.set_id(id);
  auto& pts = t.mutable_points();
  pts.reserve(route.size());
  const size_t min_keep = std::max<size_t>(cfg.min_len, 2);
  size_t droppable = route.size() > min_keep ? route.size() - min_keep : 0;
  for (size_t k = 0; k < route.size(); ++k) {
    const bool interior = k > 0 && k + 1 < route.size();
    if (interior && droppable > 0 && rng.Chance(cfg.point_drop_prob)) {
      --droppable;
      continue;
    }
    pts.push_back(ClampToRegion(Point{route[k].x + rng.Gaussian(0, cfg.gps_noise),
                                      route[k].y + rng.Gaussian(0, cfg.gps_noise)},
                                cfg.region));
  }
  return t;
}

}  // namespace

Dataset GenerateTaxiDataset(const GeneratorConfig& cfg) {
  DITA_CHECK(cfg.min_len >= 2);
  DITA_CHECK(cfg.max_len >= cfg.min_len);
  Rng rng(cfg.seed);
  const MBR& region = cfg.region;

  // Popular origins (airports, stations, malls).
  std::vector<Point> hubs;
  hubs.reserve(cfg.hubs);
  for (size_t h = 0; h < cfg.hubs; ++h) {
    hubs.push_back(Point{rng.Uniform(region.lo().x, region.hi().x),
                         rng.Uniform(region.lo().y, region.hi().y)});
  }

  // Canonical routes, then Zipf-popular noisy trips over them.
  const size_t num_routes = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(cfg.cardinality) /
                             std::max(1.0, cfg.trips_per_route)));
  std::vector<std::vector<Point>> routes;
  routes.reserve(num_routes);
  for (size_t r = 0; r < num_routes; ++r) {
    routes.push_back(GenerateRoute(cfg, hubs, rng));
  }

  // Route popularity: cumulative Zipf weights w_k = 1/(k+1)^s.
  std::vector<double> cumulative(num_routes);
  double total = 0.0;
  for (size_t r = 0; r < num_routes; ++r) {
    total += std::pow(static_cast<double>(r + 1), -cfg.route_skew);
    cumulative[r] = total;
  }

  Dataset ds;
  for (size_t i = 0; i < cfg.cardinality; ++i) {
    const double u = rng.Uniform(0.0, total);
    const size_t route_idx = static_cast<size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    ds.Add(SampleTrip(cfg, routes[std::min(route_idx, num_routes - 1)],
                      static_cast<TrajectoryId>(i), rng));
  }
  return ds;
}

Dataset GenerateBeijingLike(double scale, uint64_t seed) {
  GeneratorConfig cfg;
  cfg.cardinality = static_cast<size_t>(12000 * scale);
  cfg.region = MBR(Point{116.0, 39.6}, Point{116.8, 40.2});
  cfg.avg_len = 22.0;
  cfg.min_len = 7;
  cfg.max_len = 112;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

Dataset GenerateChengduLike(double scale, uint64_t seed) {
  GeneratorConfig cfg;
  cfg.cardinality = static_cast<size_t>(16000 * scale);
  cfg.region = MBR(Point{103.9, 30.5}, Point{104.3, 30.9});
  cfg.avg_len = 37.0;
  cfg.min_len = 10;
  cfg.max_len = 209;
  cfg.seed = seed;
  return GenerateTaxiDataset(cfg);
}

Dataset GenerateOsmLike(double scale, uint64_t seed) {
  // Worldwide traces: a handful of regional hotspots, each a local taxi-like
  // generator, with longer trajectories and larger steps (inter-city GPS
  // traces of various objects).
  Rng rng(seed);
  const size_t total = static_cast<size_t>(20000 * scale);
  const size_t kRegions = 12;
  Dataset out;
  TrajectoryId next_id = 0;
  for (size_t r = 0; r < kRegions; ++r) {
    GeneratorConfig cfg;
    cfg.cardinality = total / kRegions;
    const double cx = rng.Uniform(-160, 160);
    const double cy = rng.Uniform(-70, 70);
    const double extent = rng.Uniform(0.5, 3.0);
    cfg.region = MBR(Point{cx - extent, cy - extent}, Point{cx + extent, cy + extent});
    cfg.avg_len = 90.0;
    cfg.min_len = 9;
    cfg.max_len = 600;
    cfg.step = 0.004;
    // OSM traces come from heterogeneous consumer devices: coarser noise
    // than taxi fleets. Same-route trips land far above the paper's tau
    // band, matching its observation that OSM joins return few results.
    cfg.gps_noise = 0.0003;
    cfg.hubs = 8;
    cfg.seed = seed + 1000 + r;
    Dataset region_ds = GenerateTaxiDataset(cfg);
    for (auto& t : region_ds.mutable_trajectories()) {
      t.set_id(next_id++);
      out.Add(std::move(t));
    }
  }
  return out;
}

}  // namespace dita
