#ifndef DITA_WORKLOAD_GENERATOR_H_
#define DITA_WORKLOAD_GENERATOR_H_

#include <cstdint>

#include "workload/dataset.h"

namespace dita {

/// Configuration for the synthetic taxi-trajectory generator. The defaults
/// for named presets below track the length distributions in the paper's
/// Table 2 (Beijing: avg 22.2, [7, 112]; Chengdu: avg 37.4, [10, 209];
/// OSM: avg ~115, [9, 3000]) at laptop-scale cardinalities.
struct GeneratorConfig {
  /// Number of trajectories to generate.
  size_t cardinality = 10000;
  /// Bounding box of the city / region, in degrees.
  MBR region{Point{116.0, 39.6}, Point{116.8, 40.2}};
  /// Trajectory length distribution: lengths are sampled from a clamped
  /// log-normal shaped to match `avg_len` within [min_len, max_len].
  double avg_len = 22.0;
  size_t min_len = 7;
  size_t max_len = 112;
  /// Per-step displacement in degrees (~GPS reports every 10s of driving);
  /// also scales endpoint clustering and detour amplitudes.
  double step = 0.002;
  /// Legacy knob of the grid-walk generator; kept for config compatibility.
  double turn_probability = 0.25;
  /// Number of popular "hub" locations route endpoints cluster at (airports,
  /// stations). Few hubs => many routes share origin AND destination while
  /// their middles diverge, the pattern that motivates pivot points.
  /// 0 disables hubs.
  size_t hubs = 12;
  /// Fraction of route endpoints placed near a hub (rest uniform).
  double hub_fraction = 0.6;
  /// Average number of trips sharing one canonical route. Real taxi fleets
  /// repeat the same street sequences constantly; each emitted trip is a
  /// noisy resampling of a shared route, which is what makes trips fall
  /// within the paper's DTW thresholds of each other. Set to 1 for fully
  /// unique trips.
  double trips_per_route = 8.0;
  /// Per-point GPS noise (degrees, std dev); the 5e-5 default is roughly
  /// 5 m, placing same-route trip pairs inside the paper's DTW threshold
  /// band (0.001-0.005) for city-length trips.
  double gps_noise = 0.00005;
  /// Probability of dropping an interior route point in a trip (sampling
  /// jitter between devices); never drops below min_len points.
  double point_drop_prob = 0.05;
  /// Zipf exponent of route popularity (0 = uniform, the default: every
  /// route has ~trips_per_route noisy repeats, keeping per-query answer
  /// counts realistic). The load-balancing experiments (Fig. 16) opt into
  /// skew > 0 to create straggler partitions.
  double route_skew = 0.0;
  /// RNG seed; generation is fully deterministic.
  uint64_t seed = 42;
};

/// Generates a city-scale taxi-like dataset: trajectories are grid-road
/// random walks with hub-skewed origins inside `config.region`.
Dataset GenerateTaxiDataset(const GeneratorConfig& config);

/// Named presets mirroring the paper's datasets, scaled down; `scale`
/// multiplies the preset cardinality (1.0 = repo default size, which is far
/// below the paper's but exercises identical code paths).
Dataset GenerateBeijingLike(double scale = 1.0, uint64_t seed = 42);
Dataset GenerateChengduLike(double scale = 1.0, uint64_t seed = 43);

/// Worldwide OSM-like traces: a mixture of dense regional hotspots with long
/// trajectories, modelling the paper's OpenStreetMap-derived datasets.
Dataset GenerateOsmLike(double scale = 1.0, uint64_t seed = 44);

}  // namespace dita

#endif  // DITA_WORKLOAD_GENERATOR_H_
