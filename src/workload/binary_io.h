#ifndef DITA_WORKLOAD_BINARY_IO_H_
#define DITA_WORKLOAD_BINARY_IO_H_

#include <string>

#include "workload/dataset.h"

namespace dita {

/// Compact binary trajectory storage (the storage-layer concern of
/// TrajStore [11] / SharkDB [44], scaled to this repo's needs): coordinates
/// are quantized to a configurable precision, delta-encoded along each
/// trajectory (GPS points barely move between samples), and written as
/// zigzag varints. City-scale datasets shrink to ~25% of their raw size.
///
/// Format: magic "DITA", u32 version, f64 precision, varint trajectory
/// count, then per trajectory: varint id (zigzag), varint length, zigzag
/// varint deltas of quantized x and y.
struct BinaryIoOptions {
  /// Quantization step in coordinate units. 1e-6 degrees ~ 0.1 m keeps GPS
  /// fidelity; round-tripped coordinates differ by at most precision/2.
  double precision = 1e-6;
};

Status WriteBinary(const Dataset& dataset, const std::string& path,
                   const BinaryIoOptions& options = BinaryIoOptions());

Result<Dataset> ReadBinary(const std::string& path);

}  // namespace dita

#endif  // DITA_WORKLOAD_BINARY_IO_H_
