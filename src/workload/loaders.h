#ifndef DITA_WORKLOAD_LOADERS_H_
#define DITA_WORKLOAD_LOADERS_H_

#include <string>

#include "workload/dataset.h"

namespace dita {

/// Loaders for the public trajectory formats a user of this library is most
/// likely to have on disk. Both return points as (x, y) = (longitude,
/// latitude), matching the generators and the paper's coordinate handling.

/// GeoLife .plt: six header lines, then
///   lat,lon,0,altitude,days,date,time
/// One file per trajectory; `id` names the loaded trajectory. Points with
/// unparseable coordinates are rejected (IOError), matching the strictness
/// of the CSV loader.
Result<Trajectory> LoadGeoLifePlt(const std::string& path, TrajectoryId id);

/// T-Drive release format: one CSV per taxi with rows
///   taxi_id,YYYY-MM-DD HH:MM:SS,longitude,latitude
/// Consecutive fixes more than `split_gap_points` apart in sequence are NOT
/// split (the release has no trip boundaries); instead the caller passes
/// `max_points` to chunk a day of fixes into trajectories of bounded length
/// (0 = one trajectory per file). Ids are assigned from `first_id` upward.
Result<Dataset> LoadTDriveFile(const std::string& path, TrajectoryId first_id,
                               size_t max_points = 0);

}  // namespace dita

#endif  // DITA_WORKLOAD_LOADERS_H_
