#ifndef DITA_WORKLOAD_DATASET_H_
#define DITA_WORKLOAD_DATASET_H_

#include <string>
#include <vector>

#include "geom/trajectory.h"
#include "util/rng.h"
#include "util/status.h"

namespace dita {

/// An in-memory collection of trajectories, the unit the engine indexes and
/// queries. Provides deterministic sampling and simple CSV/binary IO.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<Trajectory> trajectories)
      : trajectories_(std::move(trajectories)) {}

  const std::vector<Trajectory>& trajectories() const { return trajectories_; }
  std::vector<Trajectory>& mutable_trajectories() { return trajectories_; }

  size_t size() const { return trajectories_.size(); }
  bool empty() const { return trajectories_.empty(); }
  const Trajectory& operator[](size_t i) const { return trajectories_[i]; }

  void Add(Trajectory t) { trajectories_.push_back(std::move(t)); }

  /// Total number of points across all trajectories.
  size_t TotalPoints() const;

  /// Approximate byte size (used for reporting and cluster accounting).
  size_t ByteSize() const;

  /// Returns a dataset with ceil(rate * size()) trajectories sampled without
  /// replacement; `rate` must lie in (0, 1]. Deterministic given `seed`.
  Result<Dataset> Sample(double rate, uint64_t seed = 7) const;

  /// Uniformly samples `count` query trajectories (with replacement if count
  /// exceeds the dataset size). Deterministic given `seed`.
  std::vector<Trajectory> SampleQueries(size_t count, uint64_t seed = 11) const;

  /// Writes/reads a simple CSV: one line per trajectory, "id,x1,y1,x2,y2,...".
  Status WriteCsv(const std::string& path) const;
  static Result<Dataset> ReadCsv(const std::string& path);

  /// Summary stats matching the paper's Table 2 columns.
  struct Stats {
    size_t cardinality = 0;
    double avg_len = 0.0;
    size_t min_len = 0;
    size_t max_len = 0;
    size_t bytes = 0;
  };
  Stats ComputeStats() const;

 private:
  std::vector<Trajectory> trajectories_;
};

}  // namespace dita

#endif  // DITA_WORKLOAD_DATASET_H_
