#include "workload/dataset.h"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <numeric>

#include "util/string_util.h"

namespace dita {

size_t Dataset::TotalPoints() const {
  size_t total = 0;
  for (const auto& t : trajectories_) total += t.size();
  return total;
}

size_t Dataset::ByteSize() const {
  size_t total = 0;
  for (const auto& t : trajectories_) total += t.ByteSize();
  return total;
}

Result<Dataset> Dataset::Sample(double rate, uint64_t seed) const {
  if (rate <= 0.0 || rate > 1.0) {
    return Status::InvalidArgument("sample rate must be in (0, 1]");
  }
  if (rate == 1.0) return Dataset(trajectories_);
  const size_t want = static_cast<size_t>(rate * static_cast<double>(size()) + 0.5);
  std::vector<size_t> order(size());
  std::iota(order.begin(), order.end(), 0);
  Rng rng(seed);
  std::shuffle(order.begin(), order.end(), rng.engine());
  std::vector<Trajectory> out;
  out.reserve(want);
  for (size_t i = 0; i < want && i < order.size(); ++i) {
    out.push_back(trajectories_[order[i]]);
  }
  return Dataset(std::move(out));
}

std::vector<Trajectory> Dataset::SampleQueries(size_t count, uint64_t seed) const {
  std::vector<Trajectory> out;
  if (empty()) return out;
  Rng rng(seed);
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(trajectories_[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(size()) - 1))]);
  }
  return out;
}

Status Dataset::WriteCsv(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open for write: " + path);
  for (const auto& t : trajectories_) {
    std::fprintf(f, "%lld", static_cast<long long>(t.id()));
    for (const Point& p : t.points()) std::fprintf(f, ",%.9g,%.9g", p.x, p.y);
    std::fprintf(f, "\n");
  }
  std::fclose(f);
  return Status::OK();
}

Result<Dataset> Dataset::ReadCsv(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open for read: " + path);
  Dataset ds;
  std::string line;
  char buf[1 << 16];
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    line = StrTrim(buf);
    if (line.empty()) continue;
    const auto fields = StrSplit(line, ',');
    if (fields.size() < 3 || fields.size() % 2 == 0) {
      std::fclose(f);
      return Status::IOError("malformed CSV line: " + line);
    }
    Trajectory t;
    t.set_id(std::strtoll(fields[0].c_str(), nullptr, 10));
    for (size_t i = 1; i + 1 < fields.size(); i += 2) {
      t.mutable_points().push_back(Point{std::strtod(fields[i].c_str(), nullptr),
                                         std::strtod(fields[i + 1].c_str(), nullptr)});
    }
    ds.Add(std::move(t));
  }
  std::fclose(f);
  return ds;
}

Dataset::Stats Dataset::ComputeStats() const {
  Stats s;
  s.cardinality = size();
  s.min_len = std::numeric_limits<size_t>::max();
  for (const auto& t : trajectories_) {
    s.avg_len += static_cast<double>(t.size());
    s.min_len = std::min(s.min_len, t.size());
    s.max_len = std::max(s.max_len, t.size());
  }
  if (!empty()) s.avg_len /= static_cast<double>(size());
  if (empty()) s.min_len = 0;
  s.bytes = ByteSize();
  return s;
}

}  // namespace dita
